// Synthetic image generator: determinism, scene diversity, value ranges.
#include "bench/images.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace simdcv::bench {
namespace {

TEST(Scenes, DeterministicForSameSeed) {
  const Mat a = makeScene(Scene::Noise, {64, 48}, 7);
  const Mat b = makeScene(Scene::Noise, {64, 48}, 7);
  EXPECT_EQ(countMismatches(a, b), 0u);
  const Mat c = makeScene(Scene::Noise, {64, 48}, 8);
  EXPECT_GT(countMismatches(a, c), 100u);
}

TEST(Scenes, AllClassesProduceDistinctImages) {
  for (int i = 0; i < kSceneCount; ++i) {
    for (int j = i + 1; j < kSceneCount; ++j) {
      const Mat a = makeScene(static_cast<Scene>(i), {32, 32}, 1);
      const Mat b = makeScene(static_cast<Scene>(j), {32, 32}, 1);
      EXPECT_GT(countMismatches(a, b), 50u)
          << toString(static_cast<Scene>(i)) << " vs "
          << toString(static_cast<Scene>(j));
    }
  }
}

TEST(Scenes, GradientIsMonotoneAlongDiagonal) {
  const Mat g = makeScene(Scene::Gradient, {64, 64}, 0);
  for (int i = 1; i < 64; ++i)
    EXPECT_GE(g.at<std::uint8_t>(i, i), g.at<std::uint8_t>(i - 1, i - 1));
}

TEST(Scenes, CheckerHasHighContrast) {
  const Mat c = makeScene(Scene::Checker, {64, 64}, 1);
  int lo = 0, hi = 0;
  for (int r = 0; r < 64; ++r)
    for (int x = 0; x < 64; ++x) {
      const auto v = c.at<std::uint8_t>(r, x);
      if (v < 80) ++lo;
      if (v > 170) ++hi;
    }
  EXPECT_GT(lo, 500);
  EXPECT_GT(hi, 500);
}

TEST(Scenes, NoiseUsesFullRangeRoughlyUniformly) {
  const Mat n = makeScene(Scene::Noise, {128, 128}, 3);
  double sum = 0;
  int buckets[4] = {};
  for (int r = 0; r < 128; ++r)
    for (int c = 0; c < 128; ++c) {
      const auto v = n.at<std::uint8_t>(r, c);
      sum += v;
      ++buckets[v / 64];
    }
  EXPECT_NEAR(sum / (128.0 * 128.0), 127.5, 8.0);
  for (int b : buckets) EXPECT_GT(b, 128 * 128 / 8);
}

TEST(FloatScenes, SpanExceedsInt16ForSaturationCoverage) {
  const Mat f = makeFloatScene(Scene::Gradient, {256, 256}, 1);
  float mn = 1e30f, mx = -1e30f;
  for (int r = 0; r < 256; ++r)
    for (int c = 0; c < 256; ++c) {
      mn = std::min(mn, f.at<float>(r, c));
      mx = std::max(mx, f.at<float>(r, c));
    }
  EXPECT_LT(mn, -32768.0f);
  EXPECT_GT(mx, 32767.0f);
}

TEST(ImageSet, FiveImagesOfRequestedShape) {
  const auto set = makeImageSet({64, 48}, Depth::U8);
  ASSERT_EQ(set.size(), 5u);
  for (const auto& m : set) {
    EXPECT_EQ(m.size(), Size(64, 48));
    EXPECT_EQ(m.depth(), Depth::U8);
  }
  const auto fset = makeImageSet({32, 32}, Depth::F32);
  for (const auto& m : fset) EXPECT_EQ(m.depth(), Depth::F32);
  EXPECT_THROW(makeImageSet({8, 8}, Depth::S32), Error);
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
  // Zero seed must not lock the generator at zero.
  Rng z(0);
  EXPECT_NE(z.next(), 0u);
}

}  // namespace
}  // namespace simdcv::bench
