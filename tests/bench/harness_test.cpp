// Bench harness: statistics, protocol mechanics, formatting.
#include "bench/harness.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace simdcv::bench {
namespace {

TEST(Stats, BasicSummary) {
  const Stats s = summarize({3.0, 1.0, 2.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_EQ(s.runs, 5);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Stats, SingleSampleAndEmpty) {
  const Stats one = summarize({2.5});
  EXPECT_DOUBLE_EQ(one.mean, 2.5);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  const Stats none = summarize({});
  EXPECT_EQ(none.runs, 0);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.stop();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 1.0);
}

TEST(Protocol, RunsImagesTimesCycles) {
  Protocol proto;
  proto.images = 5;
  proto.cycles = 3;
  int calls = 0;
  std::vector<int> order;
  const auto times = runProtocol(proto, [&](int img) {
    ++calls;
    order.push_back(img);
  });
  EXPECT_EQ(calls, 15);
  EXPECT_EQ(times.size(), 15u);
  // Images are cycled 0..4, 0..4, ... exactly as the paper traverses them.
  for (int i = 0; i < 15; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i % 5);
  for (double t : times) EXPECT_GE(t, 0.0);
}

TEST(Protocol, ArgParsing) {
  const char* argvPaper[] = {"bench", "--paper"};
  const Protocol p =
      Protocol::fromArgs(2, const_cast<char**>(argvPaper));
  EXPECT_EQ(p.cycles, 25);
  EXPECT_EQ(p.images, 5);
  const char* argvQuick[] = {"bench", "--quick"};
  EXPECT_EQ(Protocol::fromArgs(2, const_cast<char**>(argvQuick)).cycles, 1);
  const char* argvNone[] = {"bench"};
  EXPECT_EQ(Protocol::fromArgs(1, const_cast<char**>(argvNone)).cycles, 3);
}

TEST(Resolutions, MatchPaper) {
  const auto& r = paperResolutions();
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0].size, Size(640, 480));
  EXPECT_EQ(r[3].size, Size(3264, 2448));
  EXPECT_EQ(r[0].size.area(), 307200);
  EXPECT_EQ(r[3].size.area(), 7990272);  // "8 mpx"
}

TEST(Format, SecondsAndSpeedup) {
  EXPECT_EQ(fmtSeconds(1.23456), "1.235");
  EXPECT_EQ(fmtSeconds(0.012345), "0.0123");
  EXPECT_EQ(fmtSpeedup(4.205), "4.21x");
  EXPECT_EQ(fmtSpeedup(13.879), "13.88x");
}

TEST(Table, PrintsWithoutCrashing) {
  Table t({"a", "bb", "ccc"});
  t.addRow({"1", "2", "3"});
  t.addRow({"long cell", "x", "y"});
  t.print();  // smoke: no assertions, must not crash on uneven widths
}

}  // namespace
}  // namespace simdcv::bench
