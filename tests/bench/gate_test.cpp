// Perf-regression gate (bench/gate.hpp): parsing, row matching, direction
// handling, the strict-inequality tolerance boundary, and the full failure
// taxonomy (missing baseline, corrupt JSON, no overlap, host mismatch)
// against the fixture JSONs under tests/bench/data/.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/gate.hpp"

namespace simdcv::bench::gate {
namespace {

std::string fixture(const char* name) {
  return std::string(SIMDCV_TEST_DATA_DIR) + "/" + name;
}

std::vector<Row> rowsOf(const char* json) {
  std::vector<Row> rows;
  std::string error;
  EXPECT_TRUE(parseResults(json, &rows, &error)) << error;
  return rows;
}

TEST(GateMetricDirection, KnownSuffixes) {
  EXPECT_EQ(metricDirection("speedup"), +1);
  EXPECT_EQ(metricDirection("images_per_sec"), +1);
  EXPECT_EQ(metricDirection("unfused_s"), -1);
  EXPECT_EQ(metricDirection("p99_total_ms"), -1);
  EXPECT_EQ(metricDirection("completed"), 0);
  EXPECT_EQ(metricDirection("rejected_full"), 0);
}

TEST(GateParse, RowSplitsIdentityFromMetrics) {
  const auto rows = rowsOf(
      R"({"results": [{"resolution": "640x480", "workers": 2, "mode": "scan",
                       "images_per_sec": 120.5, "p50_total_ms": 3.2}]})");
  ASSERT_EQ(rows.size(), 1u);
  // workers is a numeric identity: it lands in the id key, canonicalized.
  EXPECT_EQ(rows[0].idKey(), "mode=scan|resolution=640x480|workers=2");
  ASSERT_EQ(rows[0].metrics.size(), 2u);
  EXPECT_EQ(rows[0].metrics[0].first, "images_per_sec");
  EXPECT_DOUBLE_EQ(rows[0].metrics[0].second, 120.5);
}

TEST(GateParse, RejectsMalformedJson) {
  std::vector<Row> rows;
  std::string error;
  EXPECT_FALSE(parseResults("{\"results\": [", &rows, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parseResults("[1, 2, 3]", &rows, &error));
  EXPECT_FALSE(parseResults("{\"bench\": \"x\"}", &rows, &error))
      << "missing results array must be an error";
}

TEST(GateParse, ParseHostCanonicalizes) {
  const std::string h = parseHost(
      R"({"host": {"brand": "CPU X", "logical_cpus": 4, "l1d_kb": 32,
                   "l2_kb": 1024, "l3_kb": 8192}})");
  EXPECT_EQ(h, "CPU X|4|32|1024|8192");
  EXPECT_TRUE(parseHost(R"({"bench": "no host block"})").empty());
}

TEST(GateCompare, WithinToleranceIsOk) {
  const auto base = rowsOf(R"({"results": [{"path": "A", "speedup": 1.00}]})");
  const auto cand = rowsOf(R"({"results": [{"path": "A", "speedup": 0.95}]})");
  const CompareReport rep = compareRows(base, cand, CompareOptions{});
  EXPECT_EQ(rep.outcome, Outcome::Ok);
  EXPECT_EQ(rep.rows_matched, 1);
  EXPECT_EQ(rep.metrics_compared, 1);
}

TEST(GateCompare, RegressionNamesTheMetric) {
  const auto base = rowsOf(
      R"({"results": [{"path": "A", "speedup": 1.50, "total_s": 2.0}]})");
  const auto cand = rowsOf(
      R"({"results": [{"path": "A", "speedup": 1.00, "total_s": 2.1}]})");
  const CompareReport rep = compareRows(base, cand, CompareOptions{});
  EXPECT_EQ(rep.outcome, Outcome::Regression);
  ASSERT_EQ(rep.messages.size(), 1u);  // total_s is within 15%: only speedup
  EXPECT_NE(rep.messages[0].find("REGRESSION"), std::string::npos);
  EXPECT_NE(rep.messages[0].find("speedup"), std::string::npos);
  EXPECT_NE(rep.messages[0].find("path=A"), std::string::npos);
}

TEST(GateCompare, LowerIsBetterDirection) {
  const auto base = rowsOf(R"({"results": [{"path": "A", "total_s": 1.0}]})");
  const auto slower = rowsOf(R"({"results": [{"path": "A", "total_s": 1.3}]})");
  const auto faster = rowsOf(R"({"results": [{"path": "A", "total_s": 0.5}]})");
  EXPECT_EQ(compareRows(base, slower, CompareOptions{}).outcome,
            Outcome::Regression);
  EXPECT_EQ(compareRows(base, faster, CompareOptions{}).outcome, Outcome::Ok);
}

TEST(GateCompare, MetricsFilterAndUnknownNameWarns) {
  const auto base = rowsOf(
      R"({"results": [{"path": "A", "speedup": 2.0, "total_s": 9.0}]})");
  const auto cand = rowsOf(
      R"({"results": [{"path": "A", "speedup": 2.0, "total_s": 1.0}]})");
  CompareOptions opts;
  opts.metrics = {"speedup"};
  const CompareReport rep = compareRows(base, cand, opts);
  EXPECT_EQ(rep.outcome, Outcome::Ok);
  EXPECT_EQ(rep.metrics_compared, 1) << "total_s was not requested";

  // Requesting a direction-less metric by name is flagged, not silently ok.
  opts.metrics = {"completed"};
  const auto base2 = rowsOf(R"({"results": [{"path": "A", "completed": 6}]})");
  const CompareReport rep2 = compareRows(base2, base2, opts);
  ASSERT_EQ(rep2.messages.size(), 1u);
  EXPECT_NE(rep2.messages[0].find("completed"), std::string::npos);
}

TEST(GateCompare, IntersectionOnlySmokeSubsetGatesAgainstFullBaseline) {
  // Baseline has extra rows and an extra metric; the candidate's subset must
  // compare cleanly (the smoke-vs-full protocol case).
  const auto base = rowsOf(
      R"({"results": [{"path": "A", "speedup": 1.0, "extra_s": 1.0},
                      {"path": "B", "speedup": 9.9}]})");
  const auto cand =
      rowsOf(R"({"results": [{"path": "A", "speedup": 1.0, "other_s": 5.0}]})");
  const CompareReport rep = compareRows(base, cand, CompareOptions{});
  EXPECT_EQ(rep.outcome, Outcome::Ok);
  EXPECT_EQ(rep.rows_matched, 1);
  EXPECT_EQ(rep.rows_unmatched, 0);
  EXPECT_EQ(rep.metrics_compared, 1) << "only the shared metric is gated";
}

TEST(GateCompare, ZeroOverlapIsAnErrorNotAPass) {
  const auto base = rowsOf(R"({"results": [{"path": "A", "speedup": 1.0}]})");
  const auto cand = rowsOf(R"({"results": [{"path": "Z", "speedup": 0.1}]})");
  const CompareReport rep = compareRows(base, cand, CompareOptions{});
  EXPECT_EQ(rep.outcome, Outcome::NoOverlap);
  EXPECT_EQ(rep.rows_unmatched, 1);
}

TEST(GateCompare, DegenerateBaselineValueSkipped) {
  const auto base = rowsOf(R"({"results": [{"path": "A", "speedup": 0.0}]})");
  const auto cand = rowsOf(R"({"results": [{"path": "A", "speedup": 0.0}]})");
  const CompareReport rep = compareRows(base, cand, CompareOptions{});
  EXPECT_EQ(rep.outcome, Outcome::Ok);
  EXPECT_EQ(rep.metrics_compared, 0);
}

// ---- fixture-file taxonomy (compareFiles) ----------------------------------

TEST(GateFiles, OkCandidatePasses) {
  const CompareReport rep = compareFiles(fixture("gate_base.json"),
                                         fixture("gate_ok.json"),
                                         CompareOptions{});
  EXPECT_EQ(rep.outcome, Outcome::Ok)
      << (rep.messages.empty() ? "" : rep.messages[0]);
  EXPECT_EQ(rep.rows_matched, 2);
}

TEST(GateFiles, MissingBaseline) {
  const CompareReport rep = compareFiles(fixture("gate_never_written.json"),
                                         fixture("gate_ok.json"),
                                         CompareOptions{});
  EXPECT_EQ(rep.outcome, Outcome::MissingBaseline);
}

TEST(GateFiles, MissingCandidateIsParseError) {
  // The candidate is the run the caller just made; its absence is a bug,
  // not a vouch-less pass.
  const CompareReport rep = compareFiles(fixture("gate_base.json"),
                                         fixture("gate_never_written.json"),
                                         CompareOptions{});
  EXPECT_EQ(rep.outcome, Outcome::ParseError);
}

TEST(GateFiles, CorruptJson) {
  EXPECT_EQ(compareFiles(fixture("gate_corrupt.json"), fixture("gate_ok.json"),
                         CompareOptions{})
                .outcome,
            Outcome::ParseError);
  EXPECT_EQ(compareFiles(fixture("gate_base.json"),
                         fixture("gate_corrupt.json"), CompareOptions{})
                .outcome,
            Outcome::ParseError);
}

TEST(GateFiles, InjectedRegressionFailsAndNamesMetric) {
  const CompareReport rep = compareFiles(fixture("gate_base.json"),
                                         fixture("gate_regression.json"),
                                         CompareOptions{});
  EXPECT_EQ(rep.outcome, Outcome::Regression);
  ASSERT_FALSE(rep.messages.empty());
  EXPECT_NE(rep.messages[0].find("speedup"), std::string::npos);
}

TEST(GateFiles, ExactlyAtToleranceBoundaryPasses) {
  // tol 0.25 with base/cand values whose products are exact in binary
  // (80 * 1.25 == 100, 2.0 * 1.25 == 2.5): the boundary itself must pass —
  // "worse than 25%" gates, "exactly 25% worse" does not.
  CompareOptions opts;
  opts.tolerance = 0.25;
  const CompareReport rep = compareFiles(fixture("gate_base.json"),
                                         fixture("gate_at_tolerance.json"),
                                         opts);
  EXPECT_EQ(rep.outcome, Outcome::Ok)
      << (rep.messages.empty() ? "" : rep.messages[0]);
  EXPECT_GE(rep.metrics_compared, 3);
  // One hair past the boundary regresses.
  opts.tolerance = 0.249;
  EXPECT_EQ(compareFiles(fixture("gate_base.json"),
                         fixture("gate_at_tolerance.json"), opts)
                .outcome,
            Outcome::Regression);
}

TEST(GateFiles, HostMismatchRefusesToVouch) {
  const CompareReport rep = compareFiles(fixture("gate_base.json"),
                                         fixture("gate_otherhost.json"),
                                         CompareOptions{});
  EXPECT_EQ(rep.outcome, Outcome::HostMismatch);
  ASSERT_FALSE(rep.messages.empty());
  EXPECT_NE(rep.messages[0].find("host"), std::string::npos);

  CompareOptions opts;
  opts.ignore_host_mismatch = true;
  EXPECT_EQ(compareFiles(fixture("gate_base.json"),
                         fixture("gate_otherhost.json"), opts)
                .outcome,
            Outcome::Ok);
}

}  // namespace
}  // namespace simdcv::bench::gate
