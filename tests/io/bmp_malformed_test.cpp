// Crafted malformed-BMP corpus: every file here is a mutation of a valid
// header that historically could drive readBmp out of bounds (palette reads
// past EOF, size arithmetic wrapping, INT32_MIN height negation). The
// contract under test: readBmp either returns a valid Mat or throws a clean
// simdcv::Error — never crashes, never reads outside the file buffer.
#include "io/image_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include <unistd.h>

namespace simdcv::io {
namespace {

class BadBmpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: a shared scratch dir races under `ctest -j` (each
    // discovered test is its own process; TearDown's remove_all would delete
    // a sibling's files mid-test).
    dir_ = std::filesystem::temp_directory_path() /
           ("simdcv_bad_bmp_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write(const std::vector<std::uint8_t>& bytes) {
    const std::string p = (dir_ / "case.bmp").string();
    std::ofstream f(p, std::ios::binary);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    return p;
  }

  std::filesystem::path dir_;
};

void putU32At(std::vector<std::uint8_t>& b, std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b[off + static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(v >> (8 * i));
}

/// A well-formed baseline file produced by the library's own writer: 8-bit
/// grayscale (so it has the 1024-byte palette) or 24-bit color.
std::vector<std::uint8_t> goodBmp(int channels) {
  Mat img(6, 5, PixelType(Depth::U8, channels));
  for (int y = 0; y < img.rows(); ++y)
    for (int x = 0; x < img.cols() * channels; ++x)
      img.at<std::uint8_t>(y, x) = static_cast<std::uint8_t>(16 * y + x);
  const std::string p =
      (std::filesystem::temp_directory_path() /
       ("simdcv_bad_bmp_seed_" + std::to_string(::getpid()) + ".bmp"))
          .string();
  writeBmp(p, img);
  std::ifstream f(p, std::ios::binary);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  std::filesystem::remove(p);
  return bytes;
}

// Header offsets (BITMAPFILEHEADER + BITMAPINFOHEADER).
constexpr std::size_t kOffDataOffset = 10;
constexpr std::size_t kOffInfoSize = 14;
constexpr std::size_t kOffWidth = 18;
constexpr std::size_t kOffHeight = 22;

TEST_F(BadBmpTest, BaselinesParse) {
  EXPECT_EQ(readBmp(write(goodBmp(1))).type(), U8C1);
  EXPECT_EQ(readBmp(write(goodBmp(3))).type(), U8C3);
}

TEST_F(BadBmpTest, DataOffsetBeyondEof) {
  auto b = goodBmp(3);
  putU32At(b, kOffDataOffset, static_cast<std::uint32_t>(b.size()) + 1000);
  EXPECT_THROW(readBmp(write(b)), Error);
}

TEST_F(BadBmpTest, DataOffsetNearUint32MaxWrapsNothing) {
  auto b = goodBmp(3);
  putU32At(b, kOffDataOffset, 0xfffffff0u);
  EXPECT_THROW(readBmp(write(b)), Error);
}

TEST_F(BadBmpTest, HugeDimensionsOverflowRowMath) {
  // rowBytes * h ~= 2^64: the old `dataOffset + rowBytes*h <= size` test
  // wrapped to a small number and passed, then the row loop read wild.
  auto b = goodBmp(3);
  putU32At(b, kOffWidth, 0x7fffffffu);
  putU32At(b, kOffHeight, 0x7fffffffu);
  EXPECT_THROW(readBmp(write(b)), Error);
}

TEST_F(BadBmpTest, HeightInt32MinCannotBeNegated) {
  auto b = goodBmp(3);
  putU32At(b, kOffHeight, 0x80000000u);  // INT32_MIN: -h is UB
  EXPECT_THROW(readBmp(write(b)), Error);
}

TEST_F(BadBmpTest, WidthZeroOrNegative) {
  for (std::uint32_t w : {0u, 0xffffffffu /* -1 */}) {
    auto b = goodBmp(3);
    putU32At(b, kOffWidth, w);
    EXPECT_THROW(readBmp(write(b)), Error) << w;
  }
}

TEST_F(BadBmpTest, BogusInfoHeaderSizePushesPaletteOutOfFile) {
  // infoSize positions the palette; a huge value pointed the palette scan
  // gigabytes past the buffer.
  for (std::uint32_t infoSize : {0x10000u, 0xffffffffu}) {
    auto b = goodBmp(1);
    putU32At(b, kOffInfoSize, infoSize);
    EXPECT_THROW(readBmp(write(b)), Error) << infoSize;
  }
}

TEST_F(BadBmpTest, PaletteTruncatedAtEof) {
  auto b = goodBmp(1);
  b.resize(14 + 40 + 100);  // file ends 100 bytes into the 1024-byte palette
  // Keep the header's dataOffset/height: the pixel-data truncation check
  // must not be the only thing standing between the palette scan and EOF.
  EXPECT_THROW(readBmp(write(b)), Error);
}

TEST_F(BadBmpTest, PixelDataTruncated) {
  auto b = goodBmp(3);
  b.resize(b.size() - 20);
  EXPECT_THROW(readBmp(write(b)), Error);
}

TEST_F(BadBmpTest, HeaderOnlyFile) {
  auto b = goodBmp(3);
  b.resize(14 + 40);
  EXPECT_THROW(readBmp(write(b)), Error);
}

TEST_F(BadBmpTest, EightBitDataOffsetInsidePalette) {
  // dataOffset pointing before the end of the palette would alias pixel
  // reads with palette bytes; the reader rejects the layout outright.
  auto b = goodBmp(1);
  putU32At(b, kOffDataOffset, 14 + 40 + 10);
  EXPECT_THROW(readBmp(write(b)), Error);
}

TEST_F(BadBmpTest, TopDownHeightStillParses) {
  // Negative height = top-down row order, a valid (if unusual) layout; the
  // hardening must not reject it. Row 0 of a top-down file is row 0 of the
  // image, so flipping the sign on a bottom-up file mirrors it vertically.
  auto b = goodBmp(1);
  const Mat up = readBmp(write(b));
  putU32At(b, kOffHeight, static_cast<std::uint32_t>(-up.rows()));
  const Mat down = readBmp(write(b));
  ASSERT_EQ(down.size(), up.size());
  for (int y = 0; y < up.rows(); ++y) {
    EXPECT_EQ(0, std::memcmp(up.ptr<std::uint8_t>(y),
                             down.ptr<std::uint8_t>(up.rows() - 1 - y),
                             static_cast<std::size_t>(up.cols())));
  }
}

}  // namespace
}  // namespace simdcv::io
