// Image I/O round trips and format edge cases.
#include "io/image_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <filesystem>
#include <random>
#include <unistd.h>

namespace simdcv::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest runs each discovered test as its own process,
    // and a shared scratch dir makes one test's remove_all race another's
    // reads under `ctest -j`.
    dir_ = std::filesystem::temp_directory_path() /
           ("simdcv_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

Mat randomU8(int rows, int cols, int channels, unsigned seed) {
  Mat m(rows, cols, PixelType(Depth::U8, channels));
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols * channels; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng() & 0xff);
  return m;
}

TEST_F(IoTest, BmpGrayRoundTrip) {
  const Mat img = randomU8(37, 53, 1, 1);  // width not divisible by 4: padding
  writeBmp(path("g.bmp"), img);
  const Mat back = readBmp(path("g.bmp"));
  ASSERT_EQ(back.type(), U8C1);
  ASSERT_EQ(back.size(), img.size());
  EXPECT_EQ(countMismatches(img, back), 0u);
}

TEST_F(IoTest, BmpColorRoundTrip) {
  const Mat img = randomU8(24, 31, 3, 2);
  writeBmp(path("c.bmp"), img);
  const Mat back = readBmp(path("c.bmp"));
  ASSERT_EQ(back.type(), U8C3);
  EXPECT_EQ(countMismatches(img, back), 0u);
}

TEST_F(IoTest, BmpRowPaddingWidths) {
  for (int w : {1, 2, 3, 4, 5, 7, 8, 33}) {
    const Mat img = randomU8(5, w, 1, static_cast<unsigned>(w));
    writeBmp(path("p.bmp"), img);
    EXPECT_EQ(countMismatches(img, readBmp(path("p.bmp"))), 0u) << w;
  }
}

TEST_F(IoTest, BmpSizeMatchesPaperFormula) {
  // The paper quotes 1.2MB for 640x480 bitmaps (24-bit color + header).
  const Mat img = randomU8(480, 640, 3, 3);
  writeBmp(path("s.bmp"), img);
  const auto bytes = std::filesystem::file_size(path("s.bmp"));
  EXPECT_NEAR(static_cast<double>(bytes), 640.0 * 480 * 3 + 54, 64.0);
}

TEST_F(IoTest, BmpRoiSourceWrites) {
  Mat big = randomU8(20, 20, 1, 4);
  Mat view = big.roi(Rect(2, 2, 10, 9));
  writeBmp(path("roi.bmp"), view);
  EXPECT_EQ(countMismatches(view.clone(), readBmp(path("roi.bmp"))), 0u);
}

TEST_F(IoTest, BmpRejectsGarbage) {
  {
    std::FILE* f = std::fopen(path("bad.bmp").c_str(), "wb");
    std::fputs("this is not a bitmap at all", f);
    std::fclose(f);
  }
  EXPECT_THROW(readBmp(path("bad.bmp")), Error);
  EXPECT_THROW(readBmp(path("missing.bmp")), Error);
}

TEST_F(IoTest, BmpRejectsWrongType) {
  Mat f32(4, 4, F32C1);
  EXPECT_THROW(writeBmp(path("f.bmp"), f32), Error);
  Mat empty;
  EXPECT_THROW(writeBmp(path("e.bmp"), empty), Error);
}

TEST_F(IoTest, PgmRoundTrip) {
  const Mat img = randomU8(17, 29, 1, 5);
  writePnm(path("g.pgm"), img);
  EXPECT_EQ(countMismatches(img, readPnm(path("g.pgm"))), 0u);
}

TEST_F(IoTest, PpmRoundTrip) {
  const Mat img = randomU8(9, 14, 3, 6);
  writePnm(path("c.ppm"), img);
  const Mat back = readPnm(path("c.ppm"));
  ASSERT_EQ(back.channels(), 3);
  EXPECT_EQ(countMismatches(img, back), 0u);
}

TEST_F(IoTest, PnmHandlesComments) {
  {
    std::FILE* f = std::fopen(path("cmt.pgm").c_str(), "wb");
    std::fputs("P5\n# a comment line\n2 2\n# another\n255\n", f);
    const unsigned char px[4] = {1, 2, 3, 4};
    std::fwrite(px, 1, 4, f);
    std::fclose(f);
  }
  const Mat img = readPnm(path("cmt.pgm"));
  ASSERT_EQ(img.size(), Size(2, 2));
  EXPECT_EQ(img.at<std::uint8_t>(1, 1), 4);
}

TEST_F(IoTest, PnmRejectsTruncated) {
  {
    std::FILE* f = std::fopen(path("t.pgm").c_str(), "wb");
    std::fputs("P5\n100 100\n255\nxx", f);
    std::fclose(f);
  }
  EXPECT_THROW(readPnm(path("t.pgm")), Error);
}

TEST_F(IoTest, DispatchByExtension) {
  const Mat img = randomU8(8, 8, 1, 7);
  writeImage(path("a.bmp"), img);
  writeImage(path("a.pgm"), img);
  EXPECT_EQ(countMismatches(img, readImage(path("a.bmp"))), 0u);
  EXPECT_EQ(countMismatches(img, readImage(path("a.pgm"))), 0u);
  EXPECT_THROW(writeImage(path("a.jpg"), img), Error);
  EXPECT_THROW(readImage(path("a.xyz")), Error);
}

TEST_F(IoTest, Bmp32BitReadsAsBgr) {
  // Hand-craft a 2x1 32-bit BMP (BGRA); reader must drop alpha -> U8C3.
  std::vector<std::uint8_t> f;
  auto u16 = [&](unsigned v) { f.push_back(v & 0xff); f.push_back((v >> 8) & 0xff); };
  auto u32 = [&](unsigned v) { for (int i = 0; i < 4; ++i) f.push_back((v >> (8 * i)) & 0xff); };
  f.push_back('B'); f.push_back('M');
  u32(54 + 8); u32(0); u32(54);            // file header
  u32(40); u32(2); u32(1); u16(1); u16(32); // info: 2x1, 32bpp
  u32(0); u32(8); u32(2835); u32(2835); u32(0); u32(0);
  // Pixel row (bottom-up, single row): BGRA BGRA.
  const std::uint8_t px[8] = {10, 20, 30, 255, 40, 50, 60, 128};
  f.insert(f.end(), px, px + 8);
  {
    std::FILE* fp = std::fopen(path("p32.bmp").c_str(), "wb");
    std::fwrite(f.data(), 1, f.size(), fp);
    std::fclose(fp);
  }
  const Mat img = readBmp(path("p32.bmp"));
  ASSERT_EQ(img.type(), U8C3);
  ASSERT_EQ(img.size(), Size(2, 1));
  EXPECT_EQ(img.at<std::uint8_t>(0, 0), 10);
  EXPECT_EQ(img.at<std::uint8_t>(0, 2), 30);
  EXPECT_EQ(img.at<std::uint8_t>(0, 3), 40);  // second pixel B
}

TEST_F(IoTest, BmpNonGrayPaletteExpandsToColor) {
  // 8-bit BMP whose palette is NOT the identity ramp: reader must expand
  // through the palette into U8C3.
  std::vector<std::uint8_t> f;
  auto u16 = [&](unsigned v) { f.push_back(v & 0xff); f.push_back((v >> 8) & 0xff); };
  auto u32 = [&](unsigned v) { for (int i = 0; i < 4; ++i) f.push_back((v >> (8 * i)) & 0xff); };
  f.push_back('B'); f.push_back('M');
  const unsigned dataOff = 54 + 256 * 4;
  u32(dataOff + 4); u32(0); u32(dataOff);
  u32(40); u32(1); u32(1); u16(1); u16(8);
  u32(0); u32(4); u32(2835); u32(2835); u32(256); u32(0);
  for (int i = 0; i < 256; ++i) {      // palette: entry i = (B=i, G=2i, R=255-i)
    f.push_back(static_cast<std::uint8_t>(i));
    f.push_back(static_cast<std::uint8_t>(2 * i));
    f.push_back(static_cast<std::uint8_t>(255 - i));
    f.push_back(0);
  }
  f.push_back(7); f.push_back(0); f.push_back(0); f.push_back(0);  // 1 px + pad
  {
    std::FILE* fp = std::fopen(path("pal.bmp").c_str(), "wb");
    std::fwrite(f.data(), 1, f.size(), fp);
    std::fclose(fp);
  }
  const Mat img = readBmp(path("pal.bmp"));
  ASSERT_EQ(img.type(), U8C3);
  EXPECT_EQ(img.at<std::uint8_t>(0, 0), 7);        // B
  EXPECT_EQ(img.at<std::uint8_t>(0, 1), 14);       // G
  EXPECT_EQ(img.at<std::uint8_t>(0, 2), 255 - 7);  // R
}

TEST_F(IoTest, BmpTopDownHeightNegative) {
  // Write a bottom-up file through writeBmp, then flip the height sign and
  // reverse rows manually to make a top-down file: both must read equal.
  const Mat img = randomU8(6, 4, 1, 42);
  writeBmp(path("bu.bmp"), img);
  std::ifstream in(path("bu.bmp"), std::ios::binary);
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  // height at offset 22 -> -6 (two's complement), and reverse the 6 rows.
  const std::int32_t negH = -6;
  std::memcpy(&buf[22], &negH, 4);
  const unsigned dataOff = buf[10] | (buf[11] << 8);
  const std::size_t rowBytes = 4;  // width 4, 8bpp, padded to 4
  for (int r = 0; r < 3; ++r)
    for (std::size_t b = 0; b < rowBytes; ++b)
      std::swap(buf[dataOff + r * rowBytes + b],
                buf[dataOff + (5 - r) * rowBytes + b]);
  {
    std::FILE* fp = std::fopen(path("td.bmp").c_str(), "wb");
    std::fwrite(buf.data(), 1, buf.size(), fp);
    std::fclose(fp);
  }
  EXPECT_EQ(countMismatches(img, readBmp(path("td.bmp"))), 0u);
}

}  // namespace
}  // namespace simdcv::io
