// Resize: identity, exact analytic cases, path agreement, interpolation
// properties.
#include "imgproc/resize.hpp"

#include <gtest/gtest.h>

#include <random>

namespace simdcv::imgproc {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Neon};
}

Mat randomU8(int rows, int cols, unsigned seed, int ch = 1) {
  Mat m(rows, cols, PixelType(Depth::U8, ch));
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols * ch; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  return m;
}

TEST(Resize, IdentitySizeIsExactCopy) {
  const Mat src = randomU8(17, 23, 1);
  for (auto interp : {Interp::Nearest, Interp::Linear}) {
    Mat dst;
    resize(src, dst, {23, 17}, interp);
    EXPECT_EQ(countMismatches(src, dst), 0u);
  }
}

TEST(Resize, NearestUpscale2xReplicatesPixels) {
  Mat src(2, 2, U8C1);
  src.at<std::uint8_t>(0, 0) = 10;
  src.at<std::uint8_t>(0, 1) = 20;
  src.at<std::uint8_t>(1, 0) = 30;
  src.at<std::uint8_t>(1, 1) = 40;
  Mat dst;
  resize(src, dst, {4, 4}, Interp::Nearest);
  EXPECT_EQ(dst.at<std::uint8_t>(0, 0), 10);
  EXPECT_EQ(dst.at<std::uint8_t>(0, 1), 10);
  EXPECT_EQ(dst.at<std::uint8_t>(1, 1), 10);
  EXPECT_EQ(dst.at<std::uint8_t>(0, 2), 20);
  EXPECT_EQ(dst.at<std::uint8_t>(3, 3), 40);
  EXPECT_EQ(dst.at<std::uint8_t>(2, 0), 30);
}

TEST(Resize, LinearConstantImageStaysConstant) {
  const Mat src = full(10, 14, U8C1, 137);
  Mat up, down;
  resize(src, up, {29, 21});
  resize(src, down, {5, 3});
  EXPECT_EQ(countMismatches(up, full(21, 29, U8C1, 137)), 0u);
  EXPECT_EQ(countMismatches(down, full(3, 5, U8C1, 137)), 0u);
}

TEST(Resize, LinearMidpointOfTwoPixels) {
  // 1x2 -> 1x4 linear: inner samples sit 0.25/0.75 of the way between.
  Mat src(1, 2, U8C1);
  src.at<std::uint8_t>(0, 0) = 0;
  src.at<std::uint8_t>(0, 1) = 200;
  Mat dst;
  resize(src, dst, {4, 1});
  // sx = (dx+0.5)*0.5 - 0.5 -> -0.25 (clamp 0), 0.25, 0.75 (clamp), 1.25.
  EXPECT_EQ(dst.at<std::uint8_t>(0, 0), 0);
  EXPECT_EQ(dst.at<std::uint8_t>(0, 1), 50);
  EXPECT_EQ(dst.at<std::uint8_t>(0, 2), 150);
  EXPECT_EQ(dst.at<std::uint8_t>(0, 3), 200);
}

TEST(Resize, F32LinearMatchesAnalytic) {
  Mat src(1, 2, F32C1);
  src.at<float>(0, 0) = 0.0f;
  src.at<float>(0, 1) = 1.0f;
  Mat dst;
  resize(src, dst, {4, 1});
  EXPECT_FLOAT_EQ(dst.at<float>(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dst.at<float>(0, 1), 0.25f);
  EXPECT_FLOAT_EQ(dst.at<float>(0, 2), 0.75f);
  EXPECT_FLOAT_EQ(dst.at<float>(0, 3), 1.0f);
}

TEST(Resize, AllPathsBitExactU8) {
  const Mat src = randomU8(37, 53, 2);
  Mat ref;
  resize(src, ref, {97, 71}, Interp::Linear, KernelPath::Auto);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    resize(src, got, {97, 71}, Interp::Linear, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

TEST(Resize, AllPathsBitExactF32) {
  Mat src(21, 30, F32C1);
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> dist(-5.f, 5.f);
  for (int r = 0; r < 21; ++r)
    for (int c = 0; c < 30; ++c) src.at<float>(r, c) = dist(rng);
  Mat ref;
  resize(src, ref, {44, 55}, Interp::Linear, KernelPath::Auto);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    resize(src, got, {44, 55}, Interp::Linear, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

TEST(Resize, C3InterleavedChannelsIndependent) {
  const Mat src = randomU8(8, 8, 4, 3);
  Mat dst;
  resize(src, dst, {16, 16});
  ASSERT_EQ(dst.channels(), 3);
  // Each channel must equal resizing that channel alone.
  for (int k = 0; k < 3; ++k) {
    Mat plane(8, 8, U8C1);
    for (int r = 0; r < 8; ++r)
      for (int c = 0; c < 8; ++c)
        plane.at<std::uint8_t>(r, c) = src.at<std::uint8_t>(r, 3 * c + k);
    Mat presized;
    resize(plane, presized, {16, 16});
    for (int r = 0; r < 16; ++r)
      for (int c = 0; c < 16; ++c)
        ASSERT_EQ(dst.at<std::uint8_t>(r, 3 * c + k),
                  presized.at<std::uint8_t>(r, c))
            << k;
  }
}

TEST(Resize, DownscalePreservesMeanRoughly) {
  const Mat src = randomU8(64, 64, 5);
  Mat dst;
  resize(src, dst, {16, 16});
  auto meanOf = [](const Mat& m) {
    double s = 0;
    for (int r = 0; r < m.rows(); ++r)
      for (int c = 0; c < m.cols(); ++c) s += m.at<std::uint8_t>(r, c);
    return s / static_cast<double>(m.total());
  };
  EXPECT_NEAR(meanOf(src), meanOf(dst), 12.0);
}

TEST(Resize, MonotoneRampStaysMonotone) {
  Mat src(1, 16, U8C1);
  for (int c = 0; c < 16; ++c)
    src.at<std::uint8_t>(0, c) = static_cast<std::uint8_t>(c * 16);
  Mat dst;
  resize(src, dst, {37, 1});
  for (int c = 1; c < 37; ++c)
    EXPECT_GE(dst.at<std::uint8_t>(0, c), dst.at<std::uint8_t>(0, c - 1));
}

TEST(Resize, ExtremeScales) {
  const Mat src = randomU8(13, 17, 6);
  Mat one, big;
  resize(src, one, {1, 1});
  EXPECT_EQ(one.size(), Size(1, 1));
  resize(one, big, {32, 32});
  EXPECT_EQ(countMismatches(big, full(32, 32, U8C1, one.at<std::uint8_t>(0, 0))), 0u);
}

TEST(Resize, Validation) {
  Mat src = randomU8(4, 4, 7), dst;
  EXPECT_THROW(resize(src, dst, {0, 4}), Error);
  Mat s16(4, 4, S16C1);
  EXPECT_THROW(resize(s16, dst, {8, 8}), Error);
  Mat empty;
  EXPECT_THROW(resize(empty, dst, {8, 8}), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
