// Distance transform and Hough line detection.
#include "imgproc/distance.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace simdcv::imgproc {
namespace {

TEST(DistanceTransform, SingleSeedL1) {
  // One zero pixel in the center: L1 metric gives city-block distance.
  Mat bin = full(9, 9, U8C1, 255);
  bin.at<std::uint8_t>(4, 4) = 0;
  Mat dist;
  distanceTransform(bin, dist, DistanceMetric::L1);
  for (int y = 0; y < 9; ++y)
    for (int x = 0; x < 9; ++x)
      EXPECT_FLOAT_EQ(dist.at<float>(y, x),
                      static_cast<float>(std::abs(x - 4) + std::abs(y - 4)))
          << x << "," << y;
}

TEST(DistanceTransform, ChamferApproximatesEuclidean) {
  Mat bin = full(21, 21, U8C1, 255);
  bin.at<std::uint8_t>(10, 10) = 0;
  Mat dist;
  distanceTransform(bin, dist, DistanceMetric::Chamfer);
  // Exact on axes, within ~8% of Euclidean elsewhere (3-4 chamfer bound).
  EXPECT_FLOAT_EQ(dist.at<float>(10, 15), 5.0f);
  EXPECT_FLOAT_EQ(dist.at<float>(3, 10), 7.0f);
  for (int y = 2; y < 19; ++y)
    for (int x = 2; x < 19; ++x) {
      const double eu = std::hypot(x - 10, y - 10);
      if (eu == 0) continue;
      EXPECT_NEAR(dist.at<float>(y, x) / eu, 1.0, 0.09) << x << "," << y;
    }
}

TEST(DistanceTransform, ZeroEverywhereOnZeros) {
  Mat dist;
  distanceTransform(zeros(6, 6, U8C1), dist);
  EXPECT_EQ(countMismatches(dist, zeros(6, 6, F32C1)), 0u);
}

TEST(DistanceTransform, AllForegroundGivesInfinity) {
  Mat dist;
  distanceTransform(full(4, 4, U8C1, 1), dist);
  EXPECT_TRUE(std::isinf(dist.at<float>(2, 2)));
}

TEST(DistanceTransform, NearestOfTwoSeedsWins) {
  Mat bin = full(5, 20, U8C1, 255);
  bin.at<std::uint8_t>(2, 2) = 0;
  bin.at<std::uint8_t>(2, 17) = 0;
  Mat dist;
  distanceTransform(bin, dist, DistanceMetric::L1);
  EXPECT_FLOAT_EQ(dist.at<float>(2, 5), 3.0f);    // nearer to seed at 2
  EXPECT_FLOAT_EQ(dist.at<float>(2, 14), 3.0f);   // nearer to seed at 17
  EXPECT_FLOAT_EQ(dist.at<float>(2, 9), 7.0f);    // midpoint-ish
}

TEST(HoughLines, DetectsHorizontalAndVerticalLines) {
  Mat edges = zeros(64, 64, U8C1);
  for (int x = 0; x < 64; ++x) edges.at<std::uint8_t>(20, x) = 255;  // y = 20
  for (int y = 0; y < 64; ++y) edges.at<std::uint8_t>(y, 45) = 255;  // x = 45
  const auto lines = houghLines(edges, 1.0, M_PI / 180.0, 50);
  ASSERT_GE(lines.size(), 2u);
  bool horiz = false, vert = false;
  for (const auto& l : lines) {
    // Horizontal line y=20: theta ~ pi/2, rho ~ 20.
    if (std::abs(l.theta - M_PI / 2) < 0.03 && std::abs(l.rho - 20) < 1.5)
      horiz = true;
    // Vertical line x=45: theta ~ 0, rho ~ 45.
    if ((l.theta < 0.03 || l.theta > M_PI - 0.03) && std::abs(std::abs(l.rho) - 45) < 1.5)
      vert = true;
  }
  EXPECT_TRUE(horiz);
  EXPECT_TRUE(vert);
}

TEST(HoughLines, DetectsDiagonal) {
  Mat edges = zeros(64, 64, U8C1);
  for (int i = 0; i < 64; ++i) edges.at<std::uint8_t>(i, i) = 255;  // y = x
  const auto lines = houghLines(edges, 1.0, M_PI / 180.0, 40);
  ASSERT_FALSE(lines.empty());
  // y = x: x*cos(3pi/4) + y*sin(3pi/4) = 0 -> theta ~ 135 deg, rho ~ 0.
  const auto& top = lines.front();
  EXPECT_NEAR(top.theta, 3 * M_PI / 4, 0.03);
  EXPECT_NEAR(top.rho, 0.0, 1.5);
}

TEST(HoughLines, VoteCountMatchesLineLength) {
  Mat edges = zeros(32, 32, U8C1);
  for (int x = 4; x < 28; ++x) edges.at<std::uint8_t>(10, x) = 255;  // 24 px
  const auto lines = houghLines(edges, 1.0, M_PI / 180.0, 10);
  ASSERT_FALSE(lines.empty());
  EXPECT_NEAR(lines.front().votes, 24, 2);
}

TEST(HoughLines, NoiseBelowThresholdYieldsNothing) {
  Mat edges = zeros(32, 32, U8C1);
  edges.at<std::uint8_t>(3, 7) = 255;
  edges.at<std::uint8_t>(20, 11) = 255;
  EXPECT_TRUE(houghLines(edges, 1.0, M_PI / 180.0, 5).empty());
}

TEST(HoughLines, StrongestFirstOrdering) {
  Mat edges = zeros(64, 64, U8C1);
  for (int x = 0; x < 64; ++x) edges.at<std::uint8_t>(10, x) = 255;  // long
  for (int x = 20; x < 44; ++x) edges.at<std::uint8_t>(40, x) = 255; // short
  const auto lines = houghLines(edges, 1.0, M_PI / 180.0, 15);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_GE(lines[0].votes, lines[1].votes);
  EXPECT_NEAR(lines[0].rho, 10, 1.5);  // long line wins
}

TEST(HoughLines, Validation) {
  Mat edges = zeros(8, 8, U8C1);
  EXPECT_THROW(houghLines(edges, 0.0, 0.01, 5), Error);
  EXPECT_THROW(houghLines(edges, 1.0, 0.01, 0), Error);
  Mat f(4, 4, F32C1), d;
  EXPECT_THROW(houghLines(f, 1.0, 0.01, 5), Error);
  EXPECT_THROW(distanceTransform(f, d), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
