// Property tests of the separable filter engine as a linear shift-invariant
// system: impulse response equals the kernel, linearity, shift equivariance,
// DC preservation, separability, and path-independence of all of it.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/array_ops.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/geometry.hpp"
#include "imgproc/kernels.hpp"

namespace simdcv::imgproc {
namespace {

Mat randomF32(int rows, int cols, unsigned seed) {
  Mat m(rows, cols, F32C1);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-4.f, 4.f);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) m.at<float>(r, c) = dist(rng);
  return m;
}

TEST(FilterProperties, ImpulseResponseIsTheOuterProductKernel) {
  // Correlation with a centered impulse reproduces the (flipped) kernel;
  // for correlation semantics, dst(y,x) = kx[x-cx+rx] * ky[y-cy+ry] flipped.
  const std::vector<float> kx = {0.1f, 0.2f, 0.7f};  // asymmetric
  const std::vector<float> ky = {0.6f, 0.3f, 0.1f};
  Mat impulse = zeros(9, 9, F32C1);
  impulse.at<float>(4, 4) = 1.0f;
  Mat resp;
  sepFilter2D(impulse, resp, Depth::F32, kx, ky);
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 3; ++i) {
      // Correlation: output at (4 - (j-1), 4 - (i-1)) sees kernel tap (j,i).
      EXPECT_NEAR(resp.at<float>(4 - (j - 1), 4 - (i - 1)),
                  ky[static_cast<std::size_t>(j)] * kx[static_cast<std::size_t>(i)],
                  1e-6)
          << i << "," << j;
    }
  // Everything beyond the support is zero.
  EXPECT_FLOAT_EQ(resp.at<float>(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(resp.at<float>(4, 7), 0.0f);
}

TEST(FilterProperties, Linearity) {
  const Mat a = randomF32(17, 21, 1);
  const Mat b = randomF32(17, 21, 2);
  const auto k = getGaussianKernel(5, 1.1);
  Mat fa, fb, fsum, sum;
  sepFilter2D(a, fa, Depth::F32, k, k);
  sepFilter2D(b, fb, Depth::F32, k, k);
  Mat aplusb;
  core::add(a, b, aplusb);
  sepFilter2D(aplusb, fsum, Depth::F32, k, k);
  core::add(fa, fb, sum);
  EXPECT_LT(maxAbsDiff(fsum, sum), 1e-4);
}

TEST(FilterProperties, ShiftEquivariance) {
  // Filtering commutes with translation (away from borders).
  const Mat a = randomF32(24, 24, 3);
  const auto k = getGaussianKernel(3, 0.9);
  Mat fa;
  sepFilter2D(a, fa, Depth::F32, k, k);
  // Shift right/down by 2 using warpAffine with replicate border.
  AffineMat m = affineIdentity();
  m[2] = -2;
  m[5] = -2;
  Mat shifted, fshifted, faShifted;
  warpAffine(a, shifted, m, {24, 24}, BorderType::Replicate);
  sepFilter2D(shifted, fshifted, Depth::F32, k, k);
  warpAffine(fa, faShifted, m, {24, 24}, BorderType::Replicate);
  for (int r = 4; r < 22; ++r)
    for (int c = 4; c < 22; ++c)
      EXPECT_NEAR(fshifted.at<float>(r, c), faShifted.at<float>(r, c), 1e-4);
}

TEST(FilterProperties, UnitDcGainPreservesConstants) {
  for (int ks : {3, 5, 9}) {
    const auto k = getGaussianKernel(ks, 1.4);
    Mat flat = full(12, 12, F32C1, -7.25);
    Mat out;
    sepFilter2D(flat, out, Depth::F32, k, k);
    for (int r = 0; r < 12; ++r)
      for (int c = 0; c < 12; ++c)
        EXPECT_NEAR(out.at<float>(r, c), -7.25f, 1e-4);
  }
}

TEST(FilterProperties, SeparableEqualsSequentialPasses) {
  // kx then ky as two 1-D passes equals one sepFilter2D call.
  const Mat a = randomF32(19, 23, 4);
  const std::vector<float> kx = {0.25f, 0.5f, 0.25f};
  const std::vector<float> ky = {-0.5f, 1.0f, -0.5f};
  const std::vector<float> id = {1.0f};
  Mat once, rowPass, twoPass;
  sepFilter2D(a, once, Depth::F32, kx, ky);
  sepFilter2D(a, rowPass, Depth::F32, kx, id);
  sepFilter2D(rowPass, twoPass, Depth::F32, id, ky);
  EXPECT_LT(maxAbsDiff(once, twoPass), 1e-4);
}

TEST(FilterProperties, GaussianComposesApproximately) {
  // G(s1) * G(s2) ~ G(sqrt(s1^2+s2^2)) in the interior.
  const Mat a = randomF32(48, 48, 5);
  Mat g1, g12, gBoth;
  GaussianBlur(a, g1, {9, 9}, 1.0);
  GaussianBlur(g1, g12, {9, 9}, 1.0);
  GaussianBlur(a, gBoth, {13, 13}, std::sqrt(2.0));
  double err = 0;
  for (int r = 10; r < 38; ++r)
    for (int c = 10; c < 38; ++c)
      err = std::max(err, static_cast<double>(std::abs(
                              g12.at<float>(r, c) - gBoth.at<float>(r, c))));
  EXPECT_LT(err, 0.05);  // truncation makes this approximate
}

TEST(FilterProperties, AllPropertiesPathIndependent) {
  // The linearity residual is identical on every path (bit-exact engine).
  const Mat a = randomF32(15, 29, 6);
  const auto k = getGaussianKernel(7, 1.3);
  Mat ref;
  sepFilter2D(a, ref, Depth::F32, k, k, BorderType::Reflect101, 0.0,
              KernelPath::Auto);
  for (KernelPath p : {KernelPath::ScalarNoVec, KernelPath::Sse2,
                       KernelPath::Avx2, KernelPath::Neon}) {
    if (!pathAvailable(p)) continue;
    Mat got;
    sepFilter2D(a, got, Depth::F32, k, k, BorderType::Reflect101, 0.0, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

TEST(FilterProperties, SobelAnnihilatesConstantsAndActsLinearlyOnRamps) {
  // Derivative kernels: zero response to DC, constant response to ramps,
  // and the response scales with the ramp slope.
  Mat ramp1(16, 16, F32C1), ramp3(16, 16, F32C1);
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 16; ++c) {
      ramp1.at<float>(r, c) = static_cast<float>(c);
      ramp3.at<float>(r, c) = static_cast<float>(3 * c);
    }
  Mat g1, g3;
  Sobel(ramp1, g1, Depth::F32, 1, 0, 3);
  Sobel(ramp3, g3, Depth::F32, 1, 0, 3);
  for (int r = 4; r < 12; ++r)
    for (int c = 4; c < 12; ++c) {
      EXPECT_FLOAT_EQ(g1.at<float>(r, c), 8.0f);
      EXPECT_FLOAT_EQ(g3.at<float>(r, c), 24.0f);
    }
}

}  // namespace
}  // namespace simdcv::imgproc
