// IIR smoothing: recurrence exactness, impulse response, path agreement.
#include "imgproc/iir.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace simdcv::imgproc {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Avx2, KernelPath::Neon};
}

Mat randomF32(int rows, int cols, unsigned seed) {
  Mat m(rows, cols, F32C1);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-10.f, 10.f);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) m.at<float>(r, c) = dist(rng);
  return m;
}

TEST(IirHorizontal, MatchesScalarRecurrence) {
  const Mat src = randomF32(9, 37, 1);  // 9 rows: SIMD quad + scalar tail
  const float alpha = 0.3f;
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat dst;
    iirSmoothHorizontal(src, dst, alpha, p);
    for (int r = 0; r < src.rows(); ++r) {
      float y = src.at<float>(r, 0);
      ASSERT_EQ(dst.at<float>(r, 0), y) << toString(p);
      for (int c = 1; c < src.cols(); ++c) {
        y = alpha * src.at<float>(r, c) + (1.0f - alpha) * y;
        ASSERT_EQ(dst.at<float>(r, c), y) << toString(p) << " @" << r << "," << c;
      }
    }
  }
}

TEST(IirVertical, MatchesScalarRecurrence) {
  const Mat src = randomF32(23, 13, 2);
  const float alpha = 0.6f;
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat dst;
    iirSmoothVertical(src, dst, alpha, p);
    for (int c = 0; c < src.cols(); ++c) {
      float y = src.at<float>(0, c);
      ASSERT_EQ(dst.at<float>(0, c), y) << toString(p);
      for (int r = 1; r < src.rows(); ++r) {
        y = alpha * src.at<float>(r, c) + (1.0f - alpha) * y;
        ASSERT_EQ(dst.at<float>(r, c), y) << toString(p);
      }
    }
  }
}

TEST(IirHorizontal, ImpulseResponseDecaysGeometrically) {
  Mat src = zeros(1, 32, F32C1);
  src.at<float>(0, 4) = 1.0f;
  Mat dst;
  const float alpha = 0.5f;
  iirSmoothHorizontal(src, dst, alpha);
  EXPECT_FLOAT_EQ(dst.at<float>(0, 4), 0.5f);
  for (int c = 5; c < 12; ++c)
    EXPECT_FLOAT_EQ(dst.at<float>(0, c), dst.at<float>(0, c - 1) * 0.5f);
  EXPECT_FLOAT_EQ(dst.at<float>(0, 3), 0.0f);  // causal: nothing before
}

TEST(IirHorizontal, AlphaOneIsIdentity) {
  const Mat src = randomF32(6, 16, 3);
  Mat dst;
  iirSmoothHorizontal(src, dst, 1.0f);
  EXPECT_EQ(countMismatches(src, dst), 0u);
}

TEST(IirSmooth, ConstantImageIsFixedPoint) {
  const Mat src = full(12, 12, F32C1, 3.25);
  Mat h, v, both;
  iirSmoothHorizontal(src, h, 0.4f);
  iirSmoothVertical(src, v, 0.4f);
  iirSmooth2D(src, both, 0.4f);
  EXPECT_EQ(countMismatches(src, h), 0u);
  EXPECT_EQ(countMismatches(src, v), 0u);
  EXPECT_LT(maxAbsDiff(src, both), 1e-5);
}

TEST(IirSmooth2D, ReducesNoiseVariance) {
  const Mat src = randomF32(64, 64, 4);
  Mat dst;
  iirSmooth2D(src, dst, 0.25f);
  auto variance = [](const Mat& m) {
    double s = 0, s2 = 0;
    for (int r = 0; r < m.rows(); ++r)
      for (int c = 0; c < m.cols(); ++c) {
        s += m.at<float>(r, c);
        s2 += static_cast<double>(m.at<float>(r, c)) * m.at<float>(r, c);
      }
    const double n = static_cast<double>(m.total());
    return s2 / n - (s / n) * (s / n);
  };
  EXPECT_LT(variance(dst), variance(src) * 0.2);
}

TEST(IirSmooth, Validation) {
  Mat u8(4, 4, U8C1), dst;
  EXPECT_THROW(iirSmoothHorizontal(u8, dst, 0.5f), Error);
  Mat f = randomF32(4, 4, 5);
  EXPECT_THROW(iirSmoothHorizontal(f, dst, 0.0f), Error);
  EXPECT_THROW(iirSmoothVertical(f, dst, 1.5f), Error);
}

TEST(IirHorizontal, SingleColumnImage) {
  const Mat src = randomF32(10, 1, 6);
  Mat dst;
  iirSmoothHorizontal(src, dst, 0.5f);
  EXPECT_EQ(countMismatches(src, dst), 0u);  // one sample per row: y = x0
}

}  // namespace
}  // namespace simdcv::imgproc
