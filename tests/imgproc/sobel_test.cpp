// Sobel / Scharr: analytic gradients on ramps, direction selectivity,
// path agreement.
#include <gtest/gtest.h>

#include <random>

#include "imgproc/filter.hpp"
#include "imgproc/kernels.hpp"

namespace simdcv::imgproc {
namespace {

Mat rampX(int rows, int cols, int step = 3) {
  Mat m(rows, cols, U8C1);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>((c * step) & 0xff);
  return m;
}

Mat rampY(int rows, int cols, int step = 3) {
  Mat m(rows, cols, U8C1);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>((r * step) & 0xff);
  return m;
}

TEST(Sobel, HorizontalRampGivesConstantGx) {
  // d/dx of a ramp with slope s, Sobel 3x3 un-normalized -> 8*s in the
  // interior (away from the wrap discontinuity).
  Mat src = rampX(16, 32, 3);
  Mat gx;
  Sobel(src, gx, Depth::S16, 1, 0, 3);
  for (int r = 4; r < 12; ++r)
    for (int c = 4; c < 28; ++c) {
      if ((c - 1) * 3 > 255 - 6) break;  // stay below the wrap point
      EXPECT_EQ(gx.at<std::int16_t>(r, c), 8 * 3) << r << "," << c;
    }
}

TEST(Sobel, VerticalRampGivesConstantGy) {
  Mat src = rampY(32, 16, 2);
  Mat gy;
  Sobel(src, gy, Depth::S16, 0, 1, 3);
  for (int r = 4; r < 28; ++r) {
    if ((r + 1) * 2 > 255 - 4) break;
    for (int c = 4; c < 12; ++c)
      EXPECT_EQ(gy.at<std::int16_t>(r, c), 8 * 2) << r << "," << c;
  }
}

TEST(Sobel, GxIgnoresVerticalRamp) {
  Mat src = rampY(24, 24, 2);
  Mat gx;
  Sobel(src, gx, Depth::S16, 1, 0, 3);
  for (int r = 4; r < 20; ++r)
    for (int c = 4; c < 20; ++c) {
      if ((r + 1) * 2 <= 250) {
        EXPECT_EQ(gx.at<std::int16_t>(r, c), 0);
      }
    }
}

TEST(Sobel, ConstantImageGivesZeroGradient) {
  Mat src = full(16, 16, U8C1, 99);
  Mat gx, gy;
  Sobel(src, gx, Depth::S16, 1, 0);
  Sobel(src, gy, Depth::S16, 0, 1);
  EXPECT_EQ(countMismatches(gx, zeros(16, 16, S16C1)), 0u);
  EXPECT_EQ(countMismatches(gy, zeros(16, 16, S16C1)), 0u);
}

TEST(Sobel, SignFollowsEdgeDirection) {
  // Dark left half, bright right half: gx positive at the edge.
  Mat src = zeros(16, 16, U8C1);
  for (int r = 0; r < 16; ++r)
    for (int c = 8; c < 16; ++c) src.at<std::uint8_t>(r, c) = 200;
  Mat gx;
  Sobel(src, gx, Depth::S16, 1, 0);
  EXPECT_GT(gx.at<std::int16_t>(8, 8), 0);
  // Flipped image gives negative gradient.
  Mat flipped = zeros(16, 16, U8C1);
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 8; ++c) flipped.at<std::uint8_t>(r, c) = 200;
  Mat gx2;
  Sobel(flipped, gx2, Depth::S16, 1, 0);
  EXPECT_LT(gx2.at<std::int16_t>(8, 8), 0);
}

TEST(Sobel, Ksize5MatchesNaive2D) {
  std::mt19937 rng(3);
  Mat src(13, 17, U8C1);
  for (int r = 0; r < 13; ++r)
    for (int c = 0; c < 17; ++c)
      src.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng() & 0xff);
  Mat got;
  Sobel(src, got, Depth::F32, 1, 0, 5);
  std::vector<float> kx, ky, k2d;
  getDerivKernels(kx, ky, 1, 0, 5);
  for (float y : ky)
    for (float x : kx) k2d.push_back(y * x);
  Mat ref;
  filter2D(src, ref, Depth::F32, k2d, 5, 5);
  EXPECT_LT(maxAbsDiff(got, ref), 1e-2);
}

TEST(Sobel, ScaleAppliesLinearly) {
  Mat src = rampX(12, 20, 2);
  Mat a, b;
  Sobel(src, a, Depth::F32, 1, 0, 3, 1.0);
  Sobel(src, b, Depth::F32, 1, 0, 3, 0.25);
  for (int r = 3; r < 9; ++r)
    for (int c = 3; c < 17; ++c)
      EXPECT_FLOAT_EQ(b.at<float>(r, c), a.at<float>(r, c) * 0.25f);
}

TEST(Sobel, MixedSecondDerivative) {
  // dx=1, dy=1 on f(x,y) = x*y has constant positive cross-derivative.
  Mat src(16, 16, F32C1);
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 16; ++c) src.at<float>(r, c) = static_cast<float>(r * c);
  Mat gxy;
  Sobel(src, gxy, Depth::F32, 1, 1, 3);
  for (int r = 4; r < 12; ++r)
    for (int c = 4; c < 12; ++c)
      // Central difference in x gives 2r; central difference of that in y
      // gives 2(r+1) - 2(r-1) = 4.
      EXPECT_FLOAT_EQ(gxy.at<float>(r, c), 4.0f);
}

TEST(Sobel, PathsAgreeBitExact) {
  std::mt19937 rng(6);
  Mat src(25, 39, U8C1);
  for (int r = 0; r < 25; ++r)
    for (int c = 0; c < 39; ++c)
      src.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng() & 0xff);
  Mat ref;
  Sobel(src, ref, Depth::S16, 1, 0, 3, 1.0, BorderType::Reflect101,
        KernelPath::Auto);
  for (KernelPath p : {KernelPath::ScalarNoVec, KernelPath::Sse2, KernelPath::Neon}) {
    if (!pathAvailable(p)) continue;
    Mat got;
    Sobel(src, got, Depth::S16, 1, 0, 3, 1.0, BorderType::Reflect101, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

TEST(Sobel, RejectsZeroOrder) {
  Mat src = rampX(8, 8), dst;
  EXPECT_THROW(Sobel(src, dst, Depth::S16, 0, 0), Error);
}

TEST(Scharr, RampGradientUsesScharrWeights) {
  Mat src = rampX(16, 24, 2);
  Mat gx;
  Scharr(src, gx, Depth::S16, 1, 0);
  // Scharr smoothing sums to 16; derivative of slope-2 ramp -> 2*2*16/2=...
  // interior value = slope * 2 * (3+10+3) = 2 * 2 * 16 = 64.
  EXPECT_EQ(gx.at<std::int16_t>(8, 8), 64);
  EXPECT_THROW(Scharr(src, gx, Depth::S16, 1, 1), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
