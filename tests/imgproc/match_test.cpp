// Template matching: SAD kernel exactness, localization, path agreement.
#include "imgproc/match.hpp"

#include <gtest/gtest.h>

#include <random>

namespace simdcv::imgproc {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Avx2, KernelPath::Neon};
}

Mat randomU8(int rows, int cols, unsigned seed) {
  Mat m(rows, cols, U8C1);
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  return m;
}

TEST(SadRange, AllPathsExactOnRandomData) {
  std::mt19937 rng(1);
  std::vector<std::uint8_t> a(1003), b(1003);  // odd length: vector tail
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::uint8_t>(rng());
    b[i] = static_cast<std::uint8_t>(rng());
  }
  std::uint64_t want = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    want += static_cast<std::uint64_t>(std::abs(static_cast<int>(a[i]) - b[i]));
  EXPECT_EQ(autovec::sadRange(a.data(), b.data(), a.size()), want);
  EXPECT_EQ(novec::sadRange(a.data(), b.data(), a.size()), want);
  EXPECT_EQ(sse2::sadRange(a.data(), b.data(), a.size()), want);
  EXPECT_EQ(neon::sadRange(a.data(), b.data(), a.size()), want);
}

TEST(SadRange, ExtremesAndAccumulatorHeadroom) {
  // Max-difference data over a long run stresses accumulator widths
  // (the NEON u16 ladder drains every 128 blocks).
  const std::size_t n = 1 << 20;
  std::vector<std::uint8_t> a(n, 255), b(n, 0);
  const std::uint64_t want = 255ull * n;
  EXPECT_EQ(sse2::sadRange(a.data(), b.data(), n), want);
  EXPECT_EQ(neon::sadRange(a.data(), b.data(), n), want);
  EXPECT_EQ(autovec::sadRange(a.data(), b.data(), n), want);
  EXPECT_EQ(sse2::sadRange(a.data(), a.data(), n), 0u);
}

TEST(SadAt, MatchesManualWindow) {
  const Mat img = randomU8(24, 31, 2);
  const Mat tmpl = randomU8(5, 7, 3);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    const auto got = sadAt(img, tmpl, 11, 9, p);
    std::uint64_t want = 0;
    for (int r = 0; r < 5; ++r)
      for (int c = 0; c < 7; ++c)
        want += static_cast<std::uint64_t>(
            std::abs(static_cast<int>(img.at<std::uint8_t>(9 + r, 11 + c)) -
                     tmpl.at<std::uint8_t>(r, c)));
    EXPECT_EQ(got, want) << toString(p);
  }
}

TEST(MatchTemplate, FindsEmbeddedPatch) {
  Mat img = randomU8(64, 80, 4);
  const Rect where(37, 22, 12, 9);
  const Mat tmpl = img.roi(where).clone();
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    const auto best = findBestMatch(img, tmpl, p);
    EXPECT_EQ(best.x, where.x) << toString(p);
    EXPECT_EQ(best.y, where.y) << toString(p);
    EXPECT_EQ(best.sad, 0u) << toString(p);
  }
}

TEST(MatchTemplate, FindsPatchUnderNoise) {
  Mat img = randomU8(48, 48, 5);
  Mat tmpl = img.roi({10, 30, 8, 8}).clone();
  // Perturb the template slightly: the true location must still win.
  std::mt19937 rng(6);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      int v = tmpl.at<std::uint8_t>(r, c) + static_cast<int>(rng() % 7) - 3;
      tmpl.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(
          v < 0 ? 0 : (v > 255 ? 255 : v));
    }
  const auto best = findBestMatch(img, tmpl);
  EXPECT_EQ(best.x, 10);
  EXPECT_EQ(best.y, 30);
  EXPECT_GT(best.sad, 0u);
}

TEST(MatchTemplate, SadMapGeometryAndContent) {
  const Mat img = randomU8(20, 26, 7);
  const Mat tmpl = randomU8(6, 5, 8);
  Mat map;
  matchTemplateSad(img, tmpl, map);
  ASSERT_EQ(map.size(), Size(26 - 5 + 1, 20 - 6 + 1));
  ASSERT_EQ(map.depth(), Depth::F32);
  // Spot-check against sadAt.
  for (int y : {0, 7, 14})
    for (int x : {0, 11, 21})
      EXPECT_EQ(static_cast<std::uint64_t>(map.at<float>(y, x)),
                sadAt(img, tmpl, x, y));
}

TEST(MatchTemplate, WholeImageTemplate) {
  const Mat img = randomU8(9, 9, 9);
  Mat map;
  matchTemplateSad(img, img, map);
  ASSERT_EQ(map.size(), Size(1, 1));
  EXPECT_EQ(map.at<float>(0, 0), 0.0f);
}

TEST(MatchTemplate, Validation) {
  Mat img = randomU8(8, 8, 10), big = randomU8(10, 10, 11), dst;
  EXPECT_THROW(matchTemplateSad(img, big, dst), Error);
  EXPECT_THROW(sadAt(img, randomU8(4, 4, 12), 6, 6), Error);
  Mat f(4, 4, F32C1);
  EXPECT_THROW(matchTemplateSad(f, f, dst), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
