// Fused edge-detection pipeline: band-seam golden tests, border coverage,
// threshold edge values, ROI inputs, and the no-allocation-growth contract of
// the scratch arena / unfused scratch Mats.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/saturate.hpp"
#include "core/scratch.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/edge_detail.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/kernels.hpp"
#include "platform/platform.hpp"
#include "runtime/thread_pool.hpp"

namespace simdcv::imgproc {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Avx2, KernelPath::Neon};
}

std::vector<BorderType> allBorders() {
  return {BorderType::Constant, BorderType::Replicate, BorderType::Reflect,
          BorderType::Reflect101, BorderType::Wrap};
}

Mat randomU8(int rows, int cols, unsigned seed) {
  Mat m(rows, cols, U8C1);
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng() & 0xff);
  return m;
}

// Every band partition must reproduce the unfused scalar reference exactly:
// heights that split inside the kernel footprint (1, 2, ksize-1), exactly at
// it (ksize), and a single seam (rows-1) are the adversarial cases.
TEST(EdgeFused, BandSeamsBitExactAllHeights) {
  for (int ksize : {3, 5}) {
    const Mat src = randomU8(23, 17, 100 + static_cast<unsigned>(ksize));
    Mat ref;
    edgeDetectUnfused(src, ref, 120.0, ksize, BorderType::Reflect101,
                      KernelPath::ScalarNoVec);
    for (KernelPath p : paths()) {
      if (!pathAvailable(p)) continue;
      for (int bandRows : {1, 2, ksize - 1, ksize, src.rows() - 1, src.rows()}) {
        Mat got;
        detail::edgeDetectFusedBanded(src, got, 120.0, ksize,
                                      BorderType::Reflect101, p, bandRows);
        EXPECT_EQ(countMismatches(ref, got), 0u)
            << toString(p) << " ksize=" << ksize << " bandRows=" << bandRows;
      }
    }
  }
}

TEST(EdgeFused, AllBordersBitExactWithUnfused) {
  const Mat src = randomU8(19, 21, 7);
  for (BorderType b : allBorders()) {
    for (int ksize : {3, 5}) {
      Mat ref;
      edgeDetectUnfused(src, ref, 90.0, ksize, b, KernelPath::ScalarNoVec);
      for (KernelPath p : paths()) {
        if (!pathAvailable(p)) continue;
        Mat got;
        edgeDetectFused(src, got, 90.0, ksize, b, p);
        EXPECT_EQ(countMismatches(ref, got), 0u)
            << toString(b) << " " << toString(p) << " ksize=" << ksize;
        // Band the fused engine through the same border handling.
        detail::edgeDetectFusedBanded(src, got, 90.0, ksize, b, p, 2);
        EXPECT_EQ(countMismatches(ref, got), 0u)
            << toString(b) << " " << toString(p) << " banded ksize=" << ksize;
      }
    }
  }
}

// Degenerate geometry: the ring primes entirely from border rows.
TEST(EdgeFused, TinyAndOnePixelWideImages) {
  struct Geo {
    int rows, cols;
  };
  for (Geo g : {Geo{1, 1}, Geo{1, 9}, Geo{9, 1}, Geo{2, 2}, Geo{3, 3}}) {
    const Mat src = randomU8(g.rows, g.cols, 40 + static_cast<unsigned>(g.rows * 16 + g.cols));
    for (BorderType b : allBorders()) {
      Mat ref;
      edgeDetectUnfused(src, ref, 30.0, 3, b, KernelPath::ScalarNoVec);
      for (KernelPath p : paths()) {
        if (!pathAvailable(p)) continue;
        Mat got;
        edgeDetectFused(src, got, 30.0, 3, b, p);
        EXPECT_EQ(countMismatches(ref, got), 0u)
            << g.rows << "x" << g.cols << " " << toString(b) << " "
            << toString(p);
        detail::edgeDetectFusedBanded(src, got, 30.0, 3, b, p, 1);
        EXPECT_EQ(countMismatches(ref, got), 0u)
            << g.rows << "x" << g.cols << " " << toString(b) << " "
            << toString(p) << " banded";
      }
    }
  }
}

// thresh quantization boundaries, including both degenerate collapses: the
// fused early fill must match the unfused threshold stage's fill bit for bit.
TEST(EdgeFused, ThresholdEdgeValues) {
  const Mat src = randomU8(15, 27, 8);
  for (double thresh : {0.0, 0.5, 254.0, 254.5, 255.0, -1.0, 300.0}) {
    Mat ref;
    edgeDetectUnfused(src, ref, thresh, 3, BorderType::Reflect101,
                      KernelPath::ScalarNoVec);
    for (KernelPath p : paths()) {
      if (!pathAvailable(p)) continue;
      Mat got;
      edgeDetectFused(src, got, thresh, 3, BorderType::Reflect101, p);
      EXPECT_EQ(countMismatches(ref, got), 0u)
          << toString(p) << " thresh=" << thresh;
    }
  }
  // The degenerate collapses themselves: everything fires / nothing fires.
  Mat all, none;
  edgeDetectFused(src, all, -1.0);
  edgeDetectFused(src, none, 255.0);
  EXPECT_EQ(countMismatches(all, full(15, 27, U8C1, 255)), 0u);
  EXPECT_EQ(countMismatches(none, zeros(15, 27, U8C1)), 0u);
}

// Independent golden oracle: dense filter2D with the outer-product Sobel
// kernels, magnitude and threshold applied per the documented definition.
// For u8 input and ksize 3 every intermediate is a small integer, exactly
// representable in float, so the expectation is exact.
TEST(EdgeFused, MatchesDenseFilter2DOracle) {
  const Mat src = randomU8(14, 18, 21);
  const int ksize = 3;
  std::vector<float> kxd, kys, kxs, kyd;
  getDerivKernels(kxd, kys, 1, 0, ksize, false);  // gx: deriv(x), smooth(y)
  getDerivKernels(kxs, kyd, 0, 1, ksize, false);  // gy: smooth(x), deriv(y)
  auto outer = [&](const std::vector<float>& ky, const std::vector<float>& kx) {
    std::vector<float> k(static_cast<std::size_t>(ksize) * ksize);
    for (int r = 0; r < ksize; ++r)
      for (int c = 0; c < ksize; ++c)
        k[static_cast<std::size_t>(r) * ksize + c] = ky[static_cast<std::size_t>(r)] * kx[static_cast<std::size_t>(c)];
    return k;
  };
  Mat gxf, gyf;
  filter2D(src, gxf, Depth::F32, outer(kys, kxd), ksize, ksize,
           BorderType::Reflect101);
  filter2D(src, gyf, Depth::F32, outer(kyd, kxs), ksize, ksize,
           BorderType::Reflect101);
  const double thresh = 120.0;
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    edgeDetectFused(src, got, thresh, ksize, BorderType::Reflect101, p);
    for (int r = 0; r < src.rows(); ++r)
      for (int c = 0; c < src.cols(); ++c) {
        const int gx = saturate_cast<std::int16_t>(gxf.at<float>(r, c));
        const int gy = saturate_cast<std::int16_t>(gyf.at<float>(r, c));
        const int mag = std::min(255, std::abs(gx) + std::abs(gy));
        const std::uint8_t want = mag > static_cast<int>(thresh) ? 255 : 0;
        ASSERT_EQ(got.at<std::uint8_t>(r, c), want)
            << toString(p) << " at (" << r << "," << c << ")";
      }
  }
}

TEST(EdgeFused, PublicEdgeDetectDispatchesToFused) {
  const Mat src = randomU8(17, 31, 3);
  Mat viaPublic, viaFused, viaUnfused;
  edgeDetect(src, viaPublic, 75.0);
  edgeDetectFused(src, viaFused, 75.0);
  edgeDetectUnfused(src, viaUnfused, 75.0);
  EXPECT_EQ(countMismatches(viaPublic, viaFused), 0u);
  EXPECT_EQ(countMismatches(viaPublic, viaUnfused), 0u);
}

// Non-contiguous source view: the fused loadRowAsFloat walks rows by step.
TEST(EdgeFused, RoiSourceViewMatchesContiguousCopy) {
  const Mat big = randomU8(40, 40, 55);
  const Mat view = big.roi({5, 7, 23, 19});
  ASSERT_FALSE(view.isContinuous());
  Mat contiguous(view.rows(), view.cols(), U8C1);
  view.copyTo(contiguous);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat a, b;
    edgeDetectFused(view, a, 60.0, 3, BorderType::Reflect101, p);
    edgeDetectFused(contiguous, b, 60.0, 3, BorderType::Reflect101, p);
    EXPECT_EQ(countMismatches(a, b), 0u) << toString(p);
  }
}

// Satellite: gradientMagnitude must accept non-contiguous ROI gradients.
TEST(Magnitude, NonContiguousRoiInputs) {
  Mat bigGx(30, 30, S16C1), bigGy(30, 30, S16C1);
  std::mt19937 rng(77);
  for (int r = 0; r < 30; ++r)
    for (int c = 0; c < 30; ++c) {
      bigGx.at<std::int16_t>(r, c) = static_cast<std::int16_t>(rng());
      bigGy.at<std::int16_t>(r, c) = static_cast<std::int16_t>(rng());
    }
  const Mat gx = bigGx.roi({3, 4, 21, 17});
  const Mat gy = bigGy.roi({3, 4, 21, 17});
  ASSERT_FALSE(gx.isContinuous());
  Mat gxc(gx.rows(), gx.cols(), S16C1), gyc(gy.rows(), gy.cols(), S16C1);
  gx.copyTo(gxc);
  gy.copyTo(gyc);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat fromRoi, fromCopy;
    gradientMagnitude(gx, gy, fromRoi, p);
    gradientMagnitude(gxc, gyc, fromCopy, p);
    EXPECT_EQ(countMismatches(fromRoi, fromCopy), 0u) << toString(p);
  }
}

// Satellite: repeated unfused calls at one geometry must not allocate — the
// per-thread gx/gy/mag scratch Mats are retained across calls, and repeated
// fused calls must not refill the scratch arena.
TEST(EdgeScratch, NoAllocationGrowthAcrossRepeatedCalls) {
  const Mat src = randomU8(64, 96, 13);
  Mat dst;
  edgeDetectUnfused(src, dst, 100.0);  // warm the scratch Mats + dst
  const std::uint64_t matAllocs = matAllocationCount();
  for (int i = 0; i < 10; ++i) edgeDetectUnfused(src, dst, 100.0);
  EXPECT_EQ(matAllocationCount(), matAllocs);

  edgeDetectFused(src, dst, 100.0);  // warm the arena block
  const std::uint64_t refills = core::ScratchArena::forThread().refills();
  const std::uint64_t matAllocs2 = matAllocationCount();
  for (int i = 0; i < 10; ++i) edgeDetectFused(src, dst, 100.0);
  EXPECT_EQ(core::ScratchArena::forThread().refills(), refills);
  EXPECT_EQ(matAllocationCount(), matAllocs2);
}

// 1 vs N threads: parallel band splits must be invisible in the output.
TEST(EdgeFused, OneVsManyThreadsBitExact) {
  const Mat src = randomU8(200, 256, 31);
  const int prev = runtime::getNumThreads();
  runtime::setNumThreads(1);
  Mat ref;
  edgeDetectFused(src, ref, 110.0);
  runtime::setNumThreads(4);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat refP, gotP;
    runtime::setNumThreads(1);
    edgeDetectFused(src, refP, 110.0, 3, BorderType::Reflect101, p);
    runtime::setNumThreads(4);
    edgeDetectFused(src, gotP, 110.0, 3, BorderType::Reflect101, p);
    EXPECT_EQ(countMismatches(refP, gotP), 0u) << toString(p);
  }
  runtime::setNumThreads(prev);
  Mat again;
  edgeDetectFused(src, again, 110.0);
  EXPECT_EQ(countMismatches(ref, again), 0u);
}

TEST(EdgeFused, GrainAndScratchAreSane) {
  for (int ksize : {3, 5}) {
    for (int width : {16, 640, 3264}) {
      const int grain = detail::fusedBandGrain(width, ksize, 10000);
      EXPECT_GE(grain, ksize);
      EXPECT_LE(grain, 10000);
      EXPECT_EQ(detail::fusedBandGrain(width, ksize, 7), 7);  // clamps to rows
      EXPECT_GT(detail::fusedScratchBytes(width, ksize), 0u);
    }
    // Scratch grows with width (streaming engine: footprint ~ width, not rows).
    EXPECT_LT(detail::fusedScratchBytes(640, ksize),
              detail::fusedScratchBytes(3264, ksize));
  }
}

// Satellite: the fuse-vs-staged cutoff. Fusion is always profitable off the
// AVX2 path; on AVX2 the staged form wins while the whole-image intermediates
// (w*h*(2*s16 + u8) bytes) fit in L2, so tiny images must choose staged and
// huge ones fused. Both forms are bit-exact, so straddling the cutoff must be
// invisible in the output.
TEST(EdgeFused, FuseProfitableCutoff) {
  // Non-AVX2 paths: always fuse (no regression was measured there).
  for (KernelPath p : {KernelPath::ScalarNoVec, KernelPath::Auto,
                       KernelPath::Sse2, KernelPath::Neon}) {
    EXPECT_TRUE(detail::fuseProfitable(640, 480, 3, p)) << toString(p);
    EXPECT_TRUE(detail::fuseProfitable(64, 64, 3, p)) << toString(p);
  }
  if (pathAvailable(KernelPath::Avx2)) {
    // 64x64 intermediates are 20 KB — inside any L2 — so staged wins; a
    // 4096x4096 frame needs 80 MB of intermediates — beyond any L2 — so the
    // cache-blocked fused engine wins.
    EXPECT_FALSE(detail::fuseProfitable(64, 64, 3, KernelPath::Avx2));
    EXPECT_TRUE(detail::fuseProfitable(4096, 4096, 3, KernelPath::Avx2));
    // The measured regression case from BENCH_fusion.json: 640x480 staged.
    const platform::HostInfo host = platform::queryHost();
    if (host.l2_kb >= 2048) {
      EXPECT_FALSE(detail::fuseProfitable(640, 480, 3, KernelPath::Avx2));
    }
  }
}

TEST(EdgeFused, DispatchBitExactAcrossCutoff) {
  // Sizes on both sides of any plausible cutoff; edgeDetect may pick either
  // form per size, and each must match the staged reference exactly.
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    for (int cols : {32, 640}) {
      const Mat src = randomU8(48, cols, 90 + static_cast<unsigned>(cols));
      Mat viaDispatch, staged;
      edgeDetect(src, viaDispatch, 85.0, 3, BorderType::Reflect101, p);
      edgeDetectUnfused(src, staged, 85.0, 3, BorderType::Reflect101, p);
      EXPECT_EQ(countMismatches(viaDispatch, staged), 0u)
          << toString(p) << " cols=" << cols;
    }
  }
}

TEST(EdgeFused, RejectsInvalidArguments) {
  Mat src = randomU8(8, 8, 1), dst;
  EXPECT_THROW(edgeDetectFused(Mat(), dst, 10.0), Error);
  EXPECT_THROW(edgeDetectFused(src, dst, 10.0, 4), Error);   // even ksize
  EXPECT_THROW(edgeDetectFused(src, dst, 10.0, 1), Error);   // ksize < 3
  Mat f32 = zeros(8, 8, F64C1);
  EXPECT_THROW(edgeDetectFused(f32, dst, 10.0), Error);      // unsupported depth
}

}  // namespace
}  // namespace simdcv::imgproc
