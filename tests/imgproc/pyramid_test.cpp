// Image pyramids: geometry, smoothing behaviour, round trips.
#include "imgproc/pyramid.hpp"

#include <gtest/gtest.h>

#include <random>

namespace simdcv::imgproc {
namespace {

Mat randomU8(int rows, int cols, unsigned seed) {
  Mat m(rows, cols, U8C1);
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  return m;
}

TEST(PyrDown, HalvesWithCeil) {
  Mat dst;
  pyrDown(randomU8(10, 10, 1), dst);
  EXPECT_EQ(dst.size(), Size(5, 5));
  pyrDown(randomU8(11, 13, 2), dst);
  EXPECT_EQ(dst.size(), Size(7, 6));
  pyrDown(randomU8(1, 5, 3), dst);
  EXPECT_EQ(dst.size(), Size(3, 1));
}

TEST(PyrDown, ConstantStaysConstant) {
  Mat dst;
  pyrDown(full(16, 16, U8C1, 123), dst);
  EXPECT_EQ(countMismatches(dst, full(8, 8, U8C1, 123)), 0u);
  pyrDown(full(9, 9, F32C1, -2.5), dst);
  for (int r = 0; r < dst.rows(); ++r)
    for (int c = 0; c < dst.cols(); ++c)
      EXPECT_NEAR(dst.at<float>(r, c), -2.5f, 1e-5);
}

TEST(PyrDown, SmoothsBeforeDecimating) {
  // A 1px checkerboard would alias to garbage under naive decimation; the
  // pyramid kernel must average it toward mid-gray instead.
  Mat checker(32, 32, U8C1);
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c)
      checker.at<std::uint8_t>(r, c) = ((r + c) & 1) ? 255 : 0;
  Mat dst;
  pyrDown(checker, dst);
  for (int r = 2; r < dst.rows() - 2; ++r)
    for (int c = 2; c < dst.cols() - 2; ++c) {
      EXPECT_GT(dst.at<std::uint8_t>(r, c), 90);
      EXPECT_LT(dst.at<std::uint8_t>(r, c), 165);
    }
}

TEST(PyrUp, DoublesAndPreservesConstant) {
  Mat dst;
  pyrUp(full(7, 5, U8C1, 77), dst);
  EXPECT_EQ(dst.size(), Size(10, 14));
  // Interior must stay at the constant level (gain-4 kernel compensates the
  // zero stuffing); borders can deviate slightly via reflection.
  for (int r = 2; r < 12; ++r)
    for (int c = 2; c < 8; ++c)
      EXPECT_NEAR(dst.at<std::uint8_t>(r, c), 77, 1);
}

TEST(PyrUp, F32RoundTripApproximatesOriginal) {
  // down-then-up of a smooth image approximates the original.
  Mat smooth(32, 32, F32C1);
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c)
      smooth.at<float>(r, c) = static_cast<float>(r + c);
  Mat down, up;
  pyrDown(smooth, down);
  pyrUp(down, up);
  ASSERT_EQ(up.size(), smooth.size());
  double err = 0;
  for (int r = 4; r < 28; ++r)
    for (int c = 4; c < 28; ++c)
      err = std::max(
          err, static_cast<double>(
                   std::abs(up.at<float>(r, c) - smooth.at<float>(r, c))));
  EXPECT_LT(err, 1.5);
}

TEST(BuildPyramid, LevelGeometry) {
  const Mat src = randomU8(64, 48, 4);
  const auto levels = buildPyramid(src, 5);
  ASSERT_EQ(levels.size(), 5u);
  EXPECT_TRUE(levels[0].sharesStorageWith(src));
  EXPECT_EQ(levels[1].size(), Size(24, 32));
  EXPECT_EQ(levels[2].size(), Size(12, 16));
  EXPECT_EQ(levels[4].size(), Size(3, 4));
}

TEST(BuildPyramid, StopsAtTinyLevels) {
  const auto levels = buildPyramid(randomU8(8, 8, 5), 10);
  // 8 -> 4 -> 2 -> 1, then stop (can't halve a 1px dimension).
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels.back().size(), Size(1, 1));
}

TEST(Pyramid, PathsAgreeBitExact) {
  const Mat src = randomU8(33, 47, 6);
  Mat ref;
  pyrDown(src, ref, KernelPath::Auto);
  for (KernelPath p : {KernelPath::ScalarNoVec, KernelPath::Sse2, KernelPath::Neon}) {
    if (!pathAvailable(p)) continue;
    Mat got;
    pyrDown(src, got, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

TEST(Pyramid, Validation) {
  Mat c3(4, 4, U8C3), dst;
  EXPECT_THROW(pyrDown(c3, dst), Error);
  EXPECT_THROW(pyrUp(c3, dst), Error);
  EXPECT_THROW(buildPyramid(Mat(4, 4, U8C1), 0), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
