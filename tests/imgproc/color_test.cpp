// Color conversion: BT.601 gray weights, path agreement, channel plumbing.
#include "imgproc/color.hpp"

#include <gtest/gtest.h>

#include <random>

namespace simdcv::imgproc {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Neon};
}

Mat randomBgr(int rows, int cols, unsigned seed, int channels = 3) {
  Mat m(rows, cols, PixelType(Depth::U8, channels));
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols * channels; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  return m;
}

int refGray(int b, int g, int r) {
  return (b * 1868 + g * 9617 + r * 4899 + (1 << 13)) >> 14;
}

TEST(CvtColor, Bgr2GrayMatchesFixedPointReference) {
  const Mat src = randomBgr(23, 41, 1);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat gray;
    cvtColor(src, gray, ColorCode::BGR2GRAY, p);
    ASSERT_EQ(gray.type(), U8C1);
    for (int r = 0; r < src.rows(); ++r)
      for (int c = 0; c < src.cols(); ++c) {
        const std::uint8_t* px = src.ptr<std::uint8_t>(r) + 3 * c;
        ASSERT_EQ(gray.at<std::uint8_t>(r, c), refGray(px[0], px[1], px[2]))
            << toString(p) << " @" << r << "," << c;
      }
  }
}

TEST(CvtColor, AllPathsBitExact) {
  const Mat src = randomBgr(64, 99, 2);
  Mat ref;
  cvtColor(src, ref, ColorCode::BGR2GRAY, KernelPath::Auto);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    cvtColor(src, got, ColorCode::BGR2GRAY, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

TEST(CvtColor, Rgb2GraySwapsWeights) {
  Mat px(1, 1, U8C3);
  px.at<std::uint8_t>(0, 0) = 10;   // first channel
  px.at<std::uint8_t>(0, 1) = 20;
  px.at<std::uint8_t>(0, 2) = 30;   // third channel
  Mat asBgr, asRgb;
  cvtColor(px, asBgr, ColorCode::BGR2GRAY);
  cvtColor(px, asRgb, ColorCode::RGB2GRAY);
  EXPECT_EQ(asBgr.at<std::uint8_t>(0, 0), refGray(10, 20, 30));
  EXPECT_EQ(asRgb.at<std::uint8_t>(0, 0), refGray(30, 20, 10));
}

TEST(CvtColor, GrayOfGrayPixelIsIdentity) {
  // Weights sum to 16384, so a neutral pixel maps to itself.
  for (int v : {0, 1, 127, 128, 254, 255}) {
    Mat px(1, 1, U8C3);
    px.setTo(v);
    Mat gray;
    cvtColor(px, gray, ColorCode::BGR2GRAY);
    EXPECT_EQ(gray.at<std::uint8_t>(0, 0), v);
  }
}

TEST(CvtColor, Gray2BgrReplicates) {
  Mat g(2, 3, U8C1);
  g.setTo(99);
  Mat bgr;
  cvtColor(g, bgr, ColorCode::GRAY2BGR);
  ASSERT_EQ(bgr.channels(), 3);
  for (int c = 0; c < 9; ++c) EXPECT_EQ(bgr.at<std::uint8_t>(1, c), 99);
}

TEST(CvtColor, Bgr2RgbIsInvolution) {
  const Mat src = randomBgr(9, 17, 3);
  Mat rgb, back;
  cvtColor(src, rgb, ColorCode::BGR2RGB);
  cvtColor(rgb, back, ColorCode::BGR2RGB);
  EXPECT_EQ(countMismatches(src, back), 0u);
  EXPECT_EQ(rgb.at<std::uint8_t>(0, 0), src.at<std::uint8_t>(0, 2));
}

TEST(CvtColor, AlphaRoundTrip) {
  const Mat src = randomBgr(5, 7, 4);
  Mat bgra, back;
  cvtColor(src, bgra, ColorCode::BGR2BGRA);
  ASSERT_EQ(bgra.channels(), 4);
  EXPECT_EQ(bgra.at<std::uint8_t>(0, 3), 255);  // alpha filled
  cvtColor(bgra, back, ColorCode::BGRA2BGR);
  EXPECT_EQ(countMismatches(src, back), 0u);
}

TEST(CvtColor, RejectsWrongChannels) {
  Mat gray(4, 4, U8C1), dst;
  EXPECT_THROW(cvtColor(gray, dst, ColorCode::BGR2GRAY), Error);
  Mat f(4, 4, F32C1);
  EXPECT_THROW(cvtColor(f, dst, ColorCode::GRAY2BGR), Error);
}

TEST(SplitMerge, RoundTripC3) {
  const Mat src = randomBgr(13, 29, 5);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    std::vector<Mat> planes;
    split(src, planes, p);
    ASSERT_EQ(planes.size(), 3u);
    for (int r = 0; r < src.rows(); ++r)
      for (int c = 0; c < src.cols(); ++c)
        for (int k = 0; k < 3; ++k)
          ASSERT_EQ(planes[static_cast<std::size_t>(k)].at<std::uint8_t>(r, c),
                    src.at<std::uint8_t>(r, 3 * c + k))
              << toString(p);
    Mat merged;
    merge(planes, merged, p);
    EXPECT_EQ(countMismatches(src, merged), 0u) << toString(p);
  }
}

TEST(SplitMerge, RoundTripC4AndF32) {
  const Mat src4 = randomBgr(6, 11, 6, 4);
  std::vector<Mat> planes;
  split(src4, planes);
  ASSERT_EQ(planes.size(), 4u);
  Mat merged;
  merge(planes, merged);
  EXPECT_EQ(countMismatches(src4, merged), 0u);

  Mat f(4, 5, PixelType(Depth::F32, 2));
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 10; ++c) f.at<float>(r, c) = r * 10.0f + c;
  std::vector<Mat> fp;
  split(f, fp);
  EXPECT_FLOAT_EQ(fp[1].at<float>(2, 3), f.at<float>(2, 2 * 3 + 1));
  Mat fm;
  merge(fp, fm);
  EXPECT_EQ(countMismatches(f, fm), 0u);
}

TEST(SplitMerge, MergeValidation) {
  Mat a(4, 4, U8C1), b(4, 5, U8C1), dst;
  std::vector<Mat> bad = {a, b};
  EXPECT_THROW(merge(bad, dst), Error);
  std::vector<Mat> none;
  EXPECT_THROW(merge(none, dst), Error);
}

TEST(SplitMerge, SingleChannelSplitIsCopy) {
  const Mat src = randomBgr(5, 5, 7, 1);
  std::vector<Mat> planes;
  split(src, planes);
  ASSERT_EQ(planes.size(), 1u);
  EXPECT_EQ(countMismatches(src, planes[0]), 0u);
  EXPECT_FALSE(planes[0].sharesStorageWith(src));
}

}  // namespace
}  // namespace simdcv::imgproc
