// FAST-9 corner detection.
#include "imgproc/fast.hpp"

#include <gtest/gtest.h>

#include <random>

namespace simdcv::imgproc {
namespace {

// Bright square on dark background: corners of the square are FAST corners,
// edge midpoints are not.
Mat squareScene() {
  Mat m = full(40, 40, U8C1, 20);
  m.roi({12, 12, 16, 16}).setTo(220);
  return m;
}

bool hasCornerNear(const std::vector<KeyPoint>& kps, int x, int y, int r = 2) {
  for (const auto& kp : kps)
    if (std::abs(kp.x - x) <= r && std::abs(kp.y - y) <= r) return true;
  return false;
}

TEST(Fast9, DetectsSquareCorners) {
  const auto kps = fast9(squareScene(), 40);
  ASSERT_FALSE(kps.empty());
  EXPECT_TRUE(hasCornerNear(kps, 12, 12));
  EXPECT_TRUE(hasCornerNear(kps, 27, 12));
  EXPECT_TRUE(hasCornerNear(kps, 12, 27));
  EXPECT_TRUE(hasCornerNear(kps, 27, 27));
}

TEST(Fast9, RejectsEdgesAndFlatRegions) {
  const auto kps = fast9(squareScene(), 40);
  // Middle of an edge is not a corner; deep inside/outside is flat.
  EXPECT_FALSE(hasCornerNear(kps, 20, 12, 1));
  EXPECT_FALSE(hasCornerNear(kps, 20, 20, 3));
  EXPECT_FALSE(hasCornerNear(kps, 5, 5, 1));
}

TEST(Fast9, ConstantImageHasNoCorners) {
  EXPECT_TRUE(fast9(full(32, 32, U8C1, 128), 10).empty());
}

TEST(Fast9, DarkCornerOnBrightBackgroundAlsoFires) {
  Mat m = full(40, 40, U8C1, 220);
  m.roi({12, 12, 16, 16}).setTo(20);
  EXPECT_TRUE(hasCornerNear(fast9(m, 40), 12, 12));
}

TEST(Fast9, ThresholdMonotone) {
  std::mt19937 rng(1);
  Mat m(48, 48, U8C1);
  for (int r = 0; r < 48; ++r)
    for (int c = 0; c < 48; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  const auto loose = fast9(m, 10, /*nms=*/false);
  const auto tight = fast9(m, 60, /*nms=*/false);
  EXPECT_GE(loose.size(), tight.size());
  // Every tight corner is also a loose corner.
  for (const auto& kp : tight)
    EXPECT_TRUE(fast9IsCorner(m, kp.x, kp.y, 10));
}

TEST(Fast9, ScoresAreConsistentWithSegmentTest) {
  const auto kps = fast9(squareScene(), 30, /*nms=*/false);
  const Mat scene = squareScene();
  for (const auto& kp : kps) {
    EXPECT_GE(kp.score, 30);
    EXPECT_TRUE(fast9IsCorner(scene, kp.x, kp.y, kp.score));
    if (kp.score < 254) {
      EXPECT_FALSE(fast9IsCorner(scene, kp.x, kp.y, kp.score + 1));
    }
  }
}

TEST(Fast9, NonmaxSuppressionThinsClusters) {
  std::mt19937 rng(2);
  Mat m(64, 64, U8C1);
  for (int r = 0; r < 64; ++r)
    for (int c = 0; c < 64; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  const auto raw = fast9(m, 20, false);
  const auto nms = fast9(m, 20, true);
  EXPECT_LT(nms.size(), raw.size());
  // No two NMS survivors are 8-adjacent.
  for (std::size_t i = 0; i < nms.size(); ++i)
    for (std::size_t j = i + 1; j < nms.size(); ++j)
      EXPECT_FALSE(std::abs(nms[i].x - nms[j].x) <= 1 &&
                   std::abs(nms[i].y - nms[j].y) <= 1);
}

TEST(Fast9, RespectsBorderMargin) {
  std::mt19937 rng(3);
  Mat m(32, 32, U8C1);
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  for (const auto& kp : fast9(m, 5, false)) {
    EXPECT_GE(kp.x, 3);
    EXPECT_GE(kp.y, 3);
    EXPECT_LT(kp.x, 29);
    EXPECT_LT(kp.y, 29);
  }
}

TEST(Fast9, TinyAndInvalidInputs) {
  EXPECT_TRUE(fast9(full(6, 6, U8C1, 0), 10).empty());
  Mat c3(16, 16, U8C3);
  EXPECT_THROW(fast9(c3, 10), Error);
  Mat ok(16, 16, U8C1);
  EXPECT_THROW(fast9(ok, 0), Error);
  EXPECT_THROW(fast9(ok, 255), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
