// Median blur: correctness against a brute-force reference, impulse-noise
// removal, path agreement.
#include "imgproc/median.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "imgproc/border.hpp"

namespace simdcv::imgproc {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Neon};
}

Mat randomU8(int rows, int cols, unsigned seed) {
  Mat m(rows, cols, U8C1);
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  return m;
}

Mat bruteMedian(const Mat& src, int ksize) {
  const int radius = ksize / 2;
  Mat out(src.rows(), src.cols(), U8C1);
  std::vector<std::uint8_t> win;
  for (int y = 0; y < src.rows(); ++y)
    for (int x = 0; x < src.cols(); ++x) {
      win.clear();
      for (int dy = -radius; dy <= radius; ++dy)
        for (int dx = -radius; dx <= radius; ++dx) {
          const int sy = borderInterpolate(y + dy, src.rows(), BorderType::Replicate);
          const int sx = borderInterpolate(x + dx, src.cols(), BorderType::Replicate);
          win.push_back(src.at<std::uint8_t>(sy, sx));
        }
      std::nth_element(win.begin(), win.begin() + win.size() / 2, win.end());
      out.at<std::uint8_t>(y, x) = win[win.size() / 2];
    }
  return out;
}

TEST(MedianBlur, MatchesBruteForce3x3) {
  const Mat src = randomU8(25, 41, 1);
  const Mat ref = bruteMedian(src, 3);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    medianBlur(src, got, 3, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

TEST(MedianBlur, MatchesBruteForce5x5) {
  const Mat src = randomU8(19, 23, 2);
  const Mat ref = bruteMedian(src, 5);
  Mat got;
  medianBlur(src, got, 5);
  EXPECT_EQ(countMismatches(ref, got), 0u);
}

TEST(MedianBlur, RemovesSaltAndPepper) {
  Mat src = full(32, 32, U8C1, 128);
  std::mt19937 rng(3);
  // Sparse impulses (well under half the window) vanish under the median.
  for (int i = 0; i < 40; ++i) {
    const int r = static_cast<int>(rng() % 32);
    const int c = static_cast<int>(rng() % 32);
    src.at<std::uint8_t>(r, c) = (i & 1) ? 255 : 0;
  }
  // Keep impulses isolated for the check: count survivors instead of exact.
  Mat out;
  medianBlur(src, out, 3);
  int survivors = 0;
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c)
      if (out.at<std::uint8_t>(r, c) != 128) ++survivors;
  // Clustered impulses can survive; the vast majority must not.
  EXPECT_LT(survivors, 6);
}

TEST(MedianBlur, PreservesConstantAndStepEdge) {
  Mat flat = full(16, 16, U8C1, 42);
  Mat out;
  medianBlur(flat, out, 3);
  EXPECT_EQ(countMismatches(flat, out), 0u);

  // A straight vertical step edge is median-invariant.
  Mat edge(16, 16, U8C1);
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 16; ++c)
      edge.at<std::uint8_t>(r, c) = c < 8 ? 10 : 240;
  medianBlur(edge, out, 3);
  EXPECT_EQ(countMismatches(edge, out), 0u);
}

TEST(MedianBlur, TinyImages) {
  for (int w : {1, 2, 3}) {
    for (int h : {1, 2, 3}) {
      const Mat src = randomU8(h, w, static_cast<unsigned>(w * 10 + h));
      const Mat ref = bruteMedian(src, 3);
      Mat got;
      medianBlur(src, got, 3);
      EXPECT_EQ(countMismatches(ref, got), 0u) << w << "x" << h;
    }
  }
}

TEST(MedianBlur, Validation) {
  Mat src = randomU8(8, 8, 9), dst;
  EXPECT_THROW(medianBlur(src, dst, 4), Error);
  EXPECT_THROW(medianBlur(src, dst, 7), Error);
  Mat c3(4, 4, U8C3);
  EXPECT_THROW(medianBlur(c3, dst, 3), Error);
  Mat empty;
  EXPECT_THROW(medianBlur(empty, dst, 3), Error);
}

TEST(MedianBlur, IdempotentOnItsOwnOutputEventually) {
  // Median filtering converges to a root signal: applying it twice must not
  // move farther from the once-filtered image than the original did.
  const Mat src = randomU8(24, 24, 10);
  Mat once, twice;
  medianBlur(src, once, 3);
  medianBlur(once, twice, 3);
  EXPECT_LE(maxAbsDiff(once, twice), maxAbsDiff(src, once));
}

}  // namespace
}  // namespace simdcv::imgproc
