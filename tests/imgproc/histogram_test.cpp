// Histogram, equalization, Otsu and integral image.
#include "imgproc/histogram.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace simdcv::imgproc {
namespace {

Mat randomU8(int rows, int cols, unsigned seed) {
  Mat m(rows, cols, U8C1);
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  return m;
}

TEST(CalcHist, CountsEveryPixelOnce) {
  const Mat src = randomU8(37, 53, 1);
  const auto h = calcHist(src);
  std::uint64_t total = 0;
  for (auto v : h) total += v;
  EXPECT_EQ(total, src.total());
  // Cross-check a few bins against manual counts.
  for (int probe : {0, 17, 128, 255}) {
    std::uint32_t manual = 0;
    for (int r = 0; r < src.rows(); ++r)
      for (int c = 0; c < src.cols(); ++c)
        manual += src.at<std::uint8_t>(r, c) == probe;
    EXPECT_EQ(h[static_cast<std::size_t>(probe)], manual) << probe;
  }
}

TEST(CalcHist, DeltaImage) {
  Mat src = zeros(10, 10, U8C1);
  src.at<std::uint8_t>(5, 5) = 200;
  const auto h = calcHist(src);
  EXPECT_EQ(h[0], 99u);
  EXPECT_EQ(h[200], 1u);
}

TEST(CalcHist, WorksOnRoi) {
  Mat big = zeros(16, 16, U8C1);
  big.roi({4, 4, 8, 8}).setTo(9);
  const auto h = calcHist(big.roi({4, 4, 8, 8}));
  EXPECT_EQ(h[9], 64u);
  EXPECT_EQ(h[0], 0u);
}

TEST(EqualizeHist, FlattensTheCdf) {
  // Heavily skewed image: values concentrated in [0, 64).
  Mat src(64, 64, U8C1);
  std::mt19937 rng(2);
  for (int r = 0; r < 64; ++r)
    for (int c = 0; c < 64; ++c)
      src.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng() % 64);
  Mat eq;
  equalizeHist(src, eq);
  double mn = 255, mx = 0;
  for (int r = 0; r < 64; ++r)
    for (int c = 0; c < 64; ++c) {
      mn = std::min<double>(mn, eq.at<std::uint8_t>(r, c));
      mx = std::max<double>(mx, eq.at<std::uint8_t>(r, c));
    }
  EXPECT_EQ(mn, 0);          // lowest occupied bin maps to 0
  EXPECT_GT(mx, 250);        // highest occupied bin maps to ~255
}

TEST(EqualizeHist, MonotoneNonDecreasingMapping) {
  const Mat src = randomU8(32, 32, 3);
  Mat eq;
  equalizeHist(src, eq);
  // Build the implied LUT and verify monotonicity w.r.t. source value.
  std::array<int, 256> lut;
  lut.fill(-1);
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c)
      lut[src.at<std::uint8_t>(r, c)] = eq.at<std::uint8_t>(r, c);
  int prev = -1;
  for (int v = 0; v < 256; ++v) {
    if (lut[static_cast<std::size_t>(v)] < 0) continue;
    EXPECT_GE(lut[static_cast<std::size_t>(v)], prev) << v;
    prev = lut[static_cast<std::size_t>(v)];
  }
}

TEST(EqualizeHist, ConstantImageUnchanged) {
  const Mat src = full(8, 8, U8C1, 99);
  Mat eq;
  equalizeHist(src, eq);
  EXPECT_EQ(countMismatches(src, eq), 0u);
}

TEST(Otsu, SeparatesBimodalImage) {
  // Two well-separated modes around 50 and 200.
  Mat src(64, 64, U8C1);
  std::mt19937 rng(4);
  for (int r = 0; r < 64; ++r)
    for (int c = 0; c < 64; ++c) {
      const int base = (r < 32) ? 50 : 200;
      src.at<std::uint8_t>(r, c) =
          static_cast<std::uint8_t>(base + static_cast<int>(rng() % 21) - 10);
    }
  // The between-class variance is flat across the empty gap between modes;
  // our implementation returns the first maximizer, i.e. the upper edge of
  // the low mode (~60). Any value separating the modes is acceptable.
  const double t = otsuThreshold(src);
  EXPECT_GE(t, 55);
  EXPECT_LT(t, 195);
}

TEST(Otsu, DegenerateImages) {
  EXPECT_GE(otsuThreshold(full(8, 8, U8C1, 128)), 0.0);
  Mat twoVal = zeros(8, 8, U8C1);
  twoVal.roi({0, 0, 4, 8}).setTo(255);
  const double t = otsuThreshold(twoVal);
  EXPECT_GE(t, 0);
  EXPECT_LT(t, 255);
}

TEST(Integral, MatchesBruteForceU8) {
  const Mat src = randomU8(13, 17, 5);
  Mat ii;
  integral(src, ii);
  ASSERT_EQ(ii.size(), Size(18, 14));
  ASSERT_EQ(ii.depth(), Depth::S32);
  for (int y = 0; y <= 13; ++y)
    for (int x = 0; x <= 17; ++x) {
      std::int32_t manual = 0;
      for (int r = 0; r < y; ++r)
        for (int c = 0; c < x; ++c) manual += src.at<std::uint8_t>(r, c);
      ASSERT_EQ(ii.at<std::int32_t>(y, x), manual) << y << "," << x;
    }
}

TEST(Integral, F32Variant) {
  Mat src = full(4, 4, F32C1, 0.5);
  Mat ii;
  integral(src, ii);
  ASSERT_EQ(ii.depth(), Depth::F64);
  EXPECT_DOUBLE_EQ(ii.at<double>(4, 4), 8.0);
  EXPECT_DOUBLE_EQ(ii.at<double>(2, 2), 2.0);
}

TEST(Integral, RectSumMatchesDirect) {
  const Mat src = randomU8(21, 33, 6);
  Mat ii;
  integral(src, ii);
  std::mt19937 rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    int x0 = static_cast<int>(rng() % 33), x1 = static_cast<int>(rng() % 34);
    int y0 = static_cast<int>(rng() % 21), y1 = static_cast<int>(rng() % 22);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    double manual = 0;
    for (int r = y0; r < y1; ++r)
      for (int c = x0; c < x1; ++c) manual += src.at<std::uint8_t>(r, c);
    EXPECT_DOUBLE_EQ(integralRectSum(ii, x0, y0, x1, y1), manual);
  }
}

TEST(Integral, Validation) {
  Mat c3(4, 4, U8C3), dst;
  EXPECT_THROW(integral(c3, dst), Error);
  Mat ii;
  integral(full(4, 4, U8C1, 1), ii);
  EXPECT_THROW(integralRectSum(ii, 0, 0, 99, 1), Error);
  Mat notIi(4, 4, U8C1);
  EXPECT_THROW(integralRectSum(notIi, 0, 0, 1, 1), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
