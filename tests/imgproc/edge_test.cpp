// Gradient magnitude and the full edge-detection pipeline.
#include "imgproc/edge.hpp"

#include <gtest/gtest.h>

#include <random>

#include "imgproc/filter.hpp"

namespace simdcv::imgproc {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Avx2, KernelPath::Neon};
}

Mat randomS16(int rows, int cols, unsigned seed, int lo = -32768, int hi = 32767) {
  Mat m(rows, cols, S16C1);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(lo, hi);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::int16_t>(r, c) = static_cast<std::int16_t>(dist(rng));
  return m;
}

TEST(Magnitude, MatchesScalarDefinition) {
  const Mat gx = randomS16(13, 37, 1, -1000, 1000);
  const Mat gy = randomS16(13, 37, 2, -1000, 1000);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat mag;
    gradientMagnitude(gx, gy, mag, p);
    for (int r = 0; r < gx.rows(); ++r)
      for (int c = 0; c < gx.cols(); ++c) {
        const int want = std::min(
            255, std::abs(static_cast<int>(gx.at<std::int16_t>(r, c))) +
                     std::abs(static_cast<int>(gy.at<std::int16_t>(r, c))));
        ASSERT_EQ(mag.at<std::uint8_t>(r, c), want) << toString(p);
      }
  }
}

TEST(Magnitude, AllPathsBitExactOnFullS16Range) {
  // Includes INT16_MIN, where saturating-abs semantics matter.
  const Mat gx = randomS16(16, 33, 3);
  const Mat gy = randomS16(16, 33, 4);
  Mat ref;
  gradientMagnitude(gx, gy, ref, KernelPath::Auto);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    gradientMagnitude(gx, gy, got, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

TEST(Magnitude, ExtremeValuesSaturateTo255) {
  Mat gx(1, 8, S16C1), gy(1, 8, S16C1);
  gx.setTo(-32768);
  gy.setTo(-32768);
  Mat mag;
  gradientMagnitude(gx, gy, mag);
  for (int c = 0; c < 8; ++c) EXPECT_EQ(mag.at<std::uint8_t>(0, c), 255);
}

TEST(Magnitude, ZeroGradientsGiveZero) {
  Mat gx = zeros(4, 4, S16C1), gy = zeros(4, 4, S16C1), mag;
  gradientMagnitude(gx, gy, mag);
  EXPECT_EQ(countMismatches(mag, zeros(4, 4, U8C1)), 0u);
}

TEST(Magnitude, RejectsMismatchedInputs) {
  Mat a = zeros(4, 4, S16C1), b = zeros(4, 5, S16C1), dst;
  EXPECT_THROW(gradientMagnitude(a, b, dst), Error);
  Mat f = zeros(4, 4, F32C1);
  EXPECT_THROW(gradientMagnitude(a, f, dst), Error);
}

TEST(EdgeDetect, FindsVerticalEdge) {
  Mat src = zeros(32, 32, U8C1);
  for (int r = 0; r < 32; ++r)
    for (int c = 16; c < 32; ++c) src.at<std::uint8_t>(r, c) = 220;
  Mat edges;
  edgeDetect(src, edges, 100.0);
  ASSERT_EQ(edges.depth(), Depth::U8);
  // Edge pixels near column 16 fire; far-away pixels do not.
  int onNearEdge = 0;
  for (int r = 8; r < 24; ++r)
    for (int c = 15; c <= 16; ++c)
      if (edges.at<std::uint8_t>(r, c) == 255) ++onNearEdge;
  EXPECT_GT(onNearEdge, 16);
  for (int r = 8; r < 24; ++r) {
    EXPECT_EQ(edges.at<std::uint8_t>(r, 4), 0);
    EXPECT_EQ(edges.at<std::uint8_t>(r, 28), 0);
  }
}

TEST(EdgeDetect, OutputIsBinary) {
  std::mt19937 rng(9);
  Mat src(24, 24, U8C1);
  for (int r = 0; r < 24; ++r)
    for (int c = 0; c < 24; ++c)
      src.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng() & 0xff);
  Mat edges;
  edgeDetect(src, edges, 150.0);
  for (int r = 0; r < 24; ++r)
    for (int c = 0; c < 24; ++c) {
      const auto v = edges.at<std::uint8_t>(r, c);
      EXPECT_TRUE(v == 0 || v == 255) << static_cast<int>(v);
    }
}

TEST(EdgeDetect, ConstantImageHasNoEdges) {
  Mat src = full(16, 16, U8C1, 128);
  Mat edges;
  edgeDetect(src, edges, 10.0);
  EXPECT_EQ(countMismatches(edges, zeros(16, 16, U8C1)), 0u);
}

TEST(EdgeDetect, ThresholdControlsSensitivity) {
  std::mt19937 rng(10);
  Mat src(32, 32, U8C1);
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c)
      src.at<std::uint8_t>(r, c) =
          static_cast<std::uint8_t>(128 + (static_cast<int>(rng() % 64)) - 32);
  auto countOn = [](const Mat& m) {
    int n = 0;
    for (int r = 0; r < m.rows(); ++r)
      for (int c = 0; c < m.cols(); ++c)
        if (m.at<std::uint8_t>(r, c)) ++n;
    return n;
  };
  Mat low, high;
  edgeDetect(src, low, 20.0);
  edgeDetect(src, high, 200.0);
  EXPECT_GT(countOn(low), countOn(high));
}

TEST(EdgeDetect, AllPathsBitExact) {
  std::mt19937 rng(11);
  Mat src(29, 43, U8C1);
  for (int r = 0; r < 29; ++r)
    for (int c = 0; c < 43; ++c)
      src.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng() & 0xff);
  Mat ref;
  edgeDetect(src, ref, 120.0, 3, BorderType::Reflect101, KernelPath::Auto);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    edgeDetect(src, got, 120.0, 3, BorderType::Reflect101, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

}  // namespace
}  // namespace simdcv::imgproc
