// Geometric rearrangements and affine warping.
#include "imgproc/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace simdcv::imgproc {
namespace {

Mat iota(int rows, int cols) {
  Mat m(rows, cols, U8C1);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>((r * cols + c) & 0xff);
  return m;
}

TEST(Flip, HorizontalVerticalBoth) {
  const Mat src = iota(3, 4);
  Mat h, v, b;
  flip(src, h, FlipAxis::Horizontal);
  flip(src, v, FlipAxis::Vertical);
  flip(src, b, FlipAxis::Both);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(h.at<std::uint8_t>(r, c), src.at<std::uint8_t>(r, 3 - c));
      EXPECT_EQ(v.at<std::uint8_t>(r, c), src.at<std::uint8_t>(2 - r, c));
      EXPECT_EQ(b.at<std::uint8_t>(r, c), src.at<std::uint8_t>(2 - r, 3 - c));
    }
}

TEST(Flip, IsInvolution) {
  const Mat src = iota(7, 11);
  for (auto axis : {FlipAxis::Horizontal, FlipAxis::Vertical, FlipAxis::Both}) {
    Mat once, twice;
    flip(src, once, axis);
    flip(once, twice, axis);
    EXPECT_EQ(countMismatches(src, twice), 0u);
  }
}

TEST(Flip, MultiChannelKeepsPixelsIntact) {
  Mat src(2, 2, U8C3);
  for (int i = 0; i < 12; ++i)
    src.at<std::uint8_t>(i / 6, i % 6) = static_cast<std::uint8_t>(i);
  Mat h;
  flip(src, h, FlipAxis::Horizontal);
  // Pixel (0,1) = bytes 3,4,5 moves to (0,0) intact (channels not reversed).
  EXPECT_EQ(h.at<std::uint8_t>(0, 0), 3);
  EXPECT_EQ(h.at<std::uint8_t>(0, 1), 4);
  EXPECT_EQ(h.at<std::uint8_t>(0, 2), 5);
}

TEST(Transpose, SwapsCoordinates) {
  const Mat src = iota(3, 5);
  Mat t;
  transpose(src, t);
  ASSERT_EQ(t.size(), Size(3, 5));  // width/height swapped
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 5; ++c)
      EXPECT_EQ(t.at<std::uint8_t>(c, r), src.at<std::uint8_t>(r, c));
  Mat tt;
  transpose(t, tt);
  EXPECT_EQ(countMismatches(src, tt), 0u);
}

TEST(Transpose, LargeBlockedF32) {
  Mat src(70, 45, F32C1);
  std::mt19937 rng(1);
  for (int r = 0; r < 70; ++r)
    for (int c = 0; c < 45; ++c)
      src.at<float>(r, c) = static_cast<float>(rng()) / 1e6f;
  Mat t;
  transpose(src, t);
  for (int r = 0; r < 70; ++r)
    for (int c = 0; c < 45; ++c)
      ASSERT_EQ(t.at<float>(c, r), src.at<float>(r, c));
}

TEST(Rotate, QuarterTurns) {
  const Mat src = iota(2, 3);
  Mat cw, ccw, r180;
  rotate(src, cw, Rotation::Cw90);
  rotate(src, ccw, Rotation::Ccw90);
  rotate(src, r180, Rotation::R180);
  ASSERT_EQ(cw.size(), Size(2, 3));
  // CW90: (r,c) -> (c, rows-1-r).
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(cw.at<std::uint8_t>(c, 1 - r), src.at<std::uint8_t>(r, c));
      EXPECT_EQ(ccw.at<std::uint8_t>(2 - c, r), src.at<std::uint8_t>(r, c));
    }
  // Four CW rotations restore the original.
  Mat x = src.clone();
  for (int i = 0; i < 4; ++i) {
    Mat next;
    rotate(x, next, Rotation::Cw90);
    x = std::move(next);
  }
  EXPECT_EQ(countMismatches(src, x), 0u);
}

TEST(CopyMakeBorder, ConstantAndReplicate) {
  const Mat src = iota(2, 2);
  Mat c;
  copyMakeBorder(src, c, 1, 2, 1, 1, BorderType::Constant, 9.0);
  ASSERT_EQ(c.size(), Size(4, 5));
  EXPECT_EQ(c.at<std::uint8_t>(0, 0), 9);
  EXPECT_EQ(c.at<std::uint8_t>(1, 1), src.at<std::uint8_t>(0, 0));
  EXPECT_EQ(c.at<std::uint8_t>(2, 2), src.at<std::uint8_t>(1, 1));
  EXPECT_EQ(c.at<std::uint8_t>(3, 1), 9);
  Mat r;
  copyMakeBorder(src, r, 1, 1, 2, 0, BorderType::Replicate);
  EXPECT_EQ(r.at<std::uint8_t>(0, 0), src.at<std::uint8_t>(0, 0));
  EXPECT_EQ(r.at<std::uint8_t>(0, 1), src.at<std::uint8_t>(0, 0));
  EXPECT_EQ(r.at<std::uint8_t>(3, 3), src.at<std::uint8_t>(1, 1));
}

TEST(CopyMakeBorder, MatchesFilterEnginePadding) {
  // Reflect101 border of width 2 around a known pattern.
  const Mat src = iota(4, 4);
  Mat p;
  copyMakeBorder(src, p, 2, 2, 2, 2, BorderType::Reflect101);
  EXPECT_EQ(p.at<std::uint8_t>(2, 0), src.at<std::uint8_t>(0, 2));
  EXPECT_EQ(p.at<std::uint8_t>(0, 2), src.at<std::uint8_t>(2, 0));
  EXPECT_EQ(p.at<std::uint8_t>(2, 2), src.at<std::uint8_t>(0, 0));
}

TEST(Affine, IdentityWarpIsExactCopy) {
  const Mat src = iota(16, 20);
  Mat dst;
  warpAffine(src, dst, affineIdentity(), {20, 16});
  EXPECT_EQ(countMismatches(src, dst), 0u);
}

TEST(Affine, PureTranslation) {
  const Mat src = iota(8, 8);
  // dst(x,y) samples src(x-2, y-3): shift content right/down by (2,3).
  AffineMat m = affineIdentity();
  m[2] = -2;
  m[5] = -3;
  Mat dst;
  warpAffine(src, dst, m, {8, 8}, BorderType::Constant, 0.0);
  for (int r = 3; r < 8; ++r)
    for (int c = 2; c < 8; ++c)
      EXPECT_EQ(dst.at<std::uint8_t>(r, c), src.at<std::uint8_t>(r - 3, c - 2));
  EXPECT_EQ(dst.at<std::uint8_t>(0, 0), 0);  // constant fill
}

TEST(Affine, InvertRoundTrip) {
  const AffineMat m = {0.8, -0.3, 5.0, 0.2, 1.1, -7.0};
  const AffineMat inv = invertAffine(m);
  // m o inv == identity (checked at a few points).
  for (double x : {0.0, 3.0, -2.5}) {
    for (double y : {0.0, 1.0, 4.5}) {
      const double ix = inv[0] * x + inv[1] * y + inv[2];
      const double iy = inv[3] * x + inv[4] * y + inv[5];
      EXPECT_NEAR(m[0] * ix + m[1] * iy + m[2], x, 1e-9);
      EXPECT_NEAR(m[3] * ix + m[4] * iy + m[5], y, 1e-9);
    }
  }
  EXPECT_THROW(invertAffine({1, 2, 0, 2, 4, 0}), Error);  // singular
}

TEST(Affine, Rotation360RestoresSmoothImage) {
  // Four 90-degree bilinear rotations of a smooth image about its center
  // approximately restore it (interior only; borders decay).
  Mat src(33, 33, F32C1);
  for (int r = 0; r < 33; ++r)
    for (int c = 0; c < 33; ++c)
      src.at<float>(r, c) = static_cast<float>(r + 2 * c);
  const AffineMat fwd = getRotationMatrix2D(16.0, 16.0, 90.0, 1.0);
  const AffineMat inv = invertAffine(fwd);
  Mat x = src.clone();
  for (int i = 0; i < 4; ++i) {
    Mat next;
    warpAffine(x, next, inv, {33, 33}, BorderType::Replicate);
    x = std::move(next);
  }
  for (int r = 8; r < 25; ++r)
    for (int c = 8; c < 25; ++c)
      EXPECT_NEAR(x.at<float>(r, c), src.at<float>(r, c), 0.25) << r << "," << c;
}

TEST(Affine, ScaleHalfMatchesDownsample) {
  // Scaling by 2 in the map (dst->src doubling) shrinks content; sampling
  // the center of a constant region stays exact.
  Mat src = full(16, 16, U8C1, 200);
  AffineMat m = {2, 0, 0, 0, 2, 0};
  Mat dst;
  warpAffine(src, dst, m, {8, 8}, BorderType::Replicate);
  EXPECT_EQ(countMismatches(dst, full(8, 8, U8C1, 200)), 0u);
}

TEST(Affine, Validation) {
  Mat src = iota(4, 4), dst;
  EXPECT_THROW(warpAffine(src, dst, affineIdentity(), {0, 4}), Error);
  Mat c3(4, 4, U8C3);
  EXPECT_THROW(warpAffine(c3, dst, affineIdentity(), {4, 4}), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
