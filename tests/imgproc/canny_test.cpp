// Canny: edge localization, thinness (NMS), hysteresis behaviour.
#include "imgproc/canny.hpp"

#include <gtest/gtest.h>

#include <random>

namespace simdcv::imgproc {
namespace {

int countOn(const Mat& m) {
  int n = 0;
  for (int r = 0; r < m.rows(); ++r)
    for (int c = 0; c < m.cols(); ++c)
      if (m.at<std::uint8_t>(r, c)) ++n;
  return n;
}

Mat stepImage(int rows, int cols, int edgeCol) {
  Mat m = zeros(rows, cols, U8C1);
  for (int r = 0; r < rows; ++r)
    for (int c = edgeCol; c < cols; ++c) m.at<std::uint8_t>(r, c) = 200;
  return m;
}

TEST(Canny, FindsAndLocalizesVerticalEdge) {
  const Mat src = stepImage(32, 32, 16);
  Mat edges;
  Canny(src, edges, 100, 300);
  ASSERT_EQ(edges.type(), U8C1);
  // Every interior row fires on exactly one of the two edge-adjacent
  // columns (NMS thins the 2-wide Sobel response to 1).
  for (int r = 2; r < 30; ++r) {
    int rowOn = 0;
    for (int c = 0; c < 32; ++c)
      if (edges.at<std::uint8_t>(r, c)) {
        ++rowOn;
        EXPECT_GE(c, 15);
        EXPECT_LE(c, 16);
      }
    EXPECT_EQ(rowOn, 1) << "row " << r;
  }
}

TEST(Canny, ConstantImageHasNoEdges) {
  Mat edges;
  Canny(full(24, 24, U8C1, 77), edges, 10, 30);
  EXPECT_EQ(countOn(edges), 0);
}

TEST(Canny, EdgesAreThinOnDiagonal) {
  // Diagonal step: NMS must keep the response ~1px wide (allow 2 for the
  // staircase), i.e. on-count close to the diagonal length, not 3-4x it.
  const int n = 48;
  Mat src = zeros(n, n, U8C1);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      if (c > r) src.at<std::uint8_t>(r, c) = 200;
  Mat edges;
  Canny(src, edges, 100, 300);
  const int on = countOn(edges);
  EXPECT_GT(on, n / 2);
  EXPECT_LT(on, 3 * n);
}

TEST(Canny, HysteresisConnectsWeakThroughStrong) {
  // A contrast ramp along one edge: parts above the high threshold must
  // drag connected sections that only clear the low threshold.
  const int n = 64;
  Mat src = zeros(n, n, U8C1);
  for (int r = 0; r < n; ++r) {
    // Edge contrast decays with row: strong at top, weak at bottom.
    const int amp = 200 - r * 2;
    for (int c = n / 2; c < n; ++c)
      src.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(amp > 0 ? amp : 0);
  }
  Mat strict, hysteresis;
  Canny(src, strict, 350, 350);       // only the strong section
  Canny(src, hysteresis, 100, 350);   // weak connected section joins
  EXPECT_GT(countOn(hysteresis), countOn(strict));
  // Isolated weak edges (not connected to any strong pixel) stay off:
  Mat weakOnly = zeros(32, 32, U8C1);
  for (int r = 12; r < 20; ++r)
    for (int c = 16; c < 32; ++c) weakOnly.at<std::uint8_t>(r, c) = 30;
  Mat e;
  Canny(weakOnly, e, 100, 1000);  // gradient ~ 8*30=240 > low, < high
  EXPECT_EQ(countOn(e), 0);
}

TEST(Canny, ThresholdMonotonicity) {
  std::mt19937 rng(4);
  Mat src(48, 48, U8C1);
  for (int r = 0; r < 48; ++r)
    for (int c = 0; c < 48; ++c)
      src.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  Mat loose, tight;
  Canny(src, loose, 50, 150);
  Canny(src, tight, 200, 600);
  EXPECT_GE(countOn(loose), countOn(tight));
}

TEST(Canny, PathsAgreeBitExact) {
  std::mt19937 rng(5);
  Mat src(40, 56, U8C1);
  for (int r = 0; r < 40; ++r)
    for (int c = 0; c < 56; ++c)
      src.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  Mat ref;
  Canny(src, ref, 80, 200, 3, KernelPath::Auto);
  for (KernelPath p : {KernelPath::ScalarNoVec, KernelPath::Sse2, KernelPath::Neon}) {
    if (!pathAvailable(p)) continue;
    Mat got;
    Canny(src, got, 80, 200, 3, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

TEST(Canny, LargerApertures) {
  const Mat src = stepImage(32, 32, 16);
  for (int ap : {3, 5, 7}) {
    Mat edges;
    Canny(src, edges, 100, 300, ap);
    EXPECT_GT(countOn(edges), 16) << "aperture " << ap;
  }
}

TEST(Canny, Validation) {
  Mat src = stepImage(8, 8, 4), dst;
  EXPECT_THROW(Canny(src, dst, 100, 50), Error);    // low > high
  EXPECT_THROW(Canny(src, dst, 10, 20, 4), Error);  // even aperture
  Mat c3(4, 4, U8C3);
  EXPECT_THROW(Canny(c3, dst, 10, 20), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
