// Harris response and corner extraction.
#include "imgproc/harris.hpp"

#include <gtest/gtest.h>

#include "core/array_ops.hpp"

namespace simdcv::imgproc {
namespace {

Mat squareScene() {
  Mat m = full(48, 48, U8C1, 30);
  m.roi({16, 16, 16, 16}).setTo(220);
  return m;
}

TEST(Harris, ResponsePositiveAtCornersNegativeOnEdges) {
  Mat resp;
  cornerHarris(squareScene(), resp);
  ASSERT_EQ(resp.depth(), Depth::F32);
  // Corner of the square: both eigenvalues large -> strongly positive.
  float cornerMax = -1e30f;
  for (int y = 14; y <= 18; ++y)
    for (int x = 14; x <= 18; ++x)
      cornerMax = std::max(cornerMax, resp.at<float>(y, x));
  EXPECT_GT(cornerMax, 0.0f);
  // Mid-edge: one large, one ~zero eigenvalue -> R < 0.
  float edgeMin = 1e30f;
  for (int y = 22; y <= 26; ++y)
    edgeMin = std::min(edgeMin, resp.at<float>(y, 16));
  EXPECT_LT(edgeMin, 0.0f);
  // Flat region: R ~ 0.
  EXPECT_NEAR(resp.at<float>(24, 24), 0.0f, 1.0f);
  EXPECT_NEAR(resp.at<float>(5, 5), 0.0f, 1.0f);
  // Corner response dominates the edge response magnitude-wise at the
  // corner pixel itself.
  EXPECT_GT(cornerMax, std::abs(resp.at<float>(24, 24)));
}

TEST(Harris, FindsAllFourSquareCorners) {
  const auto kps = harrisCorners(squareScene(), 10, 0.1, 6.0);
  ASSERT_GE(kps.size(), 4u);
  auto near = [&](int x, int y) {
    for (const auto& kp : kps)
      if (std::abs(kp.x - x) <= 3 && std::abs(kp.y - y) <= 3) return true;
    return false;
  };
  EXPECT_TRUE(near(16, 16));
  EXPECT_TRUE(near(31, 16));
  EXPECT_TRUE(near(16, 31));
  EXPECT_TRUE(near(31, 31));
}

TEST(Harris, ConstantImageHasNoCorners) {
  EXPECT_TRUE(harrisCorners(full(32, 32, U8C1, 100), 10).empty());
}

TEST(Harris, MinDistanceSpacing) {
  const auto kps = harrisCorners(squareScene(), 100, 0.01, 8.0);
  for (std::size_t i = 0; i < kps.size(); ++i)
    for (std::size_t j = i + 1; j < kps.size(); ++j) {
      const double dx = kps[i].x - kps[j].x;
      const double dy = kps[i].y - kps[j].y;
      EXPECT_GE(dx * dx + dy * dy, 64.0);
    }
}

TEST(Harris, MaxCornersRespected) {
  const auto kps = harrisCorners(squareScene(), 2, 0.01, 1.0);
  EXPECT_LE(kps.size(), 2u);
  EXPECT_GE(kps.size(), 1u);
}

TEST(Harris, StrongestFirst) {
  const auto kps = harrisCorners(squareScene(), 10, 0.01, 4.0);
  for (std::size_t i = 1; i < kps.size(); ++i)
    EXPECT_GE(kps[i - 1].score, kps[i].score);
}

TEST(Harris, Validation) {
  Mat f(8, 8, F32C1), resp;
  EXPECT_THROW(cornerHarris(f, resp), Error);
  Mat u8(8, 8, U8C1);
  EXPECT_THROW(cornerHarris(u8, resp, 4), Error);
  EXPECT_THROW(harrisCorners(u8, 0), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
