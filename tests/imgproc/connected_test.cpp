// Connected components: labeling correctness, connectivity modes, stats.
#include "imgproc/connected.hpp"

#include <gtest/gtest.h>

#include <set>

namespace simdcv::imgproc {
namespace {

Mat fromPattern(const char* rows[], int h, int w) {
  Mat m = zeros(h, w, U8C1);
  for (int r = 0; r < h; ++r)
    for (int c = 0; c < w; ++c)
      if (rows[r][c] == '#') m.at<std::uint8_t>(r, c) = 255;
  return m;
}

TEST(ConnectedComponents, TwoSeparateBlobs) {
  const char* p[] = {
      "##....",
      "##....",
      "....##",
      "....##",
  };
  Mat labels;
  const int n = connectedComponents(fromPattern(p, 4, 6), labels);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(labels.at<std::int32_t>(0, 0), 1);  // scan order numbering
  EXPECT_EQ(labels.at<std::int32_t>(3, 5), 2);
  EXPECT_EQ(labels.at<std::int32_t>(0, 3), 0);  // background
}

TEST(ConnectedComponents, DiagonalTouchDependsOnConnectivity) {
  const char* p[] = {
      "#.",
      ".#",
  };
  const Mat img = fromPattern(p, 2, 2);
  Mat labels;
  EXPECT_EQ(connectedComponents(img, labels, Connectivity::Eight), 1);
  EXPECT_EQ(connectedComponents(img, labels, Connectivity::Four), 2);
}

TEST(ConnectedComponents, UShapeMergesAcrossRows) {
  // The two arms of a U get different provisional labels that must merge.
  const char* p[] = {
      "#.#",
      "#.#",
      "###",
  };
  Mat labels;
  EXPECT_EQ(connectedComponents(fromPattern(p, 3, 3), labels), 1);
  EXPECT_EQ(labels.at<std::int32_t>(0, 0), labels.at<std::int32_t>(0, 2));
}

TEST(ConnectedComponents, SpiralIsOneComponent) {
  const char* p[] = {
      "#####",
      "....#",
      "###.#",
      "#...#",
      "#####",
  };
  Mat labels;
  EXPECT_EQ(connectedComponents(fromPattern(p, 5, 5), labels), 1);
}

TEST(ConnectedComponents, EmptyAndFullImages) {
  Mat labels;
  EXPECT_EQ(connectedComponents(zeros(8, 8, U8C1), labels), 0);
  EXPECT_EQ(countMismatches(labels, zeros(8, 8, S32C1)), 0u);
  EXPECT_EQ(connectedComponents(full(8, 8, U8C1, 255), labels), 1);
  EXPECT_EQ(labels.at<std::int32_t>(7, 7), 1);
}

TEST(ConnectedComponents, ManySinglePixels) {
  Mat img = zeros(10, 10, U8C1);
  for (int r = 0; r < 10; r += 2)
    for (int c = 0; c < 10; c += 2) img.at<std::uint8_t>(r, c) = 1;
  Mat labels;
  EXPECT_EQ(connectedComponents(img, labels), 25);
  std::set<std::int32_t> seen;
  for (int r = 0; r < 10; ++r)
    for (int c = 0; c < 10; ++c)
      if (labels.at<std::int32_t>(r, c)) seen.insert(labels.at<std::int32_t>(r, c));
  EXPECT_EQ(seen.size(), 25u);
}

TEST(ConnectedComponents, StatsAreExact) {
  const char* p[] = {
      ".....",
      ".###.",
      ".###.",
      ".....",
      "#....",
  };
  Mat labels;
  std::vector<ComponentStats> stats;
  const int n = connectedComponentsWithStats(fromPattern(p, 5, 5), labels, stats);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(stats[0].area, 6);
  EXPECT_EQ(stats[0].bbox, Rect(1, 1, 3, 2));
  EXPECT_DOUBLE_EQ(stats[0].centroid_x, 2.0);
  EXPECT_DOUBLE_EQ(stats[0].centroid_y, 1.5);
  EXPECT_EQ(stats[1].area, 1);
  EXPECT_EQ(stats[1].bbox, Rect(0, 4, 1, 1));
}

TEST(ConnectedComponents, Validation) {
  Mat f(4, 4, F32C1), labels;
  EXPECT_THROW(connectedComponents(f, labels), Error);
  Mat empty;
  EXPECT_THROW(connectedComponents(empty, labels), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
