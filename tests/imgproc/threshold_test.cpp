// Threshold: all five types x all paths x u8/s16/f32, degenerate thresholds,
// ROI handling, NaN behaviour.
#include "imgproc/threshold.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace simdcv::imgproc {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Avx2, KernelPath::Neon};
}

Mat randomU8(int rows, int cols, unsigned seed) {
  Mat m(rows, cols, U8C1);
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng() & 0xff);
  return m;
}

std::uint8_t refThresh(std::uint8_t v, int t, std::uint8_t maxval,
                       ThresholdType type) {
  switch (type) {
    case ThresholdType::Binary: return v > t ? maxval : 0;
    case ThresholdType::BinaryInv: return v > t ? 0 : maxval;
    case ThresholdType::Trunc: return v > t ? static_cast<std::uint8_t>(t) : v;
    case ThresholdType::ToZero: return v > t ? v : 0;
    case ThresholdType::ToZeroInv: return v > t ? 0 : v;
  }
  return 0;
}

class ThresholdU8Test
    : public ::testing::TestWithParam<std::tuple<ThresholdType, KernelPath>> {};

TEST_P(ThresholdU8Test, MatchesReference) {
  const auto [type, path] = GetParam();
  if (!pathAvailable(path)) GTEST_SKIP();
  // Odd width forces a vector tail; value 128 sits exactly at the threshold.
  Mat src = randomU8(33, 61, 5);
  src.at<std::uint8_t>(0, 0) = 128;
  src.at<std::uint8_t>(0, 1) = 127;
  src.at<std::uint8_t>(0, 2) = 129;
  Mat dst;
  threshold(src, dst, 128.0, 255.0, type, path);
  for (int r = 0; r < src.rows(); ++r)
    for (int c = 0; c < src.cols(); ++c)
      ASSERT_EQ(dst.at<std::uint8_t>(r, c),
                refThresh(src.at<std::uint8_t>(r, c), 128, 255, type))
          << toString(type) << "/" << toString(path) << " @" << r << "," << c;
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndPaths, ThresholdU8Test,
    ::testing::Combine(::testing::Values(ThresholdType::Binary,
                                         ThresholdType::BinaryInv,
                                         ThresholdType::Trunc,
                                         ThresholdType::ToZero,
                                         ThresholdType::ToZeroInv),
                       ::testing::Values(KernelPath::ScalarNoVec,
                                         KernelPath::Auto, KernelPath::Sse2,
                                         KernelPath::Avx2, KernelPath::Neon)),
    [](const auto& info) {
      std::string n = std::string(toString(std::get<0>(info.param))) + "_" +
                      toString(std::get<1>(info.param));
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(Threshold, AllPathsAgreeBitExactU8) {
  Mat src = randomU8(64, 127, 9);
  for (auto type : {ThresholdType::Binary, ThresholdType::BinaryInv,
                    ThresholdType::Trunc, ThresholdType::ToZero,
                    ThresholdType::ToZeroInv}) {
    Mat ref;
    threshold(src, ref, 100.0, 200.0, type, KernelPath::Auto);
    for (KernelPath p : paths()) {
      if (!pathAvailable(p)) continue;
      Mat got;
      threshold(src, got, 100.0, 200.0, type, p);
      EXPECT_EQ(countMismatches(ref, got), 0u)
          << toString(type) << "/" << toString(p);
    }
  }
}

TEST(Threshold, F32AllPathsAgree) {
  Mat src(17, 37, F32C1);
  std::mt19937 rng(3);
  std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
  for (int r = 0; r < src.rows(); ++r)
    for (int c = 0; c < src.cols(); ++c) src.at<float>(r, c) = dist(rng);
  src.at<float>(5, 5) = 12.5f;  // exactly at threshold
  for (auto type : {ThresholdType::Binary, ThresholdType::BinaryInv,
                    ThresholdType::Trunc, ThresholdType::ToZero,
                    ThresholdType::ToZeroInv}) {
    Mat ref;
    threshold(src, ref, 12.5, 77.0, type, KernelPath::Auto);
    for (KernelPath p : paths()) {
      if (!pathAvailable(p)) continue;
      Mat got;
      threshold(src, got, 12.5, 77.0, type, p);
      EXPECT_EQ(countMismatches(ref, got), 0u)
          << toString(type) << "/" << toString(p);
    }
  }
}

TEST(Threshold, F32NaNTreatedAsNotGreater) {
  Mat src(1, 8, F32C1);
  for (int c = 0; c < 8; ++c) src.at<float>(0, c) = std::nanf("");
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat dst;
    threshold(src, dst, 0.0, 255.0, ThresholdType::Binary, p);
    for (int c = 0; c < 8; ++c)
      EXPECT_EQ(dst.at<float>(0, c), 0.0f) << toString(p);
    threshold(src, dst, 0.0, 255.0, ThresholdType::ToZeroInv, p);
    for (int c = 0; c < 8; ++c)
      EXPECT_TRUE(std::isnan(dst.at<float>(0, c))) << toString(p);
  }
}

TEST(Threshold, U8QuantizesThresholdByFloor) {
  Mat src(1, 4, U8C1);
  src.at<std::uint8_t>(0, 0) = 100;
  src.at<std::uint8_t>(0, 1) = 101;
  src.at<std::uint8_t>(0, 2) = 99;
  src.at<std::uint8_t>(0, 3) = 255;
  Mat dst;
  // thresh 100.7 floors to 100: pixel 100 is NOT above, 101 is.
  const double used = threshold(src, dst, 100.7, 255.0, ThresholdType::Binary);
  EXPECT_EQ(used, 100.0);
  EXPECT_EQ(dst.at<std::uint8_t>(0, 0), 0);
  EXPECT_EQ(dst.at<std::uint8_t>(0, 1), 255);
  EXPECT_EQ(dst.at<std::uint8_t>(0, 2), 0);
}

TEST(Threshold, DegenerateU8Thresholds) {
  Mat src = randomU8(8, 8, 11);
  Mat dst;
  threshold(src, dst, -1.0, 200.0, ThresholdType::Binary);
  EXPECT_EQ(countMismatches(dst, full(8, 8, U8C1, 200)), 0u);
  threshold(src, dst, 255.0, 200.0, ThresholdType::Binary);
  EXPECT_EQ(countMismatches(dst, zeros(8, 8, U8C1)), 0u);
  threshold(src, dst, 300.0, 200.0, ThresholdType::BinaryInv);
  EXPECT_EQ(countMismatches(dst, full(8, 8, U8C1, 200)), 0u);
  threshold(src, dst, 300.0, 200.0, ThresholdType::Trunc);
  EXPECT_EQ(countMismatches(dst, src), 0u);  // nothing above: copy
  threshold(src, dst, -5.0, 200.0, ThresholdType::ToZero);
  EXPECT_EQ(countMismatches(dst, src), 0u);  // everything above: copy
  threshold(src, dst, -5.0, 200.0, ThresholdType::ToZeroInv);
  EXPECT_EQ(countMismatches(dst, zeros(8, 8, U8C1)), 0u);
}

TEST(Threshold, S16ScalarPath) {
  Mat src(4, 9, S16C1);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 9; ++c)
      src.at<std::int16_t>(r, c) = static_cast<std::int16_t>((r * 9 + c) * 100 - 1500);
  Mat dst;
  threshold(src, dst, 0.0, 1000.0, ThresholdType::Binary);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 9; ++c)
      EXPECT_EQ(dst.at<std::int16_t>(r, c),
                src.at<std::int16_t>(r, c) > 0 ? 1000 : 0);
}

TEST(Threshold, MultiChannelElementwise) {
  Mat src(4, 4, U8C3);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 12; ++c)
      src.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(r * 40 + c * 5);
  Mat dst;
  threshold(src, dst, 60.0, 255.0, ThresholdType::Binary);
  ASSERT_EQ(dst.channels(), 3);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 12; ++c)
      EXPECT_EQ(dst.at<std::uint8_t>(r, c),
                src.at<std::uint8_t>(r, c) > 60 ? 255 : 0);
}

TEST(Threshold, RoiSourceNonContinuous) {
  Mat big = randomU8(32, 32, 13);
  Mat view = big.roi(Rect(3, 3, 17, 19));
  ASSERT_FALSE(view.isContinuous());
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat dst;
    threshold(view, dst, 128.0, 255.0, ThresholdType::Binary, p);
    for (int r = 0; r < view.rows(); ++r)
      for (int c = 0; c < view.cols(); ++c)
        ASSERT_EQ(dst.at<std::uint8_t>(r, c),
                  view.at<std::uint8_t>(r, c) > 128 ? 255 : 0)
            << toString(p);
  }
}

TEST(Threshold, InPlaceWorks) {
  Mat src = randomU8(16, 16, 17);
  Mat expect;
  threshold(src, expect, 90.0, 255.0, ThresholdType::Binary);
  Mat inplace = src;  // shares storage
  threshold(src, inplace, 90.0, 255.0, ThresholdType::Binary);
  EXPECT_EQ(countMismatches(expect, inplace), 0u);
}

TEST(Threshold, MaxvalSaturatesU8) {
  Mat src = randomU8(4, 4, 19);
  Mat dst;
  threshold(src, dst, 0.0, 400.0, ThresholdType::Binary);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      EXPECT_EQ(dst.at<std::uint8_t>(r, c),
                src.at<std::uint8_t>(r, c) > 0 ? 255 : 0);
}

TEST(Threshold, RejectsUnsupportedDepth) {
  Mat src(4, 4, F64C1), dst;
  EXPECT_THROW(threshold(src, dst, 0.5, 1.0, ThresholdType::Binary), Error);
  Mat empty;
  EXPECT_THROW(threshold(empty, dst, 0.5, 1.0, ThresholdType::Binary), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
