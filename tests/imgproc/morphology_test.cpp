// Morphology: erosion/dilation algebra, brute-force agreement, box filter.
#include "imgproc/morphology.hpp"

#include <gtest/gtest.h>

#include <random>

namespace simdcv::imgproc {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Neon};
}

Mat randomU8(int rows, int cols, unsigned seed) {
  Mat m(rows, cols, U8C1);
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  return m;
}

Mat bruteMorph(const Mat& src, Size k, bool isMin) {
  Mat out(src.rows(), src.cols(), U8C1);
  const int rx = k.width / 2, ry = k.height / 2;
  for (int y = 0; y < src.rows(); ++y)
    for (int x = 0; x < src.cols(); ++x) {
      int acc = isMin ? 255 : 0;
      for (int dy = -ry; dy <= ry; ++dy)
        for (int dx = -rx; dx <= rx; ++dx) {
          const int sy = borderInterpolate(y + dy, src.rows(), BorderType::Replicate);
          const int sx = borderInterpolate(x + dx, src.cols(), BorderType::Replicate);
          const int v = src.at<std::uint8_t>(sy, sx);
          acc = isMin ? std::min(acc, v) : std::max(acc, v);
        }
      out.at<std::uint8_t>(y, x) = static_cast<std::uint8_t>(acc);
    }
  return out;
}

TEST(Morphology, ErodeMatchesBruteForce) {
  const Mat src = randomU8(21, 37, 1);
  for (Size k : {Size{3, 3}, Size{5, 3}, Size{1, 7}}) {
    const Mat ref = bruteMorph(src, k, /*isMin=*/true);
    for (KernelPath p : paths()) {
      if (!pathAvailable(p)) continue;
      Mat got;
      erode(src, got, k, p);
      EXPECT_EQ(countMismatches(ref, got), 0u)
          << toString(p) << " " << k.width << "x" << k.height;
    }
  }
}

TEST(Morphology, DilateMatchesBruteForce) {
  const Mat src = randomU8(19, 43, 2);
  for (Size k : {Size{3, 3}, Size{3, 5}}) {
    const Mat ref = bruteMorph(src, k, /*isMin=*/false);
    for (KernelPath p : paths()) {
      if (!pathAvailable(p)) continue;
      Mat got;
      dilate(src, got, k, p);
      EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
    }
  }
}

TEST(Morphology, ErodeDilateDuality) {
  // erode(src) == 255 - dilate(255 - src)  (grayscale duality).
  const Mat src = randomU8(16, 29, 3);
  Mat inv(16, 29, U8C1);
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 29; ++c)
      inv.at<std::uint8_t>(r, c) =
          static_cast<std::uint8_t>(255 - src.at<std::uint8_t>(r, c));
  Mat eroded, dilatedInv;
  erode(src, eroded, {3, 3});
  dilate(inv, dilatedInv, {3, 3});
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 29; ++c)
      EXPECT_EQ(eroded.at<std::uint8_t>(r, c),
                255 - dilatedInv.at<std::uint8_t>(r, c));
}

TEST(Morphology, OrderingProperties) {
  const Mat src = randomU8(16, 16, 4);
  Mat er, di;
  erode(src, er, {3, 3});
  dilate(src, di, {3, 3});
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 16; ++c) {
      EXPECT_LE(er.at<std::uint8_t>(r, c), src.at<std::uint8_t>(r, c));
      EXPECT_GE(di.at<std::uint8_t>(r, c), src.at<std::uint8_t>(r, c));
    }
}

TEST(Morphology, OpeningRemovesSpecksClosingFillsHoles) {
  Mat specks = zeros(16, 16, U8C1);
  specks.at<std::uint8_t>(8, 8) = 255;  // isolated bright pixel
  Mat opened;
  morphOpen(specks, opened, {3, 3});
  EXPECT_EQ(countMismatches(opened, zeros(16, 16, U8C1)), 0u);

  Mat holes = full(16, 16, U8C1, 255);
  holes.at<std::uint8_t>(8, 8) = 0;  // isolated dark pixel
  Mat closed;
  morphClose(holes, closed, {3, 3});
  EXPECT_EQ(countMismatches(closed, full(16, 16, U8C1, 255)), 0u);
}

TEST(Morphology, IdentityKernelIsNoOp) {
  const Mat src = randomU8(8, 8, 5);
  Mat er, di;
  erode(src, er, {1, 1});
  dilate(src, di, {1, 1});
  EXPECT_EQ(countMismatches(src, er), 0u);
  EXPECT_EQ(countMismatches(src, di), 0u);
}

TEST(Morphology, Validation) {
  Mat src = randomU8(8, 8, 6), dst;
  EXPECT_THROW(erode(src, dst, {2, 3}), Error);
  EXPECT_THROW(dilate(src, dst, {3, 0}), Error);
  Mat f(4, 4, F32C1);
  EXPECT_THROW(erode(f, dst), Error);
}

TEST(BoxFilter, ConstantAndMeanProperties) {
  Mat flat = full(12, 12, U8C1, 80);
  Mat out;
  boxFilter(flat, out, {5, 5});
  EXPECT_EQ(countMismatches(flat, out), 0u);

  // Box of an impulse: uniform window weight 1/(kw*kh).
  Mat impulse = zeros(11, 11, F32C1);
  impulse.at<float>(5, 5) = 9.0f;
  boxFilter(impulse, out, {3, 3});
  for (int r = 4; r <= 6; ++r)
    for (int c = 4; c <= 6; ++c) EXPECT_NEAR(out.at<float>(r, c), 1.0f, 1e-5);
  EXPECT_NEAR(out.at<float>(3, 5), 0.0f, 1e-6);
}

TEST(BoxFilter, AllPathsBitExact) {
  const Mat src = randomU8(24, 31, 7);
  Mat ref;
  boxFilter(src, ref, {5, 5}, BorderType::Reflect101, KernelPath::Auto);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    boxFilter(src, got, {5, 5}, BorderType::Reflect101, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

}  // namespace
}  // namespace simdcv::imgproc
