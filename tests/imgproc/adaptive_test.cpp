// Adaptive threshold, Laplacian, LUT, CLAHE, bilateral filter.
#include "imgproc/adaptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "imgproc/filter.hpp"

namespace simdcv::imgproc {
namespace {

Mat randomU8(int rows, int cols, unsigned seed) {
  Mat m(rows, cols, U8C1);
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng());
  return m;
}

TEST(AdaptiveThreshold, HandlesIlluminationGradient) {
  // Text-like dark dots on a background whose brightness ramps 60..220:
  // a global threshold cannot separate both ends; the adaptive one can.
  Mat src(40, 120, U8C1);
  for (int r = 0; r < 40; ++r)
    for (int c = 0; c < 120; ++c)
      src.at<std::uint8_t>(r, c) =
          static_cast<std::uint8_t>(60 + (160 * c) / 119);
  // Dots at both the dark and bright end.
  for (int c : {10, 110}) {
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx)
        src.at<std::uint8_t>(20 + dy, c + dx) = static_cast<std::uint8_t>(
            src.at<std::uint8_t>(20 + dy, c + dx) - 50);
  }
  Mat bin;
  adaptiveThreshold(src, bin, 255, AdaptiveMethod::Mean,
                    ThresholdType::BinaryInv, 11, 10);
  EXPECT_EQ(bin.at<std::uint8_t>(20, 10), 255);   // dark-end dot found
  EXPECT_EQ(bin.at<std::uint8_t>(20, 110), 255);  // bright-end dot found
  EXPECT_EQ(bin.at<std::uint8_t>(5, 60), 0);      // plain background clean
}

TEST(AdaptiveThreshold, GaussianVariantAndPolarity) {
  const Mat src = randomU8(32, 32, 1);
  Mat bin, binInv;
  adaptiveThreshold(src, bin, 200, AdaptiveMethod::Gaussian,
                    ThresholdType::Binary, 9, 0);
  adaptiveThreshold(src, binInv, 200, AdaptiveMethod::Gaussian,
                    ThresholdType::BinaryInv, 9, 0);
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c) {
      const auto a = bin.at<std::uint8_t>(r, c);
      const auto b = binInv.at<std::uint8_t>(r, c);
      EXPECT_TRUE((a == 200 && b == 0) || (a == 0 && b == 200));
    }
}

TEST(AdaptiveThreshold, Validation) {
  Mat src = randomU8(8, 8, 2), dst;
  EXPECT_THROW(adaptiveThreshold(src, dst, 255, AdaptiveMethod::Mean,
                                 ThresholdType::Binary, 4, 0),
               Error);
  EXPECT_THROW(adaptiveThreshold(src, dst, 255, AdaptiveMethod::Mean,
                                 ThresholdType::Trunc, 5, 0),
               Error);
}

TEST(Laplacian, ZeroOnLinearRamp) {
  // The Laplacian of a plane is zero everywhere.
  Mat src(16, 16, F32C1);
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 16; ++c)
      src.at<float>(r, c) = 3.0f * c - 2.0f * r + 5.0f;
  for (int ksize : {1, 3, 5}) {
    Mat lap;
    Laplacian(src, lap, Depth::F32, ksize);
    for (int r = 4; r < 12; ++r)
      for (int c = 4; c < 12; ++c)
        EXPECT_NEAR(lap.at<float>(r, c), 0.0f, 1e-3) << ksize;
  }
}

TEST(Laplacian, ConstantOnQuadratic) {
  // f = x^2 + y^2 -> Laplacian = 4 (ksize 1 stencil computes it exactly).
  Mat src(16, 16, F32C1);
  for (int r = 0; r < 16; ++r)
    for (int c = 0; c < 16; ++c)
      src.at<float>(r, c) = static_cast<float>(c * c + r * r);
  Mat lap;
  Laplacian(src, lap, Depth::F32, 1);
  for (int r = 4; r < 12; ++r)
    for (int c = 4; c < 12; ++c) EXPECT_NEAR(lap.at<float>(r, c), 4.0f, 1e-3);
}

TEST(Laplacian, SignFlipsAcrossBlobBoundary) {
  Mat src = zeros(21, 21, U8C1);
  src.roi({8, 8, 5, 5}).setTo(200);  // bright block over cols/rows 8..12
  Mat lap;
  Laplacian(src, lap, Depth::S16, 3);
  EXPECT_EQ(lap.at<std::int16_t>(10, 10), 0);  // constant interior
  EXPECT_LT(lap.at<std::int16_t>(10, 12), 0);  // inside edge of bright block
  EXPECT_GT(lap.at<std::int16_t>(10, 13), 0);  // just outside
}

TEST(ApplyLut, IdentityAndInversion) {
  const Mat src = randomU8(9, 17, 3);
  std::array<std::uint8_t, 256> id{}, inv{};
  for (int i = 0; i < 256; ++i) {
    id[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    inv[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(255 - i);
  }
  Mat same, negd, back;
  applyLut(src, same, id);
  EXPECT_EQ(countMismatches(src, same), 0u);
  applyLut(src, negd, inv);
  applyLut(negd, back, inv);
  EXPECT_EQ(countMismatches(src, back), 0u);
  EXPECT_EQ(negd.at<std::uint8_t>(0, 0), 255 - src.at<std::uint8_t>(0, 0));
}

TEST(Clahe, RaisesLocalContrastWithoutGlobalBlowup) {
  // Low-contrast left half, high-contrast right half.
  Mat src(64, 64, U8C1);
  std::mt19937 rng(4);
  for (int r = 0; r < 64; ++r)
    for (int c = 0; c < 64; ++c) {
      const int span = c < 32 ? 16 : 200;
      src.at<std::uint8_t>(r, c) =
          static_cast<std::uint8_t>(120 + static_cast<int>(rng() % span) - span / 2);
    }
  Mat eq;
  clahe(src, eq, 4.0, 4, 4);
  auto localStddev = [](const Mat& m, Rect r) {
    double s = 0, s2 = 0;
    for (int y = r.y; y < r.y + r.height; ++y)
      for (int x = r.x; x < r.x + r.width; ++x) {
        const double v = m.at<std::uint8_t>(y, x);
        s += v;
        s2 += v * v;
      }
    const double n = r.width * static_cast<double>(r.height);
    return std::sqrt(std::max(0.0, s2 / n - (s / n) * (s / n)));
  };
  // Contrast on the flat half must increase.
  EXPECT_GT(localStddev(eq, {4, 4, 24, 56}), localStddev(src, {4, 4, 24, 56}) * 1.5);
}

TEST(Clahe, ConstantImageStaysNearlyConstant) {
  Mat src = full(32, 32, U8C1, 90);
  Mat eq;
  clahe(src, eq, 2.0, 4, 4);
  // Clipping + redistribution maps a single-bin histogram near 255*(cdf=1);
  // the essential property: output is still constant (no tile seams).
  const auto v = eq.at<std::uint8_t>(0, 0);
  EXPECT_EQ(countMismatches(eq, full(32, 32, U8C1, v)), 0u);
}

TEST(Clahe, Validation) {
  Mat src = randomU8(16, 16, 5), dst;
  EXPECT_THROW(clahe(src, dst, 0.0), Error);
  EXPECT_THROW(clahe(src, dst, 2.0, 0, 4), Error);
  Mat f(4, 4, F32C1);
  EXPECT_THROW(clahe(f, dst), Error);
}

TEST(Bilateral, PreservesStepEdgeWhileSmoothingNoise) {
  // Noisy two-level image: bilateral must flatten each side without
  // blurring across the step.
  Mat src(32, 32, U8C1);
  std::mt19937 rng(6);
  for (int r = 0; r < 32; ++r)
    for (int c = 0; c < 32; ++c) {
      const int base = c < 16 ? 60 : 190;
      src.at<std::uint8_t>(r, c) =
          static_cast<std::uint8_t>(base + static_cast<int>(rng() % 11) - 5);
    }
  Mat out;
  bilateralFilter(src, out, 7, 25.0, 3.0);
  // Edge stays sharp: pixels adjacent to the boundary remain near their
  // side's level.
  for (int r = 4; r < 28; ++r) {
    EXPECT_LT(out.at<std::uint8_t>(r, 15), 90);
    EXPECT_GT(out.at<std::uint8_t>(r, 16), 160);
  }
  // Noise shrinks within each side.
  auto sideVar = [&](const Mat& m, int c0, int c1) {
    double s = 0, s2 = 0;
    int n = 0;
    for (int r = 2; r < 30; ++r)
      for (int c = c0; c < c1; ++c) {
        const double v = m.at<std::uint8_t>(r, c);
        s += v;
        s2 += v * v;
        ++n;
      }
    return s2 / n - (s / n) * (s / n);
  };
  EXPECT_LT(sideVar(out, 2, 13), sideVar(src, 2, 13) * 0.5);
}

TEST(Bilateral, LargeSigmaColorApproachesGaussian) {
  // With sigmaColor >> 255, the range kernel is ~1 and bilateral reduces to
  // a plain spatial Gaussian.
  const Mat src = randomU8(24, 24, 7);
  Mat bil, gau;
  bilateralFilter(src, bil, 5, 1e6, 1.2);
  GaussianBlur(src, gau, {5, 5}, 1.2, 1.2, BorderType::Reflect101);
  EXPECT_LE(maxAbsDiff(bil, gau), 2.0);  // quantization differences only
}

TEST(Bilateral, Validation) {
  Mat src = randomU8(8, 8, 8), dst;
  EXPECT_THROW(bilateralFilter(src, dst, 4, 10, 10), Error);
  EXPECT_THROW(bilateralFilter(src, dst, 5, 0, 10), Error);
  Mat c3(4, 4, U8C3);
  EXPECT_THROW(bilateralFilter(c3, dst, 5, 10, 10), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
