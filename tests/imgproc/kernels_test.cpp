// Kernel generators: Gaussian normalization/symmetry, Sobel/Scharr taps,
// and border index mapping.
#include "imgproc/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "imgproc/border.hpp"

namespace simdcv::imgproc {
namespace {

TEST(GaussianKernel, Sums9ToOneAndSymmetric) {
  for (int ksize : {3, 5, 7, 9, 13}) {
    for (double sigma : {0.5, 1.0, 2.0, 5.0}) {
      const auto k = getGaussianKernel(ksize, sigma);
      ASSERT_EQ(static_cast<int>(k.size()), ksize);
      const double sum = std::accumulate(k.begin(), k.end(), 0.0);
      EXPECT_NEAR(sum, 1.0, 1e-6) << ksize << "/" << sigma;
      for (int i = 0; i < ksize / 2; ++i)
        EXPECT_FLOAT_EQ(k[static_cast<std::size_t>(i)],
                        k[static_cast<std::size_t>(ksize - 1 - i)]);
      // Peak at the center, monotone decay outward.
      for (int i = 0; i < ksize / 2; ++i)
        EXPECT_LT(k[static_cast<std::size_t>(i)],
                  k[static_cast<std::size_t>(i + 1)]);
    }
  }
}

TEST(GaussianKernel, SigmaDerivedFromKsizeWhenNonPositive) {
  const auto a = getGaussianKernel(7, 0.0);
  const auto b = getGaussianKernel(7, 0.3 * ((7 - 1) * 0.5 - 1) + 0.8);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(GaussianKernel, WiderSigmaIsFlatter) {
  const auto narrow = getGaussianKernel(7, 0.8);
  const auto wide = getGaussianKernel(7, 3.0);
  EXPECT_GT(narrow[3], wide[3]);  // center
  EXPECT_LT(narrow[0], wide[0]);  // tail
}

TEST(GaussianKernel, RejectsEvenSize) {
  EXPECT_THROW(getGaussianKernel(4, 1.0), Error);
  EXPECT_THROW(getGaussianKernel(0, 1.0), Error);
}

TEST(GaussianKernel, KsizeFromSigmaIsOddAndGrows) {
  EXPECT_EQ(gaussianKsizeFromSigma(1.0) % 2, 1);
  EXPECT_GE(gaussianKsizeFromSigma(1.0), 3);
  EXPECT_GT(gaussianKsizeFromSigma(3.0), gaussianKsizeFromSigma(1.0));
  EXPECT_THROW(gaussianKsizeFromSigma(0.0), Error);
}

TEST(DerivKernel, Sobel3Taps) {
  const auto smooth = getDerivKernel(0, 3);
  EXPECT_EQ(smooth, (std::vector<float>{1, 2, 1}));
  const auto deriv = getDerivKernel(1, 3);
  EXPECT_EQ(deriv, (std::vector<float>{-1, 0, 1}));
  const auto second = getDerivKernel(2, 3);
  EXPECT_EQ(second, (std::vector<float>{1, -2, 1}));
}

TEST(DerivKernel, Sobel5Taps) {
  EXPECT_EQ(getDerivKernel(0, 5), (std::vector<float>{1, 4, 6, 4, 1}));
  EXPECT_EQ(getDerivKernel(1, 5), (std::vector<float>{-1, -2, 0, 2, 1}));
}

TEST(DerivKernel, DerivativeSumsToZeroSmoothingToPowerOfTwo) {
  for (int ksize : {3, 5, 7}) {
    const auto d = getDerivKernel(1, ksize);
    EXPECT_NEAR(std::accumulate(d.begin(), d.end(), 0.0), 0.0, 1e-9);
    const auto s = getDerivKernel(0, ksize);
    EXPECT_NEAR(std::accumulate(s.begin(), s.end(), 0.0),
                std::pow(2.0, ksize - 1), 1e-9);
  }
}

TEST(DerivKernel, NormalizedSmoothingSumsToOne) {
  const auto s = getDerivKernel(0, 7, /*normalize=*/true);
  EXPECT_NEAR(std::accumulate(s.begin(), s.end(), 0.0), 1.0, 1e-6);
}

TEST(DerivKernel, GetDerivKernelsPairs) {
  std::vector<float> kx, ky;
  getDerivKernels(kx, ky, 1, 0, 3);
  EXPECT_EQ(kx, (std::vector<float>{-1, 0, 1}));
  EXPECT_EQ(ky, (std::vector<float>{1, 2, 1}));
  getDerivKernels(kx, ky, 0, 1, 3);
  EXPECT_EQ(kx, (std::vector<float>{1, 2, 1}));
  EXPECT_EQ(ky, (std::vector<float>{-1, 0, 1}));
}

TEST(ScharrKernel, Taps) {
  EXPECT_EQ(getScharrKernel(1), (std::vector<float>{-1, 0, 1}));
  EXPECT_EQ(getScharrKernel(0), (std::vector<float>{3, 10, 3}));
  const auto n = getScharrKernel(0, true);
  EXPECT_NEAR(n[0] + n[1] + n[2], 1.0, 1e-6);
  EXPECT_THROW(getScharrKernel(2), Error);
}

// ---- border mapping ----------------------------------------------------------
TEST(Border, InRangeIsIdentity) {
  for (auto b : {BorderType::Replicate, BorderType::Reflect,
                 BorderType::Reflect101, BorderType::Wrap}) {
    for (int p = 0; p < 10; ++p) EXPECT_EQ(borderInterpolate(p, 10, b), p);
  }
}

TEST(Border, Replicate) {
  EXPECT_EQ(borderInterpolate(-1, 5, BorderType::Replicate), 0);
  EXPECT_EQ(borderInterpolate(-99, 5, BorderType::Replicate), 0);
  EXPECT_EQ(borderInterpolate(5, 5, BorderType::Replicate), 4);
  EXPECT_EQ(borderInterpolate(99, 5, BorderType::Replicate), 4);
}

TEST(Border, Reflect) {
  // fedcba|abcdefgh|hgfedc
  EXPECT_EQ(borderInterpolate(-1, 8, BorderType::Reflect), 0);
  EXPECT_EQ(borderInterpolate(-2, 8, BorderType::Reflect), 1);
  EXPECT_EQ(borderInterpolate(8, 8, BorderType::Reflect), 7);
  EXPECT_EQ(borderInterpolate(9, 8, BorderType::Reflect), 6);
}

TEST(Border, Reflect101) {
  // gfedcb|abcdefgh|gfedcb
  EXPECT_EQ(borderInterpolate(-1, 8, BorderType::Reflect101), 1);
  EXPECT_EQ(borderInterpolate(-2, 8, BorderType::Reflect101), 2);
  EXPECT_EQ(borderInterpolate(8, 8, BorderType::Reflect101), 6);
  EXPECT_EQ(borderInterpolate(9, 8, BorderType::Reflect101), 5);
}

TEST(Border, Wrap) {
  EXPECT_EQ(borderInterpolate(-1, 8, BorderType::Wrap), 7);
  EXPECT_EQ(borderInterpolate(-8, 8, BorderType::Wrap), 0);
  EXPECT_EQ(borderInterpolate(8, 8, BorderType::Wrap), 0);
  EXPECT_EQ(borderInterpolate(17, 8, BorderType::Wrap), 1);
}

TEST(Border, ConstantSignalsMinusOne) {
  EXPECT_EQ(borderInterpolate(-1, 8, BorderType::Constant), -1);
  EXPECT_EQ(borderInterpolate(8, 8, BorderType::Constant), -1);
  EXPECT_EQ(borderInterpolate(3, 8, BorderType::Constant), 3);
}

TEST(Border, SinglePixelImage) {
  for (auto b : {BorderType::Replicate, BorderType::Reflect,
                 BorderType::Reflect101}) {
    EXPECT_EQ(borderInterpolate(-3, 1, b), 0) << toString(b);
    EXPECT_EQ(borderInterpolate(5, 1, b), 0) << toString(b);
  }
}

TEST(Border, PropertyAlwaysInRange) {
  for (auto b : {BorderType::Replicate, BorderType::Reflect,
                 BorderType::Reflect101, BorderType::Wrap}) {
    for (int len : {1, 2, 3, 7, 10}) {
      for (int p = -25; p <= 25; ++p) {
        const int m = borderInterpolate(p, len, b);
        EXPECT_GE(m, 0) << toString(b) << " len=" << len << " p=" << p;
        EXPECT_LT(m, len) << toString(b) << " len=" << len << " p=" << p;
      }
    }
  }
}

}  // namespace
}  // namespace simdcv::imgproc
