// Separable filter engine: worker-level checks, equivalence with the naive
// 2-D reference, border modes, path agreement, Gaussian properties.
#include "imgproc/filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "imgproc/kernels.hpp"

namespace simdcv::imgproc {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Avx2, KernelPath::Neon};
}

Mat randomU8(int rows, int cols, unsigned seed) {
  Mat m(rows, cols, U8C1);
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng() & 0xff);
  return m;
}

Mat randomF32(int rows, int cols, unsigned seed, float lo = -10.f, float hi = 10.f) {
  Mat m(rows, cols, F32C1);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) m.at<float>(r, c) = dist(rng);
  return m;
}

// ---- worker level -------------------------------------------------------------
TEST(RowConvWorkers, AllPathsMatchReference) {
  const int width = 37;
  const std::vector<float> k = {0.25f, 0.5f, 0.25f};
  std::vector<float> padded(width + 2);
  std::mt19937 rng(2);
  std::uniform_real_distribution<float> dist(-5.f, 5.f);
  for (auto& v : padded) v = dist(rng);
  std::vector<float> want(width);
  for (int i = 0; i < width; ++i)
    want[static_cast<std::size_t>(i)] =
        k[0] * padded[i] + k[1] * padded[i + 1] + k[2] * padded[i + 2];
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    std::vector<float> got(width, -1);
    detail::rowConvFor(p)(padded.data(), got.data(), width, k.data(),
                          static_cast<int>(k.size()));
    for (int i = 0; i < width; ++i)
      ASSERT_EQ(got[static_cast<std::size_t>(i)], want[static_cast<std::size_t>(i)])
          << toString(p) << " i=" << i;
  }
}

TEST(ColConvWorkers, AllPathsMatchReference) {
  const int width = 29;
  const std::vector<float> k = {0.1f, 0.2f, 0.4f, 0.2f, 0.1f};
  std::vector<std::vector<float>> rows(5, std::vector<float>(width));
  std::mt19937 rng(4);
  std::uniform_real_distribution<float> dist(-3.f, 3.f);
  for (auto& row : rows)
    for (auto& v : row) v = dist(rng);
  std::vector<const float*> taps;
  for (auto& row : rows) taps.push_back(row.data());
  std::vector<float> want(width);
  for (int i = 0; i < width; ++i) {
    float acc = 0;
    for (int r = 0; r < 5; ++r) acc += k[static_cast<std::size_t>(r)] * rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
    want[static_cast<std::size_t>(i)] = acc;
  }
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    std::vector<float> got(width, -1);
    detail::colConvFor(p)(taps.data(), got.data(), width, k.data(), 5);
    for (int i = 0; i < width; ++i)
      ASSERT_EQ(got[static_cast<std::size_t>(i)], want[static_cast<std::size_t>(i)])
          << toString(p) << " i=" << i;
  }
}

// ---- engine vs naive 2-D reference ---------------------------------------------
TEST(SepFilter2D, MatchesFilter2DOuterProduct) {
  const Mat src = randomU8(21, 34, 7);
  const std::vector<float> kx = {0.25f, 0.5f, 0.25f};
  const std::vector<float> ky = {0.1f, 0.3f, 0.6f};  // asymmetric on purpose
  std::vector<float> k2d;
  for (float y : ky)
    for (float x : kx) k2d.push_back(y * x);
  for (auto border : {BorderType::Replicate, BorderType::Reflect,
                      BorderType::Reflect101, BorderType::Wrap}) {
    Mat sep, ref;
    sepFilter2D(src, sep, Depth::F32, kx, ky, border);
    filter2D(src, ref, Depth::F32, k2d, 3, 3, border);
    EXPECT_LT(maxAbsDiff(sep, ref), 1e-3) << toString(border);
  }
}

TEST(SepFilter2D, ConstantBorderMatchesNaive) {
  const Mat src = randomU8(12, 15, 8);
  const std::vector<float> kx = {1.f, 2.f, 1.f};
  const std::vector<float> ky = {-1.f, 0.f, 1.f};
  std::vector<float> k2d;
  for (float y : ky)
    for (float x : kx) k2d.push_back(y * x);
  for (double bv : {0.0, 50.0}) {
    Mat sep, ref;
    sepFilter2D(src, sep, Depth::F32, kx, ky, BorderType::Constant, bv);
    filter2D(src, ref, Depth::F32, k2d, 3, 3, BorderType::Constant, bv);
    EXPECT_LT(maxAbsDiff(sep, ref), 1e-2) << "bv=" << bv;
  }
}

TEST(SepFilter2D, AllPathsBitExact) {
  const Mat src = randomU8(33, 47, 10);
  const auto kx = getGaussianKernel(7, 1.0);
  const auto ky = getGaussianKernel(5, 2.0);
  Mat ref;
  sepFilter2D(src, ref, Depth::U8, kx, ky, BorderType::Reflect101, 0.0,
              KernelPath::Auto);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    sepFilter2D(src, got, Depth::U8, kx, ky, BorderType::Reflect101, 0.0, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

TEST(SepFilter2D, F32SourceAllPathsBitExact) {
  const Mat src = randomF32(19, 23, 11);
  const auto kx = getGaussianKernel(3, 0.8);
  const auto ky = getGaussianKernel(3, 0.8);
  Mat ref;
  sepFilter2D(src, ref, Depth::F32, kx, ky, BorderType::Replicate, 0.0,
              KernelPath::Auto);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    sepFilter2D(src, got, Depth::F32, kx, ky, BorderType::Replicate, 0.0, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

TEST(SepFilter2D, IdentityKernelIsNoOp) {
  const Mat src = randomU8(9, 9, 12);
  Mat dst;
  sepFilter2D(src, dst, Depth::U8, {1.0f}, {1.0f});
  EXPECT_EQ(countMismatches(src, dst), 0u);
}

TEST(SepFilter2D, TinyImagesAndWideKernels) {
  // Kernel wider than the image exercises heavy border mapping.
  for (auto border : {BorderType::Replicate, BorderType::Reflect101,
                      BorderType::Reflect}) {
    const Mat src = randomU8(3, 4, 13);
    const auto k = getGaussianKernel(9, 2.0);
    std::vector<float> k2d;
    for (float y : k)
      for (float x : k) k2d.push_back(y * x);
    Mat sep, ref;
    sepFilter2D(src, sep, Depth::F32, k, k, border);
    filter2D(src, ref, Depth::F32, k2d, 9, 9, border);
    EXPECT_LT(maxAbsDiff(sep, ref), 1e-3) << toString(border);
  }
}

TEST(SepFilter2D, OneRowAndOneColumnImages) {
  const Mat row = randomU8(1, 40, 14);
  const Mat col = randomU8(40, 1, 15);
  const auto k = getGaussianKernel(5, 1.0);
  Mat a, b;
  sepFilter2D(row, a, Depth::U8, k, k);
  sepFilter2D(col, b, Depth::U8, k, k);
  EXPECT_EQ(a.size(), row.size());
  EXPECT_EQ(b.size(), col.size());
}

TEST(SepFilter2D, S16Output) {
  const Mat src = randomU8(11, 13, 16);
  Mat dst;
  sepFilter2D(src, dst, Depth::S16, {-1.f, 0.f, 1.f}, {1.f, 2.f, 1.f});
  EXPECT_EQ(dst.depth(), Depth::S16);
  Mat ref;
  std::vector<float> k2d;
  for (float y : std::vector<float>{1, 2, 1})
    for (float x : std::vector<float>{-1, 0, 1}) k2d.push_back(y * x);
  filter2D(src, ref, Depth::S16, k2d, 3, 3);
  EXPECT_EQ(countMismatches(ref, dst), 0u);
}

TEST(SepFilter2D, RejectsBadInput) {
  Mat src = randomU8(8, 8, 17), dst;
  EXPECT_THROW(sepFilter2D(src, dst, Depth::U8, {1.f, 1.f}, {1.f}), Error);
  EXPECT_THROW(sepFilter2D(src, dst, Depth::U8, {}, {1.f}), Error);
  Mat c3(4, 4, U8C3);
  EXPECT_THROW(sepFilter2D(c3, dst, Depth::U8, {1.f}, {1.f}), Error);
  Mat empty;
  EXPECT_THROW(sepFilter2D(empty, dst, Depth::U8, {1.f}, {1.f}), Error);
}

// ---- GaussianBlur --------------------------------------------------------------
TEST(GaussianBlur, PreservesConstantImage) {
  Mat src = full(16, 16, U8C1, 77);
  Mat dst;
  GaussianBlur(src, dst, {7, 7}, 1.0);
  EXPECT_EQ(countMismatches(src, dst), 0u);
}

TEST(GaussianBlur, PreservesMeanApproximately) {
  const Mat src = randomU8(64, 64, 18);
  Mat dst;
  GaussianBlur(src, dst, {7, 7}, 1.5);
  auto mean = [](const Mat& m) {
    double s = 0;
    for (int r = 0; r < m.rows(); ++r)
      for (int c = 0; c < m.cols(); ++c) s += m.at<std::uint8_t>(r, c);
    return s / static_cast<double>(m.total());
  };
  EXPECT_NEAR(mean(src), mean(dst), 1.0);
}

TEST(GaussianBlur, ReducesVariance) {
  const Mat src = randomU8(64, 64, 19);
  Mat dst;
  GaussianBlur(src, dst, {7, 7}, 1.0);
  auto variance = [](const Mat& m) {
    double s = 0, s2 = 0;
    for (int r = 0; r < m.rows(); ++r)
      for (int c = 0; c < m.cols(); ++c) {
        const double v = m.at<std::uint8_t>(r, c);
        s += v;
        s2 += v * v;
      }
    const double n = static_cast<double>(m.total());
    return s2 / n - (s / n) * (s / n);
  };
  EXPECT_LT(variance(dst), variance(src) * 0.5);
}

TEST(GaussianBlur, AnisotropicBlursAxesIndependently) {
  // A single bright pixel blurred anisotropically must spread further along
  // the axis with larger sigma.
  Mat src = zeros(31, 31, F32C1);
  src.at<float>(15, 15) = 1000.0f;
  Mat dst;
  GaussianBlur(src, dst, {15, 15}, 3.0, 1.0);  // sigmaX=3 > sigmaY=1
  EXPECT_GT(dst.at<float>(15, 15 + 5), dst.at<float>(15 + 5, 15) * 2);
}

TEST(GaussianBlur, KsizeDerivedFromSigma) {
  const Mat src = randomU8(16, 16, 20);
  Mat a, b;
  GaussianBlur(src, a, {0, 0}, 1.0);
  GaussianBlur(src, b, {gaussianKsizeFromSigma(1.0), gaussianKsizeFromSigma(1.0)}, 1.0);
  EXPECT_EQ(countMismatches(a, b), 0u);
}

TEST(GaussianBlur, PathsAgreeOnPaperConfig) {
  // The paper's benchmark-3 configuration: sigma = 1 anisotropic filter.
  const Mat src = randomU8(48, 77, 21);
  Mat ref;
  GaussianBlur(src, ref, {7, 7}, 1.0, 1.0, BorderType::Reflect101,
               KernelPath::Auto);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    GaussianBlur(src, got, {7, 7}, 1.0, 1.0, BorderType::Reflect101, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
}

}  // namespace
}  // namespace simdcv::imgproc
