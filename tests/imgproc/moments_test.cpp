// Moments and Hu invariants: analytic values and invariance properties.
#include "imgproc/moments.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "imgproc/geometry.hpp"

namespace simdcv::imgproc {
namespace {

Mat rectShape(int rows, int cols, Rect r) {
  Mat m = zeros(rows, cols, U8C1);
  m.roi(r).setTo(255);
  return m;
}

TEST(Moments, CentroidOfRectangle) {
  // Rectangle spanning cols [10, 20), rows [5, 11): centroid (14.5, 7.5).
  const Mat img = rectShape(32, 32, {10, 5, 10, 6});
  const Moments m = moments(img);
  EXPECT_DOUBLE_EQ(m.m00, 255.0 * 10 * 6);
  EXPECT_DOUBLE_EQ(m.centroidX(), 14.5);
  EXPECT_DOUBLE_EQ(m.centroidY(), 7.5);
}

TEST(Moments, CentralMomentsOfUniformRectangle) {
  // For a uniform a x b rectangle: mu20/m00 = (a^2-1)/12 (discrete),
  // mu11 = 0, odd central moments = 0 by symmetry.
  const int a = 11, b = 7;  // width, height
  const Mat img = rectShape(32, 32, {4, 6, a, b});
  const Moments m = moments(img);
  EXPECT_NEAR(m.mu20 / m.m00, (a * a - 1) / 12.0, 1e-9);
  EXPECT_NEAR(m.mu02 / m.m00, (b * b - 1) / 12.0, 1e-9);
  EXPECT_NEAR(m.mu11, 0.0, 1e-6);
  EXPECT_NEAR(m.mu30, 0.0, 1e-6);
  EXPECT_NEAR(m.mu03, 0.0, 1e-6);
}

TEST(Moments, CentralMomentsTranslationInvariant) {
  const Mat a = rectShape(64, 64, {8, 10, 12, 9});
  const Mat b = rectShape(64, 64, {30, 27, 12, 9});
  const Moments ma = moments(a);
  const Moments mb = moments(b);
  EXPECT_NEAR(ma.mu20, mb.mu20, 1e-6);
  EXPECT_NEAR(ma.mu11, mb.mu11, 1e-6);
  EXPECT_NEAR(ma.mu02, mb.mu02, 1e-6);
  EXPECT_NEAR(ma.mu30, mb.mu30, 1e-5);
  EXPECT_NEAR(ma.mu03, mb.mu03, 1e-5);
}

TEST(Moments, NormalizedMomentsScaleInvariant) {
  // Same aspect shape at 1x and 2x scale: nu_pq match closely.
  const Mat small = rectShape(64, 64, {10, 10, 8, 14});
  const Mat big = rectShape(128, 128, {20, 20, 16, 28});
  const Moments ms = moments(small);
  const Moments mb = moments(big);
  EXPECT_NEAR(ms.nu20, mb.nu20, 5e-4);
  EXPECT_NEAR(ms.nu02, mb.nu02, 5e-4);
  EXPECT_NEAR(ms.nu11, mb.nu11, 5e-4);
}

TEST(Moments, ZeroImage) {
  const Moments m = moments(zeros(8, 8, U8C1));
  EXPECT_EQ(m.m00, 0.0);
  EXPECT_EQ(m.centroidX(), 0.0);
  EXPECT_EQ(huMoments(m)[0], 0.0);
}

TEST(Moments, F32MatchesU8UpToScale) {
  Mat u8 = rectShape(24, 24, {5, 7, 9, 6});
  Mat f32(24, 24, F32C1);
  for (int r = 0; r < 24; ++r)
    for (int c = 0; c < 24; ++c)
      f32.at<float>(r, c) = u8.at<std::uint8_t>(r, c) / 255.0f;
  const Moments mu = moments(u8);
  const Moments mf = moments(f32);
  EXPECT_NEAR(mu.m00 / 255.0, mf.m00, 1e-6);
  EXPECT_NEAR(mu.centroidX(), mf.centroidX(), 1e-9);
  // nu scales as 1/k under intensity scaling by k (mu ~ k, m00^2 ~ k^2).
  EXPECT_NEAR(mu.nu20 * 255.0, mf.nu20, 1e-9);
}

TEST(HuMoments, RotationInvariance) {
  // An L-shaped blob rotated by 90 degrees keeps its Hu invariants.
  Mat shape = zeros(64, 64, U8C1);
  shape.roi({20, 20, 20, 8}).setTo(255);
  shape.roi({20, 20, 8, 24}).setTo(255);
  Mat rotated;
  rotate(shape, rotated, Rotation::Cw90);
  const auto ha = huMoments(moments(shape));
  const auto hb = huMoments(moments(rotated));
  for (int i = 0; i < 6; ++i) {
    const double scale = std::max({std::abs(ha[static_cast<std::size_t>(i)]),
                                   std::abs(hb[static_cast<std::size_t>(i)]),
                                   1e-12});
    EXPECT_NEAR(ha[static_cast<std::size_t>(i)] / scale,
                hb[static_cast<std::size_t>(i)] / scale, 1e-6)
        << "h" << i + 1;
  }
  // h7 flips sign under reflection but not rotation.
  EXPECT_NEAR(ha[6], hb[6], std::abs(ha[6]) * 1e-6 + 1e-18);
}

TEST(HuMoments, ReflectionFlipsH7Sign) {
  // A strongly chiral shape (L plus an off-diagonal nub) so h7 is far from
  // the fp-noise floor.
  Mat shape = zeros(64, 64, U8C1);
  shape.roi({20, 20, 20, 8}).setTo(255);
  shape.roi({20, 20, 8, 24}).setTo(255);
  shape.roi({34, 36, 10, 6}).setTo(255);
  Mat mirrored;
  flip(shape, mirrored, FlipAxis::Horizontal);
  const auto ha = huMoments(moments(shape));
  const auto hb = huMoments(moments(mirrored));
  // h7 is a 4th-order product of ~1e-5 normalized moments, so its natural
  // magnitude here is ~1e-20; the fp noise floor is ~1e-16 of the largest
  // term (~1e-18), i.e. ~1e-34. 1e-22 cleanly separates signal from noise.
  ASSERT_GT(std::abs(ha[6]), 1e-22);
  EXPECT_NEAR(ha[6], -hb[6], std::abs(ha[6]) * 1e-6);
  EXPECT_NEAR(ha[0], hb[0], std::abs(ha[0]) * 1e-9);
}

TEST(HuMoments, DistinguishesShapes) {
  const Mat square = rectShape(64, 64, {20, 20, 16, 16});
  const Mat bar = rectShape(64, 64, {10, 28, 44, 5});
  const auto hs = huMoments(moments(square));
  const auto hb = huMoments(moments(bar));
  EXPECT_GT(std::abs(hs[0] - hb[0]), 1e-3);  // h1 separates them
}

TEST(Moments, Validation) {
  Mat s16(4, 4, S16C1);
  EXPECT_THROW(moments(s16), Error);
  Mat empty;
  EXPECT_THROW(moments(empty), Error);
}

}  // namespace
}  // namespace simdcv::imgproc
