// BoundedQueue edge cases: ring wraparound at capacity 1, FIFO across wrap,
// full/closed admission, blocking push/pop wakeups, drain semantics, and an
// MPMC stress run (the ThreadSanitizer target of the `serve` label).
#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/queue.hpp"

namespace simdcv::serve {
namespace {

TEST(BoundedQueue, CapacityZeroThrows) {
  // No silent clamp to 1: a zero capacity is a caller bug and must throw
  // (the old ctor promoted it to 1 before validation could see it).
  EXPECT_THROW(BoundedQueue<int> q(0), simdcv::Error);
}

TEST(BoundedQueue, Capacity1Wraparound) {
  BoundedQueue<int> q(1);
  EXPECT_EQ(q.capacity(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.tryPush(int(i)), PushResult::Ok) << i;
    EXPECT_EQ(q.tryPush(int(i)), PushResult::Full) << i;  // ring is full
    EXPECT_EQ(q.size(), 1u);
    int out = -1;
    EXPECT_TRUE(q.tryPop(out));
    EXPECT_EQ(out, i);
    EXPECT_EQ(q.size(), 0u);
  }
  int out = -1;
  EXPECT_FALSE(q.tryPop(out));
}

TEST(BoundedQueue, FifoOrderAcrossWrap) {
  BoundedQueue<int> q(3);
  int next_push = 0, next_pop = 0;
  // Interleave so head_ walks around the ring several times: +2/-2 per round
  // advances the head two slots of three, wrapping every other round.
  for (int round = 0; round < 10; ++round) {
    ASSERT_EQ(q.tryPush(int(next_push)), PushResult::Ok);
    ++next_push;
    ASSERT_EQ(q.tryPush(int(next_push)), PushResult::Ok);
    ++next_push;
    int out = -1;
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(out, next_pop++);
    ASSERT_TRUE(q.tryPop(out));
    EXPECT_EQ(out, next_pop++);
  }
  int out = -1;
  while (q.tryPop(out)) EXPECT_EQ(out, next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(BoundedQueue, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  ASSERT_EQ(q.tryPush(std::make_unique<int>(7)), PushResult::Ok);
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 7);
}

TEST(BoundedQueue, CloseRejectsSubmissions) {
  BoundedQueue<int> q(2);
  ASSERT_EQ(q.tryPush(1), PushResult::Ok);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.tryPush(2), PushResult::Closed);
  EXPECT_EQ(q.push(3), PushResult::Closed);
  // Already-admitted items still drain.
  int out = -1;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(q.pop(out));  // closed and empty
  q.close();                 // idempotent
}

TEST(BoundedQueue, BlockingPushUnblocksOnPop) {
  BoundedQueue<int> q(1);
  ASSERT_EQ(q.tryPush(1), PushResult::Ok);
  std::atomic_bool pushed{false};
  std::thread t([&] {
    EXPECT_EQ(q.push(2), PushResult::Ok);  // blocks until the pop below
    pushed.store(true);
  });
  int out = -1;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueue, BlockingPopUnblocksOnPush) {
  BoundedQueue<int> q(1);
  std::thread t([&] {
    int out = -1;
    EXPECT_TRUE(q.pop(out));  // blocks until the push below
    EXPECT_EQ(out, 42);
  });
  ASSERT_EQ(q.push(42), PushResult::Ok);
  t.join();
}

TEST(BoundedQueue, CloseWakesBlockedPush) {
  BoundedQueue<int> q(1);
  ASSERT_EQ(q.tryPush(1), PushResult::Ok);
  std::thread t([&] { EXPECT_EQ(q.push(2), PushResult::Closed); });
  q.close();
  t.join();
  EXPECT_EQ(q.size(), 1u);  // the blocked item was never admitted
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(1);
  std::thread t([&] {
    int out = -1;
    EXPECT_FALSE(q.pop(out));
  });
  q.close();
  t.join();
}

TEST(BoundedQueue, DrainNowReturnsFifoLeftovers) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 3; ++i) ASSERT_EQ(q.tryPush(int(i)), PushResult::Ok);
  const std::vector<int> got = q.drainNow();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.drainNow().empty());
}

TEST(BoundedQueue, MpmcStress) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);

  std::mutex got_mu;
  std::vector<int> got;
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int v = -1;
      while (q.pop(v)) {
        std::lock_guard<std::mutex> lk(got_mu);
        got.push_back(v);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_EQ(q.push(p * kPerProducer + i), PushResult::Ok);
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : threads) t.join();

  ASSERT_EQ(got.size(), std::size_t(kProducers) * kPerProducer);
  std::sort(got.begin(), got.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i)
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i);  // every item exactly once
}

}  // namespace
}  // namespace simdcv::serve
