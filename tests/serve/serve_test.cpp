// serve::Engine semantics: preset registry, bit-identical outputs vs direct
// (unqueued) kernel calls, admission policy (reject-on-full, backpressure,
// reject-after-shutdown), deadline drops, drain-vs-abort shutdown with
// requests in flight, and a many-clients concurrency run for TSan.
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "simdcv.hpp"

namespace simdcv::serve {
namespace {

Mat testImage(int w = 160, int h = 120, std::uint32_t seed = 7) {
  return bench::makeScene(bench::Scene::Checker, {w, h}, seed);
}

// A pipeline the test can hold open: the worker blocks inside run() until
// release(). Lets tests pin a worker deterministically while they fill the
// ingress ring, expire deadlines, or shut down.
class Gate {
 public:
  PipelineFn pipeline() {
    return [this](const Mat& src, Mat& dst, KernelPath) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        ++started_;
        cv_.notify_all();
        cv_.wait(lk, [&] { return open_; });
      }
      dst = src.clone();
    };
  }
  void waitStarted(int n) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return started_ >= n; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int started_ = 0;
  bool open_ = false;
};

TEST(ServeRegistry, PresetsRegistered) {
  for (const char* name : {"edge", "blur", "threshold", "scanner"}) {
    EXPECT_TRUE(hasPipeline(name)) << name;
    EXPECT_TRUE(static_cast<bool>(pipelineFn(name))) << name;
  }
  EXPECT_FALSE(hasPipeline("no-such-pipeline"));
  const auto names = pipelineNames();
  EXPECT_GE(names.size(), 4u);
}

TEST(ServeRegistry, RegisterAndReplace) {
  registerPipeline("test.copy", [](const Mat& src, Mat& dst, KernelPath) {
    dst = src.clone();
  });
  ASSERT_TRUE(hasPipeline("test.copy"));
  registerPipeline("test.copy", [](const Mat& src, Mat& dst, KernelPath) {
    Mat out = src.clone();
    out.setTo(1);
    dst = std::move(out);
  });
  Mat out;
  pipelineFn("test.copy")(testImage(8, 8), out, KernelPath::Default);
  EXPECT_EQ(out.at<std::uint8_t>(0, 0), 1);  // the replacement ran
}

TEST(ServeStatus, ToString) {
  EXPECT_STREQ(toString(Status::Ok), "ok");
  EXPECT_STREQ(toString(Status::RejectedFull), "rejected-full");
  EXPECT_STREQ(toString(Status::RejectedShutdown), "rejected-shutdown");
  EXPECT_STREQ(toString(Status::Expired), "expired");
  EXPECT_STREQ(toString(Status::Aborted), "aborted");
  EXPECT_STREQ(toString(Status::Error), "error");
}

TEST(ServeOptions, FromEnv) {
  ::setenv("SIMDCV_SERVE_WORKERS", "3", 1);
  ::setenv("SIMDCV_SERVE_QUEUE_CAP", "17", 1);
  ::setenv("SIMDCV_SERVE_DEADLINE_MS", "250", 1);
  const Options o = Options::fromEnv();
  EXPECT_EQ(o.workers, 3);
  EXPECT_EQ(o.queue_capacity, 17u);
  EXPECT_EQ(o.default_deadline_ns, std::uint64_t(250) * 1000000);
  ::unsetenv("SIMDCV_SERVE_WORKERS");
  ::unsetenv("SIMDCV_SERVE_QUEUE_CAP");
  ::unsetenv("SIMDCV_SERVE_DEADLINE_MS");
  const Options d = Options::fromEnv();
  EXPECT_EQ(d.workers, 1);
  EXPECT_EQ(d.queue_capacity, 64u);
  EXPECT_EQ(d.default_deadline_ns, 0u);
}

// The acceptance contract: a served response is bit-identical to calling
// the same pipeline directly, for every preset, with multiple workers
// racing. The engine must add no arithmetic of its own.
TEST(ServeEngine, BitIdenticalVsDirectCall) {
  const Mat src = testImage(127, 93, 11);
  Options opts;
  opts.workers = 3;
  opts.queue_capacity = 16;
  Engine engine(opts);
  for (const char* name : {"edge", "blur", "threshold", "scanner"}) {
    Mat want;
    pipelineFn(name)(src, want, KernelPath::Default);
    // Several concurrent requests of the same pipeline: all must match the
    // direct result exactly.
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < 6; ++i) futs.push_back(engine.submit(name, src));
    for (auto& f : futs) {
      Response r = f.get();
      ASSERT_EQ(r.status, Status::Ok) << name << ": " << r.error;
      ASSERT_EQ(r.image.size(), want.size()) << name;
      EXPECT_EQ(countMismatches(r.image, want), 0u) << name;
      EXPECT_GE(r.start_ns, r.submit_ns) << name;
      EXPECT_GE(r.done_ns, r.start_ns) << name;
    }
  }
  const Stats s = engine.stats();
  EXPECT_EQ(s.completed, 24u);
  EXPECT_EQ(s.accepted, 24u);
  EXPECT_EQ(s.errors, 0u);
}

TEST(ServeEngine, UnknownPipelineIsError) {
  Engine engine(Options{});
  Response r = engine.submit("no-such-pipeline", testImage()).get();
  EXPECT_EQ(r.status, Status::Error);
  EXPECT_NE(r.error.find("no-such-pipeline"), std::string::npos);
  EXPECT_EQ(engine.stats().errors, 1u);
}

TEST(ServeEngine, PipelineExceptionIsError) {
  registerPipeline("test.throws", [](const Mat&, Mat&, KernelPath) {
    throw Error("deliberate failure");
  });
  Engine engine(Options{});
  Response r = engine.submit("test.throws", testImage()).get();
  EXPECT_EQ(r.status, Status::Error);
  EXPECT_NE(r.error.find("deliberate failure"), std::string::npos);
  EXPECT_TRUE(r.image.empty());
  EXPECT_EQ(engine.stats().errors, 1u);
  // The worker survives a throwing pipeline.
  EXPECT_EQ(engine.submit("threshold", testImage()).get().status, Status::Ok);
}

TEST(ServeEngine, SubmitAfterShutdownRejected) {
  Engine engine(Options{});
  ASSERT_EQ(engine.submit("threshold", testImage()).get().status, Status::Ok);
  engine.shutdown(Shutdown::Drain);
  Response r = engine.submit("threshold", testImage()).get();
  EXPECT_EQ(r.status, Status::RejectedShutdown);
  EXPECT_EQ(engine.trySubmit("threshold", testImage()).get().status,
            Status::RejectedShutdown);
  const Stats s = engine.stats();
  EXPECT_EQ(s.rejected_shutdown, 2u);
  EXPECT_EQ(s.completed, 1u);
  engine.shutdown(Shutdown::Abort);  // idempotent, mode decided by first call
}

TEST(ServeEngine, TrySubmitRejectsWhenFull) {
  auto gate = std::make_shared<Gate>();
  registerPipeline("test.gate.full", gate->pipeline());
  Options opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  Engine engine(opts);
  // Pin the single worker, then fill the single ring slot.
  auto in_flight = engine.submit("test.gate.full", testImage(16, 16));
  gate->waitStarted(1);
  auto queued = engine.submit("threshold", testImage(16, 16));
  // Ring is now full: non-blocking admission must refuse immediately.
  Response rejected =
      engine.trySubmit("threshold", testImage(16, 16)).get();
  EXPECT_EQ(rejected.status, Status::RejectedFull);
  gate->release();
  EXPECT_EQ(in_flight.get().status, Status::Ok);
  EXPECT_EQ(queued.get().status, Status::Ok);
  const Stats s = engine.stats();
  EXPECT_EQ(s.rejected_full, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(ServeEngine, BlockingSubmitAppliesBackpressure) {
  auto gate = std::make_shared<Gate>();
  registerPipeline("test.gate.bp", gate->pipeline());
  Options opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  Engine engine(opts);
  auto in_flight = engine.submit("test.gate.bp", testImage(16, 16));
  gate->waitStarted(1);
  auto queued = engine.submit("threshold", testImage(16, 16));
  // This submit finds the ring full and must block until the gate opens and
  // the worker drains a slot — then be admitted, not rejected.
  std::future<Response> blocked;
  std::thread t([&] { blocked = engine.submit("threshold", testImage(16, 16)); });
  gate->release();
  t.join();
  EXPECT_EQ(in_flight.get().status, Status::Ok);
  EXPECT_EQ(queued.get().status, Status::Ok);
  EXPECT_EQ(blocked.get().status, Status::Ok);
  const Stats s = engine.stats();
  EXPECT_EQ(s.accepted, 3u);
  EXPECT_EQ(s.rejected_full, 0u);
}

TEST(ServeEngine, DrainCompletesQueuedRequests) {
  auto gate = std::make_shared<Gate>();
  registerPipeline("test.gate.drain", gate->pipeline());
  Options opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  Engine engine(opts);
  auto in_flight = engine.submit("test.gate.drain", testImage(16, 16));
  gate->waitStarted(1);
  std::vector<std::future<Response>> queued;
  for (int i = 0; i < 3; ++i)
    queued.push_back(engine.submit("threshold", testImage(16, 16)));
  EXPECT_EQ(engine.queued(), 3u);
  // Drain shutdown with one request executing and three queued: everything
  // admitted must complete.
  std::thread t([&] { engine.shutdown(Shutdown::Drain); });
  gate->release();
  t.join();
  EXPECT_EQ(in_flight.get().status, Status::Ok);
  for (auto& f : queued) EXPECT_EQ(f.get().status, Status::Ok);
  const Stats s = engine.stats();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.aborted, 0u);
}

TEST(ServeEngine, AbortFailsQueuedButFinishesInFlight) {
  auto gate = std::make_shared<Gate>();
  registerPipeline("test.gate.abort", gate->pipeline());
  Options opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  Engine engine(opts);
  auto in_flight = engine.submit("test.gate.abort", testImage(16, 16));
  gate->waitStarted(1);
  std::vector<std::future<Response>> queued;
  for (int i = 0; i < 3; ++i)
    queued.push_back(engine.submit("threshold", testImage(16, 16)));
  // Abort while the worker is pinned: the queued requests must fail
  // immediately (their futures become ready before the gate opens)...
  std::thread t([&] { engine.shutdown(Shutdown::Abort); });
  for (auto& f : queued) {
    Response r = f.get();
    EXPECT_EQ(r.status, Status::Aborted);
    EXPECT_TRUE(r.image.empty());
  }
  // ...while the in-flight request runs to completion.
  gate->release();
  t.join();
  EXPECT_EQ(in_flight.get().status, Status::Ok);
  const Stats s = engine.stats();
  EXPECT_EQ(s.aborted, 3u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(ServeEngine, ExpiredDeadlineDroppedBeforeExecute) {
  auto gate = std::make_shared<Gate>();
  registerPipeline("test.gate.deadline", gate->pipeline());
  Options opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  Engine engine(opts);
  auto in_flight = engine.submit("test.gate.deadline", testImage(16, 16));
  gate->waitStarted(1);
  // 1 ns deadline: long expired by the time the pinned worker reaches it.
  SubmitOptions so;
  so.deadline_ns = 1;
  auto doomed = engine.submit("threshold", testImage(16, 16), so);
  auto healthy = engine.submit("threshold", testImage(16, 16));
  gate->release();
  Response r = doomed.get();
  EXPECT_EQ(r.status, Status::Expired);
  EXPECT_TRUE(r.image.empty());
  EXPECT_EQ(r.done_ns, r.start_ns);  // never executed
  EXPECT_EQ(healthy.get().status, Status::Ok);
  EXPECT_EQ(in_flight.get().status, Status::Ok);
  const Stats s = engine.stats();
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(ServeEngine, DefaultDeadlineFromOptions) {
  auto gate = std::make_shared<Gate>();
  registerPipeline("test.gate.defdl", gate->pipeline());
  Options opts;
  opts.workers = 1;
  opts.queue_capacity = 8;
  opts.default_deadline_ns = 1;  // every request expires once it queues
  Engine engine(opts);
  // The gate request overrides the default with a generous deadline so it
  // actually starts executing and pins the worker.
  SubmitOptions generous;
  generous.deadline_ns = std::uint64_t(60) * 1000000000;
  auto in_flight = engine.submit("test.gate.defdl", testImage(16, 16), generous);
  gate->waitStarted(1);
  auto doomed = engine.submit("threshold", testImage(16, 16));
  gate->release();
  EXPECT_EQ(doomed.get().status, Status::Expired);
  EXPECT_EQ(in_flight.get().status, Status::Ok);
  EXPECT_EQ(engine.stats().expired, 1u);
}

TEST(ServeEngine, DestructorDrains) {
  std::vector<std::future<Response>> futs;
  {
    Options opts;
    opts.workers = 2;
    opts.queue_capacity = 16;
    Engine engine(opts);
    for (int i = 0; i < 8; ++i)
      futs.push_back(engine.submit("threshold", testImage(32, 32)));
  }  // ~Engine == shutdown(Drain)
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::Ok);
}

TEST(ServeEngine, SharedPoolModeSmoke) {
  // inline_kernel_parallel = false: requests may fan bands out to the
  // runtime pool (the workers == 1, SIMDCV_NUM_THREADS > 1 configuration).
  Options opts;
  opts.workers = 1;
  opts.inline_kernel_parallel = false;
  Engine engine(opts);
  const Mat src = testImage(127, 93, 11);
  Mat want;
  pipelineFn("edge")(src, want, KernelPath::Default);
  Response r = engine.submit("edge", src).get();
  ASSERT_EQ(r.status, Status::Ok);
  EXPECT_EQ(countMismatches(r.image, want), 0u);
}

// Many concurrent clients against few workers: the TSan workload for the
// whole admission/execute/respond path under real contention.
TEST(ServeEngine, ManyClientsManyWorkers) {
  Options opts;
  opts.workers = 4;
  opts.queue_capacity = 4;
  Engine engine(opts);
  const Mat src = testImage(64, 48, 3);
  Mat want;
  pipelineFn("threshold")(src, want, KernelPath::Default);
  constexpr int kClients = 8;
  constexpr int kPerClient = 10;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        Response r = engine.submit("threshold", src).get();
        ASSERT_EQ(r.status, Status::Ok);
        ASSERT_EQ(countMismatches(r.image, want), 0u);
        ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);
  const Stats s = engine.stats();
  EXPECT_EQ(s.completed, std::uint64_t(kClients) * kPerClient);
  EXPECT_EQ(s.accepted, s.completed);
}

}  // namespace
}  // namespace simdcv::serve
