// simdcv::tune — decision machinery, winner selection, trial serialization,
// cache round-trip (save -> reset -> load -> identical dispatch without
// re-measuring), fingerprint mismatch, and corrupt-file tolerance. Carries
// the `tune` ctest label (run under ASan in scripts/verify.sh).
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "imgproc/threshold.hpp"
#include "tune/tune.hpp"

namespace simdcv::tune {
namespace {

// Every test starts from an empty registry with tuning off and no cache
// file; the registry is process-global, so cleanup matters.
class TuneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setEnabled(false);
    setCachePath("");
    reset();
  }
  void TearDown() override {
    setEnabled(false);
    setCachePath("");
    reset();
    for (const auto& f : scratch_files_) std::remove(f.c_str());
  }

  std::string scratchFile(const char* name) {
    std::string path = ::testing::TempDir() + "simdcv_tune_" + name;
    scratch_files_.push_back(path);
    std::remove(path.c_str());
    return path;
  }

  std::vector<std::string> scratch_files_;
};

TEST_F(TuneTest, SizeClassIsLog2Bucket) {
  EXPECT_EQ(sizeClass(0), 0);
  EXPECT_EQ(sizeClass(1), 0);
  EXPECT_EQ(sizeClass(2), 1);
  EXPECT_EQ(sizeClass(3), 1);
  EXPECT_EQ(sizeClass(4), 2);
  EXPECT_EQ(sizeClass(1 << 20), 20);
  // One class per octave: 640x480 and 2592x1920 u8 images differ.
  EXPECT_NE(sizeClass(640 * 480), sizeClass(2592 * 1920));
}

TEST_F(TuneTest, FingerprintIsStableHex) {
  const std::string fp = fingerprint();
  EXPECT_EQ(fp.size(), 16u);
  EXPECT_EQ(fp.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(fingerprint(), fp);
}

TEST_F(TuneTest, PointKeyShape) {
  EXPECT_EQ(pointKey("threshold", "grain", KernelPath::Sse2, 13),
            "threshold|grain|sse2|c13");
  EXPECT_EQ(pointKeyPathAxis("edgeDetect", 20), "edgeDetect|path|*|c20");
}

TEST_F(TuneTest, TrialsCycleLeastSampledThenCommitSmallestMedian) {
  const std::string key = "k|axis|auto|c10";
  // Feed kTrialSamples samples per candidate: candidate 1 is fastest.
  for (int s = 0; s < kTrialSamples; ++s) {
    for (int cand = 0; cand < 3; ++cand) {
      const Decision d = decide(key, 3, /*fallback=*/0);
      ASSERT_TRUE(d.measuring);
      EXPECT_EQ(d.choice, cand);  // least-sampled, ties to lowest index
      report(key, d.choice, cand == 1 ? 100 : 1000);
    }
  }
  EXPECT_EQ(committedChoice(key), 1);
  const Decision served = decide(key, 3, 0);
  EXPECT_EQ(served.choice, 1);
  EXPECT_FALSE(served.measuring);
  const Stats st = stats();
  EXPECT_EQ(st.decisions_committed, 1u);
  EXPECT_EQ(st.samples_recorded,
            static_cast<std::uint64_t>(3 * kTrialSamples));
  EXPECT_GE(st.decisions_served, 1u);
}

TEST_F(TuneTest, MedianIgnoresOneOutlierSample) {
  const std::string key = "k|axis|auto|c11";
  // Candidate 0: samples {10, 10, 5000} (median 10). Candidate 1: {50, 50,
  // 50} (median 50). The outlier must not flip the winner.
  const std::uint64_t samples0[] = {10, 5000, 10};
  const std::uint64_t samples1[] = {50, 50, 50};
  for (int s = 0; s < kTrialSamples; ++s) {
    Decision d = decide(key, 2, 0);
    ASSERT_TRUE(d.measuring);
    report(key, d.choice, samples0[s]);
    d = decide(key, 2, 0);
    ASSERT_TRUE(d.measuring);
    report(key, d.choice, samples1[s]);
  }
  EXPECT_EQ(committedChoice(key), 0);
}

TEST_F(TuneTest, SingleCandidateNeverTrials) {
  const Decision d = decide("k|axis|auto|c1", 1, 0);
  EXPECT_EQ(d.choice, 0);
  EXPECT_FALSE(d.measuring);
}

TEST_F(TuneTest, OnlyOneAxisMeasuresPerCallTree) {
  setEnabled(true);
  ChoiceScope outer("outerk", "fuse", KernelPath::Auto, 1 << 12, 2, 0);
  ASSERT_TRUE(outer.measuring());
  // A nested scope on a different key must serve its fallback unmeasured —
  // its time would pollute (and be polluted by) the outer trial window.
  ChoiceScope inner("innerk", "fuse", KernelPath::Auto, 1 << 12, 2, 1);
  EXPECT_FALSE(inner.measuring());
  EXPECT_EQ(inner.choice(), 1);
}

TEST_F(TuneTest, ScopesInertWhenDisabled) {
  ASSERT_FALSE(enabled());
  PathScope ps("k", KernelPath::Default, 1 << 12);
  EXPECT_FALSE(ps.measuring());
  EXPECT_EQ(ps.path(), resolvePath(KernelPath::Default));
  GrainScope gs("k", KernelPath::Auto, 1 << 12, 100, 7);
  EXPECT_FALSE(gs.measuring());
  EXPECT_EQ(gs.grain(), 7);  // exactly the heuristic, untouched
  EXPECT_EQ(stats().trials_started, 0u);
}

TEST_F(TuneTest, PathScopeInertForConcretePathRequests) {
  setEnabled(true);
  PathScope ps("k", KernelPath::ScalarNoVec, 1 << 12);
  EXPECT_FALSE(ps.measuring());
  EXPECT_EQ(ps.path(), KernelPath::ScalarNoVec);
  EXPECT_EQ(stats().trials_started, 0u);
}

TEST_F(TuneTest, GrainForChoiceMapping) {
  EXPECT_EQ(grainForChoice(0, 8, 1000), 8);
  EXPECT_EQ(grainForChoice(1, 8, 1000), 16);
  EXPECT_EQ(grainForChoice(2, 8, 1000), 32);
  EXPECT_EQ(grainForChoice(3, 8, 1000), 1000);  // serial: one band
  EXPECT_EQ(grainForChoice(2, 400, 1000), 1000);  // clamped to rows
  EXPECT_EQ(grainForChoice(0, 0, 1000), 1);       // degenerate heuristic
  EXPECT_EQ(grainForChoice(3, 8, 0), 1);          // degenerate rows
}

TEST_F(TuneTest, CacheRoundTripServesWithoutRemeasuring) {
  const std::string path = scratchFile("roundtrip.txt");
  const std::string key = "threshold|grain|sse2|c13";
  for (int s = 0; s < kTrialSamples; ++s)
    for (int cand = 0; cand < 2; ++cand) {
      const Decision d = decide(key, 2, 0);
      report(key, d.choice, cand == 1 ? 10 : 99);
    }
  ASSERT_EQ(committedChoice(key), 1);
  ASSERT_TRUE(saveCache(path));

  reset();
  ASSERT_EQ(committedChoice(key), -1);
  ASSERT_TRUE(loadCache(path));
  EXPECT_EQ(committedChoice(key), 1);
  // Identical dispatch, no trial: the loaded winner is served immediately.
  const Decision d = decide(key, 2, 0);
  EXPECT_EQ(d.choice, 1);
  EXPECT_FALSE(d.measuring);
  EXPECT_EQ(stats().trials_started, 0u);
  EXPECT_GE(stats().file_entries_loaded, 1u);
}

TEST_F(TuneTest, SetCachePathArmsLazyLoad) {
  const std::string path = scratchFile("lazy.txt");
  {
    std::ofstream os(path);
    os << "simdcv-tune-cache v1\n"
       << "host " << fingerprint() << "\n"
       << "decide some|fuse|auto|c9 1\n";
  }
  reset();
  setCachePath(path);
  // First decide() triggers the lazy load and serves the cached winner.
  const Decision d = decide("some|fuse|auto|c9", 2, 0);
  EXPECT_EQ(d.choice, 1);
  EXPECT_FALSE(d.measuring);
}

TEST_F(TuneTest, CommitPersistsWhenCachePathSet) {
  const std::string path = scratchFile("autosave.txt");
  setCachePath(path);
  const std::string key = "auto|fuse|auto|c8";
  for (int s = 0; s < kTrialSamples; ++s)
    for (int cand = 0; cand < 2; ++cand) {
      const Decision d = decide(key, 2, 0);
      report(key, d.choice, 100);
    }
  ASSERT_GE(committedChoice(key), 0);
  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << "commit should have written the cache file";
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "simdcv-tune-cache v1");
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "host " + fingerprint());
}

TEST_F(TuneTest, WrongFingerprintIsIgnoredAndRemeasured) {
  const std::string path = scratchFile("wronghost.txt");
  {
    std::ofstream os(path);
    os << "simdcv-tune-cache v1\n"
       << "host 0123456789abcdef\n"  // not this machine
       << "decide k|fuse|auto|c9 1\n";
  }
  EXPECT_FALSE(loadCache(path));
  EXPECT_EQ(committedChoice("k|fuse|auto|c9"), -1);
  EXPECT_GE(stats().file_load_failures, 1u);
  // Dispatch re-measures from scratch.
  const Decision d = decide("k|fuse|auto|c9", 2, 0);
  EXPECT_TRUE(d.measuring);
}

TEST_F(TuneTest, CorruptHeaderIsTolerated) {
  const std::string path = scratchFile("corrupt.txt");
  {
    std::ofstream os(path);
    os << "{\"not\": \"the tune cache format\"}\n";
  }
  EXPECT_FALSE(loadCache(path));
  EXPECT_TRUE(decisions().empty());
}

TEST_F(TuneTest, MissingFileIsSilentFailure) {
  EXPECT_FALSE(loadCache(scratchFile("never_written.txt")));
  EXPECT_GE(stats().file_load_failures, 1u);
}

TEST_F(TuneTest, MalformedEntriesSkippedGoodOnesKept) {
  const std::string path = scratchFile("mixed.txt");
  {
    std::ofstream os(path);
    os << "simdcv-tune-cache v1\n"
       << "host " << fingerprint() << "\n"
       << "decide good|fuse|auto|c9 1\n"
       << "garbage line with no meaning\n"
       << "decide broken|fuse|auto|c9 notanumber\n"
       << "decide also-good|grain|sse2|c12 3\n";
  }
  EXPECT_TRUE(loadCache(path));
  EXPECT_EQ(committedChoice("good|fuse|auto|c9"), 1);
  EXPECT_EQ(committedChoice("also-good|grain|sse2|c12"), 3);
  EXPECT_EQ(decisions().size(), 2u);
}

TEST_F(TuneTest, EndToEndThresholdCommitsDecisions) {
  // Drive a real kernel under tuning until its decision points commit; the
  // path axis (Default request) and the grain axis share one call tree, so
  // the thread-local guard serializes their trials.
  ScopedEnable tuned(true);
  Mat src(64, 64, U8C1), dst;
  for (int r = 0; r < src.rows(); ++r)
    for (int c = 0; c < src.cols(); ++c)
      src.ptr<std::uint8_t>(r)[c] = static_cast<std::uint8_t>(r + c);
  for (int i = 0; i < 80; ++i)
    imgproc::threshold(src, dst, 100.0, 255.0,
                       imgproc::ThresholdType::Binary, KernelPath::Default);
  const std::uint64_t bytes = 2ull * 64 * 64;
  EXPECT_GE(committedChoice(pointKeyPathAxis("threshold", sizeClass(bytes))),
            0);
  const Stats st = stats();
  EXPECT_GT(st.samples_recorded, 0u);
  EXPECT_GT(st.decisions_committed, 0u);
  // The committed winner computes the same function as every loser: verify
  // against a fixed-path run.
  Mat tunedOut, fixedOut;
  imgproc::threshold(src, tunedOut, 100.0, 255.0,
                     imgproc::ThresholdType::Binary, KernelPath::Default);
  setEnabled(false);
  imgproc::threshold(src, fixedOut, 100.0, 255.0,
                     imgproc::ThresholdType::Binary, KernelPath::ScalarNoVec);
  ASSERT_EQ(tunedOut.rows(), fixedOut.rows());
  for (int r = 0; r < tunedOut.rows(); ++r)
    for (int c = 0; c < tunedOut.cols(); ++c)
      ASSERT_EQ(tunedOut.ptr<std::uint8_t>(r)[c],
                fixedOut.ptr<std::uint8_t>(r)[c])
          << "tuned dispatch diverged at (" << r << "," << c << ")";
}

}  // namespace
}  // namespace simdcv::tune
