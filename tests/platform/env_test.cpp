// Hardened env parsing (platform/env.hpp): the satellite fix for the
// pre-hardening parsers that routed "-5" through strtoull (wrapping to a
// huge worker count) or silently dropped garbage. parseInt is the strict
// core; envInt/envFlag wrap it with the warn-and-fallback contract.
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "platform/env.hpp"

namespace simdcv::platform {
namespace {

// setenv/unsetenv RAII so a failing assertion cannot leak a variable into
// later tests (the test binary is single-process).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value != nullptr)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() { ::unsetenv(name_.c_str()); }

 private:
  std::string name_;
};

TEST(ParseInt, AcceptsPlainDecimal) {
  long long v = -1;
  EXPECT_TRUE(parseInt("42", 0, 100, &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parseInt("0", 0, 100, &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(parseInt("100", 0, 100, &v));
  EXPECT_EQ(v, 100);
}

TEST(ParseInt, AcceptsSignWhenRangeAllows) {
  long long v = 0;
  EXPECT_TRUE(parseInt("-5", -10, 10, &v));
  EXPECT_EQ(v, -5);
  EXPECT_TRUE(parseInt("+7", -10, 10, &v));
  EXPECT_EQ(v, 7);
}

TEST(ParseInt, RejectsNegativeWhereCountExpected) {
  // The original bug: "-5" fed to strtoull wrapped to 18446744073709551611.
  long long v = 77;
  EXPECT_FALSE(parseInt("-5", 0, 4096, &v));
  EXPECT_EQ(v, 77) << "*out must be untouched on failure";
}

TEST(ParseInt, RejectsGarbageAndTrailingJunk) {
  long long v = 77;
  EXPECT_FALSE(parseInt("abc", 0, 100, &v));
  EXPECT_FALSE(parseInt("12abc", 0, 100, &v));
  EXPECT_FALSE(parseInt("12 ", 0, 100, &v));
  EXPECT_FALSE(parseInt(" 12", 0, 100, &v));
  EXPECT_FALSE(parseInt("1.5", 0, 100, &v));
  EXPECT_FALSE(parseInt("0x10", 0, 100, &v));
  EXPECT_FALSE(parseInt("-", -10, 10, &v));
  EXPECT_FALSE(parseInt("+", -10, 10, &v));
  EXPECT_EQ(v, 77);
}

TEST(ParseInt, RejectsNullAndEmpty) {
  long long v = 77;
  EXPECT_FALSE(parseInt(nullptr, 0, 100, &v));
  EXPECT_FALSE(parseInt("", 0, 100, &v));
  EXPECT_EQ(v, 77);
}

TEST(ParseInt, RejectsOverflow) {
  long long v = 77;
  EXPECT_FALSE(parseInt("99999999999999999999999999", 0, 1LL << 62, &v));
  EXPECT_FALSE(parseInt("-99999999999999999999999999", -(1LL << 62), 0, &v));
  EXPECT_EQ(v, 77);
}

TEST(ParseInt, RejectsOutOfRange) {
  long long v = 77;
  EXPECT_FALSE(parseInt("101", 0, 100, &v));
  EXPECT_FALSE(parseInt("-1", 0, 100, &v));
  EXPECT_EQ(v, 77);
  EXPECT_TRUE(parseInt("100", 0, 100, &v));  // bounds are inclusive
  EXPECT_EQ(v, 100);
}

TEST(EnvInt, UnsetReturnsFallbackSilently) {
  ScopedEnv e("SIMDCV_TEST_ENVINT", nullptr);
  EXPECT_EQ(envInt("SIMDCV_TEST_ENVINT", 64, 1, 1 << 20), 64);
}

TEST(EnvInt, ValidValueWins) {
  ScopedEnv e("SIMDCV_TEST_ENVINT", "8");
  EXPECT_EQ(envInt("SIMDCV_TEST_ENVINT", 64, 1, 1 << 20), 8);
}

TEST(EnvInt, InvalidValueFallsBack) {
  {
    ScopedEnv e("SIMDCV_TEST_ENVINT", "banana");
    EXPECT_EQ(envInt("SIMDCV_TEST_ENVINT", 64, 1, 1 << 20), 64);
  }
  {
    ScopedEnv e("SIMDCV_TEST_ENVINT", "-3");
    EXPECT_EQ(envInt("SIMDCV_TEST_ENVINT", 64, 1, 1 << 20), 64);
  }
  {
    ScopedEnv e("SIMDCV_TEST_ENVINT", "184467440737095516150");  // overflow
    EXPECT_EQ(envInt("SIMDCV_TEST_ENVINT", 64, 1, 1 << 20), 64);
  }
  {
    ScopedEnv e("SIMDCV_TEST_ENVINT", "0");  // below min
    EXPECT_EQ(envInt("SIMDCV_TEST_ENVINT", 64, 1, 1 << 20), 64);
  }
}

TEST(EnvFlag, OneAndZeroParse) {
  {
    ScopedEnv e("SIMDCV_TEST_ENVFLAG", "1");
    EXPECT_TRUE(envFlag("SIMDCV_TEST_ENVFLAG", false));
  }
  {
    ScopedEnv e("SIMDCV_TEST_ENVFLAG", "0");
    EXPECT_FALSE(envFlag("SIMDCV_TEST_ENVFLAG", true));
  }
}

TEST(EnvFlag, UnsetAndGarbageFallBack) {
  {
    ScopedEnv e("SIMDCV_TEST_ENVFLAG", nullptr);
    EXPECT_TRUE(envFlag("SIMDCV_TEST_ENVFLAG", true));
    EXPECT_FALSE(envFlag("SIMDCV_TEST_ENVFLAG", false));
  }
  {
    ScopedEnv e("SIMDCV_TEST_ENVFLAG", "yes");
    EXPECT_TRUE(envFlag("SIMDCV_TEST_ENVFLAG", true));
    EXPECT_FALSE(envFlag("SIMDCV_TEST_ENVFLAG", false));
  }
}

}  // namespace
}  // namespace simdcv::platform
