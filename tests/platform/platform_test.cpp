// Platform catalog, host query, and cost-model invariants.
#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include <set>

namespace simdcv::platform {
namespace {

TEST(HostInfo, SaneValues) {
  const HostInfo h = queryHost();
  EXPECT_GE(h.logical_cpus, 1);
#if defined(__x86_64__)
  EXPECT_TRUE(h.sse2);
  EXPECT_GT(h.l1d_kb, 0);
#endif
}

TEST(Catalog, HasTenPlatformsInTableOrder) {
  const auto& cat = platformCatalog();
  ASSERT_EQ(cat.size(), 10u);
  EXPECT_EQ(cat[0].name, "Intel Atom D510");
  EXPECT_EQ(cat[3].name, "Intel Core i5 3360M");
  EXPECT_EQ(cat[4].name, "TI DM3730");
  EXPECT_EQ(cat[9].name, "NVIDIA Tegra T30");
  int intel = 0, arm = 0;
  for (const auto& p : cat) (p.is_arm ? arm : intel)++;
  EXPECT_EQ(intel, 4);
  EXPECT_EQ(arm, 6);
}

TEST(Catalog, TableIFieldsPopulated) {
  std::set<std::string> names;
  for (const auto& p : platformCatalog()) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.codename.empty());
    EXPECT_FALSE(p.simd_ext.empty());
    EXPECT_GT(p.ghz, 0.5);
    EXPECT_LT(p.ghz, 4.0);
    EXPECT_GE(p.cores, 1);
    EXPECT_GT(p.l2_kb, 0);
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
    for (double e : p.autovec_eff) {
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, 1.0);
    }
  }
}

TEST(Catalog, InOrderFlagsMatchPaper) {
  // The paper contrasts the in-order Atom/Cortex-A8 with out-of-order parts.
  const auto& cat = platformCatalog();
  EXPECT_TRUE(cat[0].in_order);   // Atom D510
  EXPECT_FALSE(cat[2].in_order);  // i7 Sandy Bridge
  EXPECT_TRUE(cat[4].in_order);   // DM3730 (A8)
  EXPECT_TRUE(cat[5].in_order);   // Exynos 3110 (A8)
  EXPECT_FALSE(cat[7].in_order);  // Exynos 4412 (A9)
}

TEST(CostModel, WorkProfilesPositiveAndOrdered) {
  for (int k = 0; k < kBenchKernelCount; ++k) {
    const KernelWork w = workFor(static_cast<BenchKernel>(k));
    EXPECT_GT(w.scalar_ops_px, 0);
    EXPECT_GT(w.simd_ops_px, 0);
    EXPECT_GT(w.bytes_px, 0);
    // HAND must reduce the instruction count — that is the whole premise.
    EXPECT_GT(w.scalar_ops_px, w.simd_ops_px);
  }
}

TEST(CostModel, TimesScaleLinearlyWithPixels) {
  const auto& p = platformCatalog()[0];
  const SimResult small = simulate(p, BenchKernel::ConvertF32S16, {640, 480});
  const SimResult big = simulate(p, BenchKernel::ConvertF32S16, {1280, 960});
  EXPECT_NEAR(big.auto_seconds / small.auto_seconds, 4.0, 1e-9);
  EXPECT_NEAR(big.hand_seconds / small.hand_seconds, 4.0, 1e-9);
}

TEST(CostModel, HandNeverSlowerThanAuto) {
  for (const auto& p : platformCatalog()) {
    for (int k = 0; k < kBenchKernelCount; ++k) {
      const SimResult r = simulate(p, static_cast<BenchKernel>(k), {3264, 2448});
      EXPECT_GE(r.speedup(), 1.0) << p.name << "/" << toString(static_cast<BenchKernel>(k));
      EXPECT_GT(r.hand_seconds, 0.0);
    }
  }
}

TEST(CostModel, CalibrationReproducesPublishedAnchors) {
  // The model must hit every speedup the paper states in prose (calibration
  // inverts the model, so failure here means the mechanism can't express the
  // observation at all — e.g. a roofline cap below the target).
  const auto& cat = platformCatalog();
  for (const auto& a : paperAnchors()) {
    const PlatformSpec* spec = nullptr;
    for (const auto& p : cat)
      if (p.name == a.platform) spec = &p;
    ASSERT_NE(spec, nullptr) << a.platform;
    const SimResult r = simulate(*spec, a.kernel, {3264, 2448});
    EXPECT_NEAR(r.speedup(), a.speedup, a.speedup * 0.02)
        << a.platform << "/" << toString(a.kernel);
  }
}

TEST(CostModel, ConversionSpeedupsFollowPaperShape) {
  const auto& cat = platformCatalog();
  auto sp = [&](int idx) {
    return simulate(cat[static_cast<std::size_t>(idx)],
                    BenchKernel::ConvertF32S16, {3264, 2448})
        .speedup();
  };
  // ARM Cortex-A8 parts show the largest benefit; Core 2 the smallest.
  EXPECT_GT(sp(5), sp(9));  // Exynos 3110 >> Tegra
  EXPECT_GT(sp(8), 2.0 * sp(9) * 0.9);  // ODROID > ~2x Tegra benefit
  EXPECT_LT(sp(1), sp(0));  // Core2 < Atom
  for (int i = 0; i < 10; ++i) {
    EXPECT_GE(sp(i), 1.0);
    EXPECT_LE(sp(i), 14.5);  // paper max 13.88
  }
}

TEST(CostModel, EdgeSpeedupsSmallerThanConversion) {
  // Figures 2 vs 6: the conversion speedup ceiling (13.88x) dwarfs the
  // edge-detection ceiling (2.6x); on every ARM platform conversion is the
  // bigger win (the lrint effect).
  double maxCvt = 0, maxEdge = 0;
  for (const auto& p : platformCatalog()) {
    const double cvt = simulate(p, BenchKernel::ConvertF32S16, {3264, 2448}).speedup();
    const double edge = simulate(p, BenchKernel::EdgeDetect, {3264, 2448}).speedup();
    maxCvt = std::max(maxCvt, cvt);
    maxEdge = std::max(maxEdge, edge);
    if (p.is_arm) {
      EXPECT_GE(cvt, edge) << p.name;
    }
  }
  EXPECT_GT(maxCvt, 3.0 * maxEdge);
}

TEST(CostModel, InOrderAtomSlowerThanOoOCoreI7) {
  // Table III discussion: the 1.66GHz in-order Atom is ~10x slower than the
  // 2.3GHz out-of-order i7 on absolute time.
  const auto& cat = platformCatalog();
  const double atom =
      simulate(cat[0], BenchKernel::GaussianBlur, {3264, 2448}).auto_seconds;
  const double i7 =
      simulate(cat[2], BenchKernel::GaussianBlur, {3264, 2448}).auto_seconds;
  EXPECT_GT(atom / i7, 3.0);
}

TEST(PaperAnchors, AllResolvable) {
  const auto& cat = platformCatalog();
  for (const auto& a : paperAnchors()) {
    bool found = false;
    for (const auto& p : cat) found |= (p.name == a.platform);
    EXPECT_TRUE(found) << a.platform;
    EXPECT_GT(a.speedup, 1.0);
  }
}

TEST(EnergyModel, TierClassificationMatchesIntroClaim) {
  // Section I (citing [7]): x86 tier 1 (~1 GFLOPS/W), Cortex-A9 SoCs tier 3
  // (~4 GFLOPS/W); the DP-crippled Cortex-A8s fall between.
  for (const auto& p : platformCatalog()) {
    const double e = gflopsPerWatt(p);
    EXPECT_GT(e, 0.0) << p.name;
    if (!p.is_arm) {
      EXPECT_EQ(efficiencyTier(p), 1) << p.name;
      EXPECT_LE(e, 1.1) << p.name;
    } else {
      EXPECT_GE(efficiencyTier(p), 2) << p.name;
      EXPECT_GE(e, 1.9) << p.name;
    }
  }
  // The A9 quad parts hit the headline ~4 GFLOPS/W figure.
  for (const auto& p : platformCatalog()) {
    if (p.name.find("4412") != std::string::npos) {
      EXPECT_EQ(efficiencyTier(p), 3) << p.name;
      EXPECT_NEAR(gflopsPerWatt(p), 4.0, 0.5) << p.name;
    }
  }
}

TEST(EnergyModel, TierBoundaries) {
  PlatformSpec p;
  p.tdp_watts = 1.0;
  p.linpack_dp_gflops = 1.0;
  EXPECT_EQ(efficiencyTier(p), 1);
  p.linpack_dp_gflops = 2.0;
  EXPECT_EQ(efficiencyTier(p), 2);
  p.linpack_dp_gflops = 4.0;
  EXPECT_EQ(efficiencyTier(p), 3);
  PlatformSpec unset;
  EXPECT_EQ(gflopsPerWatt(unset), 0.0);
}

TEST(BenchKernelEnum, ToStringCoversAll) {
  for (int k = 0; k < kBenchKernelCount; ++k)
    EXPECT_STRNE(toString(static_cast<BenchKernel>(k)), "?");
}

}  // namespace
}  // namespace simdcv::platform
