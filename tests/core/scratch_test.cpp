// Per-thread bump-allocator scratch arena used by the fused pipelines.
#include "core/scratch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

namespace simdcv::core {
namespace {

TEST(ScratchArena, AllocationsAreAlignedAndDisjoint) {
  ScratchFrame frame;
  float* a = frame.allocN<float>(100);
  std::int16_t* b = frame.allocN<std::int16_t>(33);
  std::uint8_t* c = frame.allocN<std::uint8_t>(7);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  // Write every byte: ASan catches overlap/overflow.
  for (int i = 0; i < 100; ++i) a[i] = static_cast<float>(i);
  for (int i = 0; i < 33; ++i) b[i] = static_cast<std::int16_t>(i);
  for (int i = 0; i < 7; ++i) c[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(a[99], 99.0f);
  EXPECT_EQ(b[32], 32);
}

TEST(ScratchArena, FramesNestAndUnwind) {
  ScratchArena& arena = ScratchArena::forThread();
  ScratchFrame outer;
  (void)outer.allocN<std::uint8_t>(1000);
  const std::size_t usedOuter = arena.used();
  {
    ScratchFrame inner;
    (void)inner.allocN<std::uint8_t>(5000);
    EXPECT_GT(arena.used(), usedOuter);
  }
  EXPECT_EQ(arena.used(), usedOuter);
}

TEST(ScratchArena, SteadyStateDoesNotRefill) {
  ScratchArena& arena = ScratchArena::forThread();
  {
    ScratchFrame warm;
    (void)warm.allocN<std::uint8_t>(100000);
  }
  const std::uint64_t refills = arena.refills();
  for (int i = 0; i < 20; ++i) {
    ScratchFrame frame;
    std::uint8_t* p = frame.allocN<std::uint8_t>(100000);
    p[0] = 1;
    p[99999] = 2;
  }
  EXPECT_EQ(arena.refills(), refills);
  EXPECT_GE(arena.capacity(), 100000u);
}

TEST(ScratchArena, GrowthMidFrameKeepsOldBlocksValid) {
  ScratchFrame frame;
  // First allocation from a (possibly small) block, then one large enough to
  // force a refill: the first pointer must stay dereferenceable.
  std::uint8_t* a = frame.allocN<std::uint8_t>(64);
  a[0] = 42;
  std::uint8_t* b = frame.allocN<std::uint8_t>(1 << 22);
  b[0] = 1;
  b[(1 << 22) - 1] = 2;
  EXPECT_EQ(a[0], 42);
}

TEST(ScratchArena, PerThreadIsolation) {
  ScratchFrame frame;
  std::uint8_t* mine = frame.allocN<std::uint8_t>(256);
  mine[0] = 7;
  std::uint8_t* theirs = nullptr;
  std::thread t([&] {
    ScratchFrame other;
    theirs = other.allocN<std::uint8_t>(256);
    theirs[0] = 9;
  });
  t.join();
  EXPECT_NE(mine, theirs);
  EXPECT_EQ(mine[0], 7);
}

TEST(ScratchArena, ReleaseDropsBlockAndNextUseRefills) {
  ScratchArena& arena = ScratchArena::forThread();
  {
    ScratchFrame warm;
    (void)warm.allocN<std::uint8_t>(4096);
  }
  arena.release();
  EXPECT_EQ(arena.capacity(), 0u);
  const std::uint64_t refills = arena.refills();
  ScratchFrame frame;
  std::uint8_t* p = frame.allocN<std::uint8_t>(4096);
  p[0] = 1;
  EXPECT_EQ(arena.refills(), refills + 1);
}

}  // namespace
}  // namespace simdcv::core
