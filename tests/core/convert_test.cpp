// Conversion kernels: every HAND path must match the scalar reference
// bit-exactly on the documented domain; parameterized across paths and sizes.
#include "core/convert.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/saturate.hpp"

namespace simdcv::core {
namespace {

std::vector<float> randomFloats(std::size_t n, float lo, float hi,
                                unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// All executable paths plus the novec baseline.
std::vector<KernelPath> allPaths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Avx2, KernelPath::Neon};
}

class Cvt32F16SPathTest
    : public ::testing::TestWithParam<std::tuple<KernelPath, std::size_t>> {};

TEST_P(Cvt32F16SPathTest, MatchesScalarReference) {
  const auto [path, n] = GetParam();
  if (!pathAvailable(path)) GTEST_SKIP();
  const auto src = randomFloats(n, -50000.0f, 50000.0f, 42 + static_cast<unsigned>(n));
  std::vector<std::int16_t> got(n, -1), want(n, -2);
  for (std::size_t i = 0; i < n; ++i) want[i] = saturate_cast<std::int16_t>(src[i]);
  cvt32f16s(src.data(), got.data(), n, path);
  EXPECT_EQ(got, want) << "path=" << toString(path) << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    PathsAndSizes, Cvt32F16SPathTest,
    ::testing::Combine(
        ::testing::Values(KernelPath::ScalarNoVec, KernelPath::Auto,
                          KernelPath::Sse2, KernelPath::Avx2,
                          KernelPath::Neon),
        // Sizes straddle the 8-wide vector body and exercise odd tails.
        ::testing::Values<std::size_t>(0, 1, 7, 8, 9, 15, 16, 17, 64, 1000,
                                       4096 + 3)),
    [](const auto& info) {
      return std::string(toString(std::get<0>(info.param))) == "scalar-novec"
                 ? "novec_n" + std::to_string(std::get<1>(info.param))
                 : std::string(toString(std::get<0>(info.param))) + "_n" +
                       std::to_string(std::get<1>(info.param));
    });

TEST(Cvt32F16S, RoundHalfToEvenOnAllPaths) {
  const std::vector<float> src = {0.5f, 1.5f, 2.5f,  3.5f, -0.5f, -1.5f,
                                  -2.5f, -3.5f, 100.5f, 101.5f, 0.0f, -0.0f};
  const std::vector<std::int16_t> want = {0, 2, 2, 4, 0, -2, -2, -4, 100, 102, 0, 0};
  for (KernelPath p : allPaths()) {
    if (!pathAvailable(p)) continue;
    std::vector<std::int16_t> got(src.size());
    cvt32f16s(src.data(), got.data(), src.size(), p);
    EXPECT_EQ(got, want) << toString(p);
  }
}

TEST(Cvt32F16S, SaturatesOnAllPaths) {
  const std::vector<float> src = {32766.6f, 32767.4f, 40000.0f, 1e9f,
                                  -32767.6f, -32768.4f, -40000.0f, -1e9f};
  const std::vector<std::int16_t> want = {32767, 32767, 32767, 32767,
                                          -32768, -32768, -32768, -32768};
  for (KernelPath p : allPaths()) {
    if (!pathAvailable(p)) continue;
    std::vector<std::int16_t> got(src.size());
    cvt32f16s(src.data(), got.data(), src.size(), p);
    EXPECT_EQ(got, want) << toString(p);
  }
}

TEST(Cvt32F16S, PaperNeonVariantTruncates) {
  // The paper's literal ARMv7 kernel truncates toward zero — documentedly
  // NOT bit-exact with the rounding reference.
  const std::vector<float> src = {1.9f, -1.9f, 0.5f, -0.5f, 100.999f,
                                  40000.0f, -40000.0f, 5.0f,
                                  // second vector of 8 to hit the SIMD body
                                  2.5f, -2.5f, 7.1f, -7.9f, 0.0f, 1.0f, -1.0f, 3.3f};
  std::vector<std::int16_t> got(src.size());
  cvt32f16sNeonPaper(src.data(), got.data(), src.size());
  const std::vector<std::int16_t> want = {1, -1, 0, 0, 100, 32767, -32768, 5,
                                          2, -2, 7, -7, 0, 1, -1, 3};
  EXPECT_EQ(got, want);
}

TEST(ConvertTo, F32ToS16Mat) {
  Mat src(37, 53, F32C1);
  for (int r = 0; r < src.rows(); ++r)
    for (int c = 0; c < src.cols(); ++c)
      src.at<float>(r, c) = static_cast<float>(r * 100 - c * 7) + 0.25f;
  for (KernelPath p : allPaths()) {
    if (!pathAvailable(p)) continue;
    Mat dst;
    convertTo(src, dst, Depth::S16, 1.0, 0.0, p);
    ASSERT_EQ(dst.depth(), Depth::S16);
    for (int r = 0; r < src.rows(); ++r)
      for (int c = 0; c < src.cols(); ++c)
        ASSERT_EQ(dst.at<std::int16_t>(r, c),
                  saturate_cast<std::int16_t>(src.at<float>(r, c)))
            << toString(p) << " @" << r << "," << c;
  }
}

// Every HAND-supported depth pair must agree with the scalar reference.
struct PairCase {
  Depth sd, dd;
};

class ConvertPairTest : public ::testing::TestWithParam<PairCase> {};

TEST_P(ConvertPairTest, HandPathsMatchAuto) {
  const auto [sd, dd] = GetParam();
  Mat src(29, 61, PixelType(sd, 1));
  std::mt19937 rng(7);
  for (int r = 0; r < src.rows(); ++r) {
    for (int c = 0; c < src.cols(); ++c) {
      const double v = std::uniform_real_distribution<double>(-400.0, 400.0)(rng);
      switch (sd) {
        case Depth::U8: src.at<std::uint8_t>(r, c) = saturate_cast<std::uint8_t>(v); break;
        case Depth::S16: src.at<std::int16_t>(r, c) = saturate_cast<std::int16_t>(v); break;
        case Depth::F32: src.at<float>(r, c) = static_cast<float>(v); break;
        default: FAIL();
      }
    }
  }
  Mat ref;
  convertTo(src, ref, dd, 1.0, 0.0, KernelPath::Auto);
  for (KernelPath p : {KernelPath::Sse2, KernelPath::Avx2, KernelPath::Neon,
                       KernelPath::ScalarNoVec}) {
    if (!pathAvailable(p)) continue;
    Mat got;
    convertTo(src, got, dd, 1.0, 0.0, p);
    EXPECT_EQ(countMismatches(ref, got), 0u)
        << toString(p) << " " << toString(PixelType(sd, 1)) << "->"
        << toString(PixelType(dd, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    HandPairs, ConvertPairTest,
    ::testing::Values(PairCase{Depth::F32, Depth::S16},
                      PairCase{Depth::F32, Depth::U8},
                      PairCase{Depth::U8, Depth::F32},
                      PairCase{Depth::S16, Depth::F32},
                      PairCase{Depth::U8, Depth::S16},
                      PairCase{Depth::S16, Depth::U8}),
    [](const auto& info) {
      return std::string(toString(info.param.sd)) + "_to_" +
             toString(info.param.dd);
    });

TEST(ConvertTo, ScaledConversion) {
  Mat src(8, 8, U8C1);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) src.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(r * 8 + c);
  Mat dst;
  convertTo(src, dst, Depth::F32, 2.0, -10.0);
  EXPECT_FLOAT_EQ(dst.at<float>(0, 0), -10.0f);
  EXPECT_FLOAT_EQ(dst.at<float>(7, 7), 63 * 2.0f - 10.0f);
  // Scaled into u8 saturates.
  Mat dst8;
  convertTo(src, dst8, Depth::U8, 100.0, 0.0);
  EXPECT_EQ(dst8.at<std::uint8_t>(7, 7), 255);
  EXPECT_EQ(dst8.at<std::uint8_t>(0, 0), 0);
  EXPECT_EQ(dst8.at<std::uint8_t>(0, 1), 100);
}

TEST(ConvertTo, SameDepthIsCopy) {
  Mat src(5, 5, S16C1);
  src.setTo(-123);
  Mat dst;
  convertTo(src, dst, Depth::S16);
  EXPECT_EQ(countMismatches(src, dst), 0u);
}

TEST(ConvertTo, AllDepthPairsRoundTripViaF64) {
  // u8 -> every depth -> back: must reproduce the original (u8 fits in all).
  Mat src(9, 13, U8C1);
  for (int r = 0; r < src.rows(); ++r)
    for (int c = 0; c < src.cols(); ++c)
      src.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>((r * 31 + c * 7) & 0xff);
  for (Depth mid : {Depth::S8, Depth::U16, Depth::S16, Depth::S32, Depth::F32,
                    Depth::F64}) {
    Mat m, back;
    convertTo(src, m, mid);
    convertTo(m, back, Depth::U8);
    if (mid == Depth::S8) continue;  // s8 clips 128..255 by design
    EXPECT_EQ(countMismatches(src, back), 0u) << toString(mid);
  }
}

TEST(ConvertTo, NonContinuousRoiSource) {
  Mat big(40, 40, F32C1);
  for (int r = 0; r < 40; ++r)
    for (int c = 0; c < 40; ++c) big.at<float>(r, c) = static_cast<float>(r - c) * 1.5f;
  Mat view = big.roi(Rect(5, 5, 20, 20));
  ASSERT_FALSE(view.isContinuous());
  for (KernelPath p : allPaths()) {
    if (!pathAvailable(p)) continue;
    Mat dst;
    convertTo(view, dst, Depth::S16, 1.0, 0.0, p);
    for (int r = 0; r < 20; ++r)
      for (int c = 0; c < 20; ++c)
        ASSERT_EQ(dst.at<std::int16_t>(r, c),
                  saturate_cast<std::int16_t>(view.at<float>(r, c)))
            << toString(p);
  }
}

TEST(ConvertTo, InPlaceDetaches) {
  Mat src(6, 6, F32C1);
  src.setTo(3.7f);
  Mat alias = src;
  convertTo(src, alias, Depth::S16);
  EXPECT_EQ(alias.depth(), Depth::S16);
  EXPECT_EQ(alias.at<std::int16_t>(0, 0), 4);
  EXPECT_FLOAT_EQ(src.at<float>(0, 0), 3.7f);  // source untouched
}

TEST(ConvertTo, EmptySourceThrows) {
  Mat empty, dst;
  EXPECT_THROW(convertTo(empty, dst, Depth::U8), Error);
}

TEST(HasHandKernel, ReportsSupportedPairs) {
  EXPECT_TRUE(hasHandKernel(Depth::F32, Depth::S16, KernelPath::Sse2));
  EXPECT_TRUE(hasHandKernel(Depth::F32, Depth::S16, KernelPath::Neon));
  EXPECT_FALSE(hasHandKernel(Depth::F64, Depth::S16, KernelPath::Sse2));
  EXPECT_FALSE(hasHandKernel(Depth::F32, Depth::S16, KernelPath::Auto));
}

}  // namespace
}  // namespace simdcv::core
