// Array ops: saturation semantics, path agreement, reductions.
#include "core/array_ops.hpp"

#include <gtest/gtest.h>

#include "core/saturate.hpp"

#include <cmath>
#include <random>

namespace simdcv::core {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Neon};
}

Mat randomMat(Depth d, int rows, int cols, unsigned seed) {
  Mat m(rows, cols, PixelType(d, 1));
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      switch (d) {
        case Depth::U8: m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(rng()); break;
        case Depth::S16: m.at<std::int16_t>(r, c) = static_cast<std::int16_t>(rng()); break;
        case Depth::F32:
          m.at<float>(r, c) = std::uniform_real_distribution<float>(-1e4f, 1e4f)(rng);
          break;
        default: break;
      }
    }
  return m;
}

using OpFn = void (*)(const Mat&, const Mat&, Mat&, KernelPath);

struct OpCase {
  const char* name;
  OpFn fn;
  Depth depth;
};

class ArrayOpPathTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(ArrayOpPathTest, AllPathsBitExact) {
  const auto& tc = GetParam();
  const Mat a = randomMat(tc.depth, 31, 57, 1);  // odd width: vector tails
  const Mat b = randomMat(tc.depth, 31, 57, 2);
  Mat ref;
  tc.fn(a, b, ref, KernelPath::Auto);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    tc.fn(a, b, got, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << tc.name << "/" << toString(p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndDepths, ArrayOpPathTest,
    ::testing::Values(OpCase{"add_u8", &add, Depth::U8},
                      OpCase{"add_s16", &add, Depth::S16},
                      OpCase{"add_f32", &add, Depth::F32},
                      OpCase{"sub_u8", &subtract, Depth::U8},
                      OpCase{"sub_s16", &subtract, Depth::S16},
                      OpCase{"sub_f32", &subtract, Depth::F32},
                      OpCase{"absdiff_u8", &absdiff, Depth::U8},
                      OpCase{"absdiff_s16", &absdiff, Depth::S16},
                      OpCase{"absdiff_f32", &absdiff, Depth::F32},
                      OpCase{"min_u8", &min, Depth::U8},
                      OpCase{"min_f32", &min, Depth::F32},
                      OpCase{"max_u8", &max, Depth::U8},
                      OpCase{"max_s16", &max, Depth::S16},
                      OpCase{"and_u8", &bitwiseAnd, Depth::U8},
                      OpCase{"or_s16", &bitwiseOr, Depth::S16},
                      OpCase{"xor_u8", &bitwiseXor, Depth::U8}),
    [](const auto& info) { return info.param.name; });

TEST(ArrayOps, AddSaturatesU8) {
  Mat a = full(2, 9, U8C1, 200), b = full(2, 9, U8C1, 100), d;
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    add(a, b, d, p);
    EXPECT_EQ(d.at<std::uint8_t>(1, 8), 255) << toString(p);
  }
}

TEST(ArrayOps, SubtractSaturatesU8AtZero) {
  Mat a = full(2, 9, U8C1, 10), b = full(2, 9, U8C1, 100), d;
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    subtract(a, b, d, p);
    EXPECT_EQ(d.at<std::uint8_t>(0, 0), 0) << toString(p);
  }
}

TEST(ArrayOps, AddSaturatesS16BothRails) {
  Mat a = full(1, 17, S16C1, 32000), b = full(1, 17, S16C1, 32000), d;
  add(a, b, d);
  EXPECT_EQ(d.at<std::int16_t>(0, 16), 32767);
  a.setTo(-32000);
  b.setTo(-32000);
  add(a, b, d);
  EXPECT_EQ(d.at<std::int16_t>(0, 0), -32768);
}

TEST(ArrayOps, AbsdiffU8Symmetric) {
  const Mat a = randomMat(Depth::U8, 16, 33, 3);
  const Mat b = randomMat(Depth::U8, 16, 33, 4);
  Mat ab, ba;
  absdiff(a, b, ab);
  absdiff(b, a, ba);
  EXPECT_EQ(countMismatches(ab, ba), 0u);
  Mat self;
  absdiff(a, a, self);
  EXPECT_EQ(countMismatches(self, zeros(16, 33, U8C1)), 0u);
}

TEST(ArrayOps, AbsdiffS16Saturates) {
  Mat a = full(1, 8, S16C1, 32767), b = full(1, 8, S16C1, -32768), d;
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    absdiff(a, b, d, p);
    EXPECT_EQ(d.at<std::int16_t>(0, 0), 32767) << toString(p);  // clamped
  }
}

TEST(ArrayOps, BitwiseIdentities) {
  const Mat a = randomMat(Depth::U8, 8, 21, 5);
  Mat nota, back, x, o;
  bitwiseNot(a, nota);
  bitwiseNot(nota, back);
  EXPECT_EQ(countMismatches(a, back), 0u);
  bitwiseXor(a, a, x);
  EXPECT_EQ(countMismatches(x, zeros(8, 21, U8C1)), 0u);
  bitwiseOr(a, a, o);
  EXPECT_EQ(countMismatches(o, a), 0u);
  Mat f(2, 2, F32C1), d;
  EXPECT_THROW(bitwiseAnd(f, f, d), Error);
  EXPECT_THROW(bitwiseNot(f, d), Error);
}

TEST(ArrayOps, MinMaxComplementary) {
  const Mat a = randomMat(Depth::S16, 12, 19, 6);
  const Mat b = randomMat(Depth::S16, 12, 19, 7);
  Mat lo, hi, sumLoHi, sumAb;
  min(a, b, lo);
  max(a, b, hi);
  // min + max == a + b element-wise (over int, no saturation for these vals).
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c)
      EXPECT_EQ(static_cast<int>(lo.at<std::int16_t>(r, c)) + hi.at<std::int16_t>(r, c),
                static_cast<int>(a.at<std::int16_t>(r, c)) + b.at<std::int16_t>(r, c));
}

TEST(ArrayOps, ScaleAddMatchesConvention) {
  const Mat a = randomMat(Depth::U8, 7, 13, 8);
  Mat d;
  scaleAdd(a, 2.0, -100.0, d);
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c)
      EXPECT_EQ(d.at<std::uint8_t>(r, c),
                saturate_cast<std::uint8_t>(a.at<std::uint8_t>(r, c) * 2.0 - 100.0));
}

TEST(ArrayOps, AddWeightedBlend) {
  Mat a = full(4, 4, U8C1, 100), b = full(4, 4, U8C1, 200), d;
  addWeighted(a, 0.5, b, 0.5, 0.0, d);
  EXPECT_EQ(d.at<std::uint8_t>(0, 0), 150);
  addWeighted(a, 1.0, b, 1.0, 0.0, d);
  EXPECT_EQ(d.at<std::uint8_t>(0, 0), 255);  // saturates
  addWeighted(a, 0.0, b, 0.0, 42.0, d);
  EXPECT_EQ(d.at<std::uint8_t>(0, 0), 42);
}

TEST(ArrayOps, GeometryMismatchThrows) {
  Mat a(4, 4, U8C1), b(4, 5, U8C1), c(4, 4, S16C1), d;
  EXPECT_THROW(add(a, b, d), Error);
  EXPECT_THROW(add(a, c, d), Error);
  Mat empty;
  EXPECT_THROW(add(empty, empty, d), Error);
}

TEST(ArrayOps, SumMatchesManual) {
  const Mat a = randomMat(Depth::U8, 33, 61, 9);
  double manual = 0;
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) manual += a.at<std::uint8_t>(r, c);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    EXPECT_DOUBLE_EQ(sum(a, p), manual) << toString(p);  // integers: exact
  }
}

TEST(ArrayOps, SumF32WithinTolerance) {
  const Mat a = randomMat(Depth::F32, 30, 40, 10);
  double manual = 0;
  for (int r = 0; r < a.rows(); ++r)
    for (int c = 0; c < a.cols(); ++c) manual += static_cast<double>(a.at<float>(r, c));
  EXPECT_NEAR(sum(a), manual, std::abs(manual) * 1e-6 + 1e-3);
}

TEST(ArrayOps, MeanOfConstant) {
  EXPECT_DOUBLE_EQ(mean(full(10, 10, U8C1, 77)), 77.0);
  EXPECT_DOUBLE_EQ(mean(full(3, 3, F32C1, -2.5)), -2.5);
}

TEST(ArrayOps, CountNonZero) {
  Mat a = zeros(10, 10, U8C1);
  EXPECT_EQ(countNonZero(a), 0u);
  a.at<std::uint8_t>(3, 4) = 1;
  a.at<std::uint8_t>(9, 9) = 255;
  EXPECT_EQ(countNonZero(a), 2u);
  Mat f = zeros(4, 4, F32C1);
  f.at<float>(0, 0) = -0.0f;  // negative zero counts as zero
  f.at<float>(1, 1) = 1e-30f;
  EXPECT_EQ(countNonZero(f), 1u);
}

TEST(ArrayOps, MinMaxLoc) {
  Mat a = full(8, 8, S16C1, 5);
  a.at<std::int16_t>(2, 3) = -100;
  a.at<std::int16_t>(6, 1) = 200;
  const auto r = minMaxLoc(a);
  EXPECT_EQ(r.min_val, -100);
  EXPECT_EQ(r.min_row, 2);
  EXPECT_EQ(r.min_col, 3);
  EXPECT_EQ(r.max_val, 200);
  EXPECT_EQ(r.max_row, 6);
  EXPECT_EQ(r.max_col, 1);
}

TEST(ArrayOps, MinMaxLocFirstOccurrenceWins) {
  Mat a = zeros(4, 4, U8C1);
  a.at<std::uint8_t>(1, 1) = 9;
  a.at<std::uint8_t>(2, 2) = 9;
  const auto r = minMaxLoc(a);
  EXPECT_EQ(r.max_row, 1);
  EXPECT_EQ(r.max_col, 1);
  EXPECT_EQ(r.min_row, 0);
  EXPECT_EQ(r.min_col, 0);
}

TEST(ArrayOps, WorksOnRoiViews) {
  Mat big = randomMat(Depth::U8, 32, 32, 11);
  Mat a = big.roi({1, 1, 15, 17});
  Mat b = big.roi({16, 10, 15, 17});
  Mat ref, got;
  add(a.clone(), b.clone(), ref);
  add(a, b, got, KernelPath::Sse2);
  EXPECT_EQ(countMismatches(ref, got), 0u);
  EXPECT_DOUBLE_EQ(sum(a), sum(a.clone()));
}

TEST(ArrayOps, MultiChannelElementwise) {
  Mat a = full(4, 4, U8C3, 100), b = full(4, 4, U8C3, 200), d;
  add(a, b, d);
  ASSERT_EQ(d.channels(), 3);
  EXPECT_EQ(d.at<std::uint8_t>(3, 11), 255);
}

}  // namespace
}  // namespace simdcv::core
