// Mat container: allocation, geometry, ROI views, sharing semantics.
#include "core/mat.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace simdcv {
namespace {

TEST(Mat, DefaultIsEmpty) {
  Mat m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.data(), nullptr);
}

TEST(Mat, AllocationGeometry) {
  Mat m(480, 640, U8C1);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.rows(), 480);
  EXPECT_EQ(m.cols(), 640);
  EXPECT_EQ(m.total(), 480u * 640u);
  EXPECT_EQ(m.elemSize(), 1u);
  EXPECT_GE(m.step(), 640u);
  // Row base is 64-byte aligned by construction.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.ptr<std::uint8_t>(17)) % 64, 0u);
}

TEST(Mat, ElemSizesPerType) {
  EXPECT_EQ(Mat(2, 2, U8C3).elemSize(), 3u);
  EXPECT_EQ(Mat(2, 2, F32C1).elemSize(), 4u);
  EXPECT_EQ(Mat(2, 2, PixelType(Depth::F64, 2)).elemSize(), 16u);
  EXPECT_EQ(Mat(2, 2, S16C1).elemSize1(), 2u);
}

TEST(Mat, AtReadWrite) {
  Mat m(4, 5, S32C1);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 5; ++c) m.at<std::int32_t>(r, c) = r * 10 + c;
  EXPECT_EQ(m.at<std::int32_t>(0, 0), 0);
  EXPECT_EQ(m.at<std::int32_t>(3, 4), 34);
  EXPECT_EQ(m.ptr<std::int32_t>(2)[3], 23);
}

TEST(Mat, ShallowCopySharesStorage) {
  Mat a(4, 4, U8C1);
  a.setTo(7);
  Mat b = a;
  EXPECT_TRUE(b.sharesStorageWith(a));
  b.at<std::uint8_t>(0, 0) = 9;
  EXPECT_EQ(a.at<std::uint8_t>(0, 0), 9);
}

TEST(Mat, CloneDetaches) {
  Mat a(4, 4, U8C1);
  a.setTo(7);
  Mat b = a.clone();
  EXPECT_FALSE(b.sharesStorageWith(a));
  b.at<std::uint8_t>(0, 0) = 9;
  EXPECT_EQ(a.at<std::uint8_t>(0, 0), 7);
  EXPECT_EQ(countMismatches(a, b), 1u);
}

TEST(Mat, RoiViewsAlias) {
  Mat a = zeros(10, 10, U8C1);
  Mat v = a.roi(Rect(2, 3, 4, 5));
  EXPECT_EQ(v.rows(), 5);
  EXPECT_EQ(v.cols(), 4);
  EXPECT_FALSE(v.isContinuous());
  v.setTo(255);
  EXPECT_EQ(a.at<std::uint8_t>(3, 2), 255);
  EXPECT_EQ(a.at<std::uint8_t>(2, 2), 0);
  EXPECT_EQ(a.at<std::uint8_t>(3, 1), 0);
  EXPECT_EQ(a.at<std::uint8_t>(7, 5), 255);
  EXPECT_EQ(a.at<std::uint8_t>(8, 5), 0);
}

TEST(Mat, RoiOutOfBoundsThrows) {
  Mat a(10, 10, U8C1);
  EXPECT_THROW(a.roi(Rect(8, 8, 4, 4)), Error);
  EXPECT_THROW(a.roi(Rect(-1, 0, 2, 2)), Error);
  EXPECT_NO_THROW(a.roi(Rect(0, 0, 10, 10)));
}

TEST(Mat, RowRange) {
  Mat a = zeros(10, 3, S16C1);
  Mat rows = a.rowRange(4, 7);
  EXPECT_EQ(rows.rows(), 3);
  rows.setTo(-5);
  EXPECT_EQ(a.at<std::int16_t>(4, 0), -5);
  EXPECT_EQ(a.at<std::int16_t>(3, 0), 0);
  EXPECT_EQ(a.at<std::int16_t>(7, 0), 0);
}

TEST(Mat, CopyToRespectsRoi) {
  Mat a(6, 6, U8C1);
  for (int r = 0; r < 6; ++r)
    for (int c = 0; c < 6; ++c) a.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(r * 6 + c);
  Mat v = a.roi(Rect(1, 1, 3, 2));
  Mat copy = v.clone();
  EXPECT_FALSE(copy.sharesStorageWith(a));
  EXPECT_EQ(copy.at<std::uint8_t>(0, 0), 7);
  EXPECT_EQ(copy.at<std::uint8_t>(1, 2), 15);
}

TEST(Mat, CreateKeepsStorageWhenSameGeometry) {
  Mat a(8, 8, F32C1);
  const void* p = a.data();
  a.create(8, 8, F32C1);
  EXPECT_EQ(a.data(), p);
  a.create(9, 8, F32C1);
  EXPECT_NE(a.data(), nullptr);
}

TEST(Mat, SetToSaturates) {
  Mat a(2, 2, U8C1);
  a.setTo(300.0);
  EXPECT_EQ(a.at<std::uint8_t>(1, 1), 255);
  a.setTo(-5.0);
  EXPECT_EQ(a.at<std::uint8_t>(0, 0), 0);
  Mat f(2, 2, F32C1);
  f.setTo(1.5);
  EXPECT_FLOAT_EQ(f.at<float>(0, 1), 1.5f);
}

TEST(Mat, WrapExternalMemory) {
  std::uint8_t buf[4 * 8] = {};
  Mat m(4, 6, U8C1, buf, 8);
  m.setTo(3);
  EXPECT_EQ(buf[0], 3);
  EXPECT_EQ(buf[5], 3);
  EXPECT_EQ(buf[6], 0);  // step padding untouched
  EXPECT_EQ(buf[8], 3);  // second row
}

TEST(Mat, ZerosAndFull) {
  Mat z = zeros(3, 3, S32C1);
  EXPECT_EQ(countMismatches(z, full(3, 3, S32C1, 0)), 0u);
  Mat f = full(3, 3, S32C1, -7);
  EXPECT_EQ(f.at<std::int32_t>(2, 2), -7);
}

TEST(Mat, MismatchCounting) {
  Mat a = full(4, 4, F32C1, 1.0);
  Mat b = a.clone();
  EXPECT_EQ(countMismatches(a, b), 0u);
  b.at<float>(0, 0) = 1.1f;
  b.at<float>(3, 3) = 0.9f;
  EXPECT_EQ(countMismatches(a, b), 2u);
  EXPECT_EQ(countMismatches(a, b, 0.2), 0u);
  EXPECT_NEAR(maxAbsDiff(a, b), 0.1, 1e-6);
}

TEST(Mat, CompareThrowsOnGeometryMismatch) {
  Mat a(2, 2, U8C1), b(2, 3, U8C1), c(2, 2, S16C1);
  EXPECT_THROW(countMismatches(a, b), Error);
  EXPECT_THROW(countMismatches(a, c), Error);
}

TEST(Mat, ChannelInterleavedAccess) {
  Mat rgb(2, 2, U8C3);
  rgb.setZero();
  rgb.at<std::uint8_t>(0, 0 * 3 + 2) = 200;  // pixel (0,0) channel 2
  EXPECT_EQ(rgb.ptr<std::uint8_t>(0)[2], 200);
  EXPECT_EQ(rgb.at<std::uint8_t>(0, 1 * 3 + 2), 0);
}

TEST(Mat, NegativeDimensionsThrow) {
  EXPECT_THROW(Mat(-1, 4, U8C1), Error);
  EXPECT_THROW(Mat(4, -1, U8C1), Error);
}

TEST(Mat, ZeroSizedIsEmptyButValid) {
  Mat m(0, 0, U8C1);
  EXPECT_TRUE(m.empty());
  Mat c = m.clone();
  EXPECT_TRUE(c.empty());
}

}  // namespace
}  // namespace simdcv
