// saturate_cast and cvRound semantics, including the exhaustive and boundary
// behaviour the SIMD kernels must reproduce.
#include "core/saturate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace simdcv {
namespace {

TEST(CvRound, TiesGoToEven) {
  EXPECT_EQ(cvRound(0.5), 0);
  EXPECT_EQ(cvRound(1.5), 2);
  EXPECT_EQ(cvRound(2.5), 2);
  EXPECT_EQ(cvRound(3.5), 4);
  EXPECT_EQ(cvRound(-0.5), 0);
  EXPECT_EQ(cvRound(-1.5), -2);
  EXPECT_EQ(cvRound(-2.5), -2);
}

TEST(CvRound, FloatOverloadMatchesDouble) {
  for (float v : {0.5f, 1.5f, 2.49f, 2.51f, -3.5f, -3.49f, 1e6f}) {
    EXPECT_EQ(cvRound(v), cvRound(static_cast<double>(v))) << v;
  }
}

TEST(CvRound, FloorCeil) {
  EXPECT_EQ(cvFloor(2.9), 2);
  EXPECT_EQ(cvFloor(-2.1), -3);
  EXPECT_EQ(cvCeil(2.1), 3);
  EXPECT_EQ(cvCeil(-2.9), -2);
}

TEST(SaturateCast, U8FromS16Exhaustive) {
  for (int v = -32768; v <= 32767; ++v) {
    const int expect = v < 0 ? 0 : (v > 255 ? 255 : v);
    EXPECT_EQ(saturate_cast<std::uint8_t>(static_cast<std::int16_t>(v)), expect);
  }
}

TEST(SaturateCast, S16FromS32Boundaries) {
  EXPECT_EQ(saturate_cast<std::int16_t>(32767), 32767);
  EXPECT_EQ(saturate_cast<std::int16_t>(32768), 32767);
  EXPECT_EQ(saturate_cast<std::int16_t>(-32768), -32768);
  EXPECT_EQ(saturate_cast<std::int16_t>(-32769), -32768);
  EXPECT_EQ(saturate_cast<std::int16_t>(std::numeric_limits<std::int32_t>::max()), 32767);
  EXPECT_EQ(saturate_cast<std::int16_t>(std::numeric_limits<std::int32_t>::min()), -32768);
  EXPECT_EQ(saturate_cast<std::int16_t>(0), 0);
}

TEST(SaturateCast, S16FromFloat) {
  EXPECT_EQ(saturate_cast<std::int16_t>(100.4f), 100);
  EXPECT_EQ(saturate_cast<std::int16_t>(100.6f), 101);
  EXPECT_EQ(saturate_cast<std::int16_t>(100.5f), 100);  // ties to even
  EXPECT_EQ(saturate_cast<std::int16_t>(101.5f), 102);
  EXPECT_EQ(saturate_cast<std::int16_t>(40000.0f), 32767);
  EXPECT_EQ(saturate_cast<std::int16_t>(-40000.0f), -32768);
  EXPECT_EQ(saturate_cast<std::int16_t>(32767.4f), 32767);
  EXPECT_EQ(saturate_cast<std::int16_t>(-32768.4f), -32768);
}

TEST(SaturateCast, U8FromFloat) {
  EXPECT_EQ(saturate_cast<std::uint8_t>(-1.0f), 0);
  EXPECT_EQ(saturate_cast<std::uint8_t>(0.49f), 0);
  EXPECT_EQ(saturate_cast<std::uint8_t>(254.5f), 254);  // ties to even
  EXPECT_EQ(saturate_cast<std::uint8_t>(255.5f), 255);
  EXPECT_EQ(saturate_cast<std::uint8_t>(1e9f), 255);
}

TEST(SaturateCast, S8Boundaries) {
  EXPECT_EQ(saturate_cast<std::int8_t>(127), 127);
  EXPECT_EQ(saturate_cast<std::int8_t>(128), 127);
  EXPECT_EQ(saturate_cast<std::int8_t>(-128), -128);
  EXPECT_EQ(saturate_cast<std::int8_t>(-129), -128);
  EXPECT_EQ(saturate_cast<std::int8_t>(std::uint8_t{200}), 127);
  EXPECT_EQ(saturate_cast<std::int8_t>(std::uint32_t{1u << 31}), 127);
}

TEST(SaturateCast, U16Boundaries) {
  EXPECT_EQ(saturate_cast<std::uint16_t>(-1), 0);
  EXPECT_EQ(saturate_cast<std::uint16_t>(65535), 65535);
  EXPECT_EQ(saturate_cast<std::uint16_t>(65536), 65535);
  EXPECT_EQ(saturate_cast<std::uint16_t>(static_cast<std::int16_t>(-5)), 0);
  EXPECT_EQ(saturate_cast<std::uint16_t>(70000.0f), 65535);
}

TEST(SaturateCast, S32FromFloatSaturates) {
  EXPECT_EQ(saturate_cast<std::int32_t>(3e9f), std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(saturate_cast<std::int32_t>(-3e9f), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(saturate_cast<std::int32_t>(std::nanf("")), 0);
  EXPECT_EQ(saturate_cast<std::int32_t>(1.5f), 2);
}

TEST(SaturateCast, WideningIsExact) {
  EXPECT_EQ(saturate_cast<float>(std::int32_t{123456}), 123456.0f);
  EXPECT_EQ(saturate_cast<double>(std::uint8_t{255}), 255.0);
  EXPECT_EQ(saturate_cast<std::int16_t>(std::uint8_t{255}), 255);
  EXPECT_EQ(saturate_cast<std::int32_t>(std::int16_t{-32768}), -32768);
}

// Property: saturate_cast<D>(x) == clamp(x) for every int32 in a sampled
// sweep (dense near boundaries, sparse elsewhere).
TEST(SaturateCast, ClampPropertySweep) {
  auto check = [](std::int32_t v) {
    const long long x = v;
    EXPECT_EQ(saturate_cast<std::uint8_t>(v),
              static_cast<std::uint8_t>(std::min(255LL, std::max(0LL, x))));
    EXPECT_EQ(saturate_cast<std::int16_t>(v),
              static_cast<std::int16_t>(std::min(32767LL, std::max(-32768LL, x))));
    EXPECT_EQ(saturate_cast<std::uint16_t>(v),
              static_cast<std::uint16_t>(std::min(65535LL, std::max(0LL, x))));
  };
  for (int d = -300; d <= 300; ++d) {
    check(d);
    check(255 + d);
    check(32767 + d);
    check(-32768 + d);
    check(65535 + d);
  }
  for (std::int64_t v = std::numeric_limits<std::int32_t>::min();
       v <= std::numeric_limits<std::int32_t>::max(); v += 9999991) {
    check(static_cast<std::int32_t>(v));
  }
}

}  // namespace
}  // namespace simdcv
