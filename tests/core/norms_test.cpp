// Norms and mean/stddev reductions.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/array_ops.hpp"

namespace simdcv::core {
namespace {

TEST(Norms, AnalyticValues) {
  Mat a = zeros(2, 3, F32C1);
  a.at<float>(0, 0) = 3.0f;
  a.at<float>(1, 2) = -4.0f;
  EXPECT_DOUBLE_EQ(norm(a, NormType::L1), 7.0);
  EXPECT_DOUBLE_EQ(norm(a, NormType::L2), 5.0);
  EXPECT_DOUBLE_EQ(norm(a, NormType::Inf), 4.0);
}

TEST(Norms, IntegerDepths) {
  Mat a = full(3, 3, S16C1, -2);
  EXPECT_DOUBLE_EQ(norm(a, NormType::L1), 18.0);
  EXPECT_DOUBLE_EQ(norm(a, NormType::L2), std::sqrt(36.0));
  EXPECT_DOUBLE_EQ(norm(a, NormType::Inf), 2.0);
  Mat u = full(2, 2, U8C1, 200);
  EXPECT_DOUBLE_EQ(norm(u, NormType::Inf), 200.0);
}

TEST(Norms, TriangleInequality) {
  std::mt19937 rng(1);
  Mat a(9, 13, F32C1), b(9, 13, F32C1);
  std::uniform_real_distribution<float> dist(-5.f, 5.f);
  for (int r = 0; r < 9; ++r)
    for (int c = 0; c < 13; ++c) {
      a.at<float>(r, c) = dist(rng);
      b.at<float>(r, c) = dist(rng);
    }
  Mat s;
  add(a, b, s);
  for (auto t : {NormType::L1, NormType::L2, NormType::Inf})
    EXPECT_LE(norm(s, t), norm(a, t) + norm(b, t) + 1e-6);
}

TEST(Norms, NormDiffZeroIffEqual) {
  Mat a = full(4, 4, U8C1, 7);
  EXPECT_DOUBLE_EQ(normDiff(a, a.clone()), 0.0);
  Mat b = a.clone();
  b.at<std::uint8_t>(2, 2) = 10;
  EXPECT_DOUBLE_EQ(normDiff(a, b, NormType::L1), 3.0);
  EXPECT_DOUBLE_EQ(normDiff(a, b, NormType::Inf), 3.0);
  EXPECT_DOUBLE_EQ(normDiff(a, b, NormType::L2), 3.0);
}

TEST(Norms, DiffIsUnsaturated) {
  // u8 absdiff saturates at 255 per element, but normDiff computes in
  // double: check a case where they agree and the range check holds.
  Mat a = full(1, 4, U8C1, 255), b = zeros(1, 4, U8C1);
  EXPECT_DOUBLE_EQ(normDiff(a, b, NormType::L1), 4 * 255.0);
}

TEST(MeanStdDevOp, AnalyticValues) {
  Mat a(1, 4, F32C1);
  a.at<float>(0, 0) = 2;
  a.at<float>(0, 1) = 4;
  a.at<float>(0, 2) = 4;
  a.at<float>(0, 3) = 6;
  const auto r = meanStdDev(a);
  EXPECT_DOUBLE_EQ(r.mean, 4.0);
  EXPECT_NEAR(r.stddev, std::sqrt(2.0), 1e-9);
}

TEST(MeanStdDevOp, ConstantHasZeroDeviation) {
  const auto r = meanStdDev(full(16, 16, U8C1, 42));
  EXPECT_DOUBLE_EQ(r.mean, 42.0);
  EXPECT_NEAR(r.stddev, 0.0, 1e-9);
}

TEST(Norms, Validation) {
  Mat empty;
  EXPECT_THROW(norm(empty), Error);
  Mat a(2, 2, U8C1), b(2, 3, U8C1);
  EXPECT_THROW(normDiff(a, b), Error);
}

}  // namespace
}  // namespace simdcv::core
