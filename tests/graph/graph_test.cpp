// Pipeline-graph engine: builder validation, fusibility rules, fused-vs-
// staged bit-exactness on edge-case geometries (1x1, 1xW, Hx1), all border
// modes, ROI/non-contiguous sources, ksize-1 stages, adversarial band
// heights, and the fuse-decision model.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "core/convert.hpp"
#include "graph/graph.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/threshold.hpp"
#include "platform/platform.hpp"
#include "simd/features.hpp"

namespace simdcv::graph {
namespace {

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Avx2, KernelPath::Neon};
}

std::vector<imgproc::BorderType> allBorders() {
  return {imgproc::BorderType::Constant, imgproc::BorderType::Replicate,
          imgproc::BorderType::Reflect, imgproc::BorderType::Reflect101,
          imgproc::BorderType::Wrap};
}

Mat randomMat(int rows, int cols, Depth d, unsigned seed) {
  Mat m(rows, cols, PixelType(d, 1));
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const std::uint32_t v = rng();
      switch (d) {
        case Depth::U8:
          m.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(v & 0xff);
          break;
        case Depth::S16:
          m.at<std::int16_t>(r, c) = static_cast<std::int16_t>(v & 0xffff);
          break;
        default:
          m.at<float>(r, c) =
              static_cast<float>(static_cast<int>(v & 0xffff) - 32768) / 64.0f;
          break;
      }
    }
  return m;
}

// The test pipeline exercising every fused stage kind plus a multi-consumer
// node: cvt F32 -> blur -> pointwise -> {conv, blend} -> cvt U8.
Graph photoGraph() { return makePhotoGraph(5, 0.9, 7, 1.4, 1.12, -8.0, 1.4); }

void expectFusedMatchesStaged(const Graph& g, const Mat& src,
                              const char* what) {
  Mat ref;
  g.runStaged(src, ref, KernelPath::ScalarNoVec);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat staged, fused;
    g.runStaged(src, staged, p);
    EXPECT_EQ(countMismatches(ref, staged), 0u)
        << what << " staged " << toString(p);
    g.runFused(src, fused, p);
    EXPECT_EQ(countMismatches(ref, fused), 0u)
        << what << " fused " << toString(p);
  }
}

// ---- builder validation ----------------------------------------------------

TEST(GraphBuild, ValidatesEagerly) {
  Graph g;
  EXPECT_THROW(g.sepConv(0, {1.f}, {1.f}, Depth::U8), Error);  // no source yet
  const NodeId s = g.source(Depth::U8);
  EXPECT_THROW(g.source(Depth::U8), Error);  // second source
  EXPECT_THROW(g.sepConv(s, {1.f, 1.f}, {1.f}, Depth::U8), Error);  // even kx
  EXPECT_THROW(g.sepConv(s, {}, {1.f}, Depth::U8), Error);          // empty kx
  EXPECT_THROW(g.sepConv(7, {1.f}, {1.f}, Depth::U8), Error);  // bad input id
  EXPECT_THROW(g.magnitude(s, s), Error);  // magnitude wants s16 inputs
  const NodeId t = g.threshold(s, 10, 255, imgproc::ThresholdType::Binary);
  const NodeId dangling = g.convert(s, Depth::F32);
  (void)dangling;
  EXPECT_THROW(g.sink(t), Error);  // dangling node never reaches the sink
}

TEST(GraphBuild, S16ConvInputRejected) {
  Graph g;
  const NodeId s = g.source(Depth::U8);
  const NodeId c = g.convert(s, Depth::S16);
  EXPECT_THROW(g.sepConv(c, {1.f}, {1.f}, Depth::S16), Error);
}

TEST(GraphBuild, FrozenAfterSink) {
  Graph g;
  const NodeId s = g.source(Depth::U8);
  g.sink(g.threshold(s, 10, 255, imgproc::ThresholdType::Binary));
  EXPECT_TRUE(g.finalized());
  EXPECT_THROW(g.convert(0, Depth::F32), Error);
  EXPECT_THROW(g.sink(0), Error);
}

TEST(GraphBuild, AddWeightedDepthsMustMatch) {
  Graph g;
  const NodeId s = g.source(Depth::U8);
  const NodeId f = g.convert(s, Depth::F32);
  EXPECT_THROW(g.addWeighted(s, 0.5, f, 0.5, 0.0), Error);
}

// ---- fusibility + introspection --------------------------------------------

TEST(GraphIntrospect, OpaqueNeverFusible) {
  Graph g;
  const NodeId s = g.source(Depth::U8);
  g.sink(g.opaque(s, "nop", Depth::U8,
                  [](const Mat& a, Mat& d, KernelPath) { a.copyTo(d); }));
  EXPECT_FALSE(g.fusible());
  const Mat src = randomMat(9, 11, Depth::U8, 1);
  Mat run, staged;
  g.run(src, run);  // dispatches staged
  g.runStaged(src, staged);
  EXPECT_EQ(countMismatches(run, staged), 0u);
  EXPECT_THROW(g.runFused(src, run), Error);
}

TEST(GraphIntrospect, WrapOnInteriorStageNotFusible) {
  Graph src0;  // Wrap reading the source: streamable
  NodeId s = src0.source(Depth::U8);
  src0.sink(src0.sepConv(s, {1.f, 2.f, 1.f}, {1.f, 0.f, -1.f}, Depth::S16,
                         imgproc::BorderType::Wrap));
  EXPECT_TRUE(src0.fusible());

  Graph inner;  // Wrap reading an interior stage: needs random access
  s = inner.source(Depth::U8);
  const NodeId blur = inner.sepConv(s, {0.25f, 0.5f, 0.25f},
                                    {0.25f, 0.5f, 0.25f}, Depth::U8);
  inner.sink(inner.sepConv(blur, {1.f, 2.f, 1.f}, {1.f, 0.f, -1.f},
                           Depth::S16, imgproc::BorderType::Wrap));
  EXPECT_FALSE(inner.fusible());
  // run() still works — it degrades to the staged schedule.
  const Mat m = randomMat(8, 9, Depth::U8, 2);
  Mat a, b;
  inner.run(m, a);
  inner.runStaged(m, b);
  EXPECT_EQ(countMismatches(a, b), 0u);
}

TEST(GraphIntrospect, SignatureAndStagedBytes) {
  const Graph g = makeEdgeGraph(Depth::U8, 100.0, 3,
                                imgproc::BorderType::Reflect101);
  EXPECT_EQ(g.signature(), "g.sep3x3s16.sep3x3s16@0.mag@1-2.thru8t0");
  // Intermediates: two S16 gradients + the U8 magnitude = 5 bytes/px — the
  // exact footprint edgeDetect's fuse heuristic prices.
  EXPECT_EQ(g.stagedBytes(640, 480), 640u * 480u * 5u);
  // Per-node introspection: derived live-window radii.
  EXPECT_EQ(g.node(1).radius, 0);  // gx feeds element-wise magnitude only
  EXPECT_EQ(g.node(g.sinkId()).radius, 0);
}

TEST(GraphIntrospect, RadiiAccumulateAcrossConvolutions) {
  const Graph g = photoGraph();
  // source -> cvt(1) -> blur5(2) -> pointwise(3) -> blur7(4) ->
  // addWeighted(5, reads 3 and 4) -> cvt(6, sink)
  EXPECT_EQ(g.node(3).radius, 3);  // kept live across the 7-tap blur
  EXPECT_EQ(g.node(1).radius, 5);  // blur5's window plus blur5's own hold
  EXPECT_EQ(g.node(0).radius, 5);  // seam depth: both blurs stacked
  EXPECT_TRUE(g.fusible());
}

TEST(GraphIntrospect, FuseProfitableModel) {
  const Graph g = makeEdgeGraph(Depth::U8, 100.0, 3,
                                imgproc::BorderType::Reflect101);
  // Non-AVX2 paths: always fused (matches imgproc::detail::fuseProfitable).
  EXPECT_TRUE(g.fuseProfitable(640, 480, KernelPath::Sse2));
  EXPECT_TRUE(g.fuseProfitable(64, 48, KernelPath::ScalarNoVec));
  if (pathAvailable(KernelPath::Avx2)) {
    const std::size_t l2 = platform::queryHost().l2_kb * 1024u;
    // Tiny image: intermediates fit in L2 -> staged wins on AVX2.
    EXPECT_FALSE(g.fuseProfitable(64, 48, KernelPath::Avx2));
    // Huge image: intermediates spill -> fused.
    const int bigRows = static_cast<int>(l2 / (5 * 1024)) + 64;
    EXPECT_TRUE(g.fuseProfitable(1024, bigRows, KernelPath::Avx2));
  }
  // A single-stage graph has no intermediates to save.
  const Graph one = makeThresholdGraph(Depth::U8, 128, 255,
                                       imgproc::ThresholdType::Binary);
  EXPECT_EQ(one.stagedBytes(640, 480), 0u);
}

// ---- fused == staged: stage vocabulary & prebuilt chains --------------------

TEST(GraphExec, EdgeGraphMatchesEdgeDetectUnfused) {
  const Mat src = randomMat(31, 29, Depth::U8, 3);
  for (int ksize : {3, 5}) {
    const Graph g = makeEdgeGraph(Depth::U8, 120.0, ksize,
                                  imgproc::BorderType::Reflect101);
    Mat ref;
    imgproc::edgeDetectUnfused(src, ref, 120.0, ksize,
                               imgproc::BorderType::Reflect101,
                               KernelPath::ScalarNoVec);
    Mat staged, fused;
    g.runStaged(src, staged, KernelPath::ScalarNoVec);
    EXPECT_EQ(countMismatches(ref, staged), 0u) << "ksize=" << ksize;
    expectFusedMatchesStaged(g, src, "edge");
  }
}

TEST(GraphExec, PhotoGraphAllStageKinds) {
  const Graph g = photoGraph();
  expectFusedMatchesStaged(g, randomMat(37, 41, Depth::U8, 4), "photo");
}

TEST(GraphExec, BlurSobelThreshold) {
  const Graph g = makeBlurSobelThresholdGraph(
      Depth::U8, 5, 1.1, 3, 700.0, imgproc::BorderType::Replicate);
  expectFusedMatchesStaged(g, randomMat(26, 33, Depth::U8, 5), "bst");
}

TEST(GraphExec, SingleNodeGraphIsACopy) {
  Graph g;
  g.sink(g.source(Depth::S16));
  const Mat src = randomMat(7, 9, Depth::S16, 6);
  Mat a, b;
  g.run(src, a);
  g.runFused(src, b);
  EXPECT_EQ(countMismatches(src, a), 0u);
  EXPECT_EQ(countMismatches(src, b), 0u);
}

TEST(GraphExec, KsizeOneStages) {
  // 1x1 "convolutions" (pure scaling taps) still stream: radius 0, ring
  // height 1, no padding.
  Graph g;
  const NodeId s = g.source(Depth::U8);
  const NodeId a = g.sepConv(s, {2.0f}, {1.5f}, Depth::F32);
  g.sink(g.threshold(a, 300.0, 999.0, imgproc::ThresholdType::Trunc));
  EXPECT_TRUE(g.fusible());
  expectFusedMatchesStaged(g, randomMat(13, 17, Depth::U8, 7), "ksize1");
}

TEST(GraphExec, MixedKernelWidths1x5And5x1) {
  Graph g;
  const NodeId s = g.source(Depth::F32);
  const NodeId h = g.sepConv(s, {.1f, .2f, .4f, .2f, .1f}, {1.f}, Depth::F32);
  g.sink(g.sepConv(h, {1.f}, {.1f, .2f, .4f, .2f, .1f}, Depth::F32));
  expectFusedMatchesStaged(g, randomMat(12, 19, Depth::F32, 8), "separated");
}

// ---- geometry edge cases ---------------------------------------------------

TEST(GraphExec, DegenerateGeometries) {
  for (const auto& [rows, cols] : std::vector<std::pair<int, int>>{
           {1, 1}, {1, 37}, {37, 1}, {2, 2}, {3, 5}}) {
    const Mat src = randomMat(rows, cols, Depth::U8, 9);
    expectFusedMatchesStaged(
        makeEdgeGraph(Depth::U8, 90.0, 3, imgproc::BorderType::Reflect101),
        src, "edge-geometry");
    expectFusedMatchesStaged(photoGraph(), src, "photo-geometry");
  }
}

TEST(GraphExec, AllBorderModes) {
  const Mat src = randomMat(11, 14, Depth::U8, 10);
  for (imgproc::BorderType b : allBorders()) {
    expectFusedMatchesStaged(makeEdgeGraph(Depth::U8, 90.0, 5, b), src,
                             toString(b));
  }
}

TEST(GraphExec, RoiNonContiguousSource) {
  const Mat parent = randomMat(40, 50, Depth::U8, 11);
  for (const Rect& r : std::vector<Rect>{
           {5, 3, 30, 20}, {1, 0, 40, 1}, {0, 7, 1, 30}, {1, 1, 48, 38}}) {
    const Mat roi = parent.roi(r);
    ASSERT_TRUE(roi.rows() == 1 || !roi.isContinuous());
    expectFusedMatchesStaged(
        makeEdgeGraph(Depth::U8, 120.0, 3, imgproc::BorderType::Replicate),
        roi, "roi-edge");
    expectFusedMatchesStaged(photoGraph(), roi, "roi-photo");
  }
}

TEST(GraphExec, InPlaceDstAliasingSrc) {
  const Graph g = makeThresholdGraph(Depth::U8, 100, 255,
                                     imgproc::ThresholdType::Binary);
  const Mat src = randomMat(15, 21, Depth::U8, 12);
  Mat ref;
  g.runStaged(src, ref);
  Mat inplace;
  src.copyTo(inplace);
  g.runFused(inplace, inplace);
  EXPECT_EQ(countMismatches(ref, inplace), 0u);
}

// ---- band partitions -------------------------------------------------------

TEST(GraphExec, BandSeamsBitExactAllHeights) {
  const Graph g = photoGraph();  // seam depth 5: deepest prebuilt chain
  const Mat src = randomMat(23, 17, Depth::U8, 13);
  Mat ref;
  g.runStaged(src, ref, KernelPath::ScalarNoVec);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    // Heights splitting inside the 7-row kernel footprint (1, 2, 6), at it
    // (7), and a single seam (rows-1).
    for (int bandRows : {1, 2, 6, 7, src.rows() - 1, src.rows()}) {
      Mat got;
      detail::runFusedBanded(g, src, got, p, bandRows);
      EXPECT_EQ(countMismatches(ref, got), 0u)
          << toString(p) << " bandRows=" << bandRows;
    }
  }
}

TEST(GraphExec, ThresholdDegenerateLevels) {
  // Degenerate U8 levels collapse to fills/copies; the fused executor must
  // reproduce the staged dispatcher's per-type table.
  const Mat src = randomMat(9, 13, Depth::U8, 14);
  for (double thresh : {-5.0, 255.0, 300.0}) {
    for (auto t : {imgproc::ThresholdType::Binary,
                   imgproc::ThresholdType::BinaryInv,
                   imgproc::ThresholdType::Trunc,
                   imgproc::ThresholdType::ToZero,
                   imgproc::ThresholdType::ToZeroInv}) {
      Graph g;
      const NodeId s = g.source(Depth::U8);
      const NodeId blur = g.sepConv(s, {.25f, .5f, .25f}, {.25f, .5f, .25f},
                                    Depth::U8);
      g.sink(g.threshold(blur, thresh, 255.0, t));
      expectFusedMatchesStaged(g, src, "degenerate-threshold");
    }
  }
}

// run() must be pure scheduling: same bits whichever side the decision takes.
TEST(GraphExec, RunDispatchMatchesBothSchedules) {
  const Graph g = makeEdgeGraph(Depth::U8, 100.0, 3,
                                imgproc::BorderType::Reflect101);
  for (const auto& [rows, cols] :
       std::vector<std::pair<int, int>>{{48, 64}, {480, 640}}) {
    const Mat src = randomMat(rows, cols, Depth::U8, 15);
    Mat run, staged;
    g.run(src, run);
    g.runStaged(src, staged);
    EXPECT_EQ(countMismatches(run, staged), 0u) << rows << "x" << cols;
  }
}

}  // namespace
}  // namespace simdcv::graph
