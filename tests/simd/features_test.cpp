// CPU feature detection and kernel-path resolution.
#include "simd/features.hpp"

#include <gtest/gtest.h>

namespace simdcv {
namespace {

TEST(CpuFeatures, DetectionIsStableAndSane) {
  const CpuFeatures& a = cpuFeatures();
  const CpuFeatures& b = cpuFeatures();
  EXPECT_EQ(&a, &b);  // cached singleton
  EXPECT_GE(a.logical_cpus, 1);
#if defined(__x86_64__)
  EXPECT_TRUE(a.sse2);  // x86-64 baseline guarantees SSE2
  EXPECT_FALSE(a.vendor.empty());
  EXPECT_TRUE(a.neon_emulated);
  EXPECT_FALSE(a.neon);
#endif
}

TEST(KernelPath, ToStringCoversAll) {
  EXPECT_STREQ(toString(KernelPath::Auto), "auto");
  EXPECT_STREQ(toString(KernelPath::Sse2), "sse2");
  EXPECT_STREQ(toString(KernelPath::Neon), "neon");
  EXPECT_STREQ(toString(KernelPath::ScalarNoVec), "scalar-novec");
  EXPECT_STREQ(toString(KernelPath::Default), "default");
}

TEST(KernelPath, ScalarPathsAlwaysAvailable) {
  EXPECT_TRUE(pathAvailable(KernelPath::Auto));
  EXPECT_TRUE(pathAvailable(KernelPath::ScalarNoVec));
  EXPECT_TRUE(pathAvailable(KernelPath::Default));
}

TEST(KernelPath, NeonAvailableViaEmulation) {
  EXPECT_TRUE(pathAvailable(KernelPath::Neon));
}

TEST(KernelPath, UseOptimizedTogglesDefault) {
  setUseOptimized(true);
  const KernelPath opt = resolvePath(KernelPath::Default);
  EXPECT_NE(opt, KernelPath::Auto);  // some HAND path exists on any host we test
  setUseOptimized(false);
  EXPECT_EQ(resolvePath(KernelPath::Default), KernelPath::Auto);
  setUseOptimized(true);
}

TEST(KernelPath, PreferredPathOverride) {
  setPreferredPath(KernelPath::Neon);
  EXPECT_EQ(preferredPath(), KernelPath::Neon);
  EXPECT_EQ(resolvePath(KernelPath::Default), KernelPath::Neon);
  setPreferredPath(KernelPath::Default);  // restore
#if defined(__x86_64__)
  EXPECT_EQ(preferredPath(), KernelPath::Sse2);
#endif
}

TEST(KernelPath, ExplicitRequestPassesThrough) {
  EXPECT_EQ(resolvePath(KernelPath::Sse2),
            pathAvailable(KernelPath::Sse2) ? KernelPath::Sse2 : KernelPath::Auto);
  EXPECT_EQ(resolvePath(KernelPath::ScalarNoVec), KernelPath::ScalarNoVec);
}

}  // namespace
}  // namespace simdcv
