// NEON emulation — arithmetic family semantics: wrapping, saturating,
// halving, widening, pairwise, absolute difference, estimates.
#include "simd/neon_compat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace {

TEST(NeonArith, WrappingAddSub) {
  const uint8x16_t a = vdupq_n_u8(250);
  const uint8x16_t b = vdupq_n_u8(10);
  EXPECT_EQ(vgetq_lane_u8(vaddq_u8(a, b), 0), 4);   // wraps mod 256
  EXPECT_EQ(vgetq_lane_u8(vsubq_u8(b, a), 0), 16);  // wraps
  const int16x8_t c = vdupq_n_s16(32767);
  EXPECT_EQ(vgetq_lane_s16(vaddq_s16(c, vdupq_n_s16(1)), 3), -32768);
}

TEST(NeonArith, SaturatingAdd) {
  EXPECT_EQ(vgetq_lane_u8(vqaddq_u8(vdupq_n_u8(250), vdupq_n_u8(10)), 0), 255);
  EXPECT_EQ(vgetq_lane_s8(vqaddq_s8(vdupq_n_s8(120), vdupq_n_s8(10)), 0), 127);
  EXPECT_EQ(vgetq_lane_s8(vqaddq_s8(vdupq_n_s8(-120), vdupq_n_s8(-10)), 0), -128);
  EXPECT_EQ(vgetq_lane_s16(vqaddq_s16(vdupq_n_s16(32000), vdupq_n_s16(1000)), 7), 32767);
  EXPECT_EQ(vgetq_lane_s32(vqaddq_s32(vdupq_n_s32(2147483000), vdupq_n_s32(1000)), 0),
            2147483647);
  // Non-saturating case passes through exactly.
  EXPECT_EQ(vgetq_lane_s16(vqaddq_s16(vdupq_n_s16(100), vdupq_n_s16(-300)), 0), -200);
}

TEST(NeonArith, SaturatingSub) {
  EXPECT_EQ(vgetq_lane_u8(vqsubq_u8(vdupq_n_u8(10), vdupq_n_u8(50)), 0), 0);
  EXPECT_EQ(vgetq_lane_s16(vqsubq_s16(vdupq_n_s16(-32000), vdupq_n_s16(1000)), 0),
            -32768);
  EXPECT_EQ(vgetq_lane_u16(vqsubq_u16(vdupq_n_u16(500), vdupq_n_u16(100)), 0), 400);
}

TEST(NeonArith, HalvingAdds) {
  // vhadd floors, vrhadd rounds.
  EXPECT_EQ(vgetq_lane_u8(vhaddq_u8(vdupq_n_u8(5), vdupq_n_u8(6)), 0), 5);
  EXPECT_EQ(vgetq_lane_u8(vrhaddq_u8(vdupq_n_u8(5), vdupq_n_u8(6)), 0), 6);
  // No intermediate overflow at the top of the range.
  EXPECT_EQ(vgetq_lane_u8(vhaddq_u8(vdupq_n_u8(255), vdupq_n_u8(255)), 0), 255);
  EXPECT_EQ(vgetq_lane_s16(vhaddq_s16(vdupq_n_s16(-3), vdupq_n_s16(0)), 0), -2);  // floor(-1.5)
  EXPECT_EQ(vgetq_lane_s8(vhsubq_s8(vdupq_n_s8(1), vdupq_n_s8(4)), 0), -2);  // floor(-1.5)
}

TEST(NeonArith, MultiplyAndAccumulate) {
  const float32x4_t a = vdupq_n_f32(2.0f);
  const float32x4_t b = vdupq_n_f32(3.0f);
  const float32x4_t c = vdupq_n_f32(10.0f);
  EXPECT_EQ(vgetq_lane_f32(vmulq_f32(a, b), 0), 6.0f);
  EXPECT_EQ(vgetq_lane_f32(vmlaq_f32(c, a, b), 1), 16.0f);
  EXPECT_EQ(vgetq_lane_f32(vmlsq_f32(c, a, b), 2), 4.0f);
  EXPECT_EQ(vgetq_lane_f32(vmulq_n_f32(a, 5.0f), 3), 10.0f);
  EXPECT_EQ(vgetq_lane_f32(vmlaq_n_f32(c, a, 5.0f), 0), 20.0f);
  const int16x8_t i = vdupq_n_s16(300);
  EXPECT_EQ(vgetq_lane_s16(vmulq_s16(i, vdupq_n_s16(100)), 0),
            static_cast<std::int16_t>(30000));
  // Integer multiply wraps.
  EXPECT_EQ(vgetq_lane_s16(vmulq_s16(i, vdupq_n_s16(300)), 0),
            static_cast<std::int16_t>(90000 & 0xffff));
}

TEST(NeonArith, WideningMultiply) {
  const std::int16_t av[4] = {300, -300, 32767, -32768};
  const std::int16_t bv[4] = {300, 300, 32767, -32768};
  const int32x4_t w = vmull_s16(vld1_s16(av), vld1_s16(bv));
  EXPECT_EQ(vgetq_lane_s32(w, 0), 90000);
  EXPECT_EQ(vgetq_lane_s32(w, 1), -90000);
  EXPECT_EQ(vgetq_lane_s32(w, 2), 32767 * 32767);
  EXPECT_EQ(vgetq_lane_s32(w, 3), 32768 * 32768);
  const uint8x8_t u = vdup_n_u8(200);
  EXPECT_EQ(vgetq_lane_u16(vmull_u8(u, u), 0), 40000);
}

TEST(NeonArith, WideningAddSubAccumulate) {
  const std::int8_t av[8] = {100, -100, 127, -128, 0, 1, 2, 3};
  const int8x8_t a = vld1_s8(av);
  const int16x8_t l = vaddl_s8(a, a);
  EXPECT_EQ(vgetq_lane_s16(l, 0), 200);
  EXPECT_EQ(vgetq_lane_s16(l, 3), -256);
  const int16x8_t acc = vmlal_s8(l, a, a);
  EXPECT_EQ(vgetq_lane_s16(acc, 0), 200 + 10000);
  const int16x8_t wide = vaddw_s8(l, a);
  EXPECT_EQ(vgetq_lane_s16(wide, 2), 127 * 2 + 127);
  EXPECT_EQ(vgetq_lane_s16(vsubl_s8(a, vdup_n_s8(100)), 3), -228);
}

TEST(NeonArith, MovlWidens) {
  const std::uint8_t uv[8] = {0, 1, 128, 255, 4, 5, 6, 7};
  const uint16x8_t w = vmovl_u8(vld1_u8(uv));
  EXPECT_EQ(vgetq_lane_u16(w, 2), 128);
  EXPECT_EQ(vgetq_lane_u16(w, 3), 255);
  const std::int16_t sv[4] = {-32768, -1, 0, 32767};
  const int32x4_t ws = vmovl_s16(vld1_s16(sv));
  EXPECT_EQ(vgetq_lane_s32(ws, 0), -32768);
  EXPECT_EQ(vgetq_lane_s32(ws, 3), 32767);
}

TEST(NeonArith, MinMax) {
  const std::uint8_t av[16] = {0, 255, 10, 20, 5, 5, 200, 100,
                               1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint8_t bv[16] = {255, 0, 20, 10, 5, 6, 100, 200,
                               8, 7, 6, 5, 4, 3, 2, 1};
  const uint8x16_t a = vld1q_u8(av), b = vld1q_u8(bv);
  EXPECT_EQ(vgetq_lane_u8(vminq_u8(a, b), 0), 0);
  EXPECT_EQ(vgetq_lane_u8(vmaxq_u8(a, b), 0), 255);
  EXPECT_EQ(vgetq_lane_u8(vminq_u8(a, b), 6), 100);
  const float32x4_t f = vdupq_n_f32(-1.5f);
  EXPECT_EQ(vgetq_lane_f32(vmaxq_f32(f, vdupq_n_f32(0.0f)), 0), 0.0f);
  EXPECT_EQ(vgetq_lane_f32(vminq_f32(f, vdupq_n_f32(0.0f)), 0), -1.5f);
  const int16x4_t s = vdup_n_s16(-5);
  EXPECT_EQ(vget_lane_s16(vmax_s16(s, vdup_n_s16(3)), 0), 3);
}

TEST(NeonArith, AbsAndNegate) {
  EXPECT_EQ(vgetq_lane_s16(vabsq_s16(vdupq_n_s16(-100)), 0), 100);
  // vabs of INT_MIN wraps; vqabs saturates — architectural difference.
  EXPECT_EQ(vgetq_lane_s16(vabsq_s16(vdupq_n_s16(-32768)), 0), -32768);
  EXPECT_EQ(vgetq_lane_s16(vqabsq_s16(vdupq_n_s16(-32768)), 0), 32767);
  EXPECT_EQ(vgetq_lane_s8(vqabsq_s8(vdupq_n_s8(-128)), 0), 127);
  EXPECT_EQ(vgetq_lane_s32(vnegq_s32(vdupq_n_s32(7)), 0), -7);
  EXPECT_EQ(vgetq_lane_f32(vabsq_f32(vdupq_n_f32(-2.5f)), 0), 2.5f);
  EXPECT_EQ(vgetq_lane_f32(vnegq_f32(vdupq_n_f32(-2.5f)), 0), 2.5f);
}

TEST(NeonArith, AbsoluteDifference) {
  // Unsigned |a-b| must not underflow.
  EXPECT_EQ(vgetq_lane_u8(vabdq_u8(vdupq_n_u8(10), vdupq_n_u8(250)), 0), 240);
  EXPECT_EQ(vgetq_lane_u8(vabdq_u8(vdupq_n_u8(250), vdupq_n_u8(10)), 0), 240);
  EXPECT_EQ(vgetq_lane_s16(vabdq_s16(vdupq_n_s16(-100), vdupq_n_s16(100)), 0), 200);
  EXPECT_EQ(vgetq_lane_f32(vabdq_f32(vdupq_n_f32(1.5f), vdupq_n_f32(-1.0f)), 0), 2.5f);
  // Accumulating form.
  EXPECT_EQ(vgetq_lane_u8(vabaq_u8(vdupq_n_u8(5), vdupq_n_u8(10), vdupq_n_u8(12)), 0), 7);
}

TEST(NeonArith, PairwiseAdd) {
  const std::int16_t av[4] = {1, 2, 3, 4};
  const std::int16_t bv[4] = {10, 20, 30, 40};
  const int16x4_t r = vpadd_s16(vld1_s16(av), vld1_s16(bv));
  EXPECT_EQ(vget_lane_s16(r, 0), 3);
  EXPECT_EQ(vget_lane_s16(r, 1), 7);
  EXPECT_EQ(vget_lane_s16(r, 2), 30);
  EXPECT_EQ(vget_lane_s16(r, 3), 70);
  const float fv[2] = {1.5f, 2.5f};
  const float32x2_t fr = vpadd_f32(vld1_f32(fv), vld1_f32(fv));
  EXPECT_EQ(vget_lane_f32(fr, 0), 4.0f);
}

TEST(NeonArith, PairwiseWideningAddAndAccumulate) {
  std::uint8_t buf[16];
  for (int i = 0; i < 16; ++i) buf[i] = 255;
  const uint16x8_t l = vpaddlq_u8(vld1q_u8(buf));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(vgetq_lane_u16(l, i), 510);
  const uint16x8_t acc = vpadalq_u8(l, vld1q_u8(buf));
  EXPECT_EQ(vgetq_lane_u16(acc, 0), 1020);
  const std::int16_t sv[4] = {-30000, -30000, 30000, 30000};
  const int32x2_t w = vpaddl_s16(vld1_s16(sv));
  EXPECT_EQ(vget_lane_s32(w, 0), -60000);
  EXPECT_EQ(vget_lane_s32(w, 1), 60000);
}

TEST(NeonArith, PairwiseMinMax) {
  const std::uint8_t av[8] = {1, 9, 4, 2, 7, 7, 0, 255};
  const uint8x8_t a = vld1_u8(av);
  const uint8x8_t mx = vpmax_u8(a, a);
  EXPECT_EQ(vget_lane_u8(mx, 0), 9);
  EXPECT_EQ(vget_lane_u8(mx, 1), 4);
  EXPECT_EQ(vget_lane_u8(mx, 3), 255);
  const uint8x8_t mn = vpmin_u8(a, a);
  EXPECT_EQ(vget_lane_u8(mn, 0), 1);
  EXPECT_EQ(vget_lane_u8(mn, 3), 0);
}

TEST(NeonArith, ReciprocalEstimateAndStep) {
  // Emulation returns correctly rounded values; Newton iteration with
  // vrecps must converge to 1/x regardless of estimate precision.
  const float32x4_t x = vdupq_n_f32(3.0f);
  float32x4_t e = vrecpeq_f32(x);
  e = vmulq_f32(e, vrecpsq_f32(x, e));
  EXPECT_NEAR(vgetq_lane_f32(e, 0), 1.0f / 3.0f, 1e-6f);
  float32x4_t r = vrsqrteq_f32(x);
  r = vmulq_f32(r, vrsqrtsq_f32(vmulq_f32(x, r), r));
  EXPECT_NEAR(vgetq_lane_f32(r, 0), 1.0f / std::sqrt(3.0f), 1e-4f);
}

TEST(NeonArith, PropertySweepSaturatingMatchesWideMath) {
  // vqadd_s16 == clamp(a+b) over a deterministic sweep of lane values.
  for (int a = -40000; a <= 40000; a += 7777) {
    for (int b = -40000; b <= 40000; b += 9999) {
      const std::int16_t sa = static_cast<std::int16_t>(a);
      const std::int16_t sb = static_cast<std::int16_t>(b);
      const int expect =
          std::min(32767, std::max(-32768, static_cast<int>(sa) + sb));
      const int16x8_t r = vqaddq_s16(vdupq_n_s16(sa), vdupq_n_s16(sb));
      ASSERT_EQ(vgetq_lane_s16(r, 5), expect) << sa << "+" << sb;
    }
  }
}

}  // namespace
