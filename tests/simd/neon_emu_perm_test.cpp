// NEON emulation — permutes: ext, rev, zip/uzp/trn, table lookup.
#include "simd/neon_compat.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace {

uint8x16_t iotaU8() {
  std::uint8_t v[16];
  for (int i = 0; i < 16; ++i) v[i] = static_cast<std::uint8_t>(i);
  return vld1q_u8(v);
}

TEST(NeonExt, ExtractsAcrossPair) {
  const uint8x16_t a = iotaU8();
  uint8x16_t b;
  {
    std::uint8_t v[16];
    for (int i = 0; i < 16; ++i) v[i] = static_cast<std::uint8_t>(100 + i);
    b = vld1q_u8(v);
  }
  const uint8x16_t r = vextq_u8(a, b, 3);
  EXPECT_EQ(vgetq_lane_u8(r, 0), 3);
  EXPECT_EQ(vgetq_lane_u8(r, 12), 15);
  EXPECT_EQ(vgetq_lane_u8(r, 13), 100);
  EXPECT_EQ(vgetq_lane_u8(r, 15), 102);
  // n == 0 is identity on a.
  const uint8x16_t id = vextq_u8(a, b, 0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(vgetq_lane_u8(id, i), i);
  // Float variant (used by sliding-window row convolution).
  const float fa[4] = {0, 1, 2, 3}, fb[4] = {4, 5, 6, 7};
  const float32x4_t fr = vextq_f32(vld1q_f32(fa), vld1q_f32(fb), 1);
  EXPECT_EQ(vgetq_lane_f32(fr, 0), 1.0f);
  EXPECT_EQ(vgetq_lane_f32(fr, 3), 4.0f);
}

TEST(NeonRev, Rev64ReversesWithinDoublewords) {
  const uint8x16_t r = vrev64q_u8(iotaU8());
  EXPECT_EQ(vgetq_lane_u8(r, 0), 7);
  EXPECT_EQ(vgetq_lane_u8(r, 7), 0);
  EXPECT_EQ(vgetq_lane_u8(r, 8), 15);
  EXPECT_EQ(vgetq_lane_u8(r, 15), 8);
  const std::int16_t sv[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  const int16x8_t sr = vrev64q_s16(vld1q_s16(sv));
  EXPECT_EQ(vgetq_lane_s16(sr, 0), 3);
  EXPECT_EQ(vgetq_lane_s16(sr, 4), 7);
}

TEST(NeonRev, Rev16SwapsBytePairs) {
  const uint8x16_t r = vrev16q_u8(iotaU8());
  EXPECT_EQ(vgetq_lane_u8(r, 0), 1);
  EXPECT_EQ(vgetq_lane_u8(r, 1), 0);
  EXPECT_EQ(vgetq_lane_u8(r, 14), 15);
  EXPECT_EQ(vgetq_lane_u8(r, 15), 14);
}

TEST(NeonRev, Rev32OnU16) {
  const std::uint16_t v[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  const uint16x8_t r = vrev32q_u16(vld1q_u16(v));
  EXPECT_EQ(vgetq_lane_u16(r, 0), 1);
  EXPECT_EQ(vgetq_lane_u16(r, 1), 0);
  EXPECT_EQ(vgetq_lane_u16(r, 6), 7);
}

TEST(NeonZip, InterleavesHalves) {
  const std::int16_t av[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::int16_t bv[8] = {10, 11, 12, 13, 14, 15, 16, 17};
  const int16x8x2_t z = vzipq_s16(vld1q_s16(av), vld1q_s16(bv));
  const std::int16_t want0[8] = {0, 10, 1, 11, 2, 12, 3, 13};
  const std::int16_t want1[8] = {4, 14, 5, 15, 6, 16, 7, 17};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(vgetq_lane_s16(z.val[0], i), want0[i]);
    EXPECT_EQ(vgetq_lane_s16(z.val[1], i), want1[i]);
  }
}

TEST(NeonUzp, DeinterleavesEvenOdd) {
  const std::int16_t av[8] = {0, 10, 1, 11, 2, 12, 3, 13};
  const std::int16_t bv[8] = {4, 14, 5, 15, 6, 16, 7, 17};
  const int16x8x2_t u = vuzpq_s16(vld1q_s16(av), vld1q_s16(bv));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(vgetq_lane_s16(u.val[0], i), i);       // evens: 0..7
    EXPECT_EQ(vgetq_lane_s16(u.val[1], i), 10 + i);  // odds: 10..17
  }
}

TEST(NeonZipUzp, AreInverses) {
  const std::uint8_t av[8] = {3, 1, 4, 1, 5, 9, 2, 6};
  const std::uint8_t bv[8] = {8, 6, 7, 5, 3, 0, 9, 2};
  const uint8x8x2_t z = vzip_u8(vld1_u8(av), vld1_u8(bv));
  const uint8x8x2_t u = vuzp_u8(z.val[0], z.val[1]);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(vget_lane_u8(u.val[0], i), av[i]);
    EXPECT_EQ(vget_lane_u8(u.val[1], i), bv[i]);
  }
}

TEST(NeonTrn, TransposesPairs) {
  const std::int32_t av[4] = {0, 1, 2, 3};
  const std::int32_t bv[4] = {10, 11, 12, 13};
  const int32x4x2_t t = vtrnq_s32(vld1q_s32(av), vld1q_s32(bv));
  const std::int32_t want0[4] = {0, 10, 2, 12};
  const std::int32_t want1[4] = {1, 11, 3, 13};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(vgetq_lane_s32(t.val[0], i), want0[i]);
    EXPECT_EQ(vgetq_lane_s32(t.val[1], i), want1[i]);
  }
}

TEST(NeonTbl, LookupWithOutOfRangeZero) {
  const std::uint8_t table[8] = {10, 20, 30, 40, 50, 60, 70, 80};
  const std::uint8_t idx[8] = {0, 7, 3, 8, 255, 1, 2, 6};
  const uint8x8_t r = vtbl1_u8(vld1_u8(table), vld1_u8(idx));
  const std::uint8_t want[8] = {10, 80, 40, 0, 0, 20, 30, 70};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(vget_lane_u8(r, i), want[i]);
}

TEST(NeonTbl, Tbl2SpansTwoRegisters) {
  uint8x8x2_t table;
  {
    std::uint8_t t0[8], t1[8];
    for (int i = 0; i < 8; ++i) {
      t0[i] = static_cast<std::uint8_t>(i);
      t1[i] = static_cast<std::uint8_t>(100 + i);
    }
    table.val[0] = vld1_u8(t0);
    table.val[1] = vld1_u8(t1);
  }
  const std::uint8_t idx[8] = {0, 8, 15, 16, 7, 9, 200, 3};
  const uint8x8_t r = vtbl2_u8(table, vld1_u8(idx));
  const std::uint8_t want[8] = {0, 100, 107, 0, 7, 101, 0, 3};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(vget_lane_u8(r, i), want[i]);
}

TEST(NeonTbx, KeepsAccumulatorOutOfRange) {
  const std::uint8_t table[8] = {10, 20, 30, 40, 50, 60, 70, 80};
  const std::uint8_t acc[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint8_t idx[8] = {0, 99, 2, 99, 4, 99, 6, 99};
  const uint8x8_t r = vtbx1_u8(vld1_u8(acc), vld1_u8(table), vld1_u8(idx));
  const std::uint8_t want[8] = {10, 2, 30, 4, 50, 6, 70, 8};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(vget_lane_u8(r, i), want[i]);
}

}  // namespace
