// Typed property tests: algebraic laws of the NEON emulation, swept across
// every integer Q-register type with randomized lanes. Each law is checked
// against an independent scalar model.
#include "simd/neon_compat.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>

namespace {

// Per-type binding of the intrinsics under test.
template <typename E>
struct Ops;

#define SIMDCV_TYPED_OPS(ET, VT, SUF, N)                                      \
  template <>                                                                 \
  struct Ops<ET> {                                                            \
    using Elem = ET;                                                          \
    using Vec = VT;                                                           \
    static constexpr int lanes = N;                                           \
    static Vec load(const Elem* p) { return vld1q_##SUF(p); }                 \
    static void store(Elem* p, Vec v) { vst1q_##SUF(p, v); }                  \
    static Vec add(Vec a, Vec b) { return vaddq_##SUF(a, b); }                \
    static Vec sub(Vec a, Vec b) { return vsubq_##SUF(a, b); }                \
    static Vec qadd(Vec a, Vec b) { return vqaddq_##SUF(a, b); }              \
    static Vec qsub(Vec a, Vec b) { return vqsubq_##SUF(a, b); }              \
    static Vec vmin(Vec a, Vec b) { return vminq_##SUF(a, b); }               \
    static Vec vmax(Vec a, Vec b) { return vmaxq_##SUF(a, b); }               \
    static Vec vabd(Vec a, Vec b) { return vabdq_##SUF(a, b); }               \
    static auto cgt(Vec a, Vec b) { return vcgtq_##SUF(a, b); }               \
    static auto ceq(Vec a, Vec b) { return vceqq_##SUF(a, b); }               \
    static Vec dup(Elem v) { return vdupq_n_##SUF(v); }                       \
    static Vec ext(Vec a, Vec b, int n) { return vextq_##SUF(a, b, n); }      \
  };

SIMDCV_TYPED_OPS(std::int8_t, int8x16_t, s8, 16)
SIMDCV_TYPED_OPS(std::uint8_t, uint8x16_t, u8, 16)
SIMDCV_TYPED_OPS(std::int16_t, int16x8_t, s16, 8)
SIMDCV_TYPED_OPS(std::uint16_t, uint16x8_t, u16, 8)
SIMDCV_TYPED_OPS(std::int32_t, int32x4_t, s32, 4)
SIMDCV_TYPED_OPS(std::uint32_t, uint32x4_t, u32, 4)
#undef SIMDCV_TYPED_OPS

template <typename E>
class NeonLawsTest : public ::testing::Test {
 protected:
  using O = Ops<E>;
  static constexpr int N = O::lanes;

  void SetUp() override { rng_.seed(0xC0FFEE ^ sizeof(E)); }

  // Random lanes, biased toward the rails where saturation laws bite.
  std::array<E, Ops<E>::lanes> randomLanes() {
    std::array<E, N> a{};
    for (auto& v : a) {
      switch (rng_() % 5) {
        case 0: v = std::numeric_limits<E>::min(); break;
        case 1: v = std::numeric_limits<E>::max(); break;
        case 2: v = static_cast<E>(0); break;
        default: v = static_cast<E>(rng_()); break;
      }
    }
    return a;
  }

  std::mt19937 rng_;
};

using LaneTypes = ::testing::Types<std::int8_t, std::uint8_t, std::int16_t,
                                   std::uint16_t, std::int32_t, std::uint32_t>;
TYPED_TEST_SUITE(NeonLawsTest, LaneTypes);

TYPED_TEST(NeonLawsTest, LoadStoreRoundTrip) {
  using O = Ops<TypeParam>;
  for (int iter = 0; iter < 50; ++iter) {
    const auto in = this->randomLanes();
    std::array<TypeParam, O::lanes> out{};
    O::store(out.data(), O::load(in.data()));
    EXPECT_EQ(in, out);
  }
}

TYPED_TEST(NeonLawsTest, AddSubInverse) {
  using O = Ops<TypeParam>;
  for (int iter = 0; iter < 50; ++iter) {
    const auto a = this->randomLanes();
    const auto b = this->randomLanes();
    // (a + b) - b == a, even under modular wrap.
    std::array<TypeParam, O::lanes> out{};
    O::store(out.data(),
             O::sub(O::add(O::load(a.data()), O::load(b.data())), O::load(b.data())));
    EXPECT_EQ(out, a);
  }
}

TYPED_TEST(NeonLawsTest, SaturatingAddMatchesClampModel) {
  using O = Ops<TypeParam>;
  using W = long long;
  for (int iter = 0; iter < 100; ++iter) {
    const auto a = this->randomLanes();
    const auto b = this->randomLanes();
    std::array<TypeParam, O::lanes> got{};
    O::store(got.data(), O::qadd(O::load(a.data()), O::load(b.data())));
    for (int i = 0; i < O::lanes; ++i) {
      const W s = static_cast<W>(a[static_cast<std::size_t>(i)]) +
                  static_cast<W>(b[static_cast<std::size_t>(i)]);
      const W lo = static_cast<W>(std::numeric_limits<TypeParam>::min());
      const W hi = static_cast<W>(std::numeric_limits<TypeParam>::max());
      EXPECT_EQ(static_cast<W>(got[static_cast<std::size_t>(i)]),
                std::clamp(s, lo, hi))
          << "lane " << i;
    }
  }
}

TYPED_TEST(NeonLawsTest, SaturatingSubMatchesClampModel) {
  using O = Ops<TypeParam>;
  using W = long long;
  for (int iter = 0; iter < 100; ++iter) {
    const auto a = this->randomLanes();
    const auto b = this->randomLanes();
    std::array<TypeParam, O::lanes> got{};
    O::store(got.data(), O::qsub(O::load(a.data()), O::load(b.data())));
    for (int i = 0; i < O::lanes; ++i) {
      const W s = static_cast<W>(a[static_cast<std::size_t>(i)]) -
                  static_cast<W>(b[static_cast<std::size_t>(i)]);
      const W lo = static_cast<W>(std::numeric_limits<TypeParam>::min());
      const W hi = static_cast<W>(std::numeric_limits<TypeParam>::max());
      EXPECT_EQ(static_cast<W>(got[static_cast<std::size_t>(i)]),
                std::clamp(s, lo, hi));
    }
  }
}

TYPED_TEST(NeonLawsTest, MinMaxLattice) {
  using O = Ops<TypeParam>;
  for (int iter = 0; iter < 50; ++iter) {
    const auto a = this->randomLanes();
    const auto b = this->randomLanes();
    std::array<TypeParam, O::lanes> lo{}, hi{};
    O::store(lo.data(), O::vmin(O::load(a.data()), O::load(b.data())));
    O::store(hi.data(), O::vmax(O::load(a.data()), O::load(b.data())));
    for (int i = 0; i < O::lanes; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      EXPECT_EQ(lo[ii], std::min(a[ii], b[ii]));
      EXPECT_EQ(hi[ii], std::max(a[ii], b[ii]));
      // min + max partitions the pair.
      EXPECT_TRUE((lo[ii] == a[ii] && hi[ii] == b[ii]) ||
                  (lo[ii] == b[ii] && hi[ii] == a[ii]));
    }
  }
}

TYPED_TEST(NeonLawsTest, AbsoluteDifferenceSymmetric) {
  using O = Ops<TypeParam>;
  for (int iter = 0; iter < 50; ++iter) {
    const auto a = this->randomLanes();
    const auto b = this->randomLanes();
    std::array<TypeParam, O::lanes> ab{}, ba{}, self{};
    O::store(ab.data(), O::vabd(O::load(a.data()), O::load(b.data())));
    O::store(ba.data(), O::vabd(O::load(b.data()), O::load(a.data())));
    O::store(self.data(), O::vabd(O::load(a.data()), O::load(a.data())));
    EXPECT_EQ(ab, ba);
    for (int i = 0; i < O::lanes; ++i)
      EXPECT_EQ(self[static_cast<std::size_t>(i)], TypeParam{0});
  }
}

TYPED_TEST(NeonLawsTest, CompareMasksAreAllOrNothingAndCorrect) {
  using O = Ops<TypeParam>;
  using U = std::make_unsigned_t<TypeParam>;
  for (int iter = 0; iter < 50; ++iter) {
    const auto a = this->randomLanes();
    const auto b = this->randomLanes();
    const auto gt = O::cgt(O::load(a.data()), O::load(b.data()));
    const auto eq = O::ceq(O::load(a.data()), O::load(b.data()));
    std::array<U, O::lanes> gtl{}, eql{};
    std::memcpy(gtl.data(), &gt, sizeof(gt));
    std::memcpy(eql.data(), &eq, sizeof(eq));
    for (int i = 0; i < O::lanes; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      EXPECT_EQ(gtl[ii], a[ii] > b[ii] ? static_cast<U>(~U{0}) : U{0});
      EXPECT_EQ(eql[ii], a[ii] == b[ii] ? static_cast<U>(~U{0}) : U{0});
      EXPECT_FALSE(gtl[ii] && eql[ii]);  // trichotomy: not both
    }
  }
}

TYPED_TEST(NeonLawsTest, ExtComposesLikeConcatenationWindow) {
  using O = Ops<TypeParam>;
  const auto a = this->randomLanes();
  const auto b = this->randomLanes();
  for (int n = 0; n < O::lanes; ++n) {
    std::array<TypeParam, O::lanes> got{};
    O::store(got.data(), O::ext(O::load(a.data()), O::load(b.data()), n));
    for (int i = 0; i < O::lanes; ++i) {
      const TypeParam want = (i + n < O::lanes)
                                 ? a[static_cast<std::size_t>(i + n)]
                                 : b[static_cast<std::size_t>(i + n - O::lanes)];
      EXPECT_EQ(got[static_cast<std::size_t>(i)], want) << "n=" << n << " i=" << i;
    }
  }
}

TYPED_TEST(NeonLawsTest, DupMatchesBroadcast) {
  using O = Ops<TypeParam>;
  const auto a = this->randomLanes();
  std::array<TypeParam, O::lanes> got{};
  O::store(got.data(), O::dup(a[0]));
  for (int i = 0; i < O::lanes; ++i)
    EXPECT_EQ(got[static_cast<std::size_t>(i)], a[0]);
}

}  // namespace
