// NEON emulation — comparisons, logical ops, bit select, bit counting.
#include "simd/neon_compat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace {

TEST(NeonCmp, UnsignedCompareMasksAreAllOnesOrZero) {
  const uint8x16_t a = vdupq_n_u8(200);
  const uint8x16_t b = vdupq_n_u8(100);
  const uint8x16_t gt = vcgtq_u8(a, b);
  const uint8x16_t lt = vcltq_u8(a, b);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(vgetq_lane_u8(gt, i), 0xff);
    EXPECT_EQ(vgetq_lane_u8(lt, i), 0x00);
  }
  // 200 vs 100 signed would flip: unsigned semantics matter.
  const int8x16_t sa = vreinterpretq_s8_u8(a);
  const int8x16_t sb = vreinterpretq_s8_u8(b);
  EXPECT_EQ(vgetq_lane_u8(vcgtq_s8(sa, sb), 0), 0x00);  // -56 > 100 is false
}

TEST(NeonCmp, AllFiveRelations) {
  const int32x4_t a = vdupq_n_s32(5);
  const int32x4_t b = vdupq_n_s32(5);
  const int32x4_t c = vdupq_n_s32(6);
  EXPECT_EQ(vgetq_lane_u32(vceqq_s32(a, b), 0), 0xffffffffu);
  EXPECT_EQ(vgetq_lane_u32(vcgeq_s32(a, b), 1), 0xffffffffu);
  EXPECT_EQ(vgetq_lane_u32(vcleq_s32(a, b), 2), 0xffffffffu);
  EXPECT_EQ(vgetq_lane_u32(vcgtq_s32(a, b), 3), 0u);
  EXPECT_EQ(vgetq_lane_u32(vcltq_s32(a, c), 0), 0xffffffffu);
}

TEST(NeonCmp, FloatCompareAndNaN) {
  const float32x4_t a = vdupq_n_f32(1.0f);
  const float32x4_t nan = vdupq_n_f32(std::nanf(""));
  EXPECT_EQ(vgetq_lane_u32(vcgtq_f32(a, vdupq_n_f32(0.5f)), 0), 0xffffffffu);
  // Every ordered comparison with NaN is false.
  EXPECT_EQ(vgetq_lane_u32(vceqq_f32(nan, nan), 0), 0u);
  EXPECT_EQ(vgetq_lane_u32(vcgeq_f32(nan, a), 0), 0u);
  EXPECT_EQ(vgetq_lane_u32(vcleq_f32(nan, a), 0), 0u);
}

TEST(NeonCmp, AbsoluteCompares) {
  const float32x4_t a = vdupq_n_f32(-3.0f);
  const float32x4_t b = vdupq_n_f32(2.0f);
  EXPECT_EQ(vgetq_lane_u32(vcagtq_f32(a, b), 0), 0xffffffffu);  // |-3| > |2|
  EXPECT_EQ(vgetq_lane_u32(vcaleq_f32(b, a), 0), 0xffffffffu);  // |2| <= |-3|
}

TEST(NeonCmp, TestBits) {
  const uint8x16_t a = vdupq_n_u8(0b1010);
  EXPECT_EQ(vgetq_lane_u8(vtstq_u8(a, vdupq_n_u8(0b0010)), 0), 0xff);
  EXPECT_EQ(vgetq_lane_u8(vtstq_u8(a, vdupq_n_u8(0b0101)), 0), 0x00);
}

TEST(NeonLogic, BitwiseOps) {
  const uint8x16_t a = vdupq_n_u8(0b1100);
  const uint8x16_t b = vdupq_n_u8(0b1010);
  EXPECT_EQ(vgetq_lane_u8(vandq_u8(a, b), 0), 0b1000);
  EXPECT_EQ(vgetq_lane_u8(vorrq_u8(a, b), 0), 0b1110);
  EXPECT_EQ(vgetq_lane_u8(veorq_u8(a, b), 0), 0b0110);
  EXPECT_EQ(vgetq_lane_u8(vbicq_u8(a, b), 0), 0b0100);   // a & ~b
  EXPECT_EQ(vgetq_lane_u8(vornq_u8(a, b), 0), 0xfd);     // a | ~b
  EXPECT_EQ(vgetq_lane_u8(vmvnq_u8(a), 0), 0xf3);
  // 64-bit lanes support and/orr/eor too.
  const uint64x2_t w = vdupq_n_u64(0xff00ff00ff00ff00ull);
  EXPECT_EQ(vgetq_lane_u64(veorq_u64(w, w), 0), 0u);
}

TEST(NeonBsl, SelectsPerBit) {
  const uint32x4_t mask = vdupq_n_u32(0x0000ffffu);
  const uint32x4_t a = vdupq_n_u32(0xAAAAAAAAu);
  const uint32x4_t b = vdupq_n_u32(0x55555555u);
  EXPECT_EQ(vgetq_lane_u32(vbslq_u32(mask, a, b), 0), 0x5555AAAAu);
}

TEST(NeonBsl, FloatSelectionWithCompareMask) {
  // max(v, 0) via compare + select: the idiom the threshold kernel uses.
  const float vals[4] = {-1.0f, 2.0f, -3.0f, 4.0f};
  const float32x4_t v = vld1q_f32(vals);
  const uint32x4_t gt = vcgtq_f32(v, vdupq_n_f32(0.0f));
  const float32x4_t r = vbslq_f32(gt, v, vdupq_n_f32(0.0f));
  EXPECT_EQ(vgetq_lane_f32(r, 0), 0.0f);
  EXPECT_EQ(vgetq_lane_f32(r, 1), 2.0f);
  EXPECT_EQ(vgetq_lane_f32(r, 2), 0.0f);
  EXPECT_EQ(vgetq_lane_f32(r, 3), 4.0f);
}

TEST(NeonMisc, PopcountPerByte) {
  const uint8x16_t v = vdupq_n_u8(0b10110001);
  EXPECT_EQ(vgetq_lane_u8(vcntq_u8(v), 5), 4);
  EXPECT_EQ(vget_lane_u8(vcnt_u8(vdup_n_u8(0xff)), 0), 8);
  EXPECT_EQ(vget_lane_u8(vcnt_u8(vdup_n_u8(0)), 0), 0);
}

TEST(NeonMisc, CountLeadingZeros) {
  EXPECT_EQ(vgetq_lane_u8(vclzq_u8(vdupq_n_u8(1)), 0), 7);
  EXPECT_EQ(vgetq_lane_u8(vclzq_u8(vdupq_n_u8(0)), 0), 8);
  EXPECT_EQ(vgetq_lane_u8(vclzq_u8(vdupq_n_u8(0x80)), 0), 0);
  EXPECT_EQ(vgetq_lane_u16(vclzq_u16(vdupq_n_u16(256)), 0), 7);
  EXPECT_EQ(vgetq_lane_s32(vclzq_s32(vdupq_n_s32(1)), 0), 31);
  EXPECT_EQ(vget_lane_u32(vclz_u32(vdup_n_u32(0)), 0), 32u);
}

}  // namespace
