// NEON emulation — extra families: lane/broadcast loads, vcreate, vqneg,
// vqdmulh/vqrdmulh/vqdmull, vsli/vsri, vabdl/vabal.
#include "simd/neon_compat.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace {

TEST(NeonExtra, LoadDupBroadcasts) {
  const float f = 2.75f;
  const float32x4_t v = vld1q_dup_f32(&f);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(vgetq_lane_f32(v, i), 2.75f);
  const std::uint8_t b = 99;
  const uint8x8_t d = vld1_dup_u8(&b);
  EXPECT_EQ(vget_lane_u8(d, 7), 99);
}

TEST(NeonExtra, LoadStoreLane) {
  const std::int16_t x = -555;
  int16x8_t v = vdupq_n_s16(7);
  v = vld1q_lane_s16(&x, v, 3);
  EXPECT_EQ(vgetq_lane_s16(v, 3), -555);
  EXPECT_EQ(vgetq_lane_s16(v, 2), 7);
  std::int16_t out = 0;
  vst1q_lane_s16(&out, v, 3);
  EXPECT_EQ(out, -555);
}

TEST(NeonExtra, CreateFromBits) {
  const uint8x8_t v = vcreate_u8(0x0807060504030201ull);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(vget_lane_u8(v, i), i + 1);
  const uint32x2_t w = vcreate_u32(0x00000002'00000001ull);
  EXPECT_EQ(vget_lane_u32(w, 0), 1u);
  EXPECT_EQ(vget_lane_u32(w, 1), 2u);
}

TEST(NeonExtra, SaturatingNegate) {
  EXPECT_EQ(vgetq_lane_s16(vqnegq_s16(vdupq_n_s16(-32768)), 0), 32767);
  EXPECT_EQ(vgetq_lane_s16(vqnegq_s16(vdupq_n_s16(100)), 0), -100);
  EXPECT_EQ(vgetq_lane_s8(vqnegq_s8(vdupq_n_s8(-128)), 5), 127);
  EXPECT_EQ(vget_lane_s32(vqneg_s32(vdup_n_s32(7)), 0), -7);
}

TEST(NeonExtra, QdmulhFixedPointMultiply) {
  // Q15 multiply: 0.5 * 0.5 = 0.25 -> 0x2000.
  EXPECT_EQ(vgetq_lane_s16(
                vqdmulhq_s16(vdupq_n_s16(0x4000), vdupq_n_s16(0x4000)), 0),
            0x2000);
  // Saturation corner: INT16_MIN * INT16_MIN doubles past INT16_MAX.
  EXPECT_EQ(vgetq_lane_s16(
                vqdmulhq_s16(vdupq_n_s16(-32768), vdupq_n_s16(-32768)), 0),
            32767);
  // Sign handling.
  EXPECT_EQ(vgetq_lane_s16(
                vqdmulhq_s16(vdupq_n_s16(0x4000), vdupq_n_s16(-0x4000)), 0),
            -0x2000);
  // Q31 variant.
  EXPECT_EQ(vgetq_lane_s32(vqdmulhq_s32(vdupq_n_s32(0x40000000),
                                        vdupq_n_s32(0x40000000)),
                           0),
            0x20000000);
  EXPECT_EQ(vgetq_lane_s32(
                vqdmulhq_s32(vdupq_n_s32(std::numeric_limits<std::int32_t>::min()),
                             vdupq_n_s32(std::numeric_limits<std::int32_t>::min())),
                0),
            std::numeric_limits<std::int32_t>::max());
}

TEST(NeonExtra, QrdmulhRounds) {
  // 2*3*5462 = 32772: truncating >> 16 gives 0, rounding adds 2^15 and
  // carries to 1.
  EXPECT_EQ(vgetq_lane_s16(vqdmulhq_s16(vdupq_n_s16(3), vdupq_n_s16(5462)), 0), 0);
  EXPECT_EQ(vgetq_lane_s16(vqrdmulhq_s16(vdupq_n_s16(3), vdupq_n_s16(5462)), 0), 1);
  // Just below the rounding boundary stays 0 (2*3*5461 + 2^15 < 2^16).
  EXPECT_EQ(vgetq_lane_s16(vqrdmulhq_s16(vdupq_n_s16(3), vdupq_n_s16(5461)), 0), 0);
}

TEST(NeonExtra, QdmullWidens) {
  const std::int16_t a[4] = {1000, -1000, 32767, -32768};
  const std::int16_t b[4] = {1000, 1000, 32767, -32768};
  const int32x4_t r = vqdmull_s16(vld1_s16(a), vld1_s16(b));
  EXPECT_EQ(vgetq_lane_s32(r, 0), 2000000);
  EXPECT_EQ(vgetq_lane_s32(r, 1), -2000000);
  EXPECT_EQ(vgetq_lane_s32(r, 2), 2 * 32767 * 32767);
  EXPECT_EQ(vgetq_lane_s32(r, 3), std::numeric_limits<std::int32_t>::max());
}

TEST(NeonExtra, ShiftLeftInsert) {
  // vsli: keep the low n bits of a, insert b << n above them.
  const uint8x16_t r =
      vsliq_n_u8(vdupq_n_u8(0xFF), vdupq_n_u8(0b101), 4);
  EXPECT_EQ(vgetq_lane_u8(r, 0), 0x5F);
  const uint16x8_t r16 = vsliq_n_u16(vdupq_n_u16(0x000F), vdupq_n_u16(1), 8);
  EXPECT_EQ(vgetq_lane_u16(r16, 0), 0x010F);
}

TEST(NeonExtra, ShiftRightInsert) {
  // vsri: keep the high n bits of a, insert b >> n below them.
  const uint8x16_t r = vsriq_n_u8(vdupq_n_u8(0xF0), vdupq_n_u8(0xFF), 4);
  EXPECT_EQ(vgetq_lane_u8(r, 0), 0xFF);
  const uint8x16_t r2 = vsriq_n_u8(vdupq_n_u8(0xF0), vdupq_n_u8(0x00), 4);
  EXPECT_EQ(vgetq_lane_u8(r2, 0), 0xF0);
  // n == bits: everything kept from a.
  const uint8x16_t r3 = vsriq_n_u8(vdupq_n_u8(0xAB), vdupq_n_u8(0xFF), 8);
  EXPECT_EQ(vgetq_lane_u8(r3, 0), 0xAB);
}

TEST(NeonExtra, WideningAbsoluteDifference) {
  const std::uint8_t a[8] = {0, 255, 100, 50, 1, 2, 3, 4};
  const std::uint8_t b[8] = {255, 0, 50, 100, 1, 2, 3, 4};
  const uint16x8_t d = vabdl_u8(vld1_u8(a), vld1_u8(b));
  EXPECT_EQ(vgetq_lane_u16(d, 0), 255);
  EXPECT_EQ(vgetq_lane_u16(d, 1), 255);
  EXPECT_EQ(vgetq_lane_u16(d, 2), 50);
  EXPECT_EQ(vgetq_lane_u16(d, 4), 0);
  const uint16x8_t acc = vabal_u8(d, vld1_u8(a), vld1_u8(b));
  EXPECT_EQ(vgetq_lane_u16(acc, 0), 510);
  const int32x4_t sd = vabdl_s16(vld1_s16((const std::int16_t[4]){-32768, 0, 5, -5}),
                                 vld1_s16((const std::int16_t[4]){32767, 0, -5, 5}));
  EXPECT_EQ(vgetq_lane_s32(sd, 0), 65535);
  EXPECT_EQ(vgetq_lane_s32(sd, 2), 10);
}

}  // namespace
