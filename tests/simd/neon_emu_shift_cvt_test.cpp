// NEON emulation — shifts, conversions, narrowing. These are the ops the
// paper's conversion kernel is built from, so semantics here are critical.
#include "simd/neon_compat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace {

TEST(NeonShift, LeftAndRightImmediate) {
  EXPECT_EQ(vgetq_lane_s16(vshlq_n_s16(vdupq_n_s16(3), 4), 0), 48);
  EXPECT_EQ(vgetq_lane_u8(vshlq_n_u8(vdupq_n_u8(0x81), 1), 0), 0x02);  // wraps out
  EXPECT_EQ(vgetq_lane_s16(vshrq_n_s16(vdupq_n_s16(-32), 4), 0), -2);  // arithmetic
  EXPECT_EQ(vgetq_lane_u16(vshrq_n_u16(vdupq_n_u16(0x8000), 15), 0), 1);  // logical
}

TEST(NeonShift, RoundingRightShift) {
  // (v + (1 << (n-1))) >> n.
  EXPECT_EQ(vgetq_lane_s16(vrshrq_n_s16(vdupq_n_s16(5), 1), 0), 3);   // 2.5 -> 3
  EXPECT_EQ(vgetq_lane_s16(vrshrq_n_s16(vdupq_n_s16(-5), 1), 0), -2); // -2.5 -> -2
  EXPECT_EQ(vgetq_lane_s16(vshrq_n_s16(vdupq_n_s16(5), 1), 0), 2);    // trunc-floor
  EXPECT_EQ(vgetq_lane_u8(vrshrq_n_u8(vdupq_n_u8(255), 4), 0), 16);
}

TEST(NeonShift, ShiftAndAccumulate) {
  EXPECT_EQ(vgetq_lane_s32(vsraq_n_s32(vdupq_n_s32(10), vdupq_n_s32(64), 3), 0), 18);
  EXPECT_EQ(vgetq_lane_s32(vrsraq_n_s32(vdupq_n_s32(10), vdupq_n_s32(7), 3), 0), 11);
}

TEST(NeonShift, ShiftBySignedVector) {
  // Positive counts shift left, negative shift right (NEON vshl semantics).
  const std::int16_t counts[8] = {2, -2, 0, -15, 1, -1, 3, -3};
  const int16x8_t c = vld1q_s16(counts);
  const int16x8_t v = vdupq_n_s16(-32);
  const int16x8_t r = vshlq_s16(v, c);
  EXPECT_EQ(vgetq_lane_s16(r, 0), -128);
  EXPECT_EQ(vgetq_lane_s16(r, 1), -8);
  EXPECT_EQ(vgetq_lane_s16(r, 2), -32);
  EXPECT_EQ(vgetq_lane_s16(r, 3), -1);  // arithmetic shift keeps sign
  const uint16x8_t u = vshlq_u16(vdupq_n_u16(0x8000), c);
  EXPECT_EQ(vgetq_lane_u16(u, 1), 0x2000);
  EXPECT_EQ(vgetq_lane_u16(u, 3), 1);
}

TEST(NeonShift, WideningShiftLeft) {
  const std::uint8_t v[8] = {1, 2, 255, 0, 4, 5, 6, 7};
  const uint16x8_t w = vshll_n_u8(vld1_u8(v), 4);
  EXPECT_EQ(vgetq_lane_u16(w, 0), 16);
  EXPECT_EQ(vgetq_lane_u16(w, 2), 255 * 16);
}

TEST(NeonShift, NarrowingShifts) {
  const int32x4_t v = vdupq_n_s32(0x12345);
  EXPECT_EQ(vget_lane_s16(vshrn_n_s32(v, 8), 0),
            static_cast<std::int16_t>(0x123));
  // Saturating narrow shift clamps.
  EXPECT_EQ(vget_lane_s16(vqshrn_n_s32(vdupq_n_s32(1 << 30), 2), 0), 32767);
  EXPECT_EQ(vget_lane_s16(vqrshrn_n_s32(vdupq_n_s32(5), 1), 0), 3);
  // Unsigned saturating narrow from signed clamps negatives to 0.
  EXPECT_EQ(vget_lane_u8(vqrshrun_n_s16(vdupq_n_s16(-100), 2), 0), 0);
  EXPECT_EQ(vget_lane_u8(vqrshrun_n_s16(vdupq_n_s16(1000), 2), 0), 250);
  EXPECT_EQ(vget_lane_u8(vqrshrun_n_s16(vdupq_n_s16(1022), 2), 0), 255);  // 255.5 rounds
}

TEST(NeonNarrow, MovnTruncatesQmovnSaturates) {
  const std::int32_t vals[4] = {70000, -70000, 1234, -1234};
  const int32x4_t v = vld1q_s32(vals);
  const int16x4_t truncated = vmovn_s32(v);
  EXPECT_EQ(vget_lane_s16(truncated, 0), static_cast<std::int16_t>(70000));  // wraps
  EXPECT_EQ(vget_lane_s16(truncated, 2), 1234);
  const int16x4_t saturated = vqmovn_s32(v);
  EXPECT_EQ(vget_lane_s16(saturated, 0), 32767);
  EXPECT_EQ(vget_lane_s16(saturated, 1), -32768);
  EXPECT_EQ(vget_lane_s16(saturated, 3), -1234);
}

TEST(NeonNarrow, QmovunClampsAtZero) {
  const std::int16_t vals[8] = {-5, 0, 255, 256, 300, 32767, -32768, 100};
  const uint8x8_t r = vqmovun_s16(vld1q_s16(vals));
  EXPECT_EQ(vget_lane_u8(r, 0), 0);
  EXPECT_EQ(vget_lane_u8(r, 1), 0);
  EXPECT_EQ(vget_lane_u8(r, 2), 255);
  EXPECT_EQ(vget_lane_u8(r, 3), 255);
  EXPECT_EQ(vget_lane_u8(r, 6), 0);
  EXPECT_EQ(vget_lane_u8(r, 7), 100);
}

TEST(NeonCvt, FloatToIntTruncatesTowardZero) {
  const float vals[4] = {1.9f, -1.9f, 0.5f, -0.5f};
  const int32x4_t r = vcvtq_s32_f32(vld1q_f32(vals));
  EXPECT_EQ(vgetq_lane_s32(r, 0), 1);
  EXPECT_EQ(vgetq_lane_s32(r, 1), -1);
  EXPECT_EQ(vgetq_lane_s32(r, 2), 0);
  EXPECT_EQ(vgetq_lane_s32(r, 3), 0);
}

TEST(NeonCvt, FloatToIntSaturatesAndZerosNaN) {
  const float vals[4] = {1e20f, -1e20f, std::nanf(""), 2147483520.0f};
  const int32x4_t r = vcvtq_s32_f32(vld1q_f32(vals));
  EXPECT_EQ(vgetq_lane_s32(r, 0), std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(vgetq_lane_s32(r, 1), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(vgetq_lane_s32(r, 2), 0);
  EXPECT_EQ(vgetq_lane_s32(r, 3), 2147483520);  // largest float below 2^31
}

TEST(NeonCvt, RoundToNearestEvenVariant) {
  const float vals[4] = {0.5f, 1.5f, 2.5f, -2.5f};
  const int32x4_t r = vcvtnq_s32_f32(vld1q_f32(vals));
  EXPECT_EQ(vgetq_lane_s32(r, 0), 0);
  EXPECT_EQ(vgetq_lane_s32(r, 1), 2);
  EXPECT_EQ(vgetq_lane_s32(r, 2), 2);
  EXPECT_EQ(vgetq_lane_s32(r, 3), -2);
}

TEST(NeonCvt, UnsignedConversionClampsNegatives) {
  const float vals[4] = {-5.0f, 0.0f, 255.9f, 5e9f};
  const uint32x4_t r = vcvtq_u32_f32(vld1q_f32(vals));
  EXPECT_EQ(vgetq_lane_u32(r, 0), 0u);
  EXPECT_EQ(vgetq_lane_u32(r, 1), 0u);
  EXPECT_EQ(vgetq_lane_u32(r, 2), 255u);
  EXPECT_EQ(vgetq_lane_u32(r, 3), 4294967295u);
}

TEST(NeonCvt, IntToFloatExact) {
  const std::int32_t vals[4] = {0, -1, 8388608, -2147483648};
  const float32x4_t f = vcvtq_f32_s32(vld1q_s32(vals));
  EXPECT_EQ(vgetq_lane_f32(f, 0), 0.0f);
  EXPECT_EQ(vgetq_lane_f32(f, 1), -1.0f);
  EXPECT_EQ(vgetq_lane_f32(f, 2), 8388608.0f);
  EXPECT_EQ(vgetq_lane_f32(f, 3), -2147483648.0f);
  const std::uint32_t uvals[4] = {0u, 4294967295u, 65536u, 1u};
  const float32x4_t uf = vcvtq_f32_u32(vld1q_u32(uvals));
  EXPECT_EQ(vgetq_lane_f32(uf, 1), 4294967296.0f);  // rounds up to 2^32
  EXPECT_EQ(vgetq_lane_f32(uf, 2), 65536.0f);
}

TEST(NeonCvt, FixedPointConversions) {
  // 8 fractional bits: 256 -> 1.0.
  const float32x4_t f = vcvtq_n_f32_s32(vdupq_n_s32(384), 8);
  EXPECT_EQ(vgetq_lane_f32(f, 0), 1.5f);
  const int32x4_t i = vcvtq_n_s32_f32(vdupq_n_f32(1.5f), 8);
  EXPECT_EQ(vgetq_lane_s32(i, 0), 384);
  const uint32x4_t u = vcvtq_n_u32_f32(vdupq_n_f32(0.25f), 4);
  EXPECT_EQ(vgetq_lane_u32(u, 0), 4u);
}

// Cross-check the paper's full 8-pixel conversion dance at the intrinsic
// level (the composition used by core::neon::cvt32f16s).
TEST(NeonCvt, EightPixelConversionComposition) {
  const float src[8] = {1.4f, -1.4f, 40000.0f, -40000.0f, 0.5f, 1.5f, -0.5f, 100.0f};
  const int32x4_t i0 = vcvtnq_s32_f32(vld1q_f32(src));
  const int32x4_t i1 = vcvtnq_s32_f32(vld1q_f32(src + 4));
  const int16x8_t packed = vcombine_s16(vqmovn_s32(i0), vqmovn_s32(i1));
  std::int16_t out[8];
  vst1q_s16(out, packed);
  const std::int16_t want[8] = {1, -1, 32767, -32768, 0, 2, 0, 100};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], want[i]) << i;
}

}  // namespace
