// NEON emulation layer: types, loads/stores, lane access, combine/split,
// dup, reinterpret. (Runs against real <arm_neon.h> unchanged on ARM.)
#include "simd/neon_compat.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

namespace {

TEST(NeonTypes, SizesMatchArchitecture) {
  EXPECT_EQ(sizeof(int8x8_t), 8u);
  EXPECT_EQ(sizeof(int16x4_t), 8u);
  EXPECT_EQ(sizeof(int32x2_t), 8u);
  EXPECT_EQ(sizeof(float32x2_t), 8u);
  EXPECT_EQ(sizeof(int8x16_t), 16u);
  EXPECT_EQ(sizeof(int16x8_t), 16u);
  EXPECT_EQ(sizeof(int32x4_t), 16u);
  EXPECT_EQ(sizeof(int64x2_t), 16u);
  EXPECT_EQ(sizeof(float32x4_t), 16u);
  EXPECT_EQ(sizeof(uint8x16x2_t), 32u);
  EXPECT_EQ(sizeof(float32x4x3_t), 48u);
}

TEST(NeonLoadStore, RoundTripF32) {
  const float in[4] = {1.0f, -2.5f, 3.25f, 4e6f};
  float out[4] = {};
  vst1q_f32(out, vld1q_f32(in));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(in[i], out[i]);
}

TEST(NeonLoadStore, RoundTripAllQTypes) {
  {
    const std::int8_t in[16] = {-128, -1, 0, 1, 127, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15};
    std::int8_t out[16] = {};
    vst1q_s8(out, vld1q_s8(in));
    for (int i = 0; i < 16; ++i) EXPECT_EQ(in[i], out[i]);
  }
  {
    const std::uint16_t in[8] = {0, 1, 65535, 32768, 4, 5, 6, 7};
    std::uint16_t out[8] = {};
    vst1q_u16(out, vld1q_u16(in));
    for (int i = 0; i < 8; ++i) EXPECT_EQ(in[i], out[i]);
  }
  {
    const std::int64_t in[2] = {-(1LL << 62), (1LL << 62)};
    std::int64_t out[2] = {};
    vst1q_s64(out, vld1q_s64(in));
    EXPECT_EQ(in[0], out[0]);
    EXPECT_EQ(in[1], out[1]);
  }
}

TEST(NeonLoadStore, UnalignedPointerWorks) {
  alignas(16) std::uint8_t buf[32] = {};
  for (int i = 0; i < 32; ++i) buf[i] = static_cast<std::uint8_t>(i);
  const uint8x16_t v = vld1q_u8(buf + 3);  // deliberately misaligned
  EXPECT_EQ(vgetq_lane_u8(v, 0), 3);
  EXPECT_EQ(vgetq_lane_u8(v, 15), 18);
}

TEST(NeonDup, BroadcastsAllLanes) {
  const int16x8_t v = vdupq_n_s16(-1234);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(vgetq_lane_s16(v, i), -1234);
  const float32x2_t f = vdup_n_f32(2.5f);
  EXPECT_EQ(vget_lane_f32(f, 0), 2.5f);
  EXPECT_EQ(vget_lane_f32(f, 1), 2.5f);
  const uint8x16_t u = vmovq_n_u8(200);
  EXPECT_EQ(vgetq_lane_u8(u, 7), 200);
}

TEST(NeonLane, SetLane) {
  int32x4_t v = vdupq_n_s32(0);
  v = vsetq_lane_s32(42, v, 2);
  EXPECT_EQ(vgetq_lane_s32(v, 0), 0);
  EXPECT_EQ(vgetq_lane_s32(v, 2), 42);
}

TEST(NeonCombine, CombineAndSplit) {
  const std::int16_t lo[4] = {1, 2, 3, 4};
  const std::int16_t hi[4] = {5, 6, 7, 8};
  const int16x8_t q = vcombine_s16(vld1_s16(lo), vld1_s16(hi));
  std::int16_t out[8];
  vst1q_s16(out, q);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i + 1);
  std::int16_t lo2[4], hi2[4];
  vst1_s16(lo2, vget_low_s16(q));
  vst1_s16(hi2, vget_high_s16(q));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(lo2[i], lo[i]);
    EXPECT_EQ(hi2[i], hi[i]);
  }
}

TEST(NeonReinterpret, PreservesBits) {
  const float32x4_t f = vdupq_n_f32(1.0f);
  const uint32x4_t u = vreinterpretq_u32_f32(f);
  EXPECT_EQ(vgetq_lane_u32(u, 0), 0x3f800000u);
  const float32x4_t back = vreinterpretq_f32_u32(u);
  EXPECT_EQ(vgetq_lane_f32(back, 3), 1.0f);
  // s16 <-> u8 reinterpret is byte-order preserving (little endian).
  const int16x8_t s = vdupq_n_s16(0x0102);
  const uint8x16_t b = vreinterpretq_u8_s16(s);
  EXPECT_EQ(vgetq_lane_u8(b, 0), 0x02);
  EXPECT_EQ(vgetq_lane_u8(b, 1), 0x01);
}

TEST(NeonDupLane, BroadcastChosenLane) {
  const std::int16_t in[4] = {10, 20, 30, 40};
  const int16x4_t d = vld1_s16(in);
  const int16x8_t q = vdupq_lane_s16(d, 2);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(vgetq_lane_s16(q, i), 30);
  const int16x4_t d2 = vdup_lane_s16(d, 3);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(vget_lane_s16(d2, i), 40);
}

TEST(NeonInterleaved, Vld2Deinterleaves) {
  std::uint8_t buf[32];
  for (int i = 0; i < 16; ++i) {
    buf[2 * i] = static_cast<std::uint8_t>(i);        // even stream
    buf[2 * i + 1] = static_cast<std::uint8_t>(100 + i);  // odd stream
  }
  const uint8x16x2_t v = vld2q_u8(buf);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(vgetq_lane_u8(v.val[0], i), i);
    EXPECT_EQ(vgetq_lane_u8(v.val[1], i), 100 + i);
  }
  std::uint8_t out[32] = {};
  vst2q_u8(out, v);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[i], buf[i]);
}

TEST(NeonInterleaved, Vld3RgbSplit) {
  // 16 RGB pixels: R=i, G=2i, B=255-i.
  std::uint8_t rgb[48];
  for (int i = 0; i < 16; ++i) {
    rgb[3 * i] = static_cast<std::uint8_t>(i);
    rgb[3 * i + 1] = static_cast<std::uint8_t>(2 * i);
    rgb[3 * i + 2] = static_cast<std::uint8_t>(255 - i);
  }
  const uint8x16x3_t v = vld3q_u8(rgb);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(vgetq_lane_u8(v.val[0], i), i);
    EXPECT_EQ(vgetq_lane_u8(v.val[1], i), 2 * i);
    EXPECT_EQ(vgetq_lane_u8(v.val[2], i), 255 - i);
  }
}

TEST(NeonInterleaved, Vld4RoundTripF32) {
  float buf[16];
  for (int i = 0; i < 16; ++i) buf[i] = static_cast<float>(i) * 0.5f;
  const float32x4x4_t v = vld4q_f32(buf);
  EXPECT_EQ(vgetq_lane_f32(v.val[0], 1), buf[4]);
  EXPECT_EQ(vgetq_lane_f32(v.val[3], 0), buf[3]);
  float out[16] = {};
  vst4q_f32(out, v);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], buf[i]);
}

}  // namespace
