// NEON emulation — ARM-reference semantics for the subtle corners:
// unsigned halving subtraction (full-precision intermediate), boundary
// shift counts, fixed-point conversion saturation, mask-algebra duals and
// NaN behaviour of the absolute compares.
#include "simd/neon_compat.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace {

TEST(NeonSemantics, UnsignedHalvingSubUsesFullPrecisionIntermediate) {
  // vhsub u16: (10 - 50) >> 1 in unbounded arithmetic = -20, truncated to
  // u16 = 0xFFEC (per the ARM ARM pseudocode), NOT a zero-clamped value.
  const uint16x8_t r = vhsubq_u16(vdupq_n_u16(10), vdupq_n_u16(50));
  EXPECT_EQ(vgetq_lane_u16(r, 0), 0xFFEC);
  const uint32x4_t r32 = vhsubq_u32(vdupq_n_u32(10), vdupq_n_u32(50));
  EXPECT_EQ(vgetq_lane_u32(r32, 0), 0xFFFFFFECu);
  // And the plain direction still halves exactly.
  EXPECT_EQ(vgetq_lane_u16(vhsubq_u16(vdupq_n_u16(50), vdupq_n_u16(10)), 0), 20);
}

TEST(NeonSemantics, RightShiftByFullWidth) {
  // vshr #bits: signed replicates the sign bit; unsigned gives zero.
  EXPECT_EQ(vgetq_lane_s16(vshrq_n_s16(vdupq_n_s16(-5), 16), 0), -1);
  EXPECT_EQ(vgetq_lane_s16(vshrq_n_s16(vdupq_n_s16(5), 16), 0), 0);
  EXPECT_EQ(vgetq_lane_u16(vshrq_n_u16(vdupq_n_u16(0xFFFF), 16), 0), 0);
  // Rounding shift by full width: (x + 2^(bits-1)) >> bits.
  EXPECT_EQ(vgetq_lane_u8(vrshrq_n_u8(vdupq_n_u8(200), 8), 0), 1);
  EXPECT_EQ(vgetq_lane_u8(vrshrq_n_u8(vdupq_n_u8(100), 8), 0), 0);
}

TEST(NeonSemantics, WideningShiftByNarrowWidth) {
  // vshll #bits (the maximum) doubles every element's magnitude range.
  const std::uint8_t v[8] = {1, 255, 0, 7, 0, 0, 0, 0};
  const uint16x8_t w = vshll_n_u8(vld1_u8(v), 8);
  EXPECT_EQ(vgetq_lane_u16(w, 0), 256);
  EXPECT_EQ(vgetq_lane_u16(w, 1), 255u * 256u);
}

TEST(NeonSemantics, FixedPointConversionSaturates) {
  // vcvtq_n_s32_f32 scales BEFORE the saturating convert: large inputs with
  // many fractional bits must clamp, not wrap.
  const int32x4_t r = vcvtq_n_s32_f32(vdupq_n_f32(1e9f), 16);
  EXPECT_EQ(vgetq_lane_s32(r, 0), std::numeric_limits<std::int32_t>::max());
  const int32x4_t neg = vcvtq_n_s32_f32(vdupq_n_f32(-1e9f), 16);
  EXPECT_EQ(vgetq_lane_s32(neg, 0), std::numeric_limits<std::int32_t>::min());
  // Round trip at modest magnitude is exact for dyadic rationals.
  const float32x4_t back =
      vcvtq_n_f32_s32(vcvtq_n_s32_f32(vdupq_n_f32(5.125f), 8), 8);
  EXPECT_EQ(vgetq_lane_f32(back, 0), 5.125f);
}

TEST(NeonSemantics, MaskAlgebraDuals) {
  // vbic(a, b) == vand(a, vmvn(b)); vorn(a, b) == vorr(a, vmvn(b)).
  const uint8x16_t a = vdupq_n_u8(0xC3);
  const uint8x16_t b = vdupq_n_u8(0x5A);
  EXPECT_EQ(vgetq_lane_u8(vbicq_u8(a, b), 0),
            vgetq_lane_u8(vandq_u8(a, vmvnq_u8(b)), 0));
  EXPECT_EQ(vgetq_lane_u8(vornq_u8(a, b), 0),
            vgetq_lane_u8(vorrq_u8(a, vmvnq_u8(b)), 0));
  // bsl with all-ones mask picks a, all-zeros picks b.
  EXPECT_EQ(vgetq_lane_u8(vbslq_u8(vdupq_n_u8(0xFF), a, b), 0), 0xC3);
  EXPECT_EQ(vgetq_lane_u8(vbslq_u8(vdupq_n_u8(0x00), a, b), 0), 0x5A);
}

TEST(NeonSemantics, AbsoluteComparesIgnoreSignButNotNaN) {
  const float32x4_t nan = vdupq_n_f32(std::nanf(""));
  const float32x4_t one = vdupq_n_f32(1.0f);
  // |NaN| comparisons are unordered -> false.
  EXPECT_EQ(vgetq_lane_u32(vcageq_f32(nan, one), 0), 0u);
  EXPECT_EQ(vgetq_lane_u32(vcaleq_f32(nan, one), 0), 0u);
  // Sign is ignored: |-2| >= |1|.
  EXPECT_EQ(vgetq_lane_u32(vcageq_f32(vdupq_n_f32(-2.0f), one), 0), 0xFFFFFFFFu);
}

TEST(NeonSemantics, PairwiseMinMaxFloat) {
  const float av[2] = {3.0f, -1.0f};
  const float bv[2] = {0.5f, 0.25f};
  const float32x2_t mx = vpmax_f32(vld1_f32(av), vld1_f32(bv));
  const float32x2_t mn = vpmin_f32(vld1_f32(av), vld1_f32(bv));
  EXPECT_EQ(vget_lane_f32(mx, 0), 3.0f);
  EXPECT_EQ(vget_lane_f32(mx, 1), 0.5f);
  EXPECT_EQ(vget_lane_f32(mn, 0), -1.0f);
  EXPECT_EQ(vget_lane_f32(mn, 1), 0.25f);
}

TEST(NeonSemantics, MovnWrapsLikeTruncation) {
  // vmovn drops high bits (mod 2^16), unlike vqmovn.
  const std::int32_t v[4] = {0x12345, -0x12345, 65536, -65536};
  const int16x4_t n = vmovn_s32(vld1q_s32(v));
  EXPECT_EQ(vget_lane_s16(n, 0), static_cast<std::int16_t>(0x2345));
  EXPECT_EQ(vget_lane_s16(n, 2), 0);
  EXPECT_EQ(vget_lane_s16(n, 3), 0);
}

TEST(NeonSemantics, SaturatingShiftNarrowClampsPerLane) {
  const std::int32_t v[4] = {1 << 20, -(1 << 20), 100 << 4, -(100 << 4)};
  const int16x4_t r = vqshrn_n_s32(vld1q_s32(v), 4);
  EXPECT_EQ(vget_lane_s16(r, 0), 32767);
  EXPECT_EQ(vget_lane_s16(r, 1), -32768);
  EXPECT_EQ(vget_lane_s16(r, 2), 100);
  EXPECT_EQ(vget_lane_s16(r, 3), -100);
}

TEST(NeonSemantics, ShiftByVectorUsesLowByteOfCount) {
  // The shift count is the *bottom byte* of each lane, interpreted signed.
  const int16x8_t counts = vdupq_n_s16(0x0102);  // low byte = 2
  const int16x8_t r = vshlq_s16(vdupq_n_s16(3), counts);
  EXPECT_EQ(vgetq_lane_s16(r, 0), 12);  // 3 << 2, not 3 << 0x102
  const int16x8_t negCounts = vdupq_n_s16(0x01FE);  // low byte = -2
  const int16x8_t r2 = vshlq_s16(vdupq_n_s16(12), negCounts);
  EXPECT_EQ(vgetq_lane_s16(r2, 0), 3);  // arithmetic right shift by 2
}

TEST(NeonSemantics, CombineGetRoundTripAllWidths) {
  const std::uint32_t v[4] = {1u, 2u, 3u, 4u};
  const uint32x4_t q = vld1q_u32(v);
  const uint32x4_t back = vcombine_u32(vget_low_u32(q), vget_high_u32(q));
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(vgetq_lane_u32(back, i), v[static_cast<std::size_t>(i)]);
}

}  // namespace
