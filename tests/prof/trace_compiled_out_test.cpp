// Compile-out leg (SIMDCV_ENABLE_TRACE=OFF): every span must vanish at
// compile time — TraceScope is an empty type, SIMDCV_TRACE_SCOPE expands to
// a no-op, and the runtime switch is inert. Built and run by the
// trace-off configure in scripts/verify.sh; never part of the default build.
#include <gtest/gtest.h>

#include <type_traits>

#include "simdcv.hpp"

namespace simdcv {
namespace {

static_assert(!prof::kCompiledIn,
              "trace_compiled_out_test.cpp builds only with "
              "SIMDCV_ENABLE_TRACE=OFF");
static_assert(sizeof(prof::TraceScope) == 1,
              "compiled-out TraceScope must carry no state");
static_assert(std::is_empty_v<prof::TraceScope>,
              "compiled-out TraceScope must be an empty type");
static_assert(std::is_trivially_destructible_v<prof::TraceScope>,
              "compiled-out TraceScope must have no side effects");

TEST(ProfCompiledOut, MacroIsANoOpStatement) {
  // Must compile as a plain statement in any context, including an
  // un-braced if — the do/while(0) contract.
  if (prof::enabled())
    SIMDCV_TRACE_SCOPE("gone");
  else
    SIMDCV_TRACE_SCOPE("also.gone", KernelPath::Auto, 123);
  SUCCEED();
}

TEST(ProfCompiledOut, RuntimeSwitchIsInert) {
  prof::setEnabled(true);
  EXPECT_FALSE(prof::enabled());  // compiled out: cannot be enabled
  prof::instant("never.recorded");
  prof::addSample("never.recorded", KernelPath::Auto, 100, 1);
  const prof::Snapshot s = prof::snapshot();
  EXPECT_EQ(s.total_spans, 0u);
  EXPECT_TRUE(s.kernels.empty());
  prof::setEnabled(false);
}

TEST(ProfCompiledOut, InstrumentedKernelsStillWork) {
  prof::setEnabled(true);  // inert, but must not break the kernels
  Mat src(64, 64, U8C1);
  src.setTo(100);
  Mat dst;
  imgproc::threshold(src, dst, 50.0, 255.0, imgproc::ThresholdType::Binary);
  EXPECT_EQ(dst.at<std::uint8_t>(0, 0), 255);
  imgproc::edgeDetectFused(src, dst, 100.0);
  const prof::Snapshot s = prof::snapshot();
  EXPECT_TRUE(s.kernels.empty());
  prof::setEnabled(false);
}

}  // namespace
}  // namespace simdcv
