// simdcv::prof behaviour tests (compiled-in leg, SIMDCV_ENABLE_TRACE=ON):
// span capture and aggregation, parallel_for/pool event attribution across
// worker threads, ring wraparound semantics, snapshot determinism, chrome
// trace JSON shape, harness/span clock agreement, and the perf_event
// graceful-fallback contract. The compile-out leg lives in
// trace_compiled_out_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "imgproc/edge_detail.hpp"
#include "simdcv.hpp"

namespace simdcv {
namespace {

static_assert(prof::kCompiledIn,
              "trace_test.cpp builds only in the SIMDCV_ENABLE_TRACE=ON leg");

// Every test starts from a quiet, clean profiler and leaves it disabled.
class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::setEnabled(false);
    prof::reset();
  }
  void TearDown() override {
    prof::setEnabled(false);
    prof::setHwCountersEnabled(false);
    prof::reset();
    runtime::setNumThreads(1);
  }
};

const prof::KernelStat* findKernel(const prof::Snapshot& s,
                                   const std::string& name) {
  for (const auto& k : s.kernels)
    if (k.name == name) return &k;
  return nullptr;
}

std::uint64_t spinNs(std::uint64_t ns) {
  const std::uint64_t t0 = prof::nowNs();
  std::uint64_t t;
  while ((t = prof::nowNs()) - t0 < ns) {
  }
  return t - t0;
}

TEST_F(ProfTest, DisabledRecordsNothing) {
  ASSERT_FALSE(prof::enabled());
  {
    SIMDCV_TRACE_SCOPE("off.span", prof::kNoPath, 42);
    prof::instant("off.instant");
    prof::addSample("off.sample", KernelPath::Auto, 100, 10);
  }
  const prof::Snapshot s = prof::snapshot();
  EXPECT_EQ(s.total_spans, 0u);
  EXPECT_EQ(findKernel(s, "off.span"), nullptr);
  EXPECT_EQ(findKernel(s, "off.instant"), nullptr);
  EXPECT_EQ(findKernel(s, "off.sample"), nullptr);
}

TEST_F(ProfTest, SpanAggregation) {
  prof::setEnabled(true);
  for (int i = 0; i < 10; ++i) {
    SIMDCV_TRACE_SCOPE("agg.span", KernelPath::Auto, 1000);
    spinNs(2000);
  }
  const prof::Snapshot s = prof::snapshot();
  const prof::KernelStat* k = findKernel(s, "agg.span");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->count, 10u);
  EXPECT_EQ(k->bytes, 10000u);
  EXPECT_GE(k->min_ns, 2000u);
  EXPECT_GE(k->total_ns, 20000u);
  EXPECT_GE(k->max_ns, k->min_ns);
  EXPECT_GE(k->p99_ns, k->min_ns);
  EXPECT_LE(k->p99_ns, k->max_ns);
  EXPECT_NEAR(k->mean_ns, static_cast<double>(k->total_ns) / 10.0, 0.5);
  EXPECT_GT(k->gbps, 0.0);
  EXPECT_EQ(k->pathLabel(), std::string(toString(KernelPath::Auto)));
}

TEST_F(ProfTest, AddSampleAndInstant) {
  prof::setEnabled(true);
  prof::addSample("sample.kernel", KernelPath::Sse2, 5000, 4096);
  prof::addSample("sample.kernel", KernelPath::Sse2, 7000, 4096);
  prof::instant("sample.instant");
  const prof::Snapshot s = prof::snapshot();
  const prof::KernelStat* k = findKernel(s, "sample.kernel");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->count, 2u);
  EXPECT_EQ(k->total_ns, 12000u);
  EXPECT_EQ(k->bytes, 8192u);
  const prof::KernelStat* i = findKernel(s, "sample.instant");
  ASSERT_NE(i, nullptr);
  EXPECT_EQ(i->count, 1u);
  // Instants are not spans.
  EXPECT_EQ(s.total_spans, 2u);
}

// A public kernel run through parallel_for with a worker pool: the kernel
// span lands on the caller, band spans on every participating thread, and
// pool.task events account for the worker-executed bands.
TEST_F(ProfTest, ParallelForAttributesBandsAndPoolWork) {
  runtime::setNumThreads(4);
  runtime::warmupPool();
  Mat src(2048, 2048, U8C1);
  src.setTo(77);
  Mat dst;
  imgproc::threshold(src, dst, 128.0, 255.0, imgproc::ThresholdType::Binary);

  prof::reset();
  prof::setEnabled(true);
  imgproc::threshold(src, dst, 128.0, 255.0, imgproc::ThresholdType::Binary);
  // Quiesce: a worker's pool.task span commits after the fork/join latch
  // releases the caller, so join the workers before counting.
  runtime::shutdownPool();
  prof::setEnabled(false);

  const prof::Snapshot s = prof::snapshot();
  const prof::KernelStat* thr = findKernel(s, "threshold");
  ASSERT_NE(thr, nullptr);
  EXPECT_EQ(thr->count, 1u);
  EXPECT_EQ(thr->bytes, 2u * 2048u * 2048u);

  const prof::KernelStat* band = findKernel(s, "parallel_for.band");
  ASSERT_NE(band, nullptr) << "2048x2048 u8 threshold must fork at 4 threads";
  EXPECT_GE(band->count, 2u);
  // caller band + one band per worker-executed pool task
  EXPECT_EQ(band->count, s.pool.tasks + 1);
  EXPECT_GE(s.threads, 2u);
  // The kernel span must enclose at least the caller's band work.
  EXPECT_GE(thr->total_ns, band->min_ns);
}

TEST_F(ProfTest, SnapshotDeterministicAcrossRuns) {
  runtime::setNumThreads(4);
  runtime::warmupPool();
  Mat src(2048, 2048, U8C1);
  src.setTo(19);
  Mat dst;
  imgproc::threshold(src, dst, 99.0, 255.0, imgproc::ThresholdType::Binary);

  auto workload = [&] {
    prof::reset();
    prof::setEnabled(true);
    for (int i = 0; i < 5; ++i)
      imgproc::threshold(src, dst, 99.0, 255.0,
                         imgproc::ThresholdType::Binary);
    prof::setEnabled(false);
    return prof::snapshot();
  };
  const prof::Snapshot a = workload();
  const prof::Snapshot b = workload();

  const prof::KernelStat* ta = findKernel(a, "threshold");
  const prof::KernelStat* tb = findKernel(b, "threshold");
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  // Counts and byte totals are exact invariants of the workload, independent
  // of scheduling; run-to-run only the timings may differ.
  EXPECT_EQ(ta->count, tb->count);
  EXPECT_EQ(ta->bytes, tb->bytes);
  EXPECT_EQ(ta->count, 5u);
  const prof::KernelStat* ba = findKernel(a, "parallel_for.band");
  const prof::KernelStat* bb = findKernel(b, "parallel_for.band");
  ASSERT_NE(ba, nullptr);
  ASSERT_NE(bb, nullptr);
  EXPECT_EQ(ba->count, bb->count);
}

// Wraparound loses raw events only: aggregates keep exact counts, and the
// dropped-event counter reports the overwrites. A fresh thread gets a ring
// at the (shrunken) capacity configured before it first records.
TEST_F(ProfTest, RingWraparoundKeepsAggregates) {
  const std::size_t oldCap = prof::ringCapacity();
  prof::setRingCapacity(16);
  EXPECT_EQ(prof::ringCapacity(), 16u);
  prof::setEnabled(true);
  std::thread recorder([] {
    for (int i = 0; i < 100; ++i)
      prof::addSample("wrap.test", KernelPath::Auto, 10, 1);
  });
  recorder.join();
  prof::setEnabled(false);
  const prof::Snapshot s = prof::snapshot();
  const prof::KernelStat* k = findKernel(s, "wrap.test");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->count, 100u);  // statistics never dropped
  EXPECT_EQ(k->bytes, 100u);
  EXPECT_GE(s.dropped_events, 100u - 16u);  // raw events were overwritten
  prof::setRingCapacity(oldCap);
}

TEST_F(ProfTest, SetRingCapacityClampsAndRounds) {
  const std::size_t oldCap = prof::ringCapacity();
  prof::setRingCapacity(1);
  EXPECT_EQ(prof::ringCapacity(), 16u);  // floor
  prof::setRingCapacity(1000);
  EXPECT_EQ(prof::ringCapacity(), 1024u);  // next power of two
  prof::setRingCapacity(oldCap);
}

// The harness Timer and trace spans read the same clock: a span around a
// timed busy-wait must agree with the Timer within 1%. Preemption between
// the Timer reads and the span boundaries can stretch one window but not
// the other on a loaded host, so retry until an undisturbed window lands.
TEST_F(ProfTest, HarnessTimerAgreesWithSpanClock) {
  double timerSec = 0.0, spanSec = 0.0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    prof::setEnabled(true);
    prof::reset();
    bench::Timer timer;
    timer.start();
    {
      SIMDCV_TRACE_SCOPE("clock.agree");
      spinNs(20'000'000);  // 20 ms
    }
    timerSec = timer.stop();
    prof::setEnabled(false);
    const prof::KernelStat* k = findKernel(prof::snapshot(), "clock.agree");
    ASSERT_NE(k, nullptr);
    spanSec = static_cast<double>(k->total_ns) * 1e-9;
    ASSERT_GT(spanSec, 0.0);
    // The Timer window strictly contains the span window, so timer >= span;
    // both read prof::nowNs(), so they agree to the enter/exit cost.
    ASSERT_GE(timerSec, spanSec * 0.999);
    if (timerSec - spanSec <= 0.01 * timerSec) break;
  }
  EXPECT_NEAR(timerSec, spanSec, 0.01 * timerSec);
}

// Minimal JSON syntax walker (objects/arrays/strings/numbers/literals) —
// enough to prove the chrome trace is well-formed without a JSON library.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : s_(text) {}
  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST_F(ProfTest, ChromeTraceIsWellFormedJson) {
  prof::setEnabled(true);
  {
    SIMDCV_TRACE_SCOPE("json.kernel", KernelPath::Sse2, 1024);
    spinNs(10'000);
  }
  prof::instant("json.instant");
  {
    // Name with JSON-hostile characters must be escaped, not corrupt output.
    SIMDCV_TRACE_SCOPE("json.\"quoted\\name\"");
  }
  prof::setEnabled(false);

  const std::string path =
      ::testing::TempDir() + "simdcv_prof_trace_test.json";
  ASSERT_TRUE(prof::writeChromeTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::remove(path.c_str());

  EXPECT_TRUE(JsonCursor(text).valid()) << "not valid JSON:\n" << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"json.kernel\""), std::string::npos);
  EXPECT_NE(text.find("\"json.instant\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
}

TEST_F(ProfTest, WriteChromeTraceFailsCleanlyOnBadPath) {
  EXPECT_FALSE(prof::writeChromeTrace("/nonexistent-dir/трейс/x.json"));
}

TEST_F(ProfTest, SummaryTextAndCsvContainKernels) {
  prof::setEnabled(true);
  prof::addSample("fmt.kernel", KernelPath::Neon, 1000, 2048);
  prof::setEnabled(false);
  const prof::Snapshot s = prof::snapshot();
  std::ostringstream text;
  prof::writeSummary(text, s);
  EXPECT_NE(text.str().find("fmt.kernel"), std::string::npos);
  EXPECT_NE(text.str().find("pool:"), std::string::npos);
  std::ostringstream csv;
  prof::writeSummaryCsv(csv, s);
  EXPECT_NE(csv.str().find("kernel,path,calls"), std::string::npos);
  EXPECT_NE(csv.str().find("fmt.kernel,"), std::string::npos);
  // Prefix filtering drops non-matching kernels.
  std::ostringstream filtered;
  prof::writeSummary(filtered, s, "no.such.prefix");
  EXPECT_EQ(filtered.str().find("fmt.kernel"), std::string::npos);
}

// The fused edge pipeline attributes per-stage time via addSample: with
// tracing on, a fused run must produce the five stage rows plus the
// pipeline span, and the stage times must sum to less than the pipeline
// total (they are bracketed sub-intervals of it).
TEST_F(ProfTest, FusedEdgeEmitsStageBreakdown) {
  Mat src(256, 512, U8C1);
  src.setTo(0);
  for (int r = 64; r < 192; ++r)
    std::memset(src.ptr<std::uint8_t>(r) + 128, 200, 256);
  Mat dst;
  imgproc::edgeDetectFused(src, dst, 100.0);  // warm scratch untraced

  prof::reset();
  prof::setEnabled(true);
  imgproc::edgeDetectFused(src, dst, 100.0);
  prof::setEnabled(false);

  const prof::Snapshot s = prof::snapshot();
  const prof::KernelStat* fused = findKernel(s, "edge.fused");
  ASSERT_NE(fused, nullptr);
  EXPECT_EQ(fused->count, 1u);
  std::uint64_t stageSum = 0;
  for (const char* stage :
       {"edge.fused.rowConv", "edge.fused.colConv", "edge.fused.cvt",
        "edge.fused.magnitude", "edge.fused.threshold"}) {
    const prof::KernelStat* k = findKernel(s, stage);
    ASSERT_NE(k, nullptr) << stage;
    EXPECT_GE(k->count, 1u) << stage;
    stageSum += k->total_ns;
  }
  EXPECT_GT(stageSum, 0u);
  EXPECT_LE(stageSum, fused->total_ns);
}

// ---- perf_event graceful fallback ------------------------------------------

TEST_F(ProfTest, PerfCountersForcedUnavailableFallBackCleanly) {
  prof::detail::forceHwUnavailableForTest(true);
  EXPECT_FALSE(prof::hwCountersUsable());
  EXPECT_FALSE(prof::hwCountersUnavailableReason().empty());
  {
    prof::PerfCounters probe;
    EXPECT_FALSE(probe.available());
    EXPECT_FALSE(probe.unavailableReason().empty());
    const prof::HwCounters c = probe.read();
    EXPECT_EQ(c.cycles, 0u);
    EXPECT_EQ(c.instructions, 0u);
    EXPECT_EQ(c.cache_misses, 0u);
  }
  // Spans must keep recording (timestamps only) with hw requested but
  // unavailable — the graceful-degradation contract.
  prof::setHwCountersEnabled(true);
  prof::setEnabled(true);
  {
    SIMDCV_TRACE_SCOPE("hw.fallback", KernelPath::Auto, 64);
    spinNs(5'000);
  }
  prof::setEnabled(false);
  prof::setHwCountersEnabled(false);
  prof::detail::forceHwUnavailableForTest(false);
  const prof::KernelStat* k = findKernel(prof::snapshot(), "hw.fallback");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->count, 1u);
  EXPECT_GE(k->total_ns, 5'000u);
  EXPECT_EQ(k->cycles, 0u);
  EXPECT_EQ(k->instructions, 0u);
}

TEST_F(ProfTest, PerfCountersLiveWhenHostAllows) {
  if (!prof::hwCountersUsable())
    GTEST_SKIP() << "perf_event unavailable here: "
                 << prof::hwCountersUnavailableReason();
  prof::setHwCountersEnabled(true);
  prof::setEnabled(true);
  {
    SIMDCV_TRACE_SCOPE("hw.live", KernelPath::Auto, 0);
    volatile double x = 1.0;
    for (int i = 0; i < 100000; ++i) x = x * 1.0000001 + 0.5;
  }
  prof::setEnabled(false);
  prof::setHwCountersEnabled(false);
  const prof::KernelStat* k = findKernel(prof::snapshot(), "hw.live");
  ASSERT_NE(k, nullptr);
  EXPECT_GT(k->instructions, 100000u);  // at least one instr per iteration
  EXPECT_GT(k->cycles, 0u);
}

TEST_F(ProfTest, GradientMagnitudeBytesMatchRowHelper) {
  // The trace accounting and the parallel_for fork heuristic must price the
  // same traffic: rows * magnitudeRowBytes (two s16 gradient reads + one u8
  // write per element). Before the shared helper the fork decision priced
  // only the 2*n*sizeof(int16) inputs and disagreed with the trace.
  constexpr int kRows = 17, kCols = 33;
  Mat gx(kRows, kCols, S16C1), gy(kRows, kCols, S16C1), mag;
  for (int r = 0; r < kRows; ++r)
    for (int c = 0; c < kCols; ++c) {
      gx.ptr<std::int16_t>(r)[c] = static_cast<std::int16_t>(r - c);
      gy.ptr<std::int16_t>(r)[c] = static_cast<std::int16_t>(c);
    }
  prof::setEnabled(true);
  imgproc::gradientMagnitude(gx, gy, mag);
  prof::setEnabled(false);
  const prof::KernelStat* k =
      findKernel(prof::snapshot(), "gradientMagnitude");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->bytes,
            kRows * imgproc::detail::magnitudeRowBytes(kCols));
  EXPECT_EQ(k->bytes,
            std::uint64_t(kRows) * kCols * (2 * sizeof(std::int16_t) + 1));
}

TEST_F(ProfTest, ResetClearsEverything) {
  prof::setEnabled(true);
  prof::addSample("reset.kernel", KernelPath::Auto, 100, 1);
  prof::reset();
  prof::setEnabled(false);
  const prof::Snapshot s = prof::snapshot();
  EXPECT_EQ(findKernel(s, "reset.kernel"), nullptr);
  EXPECT_EQ(s.total_spans, 0u);
  EXPECT_EQ(s.dropped_events, 0u);
}

}  // namespace
}  // namespace simdcv
