// gtest wrapper around simdcv::check — runs the differential oracle with a
// fixed seed as part of the tier-1 suite (ctest label `check`), plus unit
// coverage for the generator, the shrinker and the comparison utilities the
// oracle depends on.
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/mat.hpp"

namespace simdcv::check {
namespace {

// ---- the oracle itself -----------------------------------------------------

TEST(CheckAll, AllKernelsAgreeAcrossPaths) {
  Options opts;
  opts.iters = 40;  // the standalone check_all binary runs the full 500
  const Report report = runAll(opts);
  EXPECT_GE(report.kernels_checked, 25u);
  EXPECT_EQ(report.cases_run, report.kernels_checked * 40);
  for (const Failure& f : report.failures) {
    ADD_FAILURE() << f.kernel << ": " << f.mismatches
                  << " mismatches, repro: " << f.repro;
  }
}

TEST(CheckAll, SecondSeedAgreesToo) {
  Options opts;
  opts.seed = 0xfeedface5eedull;
  opts.iters = 15;
  EXPECT_TRUE(runAll(opts).ok());
}

TEST(CheckAll, OnlyFilterSelectsSubset) {
  Options opts;
  opts.iters = 5;
  opts.only = "threshold.";
  const Report report = runAll(opts);
  EXPECT_EQ(report.kernels_checked, 5u);  // the five threshold types
  EXPECT_TRUE(report.ok());
}

// ---- generator -------------------------------------------------------------

TEST(CheckGen, DeterministicPerSeedAndSalt) {
  CaseSpec c;
  c.seed = 0x1234;
  c.rows = 7;
  c.cols = 13;
  c.domain = Domain::Special;
  const Mat a1 = genMat(c, 1, F32C1);
  const Mat a2 = genMat(c, 1, F32C1);
  const Mat b = genMat(c, 2, F32C1);
  EXPECT_EQ(countMismatches(a1, a2), 0u);
  EXPECT_GT(countMismatches(a1, b), 0u);  // different stream
}

TEST(CheckGen, RoiCasesAreNonContiguousViews) {
  CaseSpec c;
  c.seed = 99;
  c.rows = 5;
  c.cols = 8;
  c.roiX = 3;
  c.roiY = 2;
  const Mat m = genMat(c, 1, U8C1);
  EXPECT_EQ(m.rows(), 5);
  EXPECT_EQ(m.cols(), 8);
  EXPECT_FALSE(m.isContinuous());
}

TEST(CheckGen, BoundaryDomainHitsSaturationPivots) {
  CaseSpec c;
  c.seed = 7;
  c.rows = 16;
  c.cols = 64;
  c.domain = Domain::Boundary;
  const Mat m = genMat(c, 1, F32C1);
  bool sawTie = false;
  for (int y = 0; y < m.rows() && !sawTie; ++y) {
    const float* p = m.ptr<float>(y);
    for (int x = 0; x < m.cols(); ++x) {
      if (p[x] == 32768.5f || p[x] == -32768.5f || p[x] == 255.5f) {
        sawTie = true;
        break;
      }
    }
  }
  EXPECT_TRUE(sawTie) << "boundary domain never produced a saturation tie";
}

TEST(CheckGen, DescribeRoundTripsTheSpecFields) {
  CaseSpec c;
  c.seed = 0xabcdef;
  c.rows = 3;
  c.cols = 97;
  c.roiX = 4;
  c.roiY = 1;
  c.domain = Domain::Boundary;
  c.variant = 42;
  EXPECT_EQ(describe(c),
            "seed=0xabcdef rows=3 cols=97 roi=4,1 domain=boundary variant=42");
}

// ---- oracle mechanics on a deliberately broken kernel ----------------------

/// A fake kernel that is correct everywhere except one path, where the top-left
/// element is off by one: the checker must flag exactly that path and the
/// shrinker must reduce the case to 1x1 (the bug survives any shrink).
KernelCheck brokenKernel() {
  return {"fake.broken",
          [](const CaseSpec& c, KernelPath p) {
            Mat owned = genMat(c, 1, U8C1).clone();
            if (p == KernelPath::Sse2) {
              owned.at<std::uint8_t>(0, 0) =
                  static_cast<std::uint8_t>(owned.at<std::uint8_t>(0, 0) + 1);
            }
            return owned;
          },
          0.0};
}

TEST(CheckOracle, FlagsExactlyTheBrokenPath) {
  CaseSpec c;
  c.seed = 11;
  c.rows = 9;
  c.cols = 33;
  const auto failures = checkCase(brokenKernel(), c, 2, 0.0);
  ASSERT_EQ(failures.size(), 2u);  // sse2 x {1, 2} threads
  for (const auto& f : failures) {
    EXPECT_EQ(f.path, KernelPath::Sse2);
    EXPECT_EQ(f.mismatches, 1u);
    EXPECT_EQ(f.max_abs_diff, 1.0);
    EXPECT_NE(f.repro.find("fake.broken"), std::string::npos);
  }
}

TEST(CheckOracle, CleanKernelProducesNoFailures) {
  KernelCheck clean{"fake.clean",
                    [](const CaseSpec& c, KernelPath) {
                      return genMat(c, 1, U8C1).clone();
                    },
                    0.0};
  CaseSpec c;
  c.seed = 12;
  c.rows = 4;
  c.cols = 17;
  c.roiX = 2;
  c.roiY = 1;
  EXPECT_TRUE(checkCase(clean, c, 2, 0.0).empty());
}

// ---- comparison-utility regressions the oracle surfaced --------------------

// Two +Inf outputs are EQUAL: |Inf - Inf| is NaN, and the comparator used to
// count that as a mismatch, flagging every path (including the reference
// against itself at a different thread count) on any case whose correct
// output contained an infinity.
TEST(CompareRegression, EqualInfinitiesAreNotMismatches) {
  const float inf = std::numeric_limits<float>::infinity();
  Mat a(1, 4, F32C1);
  Mat b(1, 4, F32C1);
  float* pa = a.ptr<float>(0);
  float* pb = b.ptr<float>(0);
  pa[0] = inf;     pb[0] = inf;
  pa[1] = -inf;    pb[1] = -inf;
  pa[2] = 1.0f;    pb[2] = 1.0f;
  pa[3] = 0.0f;    pb[3] = -0.0f;  // +0 == -0
  EXPECT_EQ(countMismatches(a, b), 0u);
  EXPECT_EQ(maxAbsDiff(a, b), 0.0);

  pb[0] = -inf;  // opposite infinities DO differ
  EXPECT_EQ(countMismatches(a, b), 1u);
  pb[0] = 1.0f;  // Inf vs finite differs too
  EXPECT_EQ(countMismatches(a, b), 1u);
}

}  // namespace
}  // namespace simdcv::check
