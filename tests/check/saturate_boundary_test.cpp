// Exhaustive saturation-boundary tables for float -> 8U/16S conversion,
// checked against every compiled kernel path. These values are exactly where
// the paper's benchmark-1 kernel family historically disagreed:
//
//   - half-integers at the rails (+/-32768.5, 255.5) decide both the
//     round-half-to-even tie AND the clamp,
//   - values just inside the rails (+/-32767.49) must NOT clamp,
//   - NaN maps to 0 and +/-Inf clamps (the ARM vcvtnq + saturating-narrow
//     semantics the scalar and x86 paths are required to reproduce),
//   - denormals are ordinary tiny numbers and round to 0.
//
// The expectations are the library contract (see saturate.hpp): out-of-range
// inputs saturate, NaN -> 0, ties round to even. Before the pre-clamp fix
// the scalar specializations hit cvRound UB (C11 F.10.6.5) for anything
// outside int range, so e.g. saturate_cast<int16_t>(3e9f) "worked" only by
// accident of the host's lrintf overflow behaviour.
#include "core/saturate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/convert.hpp"
#include "simd/features.hpp"

namespace simdcv {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kDenorm = std::numeric_limits<float>::denorm_min();

struct Case16s {
  float in;
  std::int16_t want;
};
struct Case8u {
  float in;
  std::uint8_t want;
};

// clang-format off
const std::vector<Case16s> kTable16s = {
    // Ties at and near the positive rail: 32767.5 rounds to even 32768,
    // which saturates; 32766.5 rounds to 32766 (even), staying in range.
    {32768.5f, 32767}, {32768.0f, 32767}, {32767.5f, 32767},
    {32767.49f, 32767}, {32767.0f, 32767}, {32766.5f, 32766},
    {32766.51f, 32767}, {32765.5f, 32766},
    // Negative rail: -32768.5 ties to even -32768 (in range!); -32769 clamps.
    {-32768.5f, -32768}, {-32768.0f, -32768}, {-32767.5f, -32768},
    {-32767.49f, -32767}, {-32767.0f, -32767}, {-32766.5f, -32766},
    {-32769.0f, -32768}, {-40000.0f, -32768}, {40000.0f, 32767},
    // Ties around zero: round half to even.
    {0.5f, 0}, {-0.5f, 0}, {1.5f, 2}, {-1.5f, -2}, {2.5f, 2}, {-2.5f, -2},
    {0.49f, 0}, {-0.49f, 0}, {0.51f, 1}, {-0.51f, -1},
    // Special values: NaN -> 0, infinities clamp, denormals round to 0.
    {kNaN, 0}, {kInf, 32767}, {-kInf, -32768},
    {kDenorm, 0}, {-kDenorm, 0}, {1e-42f, 0}, {-1e-42f, 0},
    // Far out of int32 range: UB territory for a bare cvRound.
    {3e9f, 32767}, {-3e9f, -32768}, {2147483648.0f, 32767},
    {-2147483648.0f, -32768}, {2147483520.0f, 32767},
    {std::numeric_limits<float>::max(), 32767},
    {-std::numeric_limits<float>::max(), -32768},
    {1e38f, 32767}, {-1e38f, -32768},
    {0.0f, 0}, {-0.0f, 0},
};

const std::vector<Case8u> kTable8u = {
    // Positive rail: 255.5 ties to even 256 -> clamps; 254.5 ties to 254.
    {255.5f, 255}, {255.49f, 255}, {255.0f, 255}, {254.5f, 254},
    {254.51f, 255}, {253.5f, 254}, {256.0f, 255}, {1000.0f, 255},
    // Negative side: everything below -0.5-tie clamps to 0.
    {-0.5f, 0}, {-0.49f, 0}, {-0.51f, 0}, {-1.0f, 0}, {-255.5f, 0},
    {-1000.0f, 0},
    // Ties inside the range.
    {0.5f, 0}, {1.5f, 2}, {2.5f, 2}, {127.5f, 128}, {128.5f, 128},
    // Specials.
    {kNaN, 0}, {kInf, 255}, {-kInf, 0}, {kDenorm, 0}, {-kDenorm, 0},
    // Outside int32 range.
    {3e9f, 255}, {-3e9f, 0}, {2147483648.0f, 255},
    {std::numeric_limits<float>::max(), 255},
    {-std::numeric_limits<float>::max(), 0},
    {0.0f, 0}, {-0.0f, 0},
};
// clang-format on

// ---- scalar saturate_cast --------------------------------------------------

TEST(SaturateBoundary, ScalarFloatTo16s) {
  for (const auto& c : kTable16s) {
    EXPECT_EQ(saturate_cast<std::int16_t>(c.in), c.want) << "in=" << c.in;
  }
}

TEST(SaturateBoundary, ScalarFloatTo8u) {
  for (const auto& c : kTable8u) {
    EXPECT_EQ(saturate_cast<std::uint8_t>(c.in), c.want) << "in=" << c.in;
  }
}

TEST(SaturateBoundary, ScalarDoubleMatchesFloatTables) {
  for (const auto& c : kTable16s) {
    EXPECT_EQ(saturate_cast<std::int16_t>(static_cast<double>(c.in)), c.want)
        << "in=" << c.in;
  }
  for (const auto& c : kTable8u) {
    EXPECT_EQ(saturate_cast<std::uint8_t>(static_cast<double>(c.in)), c.want)
        << "in=" << c.in;
  }
}

TEST(SaturateBoundary, ScalarFloatToUnsigned16) {
  EXPECT_EQ(saturate_cast<std::uint16_t>(65535.5f), 65535);
  EXPECT_EQ(saturate_cast<std::uint16_t>(65534.5f), 65534);
  EXPECT_EQ(saturate_cast<std::uint16_t>(-0.5f), 0);
  EXPECT_EQ(saturate_cast<std::uint16_t>(-1.0f), 0);
  EXPECT_EQ(saturate_cast<std::uint16_t>(kNaN), 0);
  EXPECT_EQ(saturate_cast<std::uint16_t>(kInf), 65535);
  EXPECT_EQ(saturate_cast<std::uint16_t>(-kInf), 0);
  EXPECT_EQ(saturate_cast<std::uint16_t>(3e9f), 65535);
  EXPECT_EQ(saturate_cast<std::uint16_t>(-3e9f), 0);
}

// ---- every compiled kernel path --------------------------------------------
//
// The flat-array kernels are fed the whole table at once, repeated past the
// vector width so both the SIMD main loop and the scalar tail see boundary
// values (a 33-element buffer covers a 32-lane AVX2 step plus its tail).

template <typename Fn>
void check16sKernel(const char* name, Fn fn) {
  std::vector<float> in;
  std::vector<std::int16_t> want;
  for (int rep = 0; rep < 2; ++rep) {
    for (const auto& c : kTable16s) {
      in.push_back(c.in);
      want.push_back(c.want);
    }
  }
  std::vector<std::int16_t> got(in.size(), 12345);
  fn(in.data(), got.data(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << name << " lane " << i << " in=" << in[i];
  }
}

template <typename Fn>
void check8uKernel(const char* name, Fn fn) {
  std::vector<float> in;
  std::vector<std::uint8_t> want;
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& c : kTable8u) {
      in.push_back(c.in);
      want.push_back(c.want);
    }
  }
  std::vector<std::uint8_t> got(in.size(), 77);
  fn(in.data(), got.data(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << name << " lane " << i << " in=" << in[i];
  }
}

TEST(SaturateBoundary, Cvt32f16sAllPaths) {
  check16sKernel("novec", &core::novec::cvt32f16s);
  check16sKernel("autovec", &core::autovec::cvt32f16s);
  check16sKernel("sse2", &core::sse2::cvt32f16s);
  check16sKernel("neon-emu", &core::neon::cvt32f16s);
  if (pathAvailable(KernelPath::Avx2)) {
    check16sKernel("avx2", &core::avx2::cvt32f16s);
  }
}

TEST(SaturateBoundary, Cvt32f8uAllPaths) {
  check8uKernel("sse2", &core::sse2::cvt32f8u);
  check8uKernel("neon-emu", &core::neon::cvt32f8u);
  if (pathAvailable(KernelPath::Avx2)) {
    check8uKernel("avx2", &core::avx2::cvt32f8u);
  }
}

}  // namespace
}  // namespace simdcv
