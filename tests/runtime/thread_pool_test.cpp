// Thread pool / parallel_for semantics: ordering-free completion, exception
// propagation, nested-region safety, the single-thread fallback, the env-var
// parser, the grain heuristic, and the observability counters.
#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/parallel.hpp"

namespace simdcv::runtime {
namespace {

// Every test leaves the process single-threaded so suites sharing the binary
// (and tier-1 runs) see the paper-default configuration.
class RuntimeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    setNumThreads(1);
    shutdownPool();
  }
};

TEST_F(RuntimeTest, CompletesEveryIndexExactlyOnce) {
  setNumThreads(4);
  constexpr int kLen = 1000;
  std::vector<std::atomic<int>> hits(kLen);
  for (auto& h : hits) h.store(0);
  parallel_for({0, kLen},
               [&](Range band) {
                 for (int i = band.begin; i < band.end; ++i)
                   hits[static_cast<std::size_t>(i)].fetch_add(1);
               },
               /*grain=*/1);
  for (int i = 0; i < kLen; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST_F(RuntimeTest, BandsRunOnWorkerThreads) {
  setNumThreads(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  parallel_for({0, 4},
               [&](Range) {
                 std::lock_guard<std::mutex> lk(mu);
                 ids.insert(std::this_thread::get_id());
               },
               1);
  // 4 bands: one on the caller, three dealt to workers. Even a 1-core host
  // runs pool workers as real threads, so at least two ids must appear.
  EXPECT_GE(ids.size(), 2u);
  EXPECT_TRUE(ids.count(std::this_thread::get_id()));
}

TEST_F(RuntimeTest, PropagatesFirstException) {
  setNumThreads(4);
  EXPECT_THROW(
      parallel_for({0, 100},
                   [&](Range band) {
                     if (band.begin <= 42 && 42 < band.end)
                       throw std::runtime_error("band failure");
                   },
                   1),
      std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<int> done{0};
  parallel_for({0, 8}, [&](Range band) { done += band.size(); }, 1);
  EXPECT_EQ(done.load(), 8);
}

TEST_F(RuntimeTest, NestedParallelForRunsInlineWithoutDeadlock) {
  setNumThreads(4);
  std::atomic<int> outer{0}, outer_calls{0}, inner{0}, nested_in_worker{0};
  parallel_for({0, 8},
               [&](Range band) {
                 outer += band.size();
                 outer_calls += 1;
                 const bool in_worker = inWorkerThread();
                 parallel_for({0, 10},
                              [&](Range ib) {
                                inner += ib.size();
                                if (in_worker && inWorkerThread())
                                  nested_in_worker += 1;
                              },
                              1);
               },
               1);
  EXPECT_EQ(outer.load(), 8);
  // Each outer band body runs one full nested region of 10 indices.
  EXPECT_EQ(inner.load(), outer_calls.load() * 10);
  // Bands that ran on workers must have executed their nested region inline
  // (still flagged as worker context, one body call for the whole range).
  EXPECT_GT(nested_in_worker.load(), 0);
}

TEST_F(RuntimeTest, SingleThreadRunsInlineOnCaller) {
  setNumThreads(1);
  resetPoolStats();
  std::set<std::thread::id> ids;
  parallel_for({0, 64},
               [&](Range) { ids.insert(std::this_thread::get_id()); }, 1);
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_TRUE(ids.count(std::this_thread::get_id()));
  EXPECT_EQ(poolStats().tasks_executed, 0u);  // the pool never woke up
}

TEST_F(RuntimeTest, EmptyAndTinyRanges) {
  setNumThreads(4);
  int calls = 0;
  parallel_for({5, 5}, [&](Range) { ++calls; }, 1);
  EXPECT_EQ(calls, 0);
  parallel_for({3, 4}, [&](Range r) { calls += r.size(); }, 1);
  EXPECT_EQ(calls, 1);
}

TEST_F(RuntimeTest, EnvVarParser) {
  EXPECT_EQ(detail::parseThreadCount(nullptr), -1);
  EXPECT_EQ(detail::parseThreadCount(""), -1);
  EXPECT_EQ(detail::parseThreadCount("abc"), -1);
  EXPECT_EQ(detail::parseThreadCount("-2"), -1);
  EXPECT_EQ(detail::parseThreadCount("3junk"), -1);
  EXPECT_EQ(detail::parseThreadCount("1"), 1);
  EXPECT_EQ(detail::parseThreadCount("4"), 4);
  // 0 means "all cores".
  EXPECT_EQ(detail::parseThreadCount("0"), maxHardwareThreads());
}

TEST_F(RuntimeTest, SetNumThreadsClampsAndReports) {
  setNumThreads(3);
  EXPECT_EQ(getNumThreads(), 3);
  setNumThreads(0);  // 0 -> hardware concurrency
  EXPECT_EQ(getNumThreads(), maxHardwareThreads());
  setNumThreads(-5);
  EXPECT_EQ(getNumThreads(), maxHardwareThreads());
  setNumThreads(1);
  EXPECT_EQ(getNumThreads(), 1);
}

TEST_F(RuntimeTest, ParallelThresholdKeepsTinyImagesSerial) {
  // A 64x64 u8 image is far below the fork threshold: grain == rows means
  // "one band", i.e. inline execution.
  EXPECT_EQ(parallelThreshold(64, 64), 64);
  // A 5-mpx row is heavy enough that many bands fit.
  const int grain = parallelThreshold(2592, 1920);
  EXPECT_GE(grain, 1);
  EXPECT_LT(grain, 1920 / 2);
  // Higher compute per byte lowers the row threshold.
  EXPECT_LE(parallelThreshold(2592, 1920, 14.0), grain);
}

TEST_F(RuntimeTest, StatsCountTasksAndWakeups) {
  setNumThreads(4);
  warmupPool();
  resetPoolStats();
  parallel_for({0, 400}, [](Range) {}, 1);
  const PoolStats s = poolStats();
  EXPECT_EQ(s.tasks_executed, 3u);  // 4 bands, one inline on the caller
  // Parks/unparks are timing-dependent; just require coherence.
  EXPECT_GE(s.unparks, 0u);
  EXPECT_GE(s.parks, s.unparks > 0 ? 1u : 0u);
}

TEST_F(RuntimeTest, ManySmallRegionsStress) {
  setNumThreads(4);
  for (int iter = 0; iter < 200; ++iter) {
    std::atomic<int> total{0};
    parallel_for({0, 16}, [&](Range b) { total += b.size(); }, 1);
    ASSERT_EQ(total.load(), 16) << "iteration " << iter;
  }
}

}  // namespace
}  // namespace simdcv::runtime
