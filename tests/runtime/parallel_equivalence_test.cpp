// Determinism guarantee of band-parallel execution: for every paper kernel
// (convert, threshold, Gaussian, Sobel, edge) and every compiled KernelPath,
// the 4-thread output is bit-identical to the 1-thread output, including on
// degenerate and odd sizes that stress band-boundary handling.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "core/array_ops.hpp"
#include "core/convert.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/threshold.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace simdcv {
namespace {

constexpr int kThreads = 4;

const std::vector<Size>& testSizes() {
  static const std::vector<Size> s = {
      {1, 1}, {5, 3}, {64, 64}, {479, 641}, {641, 479}};
  return s;
}

std::vector<KernelPath> compiledPaths() {
  std::vector<KernelPath> out;
  for (KernelPath p : {KernelPath::ScalarNoVec, KernelPath::Auto,
                       KernelPath::Sse2, KernelPath::Avx2, KernelPath::Neon})
    if (pathAvailable(p)) out.push_back(p);
  return out;
}

Mat randomMat(int rows, int cols, PixelType type, unsigned seed) {
  Mat m(rows, cols, type);
  std::mt19937 rng(seed);
  for (int r = 0; r < rows; ++r) {
    auto* p = m.ptr<std::uint8_t>(r);
    const std::size_t bytes =
        static_cast<std::size_t>(cols) * type.elemSize();
    for (std::size_t i = 0; i < bytes; ++i)
      p[i] = static_cast<std::uint8_t>(rng() & 0xff);
  }
  if (m.depth() == Depth::F32) {
    // Re-fill floats from a bounded distribution so no NaN/Inf bit patterns
    // make comparisons vacuous.
    std::uniform_real_distribution<float> dist(-4000.0f, 4000.0f);
    for (int r = 0; r < rows; ++r) {
      float* p = m.ptr<float>(r);
      for (int c = 0; c < cols * m.channels(); ++c) p[c] = dist(rng);
    }
  }
  return m;
}

void expectBitIdentical(const Mat& a, const Mat& b, const char* what,
                        KernelPath path, Size size) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.type(), b.type());
  const std::size_t rowBytes =
      static_cast<std::size_t>(a.cols()) * a.type().elemSize();
  for (int r = 0; r < a.rows(); ++r) {
    ASSERT_EQ(std::memcmp(a.ptr<std::uint8_t>(r), b.ptr<std::uint8_t>(r),
                          rowBytes),
              0)
        << what << " path=" << toString(path) << " size=" << size.width << "x"
        << size.height << " first differing row " << r;
  }
}

/// Run `op` (which writes its output Mat) at 1 thread and at kThreads and
/// compare the outputs byte for byte.
template <typename Op>
void check1vsN(const char* what, KernelPath path, Size size, const Op& op) {
  runtime::setNumThreads(1);
  Mat serial;
  op(serial);
  runtime::setNumThreads(kThreads);
  Mat banded;
  op(banded);
  runtime::setNumThreads(1);
  expectBitIdentical(serial, banded, what, path, size);
}

class ParallelEquivalence : public ::testing::Test {
 protected:
  void TearDown() override {
    runtime::setNumThreads(1);
    runtime::shutdownPool();
  }
};

TEST_F(ParallelEquivalence, ThresholdAllDepths) {
  for (KernelPath path : compiledPaths()) {
    for (Size size : testSizes()) {
      const Mat u8 = randomMat(size.height, size.width, U8C1, 11);
      check1vsN("threshold-u8", path, size, [&](Mat& out) {
        imgproc::threshold(u8, out, 128.0, 255.0,
                           imgproc::ThresholdType::Binary, path);
      });
      const Mat s16 = randomMat(size.height, size.width,
                                PixelType(Depth::S16, 1), 12);
      check1vsN("threshold-s16", path, size, [&](Mat& out) {
        imgproc::threshold(s16, out, 1000.0, 20000.0,
                           imgproc::ThresholdType::ToZero, path);
      });
      const Mat f32 = randomMat(size.height, size.width,
                                PixelType(Depth::F32, 1), 13);
      check1vsN("threshold-f32", path, size, [&](Mat& out) {
        imgproc::threshold(f32, out, 0.5, 1.0,
                           imgproc::ThresholdType::Trunc, path);
      });
    }
  }
}

TEST_F(ParallelEquivalence, ConvertBothDirections) {
  for (KernelPath path : compiledPaths()) {
    for (Size size : testSizes()) {
      const Mat f32 = randomMat(size.height, size.width,
                                PixelType(Depth::F32, 1), 21);
      check1vsN("cvt32f16s", path, size, [&](Mat& out) {
        core::convertTo(f32, out, Depth::S16, 1.0, 0.0, path);
      });
      const Mat u8 = randomMat(size.height, size.width, U8C1, 22);
      check1vsN("cvt8u32f", path, size, [&](Mat& out) {
        core::convertTo(u8, out, Depth::F32, 1.0, 0.0, path);
      });
      // Scaled conversion exercises the non-identity arm.
      check1vsN("cvt-scaled", path, size, [&](Mat& out) {
        core::convertTo(u8, out, Depth::F32, 1.0 / 255.0, -0.5, path);
      });
    }
  }
}

TEST_F(ParallelEquivalence, GaussianBlurBandsMatchSerialRing) {
  for (KernelPath path : compiledPaths()) {
    for (Size size : testSizes()) {
      const Mat u8 = randomMat(size.height, size.width, U8C1, 31);
      check1vsN("gaussian-7x7", path, size, [&](Mat& out) {
        imgproc::GaussianBlur(u8, out, {7, 7}, 1.0, 1.0,
                              imgproc::BorderType::Reflect101, path);
      });
    }
  }
}

TEST_F(ParallelEquivalence, SobelBandsMatchSerialRing) {
  for (KernelPath path : compiledPaths()) {
    for (Size size : testSizes()) {
      const Mat u8 = randomMat(size.height, size.width, U8C1, 41);
      check1vsN("sobel-dx", path, size, [&](Mat& out) {
        imgproc::Sobel(u8, out, Depth::S16, 1, 0, 3, 1.0,
                       imgproc::BorderType::Reflect101, path);
      });
    }
  }
}

TEST_F(ParallelEquivalence, EdgeDetectEndToEnd) {
  for (KernelPath path : compiledPaths()) {
    for (Size size : testSizes()) {
      const Mat u8 = randomMat(size.height, size.width, U8C1, 51);
      check1vsN("edge-detect", path, size, [&](Mat& out) {
        imgproc::edgeDetect(u8, out, 100.0, 3,
                            imgproc::BorderType::Reflect101, path);
      });
    }
  }
}

TEST_F(ParallelEquivalence, ArrayOpsBandsMatch) {
  for (KernelPath path : compiledPaths()) {
    const Size size{641, 479};
    const Mat a = randomMat(size.height, size.width, U8C1, 61);
    const Mat b = randomMat(size.height, size.width, U8C1, 62);
    check1vsN("add-u8", path, size, [&](Mat& out) {
      core::add(a, b, out, path);
    });
    check1vsN("absdiff-u8", path, size, [&](Mat& out) {
      core::absdiff(a, b, out, path);
    });
    const Mat fa = randomMat(size.height, size.width,
                             PixelType(Depth::F32, 1), 63);
    const Mat fb = randomMat(size.height, size.width,
                             PixelType(Depth::F32, 1), 64);
    check1vsN("addWeighted-f32", path, size, [&](Mat& out) {
      core::addWeighted(fa, 0.25, fb, 0.75, 1.5, out, path);
    });
  }
}

// Border modes move data across band seams in different ways; Wrap and
// Constant are the adversarial ones for the ring-buffer re-priming.
TEST_F(ParallelEquivalence, FilterBorderModesAcrossSeams) {
  for (imgproc::BorderType border :
       {imgproc::BorderType::Replicate, imgproc::BorderType::Reflect101,
        imgproc::BorderType::Constant, imgproc::BorderType::Wrap}) {
    const Size size{127, 200};
    const Mat u8 = randomMat(size.height, size.width, U8C1, 71);
    check1vsN("gaussian-border", KernelPath::Auto, size, [&](Mat& out) {
      imgproc::GaussianBlur(u8, out, {9, 9}, 2.0, 2.0, border,
                            KernelPath::Auto);
    });
  }
}

}  // namespace
}  // namespace simdcv
