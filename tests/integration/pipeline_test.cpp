// Cross-module integration: full image pipelines through the public API,
// including disk round trips and the benchmark kernels chained end-to-end.
#include <gtest/gtest.h>

#include <filesystem>

#include "bench/images.hpp"
#include "core/convert.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/threshold.hpp"
#include "io/image_io.hpp"

namespace simdcv {
namespace {

using imgproc::BorderType;
using imgproc::ThresholdType;

std::vector<KernelPath> paths() {
  return {KernelPath::ScalarNoVec, KernelPath::Auto, KernelPath::Sse2,
          KernelPath::Neon};
}

// The paper's full processing story: u8 image -> float -> filter ->
// convert back with saturation -> threshold. Every path must produce the
// identical final image.
TEST(Pipeline, FloatFilterRoundTripAllPathsAgree) {
  const Mat src = bench::makeScene(bench::Scene::Natural, {95, 73}, 3);
  Mat ref;
  bool first = true;
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat f32, blurred, back, binary;
    core::convertTo(src, f32, Depth::F32, 1.0, 0.0, p);
    imgproc::GaussianBlur(f32, blurred, {7, 7}, 1.0, 0.0,
                          BorderType::Reflect101, p);
    core::convertTo(blurred, back, Depth::U8, 1.0, 0.0, p);
    imgproc::threshold(back, binary, 128.0, 255.0, ThresholdType::Binary, p);
    if (first) {
      ref = binary.clone();
      first = false;
    } else {
      EXPECT_EQ(countMismatches(ref, binary), 0u) << toString(p);
    }
  }
}

TEST(Pipeline, EdgeDetectionOnSyntheticSceneThroughDisk) {
  const auto dir = std::filesystem::temp_directory_path() / "simdcv_integ";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "scene.bmp").string();

  // Checker has hard edges; smooth scenes would stay below the threshold.
  const Mat scene = bench::makeScene(bench::Scene::Checker, {160, 120}, 5);
  io::writeBmp(path, scene);
  const Mat loaded = io::readBmp(path);
  ASSERT_EQ(countMismatches(scene, loaded), 0u);

  Mat edges;
  imgproc::edgeDetect(loaded, edges, 120.0);
  // Cell boundaries must fire; uniform cell interiors must not.
  int on = 0;
  for (int r = 0; r < edges.rows(); ++r)
    for (int c = 0; c < edges.cols(); ++c)
      if (edges.at<std::uint8_t>(r, c)) ++on;
  EXPECT_GT(on, 50);
  EXPECT_LT(on, edges.rows() * edges.cols() * 6 / 10);

  io::writeBmp((dir / "edges.bmp").string(), edges);
  EXPECT_EQ(countMismatches(edges, io::readBmp((dir / "edges.bmp").string())), 0u);
  std::filesystem::remove_all(dir);
}

TEST(Pipeline, SetUseOptimizedSwitchesDefaultPathResults) {
  // The OpenCV-style global switch must actually change which kernel runs;
  // results stay identical (bit-exact contract) but the switch must
  // round-trip and resolve as documented.
  const Mat src = bench::makeScene(bench::Scene::Checker, {64, 64}, 2);
  setUseOptimized(false);
  EXPECT_EQ(resolvePath(KernelPath::Default), KernelPath::Auto);
  Mat a;
  imgproc::threshold(src, a, 100, 255, ThresholdType::Binary);
  setUseOptimized(true);
  EXPECT_NE(resolvePath(KernelPath::Default), KernelPath::Auto);
  Mat b;
  imgproc::threshold(src, b, 100, 255, ThresholdType::Binary);
  EXPECT_EQ(countMismatches(a, b), 0u);
}

TEST(Pipeline, Convert32F16SOverWholePaperImage) {
  // Benchmark-1 configuration at the smallest paper resolution, all paths.
  const Mat f32 = bench::makeFloatScene(bench::Scene::Natural, {640, 480}, 1);
  Mat ref;
  core::convertTo(f32, ref, Depth::S16, 1.0, 0.0, KernelPath::Auto);
  for (KernelPath p : paths()) {
    if (!pathAvailable(p)) continue;
    Mat got;
    core::convertTo(f32, got, Depth::S16, 1.0, 0.0, p);
    EXPECT_EQ(countMismatches(ref, got), 0u) << toString(p);
  }
  // The scene is engineered to exercise saturation: both rails must appear.
  bool sawMin = false, sawMax = false;
  for (int r = 0; r < ref.rows(); ++r)
    for (int c = 0; c < ref.cols(); ++c) {
      sawMin |= ref.at<std::int16_t>(r, c) == -32768;
      sawMax |= ref.at<std::int16_t>(r, c) == 32767;
    }
  EXPECT_TRUE(sawMin);
  EXPECT_TRUE(sawMax);
}

TEST(Pipeline, UnsharpMaskScenario) {
  // Example-app scenario: sharpen = src + alpha * (src - blur(src)).
  const Mat src = bench::makeScene(bench::Scene::Natural, {80, 60}, 9);
  Mat f32, blur, sharp;
  core::convertTo(src, f32, Depth::F32);
  imgproc::GaussianBlur(f32, blur, {5, 5}, 1.2);
  sharp.create(src.rows(), src.cols(), F32C1);
  for (int r = 0; r < src.rows(); ++r)
    for (int c = 0; c < src.cols(); ++c)
      sharp.at<float>(r, c) =
          f32.at<float>(r, c) + 1.5f * (f32.at<float>(r, c) - blur.at<float>(r, c));
  Mat out;
  core::convertTo(sharp, out, Depth::U8);
  ASSERT_EQ(out.depth(), Depth::U8);
  // Sharpening must not change the mean much but must increase variance.
  auto stats = [](const Mat& m) {
    double s = 0, s2 = 0;
    for (int r = 0; r < m.rows(); ++r)
      for (int c = 0; c < m.cols(); ++c) {
        const double v = m.at<std::uint8_t>(r, c);
        s += v;
        s2 += v * v;
      }
    const double n = static_cast<double>(m.total());
    return std::pair{s / n, s2 / n - (s / n) * (s / n)};
  };
  const auto [meanSrc, varSrc] = stats(src);
  const auto [meanOut, varOut] = stats(out);
  EXPECT_NEAR(meanSrc, meanOut, 6.0);
  EXPECT_GT(varOut, varSrc);
}

TEST(Pipeline, LargeRoiProcessingMatchesFullImage) {
  // Processing an ROI view must equal processing the cropped copy.
  const Mat big = bench::makeScene(bench::Scene::Natural, {128, 128}, 11);
  const Rect rect(17, 9, 64, 64);
  const Mat view = big.roi(rect);
  const Mat copy = view.clone();
  Mat a, b;
  imgproc::GaussianBlur(view, a, {5, 5}, 1.0);
  imgproc::GaussianBlur(copy, b, {5, 5}, 1.0);
  EXPECT_EQ(countMismatches(a, b), 0u);
}

}  // namespace
}  // namespace simdcv
