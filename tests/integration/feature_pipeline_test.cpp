// Cross-module integration over the feature/geometry modules: pyramids +
// FAST + template matching + warping + adaptive processing, end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "bench/images.hpp"
#include "imgproc/adaptive.hpp"
#include "imgproc/connected.hpp"
#include "imgproc/fast.hpp"
#include "imgproc/geometry.hpp"
#include "imgproc/histogram.hpp"
#include "imgproc/match.hpp"
#include "imgproc/morphology.hpp"
#include "imgproc/pyramid.hpp"
#include "imgproc/resize.hpp"
#include "imgproc/threshold.hpp"

namespace simdcv {
namespace {

using namespace imgproc;

TEST(FeaturePipeline, TrackPatchAcrossTranslation) {
  // "Video tracking" scenario: take a frame, shift it, and recover the
  // motion of a distinctive patch by SAD matching.
  const Mat frame0 = bench::makeScene(bench::Scene::Natural, {160, 120}, 21);
  AffineMat shift = affineIdentity();
  shift[2] = 7;  // dst samples src at x+7: content moves left by 7
  shift[5] = 4;
  Mat frame1;
  warpAffine(frame0, frame1, shift, {160, 120}, BorderType::Replicate);

  // Pick the strongest FAST corner away from the borders as the patch.
  const auto kps = fast9(frame0, 15);
  ASSERT_FALSE(kps.empty());
  KeyPoint best{};
  for (const auto& kp : kps)
    if (kp.score > best.score && kp.x > 20 && kp.x < 120 && kp.y > 20 &&
        kp.y < 90)
      best = kp;
  ASSERT_GT(best.score, 0);

  const Mat patch = frame0.roi({best.x - 8, best.y - 8, 16, 16}).clone();
  const auto found = findBestMatch(frame1, patch);
  // Content moved by (-7, -4): the patch reappears at origin - shift.
  EXPECT_EQ(found.x, best.x - 8 - 7);
  EXPECT_EQ(found.y, best.y - 8 - 4);
}

TEST(FeaturePipeline, FastCountsTrackPyramidLevels) {
  // Corner counts should drop as resolution halves, but corners should
  // persist at the first pyramid level of a corner-rich scene.
  const Mat scene = bench::makeScene(bench::Scene::Checker, {256, 256}, 3);
  const auto levels = buildPyramid(scene, 3);
  ASSERT_EQ(levels.size(), 3u);
  std::size_t counts[3];
  for (int l = 0; l < 3; ++l)
    counts[l] = fast9(levels[static_cast<std::size_t>(l)], 25).size();
  EXPECT_GT(counts[0], 0u);
  EXPECT_GT(counts[1], 0u);
  EXPECT_GT(counts[0], counts[2]);
}

TEST(FeaturePipeline, BlobCountingUnderRotation) {
  // Blob count is invariant to moderate rotation: threshold -> components.
  Mat blobs = zeros(96, 96, U8C1);
  for (int i = 0; i < 5; ++i)
    blobs.roi({12 + i * 16, 20 + (i % 2) * 30, 8, 8}).setTo(255);
  Mat labels;
  EXPECT_EQ(connectedComponents(blobs, labels), 5);

  Mat rotated;
  const AffineMat fwd = getRotationMatrix2D(48, 48, 20.0, 1.0);
  warpAffine(blobs, rotated, invertAffine(fwd), {96, 96},
             BorderType::Constant, 0.0);
  Mat rebin;
  threshold(rotated, rebin, 100, 255, ThresholdType::Binary);
  EXPECT_EQ(connectedComponents(rebin, labels), 5);
}

TEST(FeaturePipeline, AdaptivePipelineBeatsGlobalOnVignettedPage) {
  // Vignetted "document": global Otsu misses content in the dark corner
  // that adaptive threshold keeps.
  Mat page = full(96, 96, U8C1, 200);
  for (int i = 0; i < 6; ++i) page.roi({10 + i * 14, 46, 9, 4}).setTo(60);
  for (int r = 0; r < 96; ++r)
    for (int c = 0; c < 96; ++c) {
      const double d = std::hypot(r - 0.0, c - 0.0) / 135.0;
      page.at<std::uint8_t>(r, c) = static_cast<std::uint8_t>(
          page.at<std::uint8_t>(r, c) * (1.0 - 0.65 * d));
    }
  Mat adaptive;
  adaptiveThreshold(page, adaptive, 255, AdaptiveMethod::Mean,
                    ThresholdType::BinaryInv, 15, 12);
  Mat labels;
  std::vector<ComponentStats> stats;
  connectedComponentsWithStats(adaptive, labels, stats);
  int wordish = 0;
  for (const auto& s : stats)
    if (s.area >= 12 && s.area <= 200) ++wordish;
  EXPECT_GE(wordish, 5);  // all six dashes survive (allow one merge)
}

TEST(FeaturePipeline, ClaheThenFastFindsMoreCornersInShadow) {
  // Local contrast enhancement recovers corners hidden in a dark region.
  Mat scene = bench::makeScene(bench::Scene::Checker, {128, 128}, 9);
  // Crush the left half into [0, 24]: corners become sub-threshold.
  for (int r = 0; r < 128; ++r)
    for (int c = 0; c < 64; ++c)
      scene.at<std::uint8_t>(r, c) =
          static_cast<std::uint8_t>(scene.at<std::uint8_t>(r, c) / 10);
  auto leftCorners = [](const std::vector<KeyPoint>& kps) {
    std::size_t n = 0;
    for (const auto& kp : kps) n += kp.x < 56;
    return n;
  };
  const auto before = leftCorners(fast9(scene, 30));
  // A generous clip limit: the few-valued checkerboard histogram needs tall
  // bins to survive clipping (a tight limit cancels the equalization, which
  // is the contrast-*limited* part working as designed).
  Mat enhanced;
  clahe(scene, enhanced, 40.0, 4, 4);
  const auto after = leftCorners(fast9(enhanced, 30));
  EXPECT_EQ(before, 0u);
  EXPECT_GT(after, 50u);
}

TEST(FeaturePipeline, ResizeThenMatchStillLocalizes) {
  // Downscale-then-match: a 2x downscaled patch matches the downscaled
  // frame at halved coordinates.
  const Mat frame = bench::makeScene(bench::Scene::Natural, {128, 128}, 30);
  Mat half;
  resize(frame, half, {64, 64});
  const Mat patch = half.roi({20, 28, 12, 12}).clone();
  const auto found = findBestMatch(half, patch);
  EXPECT_EQ(found.x, 20);
  EXPECT_EQ(found.y, 28);
  EXPECT_EQ(found.sad, 0u);
}

}  // namespace
}  // namespace simdcv
