file(REMOVE_RECURSE
  "CMakeFiles/simd_comparison.dir/simd_comparison.cpp.o"
  "CMakeFiles/simd_comparison.dir/simd_comparison.cpp.o.d"
  "simd_comparison"
  "simd_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
