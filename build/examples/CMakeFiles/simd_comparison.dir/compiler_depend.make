# Empty compiler generated dependencies file for simd_comparison.
# This may be replaced when dependencies are built.
