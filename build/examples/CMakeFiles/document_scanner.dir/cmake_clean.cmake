file(REMOVE_RECURSE
  "CMakeFiles/document_scanner.dir/document_scanner.cpp.o"
  "CMakeFiles/document_scanner.dir/document_scanner.cpp.o.d"
  "document_scanner"
  "document_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
