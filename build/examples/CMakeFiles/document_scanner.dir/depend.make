# Empty dependencies file for document_scanner.
# This may be replaced when dependencies are built.
