file(REMOVE_RECURSE
  "CMakeFiles/image_align.dir/image_align.cpp.o"
  "CMakeFiles/image_align.dir/image_align.cpp.o.d"
  "image_align"
  "image_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
