# Empty dependencies file for image_align.
# This may be replaced when dependencies are built.
