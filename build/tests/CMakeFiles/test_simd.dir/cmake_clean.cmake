file(REMOVE_RECURSE
  "CMakeFiles/test_simd.dir/simd/features_test.cpp.o"
  "CMakeFiles/test_simd.dir/simd/features_test.cpp.o.d"
  "CMakeFiles/test_simd.dir/simd/neon_emu_arith_test.cpp.o"
  "CMakeFiles/test_simd.dir/simd/neon_emu_arith_test.cpp.o.d"
  "CMakeFiles/test_simd.dir/simd/neon_emu_basic_test.cpp.o"
  "CMakeFiles/test_simd.dir/simd/neon_emu_basic_test.cpp.o.d"
  "CMakeFiles/test_simd.dir/simd/neon_emu_cmp_test.cpp.o"
  "CMakeFiles/test_simd.dir/simd/neon_emu_cmp_test.cpp.o.d"
  "CMakeFiles/test_simd.dir/simd/neon_emu_extra_test.cpp.o"
  "CMakeFiles/test_simd.dir/simd/neon_emu_extra_test.cpp.o.d"
  "CMakeFiles/test_simd.dir/simd/neon_emu_perm_test.cpp.o"
  "CMakeFiles/test_simd.dir/simd/neon_emu_perm_test.cpp.o.d"
  "CMakeFiles/test_simd.dir/simd/neon_emu_semantics_test.cpp.o"
  "CMakeFiles/test_simd.dir/simd/neon_emu_semantics_test.cpp.o.d"
  "CMakeFiles/test_simd.dir/simd/neon_emu_shift_cvt_test.cpp.o"
  "CMakeFiles/test_simd.dir/simd/neon_emu_shift_cvt_test.cpp.o.d"
  "CMakeFiles/test_simd.dir/simd/neon_emu_typed_test.cpp.o"
  "CMakeFiles/test_simd.dir/simd/neon_emu_typed_test.cpp.o.d"
  "test_simd"
  "test_simd.pdb"
  "test_simd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
