
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/imgproc/adaptive_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/adaptive_test.cpp.o.d"
  "/root/repo/tests/imgproc/canny_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/canny_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/canny_test.cpp.o.d"
  "/root/repo/tests/imgproc/color_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/color_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/color_test.cpp.o.d"
  "/root/repo/tests/imgproc/connected_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/connected_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/connected_test.cpp.o.d"
  "/root/repo/tests/imgproc/distance_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/distance_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/distance_test.cpp.o.d"
  "/root/repo/tests/imgproc/edge_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/edge_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/edge_test.cpp.o.d"
  "/root/repo/tests/imgproc/fast_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/fast_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/fast_test.cpp.o.d"
  "/root/repo/tests/imgproc/filter_properties_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/filter_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/filter_properties_test.cpp.o.d"
  "/root/repo/tests/imgproc/filter_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/filter_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/filter_test.cpp.o.d"
  "/root/repo/tests/imgproc/geometry_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/geometry_test.cpp.o.d"
  "/root/repo/tests/imgproc/harris_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/harris_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/harris_test.cpp.o.d"
  "/root/repo/tests/imgproc/histogram_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/histogram_test.cpp.o.d"
  "/root/repo/tests/imgproc/iir_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/iir_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/iir_test.cpp.o.d"
  "/root/repo/tests/imgproc/kernels_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/kernels_test.cpp.o.d"
  "/root/repo/tests/imgproc/match_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/match_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/match_test.cpp.o.d"
  "/root/repo/tests/imgproc/median_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/median_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/median_test.cpp.o.d"
  "/root/repo/tests/imgproc/moments_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/moments_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/moments_test.cpp.o.d"
  "/root/repo/tests/imgproc/morphology_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/morphology_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/morphology_test.cpp.o.d"
  "/root/repo/tests/imgproc/pyramid_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/pyramid_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/pyramid_test.cpp.o.d"
  "/root/repo/tests/imgproc/resize_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/resize_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/resize_test.cpp.o.d"
  "/root/repo/tests/imgproc/sobel_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/sobel_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/sobel_test.cpp.o.d"
  "/root/repo/tests/imgproc/threshold_test.cpp" "tests/CMakeFiles/test_imgproc.dir/imgproc/threshold_test.cpp.o" "gcc" "tests/CMakeFiles/test_imgproc.dir/imgproc/threshold_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/imgproc/CMakeFiles/simdcv_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/simdcv_io.dir/DependInfo.cmake"
  "/root/repo/build/src/bench/CMakeFiles/simdcv_bench.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/simdcv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/simdcv_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/simdcv_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
