file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/array_ops_test.cpp.o"
  "CMakeFiles/test_core.dir/core/array_ops_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/convert_test.cpp.o"
  "CMakeFiles/test_core.dir/core/convert_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/mat_test.cpp.o"
  "CMakeFiles/test_core.dir/core/mat_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/norms_test.cpp.o"
  "CMakeFiles/test_core.dir/core/norms_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/saturate_test.cpp.o"
  "CMakeFiles/test_core.dir/core/saturate_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
