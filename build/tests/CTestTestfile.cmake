# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_simd[1]_include.cmake")
include("/root/repo/build/tests/test_imgproc[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_bench[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test(example.quickstart "/root/repo/build/examples/quickstart" "/root/repo/build/tests/example_scratch")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example.edge_detection "/root/repo/build/examples/edge_detection" "" "120" "/root/repo/build/tests/example_scratch")
set_tests_properties(example.edge_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;74;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example.document_scanner "/root/repo/build/examples/document_scanner" "" "/root/repo/build/tests/example_scratch")
set_tests_properties(example.document_scanner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;76;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example.image_align "/root/repo/build/examples/image_align" "/root/repo/build/tests/example_scratch")
set_tests_properties(example.image_align PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;78;add_test;/root/repo/tests/CMakeLists.txt;0;")
