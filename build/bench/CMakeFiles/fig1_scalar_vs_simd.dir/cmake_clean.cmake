file(REMOVE_RECURSE
  "CMakeFiles/fig1_scalar_vs_simd.dir/fig1_scalar_vs_simd.cpp.o"
  "CMakeFiles/fig1_scalar_vs_simd.dir/fig1_scalar_vs_simd.cpp.o.d"
  "fig1_scalar_vs_simd"
  "fig1_scalar_vs_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_scalar_vs_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
