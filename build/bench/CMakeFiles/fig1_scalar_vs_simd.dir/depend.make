# Empty dependencies file for fig1_scalar_vs_simd.
# This may be replaced when dependencies are built.
