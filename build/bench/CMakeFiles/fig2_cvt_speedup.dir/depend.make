# Empty dependencies file for fig2_cvt_speedup.
# This may be replaced when dependencies are built.
