
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_sobel_speedup.cpp" "bench/CMakeFiles/fig5_sobel_speedup.dir/fig5_sobel_speedup.cpp.o" "gcc" "bench/CMakeFiles/fig5_sobel_speedup.dir/fig5_sobel_speedup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/simdcv_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/simdcv_io.dir/DependInfo.cmake"
  "/root/repo/build/src/bench/CMakeFiles/simdcv_bench.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/simdcv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/simdcv_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/simdcv_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
