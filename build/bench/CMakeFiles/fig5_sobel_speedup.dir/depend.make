# Empty dependencies file for fig5_sobel_speedup.
# This may be replaced when dependencies are built.
