# Empty compiler generated dependencies file for table2_cvt_float_short.
# This may be replaced when dependencies are built.
