file(REMOVE_RECURSE
  "CMakeFiles/table2_cvt_float_short.dir/table2_cvt_float_short.cpp.o"
  "CMakeFiles/table2_cvt_float_short.dir/table2_cvt_float_short.cpp.o.d"
  "table2_cvt_float_short"
  "table2_cvt_float_short.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cvt_float_short.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
