# Empty compiler generated dependencies file for ablation_avx.
# This may be replaced when dependencies are built.
