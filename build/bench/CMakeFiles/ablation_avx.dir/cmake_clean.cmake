file(REMOVE_RECURSE
  "CMakeFiles/ablation_avx.dir/ablation_avx.cpp.o"
  "CMakeFiles/ablation_avx.dir/ablation_avx.cpp.o.d"
  "ablation_avx"
  "ablation_avx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_avx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
