file(REMOVE_RECURSE
  "CMakeFiles/ablation_autovec.dir/ablation_autovec.cpp.o"
  "CMakeFiles/ablation_autovec.dir/ablation_autovec.cpp.o.d"
  "ablation_autovec"
  "ablation_autovec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_autovec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
