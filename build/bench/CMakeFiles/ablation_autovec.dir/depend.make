# Empty dependencies file for ablation_autovec.
# This may be replaced when dependencies are built.
