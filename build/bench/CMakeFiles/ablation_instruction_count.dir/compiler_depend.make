# Empty compiler generated dependencies file for ablation_instruction_count.
# This may be replaced when dependencies are built.
