file(REMOVE_RECURSE
  "CMakeFiles/ablation_instruction_count.dir/ablation_instruction_count.cpp.o"
  "CMakeFiles/ablation_instruction_count.dir/ablation_instruction_count.cpp.o.d"
  "ablation_instruction_count"
  "ablation_instruction_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_instruction_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
