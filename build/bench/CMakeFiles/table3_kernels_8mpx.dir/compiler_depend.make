# Empty compiler generated dependencies file for table3_kernels_8mpx.
# This may be replaced when dependencies are built.
