file(REMOVE_RECURSE
  "CMakeFiles/table3_kernels_8mpx.dir/table3_kernels_8mpx.cpp.o"
  "CMakeFiles/table3_kernels_8mpx.dir/table3_kernels_8mpx.cpp.o.d"
  "table3_kernels_8mpx"
  "table3_kernels_8mpx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_kernels_8mpx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
