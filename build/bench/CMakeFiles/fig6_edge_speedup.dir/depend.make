# Empty dependencies file for fig6_edge_speedup.
# This may be replaced when dependencies are built.
