# Empty compiler generated dependencies file for intro_gflops_watt.
# This may be replaced when dependencies are built.
