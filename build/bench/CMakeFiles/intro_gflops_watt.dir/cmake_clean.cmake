file(REMOVE_RECURSE
  "CMakeFiles/intro_gflops_watt.dir/intro_gflops_watt.cpp.o"
  "CMakeFiles/intro_gflops_watt.dir/intro_gflops_watt.cpp.o.d"
  "intro_gflops_watt"
  "intro_gflops_watt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_gflops_watt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
