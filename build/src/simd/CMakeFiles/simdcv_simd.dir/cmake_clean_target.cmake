file(REMOVE_RECURSE
  "libsimdcv_simd.a"
)
