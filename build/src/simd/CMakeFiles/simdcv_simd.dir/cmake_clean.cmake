file(REMOVE_RECURSE
  "CMakeFiles/simdcv_simd.dir/features.cpp.o"
  "CMakeFiles/simdcv_simd.dir/features.cpp.o.d"
  "libsimdcv_simd.a"
  "libsimdcv_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdcv_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
