# Empty dependencies file for simdcv_simd.
# This may be replaced when dependencies are built.
