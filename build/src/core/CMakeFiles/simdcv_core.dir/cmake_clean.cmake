file(REMOVE_RECURSE
  "CMakeFiles/simdcv_core.dir/array_ops.cpp.o"
  "CMakeFiles/simdcv_core.dir/array_ops.cpp.o.d"
  "CMakeFiles/simdcv_core.dir/array_ops_neon.cpp.o"
  "CMakeFiles/simdcv_core.dir/array_ops_neon.cpp.o.d"
  "CMakeFiles/simdcv_core.dir/array_ops_scalar_autovec.cpp.o"
  "CMakeFiles/simdcv_core.dir/array_ops_scalar_autovec.cpp.o.d"
  "CMakeFiles/simdcv_core.dir/array_ops_scalar_novec.cpp.o"
  "CMakeFiles/simdcv_core.dir/array_ops_scalar_novec.cpp.o.d"
  "CMakeFiles/simdcv_core.dir/array_ops_sse2.cpp.o"
  "CMakeFiles/simdcv_core.dir/array_ops_sse2.cpp.o.d"
  "CMakeFiles/simdcv_core.dir/convert.cpp.o"
  "CMakeFiles/simdcv_core.dir/convert.cpp.o.d"
  "CMakeFiles/simdcv_core.dir/convert_avx2.cpp.o"
  "CMakeFiles/simdcv_core.dir/convert_avx2.cpp.o.d"
  "CMakeFiles/simdcv_core.dir/convert_neon.cpp.o"
  "CMakeFiles/simdcv_core.dir/convert_neon.cpp.o.d"
  "CMakeFiles/simdcv_core.dir/convert_scalar_autovec.cpp.o"
  "CMakeFiles/simdcv_core.dir/convert_scalar_autovec.cpp.o.d"
  "CMakeFiles/simdcv_core.dir/convert_scalar_novec.cpp.o"
  "CMakeFiles/simdcv_core.dir/convert_scalar_novec.cpp.o.d"
  "CMakeFiles/simdcv_core.dir/convert_sse2.cpp.o"
  "CMakeFiles/simdcv_core.dir/convert_sse2.cpp.o.d"
  "CMakeFiles/simdcv_core.dir/mat.cpp.o"
  "CMakeFiles/simdcv_core.dir/mat.cpp.o.d"
  "libsimdcv_core.a"
  "libsimdcv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdcv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
