# Empty compiler generated dependencies file for simdcv_core.
# This may be replaced when dependencies are built.
