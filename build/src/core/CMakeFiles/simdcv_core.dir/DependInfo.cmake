
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/array_ops.cpp" "src/core/CMakeFiles/simdcv_core.dir/array_ops.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/array_ops.cpp.o.d"
  "/root/repo/src/core/array_ops_neon.cpp" "src/core/CMakeFiles/simdcv_core.dir/array_ops_neon.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/array_ops_neon.cpp.o.d"
  "/root/repo/src/core/array_ops_scalar_autovec.cpp" "src/core/CMakeFiles/simdcv_core.dir/array_ops_scalar_autovec.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/array_ops_scalar_autovec.cpp.o.d"
  "/root/repo/src/core/array_ops_scalar_novec.cpp" "src/core/CMakeFiles/simdcv_core.dir/array_ops_scalar_novec.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/array_ops_scalar_novec.cpp.o.d"
  "/root/repo/src/core/array_ops_sse2.cpp" "src/core/CMakeFiles/simdcv_core.dir/array_ops_sse2.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/array_ops_sse2.cpp.o.d"
  "/root/repo/src/core/convert.cpp" "src/core/CMakeFiles/simdcv_core.dir/convert.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/convert.cpp.o.d"
  "/root/repo/src/core/convert_avx2.cpp" "src/core/CMakeFiles/simdcv_core.dir/convert_avx2.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/convert_avx2.cpp.o.d"
  "/root/repo/src/core/convert_neon.cpp" "src/core/CMakeFiles/simdcv_core.dir/convert_neon.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/convert_neon.cpp.o.d"
  "/root/repo/src/core/convert_scalar_autovec.cpp" "src/core/CMakeFiles/simdcv_core.dir/convert_scalar_autovec.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/convert_scalar_autovec.cpp.o.d"
  "/root/repo/src/core/convert_scalar_novec.cpp" "src/core/CMakeFiles/simdcv_core.dir/convert_scalar_novec.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/convert_scalar_novec.cpp.o.d"
  "/root/repo/src/core/convert_sse2.cpp" "src/core/CMakeFiles/simdcv_core.dir/convert_sse2.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/convert_sse2.cpp.o.d"
  "/root/repo/src/core/mat.cpp" "src/core/CMakeFiles/simdcv_core.dir/mat.cpp.o" "gcc" "src/core/CMakeFiles/simdcv_core.dir/mat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simd/CMakeFiles/simdcv_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
