file(REMOVE_RECURSE
  "libsimdcv_core.a"
)
