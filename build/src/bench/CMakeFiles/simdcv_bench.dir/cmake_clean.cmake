file(REMOVE_RECURSE
  "CMakeFiles/simdcv_bench.dir/harness.cpp.o"
  "CMakeFiles/simdcv_bench.dir/harness.cpp.o.d"
  "CMakeFiles/simdcv_bench.dir/images.cpp.o"
  "CMakeFiles/simdcv_bench.dir/images.cpp.o.d"
  "libsimdcv_bench.a"
  "libsimdcv_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdcv_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
