# Empty compiler generated dependencies file for simdcv_bench.
# This may be replaced when dependencies are built.
