file(REMOVE_RECURSE
  "libsimdcv_bench.a"
)
