#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "simdcv::simdcv_core" for configuration "Release"
set_property(TARGET simdcv::simdcv_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(simdcv::simdcv_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libsimdcv_core.a"
  )

list(APPEND _cmake_import_check_targets simdcv::simdcv_core )
list(APPEND _cmake_import_check_files_for_simdcv::simdcv_core "${_IMPORT_PREFIX}/lib/libsimdcv_core.a" )

# Import target "simdcv::simdcv_simd" for configuration "Release"
set_property(TARGET simdcv::simdcv_simd APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(simdcv::simdcv_simd PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libsimdcv_simd.a"
  )

list(APPEND _cmake_import_check_targets simdcv::simdcv_simd )
list(APPEND _cmake_import_check_files_for_simdcv::simdcv_simd "${_IMPORT_PREFIX}/lib/libsimdcv_simd.a" )

# Import target "simdcv::simdcv_imgproc" for configuration "Release"
set_property(TARGET simdcv::simdcv_imgproc APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(simdcv::simdcv_imgproc PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libsimdcv_imgproc.a"
  )

list(APPEND _cmake_import_check_targets simdcv::simdcv_imgproc )
list(APPEND _cmake_import_check_files_for_simdcv::simdcv_imgproc "${_IMPORT_PREFIX}/lib/libsimdcv_imgproc.a" )

# Import target "simdcv::simdcv_io" for configuration "Release"
set_property(TARGET simdcv::simdcv_io APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(simdcv::simdcv_io PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libsimdcv_io.a"
  )

list(APPEND _cmake_import_check_targets simdcv::simdcv_io )
list(APPEND _cmake_import_check_files_for_simdcv::simdcv_io "${_IMPORT_PREFIX}/lib/libsimdcv_io.a" )

# Import target "simdcv::simdcv_platform" for configuration "Release"
set_property(TARGET simdcv::simdcv_platform APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(simdcv::simdcv_platform PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libsimdcv_platform.a"
  )

list(APPEND _cmake_import_check_targets simdcv::simdcv_platform )
list(APPEND _cmake_import_check_files_for_simdcv::simdcv_platform "${_IMPORT_PREFIX}/lib/libsimdcv_platform.a" )

# Import target "simdcv::simdcv_bench" for configuration "Release"
set_property(TARGET simdcv::simdcv_bench APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(simdcv::simdcv_bench PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libsimdcv_bench.a"
  )

list(APPEND _cmake_import_check_targets simdcv::simdcv_bench )
list(APPEND _cmake_import_check_files_for_simdcv::simdcv_bench "${_IMPORT_PREFIX}/lib/libsimdcv_bench.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
