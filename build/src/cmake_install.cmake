# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "Release")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/simd/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/core/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/imgproc/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/io/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/platform/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/bench/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libsimdcv_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/simd/libsimdcv_simd.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/imgproc/libsimdcv_imgproc.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/io/libsimdcv_io.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/platform/libsimdcv_platform.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/bench/libsimdcv_bench.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/simdcv" TYPE DIRECTORY FILES
    "/root/repo/src/core"
    "/root/repo/src/simd"
    "/root/repo/src/imgproc"
    "/root/repo/src/io"
    "/root/repo/src/platform"
    "/root/repo/src/bench"
    FILES_MATCHING REGEX "/[^/]*\\.hpp$" REGEX "/[^/]*\\.inl$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/simdcv/simdcvTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/simdcv/simdcvTargets.cmake"
         "/root/repo/build/src/CMakeFiles/Export/bd4d1d7010d4b847945ca5d1bb6b5698/simdcvTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/simdcv/simdcvTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/simdcv/simdcvTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/simdcv" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/bd4d1d7010d4b847945ca5d1bb6b5698/simdcvTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ee][Aa][Ss][Ee])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/simdcv" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/bd4d1d7010d4b847945ca5d1bb6b5698/simdcvTargets-release.cmake")
  endif()
endif()

