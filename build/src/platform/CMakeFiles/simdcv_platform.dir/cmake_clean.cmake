file(REMOVE_RECURSE
  "CMakeFiles/simdcv_platform.dir/catalog.cpp.o"
  "CMakeFiles/simdcv_platform.dir/catalog.cpp.o.d"
  "CMakeFiles/simdcv_platform.dir/costmodel.cpp.o"
  "CMakeFiles/simdcv_platform.dir/costmodel.cpp.o.d"
  "CMakeFiles/simdcv_platform.dir/hostinfo.cpp.o"
  "CMakeFiles/simdcv_platform.dir/hostinfo.cpp.o.d"
  "libsimdcv_platform.a"
  "libsimdcv_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdcv_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
