
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/catalog.cpp" "src/platform/CMakeFiles/simdcv_platform.dir/catalog.cpp.o" "gcc" "src/platform/CMakeFiles/simdcv_platform.dir/catalog.cpp.o.d"
  "/root/repo/src/platform/costmodel.cpp" "src/platform/CMakeFiles/simdcv_platform.dir/costmodel.cpp.o" "gcc" "src/platform/CMakeFiles/simdcv_platform.dir/costmodel.cpp.o.d"
  "/root/repo/src/platform/hostinfo.cpp" "src/platform/CMakeFiles/simdcv_platform.dir/hostinfo.cpp.o" "gcc" "src/platform/CMakeFiles/simdcv_platform.dir/hostinfo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simd/CMakeFiles/simdcv_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
