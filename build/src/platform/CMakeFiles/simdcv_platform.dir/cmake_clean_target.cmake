file(REMOVE_RECURSE
  "libsimdcv_platform.a"
)
