# Empty compiler generated dependencies file for simdcv_platform.
# This may be replaced when dependencies are built.
