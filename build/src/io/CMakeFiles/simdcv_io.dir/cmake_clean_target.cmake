file(REMOVE_RECURSE
  "libsimdcv_io.a"
)
