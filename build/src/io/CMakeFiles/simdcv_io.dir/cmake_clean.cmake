file(REMOVE_RECURSE
  "CMakeFiles/simdcv_io.dir/bmp.cpp.o"
  "CMakeFiles/simdcv_io.dir/bmp.cpp.o.d"
  "CMakeFiles/simdcv_io.dir/pnm.cpp.o"
  "CMakeFiles/simdcv_io.dir/pnm.cpp.o.d"
  "libsimdcv_io.a"
  "libsimdcv_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdcv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
