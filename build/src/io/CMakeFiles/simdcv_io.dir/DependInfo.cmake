
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/bmp.cpp" "src/io/CMakeFiles/simdcv_io.dir/bmp.cpp.o" "gcc" "src/io/CMakeFiles/simdcv_io.dir/bmp.cpp.o.d"
  "/root/repo/src/io/pnm.cpp" "src/io/CMakeFiles/simdcv_io.dir/pnm.cpp.o" "gcc" "src/io/CMakeFiles/simdcv_io.dir/pnm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/simdcv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/simdcv_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
