# Empty dependencies file for simdcv_io.
# This may be replaced when dependencies are built.
