
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imgproc/adaptive.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/adaptive.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/adaptive.cpp.o.d"
  "/root/repo/src/imgproc/canny.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/canny.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/canny.cpp.o.d"
  "/root/repo/src/imgproc/color.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/color.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/color.cpp.o.d"
  "/root/repo/src/imgproc/color_neon.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/color_neon.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/color_neon.cpp.o.d"
  "/root/repo/src/imgproc/color_scalar_autovec.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/color_scalar_autovec.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/color_scalar_autovec.cpp.o.d"
  "/root/repo/src/imgproc/color_scalar_novec.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/color_scalar_novec.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/color_scalar_novec.cpp.o.d"
  "/root/repo/src/imgproc/color_sse2.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/color_sse2.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/color_sse2.cpp.o.d"
  "/root/repo/src/imgproc/connected.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/connected.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/connected.cpp.o.d"
  "/root/repo/src/imgproc/distance.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/distance.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/distance.cpp.o.d"
  "/root/repo/src/imgproc/edge.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/edge.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/edge.cpp.o.d"
  "/root/repo/src/imgproc/edge_scalar_autovec.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/edge_scalar_autovec.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/edge_scalar_autovec.cpp.o.d"
  "/root/repo/src/imgproc/edge_scalar_novec.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/edge_scalar_novec.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/edge_scalar_novec.cpp.o.d"
  "/root/repo/src/imgproc/fast.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/fast.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/fast.cpp.o.d"
  "/root/repo/src/imgproc/filter.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter.cpp.o.d"
  "/root/repo/src/imgproc/filter_avx2.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter_avx2.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter_avx2.cpp.o.d"
  "/root/repo/src/imgproc/filter_neon.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter_neon.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter_neon.cpp.o.d"
  "/root/repo/src/imgproc/filter_scalar_autovec.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter_scalar_autovec.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter_scalar_autovec.cpp.o.d"
  "/root/repo/src/imgproc/filter_scalar_novec.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter_scalar_novec.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter_scalar_novec.cpp.o.d"
  "/root/repo/src/imgproc/filter_sse2.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter_sse2.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/filter_sse2.cpp.o.d"
  "/root/repo/src/imgproc/geometry.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/geometry.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/geometry.cpp.o.d"
  "/root/repo/src/imgproc/harris.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/harris.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/harris.cpp.o.d"
  "/root/repo/src/imgproc/histogram.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/histogram.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/histogram.cpp.o.d"
  "/root/repo/src/imgproc/iir.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/iir.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/iir.cpp.o.d"
  "/root/repo/src/imgproc/kernels.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/kernels.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/kernels.cpp.o.d"
  "/root/repo/src/imgproc/match.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/match.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/match.cpp.o.d"
  "/root/repo/src/imgproc/match_scalar_autovec.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/match_scalar_autovec.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/match_scalar_autovec.cpp.o.d"
  "/root/repo/src/imgproc/match_scalar_novec.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/match_scalar_novec.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/match_scalar_novec.cpp.o.d"
  "/root/repo/src/imgproc/median.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/median.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/median.cpp.o.d"
  "/root/repo/src/imgproc/moments.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/moments.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/moments.cpp.o.d"
  "/root/repo/src/imgproc/morphology.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/morphology.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/morphology.cpp.o.d"
  "/root/repo/src/imgproc/pyramid.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/pyramid.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/pyramid.cpp.o.d"
  "/root/repo/src/imgproc/resize.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/resize.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/resize.cpp.o.d"
  "/root/repo/src/imgproc/threshold.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold.cpp.o.d"
  "/root/repo/src/imgproc/threshold_avx2.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold_avx2.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold_avx2.cpp.o.d"
  "/root/repo/src/imgproc/threshold_neon.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold_neon.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold_neon.cpp.o.d"
  "/root/repo/src/imgproc/threshold_scalar_autovec.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold_scalar_autovec.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold_scalar_autovec.cpp.o.d"
  "/root/repo/src/imgproc/threshold_scalar_novec.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold_scalar_novec.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold_scalar_novec.cpp.o.d"
  "/root/repo/src/imgproc/threshold_sse2.cpp" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold_sse2.cpp.o" "gcc" "src/imgproc/CMakeFiles/simdcv_imgproc.dir/threshold_sse2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/simdcv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/simdcv_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
