# Empty dependencies file for simdcv_imgproc.
# This may be replaced when dependencies are built.
