file(REMOVE_RECURSE
  "libsimdcv_imgproc.a"
)
