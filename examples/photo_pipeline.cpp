// A camera-style processing pipeline — the workload class the paper's
// introduction motivates (mobile multimedia): 8-bit sensor data is lifted to
// float, filtered, tone-adjusted, sharpened, and saturated back to 8-bit.
// Exercises benchmark-1 conversions at both ends plus the filter engine.
//
//   ./photo_pipeline [output-dir] [--path auto|sse2|neon]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "simdcv.hpp"

using namespace simdcv;

namespace {

KernelPath parsePath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--path") == 0) {
      const std::string v = argv[i + 1];
      if (v == "auto") return KernelPath::Auto;
      if (v == "sse2") return KernelPath::Sse2;
      if (v == "neon") return KernelPath::Neon;
      if (v == "novec") return KernelPath::ScalarNoVec;
    }
  }
  return KernelPath::Default;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = (argc > 1 && argv[1][0] != '-') ? argv[1] : ".";
  const KernelPath path = parsePath(argc, argv);
  std::printf("photo pipeline on path '%s'\n", toString(resolvePath(path)));

  // "Sensor" frame: 5 mpx natural-statistics scene, as from a phone camera.
  const Size frame{2592, 1920};
  const Mat raw = bench::makeScene(bench::Scene::Natural, frame, 2026);
  io::writeBmp(dir + "/photo_raw.bmp", raw);

  bench::Timer timer;
  timer.start();

  // 1. Lift to float (benchmark-1 class conversion, u8 -> f32).
  Mat f;
  core::convertTo(raw, f, Depth::F32, 1.0, 0.0, path);

  // 2. Denoise: light Gaussian.
  Mat den;
  imgproc::GaussianBlur(f, den, {5, 5}, 0.9, 0.0,
                        imgproc::BorderType::Reflect101, path);

  // 3. Tone curve: lift shadows with a gamma-like scale (scalar alpha/beta
  //    conversion path: dst = src * 1.12 - 8).
  Mat toned;
  core::convertTo(den, toned, Depth::F32, 1.12, -8.0, path);

  // 4. Unsharp mask: out = toned + 1.4 * (toned - blur(toned)), i.e. a
  //    2.4/-1.4 weighted blend.
  Mat blur;
  imgproc::GaussianBlur(toned, blur, {7, 7}, 1.4, 0.0,
                        imgproc::BorderType::Reflect101, path);
  Mat sharp;
  core::addWeighted(toned, 2.4, blur, -1.4, 0.0, sharp, path);

  // 5. Saturating store back to 8-bit (f32 -> u8 HAND kernel).
  Mat out;
  core::convertTo(sharp, out, Depth::U8, 1.0, 0.0, path);

  const double secs = timer.stop();
  io::writeBmp(dir + "/photo_final.bmp", out);
  std::printf("processed %.1f mpx in %s s (%.1f mpx/s)\n",
              frame.area() / 1e6, bench::fmtSeconds(secs).c_str(),
              frame.area() / 1e6 / secs);

  // The same chain declared as a pipeline graph. run() picks the cache-
  // blocked single-pass schedule when the staged intermediates (four f32
  // planes here) outgrow cache; either schedule is bit-identical to the
  // direct calls above, which we assert rather than assume.
  const graph::Graph g = graph::makePhotoGraph(5, 0.9, 7, 1.4, 1.12, -8.0, 1.4);
  bench::Timer gtimer;
  gtimer.start();
  Mat gout;
  g.run(raw, gout, path);
  const double gsecs = gtimer.stop();
  SIMDCV_REQUIRE(countMismatches(out, gout) == 0,
                 "photo_pipeline: graph output differs from direct calls");
  std::printf("graph '%s': identical output in %s s (%.2fx)\n",
              g.signature().c_str(), bench::fmtSeconds(gsecs).c_str(),
              secs / gsecs);
  std::printf("wrote photo_raw.bmp and photo_final.bmp\n");
  return 0;
}
