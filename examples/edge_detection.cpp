// Edge-detection pipeline on real or synthetic images, step by step —
// the paper's benchmark 5 decomposed into its stages, each saved to disk.
//
//   ./edge_detection [input.{bmp,pgm,ppm}] [threshold] [output-dir]
//
// Without an input file a synthetic document-like scene is used. Shows
// Sobel gradients (dx/dy), the L1 magnitude, and thresholded edge maps at
// several sensitivities.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "simdcv.hpp"

using namespace simdcv;

namespace {

Mat loadOrSynthesize(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]).find('.') != std::string::npos) {
    Mat img = io::readImage(argv[1]);
    if (img.channels() == 3) {
      // Quick BGR -> gray: fixed-point BT.601 luma.
      Mat gray(img.rows(), img.cols(), U8C1);
      for (int r = 0; r < img.rows(); ++r) {
        const std::uint8_t* s = img.ptr<std::uint8_t>(r);
        std::uint8_t* d = gray.ptr<std::uint8_t>(r);
        for (int c = 0; c < img.cols(); ++c) {
          const int b = s[3 * c], g = s[3 * c + 1], rr = s[3 * c + 2];
          d[c] = static_cast<std::uint8_t>((1868 * b + 9617 * g + 4899 * rr + 8192) >> 14);
        }
      }
      return gray;
    }
    return img;
  }
  return bench::makeScene(bench::Scene::Checker, {800, 600}, 7);
}

}  // namespace

int main(int argc, char** argv) {
  const Mat src = loadOrSynthesize(argc, argv);
  const double thresh = argc > 2 ? std::atof(argv[2]) : 120.0;
  const std::string dir = argc > 3 ? argv[3] : ".";
  std::printf("input %dx%d, threshold %.1f\n", src.cols(), src.rows(), thresh);

  // Stage 1: denoise lightly before differentiating.
  Mat smooth;
  imgproc::GaussianBlur(src, smooth, {3, 3}, 0.8);

  // Stage 2: Sobel gradients (16-bit signed to keep the dynamic range).
  Mat gx, gy;
  imgproc::Sobel(smooth, gx, Depth::S16, 1, 0, 3);
  imgproc::Sobel(smooth, gy, Depth::S16, 0, 1, 3);

  // Visualize gradients: map [-1020,1020] to u8 around mid-gray.
  Mat gxVis, gyVis;
  core::convertTo(gx, gxVis, Depth::U8, 0.125, 128.0);
  core::convertTo(gy, gyVis, Depth::U8, 0.125, 128.0);
  io::writeBmp(dir + "/edge_gx.bmp", gxVis);
  io::writeBmp(dir + "/edge_gy.bmp", gyVis);

  // Stage 3: L1 gradient magnitude.
  Mat mag;
  imgproc::gradientMagnitude(gx, gy, mag);
  io::writeBmp(dir + "/edge_magnitude.bmp", mag);

  // Stage 4: binary edge maps at three sensitivities.
  for (double scale : {0.5, 1.0, 2.0}) {
    Mat edges;
    imgproc::threshold(mag, edges, thresh * scale, 255.0,
                       imgproc::ThresholdType::Binary);
    char name[64];
    std::snprintf(name, sizeof(name), "/edge_t%03d.bmp",
                  static_cast<int>(thresh * scale));
    io::writeBmp(dir + name, edges);
    int on = 0;
    for (int r = 0; r < edges.rows(); ++r)
      for (int c = 0; c < edges.cols(); ++c)
        if (edges.at<std::uint8_t>(r, c)) ++on;
    std::printf("  threshold %6.1f: %6.2f%% edge pixels -> %s%s\n",
                thresh * scale, 100.0 * on / static_cast<double>(edges.total()),
                dir.c_str(), name);
  }

  // One-call equivalent of the whole pipeline (minus the pre-blur).
  Mat onecall;
  imgproc::edgeDetect(src, onecall, thresh);
  io::writeBmp(dir + "/edge_onecall.bmp", onecall);
  std::printf("wrote edge_{gx,gy,magnitude,tNNN,onecall}.bmp\n");
  return 0;
}
