// Image alignment / digital stabilization: estimate the translation between
// two frames by matching patches around Harris corners, warp the second
// frame back, and blend — the motion-compensation workload of mobile video
// pipelines (built from harrisCorners + SAD matching + warpAffine +
// addWeighted).
//
//   ./image_align [output-dir]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "simdcv.hpp"

using namespace simdcv;
using namespace simdcv::imgproc;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";

  // Frame 0, and frame 1 = frame 0 shifted by a "camera shake" of (9, -5).
  const Mat frame0 = bench::makeScene(bench::Scene::Natural, {320, 240}, 99);
  AffineMat shake = affineIdentity();
  shake[2] = -9;  // dst(x,y) = src(x-9, y+5): content moves right/up
  shake[5] = 5;
  Mat frame1;
  warpAffine(frame0, frame1, shake, {320, 240}, BorderType::Replicate);
  io::writeBmp(dir + "/align_frame0.bmp", frame0);
  io::writeBmp(dir + "/align_frame1.bmp", frame1);

  // 1. Features: strongest well-spread Harris corners of frame 0.
  bench::Timer timer;
  timer.start();
  const auto corners = harrisCorners(frame0, 24, 0.01, 16.0);
  std::printf("found %zu corners\n", corners.size());

  // 2. For each corner, find its 17x17 patch in frame 1 within a search
  //    window, and vote on the displacement.
  constexpr int P = 8;   // patch radius
  constexpr int S = 16;  // search radius
  std::vector<std::pair<int, int>> votes;
  for (const auto& kp : corners) {
    if (kp.x < P + S || kp.y < P + S || kp.x >= 320 - P - S ||
        kp.y >= 240 - P - S)
      continue;
    const Mat patch = frame0.roi({kp.x - P, kp.y - P, 2 * P + 1, 2 * P + 1}).clone();
    const Mat window =
        frame1.roi({kp.x - P - S, kp.y - P - S, 2 * (P + S) + 1, 2 * (P + S) + 1});
    const auto best = findBestMatch(window.clone(), patch);
    votes.emplace_back(best.x - S, best.y - S);  // displacement of this patch
  }
  // 3. Robust estimate: median displacement.
  auto median = [](std::vector<int> v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  std::vector<int> dxs, dys;
  for (auto [dx, dy] : votes) {
    dxs.push_back(dx);
    dys.push_back(dy);
  }
  SIMDCV_REQUIRE(!dxs.empty(), "no trackable corners");
  const int dx = median(dxs), dy = median(dys);
  std::printf("estimated shake: (%d, %d) from %zu patches (truth: (9, -5))\n",
              dx, dy, votes.size());

  // 4. Compensate: warp frame 1 back by the estimated displacement.
  AffineMat comp = affineIdentity();
  comp[2] = dx;  // dst samples frame1 at (x + dx, y + dy)
  comp[5] = dy;
  Mat stabilized;
  warpAffine(frame1, stabilized, comp, {320, 240}, BorderType::Replicate);
  const double secs = timer.stop();

  // 5. Report residual and blend for visual inspection.
  Mat diffBefore, diffAfter;
  core::absdiff(frame0, frame1, diffBefore);
  core::absdiff(frame0, stabilized, diffAfter);
  std::printf("mean |frame0 - frame1|      = %.2f\n", core::mean(diffBefore));
  std::printf("mean |frame0 - stabilized|  = %.2f\n", core::mean(diffAfter));
  std::printf("aligned in %s s\n", bench::fmtSeconds(secs).c_str());

  Mat blend;
  core::addWeighted(frame0, 0.5, stabilized, 0.5, 0.0, blend);
  io::writeBmp(dir + "/align_stabilized.bmp", stabilized);
  io::writeBmp(dir + "/align_blend.bmp", blend);
  io::writeBmp(dir + "/align_residual.bmp", diffAfter);
  std::printf("wrote align_{frame0,frame1,stabilized,blend,residual}.bmp\n");
  return (dx == 9 && dy == -5) ? 0 : 1;  // exit status doubles as a check
}
