// SIMD path comparison tool: run every paper benchmark on every available
// kernel path at a chosen resolution and print a compact scoreboard —
// a one-binary miniature of the paper's whole evaluation.
//
//   ./simd_comparison [width height] [--paper|--quick]
#include <cstdio>
#include <cstdlib>

#include "common.hpp"  // bench/common.hpp: measured-kernel machinery

using namespace simdcv;
using platform::BenchKernel;

int main(int argc, char** argv) {
  Size size{1024, 960};
  if (argc >= 3 && std::atoi(argv[1]) > 0 && std::atoi(argv[2]) > 0) {
    size = {std::atoi(argv[1]), std::atoi(argv[2])};
  }
  bench::printHostBanner("simd_comparison");
  const auto proto = bench::Protocol::fromArgs(argc, argv);
  std::printf("image size %dx%d, %d runs per cell\n\n", size.width,
              size.height, proto.images * proto.cycles);

  const BenchKernel kernels[] = {
      BenchKernel::ConvertF32S16, BenchKernel::ThresholdU8,
      BenchKernel::GaussianBlur, BenchKernel::Sobel, BenchKernel::EdgeDetect};

  std::vector<std::string> header{"Benchmark"};
  for (auto p : bench::benchPaths()) header.push_back(bench::pathLabel(p));
  header.push_back("best HAND speedup");
  bench::Table t(header);
  for (BenchKernel k : kernels) {
    std::vector<std::string> row{platform::toString(k)};
    double autoMean = 0, bestHand = 1e30;
    for (auto p : bench::benchPaths()) {
      const auto m = bench::measureKernel(k, p, size, proto);
      row.push_back(bench::fmtSeconds(m.stats.mean));
      if (p == KernelPath::Auto) autoMean = m.stats.mean;
      if (p == KernelPath::Sse2 || p == KernelPath::Neon)
        bestHand = std::min(bestHand, m.stats.mean);
    }
    row.push_back(bench::fmtSpeedup(autoMean / bestHand));
    t.addRow(std::move(row));
  }
  t.print();
  std::printf(
      "\n(Emulated NEON timings are functional only; on ARM silicon the\n"
      "same sources compile against the real <arm_neon.h>.)\n");
  return 0;
}
