// Quickstart: generate an image, blur it, detect edges, save results.
//
//   ./quickstart [output-dir]
//
// Demonstrates the core public API: Mat, synthetic scenes, GaussianBlur,
// edgeDetect, threshold, convertTo and BMP output — and shows the
// setUseOptimized / setPreferredPath switches in action.
#include <cstdio>
#include <string>

#include "simdcv.hpp"

using namespace simdcv;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";

  // 1. Make a test scene (or load your own with io::readImage(path)).
  const Mat scene = bench::makeScene(bench::Scene::Natural, {640, 480}, 42);
  io::writeBmp(dir + "/quickstart_input.bmp", scene);
  std::printf("input: %dx%d %s image -> %s/quickstart_input.bmp\n",
              scene.cols(), scene.rows(), toString(scene.type()).c_str(),
              dir.c_str());

  // 2. Gaussian blur (the paper's benchmark 3 configuration: sigma = 1).
  Mat blurred;
  imgproc::GaussianBlur(scene, blurred, {7, 7}, 1.0);
  io::writeBmp(dir + "/quickstart_blur.bmp", blurred);

  // 3. Edge detection (benchmark 5): Sobel gradients + magnitude + threshold.
  Mat edges;
  imgproc::edgeDetect(scene, edges, 110.0);
  io::writeBmp(dir + "/quickstart_edges.bmp", edges);

  // 4. Float round trip with saturating conversion (benchmark 1).
  Mat f32, back;
  core::convertTo(scene, f32, Depth::F32, 1.0 / 255.0);  // normalize to [0,1]
  core::convertTo(f32, back, Depth::U8, 255.0);          // and back
  std::printf("float round-trip mismatches: %zu (expect 0)\n",
              countMismatches(scene, back));

  // 5. Kernel paths: same call, explicitly different SIMD arms.
  bench::Timer t;
  for (KernelPath p : {KernelPath::Auto, KernelPath::Sse2, KernelPath::Neon}) {
    if (!pathAvailable(p)) continue;
    Mat out;
    t.start();
    imgproc::GaussianBlur(scene, out, {7, 7}, 1.0, 0.0,
                          imgproc::BorderType::Reflect101, p);
    std::printf("GaussianBlur on %-12s : %s s\n", toString(p),
                bench::fmtSeconds(t.stop()).c_str());
  }

  // 6. The OpenCV-style global switch.
  setUseOptimized(false);  // everything now runs the scalar AUTO arm
  Mat scalarEdges;
  imgproc::edgeDetect(scene, scalarEdges, 110.0);
  setUseOptimized(true);
  std::printf("optimized vs scalar edge maps differ in %zu pixels (expect 0)\n",
              countMismatches(edges, scalarEdges));

  std::printf("done. wrote quickstart_{input,blur,edges}.bmp\n");
  return 0;
}
