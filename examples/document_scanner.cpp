// Document scanner pipeline: the segmentation workload binary thresholding
// (benchmark 2) exists for. Synthesizes a noisy "photographed page" (or
// loads one), then: denoise -> deskew -> binarize (Otsu) -> clean up with
// morphology -> find text blobs with connected components -> report and
// save every stage.
//
//   ./document_scanner [input.{bmp,pgm}] [output-dir]
#include <cstdio>
#include <string>

#include "simdcv.hpp"

using namespace simdcv;
using namespace simdcv::imgproc;

namespace {

// A synthetic "page photo": dark text-like bars on paper, slight rotation,
// vignetting and salt-and-pepper sensor noise.
Mat synthesizePage() {
  const int w = 640, h = 480;
  Mat page = full(h, w, U8C1, 205);
  // Text lines: short dark dashes.
  bench::Rng rng(7);
  for (int line = 0; line < 14; ++line) {
    const int y = 40 + line * 28;
    int x = 50;
    while (x < w - 60) {
      const int len = 12 + static_cast<int>(rng.next() % 40);
      page.roi({x, y, std::min(len, w - 60 - x) + 1, 8}).setTo(35);
      x += len + 8 + static_cast<int>(rng.next() % 12);
    }
  }
  // Slight skew: rotate 3 degrees about the center.
  Mat skewed;
  const AffineMat fwd = getRotationMatrix2D(w / 2.0, h / 2.0, 3.0, 1.0);
  warpAffine(page, skewed, invertAffine(fwd), {w, h}, BorderType::Replicate);
  // Vignette + impulse noise.
  for (int r = 0; r < h; ++r) {
    std::uint8_t* p = skewed.ptr<std::uint8_t>(r);
    for (int c = 0; c < w; ++c) {
      const double dx = (c - w / 2.0) / (w / 2.0);
      const double dy = (r - h / 2.0) / (h / 2.0);
      const double vig = 1.0 - 0.25 * (dx * dx + dy * dy);
      int v = static_cast<int>(p[c] * vig);
      if (rng.next() % 97 == 0) v = (rng.next() & 1) ? 255 : 0;  // impulses
      p[c] = static_cast<std::uint8_t>(v);
    }
  }
  return skewed;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string input = argc > 1 ? argv[1] : "";
  const std::string dir = argc > 2 ? argv[2] : ".";

  Mat photo = input.empty() ? synthesizePage() : io::readImage(input);
  SIMDCV_REQUIRE(photo.channels() == 1, "document_scanner expects grayscale");
  io::writeBmp(dir + "/scan_0_input.bmp", photo);

  // 1. Impulse-noise removal (median is the right tool; benchmark family
  //    of the 23x related-work result).
  Mat denoised;
  medianBlur(photo, denoised, 3);
  io::writeBmp(dir + "/scan_1_median.bmp", denoised);

  // 2. Deskew: brute-force search for the rotation that maximizes row-
  //    projection variance (text lines align -> peaky projections).
  double bestAngle = 0, bestVar = -1;
  for (double a = -5.0; a <= 5.0; a += 0.5) {
    Mat rot;
    const AffineMat fwd = getRotationMatrix2D(photo.cols() / 2.0,
                                              photo.rows() / 2.0, a, 1.0);
    warpAffine(denoised, rot, invertAffine(fwd),
               {photo.cols(), photo.rows()}, BorderType::Replicate);
    // Row projection variance.
    double mean = 0, var = 0;
    std::vector<double> proj(static_cast<std::size_t>(rot.rows()), 0);
    for (int r = 0; r < rot.rows(); ++r) {
      double s = 0;
      for (int c = 0; c < rot.cols(); ++c) s += rot.at<std::uint8_t>(r, c);
      proj[static_cast<std::size_t>(r)] = s;
      mean += s;
    }
    mean /= rot.rows();
    for (double v : proj) var += (v - mean) * (v - mean);
    if (var > bestVar) {
      bestVar = var;
      bestAngle = a;
    }
  }
  Mat deskewed;
  const AffineMat fwd = getRotationMatrix2D(photo.cols() / 2.0,
                                            photo.rows() / 2.0, bestAngle, 1.0);
  warpAffine(denoised, deskewed, invertAffine(fwd),
             {photo.cols(), photo.rows()}, BorderType::Replicate);
  std::printf("deskew: best angle %.1f deg\n", bestAngle);
  io::writeBmp(dir + "/scan_2_deskew.bmp", deskewed);

  // 3. Binarize with Otsu's automatic threshold (text dark -> BinaryInv).
  const double t = otsuThreshold(deskewed);
  Mat binary;
  threshold(deskewed, binary, t, 255.0, ThresholdType::BinaryInv);
  std::printf("otsu threshold: %.0f\n", t);
  io::writeBmp(dir + "/scan_3_binary.bmp", binary);

  // 4. Morphological close merges dashes into word blobs.
  Mat blobs;
  morphClose(binary, blobs, {9, 3});
  io::writeBmp(dir + "/scan_4_blobs.bmp", blobs);

  // Stages 3-4 declared as a pipeline graph: a real threshold node (the
  // Otsu level is data-dependent, so the graph is built after measuring it)
  // feeding an opaque morphology stage. Opaque stages keep the graph on the
  // staged schedule; the point here is the declared form plus the identity
  // guarantee, which we assert against the direct calls above.
  graph::Graph g;
  const graph::NodeId src = g.source(Depth::U8);
  const graph::NodeId bin = g.threshold(src, t, 255.0, ThresholdType::BinaryInv);
  g.sink(g.opaque(bin, "morph-close", Depth::U8,
                  [](const Mat& a, Mat& d, KernelPath p) {
                    morphClose(a, d, {9, 3}, p);
                  }));
  Mat gblobs;
  g.run(deskewed, gblobs);
  SIMDCV_REQUIRE(countMismatches(blobs, gblobs) == 0,
                 "document_scanner: graph output differs from direct calls");
  std::printf("graph '%s': output identical to direct calls\n",
              g.signature().c_str());

  // 5. Connected components = word candidates; filter tiny specks.
  Mat labels;
  std::vector<ComponentStats> stats;
  const int n = connectedComponentsWithStats(blobs, labels, stats);
  int words = 0;
  double meanH = 0;
  for (const auto& s : stats) {
    if (s.area < 20) continue;
    ++words;
    meanH += s.bbox.height;
  }
  if (words) meanH /= words;
  std::printf("components: %d total, %d word-sized (mean height %.1f px)\n",
              n, words, meanH);

  std::printf("wrote scan_{0_input,1_median,2_deskew,3_binary,4_blobs}.bmp\n");
  return 0;
}
