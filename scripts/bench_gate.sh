#!/usr/bin/env bash
# Perf-regression guardrail: run the smoke bench suites and gate them against
# the committed same-host smoke baselines (bench/baselines/) with
# per-metric tolerances. Exits nonzero on a sustained regression.
#
# Policy (DESIGN.md section 12):
#   - Ratio-ish metrics only by default — fusion gates `speedup`
#     (unfused/fused within one process, so clock drift mostly cancels) and
#     serve gates `images_per_sec`. Absolute *_s / *_ms metrics are far too
#     noisy on shared 1-CPU CI hosts to gate at useful tolerances.
#   - Tolerances are calibrated from measured run-to-run smoke noise on the
#     reference CI host (fusion up to ~1.4x on single rows, serve similar on
#     the scanner preset), not from wishful thinking: fusion 25%, serve 40%.
#     fig6 gates the full speedup-series artifact (HAND/AUTO, HAND/scalar and
#     fused/unfused rows); its small-image smoke rows swing up to ~2x run to
#     run (measured over 4 runs, worst row 640x480 neon(emu)), so its
#     tolerance is 60% against a median-of-4-runs baseline.
#   - Up to SIMDCV_GATE_ATTEMPTS (default 3) runs per suite; one passing run
#     passes the suite. Noise passes on retry; a real regression fails every
#     attempt. Structural failures (parse error, no row overlap, missing
#     baseline) never retry.
#   - gate_compare refuses to vouch across machines (exit 5, host-mismatch:
#     the baseline's "host" block differs — same policy as the tune cache's
#     fingerprint). Default is skip-with-warning so forks are not gated by
#     our hardware; SIMDCV_GATE_STRICT=1 turns that into a failure.
#
# Overrides: SIMDCV_GATE_TOL_FUSION, SIMDCV_GATE_TOL_SERVE,
# SIMDCV_GATE_TOL_FIG6, SIMDCV_GATE_ATTEMPTS, SIMDCV_GATE_BASELINES (dir),
# SIMDCV_GATE_STRICT, BUILD_DIR.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
BASELINE_DIR="${SIMDCV_GATE_BASELINES:-bench/baselines}"
ATTEMPTS="${SIMDCV_GATE_ATTEMPTS:-3}"
TOL_FUSION="${SIMDCV_GATE_TOL_FUSION:-0.25}"
TOL_SERVE="${SIMDCV_GATE_TOL_SERVE:-0.40}"
TOL_FIG6="${SIMDCV_GATE_TOL_FIG6:-0.60}"
STRICT="${SIMDCV_GATE_STRICT:-0}"

cmake --build "$BUILD_DIR" -j --target gate_compare ablation_fusion ext_serve \
  fig6_edge_speedup

# gate_suite NAME BENCH_BINARY CANDIDATE_JSON BASELINE_JSON METRICS TOL
gate_suite() {
  local name="$1" bin="$2" json="$3" baseline="$4" metrics="$5" tol="$6"
  local rc attempt
  for attempt in $(seq 1 "$ATTEMPTS"); do
    echo "== gate: $name (attempt $attempt/$ATTEMPTS, metrics=$metrics, tolerance=$tol) =="
    # Run inside build/ so smoke artifacts never clobber committed results.
    (cd "$BUILD_DIR" && SIMDCV_BENCH_SMOKE=1 "./bench/$bin" >/dev/null)
    rc=0
    "$BUILD_DIR/bench/gate_compare" \
      --baseline "$baseline" --candidate "$BUILD_DIR/$json" \
      --metrics "$metrics" --tolerance "$tol" || rc=$?
    case "$rc" in
      0)
        echo "gate: $name ok"
        return 0
        ;;
      1)
        echo "gate: $name regressed on attempt $attempt (noise or real; retrying)"
        ;;
      5)
        if [ "$STRICT" = "1" ]; then
          echo "gate: $name FAILED (host mismatch, strict mode)"
          return 5
        fi
        echo "gate: $name SKIPPED — baseline recorded on a different host;" \
             "re-record $baseline on this machine to arm the gate"
        return 0
        ;;
      *)
        # missing baseline / parse error / no overlap: deterministic, no retry
        echo "gate: $name FAILED (structural, exit $rc)"
        return "$rc"
        ;;
    esac
  done
  echo "gate: $name FAILED — regression persisted across $ATTEMPTS attempts"
  return 1
}

gate_suite fusion ablation_fusion BENCH_fusion.json \
  "$BASELINE_DIR/BENCH_fusion_smoke.json" speedup "$TOL_FUSION"
echo
gate_suite serve ext_serve BENCH_serve.json \
  "$BASELINE_DIR/BENCH_serve_smoke.json" images_per_sec "$TOL_SERVE"
echo
gate_suite fig6 fig6_edge_speedup BENCH_fig6_edge_speedup.json \
  "$BASELINE_DIR/BENCH_fig6_smoke.json" speedup "$TOL_FIG6"

echo
echo "bench gate: OK"
