#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite (which includes the
# `check` label — the differential kernel-path oracle), then the runtime
# subsystem re-run under ThreadSanitizer (the `runtime` ctest label covers
# the thread pool and the 1-vs-N bit-equivalence tests), then the
# differential checker re-run under AddressSanitizer with fixed seeds, so
# every kernel path is exercised on adversarial inputs (saturation
# boundaries, NaN/Inf, ROI strides) with out-of-bounds detection armed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build + full ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo
echo "== runtime tests under ThreadSanitizer =="
cmake -B build-tsan -S . \
  -DSIMDCV_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMDCV_BUILD_BENCH=OFF \
  -DSIMDCV_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j --target test_runtime test_prof test_serve
ctest --test-dir build-tsan -L runtime --output-on-failure -j"$(nproc)"

echo
echo "== serving engine under ThreadSanitizer =="
# The `serve` label: the bounded MPMC ingress queue's wraparound/close/drain
# edge cases plus the engine's admission, deadline, and shutdown paths, all
# with real producer/consumer contention (see DESIGN.md, "simdcv::serve").
ctest --test-dir build-tsan -L serve --output-on-failure -j"$(nproc)"

echo
echo "== differential checker under AddressSanitizer =="
cmake -B build-asan -S . \
  -DSIMDCV_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMDCV_BUILD_BENCH=OFF \
  -DSIMDCV_BUILD_EXAMPLES=OFF
cmake --build build-asan -j --target check_all test_check test_io test_tune
# Fixed seeds: the run must be reproducible in CI; a failure prints a
# one-line reproducer (see DESIGN.md, "simdcv::check").
./build-asan/src/check/check_all --seed=0x51dc5eed --iters=200
./build-asan/src/check/check_all --seed=0xa5a11ced --iters=100
# The edge family again, deeper: the fused/unfused differential pair is the
# bit-exactness contract of the fused pipeline (see DESIGN.md, "Fusion").
./build-asan/src/check/check_all --only=edge --seed=0xed6ef05e --iters=400
# The graph engine's fused-vs-staged contract across chains, band partitions
# and tuned dispatch (see DESIGN.md, "Pipeline graphs"), with ASan watching
# the per-band ring buffers and seam re-priming.
./build-asan/src/check/check_all --only=graph --seed=0x9ed6ef05 --iters=200
# Tuned dispatch vs fixed-path oracles: trials time candidates on live calls,
# so ASan watches the tuner's scopes, registry, and cache I/O too.
./build-asan/src/check/check_all --only=tuned --seed=0x7a5ed15b --iters=150
ctest --test-dir build-asan -L check --output-on-failure -j"$(nproc)"

echo
echo "== autotuner under AddressSanitizer (ctest -L tune) =="
ctest --test-dir build-asan -L tune --output-on-failure -j"$(nproc)"

echo
echo "== pipeline graphs under AddressSanitizer (ctest -L graph) =="
# Builder validation, degenerate geometry (1x1, 1xW, Hx1), all border
# modes, ksize-1 stages, ROI sources, and adversarial band heights.
cmake --build build-asan -j --target test_graph
ctest --test-dir build-asan -L graph --output-on-failure -j"$(nproc)"

echo
echo "== tune-cache round trip (SIMDCV_TUNE + SIMDCV_TUNE_CACHE) =="
# First run measures and persists decisions; the file must exist, carry the
# versioned header, and at least one committed decision. The second run
# reloads it (same fingerprint) and serves tuned dispatch from the cache.
TUNE_CACHE="build-asan/tune_cache_roundtrip.txt"
rm -f "$TUNE_CACHE"
SIMDCV_TUNE=1 SIMDCV_TUNE_CACHE="$TUNE_CACHE" \
  ./build-asan/src/check/check_all --only=tuned --seed=0xcac4ed15 --iters=60
test -s "$TUNE_CACHE"
head -1 "$TUNE_CACHE" | grep -q '^simdcv-tune-cache v1$'
grep -q '^decide ' "$TUNE_CACHE"
SIMDCV_TUNE=1 SIMDCV_TUNE_CACHE="$TUNE_CACHE" \
  ./build-asan/src/check/check_all --only=tuned --seed=0xcac4ed15 --iters=60

echo
echo "== trace-on: check label with live tracing (SIMDCV_TRACE=1) =="
# Tracing recording during every differential-checker test: spans commit on
# every kernel entry, band, and pool event while ASan watches the rings.
SIMDCV_TRACE=1 ctest --test-dir build-asan -L check --output-on-failure \
  -j"$(nproc)"

echo
echo "== trace-off: compile-out leg (SIMDCV_ENABLE_TRACE=OFF) =="
# Spans must vanish at compile time; test_prof in this configure is the
# static-assert + inert-switch suite (trace_compiled_out_test.cpp).
cmake -B build-notrace -S . \
  -DSIMDCV_ENABLE_TRACE=OFF \
  -DSIMDCV_BUILD_BENCH=OFF \
  -DSIMDCV_BUILD_EXAMPLES=OFF
cmake --build build-notrace -j --target test_prof
ctest --test-dir build-notrace -L prof --output-on-failure -j"$(nproc)"

echo
echo "== bench smoke (SIMDCV_BENCH_SMOKE=1: 2 images x 1 cycle) =="
# Run from inside build/ so the smoke CSV/JSON artifacts do not clobber the
# committed full-protocol results at the repo root.
cmake --build build -j --target fig6_edge_speedup ablation_fusion \
  ablation_graph
(cd build && SIMDCV_BENCH_SMOKE=1 ./bench/fig6_edge_speedup)
(cd build && SIMDCV_BENCH_SMOKE=1 ./bench/ablation_fusion)
# Graph fused-vs-staged over three chains; the smoke JSON must carry rows
# for every declared chain.
(cd build && SIMDCV_BENCH_SMOKE=1 ./bench/ablation_graph)
grep -q '"chain": "edge"' build/BENCH_graph.json
grep -q '"chain": "blur-sobel"' build/BENCH_graph.json
grep -q '"chain": "photo"' build/BENCH_graph.json
# Traced smoke: per-stage breakdown summary + chrome trace JSON next to the
# CSV (fig6_edge_speedup_trace.json).
(cd build && SIMDCV_TRACE=1 SIMDCV_BENCH_SMOKE=1 ./bench/fig6_edge_speedup)
test -s build/fig6_edge_speedup_trace.json

echo
echo "== serve smoke (fixed-size load matrix end to end) =="
cmake --build build -j --target ext_serve
(cd build && SIMDCV_BENCH_SMOKE=1 ./bench/ext_serve)
# The smoke JSON must carry real latency/throughput rows for both presets.
grep -q '"images_per_sec"' build/BENCH_serve.json
grep -q '"p99_ms"' build/BENCH_serve.json
grep -q '"pipeline": "edge"' build/BENCH_serve.json
grep -q '"pipeline": "scanner"' build/BENCH_serve.json

echo
echo "== bench gate (smoke runs vs committed baselines) =="
scripts/bench_gate.sh

echo
echo "== bench gate: synthetic regression must fail with the metric named =="
# Deterministic negative control: clamp every speedup in a copy of the
# fusion baseline to a floor far below tolerance and gate the copy against
# the original. The gate must exit 1 (Regression) and name `speedup` —
# proving the guardrail trips on a real regression, not only on happy paths.
sed -E 's/"speedup": [0-9.eE+-]+/"speedup": 0.01/g' \
  bench/baselines/BENCH_fusion_smoke.json > build/BENCH_fusion_degraded.json
grep -q '"speedup": 0.01' build/BENCH_fusion_degraded.json
rc=0
./build/bench/gate_compare \
  --baseline bench/baselines/BENCH_fusion_smoke.json \
  --candidate build/BENCH_fusion_degraded.json \
  --metrics speedup --tolerance 0.25 2> build/gate_synth.err || rc=$?
test "$rc" -eq 1 || { echo "expected exit 1 (regression), got $rc"; exit 1; }
grep -q 'REGRESSION' build/gate_synth.err
grep -q 'speedup' build/gate_synth.err
echo "synthetic regression correctly rejected"

echo
echo "verify: OK"
