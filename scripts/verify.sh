#!/usr/bin/env bash
# Repo verification: tier-1 build + full test suite, then the runtime
# subsystem re-run under ThreadSanitizer (the `runtime` ctest label covers
# the thread pool and the 1-vs-N bit-equivalence tests).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build + full ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo
echo "== runtime tests under ThreadSanitizer =="
cmake -B build-tsan -S . \
  -DSIMDCV_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSIMDCV_BUILD_BENCH=OFF \
  -DSIMDCV_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j --target test_runtime
ctest --test-dir build-tsan -L runtime --output-on-failure -j"$(nproc)"

echo
echo "verify: OK"
