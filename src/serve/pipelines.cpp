// Pipeline-template registry and the built-in presets.
//
// Presets are the serving form of the example applications: each is a fixed
// chain of public kernels parameterized only by the request's KernelPath, so
// a served response is bit-identical to calling the chain directly (the
// guarantee tests/serve asserts per preset).
#include <map>
#include <mutex>
#include <utility>

#include "imgproc/edge.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/histogram.hpp"
#include "imgproc/median.hpp"
#include "imgproc/morphology.hpp"
#include "imgproc/threshold.hpp"
#include "serve/serve.hpp"

namespace simdcv::serve {

namespace {

std::mutex g_registry_mu;

std::map<std::string, PipelineFn>& registryLocked() {
  static std::map<std::string, PipelineFn> registry;
  return registry;
}

void registerLocked(const std::string& name, PipelineFn fn) {
  registryLocked()[name] = std::move(fn);
}

// The built-in presets, installed once before the first lookup. Thresholds
// and kernel shapes mirror the examples they were lifted from
// (examples/edge_detection.cpp, photo_pipeline.cpp, document_scanner.cpp).
void ensurePresets() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::lock_guard<std::mutex> lk(g_registry_mu);
    registerLocked("edge", [](const Mat& src, Mat& dst, KernelPath path) {
      imgproc::edgeDetect(src, dst, 100.0, 3, imgproc::BorderType::Reflect101,
                          path);
    });
    registerLocked("blur", [](const Mat& src, Mat& dst, KernelPath path) {
      imgproc::GaussianBlur(src, dst, {7, 7}, 1.6, 1.6,
                            imgproc::BorderType::Reflect101, path);
    });
    registerLocked("threshold", [](const Mat& src, Mat& dst, KernelPath path) {
      imgproc::threshold(src, dst, 128.0, 255.0,
                         imgproc::ThresholdType::Binary, path);
    });
    registerLocked("scanner", [](const Mat& src, Mat& dst, KernelPath path) {
      // Document binarization: impulse denoise, automatic threshold (text is
      // dark -> BinaryInv), then a morphological close to merge dashes into
      // word blobs — the document_scanner chain minus its search stages.
      Mat den;
      imgproc::medianBlur(src, den, 3, path);
      const double t = imgproc::otsuThreshold(den, path);
      Mat bin;
      imgproc::threshold(den, bin, t, 255.0, imgproc::ThresholdType::BinaryInv,
                         path);
      imgproc::morphClose(bin, dst, {9, 3}, path);
    });
  });
}

}  // namespace

void registerPipeline(const std::string& name, PipelineFn fn) {
  ensurePresets();
  std::lock_guard<std::mutex> lk(g_registry_mu);
  registerLocked(name, std::move(fn));
}

PipelineFn pipelineFn(const std::string& name) {
  ensurePresets();
  std::lock_guard<std::mutex> lk(g_registry_mu);
  const auto& registry = registryLocked();
  const auto it = registry.find(name);
  return it == registry.end() ? PipelineFn() : it->second;
}

bool hasPipeline(const std::string& name) {
  return static_cast<bool>(pipelineFn(name));
}

std::vector<std::string> pipelineNames() {
  ensurePresets();
  std::lock_guard<std::mutex> lk(g_registry_mu);
  std::vector<std::string> names;
  names.reserve(registryLocked().size());
  for (const auto& [name, fn] : registryLocked()) names.push_back(name);
  return names;
}

}  // namespace simdcv::serve
