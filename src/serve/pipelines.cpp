// Pipeline-template registry and the built-in presets.
//
// Presets are the serving form of the example applications: each is a fixed
// chain of public kernels parameterized only by the request's KernelPath, so
// a served response is bit-identical to calling the chain directly (the
// guarantee tests/serve asserts per preset).
#include <map>
#include <mutex>
#include <utility>

#include "graph/graph.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/histogram.hpp"
#include "imgproc/median.hpp"
#include "imgproc/morphology.hpp"
#include "imgproc/threshold.hpp"
#include "serve/serve.hpp"

namespace simdcv::serve {

namespace {

std::mutex g_registry_mu;

std::map<std::string, PipelineFn>& registryLocked() {
  static std::map<std::string, PipelineFn> registry;
  return registry;
}

void registerLocked(const std::string& name, PipelineFn fn) {
  registryLocked()[name] = std::move(fn);
}

// The built-in presets, installed once before the first lookup, each
// expressed as a pipeline Graph (a graph's staged schedule is stage-for-stage
// the direct kernel chain, and its fused schedule is bit-identical to staged,
// so served responses stay bit-identical to calling the chain directly —
// the guarantee tests/serve asserts per preset). Graphs declare the source
// depth, so depth-polymorphic presets keep one frozen Graph per accepted
// depth and select by src.depth(). Thresholds and kernel shapes mirror the
// examples they were lifted from (examples/edge_detection.cpp,
// photo_pipeline.cpp, document_scanner.cpp).
void ensurePresets() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::lock_guard<std::mutex> lk(g_registry_mu);
    registerLocked("edge", [](const Mat& src, Mat& dst, KernelPath path) {
      static const graph::Graph g8 = graph::makeEdgeGraph(
          Depth::U8, 100.0, 3, imgproc::BorderType::Reflect101);
      static const graph::Graph g32 = graph::makeEdgeGraph(
          Depth::F32, 100.0, 3, imgproc::BorderType::Reflect101);
      (src.depth() == Depth::F32 ? g32 : g8).run(src, dst, path);
    });
    registerLocked("blur", [](const Mat& src, Mat& dst, KernelPath path) {
      static const graph::Graph g8 = graph::makeBlurGraph(
          Depth::U8, 7, 7, 1.6, 1.6, imgproc::BorderType::Reflect101);
      static const graph::Graph g32 = graph::makeBlurGraph(
          Depth::F32, 7, 7, 1.6, 1.6, imgproc::BorderType::Reflect101);
      (src.depth() == Depth::F32 ? g32 : g8).run(src, dst, path);
    });
    registerLocked("threshold", [](const Mat& src, Mat& dst, KernelPath path) {
      auto make = [](Depth d) {
        return graph::makeThresholdGraph(d, 128.0, 255.0,
                                         imgproc::ThresholdType::Binary);
      };
      static const graph::Graph g8 = make(Depth::U8);
      static const graph::Graph g16 = make(Depth::S16);
      static const graph::Graph g32 = make(Depth::F32);
      const graph::Graph& g = src.depth() == Depth::F32   ? g32
                              : src.depth() == Depth::S16 ? g16
                                                          : g8;
      g.run(src, dst, path);
    });
    registerLocked("scanner", [](const Mat& src, Mat& dst, KernelPath path) {
      // Document binarization: impulse denoise, automatic threshold (text is
      // dark -> BinaryInv), then a morphological close to merge dashes into
      // word blobs — the document_scanner chain minus its search stages.
      // Every stage is outside the fusible vocabulary (median is a rank
      // filter, Otsu's level is data-dependent, close is two rank passes), so
      // the graph declares them opaque and always runs staged.
      static const graph::Graph g = [] {
        graph::Graph b;
        const graph::NodeId s = b.source(Depth::U8);
        const graph::NodeId den = b.opaque(
            s, "median3", Depth::U8, [](const Mat& a, Mat& d, KernelPath p) {
              imgproc::medianBlur(a, d, 3, p);
            });
        const graph::NodeId bin = b.opaque(
            den, "otsu-binarize", Depth::U8,
            [](const Mat& a, Mat& d, KernelPath p) {
              const double t = imgproc::otsuThreshold(a, p);
              imgproc::threshold(a, d, t, 255.0,
                                 imgproc::ThresholdType::BinaryInv, p);
            });
        b.sink(b.opaque(bin, "morph-close", Depth::U8,
                        [](const Mat& a, Mat& d, KernelPath p) {
                          imgproc::morphClose(a, d, {9, 3}, p);
                        }));
        return b;
      }();
      g.run(src, dst, path);
    });
  });
}

}  // namespace

void registerPipeline(const std::string& name, PipelineFn fn) {
  ensurePresets();
  std::lock_guard<std::mutex> lk(g_registry_mu);
  registerLocked(name, std::move(fn));
}

PipelineFn pipelineFn(const std::string& name) {
  ensurePresets();
  std::lock_guard<std::mutex> lk(g_registry_mu);
  const auto& registry = registryLocked();
  const auto it = registry.find(name);
  return it == registry.end() ? PipelineFn() : it->second;
}

bool hasPipeline(const std::string& name) {
  return static_cast<bool>(pipelineFn(name));
}

std::vector<std::string> pipelineNames() {
  ensurePresets();
  std::lock_guard<std::mutex> lk(g_registry_mu);
  std::vector<std::string> names;
  names.reserve(registryLocked().size());
  for (const auto& [name, fn] : registryLocked()) names.push_back(name);
  return names;
}

}  // namespace simdcv::serve
