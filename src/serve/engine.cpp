// The serve engine: admission, request workers, deadlines, shutdown.
//
// Lifecycle of a request (every path sets exactly one Stats bucket):
//
//   submit/trySubmit
//     -> admission refused (shutdown begun / ring full)   RejectedShutdown /
//                                                         RejectedFull
//     -> queued in the ingress ring
//          -> shutdown(Abort) drains it                   Aborted
//          -> worker pops it, deadline already passed     Expired
//          -> worker executes it                          Ok / Error
//
// Workers never interrupt a running pipeline: deadlines are checked at
// pickup, so "drop-expired" sheds exactly the work that has not started.
#include "serve/serve.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "core/scratch.hpp"
#include "platform/env.hpp"
#include "prof/prof.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/queue.hpp"

namespace simdcv::serve {

namespace {

std::future<Response> readyResponse(Status status, std::uint64_t submit_ns,
                                    std::string error = {}) {
  std::promise<Response> p;
  Response r;
  r.status = status;
  r.error = std::move(error);
  r.submit_ns = submit_ns;
  p.set_value(std::move(r));
  return p.get_future();
}

}  // namespace

const char* toString(Status s) noexcept {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::RejectedFull: return "rejected-full";
    case Status::RejectedShutdown: return "rejected-shutdown";
    case Status::Expired: return "expired";
    case Status::Aborted: return "aborted";
    case Status::Error: return "error";
  }
  return "?";
}

Options Options::fromEnv() {
  // platform::envInt rejects negative / overflowed / trailing-garbage values
  // with a one-line stderr warning and keeps the default — "-5" must not wrap
  // into four billion workers.
  Options o;
  o.workers = static_cast<int>(
      platform::envInt("SIMDCV_SERVE_WORKERS", 1, 1, 4096));
  o.queue_capacity = static_cast<std::size_t>(
      platform::envInt("SIMDCV_SERVE_QUEUE_CAP", 64, 1, 1 << 20));
  o.default_deadline_ns =
      static_cast<std::uint64_t>(platform::envInt("SIMDCV_SERVE_DEADLINE_MS",
                                                  0, 0, 1000000000000LL)) *
      std::uint64_t(1000000);
  return o;
}

class Engine::Impl {
 public:
  struct Request {
    PipelineFn fn;
    Mat src;
    KernelPath path = KernelPath::Default;
    std::uint64_t submit_ns = 0;
    std::uint64_t deadline_ns = 0;  // absolute nowNs() value; 0 = none
    std::promise<Response> promise;
  };

  explicit Impl(Options opts)
      : opts_(normalize(std::move(opts))), queue_(opts_.queue_capacity) {
    workers_.reserve(static_cast<std::size_t>(opts_.workers));
    for (int i = 0; i < opts_.workers; ++i)
      workers_.emplace_back([this] { workerLoop(); });
  }

  ~Impl() { shutdown(Shutdown::Drain); }

  std::future<Response> submit(const std::string& pipeline, Mat&& src,
                               const SubmitOptions& so, bool blocking) {
    submitted_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t now = prof::nowNs();
    if (!accepting_.load(std::memory_order_acquire)) {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      return readyResponse(Status::RejectedShutdown, now);
    }
    PipelineFn fn = pipelineFn(pipeline);
    if (!fn) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return readyResponse(Status::Error, now,
                           "unknown pipeline '" + pipeline + "'");
    }
    Request req;
    req.fn = std::move(fn);
    req.src = std::move(src);
    req.path = so.path;
    req.submit_ns = now;
    const std::uint64_t rel =
        so.deadline_ns != 0 ? so.deadline_ns : opts_.default_deadline_ns;
    req.deadline_ns = rel != 0 ? now + rel : 0;
    std::future<Response> fut = req.promise.get_future();

    const PushResult pr = blocking ? queue_.push(std::move(req))
                                   : queue_.tryPush(std::move(req));
    switch (pr) {
      case PushResult::Ok:
        accepted_.fetch_add(1, std::memory_order_relaxed);
        return fut;
      case PushResult::Full:
        rejected_full_.fetch_add(1, std::memory_order_relaxed);
        return readyResponse(Status::RejectedFull, now);
      case PushResult::Closed:
        rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
        return readyResponse(Status::RejectedShutdown, now);
    }
    return readyResponse(Status::Error, now, "unreachable");
  }

  void shutdown(Shutdown mode) {
    std::lock_guard<std::mutex> lk(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
    accepting_.store(false, std::memory_order_release);
    queue_.close();
    if (mode == Shutdown::Abort) {
      for (Request& req : queue_.drainNow()) {
        aborted_.fetch_add(1, std::memory_order_relaxed);
        Response r;
        r.status = Status::Aborted;
        r.submit_ns = req.submit_ns;
        req.promise.set_value(std::move(r));
      }
    }
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }

  Stats stats() const noexcept {
    Stats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.accepted = accepted_.load(std::memory_order_relaxed);
    s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
    s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
    s.expired = expired_.load(std::memory_order_relaxed);
    s.aborted = aborted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    return s;
  }

  const Options& options() const noexcept { return opts_; }
  std::size_t queued() const { return queue_.size(); }

 private:
  static Options normalize(Options o) {
    if (o.workers < 1) o.workers = 1;
    if (o.queue_capacity < 1) o.queue_capacity = 1;
    return o;
  }

  void workerLoop() {
    if (opts_.inline_kernel_parallel) runtime::setInlineParallel(true);
    Request req;
    while (queue_.pop(req)) {
      const std::uint64_t start = prof::nowNs();
      const KernelPath p = resolvePath(req.path);
      prof::addSample("serve.wait", p, start - req.submit_ns);
      Response resp;
      resp.submit_ns = req.submit_ns;
      resp.start_ns = start;
      if (req.deadline_ns != 0 && start > req.deadline_ns) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        prof::instant("serve.expired");
        resp.status = Status::Expired;
        resp.done_ns = start;
        req.promise.set_value(std::move(resp));
        req = Request{};  // drop the source image before the next pop
        continue;
      }
      {
        // One arena frame per request: pipeline-internal frames nest inside
        // it, and the worker's arena stays warm across requests (zero
        // steady-state allocations at a stable request size).
        core::ScratchFrame frame;
        SIMDCV_TRACE_SCOPE("serve.exec", p,
                           static_cast<std::uint64_t>(req.src.total()) *
                               (req.src.elemSize() + 1));
        try {
          req.fn(req.src, resp.image, req.path);
          resp.status = Status::Ok;
          completed_.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception& e) {
          errors_.fetch_add(1, std::memory_order_relaxed);
          resp.status = Status::Error;
          resp.error = e.what();
          resp.image = Mat();
        } catch (...) {
          errors_.fetch_add(1, std::memory_order_relaxed);
          resp.status = Status::Error;
          resp.error = "unknown exception";
          resp.image = Mat();
        }
      }
      resp.done_ns = prof::nowNs();
      req.promise.set_value(std::move(resp));
      req = Request{};
    }
  }

  Options opts_;
  BoundedQueue<Request> queue_;
  std::vector<std::thread> workers_;

  std::mutex shutdown_mu_;
  bool shut_down_ = false;
  std::atomic_bool accepting_{true};

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> aborted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
};

Engine::Engine(Options opts) : impl_(std::make_unique<Impl>(std::move(opts))) {}

Engine::~Engine() = default;

std::future<Response> Engine::submit(const std::string& pipeline, Mat src,
                                     SubmitOptions so) {
  return impl_->submit(pipeline, std::move(src), so, /*blocking=*/true);
}

std::future<Response> Engine::trySubmit(const std::string& pipeline, Mat src,
                                        SubmitOptions so) {
  return impl_->submit(pipeline, std::move(src), so, /*blocking=*/false);
}

void Engine::shutdown(Shutdown mode) { impl_->shutdown(mode); }

Stats Engine::stats() const noexcept { return impl_->stats(); }

const Options& Engine::options() const noexcept { return impl_->options(); }

std::size_t Engine::queued() const { return impl_->queued(); }

}  // namespace simdcv::serve
