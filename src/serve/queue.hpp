// Bounded MPMC ingress queue: a fixed-capacity ring with condition-variable
// blocking, the admission point of the serve engine. Design choices:
//
//   - Mutex + two CVs over a preallocated ring, not a lock-free queue. The
//     items are whole image requests (the cheapest is ~1 ms of kernel work),
//     so enqueue cost is noise; what matters is that full/empty blocking and
//     close() semantics are airtight under ThreadSanitizer.
//   - Bounded by construction: push() blocks when full (backpressure to the
//     producer), tryPush() refuses instead (reject-on-full admission).
//   - close() freezes admission but lets consumers drain what was accepted
//     (the drain shutdown); drainNow() empties the ring immediately so the
//     caller can fail the leftovers (the abort shutdown).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace simdcv::serve {

enum class PushResult : int {
  Ok = 0,
  Full,    ///< tryPush only: ring at capacity
  Closed,  ///< queue was closed; item not accepted
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : slots_(checked(capacity)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return count_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  /// Blocking submit: waits while the ring is full. Returns Closed if the
  /// queue is (or becomes, while waiting) closed; the item is not consumed
  /// in that case.
  PushResult push(T&& item) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] { return closed_ || count_ < slots_.size(); });
    if (closed_) return PushResult::Closed;
    emplaceLocked(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return PushResult::Ok;
  }

  /// Non-blocking submit: refuses immediately when full or closed.
  PushResult tryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return PushResult::Closed;
      if (count_ == slots_.size()) return PushResult::Full;
      emplaceLocked(std::move(item));
    }
    not_empty_.notify_one();
    return PushResult::Ok;
  }

  /// Blocking consume: waits until an item is available or the queue is
  /// closed AND empty (drained). Returns false only in the latter case.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || count_ > 0; });
    if (count_ == 0) return false;  // closed and drained
    out = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    lk.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking consume.
  bool tryPop(T& out) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (count_ == 0) return false;
      out = std::move(slots_[head_]);
      head_ = (head_ + 1) % slots_.size();
      --count_;
    }
    not_full_.notify_one();
    return true;
  }

  /// Freeze admission. Blocked pushers return Closed; poppers drain the
  /// remaining items and then get false. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Remove and return every queued item right now, in FIFO order. Used by
  /// the abort shutdown to fail leftovers after close(); racing poppers may
  /// legitimately win individual items.
  std::vector<T> drainNow() {
    std::vector<T> out;
    {
      std::lock_guard<std::mutex> lk(mu_);
      out.reserve(count_);
      while (count_ > 0) {
        out.push_back(std::move(slots_[head_]));
        head_ = (head_ + 1) % slots_.size();
        --count_;
      }
    }
    not_full_.notify_all();
    return out;
  }

 private:
  // Validates before the ring is sized: a zero capacity must throw, not be
  // silently promoted to 1 (a capacity the caller never asked for).
  static std::size_t checked(std::size_t capacity) {
    SIMDCV_REQUIRE(capacity >= 1, "BoundedQueue: capacity must be >= 1");
    return capacity;
  }

  // Requires mu_ held and count_ < slots_.size().
  void emplaceLocked(T&& item) {
    slots_[(head_ + count_) % slots_.size()] = std::move(item);
    ++count_;
  }

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> slots_;  // ring storage; [head_, head_+count_) mod capacity
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace simdcv::serve
