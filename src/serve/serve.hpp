// simdcv::serve — batched image-service engine: the request layer that turns
// the kernel library into a system under traffic.
//
// Everything below the serve line is single-request machinery (kernels, the
// band-parallel runtime, per-thread scratch arenas, prof spans). This module
// adds the missing layer on top:
//
//   - a bounded MPMC ingress queue (serve/queue.hpp): fixed-capacity ring,
//     CV-based blocking submit() for backpressure, trySubmit() for
//     reject-on-full admission;
//   - an Engine running N request workers, each pulling requests off the
//     queue and executing a registered pipeline inside its own ScratchArena
//     frame, with queue-wait vs execute time attributed through prof spans
//     ("serve.wait" / "serve.exec");
//   - per-request deadlines (expired requests are dropped before execution,
//     never mid-kernel) and graceful shutdown in two modes: Drain completes
//     everything admitted, Abort fails the queue's leftovers immediately;
//   - a pipeline-template registry with presets lifted from examples/
//     ("edge", "blur", "threshold", "scanner") plus registerPipeline() for
//     application chains.
//
// Determinism: the engine adds no arithmetic of its own — a request's output
// is produced by the same kernels, on the same path, as a direct call, so
// results are bit-identical to unqueued execution on every KernelPath and
// worker count (enforced by tests/serve under ThreadSanitizer).
//
// Threading model: request workers are dedicated threads owned by the
// Engine; cross-request concurrency comes from them, not from the band pool.
// By default each worker pins runtime::setInlineParallel(true) so kernels
// inside a request run single-threaded — N workers x M bands oversubscription
// cannot happen. Set Options::inline_kernel_parallel = false to let requests
// fan bands out to the shared work-stealing pool (sensible for workers == 1
// with SIMDCV_NUM_THREADS > 1).
//
// Environment (read by Options::fromEnv(), the Engine default):
//   SIMDCV_SERVE_WORKERS      request workers (default 1)
//   SIMDCV_SERVE_QUEUE_CAP    ingress ring capacity (default 64)
//   SIMDCV_SERVE_DEADLINE_MS  default per-request deadline, 0 = none
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::serve {

// ---- pipeline registry -----------------------------------------------------

/// A pipeline template: src in, dst out, on the requested kernel path. Must
/// be safe to run concurrently from multiple threads (all simdcv kernels
/// are) and deterministic for a given (src, path).
using PipelineFn = std::function<void(const Mat& src, Mat& dst,
                                      KernelPath path)>;

/// Register (or replace) a pipeline template under `name`.
void registerPipeline(const std::string& name, PipelineFn fn);

/// Look up a pipeline; returns an empty function if `name` is unknown.
/// The first registry access installs the built-in presets:
///   "edge"       edgeDetect (Sobel x/y, |gx|+|gy|, binary threshold)
///   "blur"       7x7 Gaussian, sigma 1.6
///   "threshold"  binary threshold at 128
///   "scanner"    document chain: median denoise, Otsu binarize, morph close
PipelineFn pipelineFn(const std::string& name);

bool hasPipeline(const std::string& name);
std::vector<std::string> pipelineNames();

// ---- requests and responses ------------------------------------------------

enum class Status : int {
  Ok = 0,
  RejectedFull,      ///< trySubmit: ingress ring at capacity
  RejectedShutdown,  ///< submitted after shutdown began
  Expired,           ///< deadline passed while queued; dropped before execute
  Aborted,           ///< queued at shutdown(Abort); never executed
  Error,             ///< pipeline threw (or unknown pipeline name)
};
const char* toString(Status s) noexcept;

struct Response {
  Status status = Status::Ok;
  Mat image;          ///< pipeline output (empty unless status == Ok)
  std::string error;  ///< what() when status == Error
  // Lifecycle timestamps from prof::nowNs() (0 for states never reached).
  std::uint64_t submit_ns = 0;  ///< admission into the ingress queue
  std::uint64_t start_ns = 0;   ///< picked up by a worker
  std::uint64_t done_ns = 0;    ///< response ready
  std::uint64_t queueWaitNs() const noexcept { return start_ns - submit_ns; }
  std::uint64_t execNs() const noexcept { return done_ns - start_ns; }
  std::uint64_t totalNs() const noexcept { return done_ns - submit_ns; }
};

struct SubmitOptions {
  KernelPath path = KernelPath::Default;
  /// Deadline relative to submission; 0 uses the engine's default. A request
  /// whose deadline passes while it waits in the queue is dropped (Expired)
  /// before any kernel runs — execution is never cut short mid-image.
  std::uint64_t deadline_ns = 0;
};

// ---- the engine ------------------------------------------------------------

struct Options {
  int workers = 1;                       ///< request worker threads (>= 1)
  std::size_t queue_capacity = 64;       ///< ingress ring slots (>= 1)
  std::uint64_t default_deadline_ns = 0; ///< 0 = no default deadline
  /// Run kernels single-threaded inside each request worker (see header
  /// comment on the threading model).
  bool inline_kernel_parallel = true;

  /// Defaults above overridden by SIMDCV_SERVE_WORKERS /
  /// SIMDCV_SERVE_QUEUE_CAP / SIMDCV_SERVE_DEADLINE_MS where set.
  static Options fromEnv();
};

/// Monotonic admission/outcome counters (relaxed atomics; a snapshot is not
/// a consistent cut but every request ends in exactly one outcome bucket).
struct Stats {
  std::uint64_t submitted = 0;          ///< submit/trySubmit calls
  std::uint64_t accepted = 0;           ///< admitted into the queue
  std::uint64_t rejected_full = 0;      ///< trySubmit refused: ring full
  std::uint64_t rejected_shutdown = 0;  ///< submitted after shutdown
  std::uint64_t expired = 0;            ///< dropped: deadline passed in queue
  std::uint64_t aborted = 0;            ///< dropped: shutdown(Abort) leftovers
  std::uint64_t completed = 0;          ///< executed, status Ok
  std::uint64_t errors = 0;             ///< pipeline threw / unknown name
};

enum class Shutdown : int {
  Drain,  ///< stop admission, complete everything already queued
  Abort,  ///< stop admission, fail queued requests (in-flight ones finish)
};

class Engine {
 public:
  explicit Engine(Options opts = Options::fromEnv());
  ~Engine();  ///< shutdown(Drain) if still running

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Blocking submit: waits while the ingress ring is full (backpressure).
  /// The returned future always becomes ready — with status Ok, or one of
  /// the drop/reject statuses. Safe from any number of threads.
  std::future<Response> submit(const std::string& pipeline, Mat src,
                               SubmitOptions so = {});

  /// Non-blocking submit: RejectedFull immediately when the ring is full.
  std::future<Response> trySubmit(const std::string& pipeline, Mat src,
                                  SubmitOptions so = {});

  /// Stop admission and wind down the workers. Drain completes every queued
  /// request before returning; Abort fails queued requests immediately and
  /// returns once in-flight ones finish. Idempotent; the first call decides
  /// the mode. submit() after shutdown yields RejectedShutdown.
  void shutdown(Shutdown mode = Shutdown::Drain);

  Stats stats() const noexcept;
  const Options& options() const noexcept;
  /// Requests currently waiting in the ingress ring.
  std::size_t queued() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace simdcv::serve
