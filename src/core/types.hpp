// Fundamental pixel/element type system, mirroring OpenCV's CV_8UC1-style
// encodings with a strongly typed C++20 surface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace simdcv {

/// Element depth (the scalar type stored per channel).
enum class Depth : std::uint8_t { U8 = 0, S8, U16, S16, S32, F32, F64 };

inline constexpr int kDepthCount = 7;

/// Size in bytes of one element of the given depth.
constexpr std::size_t depthSize(Depth d) noexcept {
  switch (d) {
    case Depth::U8:
    case Depth::S8: return 1;
    case Depth::U16:
    case Depth::S16: return 2;
    case Depth::S32:
    case Depth::F32: return 4;
    case Depth::F64: return 8;
  }
  return 0;
}

constexpr bool isFloatDepth(Depth d) noexcept {
  return d == Depth::F32 || d == Depth::F64;
}

const char* toString(Depth d) noexcept;

/// Map a C++ scalar type to its Depth (primary template intentionally
/// undefined: using an unsupported element type is a compile error).
template <typename T> struct DepthOf;
template <> struct DepthOf<std::uint8_t> { static constexpr Depth value = Depth::U8; };
template <> struct DepthOf<std::int8_t> { static constexpr Depth value = Depth::S8; };
template <> struct DepthOf<std::uint16_t> { static constexpr Depth value = Depth::U16; };
template <> struct DepthOf<std::int16_t> { static constexpr Depth value = Depth::S16; };
template <> struct DepthOf<std::int32_t> { static constexpr Depth value = Depth::S32; };
template <> struct DepthOf<float> { static constexpr Depth value = Depth::F32; };
template <> struct DepthOf<double> { static constexpr Depth value = Depth::F64; };

template <typename T>
inline constexpr Depth kDepthOf = DepthOf<T>::value;

/// A pixel type: depth plus channel count (1..4).
struct PixelType {
  Depth depth = Depth::U8;
  int channels = 1;

  constexpr PixelType() = default;
  constexpr PixelType(Depth d, int ch) : depth(d), channels(ch) {}

  constexpr std::size_t elemSize() const noexcept {
    return depthSize(depth) * static_cast<std::size_t>(channels);
  }
  constexpr std::size_t elemSize1() const noexcept { return depthSize(depth); }

  friend constexpr bool operator==(PixelType a, PixelType b) noexcept {
    return a.depth == b.depth && a.channels == b.channels;
  }
};

std::string toString(PixelType t);

/// Convenience constructors in OpenCV spelling.
constexpr PixelType U8C1{Depth::U8, 1};
constexpr PixelType U8C3{Depth::U8, 3};
constexpr PixelType U8C4{Depth::U8, 4};
constexpr PixelType S16C1{Depth::S16, 1};
constexpr PixelType S32C1{Depth::S32, 1};
constexpr PixelType F32C1{Depth::F32, 1};
constexpr PixelType F64C1{Depth::F64, 1};

/// 2-D size, rows/cols expressed as (width, height) like cv::Size.
struct Size {
  int width = 0;
  int height = 0;
  constexpr Size() = default;
  constexpr Size(int w, int h) : width(w), height(h) {}
  constexpr std::int64_t area() const noexcept {
    return static_cast<std::int64_t>(width) * height;
  }
  friend constexpr bool operator==(Size a, Size b) noexcept {
    return a.width == b.width && a.height == b.height;
  }
};

/// Axis-aligned rectangle (x, y, width, height) for ROI selection.
struct Rect {
  int x = 0, y = 0, width = 0, height = 0;
  constexpr Rect() = default;
  constexpr Rect(int x_, int y_, int w, int h) : x(x_), y(y_), width(w), height(h) {}
  friend constexpr bool operator==(Rect a, Rect b) noexcept {
    return a.x == b.x && a.y == b.y && a.width == b.width && a.height == b.height;
  }
};

/// Library error type; all precondition violations throw this.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Precondition check used across the library.
#define SIMDCV_REQUIRE(cond, msg)                                   \
  do {                                                              \
    if (!(cond)) throw ::simdcv::Error(std::string("simdcv: ") + (msg)); \
  } while (0)

}  // namespace simdcv
