// Hand-written SSE2 array-op kernels.
//
// Saturating u8/s16 arithmetic maps 1:1 onto padds/paddus/psubs/psubus;
// u8 absdiff uses the max-sub-or trick; f32 min/max/add/sub are direct.
// The u8 sum uses PSADBW (sum of absolute differences against zero), the
// classic 16-bytes-per-instruction reduction.
#include "core/array_ops_detail.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace simdcv::core::detail::aops_sse2 {

namespace {

using LoadFn = __m128i (*)(const void*);

inline __m128i load(const void* p) {
  return _mm_loadu_si128(static_cast<const __m128i*>(p));
}
inline void store(void* p, __m128i v) {
  _mm_storeu_si128(static_cast<__m128i*>(p), v);
}

bool binU8(BinOp op, const std::uint8_t* a, const std::uint8_t* b,
           std::uint8_t* d, std::size_t n, std::size_t& done) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = load(a + i), vb = load(b + i);
    __m128i r;
    switch (op) {
      case BinOp::Add: r = _mm_adds_epu8(va, vb); break;
      case BinOp::Sub: r = _mm_subs_epu8(va, vb); break;
      case BinOp::AbsDiff:
        r = _mm_or_si128(_mm_subs_epu8(va, vb), _mm_subs_epu8(vb, va));
        break;
      case BinOp::Min: r = _mm_min_epu8(va, vb); break;
      case BinOp::Max: r = _mm_max_epu8(va, vb); break;
      default: return false;
    }
    store(d + i, r);
  }
  done = i;
  return true;
}

bool binS16(BinOp op, const std::int16_t* a, const std::int16_t* b,
            std::int16_t* d, std::size_t n, std::size_t& done) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i va = load(a + i), vb = load(b + i);
    __m128i r;
    switch (op) {
      case BinOp::Add: r = _mm_adds_epi16(va, vb); break;
      case BinOp::Sub: r = _mm_subs_epi16(va, vb); break;
      case BinOp::AbsDiff: {
        // |a-b| with saturation: max(a,b) -sat- min(a,b).
        const __m128i mx = _mm_max_epi16(va, vb);
        const __m128i mn = _mm_min_epi16(va, vb);
        r = _mm_subs_epi16(mx, mn);
        break;
      }
      case BinOp::Min: r = _mm_min_epi16(va, vb); break;
      case BinOp::Max: r = _mm_max_epi16(va, vb); break;
      default: return false;
    }
    store(d + i, r);
  }
  done = i;
  return true;
}

bool binF32(BinOp op, const float* a, const float* b, float* d, std::size_t n,
            std::size_t& done) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 va = _mm_loadu_ps(a + i), vb = _mm_loadu_ps(b + i);
    __m128 r;
    switch (op) {
      case BinOp::Add: r = _mm_add_ps(va, vb); break;
      case BinOp::Sub: r = _mm_sub_ps(va, vb); break;
      case BinOp::AbsDiff: {
        const __m128 diff = _mm_sub_ps(va, vb);
        r = _mm_andnot_ps(_mm_set1_ps(-0.0f), diff);  // clear sign bit
        break;
      }
      case BinOp::Min: r = _mm_min_ps(va, vb); break;
      case BinOp::Max: r = _mm_max_ps(va, vb); break;
      default: return false;
    }
    _mm_storeu_ps(d + i, r);
  }
  done = i;
  return true;
}

bool binBytes(BinOp op, const std::uint8_t* a, const std::uint8_t* b,
              std::uint8_t* d, std::size_t bytes, std::size_t& done) {
  std::size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    const __m128i va = load(a + i), vb = load(b + i);
    __m128i r;
    switch (op) {
      case BinOp::And: r = _mm_and_si128(va, vb); break;
      case BinOp::Or: r = _mm_or_si128(va, vb); break;
      case BinOp::Xor: r = _mm_xor_si128(va, vb); break;
      default: return false;
    }
    store(d + i, r);
  }
  done = i;
  return true;
}

}  // namespace

bool binRange(BinOp op, Depth depth, const void* a, const void* b, void* dst,
              std::size_t n) {
  std::size_t done = 0;
  bool handled = false;
  if (op == BinOp::And || op == BinOp::Or || op == BinOp::Xor) {
    const std::size_t bytes = n * depthSize(depth);
    handled = binBytes(op, static_cast<const std::uint8_t*>(a),
                       static_cast<const std::uint8_t*>(b),
                       static_cast<std::uint8_t*>(dst), bytes, done);
    if (handled && done < bytes) {
      aops_autovec::binRange(op, Depth::U8,
                             static_cast<const std::uint8_t*>(a) + done,
                             static_cast<const std::uint8_t*>(b) + done,
                             static_cast<std::uint8_t*>(dst) + done,
                             bytes - done);
    }
    return handled;
  }
  switch (depth) {
    case Depth::U8:
      handled = binU8(op, static_cast<const std::uint8_t*>(a),
                      static_cast<const std::uint8_t*>(b),
                      static_cast<std::uint8_t*>(dst), n, done);
      break;
    case Depth::S16:
      handled = binS16(op, static_cast<const std::int16_t*>(a),
                       static_cast<const std::int16_t*>(b),
                       static_cast<std::int16_t*>(dst), n, done);
      break;
    case Depth::F32:
      handled = binF32(op, static_cast<const float*>(a),
                       static_cast<const float*>(b), static_cast<float*>(dst),
                       n, done);
      break;
    default:
      return false;
  }
  if (handled && done < n) {
    const std::size_t esz = depthSize(depth);
    aops_autovec::binRange(op, depth,
                           static_cast<const std::uint8_t*>(a) + done * esz,
                           static_cast<const std::uint8_t*>(b) + done * esz,
                           static_cast<std::uint8_t*>(dst) + done * esz,
                           n - done);
  }
  return handled;
}

bool sumRange(Depth d, const void* a, std::size_t n, double& out) {
  if (d != Depth::U8) return false;
  const auto* p = static_cast<const std::uint8_t*>(a);
  const __m128i zero = _mm_setzero_si128();
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i sad = _mm_sad_epu8(load(p + i), zero);  // two u64 partials
    acc += static_cast<std::uint64_t>(_mm_cvtsi128_si64(sad)) +
           static_cast<std::uint64_t>(
               _mm_cvtsi128_si64(_mm_srli_si128(sad, 8)));
  }
  for (; i < n; ++i) acc += p[i];
  out = static_cast<double>(acc);
  return true;
}

}  // namespace simdcv::core::detail::aops_sse2

#else

namespace simdcv::core::detail::aops_sse2 {
bool binRange(BinOp, Depth, const void*, const void*, void*, std::size_t) {
  return false;
}
bool sumRange(Depth, const void*, std::size_t, double&) { return false; }
}  // namespace simdcv::core::detail::aops_sse2

#endif
