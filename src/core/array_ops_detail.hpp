// Internal dispatch surface for array_ops: flat-range kernels per path.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/types.hpp"

namespace simdcv::core::detail {

enum class BinOp : std::uint8_t { Add, Sub, AbsDiff, Min, Max, And, Or, Xor };

// Scalar arms (two TUs: vectorizer on / off).
namespace aops_autovec {
void binRange(BinOp op, Depth d, const void* a, const void* b, void* dst,
              std::size_t n);
void notRange(Depth d, const void* a, void* dst, std::size_t n);
void scaleRange(Depth d, const void* a, void* dst, std::size_t n, double alpha,
                double beta);
void weightedRange(Depth d, const void* a, const void* b, void* dst,
                   std::size_t n, double alpha, double beta, double gamma);
double sumRange(Depth d, const void* a, std::size_t n);
std::size_t countNonZeroRange(Depth d, const void* a, std::size_t n);
}  // namespace aops_autovec
namespace aops_novec {
void binRange(BinOp op, Depth d, const void* a, const void* b, void* dst,
              std::size_t n);
void notRange(Depth d, const void* a, void* dst, std::size_t n);
void scaleRange(Depth d, const void* a, void* dst, std::size_t n, double alpha,
                double beta);
void weightedRange(Depth d, const void* a, const void* b, void* dst,
                   std::size_t n, double alpha, double beta, double gamma);
double sumRange(Depth d, const void* a, std::size_t n);
std::size_t countNonZeroRange(Depth d, const void* a, std::size_t n);
}  // namespace aops_novec

// SIMD arms; return false when the (op, depth) pair has no hand kernel so
// the caller falls back to the scalar arm.
namespace aops_sse2 {
bool binRange(BinOp op, Depth d, const void* a, const void* b, void* dst,
              std::size_t n);
bool sumRange(Depth d, const void* a, std::size_t n, double& out);
}  // namespace aops_sse2
namespace aops_neon {
bool binRange(BinOp op, Depth d, const void* a, const void* b, void* dst,
              std::size_t n);
bool sumRange(Depth d, const void* a, std::size_t n, double& out);
}  // namespace aops_neon

}  // namespace simdcv::core::detail
