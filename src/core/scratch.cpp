#include "core/scratch.hpp"

#include <algorithm>

#include "core/types.hpp"

namespace simdcv::core {

namespace {
constexpr std::size_t kAlign = 64;
constexpr std::size_t kMinBlock = 16 * 1024;
}  // namespace

ScratchArena& ScratchArena::forThread() {
  thread_local ScratchArena arena;
  return arena;
}

ScratchArena::~ScratchArena() {
  for (std::uint8_t* p : raw_) delete[] p;
}

void ScratchArena::release() noexcept {
  if (depth_ != 0) return;  // a live frame still points into the block
  for (std::uint8_t* p : raw_) delete[] p;
  raw_.clear();
  block_ = nullptr;
  cap_ = 0;
  top_ = 0;
}

void ScratchArena::grow(std::size_t need) {
  const std::size_t size = std::max({need, cap_ * 2, kMinBlock});
  auto* raw = new std::uint8_t[size + kAlign];
  raw_.push_back(raw);
  const auto addr = reinterpret_cast<std::uintptr_t>(raw);
  block_ = raw + ((addr + kAlign - 1) / kAlign * kAlign - addr);
  cap_ = size;
  top_ = 0;
  ++refills_;
}

void* ScratchArena::alloc(std::size_t bytes, std::size_t align) {
  SIMDCV_REQUIRE(depth_ > 0, "scratch: alloc outside a ScratchFrame");
  align = std::max<std::size_t>(align, 1);
  std::size_t at = (top_ + align - 1) / align * align;
  if (at + bytes > cap_) {
    // Outgrown mid-frame: previous block stays in raw_ (existing pointers
    // remain valid); allocations continue from a fresh, larger block. The
    // frame's saved offset refers to the old block, but unwinding to depth 0
    // resets top_ anyway.
    grow(std::max(top_ + bytes + align, cap_ + bytes + align));
    at = (top_ + align - 1) / align * align;
  }
  top_ = at + bytes;
  return block_ + at;
}

ScratchFrame::~ScratchFrame() {
  --arena_.depth_;
  if (arena_.depth_ > 0) {
    arena_.top_ = saved_;
    return;
  }
  // Outermost frame gone: trim retired blocks, keep only the newest.
  arena_.top_ = 0;
  while (arena_.raw_.size() > 1) {
    delete[] arena_.raw_.front();
    arena_.raw_.erase(arena_.raw_.begin());
  }
}

}  // namespace simdcv::core
