// Dispatch layer for conversions: resolves KernelPath, routes each (src,dst)
// depth pair to the best kernel available on that path, and handles Mat
// geometry (row-by-row for non-continuous ROIs).
#include "core/convert.hpp"

#include "core/convert_detail.hpp"
#include "core/saturate.hpp"
#include "prof/prof.hpp"
#include "runtime/parallel.hpp"
#include "tune/tune.hpp"

namespace simdcv::core {

namespace {

// Identity-scale HAND kernel router. Returns true if a SIMD kernel ran.
bool runHandKernel(Depth sd, Depth dd, const void* src, void* dst,
                   std::size_t n, KernelPath path) {
  if (path == KernelPath::Avx2) {
    if (sd == Depth::F32 && dd == Depth::S16) {
      avx2::cvt32f16s(static_cast<const float*>(src), static_cast<std::int16_t*>(dst), n);
      return true;
    }
    if (sd == Depth::F32 && dd == Depth::U8) {
      avx2::cvt32f8u(static_cast<const float*>(src), static_cast<std::uint8_t*>(dst), n);
      return true;
    }
    if (sd == Depth::U8 && dd == Depth::F32) {
      avx2::cvt8u32f(static_cast<const std::uint8_t*>(src), static_cast<float*>(dst), n);
      return true;
    }
    // Pairs without a 256-bit kernel reuse the SSE2 HAND arm.
    path = KernelPath::Sse2;
  }
  if (path == KernelPath::Sse2) {
    if (sd == Depth::F32 && dd == Depth::S16) {
      sse2::cvt32f16s(static_cast<const float*>(src), static_cast<std::int16_t*>(dst), n);
      return true;
    }
    if (sd == Depth::F32 && dd == Depth::U8) {
      sse2::cvt32f8u(static_cast<const float*>(src), static_cast<std::uint8_t*>(dst), n);
      return true;
    }
    if (sd == Depth::U8 && dd == Depth::F32) {
      sse2::cvt8u32f(static_cast<const std::uint8_t*>(src), static_cast<float*>(dst), n);
      return true;
    }
    if (sd == Depth::S16 && dd == Depth::F32) {
      sse2::cvt16s32f(static_cast<const std::int16_t*>(src), static_cast<float*>(dst), n);
      return true;
    }
    if (sd == Depth::U8 && dd == Depth::S16) {
      sse2::cvt8u16s(static_cast<const std::uint8_t*>(src), static_cast<std::int16_t*>(dst), n);
      return true;
    }
    if (sd == Depth::S16 && dd == Depth::U8) {
      sse2::cvt16s8u(static_cast<const std::int16_t*>(src), static_cast<std::uint8_t*>(dst), n);
      return true;
    }
  } else if (path == KernelPath::Neon) {
    if (sd == Depth::F32 && dd == Depth::S16) {
      neon::cvt32f16s(static_cast<const float*>(src), static_cast<std::int16_t*>(dst), n);
      return true;
    }
    if (sd == Depth::F32 && dd == Depth::U8) {
      neon::cvt32f8u(static_cast<const float*>(src), static_cast<std::uint8_t*>(dst), n);
      return true;
    }
    if (sd == Depth::U8 && dd == Depth::F32) {
      neon::cvt8u32f(static_cast<const std::uint8_t*>(src), static_cast<float*>(dst), n);
      return true;
    }
    if (sd == Depth::S16 && dd == Depth::F32) {
      neon::cvt16s32f(static_cast<const std::int16_t*>(src), static_cast<float*>(dst), n);
      return true;
    }
    if (sd == Depth::U8 && dd == Depth::S16) {
      neon::cvt8u16s(static_cast<const std::uint8_t*>(src), static_cast<std::int16_t*>(dst), n);
      return true;
    }
    if (sd == Depth::S16 && dd == Depth::U8) {
      neon::cvt16s8u(static_cast<const std::int16_t*>(src), static_cast<std::uint8_t*>(dst), n);
      return true;
    }
  }
  return false;
}

}  // namespace

namespace detail {

void cvtRow(Depth sd, Depth dd, const void* src, void* dst, std::size_t n,
            double alpha, double beta, KernelPath path) {
  const bool identity = alpha == 1.0 && beta == 0.0;
  if (identity) {
    if (sd == dd) {
      std::memcpy(dst, src, n * depthSize(sd));
      return;
    }
    if (runHandKernel(sd, dd, src, dst, n, path)) return;
    if (path == KernelPath::ScalarNoVec) {
      novec::cvtRange(sd, dd, src, dst, n);
    } else {
      autovec::cvtRange(sd, dd, src, dst, n);
    }
    return;
  }
  if (path == KernelPath::ScalarNoVec) {
    novec::cvtRangeScaled(sd, dd, src, dst, n, alpha, beta);
  } else {
    autovec::cvtRangeScaled(sd, dd, src, dst, n, alpha, beta);
  }
}

}  // namespace detail

bool hasHandKernel(Depth sdepth, Depth ddepth, KernelPath path) {
  if (path == KernelPath::Avx2) {
    return (sdepth == Depth::F32 && (ddepth == Depth::S16 || ddepth == Depth::U8)) ||
           (sdepth == Depth::U8 && ddepth == Depth::F32);
  }
  if (path != KernelPath::Sse2 && path != KernelPath::Neon) return false;
  // Both HAND paths implement the same pair set.
  return (sdepth == Depth::F32 && (ddepth == Depth::S16 || ddepth == Depth::U8)) ||
         (sdepth == Depth::U8 && (ddepth == Depth::F32 || ddepth == Depth::S16)) ||
         (sdepth == Depth::S16 && (ddepth == Depth::F32 || ddepth == Depth::U8));
}

void convertTo(const Mat& src, Mat& dst, Depth ddepth, double alpha,
               double beta, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "convertTo: empty source");
  const std::uint64_t bytes = static_cast<std::uint64_t>(src.rows()) *
                              src.cols() * src.channels() *
                              (depthSize(src.depth()) + depthSize(ddepth));
  // Default-path requests resolve through the tuner when it is enabled;
  // concrete requests pass through untouched.
  tune::PathScope ps("convertTo", path, bytes);
  const KernelPath p = ps.path();
  SIMDCV_TRACE_SCOPE("convertTo", p, bytes);
  Mat out;
  // Writing in place (dst sharing storage with src) is safe only for
  // same-or-smaller element size; be conservative and detach when shared.
  if (dst.sharesStorageWith(src)) {
    out = Mat(src.rows(), src.cols(), PixelType(ddepth, src.channels()));
  } else {
    out = std::move(dst);
    out.create(src.rows(), src.cols(), PixelType(ddepth, src.channels()));
  }
  const std::size_t n = static_cast<std::size_t>(src.cols()) * src.channels();
  // Per-element conversion: bands are pure row partitions, so banded output
  // is bit-identical to the single-threaded walk.
  const bool flat = src.isContinuous() && out.isContinuous();
  const int heuristic = runtime::parallelThreshold(
      n * std::max(depthSize(src.depth()), depthSize(ddepth)), src.rows());
  tune::GrainScope gs("convertTo", p, bytes, src.rows(), heuristic);
  runtime::parallel_for(
      {0, src.rows()},
      [&](runtime::Range band) {
        if (flat) {
          detail::cvtRow(src.depth(), ddepth, src.ptr<std::uint8_t>(band.begin),
                 out.ptr<std::uint8_t>(band.begin),
                 n * static_cast<std::size_t>(band.size()), alpha, beta, p);
        } else {
          for (int r = band.begin; r < band.end; ++r)
            detail::cvtRow(src.depth(), ddepth, src.ptr<std::uint8_t>(r),
                   out.ptr<std::uint8_t>(r), n, alpha, beta, p);
        }
      },
      gs.grain());
  dst = std::move(out);
}

void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n,
               KernelPath path) {
  SIMDCV_TRACE_SCOPE("cvt32f16s", resolvePath(path),
                     n * (sizeof(float) + sizeof(std::int16_t)));
  switch (resolvePath(path)) {
    case KernelPath::Avx2: avx2::cvt32f16s(src, dst, n); break;
    case KernelPath::Sse2: sse2::cvt32f16s(src, dst, n); break;
    case KernelPath::Neon: neon::cvt32f16s(src, dst, n); break;
    case KernelPath::ScalarNoVec: novec::cvt32f16s(src, dst, n); break;
    default: autovec::cvt32f16s(src, dst, n); break;
  }
}

void cvt32f16sNeonPaper(const float* src, std::int16_t* dst, std::size_t n) {
  neon::cvt32f16sPaper(src, dst, n);
}

}  // namespace simdcv::core
