// Hand-written AVX2 conversion kernels — the ISA the paper's Section VI
// names as future work ("extending our experiments to include AVX").
// 256-bit registers double the per-instruction width of the SSE2 kernels;
// note the lane-crossing fix-up AVX2 packs need (vpackssdw operates within
// 128-bit lanes, so a vpermq reorder follows).
//
// This TU is compiled with -mavx2; callers reach it only after a runtime
// CPUID check (KernelPath::Avx2 resolves to Sse2 on older hardware).
#include "core/convert.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "core/saturate.hpp"

namespace simdcv::core::avx2 {

namespace {

// Same saturation fix-ups as the SSE2 arm: vcvtps2dq yields INT_MIN for NaN
// and both overflow directions; flip positive-overflow lanes to INT_MAX and
// zero NaN lanes so the pack saturates to the scalar/NEON contract.
inline __m256i cvtps2dqSat(__m256 v) {
  __m256i t = _mm256_cvtps_epi32(v);
  const __m256 too_big = _mm256_cmp_ps(v, _mm256_set1_ps(2147483648.0f), _CMP_GE_OQ);
  t = _mm256_xor_si256(t, _mm256_and_si256(_mm256_castps_si256(too_big),
                                           _mm256_set1_epi32(-1)));
  const __m256 is_nan = _mm256_cmp_ps(v, v, _CMP_UNORD_Q);
  return _mm256_andnot_si256(_mm256_castps_si256(is_nan), t);
}

}  // namespace

void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m256i i0 = cvtps2dqSat(_mm256_loadu_ps(src + x));
    const __m256i i1 = cvtps2dqSat(_mm256_loadu_ps(src + x + 8));
    // packs works per 128-bit lane: reorder 64-bit quarters afterwards.
    const __m256i packed = _mm256_packs_epi32(i0, i1);
    const __m256i fixed = _mm256_permute4x64_epi64(packed, _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + x), fixed);
  }
  for (; x < n; ++x) dst[x] = saturate_cast<std::int16_t>(src[x]);
}

void cvt32f8u(const float* src, std::uint8_t* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 32 <= n; x += 32) {
    const __m256i i0 = cvtps2dqSat(_mm256_loadu_ps(src + x));
    const __m256i i1 = cvtps2dqSat(_mm256_loadu_ps(src + x + 8));
    const __m256i i2 = cvtps2dqSat(_mm256_loadu_ps(src + x + 16));
    const __m256i i3 = cvtps2dqSat(_mm256_loadu_ps(src + x + 24));
    const __m256i s01 = _mm256_packs_epi32(i0, i1);   // lanes interleaved
    const __m256i s23 = _mm256_packs_epi32(i2, i3);
    const __m256i u = _mm256_packus_epi16(s01, s23);  // still lane-local
    // Undo both lane interleavings in one 32-bit-quarter permute.
    const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    const __m256i fixed = _mm256_permutevar8x32_epi32(u, order);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + x), fixed);
  }
  for (; x < n; ++x) dst[x] = saturate_cast<std::uint8_t>(src[x]);
}

void cvt8u32f(const std::uint8_t* src, float* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    const __m128i v = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + x));
    _mm256_storeu_ps(dst + x, _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(v)));
  }
  for (; x < n; ++x) dst[x] = static_cast<float>(src[x]);
}

}  // namespace simdcv::core::avx2

#else

namespace simdcv::core::avx2 {
void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n) {
  sse2::cvt32f16s(src, dst, n);
}
void cvt32f8u(const float* src, std::uint8_t* dst, std::size_t n) {
  sse2::cvt32f8u(src, dst, n);
}
void cvt8u32f(const std::uint8_t* src, float* dst, std::size_t n) {
  sse2::cvt8u32f(src, dst, n);
}
}  // namespace simdcv::core::avx2

#endif
