// Scalar conversion kernels, vectorizer-disabled build (ablation baseline:
// what "AUTO" would be if the compiler vectorized nothing, i.e. the paper's
// 2012-era worst case). Compiled with -fno-tree-vectorize -fno-tree-slp-vectorize.
#define SIMDCV_SCALAR_NS novec
#include "core/convert_scalar.inl"
