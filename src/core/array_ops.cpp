// Public array-op API: geometry checks, path resolution, row iteration.
#include "core/array_ops.hpp"

#include <algorithm>
#include <cmath>

#include "core/array_ops_detail.hpp"
#include "core/saturate.hpp"
#include "prof/prof.hpp"
#include "runtime/parallel.hpp"

namespace simdcv::core {

namespace {

using detail::BinOp;

// Band-parallel row walk for the element-wise ops below. Bands partition
// output rows, so results are bit-identical to the serial walk; reductions
// (sum/norm/minMax) deliberately stay serial to keep their accumulation
// order — and thus their float results — unchanged.
template <typename Fn>
void forEachBand(int rows, std::size_t bytesPerRow, const Fn& fn) {
  runtime::parallel_for({0, rows}, fn,
                        runtime::parallelThreshold(bytesPerRow, rows));
}

void checkPair(const Mat& a, const Mat& b, const char* what) {
  SIMDCV_REQUIRE(!a.empty() && !b.empty(), std::string(what) + ": empty input");
  SIMDCV_REQUIRE(a.size() == b.size() && a.type() == b.type(),
                 std::string(what) + ": geometry/type mismatch");
}

void binDispatch(BinOp op, Depth d, const void* a, const void* b, void* dst,
                 std::size_t n, KernelPath p) {
  switch (p) {
    case KernelPath::Sse2:
      if (detail::aops_sse2::binRange(op, d, a, b, dst, n)) return;
      break;
    case KernelPath::Neon:
      if (detail::aops_neon::binRange(op, d, a, b, dst, n)) return;
      break;
    case KernelPath::ScalarNoVec:
      detail::aops_novec::binRange(op, d, a, b, dst, n);
      return;
    default:
      break;
  }
  detail::aops_autovec::binRange(op, d, a, b, dst, n);
}

void binaryOp(BinOp op, const Mat& a, const Mat& b, Mat& dst, KernelPath path,
              const char* what) {
  checkPair(a, b, what);
  const KernelPath p = resolvePath(path);
  // `what` is always a literal at the call sites below, so the profiler can
  // keep the pointer (SIMDCV_TRACE_SCOPE's static-storage contract).
  SIMDCV_TRACE_SCOPE(what, p,
                     3 * static_cast<std::uint64_t>(a.rows()) * a.cols() *
                         a.channels() * depthSize(a.depth()));
  Mat out = (dst.sharesStorageWith(a) || dst.sharesStorageWith(b))
                ? Mat(a.rows(), a.cols(), a.type())
                : std::move(dst);
  out.create(a.rows(), a.cols(), a.type());
  const std::size_t n = static_cast<std::size_t>(a.cols()) * a.channels();
  const bool flat = a.isContinuous() && b.isContinuous() && out.isContinuous();
  forEachBand(a.rows(), 2 * n * depthSize(a.depth()), [&](runtime::Range band) {
    if (flat) {
      binDispatch(op, a.depth(), a.ptr<std::uint8_t>(band.begin),
                  b.ptr<std::uint8_t>(band.begin),
                  out.ptr<std::uint8_t>(band.begin),
                  n * static_cast<std::size_t>(band.size()), p);
    } else {
      for (int r = band.begin; r < band.end; ++r)
        binDispatch(op, a.depth(), a.ptr<std::uint8_t>(r),
                    b.ptr<std::uint8_t>(r), out.ptr<std::uint8_t>(r), n, p);
    }
  });
  dst = std::move(out);
}

}  // namespace

void add(const Mat& a, const Mat& b, Mat& dst, KernelPath path) {
  binaryOp(BinOp::Add, a, b, dst, path, "add");
}
void subtract(const Mat& a, const Mat& b, Mat& dst, KernelPath path) {
  binaryOp(BinOp::Sub, a, b, dst, path, "subtract");
}
void absdiff(const Mat& a, const Mat& b, Mat& dst, KernelPath path) {
  binaryOp(BinOp::AbsDiff, a, b, dst, path, "absdiff");
}
void min(const Mat& a, const Mat& b, Mat& dst, KernelPath path) {
  binaryOp(BinOp::Min, a, b, dst, path, "min");
}
void max(const Mat& a, const Mat& b, Mat& dst, KernelPath path) {
  binaryOp(BinOp::Max, a, b, dst, path, "max");
}
void bitwiseAnd(const Mat& a, const Mat& b, Mat& dst, KernelPath path) {
  SIMDCV_REQUIRE(!isFloatDepth(a.depth()), "bitwiseAnd: integer depths only");
  binaryOp(BinOp::And, a, b, dst, path, "bitwiseAnd");
}
void bitwiseOr(const Mat& a, const Mat& b, Mat& dst, KernelPath path) {
  SIMDCV_REQUIRE(!isFloatDepth(a.depth()), "bitwiseOr: integer depths only");
  binaryOp(BinOp::Or, a, b, dst, path, "bitwiseOr");
}
void bitwiseXor(const Mat& a, const Mat& b, Mat& dst, KernelPath path) {
  SIMDCV_REQUIRE(!isFloatDepth(a.depth()), "bitwiseXor: integer depths only");
  binaryOp(BinOp::Xor, a, b, dst, path, "bitwiseXor");
}

void bitwiseNot(const Mat& a, Mat& dst, KernelPath path) {
  SIMDCV_REQUIRE(!a.empty(), "bitwiseNot: empty input");
  SIMDCV_REQUIRE(!isFloatDepth(a.depth()), "bitwiseNot: integer depths only");
  const KernelPath p = resolvePath(path);
  SIMDCV_TRACE_SCOPE("bitwiseNot", p,
                     2 * static_cast<std::uint64_t>(a.rows()) * a.cols() *
                         a.channels() * depthSize(a.depth()));
  Mat out = std::move(dst);  // element-wise: in-place aliasing is safe
  out.create(a.rows(), a.cols(), a.type());
  const std::size_t n = static_cast<std::size_t>(a.cols()) * a.channels();
  auto run = p == KernelPath::ScalarNoVec ? &detail::aops_novec::notRange
                                          : &detail::aops_autovec::notRange;
  const bool flat = a.isContinuous() && out.isContinuous();
  forEachBand(a.rows(), n * depthSize(a.depth()), [&](runtime::Range band) {
    if (flat) {
      run(a.depth(), a.ptr<std::uint8_t>(band.begin),
          out.ptr<std::uint8_t>(band.begin),
          n * static_cast<std::size_t>(band.size()));
    } else {
      for (int r = band.begin; r < band.end; ++r)
        run(a.depth(), a.ptr<std::uint8_t>(r), out.ptr<std::uint8_t>(r), n);
    }
  });
  dst = std::move(out);
}

void scaleAdd(const Mat& a, double alpha, double beta, Mat& dst,
              KernelPath path) {
  SIMDCV_REQUIRE(!a.empty(), "scaleAdd: empty input");
  const KernelPath p = resolvePath(path);
  SIMDCV_TRACE_SCOPE("scaleAdd", p,
                     2 * static_cast<std::uint64_t>(a.rows()) * a.cols() *
                         a.channels() * depthSize(a.depth()));
  Mat out = std::move(dst);
  out.create(a.rows(), a.cols(), a.type());
  const std::size_t n = static_cast<std::size_t>(a.cols()) * a.channels();
  auto run = p == KernelPath::ScalarNoVec ? &detail::aops_novec::scaleRange
                                          : &detail::aops_autovec::scaleRange;
  const bool flat = a.isContinuous() && out.isContinuous();
  forEachBand(a.rows(), n * depthSize(a.depth()), [&](runtime::Range band) {
    if (flat) {
      run(a.depth(), a.ptr<std::uint8_t>(band.begin),
          out.ptr<std::uint8_t>(band.begin),
          n * static_cast<std::size_t>(band.size()), alpha, beta);
    } else {
      for (int r = band.begin; r < band.end; ++r)
        run(a.depth(), a.ptr<std::uint8_t>(r), out.ptr<std::uint8_t>(r), n,
            alpha, beta);
    }
  });
  dst = std::move(out);
}

void addWeighted(const Mat& a, double alpha, const Mat& b, double beta,
                 double gamma, Mat& dst, KernelPath path) {
  checkPair(a, b, "addWeighted");
  const KernelPath p = resolvePath(path);
  SIMDCV_TRACE_SCOPE("addWeighted", p,
                     3 * static_cast<std::uint64_t>(a.rows()) * a.cols() *
                         a.channels() * depthSize(a.depth()));
  Mat out = (dst.sharesStorageWith(a) || dst.sharesStorageWith(b))
                ? Mat(a.rows(), a.cols(), a.type())
                : std::move(dst);
  out.create(a.rows(), a.cols(), a.type());
  const std::size_t n = static_cast<std::size_t>(a.cols()) * a.channels();
  auto run = p == KernelPath::ScalarNoVec ? &detail::aops_novec::weightedRange
                                          : &detail::aops_autovec::weightedRange;
  const bool flat = a.isContinuous() && b.isContinuous() && out.isContinuous();
  forEachBand(a.rows(), 2 * n * depthSize(a.depth()), [&](runtime::Range band) {
    if (flat) {
      run(a.depth(), a.ptr<std::uint8_t>(band.begin),
          b.ptr<std::uint8_t>(band.begin), out.ptr<std::uint8_t>(band.begin),
          n * static_cast<std::size_t>(band.size()), alpha, beta, gamma);
    } else {
      for (int r = band.begin; r < band.end; ++r)
        run(a.depth(), a.ptr<std::uint8_t>(r), b.ptr<std::uint8_t>(r),
            out.ptr<std::uint8_t>(r), n, alpha, beta, gamma);
    }
  });
  dst = std::move(out);
}

double sum(const Mat& a, KernelPath path) {
  SIMDCV_REQUIRE(!a.empty(), "sum: empty input");
  const KernelPath p = resolvePath(path);
  SIMDCV_TRACE_SCOPE("sum", p,
                     static_cast<std::uint64_t>(a.rows()) * a.cols() *
                         a.channels() * depthSize(a.depth()));
  const std::size_t n = static_cast<std::size_t>(a.cols()) * a.channels();
  double total = 0;
  for (int r = 0; r < a.rows(); ++r) {
    const void* row = a.ptr<std::uint8_t>(r);
    double partial = 0;
    bool handled = false;
    if (p == KernelPath::Sse2)
      handled = detail::aops_sse2::sumRange(a.depth(), row, n, partial);
    else if (p == KernelPath::Neon)
      handled = detail::aops_neon::sumRange(a.depth(), row, n, partial);
    if (!handled) {
      partial = p == KernelPath::ScalarNoVec
                    ? detail::aops_novec::sumRange(a.depth(), row, n)
                    : detail::aops_autovec::sumRange(a.depth(), row, n);
    }
    total += partial;
  }
  return total;
}

double mean(const Mat& a, KernelPath path) {
  return sum(a, path) /
         (static_cast<double>(a.total()) * static_cast<double>(a.channels()));
}

std::size_t countNonZero(const Mat& a, KernelPath path) {
  SIMDCV_REQUIRE(!a.empty(), "countNonZero: empty input");
  const KernelPath p = resolvePath(path);
  SIMDCV_TRACE_SCOPE("countNonZero", p,
                     static_cast<std::uint64_t>(a.rows()) * a.cols() *
                         a.channels() * depthSize(a.depth()));
  const std::size_t n = static_cast<std::size_t>(a.cols()) * a.channels();
  std::size_t total = 0;
  for (int r = 0; r < a.rows(); ++r) {
    const void* row = a.ptr<std::uint8_t>(r);
    total += p == KernelPath::ScalarNoVec
                 ? detail::aops_novec::countNonZeroRange(a.depth(), row, n)
                 : detail::aops_autovec::countNonZeroRange(a.depth(), row, n);
  }
  return total;
}

namespace {

template <typename T>
void normRows(const Mat& a, NormType type, double& acc) {
  const int n = a.cols() * a.channels();
  for (int row = 0; row < a.rows(); ++row) {
    const T* p = a.ptr<T>(row);
    for (int c = 0; c < n; ++c) {
      const double v = std::abs(static_cast<double>(p[c]));
      switch (type) {
        case NormType::L1: acc += v; break;
        case NormType::L2: acc += v * v; break;
        case NormType::Inf: acc = std::max(acc, v); break;
      }
    }
  }
}

template <typename T>
void normDiffRows(const Mat& a, const Mat& b, NormType type, double& acc) {
  const int n = a.cols() * a.channels();
  for (int row = 0; row < a.rows(); ++row) {
    const T* pa = a.ptr<T>(row);
    const T* pb = b.ptr<T>(row);
    for (int c = 0; c < n; ++c) {
      const double v = std::abs(static_cast<double>(pa[c]) - static_cast<double>(pb[c]));
      switch (type) {
        case NormType::L1: acc += v; break;
        case NormType::L2: acc += v * v; break;
        case NormType::Inf: acc = std::max(acc, v); break;
      }
    }
  }
}

void normDispatch(const Mat& a, const Mat* b, NormType type, double& acc) {
  switch (a.depth()) {
    case Depth::U8: b ? normDiffRows<std::uint8_t>(a, *b, type, acc) : normRows<std::uint8_t>(a, type, acc); break;
    case Depth::S8: b ? normDiffRows<std::int8_t>(a, *b, type, acc) : normRows<std::int8_t>(a, type, acc); break;
    case Depth::U16: b ? normDiffRows<std::uint16_t>(a, *b, type, acc) : normRows<std::uint16_t>(a, type, acc); break;
    case Depth::S16: b ? normDiffRows<std::int16_t>(a, *b, type, acc) : normRows<std::int16_t>(a, type, acc); break;
    case Depth::S32: b ? normDiffRows<std::int32_t>(a, *b, type, acc) : normRows<std::int32_t>(a, type, acc); break;
    case Depth::F32: b ? normDiffRows<float>(a, *b, type, acc) : normRows<float>(a, type, acc); break;
    case Depth::F64: b ? normDiffRows<double>(a, *b, type, acc) : normRows<double>(a, type, acc); break;
  }
}

template <typename T>
void minMaxRows(const Mat& a, MinMaxResult& r) {
  for (int row = 0; row < a.rows(); ++row) {
    const T* p = a.ptr<T>(row);
    for (int col = 0; col < a.cols(); ++col) {
      const double v = static_cast<double>(p[col]);
      if (r.min_row < 0 || v < r.min_val) {
        r.min_val = v;
        r.min_row = row;
        r.min_col = col;
      }
      if (r.max_row < 0 || v > r.max_val) {
        r.max_val = v;
        r.max_row = row;
        r.max_col = col;
      }
    }
  }
}

}  // namespace

double norm(const Mat& a, NormType type, KernelPath /*path*/) {
  SIMDCV_REQUIRE(!a.empty(), "norm: empty input");
  SIMDCV_TRACE_SCOPE("norm", prof::kNoPath,
                     static_cast<std::uint64_t>(a.rows()) * a.cols() *
                         a.channels() * depthSize(a.depth()));
  double acc = 0;
  normDispatch(a, nullptr, type, acc);
  return type == NormType::L2 ? std::sqrt(acc) : acc;
}

double normDiff(const Mat& a, const Mat& b, NormType type, KernelPath /*path*/) {
  checkPair(a, b, "normDiff");
  double acc = 0;
  normDispatch(a, &b, type, acc);
  return type == NormType::L2 ? std::sqrt(acc) : acc;
}

MeanStdDev meanStdDev(const Mat& a, KernelPath path) {
  SIMDCV_REQUIRE(!a.empty(), "meanStdDev: empty input");
  const double n = static_cast<double>(a.total()) * a.channels();
  MeanStdDev r;
  r.mean = sum(a, path) / n;
  const double l2 = norm(a, NormType::L2, path);
  const double var = std::max(0.0, l2 * l2 / n - r.mean * r.mean);
  r.stddev = std::sqrt(var);
  return r;
}

MinMaxResult minMaxLoc(const Mat& a, KernelPath /*path*/) {
  SIMDCV_REQUIRE(!a.empty(), "minMaxLoc: empty input");
  SIMDCV_REQUIRE(a.channels() == 1, "minMaxLoc: single channel only");
  SIMDCV_TRACE_SCOPE("minMaxLoc", prof::kNoPath,
                     static_cast<std::uint64_t>(a.rows()) * a.cols() *
                         depthSize(a.depth()));
  MinMaxResult r;
  switch (a.depth()) {
    case Depth::U8: minMaxRows<std::uint8_t>(a, r); break;
    case Depth::S8: minMaxRows<std::int8_t>(a, r); break;
    case Depth::U16: minMaxRows<std::uint16_t>(a, r); break;
    case Depth::S16: minMaxRows<std::int16_t>(a, r); break;
    case Depth::S32: minMaxRows<std::int32_t>(a, r); break;
    case Depth::F32: minMaxRows<float>(a, r); break;
    case Depth::F64: minMaxRows<double>(a, r); break;
  }
  return r;
}

}  // namespace simdcv::core
