// saturate_cast: value conversion with clamping to the destination range,
// replicating OpenCV's semantics (including round-half-to-even for
// float -> integer, which matches SSE2 cvtps2dq / NEON vcvtnq behaviour and
// is what the paper's benchmark 1 measures).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace simdcv {

/// Round to nearest integer, ties to even — identical to OpenCV's cvRound on
/// SSE2 hardware (cvtsd2si under the default MXCSR rounding mode).
inline int cvRound(double value) noexcept {
  return static_cast<int>(std::lrint(value));
}
inline int cvRound(float value) noexcept {
  return static_cast<int>(std::lrintf(value));
}
inline int cvRound(int value) noexcept { return value; }

inline int cvFloor(double value) noexcept {
  return static_cast<int>(std::floor(value));
}
inline int cvCeil(double value) noexcept {
  return static_cast<int>(std::ceil(value));
}

/// Identity / widening default: used when the destination can represent all
/// source values (e.g. anything -> float/double, u8 -> s16, ...).
template <typename Dst, typename Src>
inline Dst saturate_cast(Src v) noexcept {
  return static_cast<Dst>(v);
}

// Forward declarations so the narrow float specializations below can route
// through the range-checked int32 conversion (defined at the end of this
// header). Calling cvRound on an unclamped float is undefined behaviour for
// values outside the int range (C11 F.10.6.5), and lrintf's out-of-range
// result differs across ISAs — every float -> integer specialization
// therefore converts via saturate_cast<int32_t>, which pins the contract to
// NaN -> 0 and clamp-at-the-rails. This is exactly what NEON's vcvtnq +
// saturating narrow computes, and what the SSE2/AVX2 HAND kernels produce
// after their overflow/NaN fix-ups.
template <> inline std::int32_t saturate_cast<std::int32_t, float>(float v) noexcept;
template <> inline std::int32_t saturate_cast<std::int32_t, double>(double v) noexcept;

// ---- to uint8_t ------------------------------------------------------------
template <> inline std::uint8_t saturate_cast<std::uint8_t, std::int8_t>(std::int8_t v) noexcept {
  return static_cast<std::uint8_t>(v < 0 ? 0 : v);
}
template <> inline std::uint8_t saturate_cast<std::uint8_t, std::uint16_t>(std::uint16_t v) noexcept {
  return static_cast<std::uint8_t>(v > 255 ? 255 : v);
}
template <> inline std::uint8_t saturate_cast<std::uint8_t, std::int16_t>(std::int16_t v) noexcept {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}
template <> inline std::uint8_t saturate_cast<std::uint8_t, std::int32_t>(std::int32_t v) noexcept {
  return static_cast<std::uint8_t>(static_cast<std::uint32_t>(v) <= 255u ? v : (v > 0 ? 255 : 0));
}
template <> inline std::uint8_t saturate_cast<std::uint8_t, std::uint32_t>(std::uint32_t v) noexcept {
  return static_cast<std::uint8_t>(v > 255u ? 255u : v);
}
template <> inline std::uint8_t saturate_cast<std::uint8_t, float>(float v) noexcept {
  return saturate_cast<std::uint8_t>(saturate_cast<std::int32_t>(v));
}
template <> inline std::uint8_t saturate_cast<std::uint8_t, double>(double v) noexcept {
  return saturate_cast<std::uint8_t>(saturate_cast<std::int32_t>(v));
}

// ---- to int8_t -------------------------------------------------------------
template <> inline std::int8_t saturate_cast<std::int8_t, std::uint8_t>(std::uint8_t v) noexcept {
  return static_cast<std::int8_t>(v > 127 ? 127 : v);
}
template <> inline std::int8_t saturate_cast<std::int8_t, std::uint16_t>(std::uint16_t v) noexcept {
  return static_cast<std::int8_t>(v > 127 ? 127 : v);
}
template <> inline std::int8_t saturate_cast<std::int8_t, std::int16_t>(std::int16_t v) noexcept {
  return static_cast<std::int8_t>(v < -128 ? -128 : (v > 127 ? 127 : v));
}
template <> inline std::int8_t saturate_cast<std::int8_t, std::int32_t>(std::int32_t v) noexcept {
  return static_cast<std::int8_t>(
      static_cast<std::uint32_t>(v - (-128)) <= 255u ? v : (v > 0 ? 127 : -128));
}
template <> inline std::int8_t saturate_cast<std::int8_t, std::uint32_t>(std::uint32_t v) noexcept {
  return static_cast<std::int8_t>(v > 127u ? 127 : v);
}
template <> inline std::int8_t saturate_cast<std::int8_t, float>(float v) noexcept {
  return saturate_cast<std::int8_t>(saturate_cast<std::int32_t>(v));
}
template <> inline std::int8_t saturate_cast<std::int8_t, double>(double v) noexcept {
  return saturate_cast<std::int8_t>(saturate_cast<std::int32_t>(v));
}

// ---- to uint16_t -----------------------------------------------------------
template <> inline std::uint16_t saturate_cast<std::uint16_t, std::int8_t>(std::int8_t v) noexcept {
  return static_cast<std::uint16_t>(v < 0 ? 0 : v);
}
template <> inline std::uint16_t saturate_cast<std::uint16_t, std::int16_t>(std::int16_t v) noexcept {
  return static_cast<std::uint16_t>(v < 0 ? 0 : v);
}
template <> inline std::uint16_t saturate_cast<std::uint16_t, std::int32_t>(std::int32_t v) noexcept {
  return static_cast<std::uint16_t>(
      static_cast<std::uint32_t>(v) <= 65535u ? v : (v > 0 ? 65535 : 0));
}
template <> inline std::uint16_t saturate_cast<std::uint16_t, std::uint32_t>(std::uint32_t v) noexcept {
  return static_cast<std::uint16_t>(v > 65535u ? 65535u : v);
}
template <> inline std::uint16_t saturate_cast<std::uint16_t, float>(float v) noexcept {
  return saturate_cast<std::uint16_t>(saturate_cast<std::int32_t>(v));
}
template <> inline std::uint16_t saturate_cast<std::uint16_t, double>(double v) noexcept {
  return saturate_cast<std::uint16_t>(saturate_cast<std::int32_t>(v));
}

// ---- to int16_t ------------------------------------------------------------
template <> inline std::int16_t saturate_cast<std::int16_t, std::uint16_t>(std::uint16_t v) noexcept {
  return static_cast<std::int16_t>(v > 32767 ? 32767 : v);
}
template <> inline std::int16_t saturate_cast<std::int16_t, std::int32_t>(std::int32_t v) noexcept {
  // The paper's saturate_cast<short>(int): branchless range test then clamp.
  return static_cast<std::int16_t>(
      static_cast<std::uint32_t>(v - (-32768)) <= 65535u ? v
                                                         : (v > 0 ? 32767 : -32768));
}
template <> inline std::int16_t saturate_cast<std::int16_t, std::uint32_t>(std::uint32_t v) noexcept {
  return static_cast<std::int16_t>(v > 32767u ? 32767 : v);
}
template <> inline std::int16_t saturate_cast<std::int16_t, float>(float v) noexcept {
  // Benchmark 1's scalar reference: range-checked round then integer clamp
  // (NaN -> 0, out-of-range clamps — bit-exact with the HAND kernels).
  return saturate_cast<std::int16_t>(saturate_cast<std::int32_t>(v));
}
template <> inline std::int16_t saturate_cast<std::int16_t, double>(double v) noexcept {
  return saturate_cast<std::int16_t>(saturate_cast<std::int32_t>(v));
}

// ---- to int32_t ------------------------------------------------------------
template <> inline std::int32_t saturate_cast<std::int32_t, std::uint32_t>(std::uint32_t v) noexcept {
  return v > 0x7fffffffu ? 0x7fffffff : static_cast<std::int32_t>(v);
}
template <> inline std::int32_t saturate_cast<std::int32_t, float>(float v) noexcept {
  // Match SSE2 cvtps2dq / lrintf: out-of-range yields INT_MIN ("integer
  // indefinite") on x86; we clamp explicitly for portability.
  if (v >= 2147483647.0f) return 2147483647;
  if (v <= -2147483648.0f) return std::numeric_limits<std::int32_t>::min();
  if (std::isnan(v)) return 0;
  return cvRound(v);
}
template <> inline std::int32_t saturate_cast<std::int32_t, double>(double v) noexcept {
  if (v >= 2147483647.0) return 2147483647;
  if (v <= -2147483648.0) return std::numeric_limits<std::int32_t>::min();
  if (std::isnan(v)) return 0;
  return cvRound(v);
}

}  // namespace simdcv
