// Hand-written NEON conversion kernels (the paper's ARM "HAND" arm).
// Compiles against the genuine <arm_neon.h> on ARM and against
// simd/neon_emu.hpp elsewhere — the kernel source is identical either way.
//
// cvt32f16s follows the paper's Section III-A listing except that the
// float->int conversion uses the round-to-nearest vcvtnq_s32_f32 so the
// result is bit-exact with the scalar reference; the paper's literal
// truncating version is preserved as cvt32f16sPaper for the ablation.
#include <limits>

#include "core/convert.hpp"
#include "core/saturate.hpp"
#include "simd/neon_compat.hpp"

namespace simdcv::core::neon {

#if !SIMDCV_NEON_NATIVE
using ::vcvtnq_s32_f32;  // emulation provides the ARMv8 intrinsic
#endif

void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    float32x4_t src128 = vld1q_f32(src + x);
    int32x4_t src_int128 = vcvtnq_s32_f32(src128);
    int16x4_t src0_int64 = vqmovn_s32(src_int128);

    src128 = vld1q_f32(src + x + 4);
    src_int128 = vcvtnq_s32_f32(src128);
    int16x4_t src1_int64 = vqmovn_s32(src_int128);

    int16x8_t res_int128 = vcombine_s16(src0_int64, src1_int64);
    vst1q_s16(dst + x, res_int128);
  }
  for (; x < n; ++x) dst[x] = saturate_cast<std::int16_t>(src[x]);
}

void cvt32f16sPaper(const float* src, std::int16_t* dst, std::size_t n) {
  // Verbatim structure from the paper (truncating vcvtq_s32_f32).
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    float32x4_t src128 = vld1q_f32(src + x);
    int32x4_t src_int128 = vcvtq_s32_f32(src128);
    int16x4_t src0_int64 = vqmovn_s32(src_int128);

    src128 = vld1q_f32(src + x + 4);
    src_int128 = vcvtq_s32_f32(src128);
    int16x4_t src1_int64 = vqmovn_s32(src_int128);

    int16x8_t res_int128 = vcombine_s16(src0_int64, src1_int64);
    vst1q_s16(dst + x, res_int128);
  }
  for (; x < n; ++x) {
    // Tail matches the vector body: truncate toward zero, saturate, NaN -> 0.
    const float v = src[x];
    std::int32_t i;
    if (v != v) {
      i = 0;
    } else if (v >= 2147483648.0f) {
      i = 2147483647;
    } else if (v <= -2147483648.0f) {
      i = std::numeric_limits<std::int32_t>::min();
    } else {
      i = static_cast<std::int32_t>(v);
    }
    dst[x] = saturate_cast<std::int16_t>(i);
  }
}

void cvt32f8u(const float* src, std::uint8_t* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    const int32x4_t i0 = vcvtnq_s32_f32(vld1q_f32(src + x));
    const int32x4_t i1 = vcvtnq_s32_f32(vld1q_f32(src + x + 4));
    const int16x8_t s = vcombine_s16(vqmovn_s32(i0), vqmovn_s32(i1));
    vst1_u8(dst + x, vqmovun_s16(s));
  }
  for (; x < n; ++x) dst[x] = saturate_cast<std::uint8_t>(src[x]);
}

void cvt8u32f(const std::uint8_t* src, float* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    const uint16x8_t w = vmovl_u8(vld1_u8(src + x));
    const uint32x4_t lo = vmovl_u16(vget_low_u16(w));
    const uint32x4_t hi = vmovl_u16(vget_high_u16(w));
    vst1q_f32(dst + x, vcvtq_f32_u32(lo));
    vst1q_f32(dst + x + 4, vcvtq_f32_u32(hi));
  }
  for (; x < n; ++x) dst[x] = static_cast<float>(src[x]);
}

void cvt16s32f(const std::int16_t* src, float* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    const int16x8_t v = vld1q_s16(src + x);
    vst1q_f32(dst + x, vcvtq_f32_s32(vmovl_s16(vget_low_s16(v))));
    vst1q_f32(dst + x + 4, vcvtq_f32_s32(vmovl_s16(vget_high_s16(v))));
  }
  for (; x < n; ++x) dst[x] = static_cast<float>(src[x]);
}

void cvt8u16s(const std::uint8_t* src, std::int16_t* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    const uint16x8_t w = vmovl_u8(vld1_u8(src + x));
    vst1q_s16(dst + x, vreinterpretq_s16_u16(w));
  }
  for (; x < n; ++x) dst[x] = static_cast<std::int16_t>(src[x]);
}

void cvt16s8u(const std::int16_t* src, std::uint8_t* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    vst1_u8(dst + x, vqmovun_s16(vld1q_s16(src + x)));
  }
  for (; x < n; ++x) dst[x] = saturate_cast<std::uint8_t>(src[x]);
}

}  // namespace simdcv::core::neon
