// Array-op scalar kernels, vectorizer-disabled ablation build.
#define SIMDCV_AOPS_NS aops_novec
#include "core/array_ops_scalar.inl"
