// Mat: the dense 2-D image/array container at the heart of the library,
// modelled on cv::Mat. Reference-counted storage, row stride ("step") in
// bytes, zero-copy ROI views, and typed row/element accessors.
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "core/types.hpp"

namespace simdcv {

class Mat {
 public:
  /// Empty matrix (rows == cols == 0, no storage).
  Mat() = default;

  /// Allocate a rows x cols matrix of the given pixel type.
  Mat(int rows, int cols, PixelType type);
  Mat(Size size, PixelType type) : Mat(size.height, size.width, type) {}

  /// Wrap caller-owned memory without copying (no ownership taken).
  /// `step` is the byte distance between successive rows.
  Mat(int rows, int cols, PixelType type, void* data, std::size_t step);

  Mat(const Mat&) = default;             // shallow copy (shares storage)
  Mat& operator=(const Mat&) = default;  // shallow copy (shares storage)
  Mat(Mat&&) noexcept = default;
  Mat& operator=(Mat&&) noexcept = default;

  /// Reallocate if geometry/type differ; keeps storage if they match.
  void create(int rows, int cols, PixelType type);
  void create(Size size, PixelType type) { create(size.height, size.width, type); }

  /// Deep copy.
  Mat clone() const;
  /// Deep copy into `dst` (reallocating as needed).
  void copyTo(Mat& dst) const;

  /// Zero-copy view of the given rectangle.
  Mat roi(const Rect& r) const;
  /// Zero-copy view of rows [r0, r1).
  Mat rowRange(int r0, int r1) const;

  /// Fill every element (all channels) with `value` converted to the
  /// element depth via saturate_cast.
  void setTo(double value);
  void setZero();

  // -- geometry ---------------------------------------------------------
  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }
  Size size() const noexcept { return {cols_, rows_}; }
  PixelType type() const noexcept { return type_; }
  Depth depth() const noexcept { return type_.depth; }
  int channels() const noexcept { return type_.channels; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }
  std::size_t step() const noexcept { return step_; }
  std::size_t elemSize() const noexcept { return type_.elemSize(); }
  std::size_t elemSize1() const noexcept { return type_.elemSize1(); }
  /// Number of pixels.
  std::size_t total() const noexcept {
    return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  }
  /// True if rows are contiguous in memory (step == cols * elemSize).
  bool isContinuous() const noexcept {
    return rows_ <= 1 || step_ == static_cast<std::size_t>(cols_) * elemSize();
  }
  /// True if this Mat shares storage with `other`.
  bool sharesStorageWith(const Mat& other) const noexcept {
    return buf_ && buf_ == other.buf_;
  }

  // -- raw access -------------------------------------------------------
  std::uint8_t* data() noexcept { return data_; }
  const std::uint8_t* data() const noexcept { return data_; }

  template <typename T>
  T* ptr(int row = 0) {
    return reinterpret_cast<T*>(data_ + static_cast<std::size_t>(row) * step_);
  }
  template <typename T>
  const T* ptr(int row = 0) const {
    return reinterpret_cast<const T*>(data_ + static_cast<std::size_t>(row) * step_);
  }

  /// Element access; `col` indexes elements (channel-interleaved), i.e. for a
  /// C3 image use at<T>(r, c*3 + ch).
  template <typename T>
  T& at(int row, int col) {
    return ptr<T>(row)[col];
  }
  template <typename T>
  const T& at(int row, int col) const {
    return ptr<T>(row)[col];
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  PixelType type_{};
  std::size_t step_ = 0;
  std::shared_ptr<std::uint8_t[]> buf_;  // owning buffer (null for wrapped)
  std::uint8_t* data_ = nullptr;         // start of row 0 (may point into ROI)
};

/// Process-wide count of Mat buffer allocations (create() reallocation
/// events). Steady-state pipelines that reuse scratch correctly keep this
/// flat across repeated calls — the invariant the edge-scratch tests assert.
std::uint64_t matAllocationCount() noexcept;

/// Factory helpers.
Mat zeros(int rows, int cols, PixelType type);
Mat full(int rows, int cols, PixelType type, double value);

/// Deep element-wise comparison utilities (exact for integer depths,
/// tolerance for float depths). Returns the number of mismatching elements.
std::size_t countMismatches(const Mat& a, const Mat& b, double tol = 0.0);
/// Maximum absolute element difference (NaN-propagating for float inputs).
double maxAbsDiff(const Mat& a, const Mat& b);

}  // namespace simdcv
