// Internal row-level conversion entry point, shared between convertTo's Mat
// dispatch (convert.cpp) and the pipeline-graph fused executor (graph/).
// Not part of the public API — the umbrella header does not include this
// file. The contract mirrors convertTo exactly: identity scales route to the
// HAND kernel for the (src,dst) pair when the path has one (AVX2 falls back
// to the SSE2 arm for missing pairs), otherwise to the novec/autovec range
// kernels; scaled conversions always take the scalar range kernels. The op
// is element-wise, so any row partition of a Mat conversion through this
// function is bit-identical to the whole-image call.
#pragma once

#include <cstddef>

#include "core/types.hpp"
#include "simd/features.hpp"

namespace simdcv::core::detail {

/// dst[i] = saturate_cast<dd>(src[i] * alpha + beta) over one flat row.
/// `path` must be resolved (not Default/Auto-with-tuning); convertTo resolves
/// before calling.
void cvtRow(Depth sd, Depth dd, const void* src, void* dst, std::size_t n,
            double alpha, double beta, KernelPath path);

}  // namespace simdcv::core::detail
