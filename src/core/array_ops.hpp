// Element-wise array arithmetic and reductions over Mat — the slice of
// OpenCV's Core module the imgproc pipelines sit on: add/subtract/absdiff
// (saturating), scalar scaling, bitwise ops, min/max, and the reductions
// sum / mean / minMaxLoc / countNonZero.
//
// Supported depths: U8, S16, F32 (the depths the paper's pipelines use).
// All binary ops require matching geometry and type; all have scalar (AUTO),
// SSE2 and NEON paths with a bit-exact contract.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::core {

/// dst = saturate(a + b), element-wise.
void add(const Mat& a, const Mat& b, Mat& dst,
         KernelPath path = KernelPath::Default);
/// dst = saturate(a - b), element-wise.
void subtract(const Mat& a, const Mat& b, Mat& dst,
              KernelPath path = KernelPath::Default);
/// dst = |a - b| with saturation, element-wise.
void absdiff(const Mat& a, const Mat& b, Mat& dst,
             KernelPath path = KernelPath::Default);
/// dst = min(a, b) / max(a, b), element-wise.
void min(const Mat& a, const Mat& b, Mat& dst,
         KernelPath path = KernelPath::Default);
void max(const Mat& a, const Mat& b, Mat& dst,
         KernelPath path = KernelPath::Default);
/// Bitwise ops (integer depths only).
void bitwiseAnd(const Mat& a, const Mat& b, Mat& dst,
                KernelPath path = KernelPath::Default);
void bitwiseOr(const Mat& a, const Mat& b, Mat& dst,
               KernelPath path = KernelPath::Default);
void bitwiseXor(const Mat& a, const Mat& b, Mat& dst,
                KernelPath path = KernelPath::Default);
void bitwiseNot(const Mat& a, Mat& dst, KernelPath path = KernelPath::Default);

/// dst = saturate(a * alpha + beta), element-wise (any supported depth).
void scaleAdd(const Mat& a, double alpha, double beta, Mat& dst,
              KernelPath path = KernelPath::Default);

/// Weighted blend: dst = saturate(a*alpha + b*beta + gamma).
void addWeighted(const Mat& a, double alpha, const Mat& b, double beta,
                 double gamma, Mat& dst, KernelPath path = KernelPath::Default);

// ---- reductions -------------------------------------------------------------
/// Sum of all elements (channels summed together).
double sum(const Mat& a, KernelPath path = KernelPath::Default);
/// Arithmetic mean of all elements.
double mean(const Mat& a, KernelPath path = KernelPath::Default);
/// Number of non-zero elements.
std::size_t countNonZero(const Mat& a, KernelPath path = KernelPath::Default);

/// Norms over a single Mat (channels pooled): L1 = sum|x|, L2 = sqrt(sum x^2),
/// Linf = max|x|.
enum class NormType : std::uint8_t { L1, L2, Inf };
double norm(const Mat& a, NormType type = NormType::L2,
            KernelPath path = KernelPath::Default);
/// Norm of the difference a - b (exact in double; no saturation).
double normDiff(const Mat& a, const Mat& b, NormType type = NormType::L2,
                KernelPath path = KernelPath::Default);

/// Mean and standard deviation (population) of all elements.
struct MeanStdDev {
  double mean = 0;
  double stddev = 0;
};
MeanStdDev meanStdDev(const Mat& a, KernelPath path = KernelPath::Default);

struct MinMaxResult {
  double min_val = 0;
  double max_val = 0;
  int min_row = -1, min_col = -1;
  int max_row = -1, max_col = -1;
};
/// Extrema with their first (row-major) locations. Single channel only.
MinMaxResult minMaxLoc(const Mat& a, KernelPath path = KernelPath::Default);

}  // namespace simdcv::core
