// Scalar conversion kernels, textually shared between two translation units:
//   convert_scalar_autovec.cpp  (-O3, vectorizer on  -> the paper's "AUTO")
//   convert_scalar_novec.cpp    (-O3 -fno-tree-vectorize -> ablation baseline)
// The including TU defines SIMDCV_SCALAR_NS to name the target namespace.
//
// These loops are written the way OpenCV's unoptimized template code is
// written — a straight element loop through saturate_cast — which is exactly
// the code shape the paper hands to the auto-vectorizer.

#include "core/convert.hpp"
#include "core/saturate.hpp"

namespace simdcv::core::SIMDCV_SCALAR_NS {

void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n) {
  for (std::size_t x = 0; x < n; ++x) dst[x] = saturate_cast<std::int16_t>(src[x]);
}

namespace {

template <typename S, typename D>
void cvtLoop(const S* src, D* dst, std::size_t n) {
  for (std::size_t x = 0; x < n; ++x) dst[x] = saturate_cast<D>(src[x]);
}

template <typename S, typename D>
void cvtLoopScaled(const S* src, D* dst, std::size_t n, double alpha,
                   double beta) {
  for (std::size_t x = 0; x < n; ++x)
    dst[x] = saturate_cast<D>(static_cast<double>(src[x]) * alpha + beta);
}

template <typename S>
void cvtFromTyped(Depth dd, const S* src, void* dst, std::size_t n) {
  switch (dd) {
    case Depth::U8: cvtLoop(src, static_cast<std::uint8_t*>(dst), n); break;
    case Depth::S8: cvtLoop(src, static_cast<std::int8_t*>(dst), n); break;
    case Depth::U16: cvtLoop(src, static_cast<std::uint16_t*>(dst), n); break;
    case Depth::S16: cvtLoop(src, static_cast<std::int16_t*>(dst), n); break;
    case Depth::S32: cvtLoop(src, static_cast<std::int32_t*>(dst), n); break;
    case Depth::F32: cvtLoop(src, static_cast<float*>(dst), n); break;
    case Depth::F64: cvtLoop(src, static_cast<double*>(dst), n); break;
  }
}

template <typename S>
void cvtFromTypedScaled(Depth dd, const S* src, void* dst, std::size_t n,
                        double alpha, double beta) {
  switch (dd) {
    case Depth::U8: cvtLoopScaled(src, static_cast<std::uint8_t*>(dst), n, alpha, beta); break;
    case Depth::S8: cvtLoopScaled(src, static_cast<std::int8_t*>(dst), n, alpha, beta); break;
    case Depth::U16: cvtLoopScaled(src, static_cast<std::uint16_t*>(dst), n, alpha, beta); break;
    case Depth::S16: cvtLoopScaled(src, static_cast<std::int16_t*>(dst), n, alpha, beta); break;
    case Depth::S32: cvtLoopScaled(src, static_cast<std::int32_t*>(dst), n, alpha, beta); break;
    case Depth::F32: cvtLoopScaled(src, static_cast<float*>(dst), n, alpha, beta); break;
    case Depth::F64: cvtLoopScaled(src, static_cast<double*>(dst), n, alpha, beta); break;
  }
}

}  // namespace

void cvtRange(Depth sd, Depth dd, const void* src, void* dst, std::size_t n) {
  switch (sd) {
    case Depth::U8: cvtFromTyped(dd, static_cast<const std::uint8_t*>(src), dst, n); break;
    case Depth::S8: cvtFromTyped(dd, static_cast<const std::int8_t*>(src), dst, n); break;
    case Depth::U16: cvtFromTyped(dd, static_cast<const std::uint16_t*>(src), dst, n); break;
    case Depth::S16: cvtFromTyped(dd, static_cast<const std::int16_t*>(src), dst, n); break;
    case Depth::S32: cvtFromTyped(dd, static_cast<const std::int32_t*>(src), dst, n); break;
    case Depth::F32: cvtFromTyped(dd, static_cast<const float*>(src), dst, n); break;
    case Depth::F64: cvtFromTyped(dd, static_cast<const double*>(src), dst, n); break;
  }
}

void cvtRangeScaled(Depth sd, Depth dd, const void* src, void* dst,
                    std::size_t n, double alpha, double beta) {
  switch (sd) {
    case Depth::U8: cvtFromTypedScaled(dd, static_cast<const std::uint8_t*>(src), dst, n, alpha, beta); break;
    case Depth::S8: cvtFromTypedScaled(dd, static_cast<const std::int8_t*>(src), dst, n, alpha, beta); break;
    case Depth::U16: cvtFromTypedScaled(dd, static_cast<const std::uint16_t*>(src), dst, n, alpha, beta); break;
    case Depth::S16: cvtFromTypedScaled(dd, static_cast<const std::int16_t*>(src), dst, n, alpha, beta); break;
    case Depth::S32: cvtFromTypedScaled(dd, static_cast<const std::int32_t*>(src), dst, n, alpha, beta); break;
    case Depth::F32: cvtFromTypedScaled(dd, static_cast<const float*>(src), dst, n, alpha, beta); break;
    case Depth::F64: cvtFromTypedScaled(dd, static_cast<const double*>(src), dst, n, alpha, beta); break;
  }
}

}  // namespace simdcv::core::SIMDCV_SCALAR_NS
