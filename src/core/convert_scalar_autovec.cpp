// Scalar conversion kernels, auto-vectorized build (the paper's "AUTO" arm).
// Compiled at -O3 with gcc's tree vectorizer enabled (see core/CMakeLists.txt).
#define SIMDCV_SCALAR_NS autovec
#include "core/convert_scalar.inl"
