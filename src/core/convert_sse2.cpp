// Hand-written SSE2 conversion kernels (the paper's Intel "HAND" arm).
// The 32F->16S kernel is the exact structure printed in the paper's Section
// III-A: two 4-float loads, two cvtps->epi32, one packs, one store per eight
// pixels.
#include "core/convert.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

#include "core/saturate.hpp"

namespace simdcv::core::sse2 {

namespace {

// Round-to-nearest-even float -> int32 with the library's saturation
// contract. cvtps2dq alone returns INT_MIN ("integer indefinite") for NaN
// and for BOTH overflow directions, so a +2^31-or-larger lane would pack to
// -32768 instead of +32767 and a NaN lane to -32768 instead of 0. Two
// fix-ups restore the scalar/NEON semantics: xor flips INT_MIN -> INT_MAX on
// positive-overflow lanes, andnot zeroes NaN lanes.
inline __m128i cvtps2dqSat(__m128 v) {
  __m128i t = _mm_cvtps_epi32(v);
  const __m128 too_big = _mm_cmpge_ps(v, _mm_set1_ps(2147483648.0f));
  t = _mm_xor_si128(t, _mm_and_si128(_mm_castps_si128(too_big), _mm_set1_epi32(-1)));
  const __m128 is_nan = _mm_cmpunord_ps(v, v);
  return _mm_andnot_si128(_mm_castps_si128(is_nan), t);
}

}  // namespace

void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    __m128 src128 = _mm_loadu_ps(src + x);
    __m128i src_int128 = cvtps2dqSat(src128);  // round to nearest even

    src128 = _mm_loadu_ps(src + x + 4);
    __m128i src1_int128 = cvtps2dqSat(src128);

    src1_int128 = _mm_packs_epi32(src_int128, src1_int128);  // saturating pack
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + x), src1_int128);
  }
  for (; x < n; ++x) dst[x] = saturate_cast<std::int16_t>(src[x]);
}

void cvt32f8u(const float* src, std::uint8_t* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m128i i0 = cvtps2dqSat(_mm_loadu_ps(src + x));
    const __m128i i1 = cvtps2dqSat(_mm_loadu_ps(src + x + 4));
    const __m128i i2 = cvtps2dqSat(_mm_loadu_ps(src + x + 8));
    const __m128i i3 = cvtps2dqSat(_mm_loadu_ps(src + x + 12));
    const __m128i s01 = _mm_packs_epi32(i0, i1);
    const __m128i s23 = _mm_packs_epi32(i2, i3);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + x),
                     _mm_packus_epi16(s01, s23));
  }
  for (; x < n; ++x) dst[x] = saturate_cast<std::uint8_t>(src[x]);
}

void cvt8u32f(const std::uint8_t* src, float* dst, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  std::size_t x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + x));
    const __m128i lo16 = _mm_unpacklo_epi8(v, zero);
    const __m128i hi16 = _mm_unpackhi_epi8(v, zero);
    _mm_storeu_ps(dst + x, _mm_cvtepi32_ps(_mm_unpacklo_epi16(lo16, zero)));
    _mm_storeu_ps(dst + x + 4, _mm_cvtepi32_ps(_mm_unpackhi_epi16(lo16, zero)));
    _mm_storeu_ps(dst + x + 8, _mm_cvtepi32_ps(_mm_unpacklo_epi16(hi16, zero)));
    _mm_storeu_ps(dst + x + 12, _mm_cvtepi32_ps(_mm_unpackhi_epi16(hi16, zero)));
  }
  for (; x < n; ++x) dst[x] = static_cast<float>(src[x]);
}

void cvt16s32f(const std::int16_t* src, float* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + x));
    // Sign-extend 16 -> 32 by interleaving with self then arithmetic shift.
    const __m128i lo = _mm_srai_epi32(_mm_unpacklo_epi16(v, v), 16);
    const __m128i hi = _mm_srai_epi32(_mm_unpackhi_epi16(v, v), 16);
    _mm_storeu_ps(dst + x, _mm_cvtepi32_ps(lo));
    _mm_storeu_ps(dst + x + 4, _mm_cvtepi32_ps(hi));
  }
  for (; x < n; ++x) dst[x] = static_cast<float>(src[x]);
}

void cvt8u16s(const std::uint8_t* src, std::int16_t* dst, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  std::size_t x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + x));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + x),
                     _mm_unpacklo_epi8(v, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + x + 8),
                     _mm_unpackhi_epi8(v, zero));
  }
  for (; x < n; ++x) dst[x] = static_cast<std::int16_t>(src[x]);
}

void cvt16s8u(const std::int16_t* src, std::uint8_t* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + x));
    const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + x + 8));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + x),
                     _mm_packus_epi16(v0, v1));
  }
  for (; x < n; ++x) dst[x] = saturate_cast<std::uint8_t>(src[x]);
}

}  // namespace simdcv::core::sse2

#else  // !__SSE2__: keep the symbols, delegate to the scalar path.

namespace simdcv::core::sse2 {
void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n) {
  autovec::cvt32f16s(src, dst, n);
}
void cvt32f8u(const float* src, std::uint8_t* dst, std::size_t n) {
  autovec::cvtRange(Depth::F32, Depth::U8, src, dst, n);
}
void cvt8u32f(const std::uint8_t* src, float* dst, std::size_t n) {
  autovec::cvtRange(Depth::U8, Depth::F32, src, dst, n);
}
void cvt16s32f(const std::int16_t* src, float* dst, std::size_t n) {
  autovec::cvtRange(Depth::S16, Depth::F32, src, dst, n);
}
void cvt8u16s(const std::uint8_t* src, std::int16_t* dst, std::size_t n) {
  autovec::cvtRange(Depth::U8, Depth::S16, src, dst, n);
}
void cvt16s8u(const std::int16_t* src, std::uint8_t* dst, std::size_t n) {
  autovec::cvtRange(Depth::S16, Depth::U8, src, dst, n);
}
}  // namespace simdcv::core::sse2

#endif
