// Array-op scalar kernels, auto-vectorized build (paper "AUTO" arm).
#define SIMDCV_AOPS_NS aops_autovec
#include "core/array_ops_scalar.inl"
