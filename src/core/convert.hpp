// Element type conversion with saturation — the paper's benchmark 1 surface.
//
// convertTo() is the public Mat-level API (mirrors cv::Mat::convertTo).
// The flat-array kernels underneath are exposed too because the benchmark
// harness times them directly, one per KernelPath.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::core {

/// Convert `src` to depth `ddepth`, element-wise:
///   dst = saturate_cast<ddepth>(src * alpha + beta)
/// Channel count is preserved. `dst` is reallocated as needed.
/// HAND paths (Sse2/Neon) are used when available for the (src,dst) depth
/// pair and alpha == 1, beta == 0; otherwise the scalar path runs.
void convertTo(const Mat& src, Mat& dst, Depth ddepth, double alpha = 1.0,
               double beta = 0.0, KernelPath path = KernelPath::Default);

/// The paper's float -> short saturating conversion over a flat range.
/// All paths round half to even and saturate to [-32768, 32767].
void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n,
               KernelPath path = KernelPath::Default);

/// The NEON kernel exactly as printed in the paper (ARMv7 vcvtq_s32_f32,
/// which truncates toward zero instead of rounding). Kept for the
/// instruction-count ablation; NOT bit-exact with the scalar reference for
/// non-integral inputs.
void cvt32f16sNeonPaper(const float* src, std::int16_t* dst, std::size_t n);

/// Returns true if a HAND kernel exists for this depth pair on `path`
/// (identity scale). Used by benchmarks to label results honestly.
bool hasHandKernel(Depth sdepth, Depth ddepth, KernelPath path);

// -- per-path scalar entry points (exposed for the ablation benches) -------
namespace autovec {
void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n);
void cvtRange(Depth sd, Depth dd, const void* src, void* dst, std::size_t n);
void cvtRangeScaled(Depth sd, Depth dd, const void* src, void* dst,
                    std::size_t n, double alpha, double beta);
}  // namespace autovec
namespace novec {
void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n);
void cvtRange(Depth sd, Depth dd, const void* src, void* dst, std::size_t n);
void cvtRangeScaled(Depth sd, Depth dd, const void* src, void* dst,
                    std::size_t n, double alpha, double beta);
}  // namespace novec

// -- per-path SIMD entry points ---------------------------------------------
namespace sse2 {
void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n);
void cvt32f8u(const float* src, std::uint8_t* dst, std::size_t n);
void cvt8u32f(const std::uint8_t* src, float* dst, std::size_t n);
void cvt16s32f(const std::int16_t* src, float* dst, std::size_t n);
void cvt8u16s(const std::uint8_t* src, std::int16_t* dst, std::size_t n);
void cvt16s8u(const std::int16_t* src, std::uint8_t* dst, std::size_t n);
}  // namespace sse2
namespace avx2 {
void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n);
void cvt32f8u(const float* src, std::uint8_t* dst, std::size_t n);
void cvt8u32f(const std::uint8_t* src, float* dst, std::size_t n);
}  // namespace avx2
namespace neon {
void cvt32f16s(const float* src, std::int16_t* dst, std::size_t n);
void cvt32f16sPaper(const float* src, std::int16_t* dst, std::size_t n);
void cvt32f8u(const float* src, std::uint8_t* dst, std::size_t n);
void cvt8u32f(const std::uint8_t* src, float* dst, std::size_t n);
void cvt16s32f(const std::int16_t* src, float* dst, std::size_t n);
void cvt8u16s(const std::uint8_t* src, std::int16_t* dst, std::size_t n);
void cvt16s8u(const std::int16_t* src, std::uint8_t* dst, std::size_t n);
}  // namespace neon

}  // namespace simdcv::core
