// Per-thread scratch arena: a growable bump allocator for kernel-internal
// row buffers, so hot pipelines (the fused edge detector, notably) perform
// zero heap allocations in steady state. Usage:
//
//   core::ScratchFrame frame;                    // scopes the allocations
//   float* row = frame.allocN<float>(width);     // 64-byte aligned
//
// Frames nest with stack discipline (a nested kernel restores the bump
// pointer on exit); the backing block is retained across calls, so after the
// first call at a given size the arena never touches the heap again —
// `refills()` exposes that invariant to tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace simdcv::core {

class ScratchArena {
 public:
  /// The calling thread's arena (one per thread, created on first use).
  static ScratchArena& forThread();

  std::size_t capacity() const noexcept { return cap_; }
  std::size_t used() const noexcept { return top_; }
  /// Number of times the backing block was (re)allocated. Stable across
  /// repeated same-shaped workloads once warm — the no-allocation-growth
  /// invariant the tests assert.
  std::uint64_t refills() const noexcept { return refills_; }

  /// Drop the backing block (memory returned to the heap; next use refills).
  /// Must not be called while a ScratchFrame is live on this thread.
  void release() noexcept;

  ~ScratchArena();
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

 private:
  friend class ScratchFrame;

  void* alloc(std::size_t bytes, std::size_t align);
  void grow(std::size_t need);

  std::uint8_t* block_ = nullptr;  // aligned base of the current block
  std::size_t cap_ = 0;
  std::size_t top_ = 0;
  std::uint64_t refills_ = 0;
  int depth_ = 0;
  // Raw (unaligned) allocations. Back = the current block; blocks outgrown
  // mid-frame stay alive (pointers into them remain valid) until every frame
  // has unwound, then frame exit at depth 0 trims to the newest block.
  std::vector<std::uint8_t*> raw_;
};

/// RAII scope over the thread's arena: allocations made through the frame are
/// reclaimed (bump pointer restored) when it goes out of scope.
class ScratchFrame {
 public:
  ScratchFrame() : arena_(ScratchArena::forThread()), saved_(arena_.top_) {
    ++arena_.depth_;
  }
  ~ScratchFrame();
  ScratchFrame(const ScratchFrame&) = delete;
  ScratchFrame& operator=(const ScratchFrame&) = delete;

  /// 64-byte-aligned raw bytes, valid until this frame is destroyed.
  void* alloc(std::size_t bytes, std::size_t align = 64) {
    return arena_.alloc(bytes, align);
  }
  template <typename T>
  T* allocN(std::size_t n) {
    return static_cast<T*>(alloc(n * sizeof(T)));
  }

 private:
  ScratchArena& arena_;
  std::size_t saved_;
};

}  // namespace simdcv::core
