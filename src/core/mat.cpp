#include "core/mat.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "core/saturate.hpp"

namespace simdcv {

namespace {

// Rows are padded so each row starts 64-byte aligned: SIMD paths benefit and
// it mirrors real image pipelines where step != width*elemSize is common.
constexpr std::size_t kRowAlign = 64;

std::size_t alignedStep(int cols, PixelType type) {
  const std::size_t raw = static_cast<std::size_t>(cols) * type.elemSize();
  return (raw + kRowAlign - 1) / kRowAlign * kRowAlign;
}

std::atomic<std::uint64_t> g_matAllocs{0};

}  // namespace

std::uint64_t matAllocationCount() noexcept {
  return g_matAllocs.load(std::memory_order_relaxed);
}

const char* toString(Depth d) noexcept {
  switch (d) {
    case Depth::U8: return "u8";
    case Depth::S8: return "s8";
    case Depth::U16: return "u16";
    case Depth::S16: return "s16";
    case Depth::S32: return "s32";
    case Depth::F32: return "f32";
    case Depth::F64: return "f64";
  }
  return "?";
}

std::string toString(PixelType t) {
  return std::string(toString(t.depth)) + "c" + std::to_string(t.channels);
}

Mat::Mat(int rows, int cols, PixelType type) { create(rows, cols, type); }

Mat::Mat(int rows, int cols, PixelType type, void* data, std::size_t step)
    : rows_(rows),
      cols_(cols),
      type_(type),
      step_(step),
      data_(static_cast<std::uint8_t*>(data)) {
  SIMDCV_REQUIRE(rows >= 0 && cols >= 0, "negative Mat dimensions");
  SIMDCV_REQUIRE(step >= static_cast<std::size_t>(cols) * type.elemSize(),
                 "step smaller than a row");
}

void Mat::create(int rows, int cols, PixelType type) {
  SIMDCV_REQUIRE(rows >= 0 && cols >= 0, "negative Mat dimensions");
  SIMDCV_REQUIRE(type.channels >= 1 && type.channels <= 4,
                 "channel count must be in [1,4]");
  if (rows == rows_ && cols == cols_ && type == type_ && buf_ != nullptr) {
    return;  // geometry unchanged: keep storage
  }
  rows_ = rows;
  cols_ = cols;
  type_ = type;
  step_ = alignedStep(cols, type);
  const std::size_t bytes = step_ * static_cast<std::size_t>(rows) + kRowAlign;
  if (bytes > 0) {
    // Over-allocate and align the base pointer to kRowAlign.
    g_matAllocs.fetch_add(1, std::memory_order_relaxed);
    buf_ = std::shared_ptr<std::uint8_t[]>(new std::uint8_t[bytes]());
    auto addr = reinterpret_cast<std::uintptr_t>(buf_.get());
    const std::uintptr_t aligned = (addr + kRowAlign - 1) / kRowAlign * kRowAlign;
    data_ = buf_.get() + (aligned - addr);
  } else {
    buf_.reset();
    data_ = nullptr;
  }
}

Mat Mat::clone() const {
  Mat out;
  copyTo(out);
  return out;
}

void Mat::copyTo(Mat& dst) const {
  dst.create(rows_, cols_, type_);
  const std::size_t rowBytes = static_cast<std::size_t>(cols_) * elemSize();
  for (int r = 0; r < rows_; ++r) {
    std::memcpy(dst.ptr<std::uint8_t>(r), ptr<const std::uint8_t>(r), rowBytes);
  }
}

Mat Mat::roi(const Rect& r) const {
  SIMDCV_REQUIRE(r.x >= 0 && r.y >= 0 && r.width >= 0 && r.height >= 0 &&
                     r.x + r.width <= cols_ && r.y + r.height <= rows_,
                 "ROI out of bounds");
  Mat view(*this);
  view.rows_ = r.height;
  view.cols_ = r.width;
  view.data_ = data_ + static_cast<std::size_t>(r.y) * step_ +
               static_cast<std::size_t>(r.x) * elemSize();
  return view;
}

Mat Mat::rowRange(int r0, int r1) const {
  SIMDCV_REQUIRE(0 <= r0 && r0 <= r1 && r1 <= rows_, "row range out of bounds");
  return roi(Rect(0, r0, cols_, r1 - r0));
}

namespace {

template <typename T>
void fillRows(Mat& m, double value) {
  const T v = saturate_cast<T>(value);
  const int n = m.cols() * m.channels();
  for (int r = 0; r < m.rows(); ++r) {
    T* p = m.ptr<T>(r);
    std::fill(p, p + n, v);
  }
}

}  // namespace

void Mat::setTo(double value) {
  switch (type_.depth) {
    case Depth::U8: fillRows<std::uint8_t>(*this, value); break;
    case Depth::S8: fillRows<std::int8_t>(*this, value); break;
    case Depth::U16: fillRows<std::uint16_t>(*this, value); break;
    case Depth::S16: fillRows<std::int16_t>(*this, value); break;
    case Depth::S32: fillRows<std::int32_t>(*this, value); break;
    case Depth::F32: fillRows<float>(*this, value); break;
    case Depth::F64: fillRows<double>(*this, value); break;
  }
}

void Mat::setZero() {
  const std::size_t rowBytes = static_cast<std::size_t>(cols_) * elemSize();
  for (int r = 0; r < rows_; ++r) std::memset(ptr<std::uint8_t>(r), 0, rowBytes);
}

Mat zeros(int rows, int cols, PixelType type) {
  Mat m(rows, cols, type);
  m.setZero();
  return m;
}

Mat full(int rows, int cols, PixelType type, double value) {
  Mat m(rows, cols, type);
  m.setTo(value);
  return m;
}

namespace {

template <typename T>
void diffStats(const Mat& a, const Mat& b, double tol, std::size_t& mism,
               double& maxd) {
  const int n = a.cols() * a.channels();
  for (int r = 0; r < a.rows(); ++r) {
    const T* pa = a.ptr<T>(r);
    const T* pb = b.ptr<T>(r);
    for (int c = 0; c < n; ++c) {
      const double da = static_cast<double>(pa[c]);
      const double db = static_cast<double>(pb[c]);
      if (da == db) continue;  // exact match; covers +/-Inf, where da-db is NaN
      const double d = std::abs(da - db);
      if (std::isnan(da) != std::isnan(db)) {
        ++mism;
        maxd = std::numeric_limits<double>::quiet_NaN();
      } else if (!(d <= tol)) {  // NaN-aware: NaN diff counts as mismatch
        if (!(std::isnan(da) && std::isnan(db))) {
          ++mism;
          maxd = std::max(maxd, d);
        }
      } else {
        maxd = std::max(maxd, d);
      }
    }
  }
}

void diffDispatch(const Mat& a, const Mat& b, double tol, std::size_t& mism,
                  double& maxd) {
  SIMDCV_REQUIRE(a.size() == b.size() && a.type() == b.type(),
                 "compare: geometry/type mismatch");
  switch (a.depth()) {
    case Depth::U8: diffStats<std::uint8_t>(a, b, tol, mism, maxd); break;
    case Depth::S8: diffStats<std::int8_t>(a, b, tol, mism, maxd); break;
    case Depth::U16: diffStats<std::uint16_t>(a, b, tol, mism, maxd); break;
    case Depth::S16: diffStats<std::int16_t>(a, b, tol, mism, maxd); break;
    case Depth::S32: diffStats<std::int32_t>(a, b, tol, mism, maxd); break;
    case Depth::F32: diffStats<float>(a, b, tol, mism, maxd); break;
    case Depth::F64: diffStats<double>(a, b, tol, mism, maxd); break;
  }
}

}  // namespace

std::size_t countMismatches(const Mat& a, const Mat& b, double tol) {
  std::size_t mism = 0;
  double maxd = 0;
  diffDispatch(a, b, tol, mism, maxd);
  return mism;
}

double maxAbsDiff(const Mat& a, const Mat& b) {
  std::size_t mism = 0;
  double maxd = 0;
  diffDispatch(a, b, std::numeric_limits<double>::infinity(), mism, maxd);
  return maxd;
}

}  // namespace simdcv
