// Hand-written NEON array-op kernels (vqaddq/vqsubq/vabdq families; the u8
// sum uses the pairwise-widening vpadalq ladder).
#include "core/array_ops_detail.hpp"
#include "simd/neon_compat.hpp"

namespace simdcv::core::detail::aops_neon {

namespace {

bool binU8(BinOp op, const std::uint8_t* a, const std::uint8_t* b,
           std::uint8_t* d, std::size_t n, std::size_t& done) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t va = vld1q_u8(a + i), vb = vld1q_u8(b + i);
    uint8x16_t r;
    switch (op) {
      case BinOp::Add: r = vqaddq_u8(va, vb); break;
      case BinOp::Sub: r = vqsubq_u8(va, vb); break;
      case BinOp::AbsDiff: r = vabdq_u8(va, vb); break;
      case BinOp::Min: r = vminq_u8(va, vb); break;
      case BinOp::Max: r = vmaxq_u8(va, vb); break;
      default: return false;
    }
    vst1q_u8(d + i, r);
  }
  done = i;
  return true;
}

bool binS16(BinOp op, const std::int16_t* a, const std::int16_t* b,
            std::int16_t* d, std::size_t n, std::size_t& done) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t va = vld1q_s16(a + i), vb = vld1q_s16(b + i);
    int16x8_t r;
    switch (op) {
      case BinOp::Add: r = vqaddq_s16(va, vb); break;
      case BinOp::Sub: r = vqsubq_s16(va, vb); break;
      case BinOp::AbsDiff:
        // saturating |a-b|: qsub both ways, take the max (one is zero).
        r = vmaxq_s16(vqsubq_s16(va, vb), vqsubq_s16(vb, va));
        break;
      case BinOp::Min: r = vminq_s16(va, vb); break;
      case BinOp::Max: r = vmaxq_s16(va, vb); break;
      default: return false;
    }
    vst1q_s16(d + i, r);
  }
  done = i;
  return true;
}

bool binF32(BinOp op, const float* a, const float* b, float* d, std::size_t n,
            std::size_t& done) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t va = vld1q_f32(a + i), vb = vld1q_f32(b + i);
    float32x4_t r;
    switch (op) {
      case BinOp::Add: r = vaddq_f32(va, vb); break;
      case BinOp::Sub: r = vsubq_f32(va, vb); break;
      case BinOp::AbsDiff: r = vabsq_f32(vsubq_f32(va, vb)); break;
      case BinOp::Min: {
        // Match the scalar a<b?a:b (second operand on NaN): select instead
        // of vminq (whose NaN handling differs between implementations).
        const uint32x4_t lt = vcltq_f32(va, vb);
        r = vbslq_f32(lt, va, vb);
        break;
      }
      case BinOp::Max: {
        const uint32x4_t gt = vcgtq_f32(va, vb);
        r = vbslq_f32(gt, va, vb);
        break;
      }
      default: return false;
    }
    vst1q_f32(d + i, r);
  }
  done = i;
  return true;
}

bool binBytes(BinOp op, const std::uint8_t* a, const std::uint8_t* b,
              std::uint8_t* d, std::size_t bytes, std::size_t& done) {
  std::size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    const uint8x16_t va = vld1q_u8(a + i), vb = vld1q_u8(b + i);
    uint8x16_t r;
    switch (op) {
      case BinOp::And: r = vandq_u8(va, vb); break;
      case BinOp::Or: r = vorrq_u8(va, vb); break;
      case BinOp::Xor: r = veorq_u8(va, vb); break;
      default: return false;
    }
    vst1q_u8(d + i, r);
  }
  done = i;
  return true;
}

}  // namespace

bool binRange(BinOp op, Depth depth, const void* a, const void* b, void* dst,
              std::size_t n) {
  std::size_t done = 0;
  bool handled = false;
  if (op == BinOp::And || op == BinOp::Or || op == BinOp::Xor) {
    const std::size_t bytes = n * depthSize(depth);
    handled = binBytes(op, static_cast<const std::uint8_t*>(a),
                       static_cast<const std::uint8_t*>(b),
                       static_cast<std::uint8_t*>(dst), bytes, done);
    if (handled && done < bytes) {
      aops_autovec::binRange(op, Depth::U8,
                             static_cast<const std::uint8_t*>(a) + done,
                             static_cast<const std::uint8_t*>(b) + done,
                             static_cast<std::uint8_t*>(dst) + done,
                             bytes - done);
    }
    return handled;
  }
  switch (depth) {
    case Depth::U8:
      handled = binU8(op, static_cast<const std::uint8_t*>(a),
                      static_cast<const std::uint8_t*>(b),
                      static_cast<std::uint8_t*>(dst), n, done);
      break;
    case Depth::S16:
      handled = binS16(op, static_cast<const std::int16_t*>(a),
                       static_cast<const std::int16_t*>(b),
                       static_cast<std::int16_t*>(dst), n, done);
      break;
    case Depth::F32:
      handled = binF32(op, static_cast<const float*>(a),
                       static_cast<const float*>(b), static_cast<float*>(dst),
                       n, done);
      break;
    default:
      return false;
  }
  if (handled && done < n) {
    const std::size_t esz = depthSize(depth);
    aops_autovec::binRange(op, depth,
                           static_cast<const std::uint8_t*>(a) + done * esz,
                           static_cast<const std::uint8_t*>(b) + done * esz,
                           static_cast<std::uint8_t*>(dst) + done * esz,
                           n - done);
  }
  return handled;
}

bool sumRange(Depth d, const void* a, std::size_t n, double& out) {
  if (d != Depth::U8) return false;
  const auto* p = static_cast<const std::uint8_t*>(a);
  std::uint64_t acc = 0;
  std::size_t i = 0;
  // Widen u8 -> u16 pairwise, accumulate into u32 lanes, drain every 64
  // blocks (64 * 16 * 255 * 2 < 2^32, no overflow).
  while (i + 16 <= n) {
    uint32x4_t acc32 = vdupq_n_u32(0);
    int blocks = 0;
    for (; i + 16 <= n && blocks < 64; i += 16, ++blocks) {
      const uint16x8_t w = vpaddlq_u8(vld1q_u8(p + i));
      acc32 = vpadalq_u16(acc32, w);
    }
    acc += static_cast<std::uint64_t>(vgetq_lane_u32(acc32, 0)) +
           vgetq_lane_u32(acc32, 1) + vgetq_lane_u32(acc32, 2) +
           vgetq_lane_u32(acc32, 3);
  }
  for (; i < n; ++i) acc += p[i];
  out = static_cast<double>(acc);
  return true;
}

}  // namespace simdcv::core::detail::aops_neon
