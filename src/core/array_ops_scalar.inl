// Scalar array-op kernels, shared between the autovec / novec TUs.
// SIMDCV_AOPS_NS selects the namespace (aops_autovec / aops_novec).

#include <cmath>

#include "core/array_ops_detail.hpp"
#include "core/saturate.hpp"

namespace simdcv::core::detail::SIMDCV_AOPS_NS {

namespace {

template <typename T>
void binLoop(BinOp op, const T* a, const T* b, T* d, std::size_t n) {
  // Wide type with saturate_cast specializations: int covers u8/s16 sums
  // and differences exactly; f32 promotes to double.
  using W = std::conditional_t<std::is_floating_point_v<T>, double, int>;
  switch (op) {
    case BinOp::Add:
      for (std::size_t i = 0; i < n; ++i)
        d[i] = saturate_cast<T>(static_cast<W>(a[i]) + static_cast<W>(b[i]));
      break;
    case BinOp::Sub:
      for (std::size_t i = 0; i < n; ++i)
        d[i] = saturate_cast<T>(static_cast<W>(a[i]) - static_cast<W>(b[i]));
      break;
    case BinOp::AbsDiff:
      for (std::size_t i = 0; i < n; ++i) {
        const W x = static_cast<W>(a[i]) - static_cast<W>(b[i]);
        d[i] = saturate_cast<T>(x < 0 ? -x : x);
      }
      break;
    case BinOp::Min:
      for (std::size_t i = 0; i < n; ++i) d[i] = a[i] < b[i] ? a[i] : b[i];
      break;
    case BinOp::Max:
      for (std::size_t i = 0; i < n; ++i) d[i] = a[i] > b[i] ? a[i] : b[i];
      break;
    default:
      break;  // bitwise handled at byte level by the caller
  }
}

void bitwiseLoop(BinOp op, const std::uint8_t* a, const std::uint8_t* b,
                 std::uint8_t* d, std::size_t bytes) {
  switch (op) {
    case BinOp::And:
      for (std::size_t i = 0; i < bytes; ++i) d[i] = a[i] & b[i];
      break;
    case BinOp::Or:
      for (std::size_t i = 0; i < bytes; ++i) d[i] = a[i] | b[i];
      break;
    case BinOp::Xor:
      for (std::size_t i = 0; i < bytes; ++i) d[i] = a[i] ^ b[i];
      break;
    default:
      break;
  }
}

}  // namespace

void binRange(BinOp op, Depth depth, const void* a, const void* b, void* dst,
              std::size_t n) {
  if (op == BinOp::And || op == BinOp::Or || op == BinOp::Xor) {
    bitwiseLoop(op, static_cast<const std::uint8_t*>(a),
                static_cast<const std::uint8_t*>(b),
                static_cast<std::uint8_t*>(dst), n * depthSize(depth));
    return;
  }
  switch (depth) {
    case Depth::U8:
      binLoop(op, static_cast<const std::uint8_t*>(a),
              static_cast<const std::uint8_t*>(b),
              static_cast<std::uint8_t*>(dst), n);
      break;
    case Depth::S16:
      binLoop(op, static_cast<const std::int16_t*>(a),
              static_cast<const std::int16_t*>(b),
              static_cast<std::int16_t*>(dst), n);
      break;
    case Depth::F32:
      binLoop(op, static_cast<const float*>(a), static_cast<const float*>(b),
              static_cast<float*>(dst), n);
      break;
    default:
      throw Error("array op: unsupported depth");
  }
}

void notRange(Depth d, const void* a, void* dst, std::size_t n) {
  const std::size_t bytes = n * depthSize(d);
  const auto* s = static_cast<const std::uint8_t*>(a);
  auto* o = static_cast<std::uint8_t*>(dst);
  for (std::size_t i = 0; i < bytes; ++i) o[i] = static_cast<std::uint8_t>(~s[i]);
}

namespace {

template <typename T>
void scaleLoop(const T* a, T* d, std::size_t n, double alpha, double beta) {
  for (std::size_t i = 0; i < n; ++i)
    d[i] = saturate_cast<T>(static_cast<double>(a[i]) * alpha + beta);
}

template <typename T>
void weightedLoop(const T* a, const T* b, T* d, std::size_t n, double alpha,
                  double beta, double gamma) {
  for (std::size_t i = 0; i < n; ++i)
    d[i] = saturate_cast<T>(static_cast<double>(a[i]) * alpha +
                            static_cast<double>(b[i]) * beta + gamma);
}

}  // namespace

void scaleRange(Depth d, const void* a, void* dst, std::size_t n, double alpha,
                double beta) {
  switch (d) {
    case Depth::U8:
      scaleLoop(static_cast<const std::uint8_t*>(a),
                static_cast<std::uint8_t*>(dst), n, alpha, beta);
      break;
    case Depth::S16:
      scaleLoop(static_cast<const std::int16_t*>(a),
                static_cast<std::int16_t*>(dst), n, alpha, beta);
      break;
    case Depth::F32:
      scaleLoop(static_cast<const float*>(a), static_cast<float*>(dst), n,
                alpha, beta);
      break;
    default:
      throw Error("scaleAdd: unsupported depth");
  }
}

void weightedRange(Depth d, const void* a, const void* b, void* dst,
                   std::size_t n, double alpha, double beta, double gamma) {
  switch (d) {
    case Depth::U8:
      weightedLoop(static_cast<const std::uint8_t*>(a),
                   static_cast<const std::uint8_t*>(b),
                   static_cast<std::uint8_t*>(dst), n, alpha, beta, gamma);
      break;
    case Depth::S16:
      weightedLoop(static_cast<const std::int16_t*>(a),
                   static_cast<const std::int16_t*>(b),
                   static_cast<std::int16_t*>(dst), n, alpha, beta, gamma);
      break;
    case Depth::F32:
      weightedLoop(static_cast<const float*>(a), static_cast<const float*>(b),
                   static_cast<float*>(dst), n, alpha, beta, gamma);
      break;
    default:
      throw Error("addWeighted: unsupported depth");
  }
}

namespace {

template <typename T>
double sumLoop(const T* a, std::size_t n) {
  double s = 0;
  for (std::size_t i = 0; i < n; ++i) s += static_cast<double>(a[i]);
  return s;
}

template <typename T>
std::size_t nzLoop(const T* a, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += (a[i] != T{0});
  return c;
}

}  // namespace

double sumRange(Depth d, const void* a, std::size_t n) {
  switch (d) {
    case Depth::U8: return sumLoop(static_cast<const std::uint8_t*>(a), n);
    case Depth::S16: return sumLoop(static_cast<const std::int16_t*>(a), n);
    case Depth::F32: return sumLoop(static_cast<const float*>(a), n);
    default: throw Error("sum: unsupported depth");
  }
}

std::size_t countNonZeroRange(Depth d, const void* a, std::size_t n) {
  switch (d) {
    case Depth::U8: return nzLoop(static_cast<const std::uint8_t*>(a), n);
    case Depth::S16: return nzLoop(static_cast<const std::int16_t*>(a), n);
    case Depth::F32: return nzLoop(static_cast<const float*>(a), n);
    default: throw Error("countNonZero: unsupported depth");
  }
}

}  // namespace simdcv::core::detail::SIMDCV_AOPS_NS
