// Kernel registry for the differential checker: every family maps a
// generated CaseSpec + KernelPath to an output Mat. Parameters beyond the
// Mat contents (thresholds, scale factors, kernel sizes...) are drawn from
// the case seed so a reproducer line regenerates them exactly.
#include <algorithm>
#include <cmath>

#include "check/check.hpp"
#include "core/array_ops.hpp"
#include "core/convert.hpp"
#include "graph/graph.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/morphology.hpp"
#include "imgproc/threshold.hpp"
#include "tune/tune.hpp"

namespace simdcv::check {

namespace {

// Distinct salts per input stream so multi-input kernels get independent data.
constexpr std::uint64_t kSrcA = 1, kSrcB = 2;

int channelsFor(const CaseSpec& c) { return (c.variant & 4) ? 3 : 1; }

// ---- convertTo -------------------------------------------------------------

Mat runConvert(const CaseSpec& c, KernelPath p, Depth sd, Depth dd, bool scaled) {
  Mat src = genMat(c, kSrcA, PixelType(sd, channelsFor(c)));
  double alpha = 1.0, beta = 0.0;
  if (scaled) {
    Rng r(c.seed ^ 0xa1fa6e7a11ull);
    alpha = r.real(-4.0, 4.0);
    beta = r.real(-300.0, 300.0);
  }
  Mat dst;
  core::convertTo(src, dst, dd, alpha, beta, p);
  return dst;
}

void addConvert(std::vector<KernelCheck>& reg, const char* name, Depth sd,
                Depth dd, bool scaled) {
  reg.push_back({name,
                 [sd, dd, scaled](const CaseSpec& c, KernelPath p) {
                   return runConvert(c, p, sd, dd, scaled);
                 },
                 0.0});
}

// ---- threshold -------------------------------------------------------------

Mat runThreshold(const CaseSpec& c, KernelPath p, imgproc::ThresholdType t) {
  static const Depth depths[] = {Depth::U8, Depth::S16, Depth::F32};
  const Depth d = depths[c.variant % 3];
  Mat src = genMat(c, kSrcA, PixelType(d, channelsFor(c)));
  Rng r(c.seed ^ 0x7445e5401dull);
  double thresh = 0, maxval = 0;
  switch (d) {
    case Depth::U8:
      // Deliberately overshoot [0,255] to exercise the degenerate
      // fill/copy collapse in the dispatcher.
      thresh = r.real(-40.0, 300.0);
      maxval = r.real(-40.0, 300.0);
      break;
    case Depth::S16:
      thresh = r.real(-40000.0, 40000.0);
      maxval = r.real(-40000.0, 40000.0);
      break;
    default: {
      static const std::vector<double> pivots = {0.0, 0.5, -0.5, 255.5,
                                                 32767.5, -32768.5, 1e30};
      thresh = r.chance(30) ? r.pick(pivots) : r.real(-1e4, 1e4);
      maxval = r.real(-1e4, 1e4);
      break;
    }
  }
  Mat dst;
  imgproc::threshold(src, dst, thresh, maxval, t, p);
  return dst;
}

void addThreshold(std::vector<KernelCheck>& reg, const char* name,
                  imgproc::ThresholdType t) {
  reg.push_back({name,
                 [t](const CaseSpec& c, KernelPath p) {
                   return runThreshold(c, p, t);
                 },
                 0.0});
}

// ---- element-wise array ops ------------------------------------------------

using BinFn = void (*)(const Mat&, const Mat&, Mat&, KernelPath);

Mat runBinOp(const CaseSpec& c, KernelPath p, BinFn fn, bool intOnly) {
  static const Depth allDepths[] = {Depth::U8, Depth::S16, Depth::F32};
  static const Depth intDepths[] = {Depth::U8, Depth::S16};
  const Depth d = intOnly ? intDepths[c.variant % 2] : allDepths[c.variant % 3];
  const PixelType type(d, channelsFor(c));
  Mat a = genMat(c, kSrcA, type);
  Mat b = genMat(c, kSrcB, type);
  Mat dst;
  fn(a, b, dst, p);
  return dst;
}

void addBinOp(std::vector<KernelCheck>& reg, const char* name, BinFn fn,
              bool intOnly) {
  reg.push_back({name,
                 [fn, intOnly](const CaseSpec& c, KernelPath p) {
                   return runBinOp(c, p, fn, intOnly);
                 },
                 0.0});
}

Mat runScaleAdd(const CaseSpec& c, KernelPath p) {
  static const Depth depths[] = {Depth::U8, Depth::S16, Depth::F32};
  Mat a = genMat(c, kSrcA, PixelType(depths[c.variant % 3], channelsFor(c)));
  Rng r(c.seed ^ 0x5ca1eaddull);
  Mat dst;
  core::scaleAdd(a, r.real(-4.0, 4.0), r.real(-300.0, 300.0), dst, p);
  return dst;
}

Mat runAddWeighted(const CaseSpec& c, KernelPath p) {
  static const Depth depths[] = {Depth::U8, Depth::S16, Depth::F32};
  const PixelType type(depths[c.variant % 3], channelsFor(c));
  Mat a = genMat(c, kSrcA, type);
  Mat b = genMat(c, kSrcB, type);
  Rng r(c.seed ^ 0xaddbeefedull);
  Mat dst;
  core::addWeighted(a, r.real(-2.0, 2.0), b, r.real(-2.0, 2.0),
                    r.real(-100.0, 100.0), dst, p);
  return dst;
}

Mat runBitwiseNot(const CaseSpec& c, KernelPath p) {
  static const Depth depths[] = {Depth::U8, Depth::S16};
  Mat a = genMat(c, kSrcA, PixelType(depths[c.variant % 2], channelsFor(c)));
  Mat dst;
  core::bitwiseNot(a, dst, p);
  return dst;
}

// ---- separable filters -----------------------------------------------------

imgproc::BorderType borderFor(Rng& r) {
  static const std::vector<imgproc::BorderType> borders = {
      imgproc::BorderType::Reflect101, imgproc::BorderType::Replicate,
      imgproc::BorderType::Reflect, imgproc::BorderType::Constant,
      imgproc::BorderType::Wrap};
  return r.pick(borders);
}

Mat runGaussian(const CaseSpec& c, KernelPath p) {
  // Special-domain floats (Inf/NaN) are excluded: Inf - Inf inside the
  // convolution is NaN on every path but where it lands depends on tap
  // order, which is exactly what the tolerance policy does not cover.
  const Domain dom = c.domain == Domain::Special ? Domain::Uniform : c.domain;
  CaseSpec cc = c;
  cc.domain = dom;
  const Depth sd = (c.variant & 1) ? Depth::F32 : Depth::U8;
  Mat src = genMat(cc, kSrcA, PixelType(sd, 1));
  Rng r(c.seed ^ 0x6a0551a2ull);
  const int kw = 3 + 2 * r.uniform(0, 2);  // 3, 5, 7
  const int kh = 3 + 2 * r.uniform(0, 2);
  const double sigmaX = r.real(0.6, 2.5);
  const double sigmaY = r.chance(50) ? 0.0 : r.real(0.6, 2.5);
  Mat dst;
  imgproc::GaussianBlur(src, dst, {kw, kh}, sigmaX, sigmaY, borderFor(r), p);
  return dst;
}

Mat runSobel(const CaseSpec& c, KernelPath p) {
  const Domain dom = c.domain == Domain::Special ? Domain::Uniform : c.domain;
  CaseSpec cc = c;
  cc.domain = dom;
  const Depth sd = (c.variant & 1) ? Depth::F32 : Depth::U8;
  const Depth dd = (c.variant & 2) ? Depth::F32 : Depth::S16;
  Mat src = genMat(cc, kSrcA, PixelType(sd, 1));
  Rng r(c.seed ^ 0x50be1ull);
  static const std::vector<std::pair<int, int>> orders = {
      {1, 0}, {0, 1}, {1, 1}, {2, 0}, {0, 2}};
  const auto [dx, dy] = r.pick(orders);
  const int ksize = r.chance(70) ? 3 : 5;
  Mat dst;
  imgproc::Sobel(src, dst, dd, dx, dy, ksize, 1.0, borderFor(r), p);
  return dst;
}

Mat runEdgeDetect(const CaseSpec& c, KernelPath p) {
  Mat src = genMat(c, kSrcA, U8C1);
  Rng r(c.seed ^ 0xed6ede7ull);
  Mat dst;
  imgproc::edgeDetect(src, dst, r.real(0.0, 400.0), 3, borderFor(r), p);
  return dst;
}

// Cross-path check of the fused engine itself (all paths must agree on the
// fused pipeline, banded by parallel_for). Rng draws go through named locals:
// argument evaluation order is unspecified, and a reproducer line must
// regenerate the same parameters.
Mat runEdgeFused(const CaseSpec& c, KernelPath p) {
  Mat src = genMat(c, kSrcA, U8C1);
  Rng r(c.seed ^ 0xf05edull);
  const double thresh = r.real(-10.0, 300.0);  // overshoot: degenerate fills
  const int ksize = r.chance(70) ? 3 : 5;
  const imgproc::BorderType border = borderFor(r);
  Mat dst;
  imgproc::edgeDetectFused(src, dst, thresh, ksize, border, p);
  return dst;
}

// The fused-vs-unfused differential pair: the oracle's reference leg is
// always (ScalarNoVec, 1 thread), so routing ScalarNoVec to the unfused
// 4-pass pipeline makes every fused path on every thread count get compared
// bit-exactly against the unfused scalar reference.
Mat runEdgeFusedVsUnfused(const CaseSpec& c, KernelPath p) {
  Mat src = genMat(c, kSrcA, U8C1);
  Rng r(c.seed ^ 0xf05edull);  // same salt as runEdgeFused: same parameters
  const double thresh = r.real(-10.0, 300.0);
  const int ksize = r.chance(70) ? 3 : 5;
  const imgproc::BorderType border = borderFor(r);
  Mat dst;
  if (p == KernelPath::ScalarNoVec)
    imgproc::edgeDetectUnfused(src, dst, thresh, ksize, border, p);
  else
    imgproc::edgeDetectFused(src, dst, thresh, ksize, border, p);
  return dst;
}

// Tuned dispatch must be bit-exact with fixed-path dispatch: every tuning
// axis (path selection, fuse choice, band grain) only reschedules work whose
// candidates all compute the same function. The ScalarNoVec leg runs with
// tuning OFF — the oracle's reference stays the untuned heuristic pipeline —
// while every other leg runs under tune::ScopedEnable, so live trials (the
// tuner cycling through candidates) are themselves compared bit-exactly
// against the untuned scalar reference.
Mat runEdgeDetectTuned(const CaseSpec& c, KernelPath p) {
  Mat src = genMat(c, kSrcA, U8C1);
  Rng r(c.seed ^ 0xed6ede7ull);  // same salt as runEdgeDetect
  const double thresh = r.real(0.0, 400.0);
  const imgproc::BorderType border = borderFor(r);
  Mat dst;
  if (p == KernelPath::ScalarNoVec) {
    imgproc::edgeDetect(src, dst, thresh, 3, border, p);
  } else {
    // The Auto leg goes through Default so the tuner's path axis (which only
    // engages for Default requests) gets differential coverage too; concrete
    // paths exercise the fuse/grain axes at that path.
    tune::ScopedEnable tuned(true);
    imgproc::edgeDetect(src, dst, thresh, 3, border,
                        p == KernelPath::Auto ? KernelPath::Default : p);
  }
  return dst;
}

Mat runThresholdTuned(const CaseSpec& c, KernelPath p) {
  static const Depth depths[] = {Depth::U8, Depth::S16, Depth::F32};
  const Depth d = depths[c.variant % 3];
  Mat src = genMat(c, kSrcA, PixelType(d, channelsFor(c)));
  Rng r(c.seed ^ 0x7445e5401dull);  // same salt/draws as runThreshold
  const double thresh = d == Depth::U8    ? r.real(-40.0, 300.0)
                        : d == Depth::S16 ? r.real(-40000.0, 40000.0)
                                          : r.real(-1e4, 1e4);
  const double maxval = d == Depth::U8    ? r.real(-40.0, 300.0)
                        : d == Depth::S16 ? r.real(-40000.0, 40000.0)
                                          : r.real(-1e4, 1e4);
  Mat dst;
  if (p == KernelPath::ScalarNoVec) {
    imgproc::threshold(src, dst, thresh, maxval,
                       imgproc::ThresholdType::Binary, p);
  } else {
    // Auto -> Default for path-axis coverage, as in runEdgeDetectTuned.
    tune::ScopedEnable tuned(true);
    imgproc::threshold(src, dst, thresh, maxval, imgproc::ThresholdType::Binary,
                       p == KernelPath::Auto ? KernelPath::Default : p);
  }
  return dst;
}

// ---- pipeline graphs -------------------------------------------------------
// Differential contract of simdcv::graph: the fused streaming schedule is
// bit-exact with the staged whole-image schedule. The oracle's reference leg
// is always (ScalarNoVec, 1 thread), so routing ScalarNoVec to runStaged
// compares every fused path on every thread count against the staged scalar
// reference — the same structure as edge.fused-vs-unfused.

graph::Graph genEdgeGraph(const CaseSpec& c) {
  Rng r(c.seed ^ 0x9ed6ef05edull);
  const double thresh = r.real(-10.0, 300.0);  // overshoot: degenerate fills
  const int ksize = r.chance(70) ? 3 : 5;
  return graph::makeEdgeGraph(Depth::U8, thresh, ksize, borderFor(r));
}

Mat runGraphEdge(const CaseSpec& c, KernelPath p) {
  Mat src = genMat(c, kSrcA, U8C1);
  const graph::Graph g = genEdgeGraph(c);
  Mat dst;
  if (p == KernelPath::ScalarNoVec)
    g.runStaged(src, dst, p);
  else
    g.runFused(src, dst, p);
  return dst;
}

Mat runGraphBlurSobelThreshold(const CaseSpec& c, KernelPath p) {
  Mat src = genMat(c, kSrcA, U8C1);
  Rng r(c.seed ^ 0xb51e5065ull);
  const int blurKsize = 3 + 2 * r.uniform(0, 2);  // 3, 5, 7
  const double sigma = r.real(0.6, 2.5);
  const int sobelKsize = r.chance(70) ? 3 : 5;
  const double thresh = r.real(-40000.0, 40000.0);  // S16 threshold stage
  // No Wrap here: a Wrap-border convolution on an interior stage needs random
  // row access, so the graph would (correctly) refuse to fuse. Wrap coverage
  // rides on graph.edge, whose convolutions read the source directly.
  static const std::vector<imgproc::BorderType> streamable = {
      imgproc::BorderType::Reflect101, imgproc::BorderType::Replicate,
      imgproc::BorderType::Reflect, imgproc::BorderType::Constant};
  const graph::Graph g = graph::makeBlurSobelThresholdGraph(
      Depth::U8, blurKsize, sigma, sobelKsize, thresh, r.pick(streamable));
  Mat dst;
  if (p == KernelPath::ScalarNoVec)
    g.runStaged(src, dst, p);
  else
    g.runFused(src, dst, p);
  return dst;
}

// The photo chain covers the remaining fused vocabulary: pointwise scaling,
// addWeighted (a node consumed by BOTH a convolution and the blend — the
// multi-consumer skewed-window case), and the F32 interior depth.
Mat runGraphPhoto(const CaseSpec& c, KernelPath p) {
  Mat src = genMat(c, kSrcA, U8C1);
  Rng r(c.seed ^ 0x0070b00full);
  const int toneKsize = 3 + 2 * r.uniform(0, 1);     // 3, 5
  const int unsharpKsize = 5 + 2 * r.uniform(0, 1);  // 5, 7
  const graph::Graph g = graph::makePhotoGraph(
      toneKsize, r.real(0.6, 1.5), unsharpKsize, r.real(0.8, 2.0),
      r.real(0.8, 1.3), r.real(-20.0, 20.0), r.real(0.2, 2.0));
  Mat dst;
  if (p == KernelPath::ScalarNoVec)
    g.runStaged(src, dst, p);
  else
    g.runFused(src, dst, p);
  return dst;
}

// Band partitions must be invisible: forced fixed-height serial bands
// (including 1-row bands, bands straddling the kernel height, and one band
// of rows-1) against the staged reference.
Mat runGraphBanded(const CaseSpec& c, KernelPath p) {
  Mat src = genMat(c, kSrcA, U8C1);
  const graph::Graph g = genEdgeGraph(c);
  Mat dst;
  if (p == KernelPath::ScalarNoVec) {
    g.runStaged(src, dst, p);
  } else {
    Rng r(c.seed ^ 0xba4ded0ull);
    static const std::vector<int> bands = {1, 2, 3, 4, 5, 16};
    int bandRows = r.chance(50) ? r.pick(bands) : c.rows - 1;
    bandRows = std::max(1, std::min(bandRows, c.rows));
    graph::detail::runFusedBanded(g, src, dst, p, bandRows);
  }
  return dst;
}

// run()'s scheduling (heuristic or measured fuse axis under SIMDCV_TUNE)
// must be invisible too: tuned run() vs the untuned staged scalar reference.
Mat runGraphTuned(const CaseSpec& c, KernelPath p) {
  Mat src = genMat(c, kSrcA, U8C1);
  const graph::Graph g = genEdgeGraph(c);
  Mat dst;
  if (p == KernelPath::ScalarNoVec) {
    g.runStaged(src, dst, p);
  } else {
    tune::ScopedEnable tuned(true);
    g.run(src, dst, p == KernelPath::Auto ? KernelPath::Default : p);
  }
  return dst;
}

// Band-parallel morphology vs the serial scalar reference, with the tuner's
// grain axis live on the non-reference legs (morphRect is the sixth kernel
// on the measured-grain axis, after convertTo/threshold/sepFilter2D/
// gradientMagnitude/edge.fused).
Mat runMorphRectTuned(const CaseSpec& c, KernelPath p) {
  Mat src = genMat(c, kSrcA, U8C1);
  Rng r(c.seed ^ 0x3030e47ull);
  const int kw = 1 + 2 * r.uniform(0, 4);  // 1..9
  const int kh = 1 + 2 * r.uniform(0, 2);  // 1..5
  const bool er = r.chance(50);
  Mat dst;
  if (p == KernelPath::ScalarNoVec) {
    if (er)
      imgproc::erode(src, dst, {kw, kh}, p);
    else
      imgproc::dilate(src, dst, {kw, kh}, p);
  } else {
    tune::ScopedEnable tuned(true);
    const KernelPath q = p == KernelPath::Auto ? KernelPath::Default : p;
    if (er)
      imgproc::erode(src, dst, {kw, kh}, q);
    else
      imgproc::dilate(src, dst, {kw, kh}, q);
  }
  return dst;
}

Mat runMagnitude(const CaseSpec& c, KernelPath p) {
  Mat gx = genMat(c, kSrcA, S16C1);
  Mat gy = genMat(c, kSrcB, S16C1);
  Mat dst;
  imgproc::gradientMagnitude(gx, gy, dst, p);
  return dst;
}

}  // namespace

const std::vector<KernelCheck>& kernelRegistry() {
  static const std::vector<KernelCheck> registry = [] {
    std::vector<KernelCheck> reg;
    // convertTo: every HAND pair, both directions, plus scaled (scalar-only
    // dispatch) and a no-HAND pair so autovec-vs-novec gets coverage too.
    addConvert(reg, "convertTo.32f16s", Depth::F32, Depth::S16, false);
    addConvert(reg, "convertTo.32f8u", Depth::F32, Depth::U8, false);
    addConvert(reg, "convertTo.8u32f", Depth::U8, Depth::F32, false);
    addConvert(reg, "convertTo.16s32f", Depth::S16, Depth::F32, false);
    addConvert(reg, "convertTo.8u16s", Depth::U8, Depth::S16, false);
    addConvert(reg, "convertTo.16s8u", Depth::S16, Depth::U8, false);
    addConvert(reg, "convertTo.32f32s", Depth::F32, Depth::S32, false);
    addConvert(reg, "convertTo.64f16u", Depth::F64, Depth::U16, false);
    addConvert(reg, "convertTo.scaled.32f8u", Depth::F32, Depth::U8, true);
    addConvert(reg, "convertTo.scaled.8u16s", Depth::U8, Depth::S16, true);
    // threshold: all five types; depth (u8/s16/f32) rides on the variant.
    addThreshold(reg, "threshold.binary", imgproc::ThresholdType::Binary);
    addThreshold(reg, "threshold.binary-inv", imgproc::ThresholdType::BinaryInv);
    addThreshold(reg, "threshold.trunc", imgproc::ThresholdType::Trunc);
    addThreshold(reg, "threshold.tozero", imgproc::ThresholdType::ToZero);
    addThreshold(reg, "threshold.tozero-inv", imgproc::ThresholdType::ToZeroInv);
    // element-wise array ops.
    addBinOp(reg, "arrayops.add", &core::add, false);
    addBinOp(reg, "arrayops.subtract", &core::subtract, false);
    addBinOp(reg, "arrayops.absdiff", &core::absdiff, false);
    addBinOp(reg, "arrayops.min", &core::min, false);
    addBinOp(reg, "arrayops.max", &core::max, false);
    addBinOp(reg, "arrayops.bitwise-and", &core::bitwiseAnd, true);
    addBinOp(reg, "arrayops.bitwise-xor", &core::bitwiseXor, true);
    reg.push_back({"arrayops.bitwise-not", &runBitwiseNot, 0.0});
    reg.push_back({"arrayops.scale-add", &runScaleAdd, 0.0});
    reg.push_back({"arrayops.add-weighted", &runAddWeighted, 0.0});
    // separable-filter pipelines (the paper's benchmarks 3-5).
    reg.push_back({"filter.gaussian", &runGaussian, 0.0});
    reg.push_back({"filter.sobel", &runSobel, 0.0});
    reg.push_back({"edge.magnitude", &runMagnitude, 0.0});
    reg.push_back({"edge.detect", &runEdgeDetect, 0.0});
    reg.push_back({"edge.fused", &runEdgeFused, 0.0});
    reg.push_back({"edge.fused-vs-unfused", &runEdgeFusedVsUnfused, 0.0});
    // pipeline graphs: fused streaming schedule vs the staged scalar oracle.
    reg.push_back({"graph.edge", &runGraphEdge, 0.0});
    reg.push_back({"graph.blur-sobel-thr", &runGraphBlurSobelThreshold, 0.0});
    reg.push_back({"graph.photo", &runGraphPhoto, 0.0});
    reg.push_back({"graph.banded", &runGraphBanded, 0.0});
    reg.push_back({"graph.run-tuned", &runGraphTuned, 0.0});
    // Tuned dispatch vs the untuned fixed-path oracle (scheduling-only
    // contract of simdcv::tune).
    reg.push_back({"tuned.edge-detect", &runEdgeDetectTuned, 0.0});
    reg.push_back({"tuned.threshold", &runThresholdTuned, 0.0});
    reg.push_back({"tuned.morph-rect", &runMorphRectTuned, 0.0});
    return reg;
  }();
  return registry;
}

}  // namespace simdcv::check
