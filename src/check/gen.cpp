// Seeded adversarial Mat generation for the differential checker.
//
// The generator's job is to hit the inputs the kernels disagree on when they
// are wrong: exact 16S/8U saturation boundaries (the half-integers where
// round-to-nearest-even decides), NaN/Inf/denormals, and geometry that
// exposes stride bugs (ROI views, 1-row/1-col shapes, widths straddling the
// SIMD main-loop/tail seam).
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "check/check.hpp"

namespace simdcv::check {

const char* toString(Domain d) noexcept {
  switch (d) {
    case Domain::Uniform: return "uniform";
    case Domain::Boundary: return "boundary";
    case Domain::Special: return "special";
  }
  return "?";
}

std::string describe(const CaseSpec& c) {
  std::ostringstream os;
  os << "seed=0x" << std::hex << c.seed << std::dec << " rows=" << c.rows
     << " cols=" << c.cols << " roi=" << c.roiX << "," << c.roiY
     << " domain=" << toString(c.domain) << " variant=" << c.variant;
  return os.str();
}

namespace {

// The float values benchmark B1's saturation behaviour pivots on. Half-odd
// values decide round-half-to-even; values just inside/outside the rails
// decide the clamp.
const float kBoundaryF32[] = {
    32768.5f,  -32768.5f,  32767.5f,  -32767.5f,  32767.49f, -32767.49f,
    32766.5f,  -32766.5f,  32767.0f,  -32768.0f,  32768.0f,  -32769.0f,
    255.5f,    -255.5f,    254.5f,    255.0f,     256.0f,    255.49f,
    -0.5f,     0.5f,       -0.49f,    0.49f,      -1.5f,     1.5f,
    0.0f,      -0.0f,      65535.5f,  -65536.5f,  127.5f,    -128.5f};

const float kSpecialF32[] = {
    std::numeric_limits<float>::quiet_NaN(),
    std::numeric_limits<float>::infinity(),
    -std::numeric_limits<float>::infinity(),
    std::numeric_limits<float>::denorm_min(),
    -std::numeric_limits<float>::denorm_min(),
    1e-42f,  // subnormal
    -1e-42f,
    std::numeric_limits<float>::min(),
    -std::numeric_limits<float>::min(),
    std::numeric_limits<float>::max(),
    -std::numeric_limits<float>::max(),
    3e9f,   // overflows int32 on conversion
    -3e9f,
    2147483648.0f,  // exactly 2^31
    -2147483648.0f,
    2147483520.0f,  // largest float below 2^31
    1e38f,
    -1e38f};

float genF32(Rng& r, Domain d) {
  switch (d) {
    case Domain::Boundary:
      // Mostly exact boundary values, some uniform filler so runs of
      // identical lanes don't mask per-lane bugs.
      if (r.chance(75))
        return kBoundaryF32[r.next() % (sizeof(kBoundaryF32) / sizeof(float))];
      return static_cast<float>(r.real(-40000.0, 40000.0));
    case Domain::Special:
      if (r.chance(40))
        return kSpecialF32[r.next() % (sizeof(kSpecialF32) / sizeof(float))];
      return static_cast<float>(r.real(-1e6, 1e6));
    case Domain::Uniform:
    default: {
      // Mix magnitudes: pixel-ish, boundary-ish, large.
      switch (r.uniform(0, 3)) {
        case 0: return static_cast<float>(r.real(-256.0, 512.0));
        case 1: return static_cast<float>(r.real(-40000.0, 40000.0));
        case 2: return static_cast<float>(r.real(-1.0, 1.0));
        default: return static_cast<float>(r.real(-1e7, 1e7));
      }
    }
  }
}

template <typename T>
T genInt(Rng& r, Domain d) {
  constexpr long long lo = std::numeric_limits<T>::min();
  constexpr long long hi = std::numeric_limits<T>::max();
  if (d == Domain::Boundary && r.chance(60)) {
    const long long picks[] = {lo, lo + 1, -1, 0, 1, hi - 1, hi, hi / 2, lo / 2};
    return static_cast<T>(picks[r.next() % (sizeof(picks) / sizeof(long long))]);
  }
  return static_cast<T>(lo + static_cast<long long>(
                                 r.next() % static_cast<std::uint64_t>(hi - lo + 1)));
}

template <typename T>
void fill(Mat& m, Rng& r, Domain d) {
  const int n = m.cols() * m.channels();
  for (int y = 0; y < m.rows(); ++y) {
    T* p = m.ptr<T>(y);
    for (int x = 0; x < n; ++x) {
      if constexpr (std::is_same_v<T, float>) {
        p[x] = genF32(r, d);
      } else if constexpr (std::is_same_v<T, double>) {
        p[x] = static_cast<double>(genF32(r, d));
      } else {
        p[x] = genInt<T>(r, d);
      }
    }
  }
}

}  // namespace

Mat genMat(const CaseSpec& c, std::uint64_t salt, PixelType type) {
  Rng r(c.seed ^ (salt * 0x2545f4914f6cdd1dull + 0x9e3779b97f4a7c15ull));
  // The parent is larger than the view on both sides so the view is
  // guaranteed non-contiguous (right margin) and offset (left/top margins).
  const int padRight = (c.roiX > 0 || c.roiY > 0) ? 1 + static_cast<int>(r.next() % 5) : 0;
  const int padBottom = padRight > 0 ? static_cast<int>(r.next() % 3) : 0;
  Mat parent(c.rows + c.roiY + padBottom, c.cols + c.roiX + padRight, type);
  Rng rv(r.next());
  switch (type.depth) {
    case Depth::U8: fill<std::uint8_t>(parent, rv, c.domain); break;
    case Depth::S8: fill<std::int8_t>(parent, rv, c.domain); break;
    case Depth::U16: fill<std::uint16_t>(parent, rv, c.domain); break;
    case Depth::S16: fill<std::int16_t>(parent, rv, c.domain); break;
    case Depth::S32: fill<std::int32_t>(parent, rv, c.domain); break;
    case Depth::F32: fill<float>(parent, rv, c.domain); break;
    case Depth::F64: fill<double>(parent, rv, c.domain); break;
  }
  if (c.roiX == 0 && c.roiY == 0) return parent;
  return parent.roi({c.roiX, c.roiY, c.cols, c.rows});
}

}  // namespace simdcv::check
