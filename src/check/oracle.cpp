// Cross-path differential oracle: every (kernel, case) runs on every
// available KernelPath x {1, N} threads and is compared against the
// scalar-novec single-thread reference. Failures are shrunk by halving
// geometry while the mismatch reproduces, then emitted as one-line
// reproducers that `check_all --replay` style invocations (or a pinned
// gtest) can regenerate exactly.
#include <chrono>
#include <thread>
#include <cstdio>
#include <sstream>

#include "check/check.hpp"
#include "runtime/thread_pool.hpp"

namespace simdcv::check {

namespace {

/// Run the kernel with a pinned thread count, restoring the previous count
/// even if the kernel throws.
class ThreadGuard {
 public:
  explicit ThreadGuard(int n) : prev_(runtime::getNumThreads()) {
    runtime::setNumThreads(n);
  }
  ~ThreadGuard() { runtime::setNumThreads(prev_); }
  ThreadGuard(const ThreadGuard&) = delete;
  ThreadGuard& operator=(const ThreadGuard&) = delete;

 private:
  int prev_;
};

Mat runAt(const KernelCheck& kernel, const CaseSpec& spec, KernelPath path,
          int threads) {
  ThreadGuard guard(threads);
  return kernel.run(spec, path);
}

std::string reproLine(const std::string& kernel, const CaseSpec& spec,
                      KernelPath path, int threads) {
  std::ostringstream os;
  os << "check_all --only=" << kernel << " " << describe(spec)
     << " path=" << simdcv::toString(path) << " threads=" << threads;
  return os.str();
}

int defaultThreadsHigh() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int n = hw == 0 ? 2 : static_cast<int>(hw);
  // Even on a 1-core host, run the N-thread leg with >1 workers: band
  // splitting (and its seam handling) is what we are checking, not speed.
  return n < 2 ? 2 : (n > 4 ? 4 : n);
}

}  // namespace

std::vector<KernelPath> availablePaths() {
  std::vector<KernelPath> paths;
  for (KernelPath p : {KernelPath::ScalarNoVec, KernelPath::Auto,
                       KernelPath::Sse2, KernelPath::Avx2, KernelPath::Neon}) {
    if (pathAvailable(p)) paths.push_back(p);
  }
  return paths;
}

std::vector<Failure> checkCase(const KernelCheck& kernel, const CaseSpec& spec,
                               int threads_high, double tolerance) {
  std::vector<Failure> failures;
  if (threads_high <= 0) threads_high = defaultThreadsHigh();
  const Mat ref = runAt(kernel, spec, KernelPath::ScalarNoVec, 1);
  for (KernelPath path : availablePaths()) {
    for (int threads : {1, threads_high}) {
      if (path == KernelPath::ScalarNoVec && threads == 1) continue;  // is ref
      const Mat out = runAt(kernel, spec, path, threads);
      const std::size_t mism = countMismatches(ref, out, tolerance);
      if (mism == 0) continue;
      Failure f;
      f.kernel = kernel.name;
      f.shrunk = spec;
      f.path = path;
      f.threads = threads;
      f.mismatches = mism;
      f.max_abs_diff = maxAbsDiff(ref, out);
      f.repro = reproLine(kernel.name, spec, path, threads);
      failures.push_back(std::move(f));
    }
  }
  return failures;
}

namespace {

bool stillFails(const KernelCheck& kernel, const CaseSpec& spec,
                int threads_high, double tolerance) {
  return !checkCase(kernel, spec, threads_high, tolerance).empty();
}

/// Greedy geometry shrink: repeatedly halve rows/cols/roiX/roiY (trying the
/// most aggressive reduction first) while the case still fails. The inputs
/// regenerate from the same seed at each size, so smaller geometry means a
/// genuinely smaller failing input, not a truncation of the original.
CaseSpec shrinkCase(const KernelCheck& kernel, CaseSpec spec, int threads_high,
                    double tolerance) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (int* dim : {&spec.rows, &spec.cols}) {
      while (*dim > 1) {
        CaseSpec cand = spec;
        int* cdim = dim == &spec.rows ? &cand.rows : &cand.cols;
        *cdim = *dim / 2;
        if (!stillFails(kernel, cand, threads_high, tolerance)) break;
        *dim = *cdim;
        progressed = true;
      }
    }
    for (int* off : {&spec.roiX, &spec.roiY}) {
      while (*off > 0) {
        CaseSpec cand = spec;
        int* coff = off == &spec.roiX ? &cand.roiX : &cand.roiY;
        *coff = *off / 2;
        if (!stillFails(kernel, cand, threads_high, tolerance)) break;
        *off = *coff;
        progressed = true;
      }
    }
  }
  return spec;
}

/// Shapes the generator draws from: powers of two (flat fast paths when the
/// row happens to be contiguous), odd/prime widths (vector tails), and the
/// degenerate 1-row/1-col extremes.
constexpr int kDims[] = {1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17,
                         23, 31, 32, 33, 48, 61, 64, 97, 128};

/// Deterministic string hash (FNV-1a): std::hash makes no cross-platform
/// guarantee, and the per-kernel seed stream must replay identically on
/// every host a reproducer line travels to.
std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char ch : s) h = (h ^ ch) * 0x100000001b3ull;
  return h;
}

CaseSpec makeSpec(Rng& r) {
  CaseSpec c;
  c.seed = r.next();
  c.rows = kDims[r.next() % (sizeof(kDims) / sizeof(int))];
  c.cols = kDims[r.next() % (sizeof(kDims) / sizeof(int))];
  if (r.chance(45)) {  // ROI view with non-contiguous rows
    c.roiX = r.uniform(1, 9);
    c.roiY = r.uniform(1, 5);
  }
  const int d = r.uniform(0, 99);
  c.domain = d < 40 ? Domain::Uniform : d < 75 ? Domain::Boundary : Domain::Special;
  c.variant = static_cast<int>(r.next() % 64);
  return c;
}

}  // namespace

Report runAll(const Options& opts) {
  Report report;
  const int threads_high =
      opts.threads_high > 0 ? opts.threads_high : defaultThreadsHigh();
  const std::size_t n_paths = availablePaths().size();
  for (const KernelCheck& kernel : kernelRegistry()) {
    if (!opts.only.empty() &&
        kernel.name.find(opts.only) == std::string::npos) {
      continue;
    }
    ++report.kernels_checked;
    const auto t0 = std::chrono::steady_clock::now();
    int kernel_failures = 0;
    // Per-kernel seed stream: independent of registry order so adding a
    // kernel does not reshuffle every other kernel's cases.
    Rng caseRng(opts.seed ^ fnv1a(kernel.name));
    for (int i = 0; i < opts.iters; ++i) {
      const CaseSpec spec = makeSpec(caseRng);
      ++report.cases_run;
      report.comparisons += n_paths * 2 - 1;
      auto failures = checkCase(kernel, spec, threads_high, kernel.tolerance);
      if (failures.empty()) continue;
      // Shrink once per failing case (all paths share the shrunk geometry),
      // then re-collect so each failing path reports the minimal case.
      CaseSpec shrunk = spec;
      if (opts.shrink) {
        shrunk = shrinkCase(kernel, spec, threads_high, kernel.tolerance);
        failures = checkCase(kernel, shrunk, threads_high, kernel.tolerance);
      }
      for (Failure& f : failures) {
        std::fprintf(stderr, "FAIL %s: %zu mismatches (max |d|=%g)\n  repro: %s\n",
                     f.kernel.c_str(), f.mismatches, f.max_abs_diff,
                     f.repro.c_str());
        report.failures.push_back(std::move(f));
      }
      if (++kernel_failures >= opts.max_failures_per_kernel) {
        std::fprintf(stderr, "%s: stopping after %d failing cases\n",
                     kernel.name.c_str(), kernel_failures);
        break;
      }
    }
    if (opts.verbose) {
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      std::fprintf(stderr, "%-28s %5d cases  %4lld ms  %s\n", kernel.name.c_str(),
                   opts.iters, static_cast<long long>(ms),
                   kernel_failures == 0 ? "ok" : "FAIL");
    }
  }
  return report;
}

}  // namespace simdcv::check
