// simdcv::check — differential kernel-path testing.
//
// The paper's claim (and this library's contract) is that every KernelPath
// computes the same function: scalar-novec, autovec, SSE2, AVX2 and NEON-emu
// must agree bit-exactly (or within a small documented tolerance for 32F
// accumulation) on every input — including saturation boundaries, NaN/Inf,
// denormals, odd widths and non-contiguous ROI views. This subsystem turns
// that contract into an executable oracle:
//
//   - a seeded generator produces adversarial Mats (prime/odd widths,
//     1-row/1-col shapes, ROI views with padded strides, float values at the
//     exact 16S/8U saturation boundaries),
//   - a registry names every checked kernel family (convertTo, threshold,
//     array ops, GaussianBlur, Sobel, edgeDetect, ...),
//   - the oracle runs each case on every available path x {1, N} threads and
//     compares against the scalar-novec single-thread reference,
//   - failing cases are shrunk (halving rows/cols/ROI offsets while the
//     mismatch reproduces) and printed as one-line reproducers.
//
// Everything is deterministic from a single 64-bit seed: a reproducer line
// from a CI log regenerates the exact failing input.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::check {

/// Deterministic 64-bit PRNG (splitmix64): tiny state, full-period, and
/// identical on every platform — reproducer lines must replay anywhere.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint32_t next32() noexcept { return static_cast<std::uint32_t>(next() >> 32); }
  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  int uniform(int lo, int hi) noexcept {
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(hi - lo + 1));
  }
  /// Uniform double in [lo, hi).
  double real(double lo, double hi) noexcept {
    const double u = static_cast<double>(next() >> 11) * 0x1.0p-53;  // [0,1)
    return lo + u * (hi - lo);
  }
  bool chance(int percent) noexcept { return uniform(0, 99) < percent; }
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(next() % v.size())];
  }

 private:
  std::uint64_t state_;
};

/// Value domain the generator draws Mat elements from.
enum class Domain : std::uint8_t {
  Uniform,   ///< full-range values for the depth
  Boundary,  ///< saturation boundaries: +/-32768.5, +/-32767.49, 255.5, -0.5, ...
  Special,   ///< NaN, +/-Inf, denormals, huge magnitudes (float depths)
};

const char* toString(Domain d) noexcept;

/// One generated case: geometry plus the seed its inputs regenerate from.
/// roiX/roiY > 0 embed the logical Mat as a view inside a larger parent, so
/// rows are non-contiguous and start at unaligned offsets.
struct CaseSpec {
  std::uint64_t seed = 0;
  int rows = 1;
  int cols = 1;
  int roiX = 0;
  int roiY = 0;
  Domain domain = Domain::Uniform;
  int variant = 0;  ///< kernel-private knob (depth pick, threshold type, ...)
};

/// Human/CI-parsable description, e.g.
///   seed=0x1234 rows=17 cols=31 roi=2,1 domain=boundary variant=3
std::string describe(const CaseSpec& c);

/// Generate the case's Mat of `type`. `salt` decouples multiple inputs of
/// one case (e.g. the two operands of add) — same seed, different streams.
/// The returned Mat is a ROI view (non-contiguous) when roiX/roiY are set.
Mat genMat(const CaseSpec& c, std::uint64_t salt, PixelType type);

/// A checked kernel family. `run` executes the kernel for the generated case
/// on the given path and returns the output Mat; it must be a pure function
/// of (spec, path) up to the per-kernel tolerance.
struct KernelCheck {
  std::string name;
  std::function<Mat(const CaseSpec&, KernelPath)> run;
  /// Max absolute output difference vs. the reference (0 = bit-exact, the
  /// default; NaN placement must match exactly either way). Non-zero only
  /// where a kernel's contract documents a 32F accumulation tolerance.
  double tolerance = 0.0;
};

/// All registered kernel families (built once, in registration order).
const std::vector<KernelCheck>& kernelRegistry();

/// Concrete paths the oracle exercises on this host (ScalarNoVec, Auto and
/// whatever HAND paths pathAvailable() reports).
std::vector<KernelPath> availablePaths();

struct Failure {
  std::string kernel;
  CaseSpec shrunk;  ///< smallest case that still reproduces
  KernelPath path = KernelPath::Auto;
  int threads = 1;
  std::size_t mismatches = 0;
  double max_abs_diff = 0.0;
  std::string repro;  ///< one-line reproducer (also printed to stderr)
};

struct Options {
  std::uint64_t seed = 0x51dc5eedull;
  int iters = 500;      ///< cases per registered kernel
  int threads_high = 0; ///< the "N" in {1, N}; 0 = min(4, hardware)
  std::string only;     ///< substring filter on kernel names (empty = all)
  bool shrink = true;
  bool verbose = false; ///< per-kernel progress on stderr
  int max_failures_per_kernel = 3;  ///< stop checking a kernel after this many
};

struct Report {
  std::uint64_t cases_run = 0;
  std::uint64_t comparisons = 0;
  std::uint64_t kernels_checked = 0;
  std::vector<Failure> failures;
  bool ok() const noexcept { return failures.empty(); }
};

/// Run the full differential check. Deterministic for a given Options.
Report runAll(const Options& opts);

/// Re-run one kernel on one case across all paths x {1, N} threads; returns
/// the failures found (empty = agrees). Used by reproducer replay and the
/// shrinker, and handy for pinning regression tests.
std::vector<Failure> checkCase(const KernelCheck& kernel, const CaseSpec& spec,
                               int threads_high, double tolerance);

}  // namespace simdcv::check
