// check_all — differential kernel-path checker CLI.
//
// Runs every registered kernel family on seeded adversarial inputs across
// all available KernelPaths x {1, N} threads and demands agreement with the
// scalar-novec single-thread reference. Exit status 0 iff every comparison
// agreed. See DESIGN.md ("simdcv::check") for the tolerance policy.
//
//   check_all [--seed=HEX] [--iters=N] [--threads=N] [--only=SUBSTR]
//             [--no-shrink] [--verbose] [--list]
//
// Environment overrides (flags win): SIMDCV_CHECK_SEED, SIMDCV_CHECK_ITERS.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/check.hpp"
#include "simd/features.hpp"

namespace {

bool parseFlag(const char* arg, const char* name, const char** value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--seed=HEX] [--iters=N] [--threads=N]\n"
               "          [--only=SUBSTR] [--no-shrink] [--verbose] [--list]\n"
               "env: SIMDCV_CHECK_SEED, SIMDCV_CHECK_ITERS (flags win)\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simdcv;
  check::Options opts;
  if (const char* env = std::getenv("SIMDCV_CHECK_SEED")) {
    opts.seed = std::strtoull(env, nullptr, 0);
  }
  if (const char* env = std::getenv("SIMDCV_CHECK_ITERS")) {
    opts.iters = static_cast<int>(std::strtol(env, nullptr, 10));
  }
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (parseFlag(argv[i], "--seed", &v) && v) {
      opts.seed = std::strtoull(v, nullptr, 0);
    } else if (parseFlag(argv[i], "--iters", &v) && v) {
      opts.iters = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (parseFlag(argv[i], "--threads", &v) && v) {
      opts.threads_high = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (parseFlag(argv[i], "--only", &v) && v) {
      opts.only = v;
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      opts.shrink = false;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opts.verbose = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      usage(argv[0]);
      return 2;
    }
  }

  if (list) {
    for (const auto& k : check::kernelRegistry()) {
      std::printf("%s\n", k.name.c_str());
    }
    return 0;
  }

  std::fprintf(stderr, "check_all: seed=0x%llx iters=%d paths:",
               static_cast<unsigned long long>(opts.seed), opts.iters);
  for (KernelPath p : check::availablePaths()) {
    std::fprintf(stderr, " %s", toString(p));
  }
  std::fprintf(stderr, "\n");

  const check::Report report = check::runAll(opts);
  std::fprintf(stderr,
               "check_all: %llu kernels, %llu cases, %llu comparisons, "
               "%zu failures\n",
               static_cast<unsigned long long>(report.kernels_checked),
               static_cast<unsigned long long>(report.cases_run),
               static_cast<unsigned long long>(report.comparisons),
               report.failures.size());
  return report.ok() ? 0 : 1;
}
