// Band-parallel execution of row-range kernels on the work-stealing pool.
//
// parallel_for splits a row Range into at most getNumThreads() contiguous
// bands and runs the body once per band. Because every caller in this
// library partitions *output rows* (pure data parallelism, no reductions and
// no shared writes), the result is bit-identical to running the body once
// over the whole range — the determinism guarantee the equivalence tests
// enforce. Degenerate cases (1 thread, a range smaller than the grain, or a
// call from inside a pool worker) execute inline with zero overhead.
#pragma once

#include <functional>

namespace simdcv::runtime {

/// Half-open index range [begin, end), usually image rows.
struct Range {
  int begin = 0;
  int end = 0;
  int size() const noexcept { return end > begin ? end - begin : 0; }
  bool empty() const noexcept { return size() == 0; }
};

/// Minimum rows a band must contain for forking to be worth it, derived from
/// the work per row: `bytesPerRow` is the traffic one row generates and
/// `opCost` a rough compute multiplier (1 for element-wise ops; pass e.g.
/// kernel-tap count for convolutions). Tiny images yield a grain >= rows, so
/// parallel_for degenerates to the plain inline loop and never pays
/// fork/join overhead.
int parallelThreshold(std::size_t bytesPerRow, int rows, double opCost = 1.0);

/// Execute `body` over `range`, split into at most getNumThreads() bands of
/// at least `grain` indices each. The calling thread executes the first band
/// itself and then waits. The first exception thrown by any band is
/// rethrown on the calling thread after all bands finish. Nested calls (from
/// inside a band) run inline, so kernels composed of parallel kernels are
/// safe by construction.
void parallel_for(Range range, const std::function<void(Range)>& body,
                  int grain = 1);

}  // namespace simdcv::runtime
