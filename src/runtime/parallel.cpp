#include "runtime/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <latch>
#include <mutex>
#include <vector>

#include "prof/prof.hpp"
#include "runtime/thread_pool.hpp"

namespace simdcv::runtime {

namespace {

// Work (in byte-equivalents) a band should amortize against one fork/join.
// ~256 KiB of element-wise traffic is a few tens of microseconds on the
// platforms the paper studies — comfortably above pool wake/park cost.
constexpr double kMinBandWork = 256.0 * 1024.0;

}  // namespace

int parallelThreshold(std::size_t bytesPerRow, int rows, double opCost) {
  if (rows <= 0) return 1;
  const double perRow = std::max(1.0, static_cast<double>(bytesPerRow) *
                                          std::max(opCost, 1.0 / 16.0));
  const double grain = kMinBandWork / perRow;
  if (grain >= static_cast<double>(rows)) return rows;  // never fork
  return std::max(1, static_cast<int>(grain));
}

void parallel_for(Range range, const std::function<void(Range)>& body,
                  int grain) {
  const int len = range.size();
  if (len <= 0) return;
  grain = std::max(grain, 1);
  const int threads = getNumThreads();
  const int bands = static_cast<int>(
      std::min<long long>(threads, (static_cast<long long>(len) + grain - 1) / grain));
  if (bands <= 1 || inWorkerThread() || inlineParallel()) {
    body(range);
    return;
  }

  // First-exception capture; every band still runs to its own completion so
  // the latch always drains and locals stay alive.
  std::exception_ptr first_error;
  std::once_flag error_once;
  auto runBand = [&](Range band) noexcept {
    try {
      SIMDCV_TRACE_SCOPE("parallel_for.band");
      body(band);
    } catch (...) {
      std::call_once(error_once, [&] { first_error = std::current_exception(); });
    }
  };

  auto bandAt = [&](int i) {
    // Even split with the remainder spread over the leading bands.
    const long long b = range.begin + static_cast<long long>(len) * i / bands;
    const long long e = range.begin + static_cast<long long>(len) * (i + 1) / bands;
    return Range{static_cast<int>(b), static_cast<int>(e)};
  };

  std::latch done(bands - 1);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(bands - 1));
  for (int i = 1; i < bands; ++i) {
    tasks.emplace_back([&, i] {
      runBand(bandAt(i));
      done.count_down();
    });
  }
  detail::submitBatch(tasks.data(), tasks.size());
  runBand(bandAt(0));  // the caller is one of the N threads
  done.wait();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace simdcv::runtime
