// Work-stealing thread pool backing simdcv's band-parallel kernel execution.
//
// Design:
//   - One process-global pool, created lazily the first time a parallel
//     region actually runs with more than one thread. Paper-reproduction
//     benchmarks therefore never pay pool cost: the effective thread count
//     defaults to 1 (see getNumThreads) and a 1-thread region never touches
//     the pool.
//   - N-1 worker threads for an effective thread count of N; the thread that
//     opens the parallel region executes one share itself.
//   - Each worker owns a deque. Batch submission deals tasks round-robin
//     across the worker deques; an owner pops from the front of its own
//     deque, an idle worker steals from the back of a victim's. A small
//     global injector queue takes single stray tasks. Idle workers park on a
//     condition variable (no busy spinning) and are woken by an epoch bump.
//   - Tasks must not throw (parallel_for wraps user bodies and captures the
//     first exception itself) and must not block on other tasks; nested
//     parallel_for calls inline their body instead of re-entering the pool,
//     which is what makes the no-blocking invariant hold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace simdcv::runtime {

/// Monotonic counters describing pool activity since start (or the last
/// resetPoolStats). Cheap relaxed atomics; intended for observability, not
/// for synchronization.
struct PoolStats {
  std::uint64_t tasks_executed = 0;  ///< tasks run by pool workers
  std::uint64_t steals = 0;          ///< tasks taken from another worker's deque
  std::uint64_t parks = 0;           ///< times a worker went to sleep
  std::uint64_t unparks = 0;         ///< times a sleeping worker was woken
};

/// Effective thread count for parallel regions (>= 1).
///
/// Resolution order, decided once on first use:
///   1. a prior setNumThreads(n) call,
///   2. the SIMDCV_NUM_THREADS environment variable (0 means "all cores"),
///   3. otherwise 1 — the library is single-threaded by default so the
///      paper's measurement protocol is reproduced untouched.
int getNumThreads();

/// Override the effective thread count. n <= 0 selects
/// std::thread::hardware_concurrency(). Takes effect for subsequent parallel
/// regions; must not be called concurrently with one.
void setNumThreads(int n);

/// std::thread::hardware_concurrency(), clamped to >= 1.
int maxHardwareThreads();

/// True when the calling thread is a pool worker (used by parallel_for to
/// run nested regions inline rather than deadlocking on the pool).
bool inWorkerThread() noexcept;

/// Per-thread switch forcing parallel_for on this thread to run its body
/// inline instead of forking bands to the pool. The serve engine sets this
/// on its request workers so cross-request concurrency does not multiply
/// with band parallelism (N request workers x M bands would oversubscribe
/// the cores). Returns the previous value so scopes can restore it.
bool setInlineParallel(bool on) noexcept;

/// Current value of the calling thread's inline-parallel switch.
bool inlineParallel() noexcept;

/// Spin up the pool's worker threads for the current thread count without
/// running any work. Benchmarks call this so thread creation and stack
/// first-touch land outside the measured window.
void warmupPool();

/// Snapshot / reset of the activity counters.
PoolStats poolStats();
void resetPoolStats();

/// Join all workers. The pool restarts lazily on next use; mainly for tests
/// and sanitizer runs that want a quiescent process.
void shutdownPool();

namespace detail {

/// Parse a SIMDCV_NUM_THREADS-style value: returns the thread count
/// (0 meaning "all cores" is resolved to maxHardwareThreads()), or -1 if the
/// string is missing/malformed/negative. Exposed for unit tests.
int parseThreadCount(const char* text) noexcept;

class ThreadPool;  // implementation in thread_pool.cpp

/// The process-global pool (created on first call).
ThreadPool& globalPool();

/// Move `count` tasks into the pool (round-robin across worker deques) and
/// wake the workers. Tasks must be noexcept-callable; parallel_for is the
/// intended caller and handles exception capture itself.
void submitBatch(std::function<void()>* tasks, std::size_t count);

}  // namespace detail

}  // namespace simdcv::runtime
