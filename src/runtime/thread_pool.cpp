#include "runtime/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "platform/env.hpp"
#include "prof/prof.hpp"

namespace simdcv::runtime {

namespace detail {

namespace {
// Set for the lifetime of a worker's loop; lets parallel_for detect
// re-entrancy without a pool lookup.
thread_local bool tls_in_worker = false;
}  // namespace

class ThreadPool {
 public:
  ~ThreadPool() { stopWorkers(); }

  /// (Re)size the worker set. Joins existing workers first; the new set is
  /// spawned lazily by ensureStarted().
  void resize(int workers) {
    if (workers < 0) workers = 0;
    std::lock_guard<std::mutex> cfg(config_mu_);
    if (workers == target_workers_) return;
    stopLocked();
    target_workers_ = workers;
  }

  void ensureStarted() {
    std::lock_guard<std::mutex> cfg(config_mu_);
    startLocked();
  }

  int workerCount() {
    std::lock_guard<std::mutex> cfg(config_mu_);
    return target_workers_;
  }

  /// Deal `count` tasks round-robin across worker deques and wake everyone.
  /// Requires count > 0 and at least one worker.
  void submitBatch(std::function<void()>* tasks, std::size_t count) {
    {
      std::lock_guard<std::mutex> cfg(config_mu_);
      startLocked();
    }
    const std::size_t nw = workers_.size();
    if (nw == 0) {  // no workers configured: run inline as a last resort
      for (std::size_t i = 0; i < count; ++i) tasks[i]();
      return;
    }
    const std::size_t start = next_worker_.fetch_add(count, std::memory_order_relaxed);
    for (std::size_t i = 0; i < count; ++i) {
      Worker& w = *workers_[(start + i) % nw];
      std::lock_guard<std::mutex> lk(w.mu);
      w.deque.push_back(std::move(tasks[i]));
    }
    bumpEpoch();
  }

  /// Single-task submission through the global injector.
  void run(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> cfg(config_mu_);
      startLocked();
    }
    if (workers_.empty()) {
      task();
      return;
    }
    {
      std::lock_guard<std::mutex> lk(park_mu_);
      injector_.push_back(std::move(task));
    }
    bumpEpoch();
  }

  void stopWorkers() {
    std::lock_guard<std::mutex> cfg(config_mu_);
    stopLocked();
  }

  // Requires config_mu_ held.
  void stopLocked() {
    std::vector<std::thread> joining;
    {
      std::lock_guard<std::mutex> lk(park_mu_);
      stop_ = true;
      ++epoch_;
    }
    park_cv_.notify_all();
    joining.swap(threads_);
    for (auto& t : joining) t.join();
    workers_.clear();
    {
      std::lock_guard<std::mutex> lk(park_mu_);
      stop_ = false;
      injector_.clear();
    }
    started_ = false;
  }

  PoolStats stats() const {
    PoolStats s;
    s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.parks = parks_.load(std::memory_order_relaxed);
    s.unparks = unparks_.load(std::memory_order_relaxed);
    return s;
  }

  void resetStats() {
    tasks_executed_.store(0, std::memory_order_relaxed);
    steals_.store(0, std::memory_order_relaxed);
    parks_.store(0, std::memory_order_relaxed);
    unparks_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> deque;
  };

  // Requires config_mu_ held.
  void startLocked() {
    if (started_) return;
    workers_.reserve(static_cast<std::size_t>(target_workers_));
    for (int i = 0; i < target_workers_; ++i)
      workers_.push_back(std::make_unique<Worker>());
    for (int i = 0; i < target_workers_; ++i)
      threads_.emplace_back([this, i] { workerLoop(static_cast<std::size_t>(i)); });
    started_ = true;
  }

  void bumpEpoch() {
    {
      std::lock_guard<std::mutex> lk(park_mu_);
      ++epoch_;
    }
    park_cv_.notify_all();
  }

  bool tryGetTask(std::size_t self, std::function<void()>& out) {
    // 1. own deque, front (submission order — bands stay cache-friendly).
    {
      Worker& w = *workers_[self];
      std::lock_guard<std::mutex> lk(w.mu);
      if (!w.deque.empty()) {
        out = std::move(w.deque.front());
        w.deque.pop_front();
        return true;
      }
    }
    // 2. global injector.
    {
      std::lock_guard<std::mutex> lk(park_mu_);
      if (!injector_.empty()) {
        out = std::move(injector_.front());
        injector_.pop_front();
        return true;
      }
    }
    // 3. steal from the back of another worker's deque.
    const std::size_t nw = workers_.size();
    for (std::size_t k = 1; k < nw; ++k) {
      Worker& v = *workers_[(self + k) % nw];
      std::lock_guard<std::mutex> lk(v.mu);
      if (!v.deque.empty()) {
        out = std::move(v.deque.back());
        v.deque.pop_back();
        steals_.fetch_add(1, std::memory_order_relaxed);
        prof::instant("pool.steal");
        return true;
      }
    }
    return false;
  }

  void workerLoop(std::size_t self) {
    tls_in_worker = true;
    std::function<void()> task;
    for (;;) {
      // Record the epoch before scanning so a submission racing with the
      // scan is seen by the wait predicate instead of being lost.
      std::uint64_t seen;
      {
        std::lock_guard<std::mutex> lk(park_mu_);
        if (stop_) break;
        seen = epoch_;
      }
      if (tryGetTask(self, task)) {
        {
          SIMDCV_TRACE_SCOPE("pool.task");
          task();
        }
        task = nullptr;
        tasks_executed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::unique_lock<std::mutex> lk(park_mu_);
      if (stop_) break;
      if (epoch_ == seen) {
        const std::uint64_t park_t0 = prof::enabled() ? prof::nowNs() : 0;
        parks_.fetch_add(1, std::memory_order_relaxed);
        park_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        unparks_.fetch_add(1, std::memory_order_relaxed);
        if (park_t0 != 0)
          prof::detail::commitSpan("pool.park", prof::kNoPath, 0, park_t0,
                                   prof::nowNs());
      }
      if (stop_) break;
    }
  }

  std::mutex config_mu_;  // guards resize/start against each other
  int target_workers_ = 0;
  bool started_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> next_worker_{0};

  std::mutex park_mu_;  // guards injector_, epoch_, stop_
  std::condition_variable park_cv_;
  std::deque<std::function<void()>> injector_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;

  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> unparks_{0};
};

ThreadPool& globalPool() {
  static ThreadPool* pool = new ThreadPool();  // leaked: workers may outlive exit-time destructors
  return *pool;
}

int parseThreadCount(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return -1;  // unset: silent default
  long long v = 0;
  // Strict parse (no trailing junk, no overflow wrap): a malformed value is
  // worth one warning, not a silent fall-through to single-threaded.
  if (!platform::parseInt(text, 0, 4096, &v)) {
    std::fprintf(stderr,
                 "simdcv: ignoring SIMDCV_NUM_THREADS=\"%s\" (want an integer "
                 "in [0, 4096]); using default\n",
                 text);
    return -1;
  }
  return v == 0 ? maxHardwareThreads() : static_cast<int>(v);
}

void submitBatch(std::function<void()>* tasks, std::size_t count) {
  globalPool().submitBatch(tasks, count);
}

namespace {

// Effective thread count. -1 = not yet decided (consult env on first read).
std::atomic<int> g_num_threads{-1};

}  // namespace

}  // namespace detail

int maxHardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int getNumThreads() {
  int n = detail::g_num_threads.load(std::memory_order_relaxed);
  if (n > 0) return n;
  const int env = detail::parseThreadCount(std::getenv("SIMDCV_NUM_THREADS"));
  n = env > 0 ? env : 1;  // default: single-threaded (paper protocol)
  // First decider wins; concurrent first reads agree because the env cannot
  // change between them.
  int expected = -1;
  detail::g_num_threads.compare_exchange_strong(expected, n,
                                                std::memory_order_relaxed);
  n = detail::g_num_threads.load(std::memory_order_relaxed);
  detail::globalPool().resize(n - 1);
  return n;
}

void setNumThreads(int n) {
  if (n <= 0) n = maxHardwareThreads();
  detail::g_num_threads.store(n, std::memory_order_relaxed);
  detail::globalPool().resize(n - 1);
}

bool inWorkerThread() noexcept { return detail::tls_in_worker; }

namespace {
thread_local bool tls_inline_parallel = false;
}  // namespace

bool setInlineParallel(bool on) noexcept {
  const bool prev = tls_inline_parallel;
  tls_inline_parallel = on;
  return prev;
}

bool inlineParallel() noexcept { return tls_inline_parallel; }

void warmupPool() {
  if (getNumThreads() > 1) detail::globalPool().ensureStarted();
}

PoolStats poolStats() { return detail::globalPool().stats(); }

void resetPoolStats() { detail::globalPool().resetStats(); }

void shutdownPool() { detail::globalPool().stopWorkers(); }

}  // namespace simdcv::runtime
