// Histograms, histogram equalization and integral images — Core-module
// staples used by thresholding and feature pipelines.
#pragma once

#include <array>
#include <cstdint>

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

/// 256-bin histogram of a U8C1 image.
std::array<std::uint32_t, 256> calcHist(const Mat& src,
                                        KernelPath path = KernelPath::Default);

/// Global histogram equalization of a U8C1 image (cv::equalizeHist
/// semantics: CDF scaled over the non-zero range).
void equalizeHist(const Mat& src, Mat& dst,
                  KernelPath path = KernelPath::Default);

/// Otsu's threshold value for a U8C1 image (maximizes inter-class variance).
double otsuThreshold(const Mat& src, KernelPath path = KernelPath::Default);

/// Integral image: dst(y, x) = sum of src over [0..y) x [0..x), with the
/// conventional extra zero row/column (dst is (rows+1) x (cols+1), S32 for
/// U8 input, F64 for F32 input).
void integral(const Mat& src, Mat& dst);

/// Sum of the rectangle [x0, x1) x [y0, y1) using an integral image
/// produced by integral().
double integralRectSum(const Mat& integralImg, int x0, int y0, int x1, int y1);

}  // namespace simdcv::imgproc
