// Threshold dispatch: quantizes thresh/maxval per depth (OpenCV semantics),
// resolves the kernel path, and iterates Mat rows.
#include "imgproc/threshold.hpp"

#include "core/saturate.hpp"
#include "prof/prof.hpp"
#include "runtime/parallel.hpp"
#include "tune/tune.hpp"

namespace simdcv::imgproc {

const char* toString(ThresholdType t) noexcept {
  switch (t) {
    case ThresholdType::Binary: return "binary";
    case ThresholdType::BinaryInv: return "binary-inv";
    case ThresholdType::Trunc: return "trunc";
    case ThresholdType::ToZero: return "tozero";
    case ThresholdType::ToZeroInv: return "tozero-inv";
  }
  return "?";
}

namespace detail {

ThreshU8Fn threshU8For(KernelPath path) {
  switch (resolvePath(path)) {
    case KernelPath::Avx2: return &avx2::threshU8;
    case KernelPath::Sse2: return &sse2::threshU8;
    case KernelPath::Neon: return &neon::threshU8;
    case KernelPath::ScalarNoVec: return &novec::threshU8;
    default: return &autovec::threshU8;
  }
}

}  // namespace detail

namespace {

// Element-wise, so any row partition yields bit-identical output; bands just
// split the flat range (continuous case) or the row loop (ROI case).
template <typename T, typename Fn>
void forEachRow(const Mat& src, Mat& dst, KernelPath p, Fn fn) {
  const std::size_t n = static_cast<std::size_t>(src.cols()) * src.channels();
  const bool flat = src.isContinuous() && dst.isContinuous();
  const int heuristic = runtime::parallelThreshold(n * sizeof(T), src.rows());
  tune::GrainScope gs("threshold", p,
                      2 * static_cast<std::uint64_t>(src.rows()) * n * sizeof(T),
                      src.rows(), heuristic);
  runtime::parallel_for(
      {0, src.rows()},
      [&](runtime::Range band) {
        if (flat) {
          fn(src.ptr<T>(band.begin), dst.ptr<T>(band.begin),
             n * static_cast<std::size_t>(band.size()));
        } else {
          for (int r = band.begin; r < band.end; ++r)
            fn(src.ptr<T>(r), dst.ptr<T>(r), n);
        }
      },
      gs.grain());
}

}  // namespace

double threshold(const Mat& src, Mat& dst, double thresh, double maxval,
                 ThresholdType type, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "threshold: empty source");
  SIMDCV_REQUIRE(src.depth() == Depth::U8 || src.depth() == Depth::S16 ||
                     src.depth() == Depth::F32,
                 "threshold: supported depths are u8, s16, f32");
  const std::uint64_t bytes = 2 * static_cast<std::uint64_t>(src.rows()) *
                              src.cols() * src.elemSize();
  // Default-path requests resolve through the tuner when it is enabled (the
  // scope also times trial calls); concrete requests pass through untouched.
  tune::PathScope ps("threshold", path, bytes);
  const KernelPath p = ps.path();
  SIMDCV_TRACE_SCOPE("threshold", p, bytes);
  // Element-wise op: in-place (dst aliasing src) is safe.
  Mat out = std::move(dst);
  out.create(src.rows(), src.cols(), src.type());

  switch (src.depth()) {
    case Depth::U8: {
      // OpenCV quantization: floor the threshold, round+saturate maxval.
      const int it = cvFloor(thresh);
      const std::uint8_t imax = saturate_cast<std::uint8_t>(cvRound(maxval));
      // Degenerate thresholds: when it < 0 every pixel compares greater, when
      // it >= 255 none does — collapse to a fill or a copy (as OpenCV does).
      if (it < 0 || it >= 255) {
        const bool noneAbove = it >= 255;
        enum class Act { Fill, Copy } act = Act::Fill;
        std::uint8_t fill = 0;
        switch (type) {
          case ThresholdType::Binary: fill = noneAbove ? 0 : imax; break;
          case ThresholdType::BinaryInv: fill = noneAbove ? imax : 0; break;
          case ThresholdType::Trunc:
            // all above: dst = saturate(thresh) = 0; none above: dst = src
            if (noneAbove) act = Act::Copy;
            break;
          case ThresholdType::ToZero:
            if (!noneAbove) act = Act::Copy;
            break;
          case ThresholdType::ToZeroInv:
            if (noneAbove) act = Act::Copy;
            break;
        }
        if (act == Act::Copy) src.copyTo(out);
        else out.setTo(fill);
        dst = std::move(out);
        return it;
      }
      const std::uint8_t t8 = saturate_cast<std::uint8_t>(it);
      const detail::ThreshU8Fn fn8 = detail::threshU8For(p);
      forEachRow<std::uint8_t>(src, out, p, [&](const std::uint8_t* s,
                                                std::uint8_t* d, std::size_t n) {
        fn8(s, d, n, t8, imax, type);
      });
      dst = std::move(out);
      return it;
    }
    case Depth::S16: {
      const std::int16_t t16 = saturate_cast<std::int16_t>(cvFloor(thresh));
      const std::int16_t imax = saturate_cast<std::int16_t>(cvRound(maxval));
      forEachRow<std::int16_t>(src, out, p, [&](const std::int16_t* s,
                                                std::int16_t* d, std::size_t n) {
        if (p == KernelPath::ScalarNoVec)
          novec::threshS16(s, d, n, t16, imax, type);
        else
          autovec::threshS16(s, d, n, t16, imax, type);
      });
      dst = std::move(out);
      return t16;
    }
    case Depth::F32:
    default: {
      const float tf = static_cast<float>(thresh);
      const float mf = static_cast<float>(maxval);
      forEachRow<float>(src, out, p,
                        [&](const float* s, float* d, std::size_t n) {
        switch (p) {
          case KernelPath::Avx2: avx2::threshF32(s, d, n, tf, mf, type); break;
          case KernelPath::Sse2: sse2::threshF32(s, d, n, tf, mf, type); break;
          case KernelPath::Neon: neon::threshF32(s, d, n, tf, mf, type); break;
          case KernelPath::ScalarNoVec:
            novec::threshF32(s, d, n, tf, mf, type);
            break;
          default: autovec::threshF32(s, d, n, tf, mf, type); break;
        }
      });
      dst = std::move(out);
      return thresh;
    }
  }
}

}  // namespace simdcv::imgproc
