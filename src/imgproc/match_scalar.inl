// Scalar SAD kernel, shared autovec/novec.

#include <cstdlib>

#include "imgproc/match.hpp"

namespace simdcv::imgproc::SIMDCV_SCALAR_NS {

std::uint64_t sadRange(const std::uint8_t* a, const std::uint8_t* b,
                       std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i)
    acc += static_cast<std::uint64_t>(
        std::abs(static_cast<int>(a[i]) - static_cast<int>(b[i])));
  return acc;
}

}  // namespace simdcv::imgproc::SIMDCV_SCALAR_NS
