// Separable filter engine.
//
// Structure (per output row):
//   source row --convert-to-float--> padded row --rowConv(kx)--> intermediate
//   ring of kh intermediates --colConv(ky)--> float row --store--> dst depth
//
// Vertical border rows are materialized through the same ring ("virtual" row
// indices -ry .. rows-1+ry, mapped by borderInterpolate), so every border
// mode costs the same inner loop. All arithmetic is float32 and every
// KernelPath performs the adds in the same per-element order, which keeps the
// HAND and AUTO arms bit-exact with each other.
#include "imgproc/filter.hpp"

#include <algorithm>
#include <cmath>

#include "core/convert.hpp"
#include "core/saturate.hpp"
#include "imgproc/filter_detail.hpp"
#include "imgproc/kernels.hpp"
#include "prof/prof.hpp"
#include "runtime/parallel.hpp"
#include "tune/tune.hpp"

namespace simdcv::imgproc {

namespace detail {

RowConvFn rowConvFor(KernelPath path) {
  switch (resolvePath(path)) {
    case KernelPath::Avx2: return &avx2::rowConv;
    case KernelPath::Sse2: return &sse2::rowConv;
    case KernelPath::Neon: return &neon::rowConv;
    case KernelPath::ScalarNoVec: return &novec::rowConv;
    default: return &autovec::rowConv;
  }
}

ColConvFn colConvFor(KernelPath path) {
  switch (resolvePath(path)) {
    case KernelPath::Avx2: return &avx2::colConv;
    case KernelPath::Sse2: return &sse2::colConv;
    case KernelPath::Neon: return &neon::colConv;
    case KernelPath::ScalarNoVec: return &novec::colConv;
    default: return &autovec::colConv;
  }
}

// Convert one flat row to float using the path-matched kernel so the HAND
// arms measure their own data movement, as in OpenCV.
void loadRowPtrAsFloat(Depth depth, const void* row, float* out, std::size_t n,
                       KernelPath p) {
  if (depth == Depth::F32) {
    std::memcpy(out, row, n * sizeof(float));
    return;
  }
  const std::uint8_t* s = static_cast<const std::uint8_t*>(row);
  switch (resolvePath(p)) {
    case KernelPath::Avx2: core::avx2::cvt8u32f(s, out, n); break;
    case KernelPath::Sse2: core::sse2::cvt8u32f(s, out, n); break;
    case KernelPath::Neon: core::neon::cvt8u32f(s, out, n); break;
    case KernelPath::ScalarNoVec:
      core::novec::cvtRange(Depth::U8, Depth::F32, s, out, n);
      break;
    default: core::autovec::cvtRange(Depth::U8, Depth::F32, s, out, n); break;
  }
}

void loadRowAsFloat(const Mat& src, int row, float* out, KernelPath p) {
  loadRowPtrAsFloat(src.depth(), src.ptr<std::uint8_t>(row), out,
                    static_cast<std::size_t>(src.cols()), p);
}

// Fill the horizontal pads of `padded` (rx floats each side around `width`
// central elements already in place).
void padRow(float* padded, int width, int rx, BorderType border,
            float borderValue) {
  float* center = padded + rx;
  for (int j = 0; j < rx; ++j) {
    const int li = borderInterpolate(j - rx, width, border);
    padded[j] = li < 0 ? borderValue : center[li];
    const int ri = borderInterpolate(width + j, width, border);
    center[width + j] = ri < 0 ? borderValue : center[ri];
  }
}

CvtS16Fn cvt32f16sFor(KernelPath path) {
  switch (resolvePath(path)) {
    case KernelPath::Avx2: return &core::avx2::cvt32f16s;
    case KernelPath::Sse2: return &core::sse2::cvt32f16s;
    case KernelPath::Neon: return &core::neon::cvt32f16s;
    case KernelPath::ScalarNoVec: return &core::novec::cvt32f16s;
    default: return &core::autovec::cvt32f16s;
  }
}

void storeRowPtr(const float* row, Depth depth, void* dst, std::size_t n,
                 KernelPath p) {
  switch (depth) {
    case Depth::F32:
      std::memcpy(dst, row, n * sizeof(float));
      break;
    case Depth::S16:
      cvt32f16sFor(p)(row, static_cast<std::int16_t*>(dst), n);
      break;
    case Depth::U8:
    default: {
      std::uint8_t* d = static_cast<std::uint8_t*>(dst);
      switch (resolvePath(p)) {
        case KernelPath::Avx2: core::avx2::cvt32f8u(row, d, n); break;
        case KernelPath::Sse2: core::sse2::cvt32f8u(row, d, n); break;
        case KernelPath::Neon: core::neon::cvt32f8u(row, d, n); break;
        case KernelPath::ScalarNoVec:
          core::novec::cvtRange(Depth::F32, Depth::U8, row, d, n);
          break;
        default:
          core::autovec::cvtRange(Depth::F32, Depth::U8, row, d, n);
          break;
      }
      break;
    }
  }
}

void storeRow(const float* row, Mat& dst, int y, KernelPath p) {
  storeRowPtr(row, dst.depth(), dst.ptr<std::uint8_t>(y),
              static_cast<std::size_t>(dst.cols()), p);
}

}  // namespace detail

namespace {

using detail::loadRowAsFloat;
using detail::padRow;
using detail::storeRow;

}  // namespace

void sepFilter2D(const Mat& src, Mat& dst, Depth ddepth,
                 const std::vector<float>& kx, const std::vector<float>& ky,
                 BorderType border, double borderValue, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "sepFilter2D: empty source");
  SIMDCV_REQUIRE(src.channels() == 1, "sepFilter2D: single channel only");
  SIMDCV_REQUIRE(src.depth() == Depth::U8 || src.depth() == Depth::F32,
                 "sepFilter2D: source depth must be u8 or f32");
  SIMDCV_REQUIRE(ddepth == Depth::U8 || ddepth == Depth::S16 ||
                     ddepth == Depth::F32,
                 "sepFilter2D: dst depth must be u8, s16 or f32");
  SIMDCV_REQUIRE(!kx.empty() && !ky.empty() && (kx.size() & 1) && (ky.size() & 1),
                 "sepFilter2D: kernels must have odd length");
  const int kw = static_cast<int>(kx.size());
  const int kh = static_cast<int>(ky.size());
  const int rx = kw / 2;
  const int ry = kh / 2;
  const int rows = src.rows();
  const int width = src.cols();
  SIMDCV_REQUIRE(border != BorderType::Wrap || (rows >= 1 && width >= 1),
                 "sepFilter2D: wrap border needs non-empty image");

  const KernelPath p = resolvePath(path);
  SIMDCV_TRACE_SCOPE("sepFilter2D", p,
                     static_cast<std::uint64_t>(rows) * width *
                         (src.elemSize() + depthSize(ddepth)));
  const auto rowFn = detail::rowConvFor(p);
  const auto colFn = detail::colConvFor(p);

  // The source may alias dst; the engine reads src rows lazily, so writing
  // into the same storage would corrupt later reads. Detach in that case.
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(rows, width, PixelType(ddepth, 1));

  const float bv = static_cast<float>(borderValue);

  // Intermediate for a fully-constant (out-of-image) row under Constant
  // border: row-convolve a border-valued padded row once; shared read-only
  // by every band.
  std::vector<float> constRow;
  if (border == BorderType::Constant) {
    std::vector<float> borderPad(static_cast<std::size_t>(width + kw - 1), bv);
    constRow.resize(static_cast<std::size_t>(width));
    rowFn(borderPad.data(), constRow.data(), width, kx.data(), kw);
  }

  // One ring-buffer engine instance per band. Every virtual source row is
  // recomputed through the identical load/pad/rowFn sequence regardless of
  // which band needs it, and each output row is produced by the same colFn
  // tap order — so a banded run is bit-identical to the serial one; bands
  // merely recompute the ry overlap rows at their seams.
  auto processBand = [&](runtime::Range bandRows) {
    std::vector<float> padded(static_cast<std::size_t>(width + kw - 1));
    std::vector<float> ring(static_cast<std::size_t>(kh) *
                            static_cast<std::size_t>(width));
    std::vector<float> outRow(static_cast<std::size_t>(width));
    std::vector<const float*> taps(static_cast<std::size_t>(kh));

    auto slot = [&](int v) {
      // Virtual row v occupies ring slot (v + ry) mod kh (always >= 0 once
      // biased by ry; v >= -ry always holds here).
      return ring.data() +
             static_cast<std::size_t>((v + ry) % kh) * static_cast<std::size_t>(width);
    };

    auto computeVirtualRow = [&](int v) {
      const int m = borderInterpolate(v, rows, border);
      if (m < 0) {
        std::memcpy(slot(v), constRow.data(),
                    static_cast<std::size_t>(width) * sizeof(float));
        return;
      }
      loadRowAsFloat(src, m, padded.data() + rx, p);
      padRow(padded.data(), width, rx, border, bv);
      rowFn(padded.data(), slot(v), width, kx.data(), kw);
    };

    // Prime the ring with the rows needed for the band's first output row.
    for (int v = bandRows.begin - ry; v < bandRows.begin + ry; ++v)
      computeVirtualRow(v);
    for (int y = bandRows.begin; y < bandRows.end; ++y) {
      computeVirtualRow(y + ry);
      for (int r = 0; r < kh; ++r)
        taps[static_cast<std::size_t>(r)] = slot(y - ry + r);
      colFn(taps.data(), outRow.data(), width, ky.data(), kh);
      storeRow(outRow.data(), out, y, p);
    }
  };

  // Each output row costs ~kw multiplies horizontally plus kh taps
  // vertically over float32 rows; keep bands tall enough to amortize both
  // the fork and the ry-row seam recomputation. Bands are bit-exact (seam
  // rows recompute), so the grain is tunable around the heuristic.
  const int heuristic =
      std::max(runtime::parallelThreshold(
                   static_cast<std::size_t>(width) * sizeof(float), rows,
                   static_cast<double>(kw + kh)),
               kh);
  tune::GrainScope gs("sepFilter2D", p,
                      static_cast<std::uint64_t>(rows) * width *
                          (src.elemSize() + depthSize(ddepth)),
                      rows, heuristic);
  runtime::parallel_for({0, rows}, processBand, gs.grain());
  dst = std::move(out);
}

void GaussianBlur(const Mat& src, Mat& dst, Size ksize, double sigmaX,
                  double sigmaY, BorderType border, KernelPath path) {
  if (sigmaY <= 0) sigmaY = sigmaX;
  int kw = ksize.width;
  int kh = ksize.height;
  if (kw <= 0) kw = gaussianKsizeFromSigma(sigmaX);
  if (kh <= 0) kh = gaussianKsizeFromSigma(sigmaY);
  SIMDCV_REQUIRE((kw & 1) && (kh & 1), "GaussianBlur: ksize must be odd");
  const auto kx = getGaussianKernel(kw, sigmaX);
  const auto ky = getGaussianKernel(kh, sigmaY);
  sepFilter2D(src, dst, src.depth(), kx, ky, border, 0.0, path);
}

void Sobel(const Mat& src, Mat& dst, Depth ddepth, int dx, int dy, int ksize,
           double scale, BorderType border, KernelPath path) {
  SIMDCV_REQUIRE(dx >= 0 && dy >= 0 && dx + dy > 0,
                 "Sobel: need at least one derivative order");
  std::vector<float> kx, ky;
  getDerivKernels(kx, ky, dx, dy, ksize, /*normalize=*/false);
  if (scale != 1.0) {
    for (auto& v : kx) v = static_cast<float>(v * scale);
  }
  sepFilter2D(src, dst, ddepth, kx, ky, border, 0.0, path);
}

void Scharr(const Mat& src, Mat& dst, Depth ddepth, int dx, int dy,
            double scale, BorderType border, KernelPath path) {
  SIMDCV_REQUIRE((dx == 1 && dy == 0) || (dx == 0 && dy == 1),
                 "Scharr: (dx,dy) must be (1,0) or (0,1)");
  std::vector<float> kx = getScharrKernel(dx);
  std::vector<float> ky = getScharrKernel(dy);
  if (scale != 1.0) {
    for (auto& v : kx) v = static_cast<float>(v * scale);
  }
  sepFilter2D(src, dst, ddepth, kx, ky, border, 0.0, path);
}

void filter2D(const Mat& src, Mat& dst, Depth ddepth,
              const std::vector<float>& kernel, int kw, int kh,
              BorderType border, double borderValue) {
  SIMDCV_REQUIRE(!src.empty(), "filter2D: empty source");
  SIMDCV_REQUIRE(src.channels() == 1, "filter2D: single channel only");
  SIMDCV_REQUIRE(src.depth() == Depth::U8 || src.depth() == Depth::F32,
                 "filter2D: source depth must be u8 or f32");
  SIMDCV_REQUIRE(kernel.size() == static_cast<std::size_t>(kw) * kh &&
                     (kw & 1) && (kh & 1),
                 "filter2D: kernel must be odd-sized kw*kh");
  const int rows = src.rows();
  const int cols = src.cols();
  const int rx = kw / 2;
  const int ry = kh / 2;
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(rows, cols, PixelType(ddepth, 1));

  auto sample = [&](int y, int x) -> float {
    const int my = borderInterpolate(y, rows, border);
    const int mx = borderInterpolate(x, cols, border);
    if (my < 0 || mx < 0) return static_cast<float>(borderValue);
    return src.depth() == Depth::U8
               ? static_cast<float>(src.at<std::uint8_t>(my, mx))
               : src.at<float>(my, mx);
  };

  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      float acc = 0.0f;
      for (int j = 0; j < kh; ++j)
        for (int i = 0; i < kw; ++i)
          acc += kernel[static_cast<std::size_t>(j) * kw + i] *
                 sample(y + j - ry, x + i - rx);
      switch (ddepth) {
        case Depth::U8: out.at<std::uint8_t>(y, x) = saturate_cast<std::uint8_t>(acc); break;
        case Depth::S16: out.at<std::int16_t>(y, x) = saturate_cast<std::int16_t>(acc); break;
        default: out.at<float>(y, x) = acc; break;
      }
    }
  }
  dst = std::move(out);
}

}  // namespace simdcv::imgproc
