// Harris corner response — the gradient-autocorrelation complement to the
// FAST segment test: R = det(M) - k * trace(M)^2 over a smoothed structure
// tensor M = sum_w [Ix^2 IxIy; IxIy Iy^2]. Composed entirely from the
// library's Sobel + box-filter substrates.
#pragma once

#include <vector>

#include "core/mat.hpp"
#include "imgproc/fast.hpp"  // KeyPoint
#include "simd/features.hpp"

namespace simdcv::imgproc {

/// Dense Harris response map (F32C1) of a U8C1 image.
/// blockSize: structure-tensor window; apertureSize: Sobel kernel; k: the
/// Harris constant (typically 0.04-0.06).
void cornerHarris(const Mat& src, Mat& response, int blockSize = 3,
                  int apertureSize = 3, double k = 0.04,
                  KernelPath path = KernelPath::Default);

/// Corners = local maxima of the Harris response above
/// `qualityLevel * max(response)`, greedily spaced at least `minDistance`
/// apart, strongest first (goodFeaturesToTrack-style).
std::vector<KeyPoint> harrisCorners(const Mat& src, int maxCorners = 100,
                                    double qualityLevel = 0.01,
                                    double minDistance = 5.0,
                                    KernelPath path = KernelPath::Default);

}  // namespace simdcv::imgproc
