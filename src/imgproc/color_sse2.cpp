// Hand-written x86 BGR->Gray kernel.
//
// SSE2 has no byte shuffle, so the channel deinterleave uses SSSE3 PSHUFB
// (present on every platform in the paper's Table I — Atom Bonnell and
// Core 2 both ship SSSE3): nine shuffles + six ORs split 48 interleaved
// bytes into three 16-byte planes, the x86 counterpart of NEON's single
// vld3 instruction. The weighted sum runs at full 14-bit fixed-point
// precision with PMADDWD — bit-exact with the scalar kernel. Hosts without
// SSSE3 (none in practice) fall back to the scalar arm at run time.
//
// This TU is compiled with -mssse3; the guard below keeps execution legal
// on SSE2-only CPUs.
#include "imgproc/color.hpp"

#if defined(__SSSE3__)

#include <tmmintrin.h>

namespace simdcv::imgproc::sse2 {

namespace {

struct Planes {
  __m128i b, g, r;
};

// Deinterleave 48 bytes (16 BGR pixels) into per-channel registers.
inline Planes deinterleaveBgr(const std::uint8_t* p) {
  const __m128i c0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i c1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  const __m128i c2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
  const char Z = static_cast<char>(0x80);  // pshufb zeroing index

  const __m128i b0 = _mm_shuffle_epi8(
      c0, _mm_setr_epi8(0, 3, 6, 9, 12, 15, Z, Z, Z, Z, Z, Z, Z, Z, Z, Z));
  const __m128i b1 = _mm_shuffle_epi8(
      c1, _mm_setr_epi8(Z, Z, Z, Z, Z, Z, 2, 5, 8, 11, 14, Z, Z, Z, Z, Z));
  const __m128i b2 = _mm_shuffle_epi8(
      c2, _mm_setr_epi8(Z, Z, Z, Z, Z, Z, Z, Z, Z, Z, Z, 1, 4, 7, 10, 13));

  const __m128i g0 = _mm_shuffle_epi8(
      c0, _mm_setr_epi8(1, 4, 7, 10, 13, Z, Z, Z, Z, Z, Z, Z, Z, Z, Z, Z));
  const __m128i g1 = _mm_shuffle_epi8(
      c1, _mm_setr_epi8(Z, Z, Z, Z, Z, 0, 3, 6, 9, 12, 15, Z, Z, Z, Z, Z));
  const __m128i g2 = _mm_shuffle_epi8(
      c2, _mm_setr_epi8(Z, Z, Z, Z, Z, Z, Z, Z, Z, Z, Z, 2, 5, 8, 11, 14));

  const __m128i r0 = _mm_shuffle_epi8(
      c0, _mm_setr_epi8(2, 5, 8, 11, 14, Z, Z, Z, Z, Z, Z, Z, Z, Z, Z, Z));
  const __m128i r1 = _mm_shuffle_epi8(
      c1, _mm_setr_epi8(Z, Z, Z, Z, Z, 1, 4, 7, 10, 13, Z, Z, Z, Z, Z, Z));
  const __m128i r2 = _mm_shuffle_epi8(
      c2, _mm_setr_epi8(Z, Z, Z, Z, Z, Z, Z, Z, Z, Z, 0, 3, 6, 9, 12, 15));

  return {_mm_or_si128(b0, _mm_or_si128(b1, b2)),
          _mm_or_si128(g0, _mm_or_si128(g1, g2)),
          _mm_or_si128(r0, _mm_or_si128(r1, r2))};
}

}  // namespace

void bgr2grayU8(const std::uint8_t* bgr, std::uint8_t* gray, std::size_t n,
                bool rgbOrder) {
  if (!cpuFeatures().ssse3) {  // legality guard for pre-2006 CPUs
    autovec::bgr2grayU8(bgr, gray, n, rgbOrder);
    return;
  }
  const short cb = rgbOrder ? 4899 : 1868;
  const short cr = rgbOrder ? 1868 : 4899;
  const __m128i coefBG = _mm_set_epi16(9617, cb, 9617, cb, 9617, cb, 9617, cb);
  const __m128i coefR1 = _mm_set_epi16(1, cr, 1, cr, 1, cr, 1, cr);
  const __m128i rnd = _mm_set1_epi16(static_cast<short>(1 << 13));
  const __m128i zero = _mm_setzero_si128();

  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const Planes px = deinterleaveBgr(bgr + 3 * i);
    __m128i out16[2];
    for (int half = 0; half < 2; ++half) {
      const __m128i b16 = half ? _mm_unpackhi_epi8(px.b, zero)
                               : _mm_unpacklo_epi8(px.b, zero);
      const __m128i g16 = half ? _mm_unpackhi_epi8(px.g, zero)
                               : _mm_unpacklo_epi8(px.g, zero);
      const __m128i r16 = half ? _mm_unpackhi_epi8(px.r, zero)
                               : _mm_unpacklo_epi8(px.r, zero);
      // (b,g) pairs * (cb, 9617) plus (r, 8192) pairs * (cr, 1), summed as
      // 32-bit lanes by PMADDWD.
      const __m128i bgLo = _mm_unpacklo_epi16(b16, g16);
      const __m128i bgHi = _mm_unpackhi_epi16(b16, g16);
      const __m128i rcLo = _mm_unpacklo_epi16(r16, rnd);
      const __m128i rcHi = _mm_unpackhi_epi16(r16, rnd);
      const __m128i lo = _mm_srai_epi32(
          _mm_add_epi32(_mm_madd_epi16(bgLo, coefBG), _mm_madd_epi16(rcLo, coefR1)),
          14);
      const __m128i hi = _mm_srai_epi32(
          _mm_add_epi32(_mm_madd_epi16(bgHi, coefBG), _mm_madd_epi16(rcHi, coefR1)),
          14);
      out16[half] = _mm_packs_epi32(lo, hi);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(gray + i),
                     _mm_packus_epi16(out16[0], out16[1]));
  }
  if (i < n) autovec::bgr2grayU8(bgr + 3 * i, gray + i, n - i, rgbOrder);
}

}  // namespace simdcv::imgproc::sse2

#else

namespace simdcv::imgproc::sse2 {
void bgr2grayU8(const std::uint8_t* bgr, std::uint8_t* gray, std::size_t n,
                bool rgbOrder) {
  autovec::bgr2grayU8(bgr, gray, n, rgbOrder);
}
}  // namespace simdcv::imgproc::sse2

#endif
