// Median filtering — the highest-leverage NEON kernel in the paper's related
// work (23x for median blur on Tegra 3 [23]), because a 3x3 median is a
// branch-free min/max sorting network that maps perfectly onto vmin/vmax.
#pragma once

#include <cstdint>

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

/// Median blur of a U8C1 image. ksize must be 3 or 5. Border: replicate.
void medianBlur(const Mat& src, Mat& dst, int ksize = 3,
                KernelPath path = KernelPath::Default);

}  // namespace simdcv::imgproc
