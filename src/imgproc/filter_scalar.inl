// Scalar row/column convolution workers, shared between the autovec and
// novec translation units (SIMDCV_SCALAR_NS selects the namespace).
// These are the loops the compiler auto-vectorizes in the paper's AUTO arm.

#include "imgproc/filter.hpp"

namespace simdcv::imgproc::SIMDCV_SCALAR_NS {

void rowConv(const float* padded, float* out, int width, const float* k,
             int ksize) {
  for (int i = 0; i < width; ++i) {
    float acc = 0.0f;
    for (int j = 0; j < ksize; ++j) acc += k[j] * padded[i + j];
    out[i] = acc;
  }
}

void colConv(const float* const* rows, float* out, int width, const float* k,
             int ksize) {
  for (int i = 0; i < width; ++i) {
    float acc = 0.0f;
    for (int r = 0; r < ksize; ++r) acc += k[r] * rows[r][i];
    out[i] = acc;
  }
}

}  // namespace simdcv::imgproc::SIMDCV_SCALAR_NS
