// Two-pass connected components with path-compressed union-find.
#include "imgproc/connected.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace simdcv::imgproc {

namespace {

class UnionFind {
 public:
  int makeSet() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return parent_.back();
  }
  int find(int a) {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(a)])];
      a = parent_[static_cast<std::size_t>(a)];
    }
    return a;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }
  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<int> parent_;
};

}  // namespace

int connectedComponents(const Mat& binary, Mat& labels, Connectivity conn) {
  SIMDCV_REQUIRE(!binary.empty(), "connectedComponents: empty source");
  SIMDCV_REQUIRE(binary.type() == U8C1, "connectedComponents: u8c1 only");
  const int rows = binary.rows(), cols = binary.cols();
  Mat out = std::move(labels);
  out.create(rows, cols, S32C1);
  out.setZero();

  UnionFind uf;
  uf.makeSet();  // slot 0 = background

  // Pass 1: provisional labels, merging with left / up (/ diagonal) hits.
  for (int y = 0; y < rows; ++y) {
    const std::uint8_t* src = binary.ptr<std::uint8_t>(y);
    std::int32_t* lab = out.ptr<std::int32_t>(y);
    const std::int32_t* up = y > 0 ? out.ptr<std::int32_t>(y - 1) : nullptr;
    for (int x = 0; x < cols; ++x) {
      if (!src[x]) continue;
      int neighbours[4];
      int nn = 0;
      if (x > 0 && lab[x - 1]) neighbours[nn++] = lab[x - 1];
      if (up) {
        if (up[x]) neighbours[nn++] = up[x];
        if (conn == Connectivity::Eight) {
          if (x > 0 && up[x - 1]) neighbours[nn++] = up[x - 1];
          if (x + 1 < cols && up[x + 1]) neighbours[nn++] = up[x + 1];
        }
      }
      if (nn == 0) {
        lab[x] = uf.makeSet();
      } else {
        int m = neighbours[0];
        for (int i = 1; i < nn; ++i) m = std::min(m, neighbours[i]);
        lab[x] = m;
        for (int i = 0; i < nn; ++i) uf.unite(m, neighbours[i]);
      }
    }
  }

  // Pass 2: flatten the forest and renumber roots densely in scan order.
  std::vector<std::int32_t> dense(uf.size(), 0);
  int next = 0;
  for (int y = 0; y < rows; ++y) {
    std::int32_t* lab = out.ptr<std::int32_t>(y);
    for (int x = 0; x < cols; ++x) {
      if (!lab[x]) continue;
      const int root = uf.find(lab[x]);
      if (!dense[static_cast<std::size_t>(root)])
        dense[static_cast<std::size_t>(root)] = ++next;
      lab[x] = dense[static_cast<std::size_t>(root)];
    }
  }
  labels = std::move(out);
  return next;
}

int connectedComponentsWithStats(const Mat& binary, Mat& labels,
                                 std::vector<ComponentStats>& stats,
                                 Connectivity conn) {
  const int n = connectedComponents(binary, labels, conn);
  stats.assign(static_cast<std::size_t>(n), ComponentStats{});
  std::vector<long long> sx(static_cast<std::size_t>(n), 0);
  std::vector<long long> sy(static_cast<std::size_t>(n), 0);
  std::vector<int> minx(static_cast<std::size_t>(n), labels.cols());
  std::vector<int> miny(static_cast<std::size_t>(n), labels.rows());
  std::vector<int> maxx(static_cast<std::size_t>(n), -1);
  std::vector<int> maxy(static_cast<std::size_t>(n), -1);
  for (int y = 0; y < labels.rows(); ++y) {
    const std::int32_t* lab = labels.ptr<std::int32_t>(y);
    for (int x = 0; x < labels.cols(); ++x) {
      if (!lab[x]) continue;
      const auto i = static_cast<std::size_t>(lab[x] - 1);
      ++stats[i].area;
      sx[i] += x;
      sy[i] += y;
      minx[i] = std::min(minx[i], x);
      miny[i] = std::min(miny[i], y);
      maxx[i] = std::max(maxx[i], x);
      maxy[i] = std::max(maxy[i], y);
    }
  }
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    stats[ui].label = i + 1;
    stats[ui].bbox = Rect(minx[ui], miny[ui], maxx[ui] - minx[ui] + 1,
                          maxy[ui] - miny[ui] + 1);
    stats[ui].centroid_x = static_cast<double>(sx[ui]) / stats[ui].area;
    stats[ui].centroid_y = static_cast<double>(sy[ui]) / stats[ui].area;
  }
  return n;
}

}  // namespace simdcv::imgproc
