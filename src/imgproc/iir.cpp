#include "imgproc/iir.hpp"

#include <vector>

#include "imgproc/geometry.hpp"
#include "simd/neon_compat.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace simdcv::imgproc {

namespace {

void checkInput(const Mat& src, float alpha, const char* what) {
  SIMDCV_REQUIRE(!src.empty(), std::string(what) + ": empty source");
  SIMDCV_REQUIRE(src.type() == F32C1, std::string(what) + ": f32c1 only");
  SIMDCV_REQUIRE(alpha > 0.0f && alpha <= 1.0f,
                 std::string(what) + ": alpha must be in (0, 1]");
}

void hRowScalar(const float* s, float* d, int n, float alpha) {
  float y = s[0];
  const float beta = 1.0f - alpha;
  d[0] = y;
  for (int x = 1; x < n; ++x) {
    y = alpha * s[x] + beta * y;
    d[x] = y;
  }
}

#if defined(__SSE2__)
// Four independent row recurrences in the four lanes of one register: the
// serial dependency chain still costs one FMA-latency per step, but it now
// produces four pixels instead of one.
void hRows4Sse2(const float* const s[4], float* const d[4], int n,
                float alpha) {
  const __m128 va = _mm_set1_ps(alpha);
  const __m128 vb = _mm_set1_ps(1.0f - alpha);
  __m128 y = _mm_set_ps(s[3][0], s[2][0], s[1][0], s[0][0]);
  alignas(16) float lanes[4];
  _mm_store_ps(lanes, y);
  for (int r = 0; r < 4; ++r) d[r][0] = lanes[r];
  for (int x = 1; x < n; ++x) {
    const __m128 vx = _mm_set_ps(s[3][x], s[2][x], s[1][x], s[0][x]);
    y = _mm_add_ps(_mm_mul_ps(va, vx), _mm_mul_ps(vb, y));
    _mm_store_ps(lanes, y);
    for (int r = 0; r < 4; ++r) d[r][x] = lanes[r];
  }
}
#endif

void hRows4Neon(const float* const s[4], float* const d[4], int n,
                float alpha) {
  const float beta = 1.0f - alpha;
  float32x4_t y = {s[0][0], s[1][0], s[2][0], s[3][0]};
  for (int r = 0; r < 4; ++r) d[r][0] = vgetq_lane_f32(y, r);
  for (int x = 1; x < n; ++x) {
    const float32x4_t vx = {s[0][x], s[1][x], s[2][x], s[3][x]};
    y = vmlaq_n_f32(vmulq_n_f32(vx, alpha), y, beta);
    for (int r = 0; r < 4; ++r) d[r][x] = vgetq_lane_f32(y, r);
  }
}

void vColsScalar(const Mat& src, Mat& dst, float alpha) {
  const int rows = src.rows(), cols = src.cols();
  const float beta = 1.0f - alpha;
  std::memcpy(dst.ptr<float>(0), src.ptr<float>(0),
              static_cast<std::size_t>(cols) * sizeof(float));
  for (int y = 1; y < rows; ++y) {
    const float* s = src.ptr<float>(y);
    const float* prev = dst.ptr<float>(y - 1);
    float* d = dst.ptr<float>(y);
    for (int x = 0; x < cols; ++x) d[x] = alpha * s[x] + beta * prev[x];
  }
}

#if defined(__SSE2__)
void vColsSse2(const Mat& src, Mat& dst, float alpha) {
  const int rows = src.rows(), cols = src.cols();
  const __m128 va = _mm_set1_ps(alpha);
  const __m128 vb = _mm_set1_ps(1.0f - alpha);
  std::memcpy(dst.ptr<float>(0), src.ptr<float>(0),
              static_cast<std::size_t>(cols) * sizeof(float));
  for (int y = 1; y < rows; ++y) {
    const float* s = src.ptr<float>(y);
    const float* prev = dst.ptr<float>(y - 1);
    float* d = dst.ptr<float>(y);
    int x = 0;
    for (; x + 4 <= cols; x += 4) {
      _mm_storeu_ps(d + x, _mm_add_ps(_mm_mul_ps(va, _mm_loadu_ps(s + x)),
                                      _mm_mul_ps(vb, _mm_loadu_ps(prev + x))));
    }
    for (; x < cols; ++x)
      d[x] = alpha * s[x] + (1.0f - alpha) * prev[x];
  }
}
#endif

void vColsNeon(const Mat& src, Mat& dst, float alpha) {
  const int rows = src.rows(), cols = src.cols();
  const float beta = 1.0f - alpha;
  std::memcpy(dst.ptr<float>(0), src.ptr<float>(0),
              static_cast<std::size_t>(cols) * sizeof(float));
  for (int y = 1; y < rows; ++y) {
    const float* s = src.ptr<float>(y);
    const float* prev = dst.ptr<float>(y - 1);
    float* d = dst.ptr<float>(y);
    int x = 0;
    for (; x + 4 <= cols; x += 4) {
      const float32x4_t r =
          vmlaq_n_f32(vmulq_n_f32(vld1q_f32(s + x), alpha), vld1q_f32(prev + x), beta);
      vst1q_f32(d + x, r);
    }
    for (; x < cols; ++x) d[x] = alpha * s[x] + beta * prev[x];
  }
}

}  // namespace

void iirSmoothHorizontal(const Mat& src, Mat& dst, float alpha,
                         KernelPath path) {
  checkInput(src, alpha, "iirSmoothHorizontal");
  const KernelPath p = resolvePath(path);
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(src.rows(), src.cols(), F32C1);
  const int rows = src.rows(), cols = src.cols();
  int y = 0;
  const bool simd4 = (p == KernelPath::Sse2 || p == KernelPath::Avx2 ||
                      p == KernelPath::Neon) &&
                     cols > 0;
  if (simd4) {
    for (; y + 4 <= rows; y += 4) {
      const float* s[4];
      float* d[4];
      for (int r = 0; r < 4; ++r) {
        s[r] = src.ptr<float>(y + r);
        d[r] = out.ptr<float>(y + r);
      }
#if defined(__SSE2__)
      if (p != KernelPath::Neon) {
        hRows4Sse2(s, d, cols, alpha);
        continue;
      }
#endif
      hRows4Neon(s, d, cols, alpha);
    }
  }
  for (; y < rows; ++y)
    hRowScalar(src.ptr<float>(y), out.ptr<float>(y), cols, alpha);
  dst = std::move(out);
}

void iirSmoothVertical(const Mat& src, Mat& dst, float alpha,
                       KernelPath path) {
  checkInput(src, alpha, "iirSmoothVertical");
  const KernelPath p = resolvePath(path);
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(src.rows(), src.cols(), F32C1);
  switch (p) {
#if defined(__SSE2__)
    case KernelPath::Avx2:
    case KernelPath::Sse2: vColsSse2(src, out, alpha); break;
#endif
    case KernelPath::Neon: vColsNeon(src, out, alpha); break;
    default: vColsScalar(src, out, alpha); break;
  }
  dst = std::move(out);
}

void iirSmooth2D(const Mat& src, Mat& dst, float alpha, KernelPath path) {
  checkInput(src, alpha, "iirSmooth2D");
  Mat fwd, flipped, bwd;
  iirSmoothHorizontal(src, fwd, alpha, path);
  flip(fwd, flipped, FlipAxis::Horizontal);
  iirSmoothHorizontal(flipped, bwd, alpha, path);
  flip(bwd, fwd, FlipAxis::Horizontal);
  Mat vfwd, vflip, vbwd;
  iirSmoothVertical(fwd, vfwd, alpha, path);
  flip(vfwd, vflip, FlipAxis::Vertical);
  iirSmoothVertical(vflip, vbwd, alpha, path);
  flip(vbwd, dst, FlipAxis::Vertical);
}

}  // namespace simdcv::imgproc
