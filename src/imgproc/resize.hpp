// Image resizing (nearest neighbour and bilinear) — another routine the
// paper's related work reports large NEON gains for (7.6x on Tegra 3 [23]).
//
// Bilinear follows OpenCV's INTER_LINEAR sampling: source coordinate
// sx = (dx + 0.5) * scale - 0.5, with edge clamping. U8 uses fixed-point
// weights (11 bits, like OpenCV's resize) so all paths are bit-exact; F32
// interpolates in float.
#pragma once

#include <cstdint>

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

enum class Interp : std::uint8_t { Nearest, Linear };

/// Resize src to `dsize` (both dimensions > 0). U8 C1/C3 and F32 C1.
void resize(const Mat& src, Mat& dst, Size dsize,
            Interp interp = Interp::Linear,
            KernelPath path = KernelPath::Default);

}  // namespace simdcv::imgproc
