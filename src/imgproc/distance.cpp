#include "imgproc/distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace simdcv::imgproc {

void distanceTransform(const Mat& binary, Mat& dist, DistanceMetric metric) {
  SIMDCV_REQUIRE(!binary.empty(), "distanceTransform: empty source");
  SIMDCV_REQUIRE(binary.type() == U8C1, "distanceTransform: u8c1 only");
  const int rows = binary.rows(), cols = binary.cols();
  // Chamfer weights (scaled by 3 internally for the 3-4 metric).
  const float a = metric == DistanceMetric::L1 ? 1.0f : 1.0f;        // axial
  const float b = metric == DistanceMetric::L1 ? 2.0f : 4.0f / 3.0f; // diagonal

  Mat out = std::move(dist);
  out.create(rows, cols, F32C1);
  const float inf = std::numeric_limits<float>::infinity();
  for (int y = 0; y < rows; ++y) {
    const std::uint8_t* s = binary.ptr<std::uint8_t>(y);
    float* d = out.ptr<float>(y);
    for (int x = 0; x < cols; ++x) d[x] = s[x] ? inf : 0.0f;
  }

  // Forward pass: top-left -> bottom-right.
  for (int y = 0; y < rows; ++y) {
    float* d = out.ptr<float>(y);
    const float* up = y > 0 ? out.ptr<float>(y - 1) : nullptr;
    for (int x = 0; x < cols; ++x) {
      float v = d[x];
      if (x > 0) v = std::min(v, d[x - 1] + a);
      if (up) {
        v = std::min(v, up[x] + a);
        if (metric == DistanceMetric::Chamfer || metric == DistanceMetric::L1) {
          if (x > 0) v = std::min(v, up[x - 1] + b);
          if (x + 1 < cols) v = std::min(v, up[x + 1] + b);
        }
      }
      d[x] = v;
    }
  }
  // Backward pass: bottom-right -> top-left.
  for (int y = rows - 1; y >= 0; --y) {
    float* d = out.ptr<float>(y);
    const float* dn = y + 1 < rows ? out.ptr<float>(y + 1) : nullptr;
    for (int x = cols - 1; x >= 0; --x) {
      float v = d[x];
      if (x + 1 < cols) v = std::min(v, d[x + 1] + a);
      if (dn) {
        v = std::min(v, dn[x] + a);
        if (x + 1 < cols) v = std::min(v, dn[x + 1] + b);
        if (x > 0) v = std::min(v, dn[x - 1] + b);
      }
      d[x] = v;
    }
  }
  dist = std::move(out);
}

std::vector<HoughLine> houghLines(const Mat& edges, double rhoStep,
                                  double thetaStep, int threshold) {
  SIMDCV_REQUIRE(!edges.empty(), "houghLines: empty source");
  SIMDCV_REQUIRE(edges.type() == U8C1, "houghLines: u8c1 only");
  SIMDCV_REQUIRE(rhoStep > 0 && thetaStep > 0, "houghLines: bad steps");
  SIMDCV_REQUIRE(threshold >= 1, "houghLines: threshold >= 1");
  const int rows = edges.rows(), cols = edges.cols();
  const double maxRho = std::hypot(rows, cols);
  const int nRho = 2 * static_cast<int>(std::ceil(maxRho / rhoStep)) + 1;
  const int rhoOffset = nRho / 2;
  const int nTheta = std::max(1, static_cast<int>(std::round(M_PI / thetaStep)));

  // Precompute the trig table.
  std::vector<double> cosT(static_cast<std::size_t>(nTheta));
  std::vector<double> sinT(static_cast<std::size_t>(nTheta));
  for (int t = 0; t < nTheta; ++t) {
    cosT[static_cast<std::size_t>(t)] = std::cos(t * thetaStep);
    sinT[static_cast<std::size_t>(t)] = std::sin(t * thetaStep);
  }

  std::vector<int> acc(static_cast<std::size_t>(nRho) * nTheta, 0);
  auto at = [&](int r, int t) -> int& {
    return acc[static_cast<std::size_t>(r) * nTheta + t];
  };
  for (int y = 0; y < rows; ++y) {
    const std::uint8_t* e = edges.ptr<std::uint8_t>(y);
    for (int x = 0; x < cols; ++x) {
      if (!e[x]) continue;
      for (int t = 0; t < nTheta; ++t) {
        const double rho = x * cosT[static_cast<std::size_t>(t)] +
                           y * sinT[static_cast<std::size_t>(t)];
        const int r = static_cast<int>(std::lround(rho / rhoStep)) + rhoOffset;
        if (r >= 0 && r < nRho) ++at(r, t);
      }
    }
  }

  // Peaks: above threshold and 3x3 local maximum in (rho, theta).
  std::vector<HoughLine> lines;
  for (int r = 0; r < nRho; ++r) {
    for (int t = 0; t < nTheta; ++t) {
      const int v = at(r, t);
      if (v < threshold) continue;
      bool isMax = true;
      for (int dr = -1; dr <= 1 && isMax; ++dr) {
        for (int dt = -1; dt <= 1; ++dt) {
          if (dr == 0 && dt == 0) continue;
          const int rr = r + dr;
          const int tt = (t + dt + nTheta) % nTheta;  // theta wraps
          if (rr < 0 || rr >= nRho) continue;
          if (at(rr, tt) > v ||
              (at(rr, tt) == v && (dr < 0 || (dr == 0 && dt < 0)))) {
            isMax = false;
            break;
          }
        }
      }
      if (!isMax) continue;
      lines.push_back({(r - rhoOffset) * rhoStep, t * thetaStep, v});
    }
  }
  std::sort(lines.begin(), lines.end(),
            [](const HoughLine& a, const HoughLine& b) { return a.votes > b.votes; });
  return lines;
}

}  // namespace simdcv::imgproc
