// Template matching implementation + SIMD SAD kernels.
#include "imgproc/match.hpp"

#include <limits>

#include "simd/neon_compat.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace simdcv::imgproc {

namespace sse2 {

std::uint64_t sadRange(const std::uint8_t* a, const std::uint8_t* b,
                       std::size_t n) {
#if defined(__SSE2__)
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i sad = _mm_sad_epu8(va, vb);  // two u16 sums in u64 lanes
    acc += static_cast<std::uint64_t>(_mm_cvtsi128_si64(sad)) +
           static_cast<std::uint64_t>(
               _mm_cvtsi128_si64(_mm_srli_si128(sad, 8)));
  }
  return acc + autovec::sadRange(a + i, b + i, n - i);
#else
  return autovec::sadRange(a, b, n);
#endif
}

}  // namespace sse2

namespace neon {

std::uint64_t sadRange(const std::uint8_t* a, const std::uint8_t* b,
                       std::size_t n) {
  std::uint64_t acc = 0;
  std::size_t i = 0;
  // vabal widens |a-b| into u16 lanes; drain to u32 every 128 blocks so the
  // u16 accumulators can never wrap (128 * 2 * 255 = 65280 < 65536).
  while (i + 16 <= n) {
    uint16x8_t acc16 = vdupq_n_u16(0);
    int blocks = 0;
    for (; i + 16 <= n && blocks < 128; i += 16, ++blocks) {
      const uint8x16_t va = vld1q_u8(a + i);
      const uint8x16_t vb = vld1q_u8(b + i);
      acc16 = vabal_u8(acc16, vget_low_u8(va), vget_low_u8(vb));
      acc16 = vabal_u8(acc16, vget_high_u8(va), vget_high_u8(vb));
    }
    const uint32x4_t acc32 = vpaddlq_u16(acc16);
    acc += static_cast<std::uint64_t>(vgetq_lane_u32(acc32, 0)) +
           vgetq_lane_u32(acc32, 1) + vgetq_lane_u32(acc32, 2) +
           vgetq_lane_u32(acc32, 3);
  }
  return acc + autovec::sadRange(a + i, b + i, n - i);
}

}  // namespace neon

namespace {

std::uint64_t sadRow(const std::uint8_t* a, const std::uint8_t* b,
                     std::size_t n, KernelPath p) {
  switch (p) {
    case KernelPath::Avx2:  // PSADBW already saturates the port; reuse SSE2
    case KernelPath::Sse2: return sse2::sadRange(a, b, n);
    case KernelPath::Neon: return neon::sadRange(a, b, n);
    case KernelPath::ScalarNoVec: return novec::sadRange(a, b, n);
    default: return autovec::sadRange(a, b, n);
  }
}

void checkInputs(const Mat& img, const Mat& tmpl, const char* what) {
  SIMDCV_REQUIRE(!img.empty() && !tmpl.empty(), std::string(what) + ": empty input");
  SIMDCV_REQUIRE(img.type() == U8C1 && tmpl.type() == U8C1,
                 std::string(what) + ": u8c1 only");
  SIMDCV_REQUIRE(tmpl.cols() <= img.cols() && tmpl.rows() <= img.rows(),
                 std::string(what) + ": template larger than image");
}

}  // namespace

std::uint64_t sadAt(const Mat& img, const Mat& tmpl, int x, int y,
                    KernelPath path) {
  checkInputs(img, tmpl, "sadAt");
  SIMDCV_REQUIRE(x >= 0 && y >= 0 && x + tmpl.cols() <= img.cols() &&
                     y + tmpl.rows() <= img.rows(),
                 "sadAt: window out of range");
  const KernelPath p = resolvePath(path);
  std::uint64_t acc = 0;
  for (int r = 0; r < tmpl.rows(); ++r) {
    acc += sadRow(img.ptr<std::uint8_t>(y + r) + x, tmpl.ptr<std::uint8_t>(r),
                  static_cast<std::size_t>(tmpl.cols()), p);
  }
  return acc;
}

void matchTemplateSad(const Mat& img, const Mat& tmpl, Mat& result,
                      KernelPath path) {
  checkInputs(img, tmpl, "matchTemplateSad");
  const KernelPath p = resolvePath(path);
  const int rw = img.cols() - tmpl.cols() + 1;
  const int rh = img.rows() - tmpl.rows() + 1;
  Mat out = std::move(result);
  out.create(rh, rw, F32C1);
  for (int y = 0; y < rh; ++y) {
    float* d = out.ptr<float>(y);
    for (int x = 0; x < rw; ++x) {
      std::uint64_t acc = 0;
      for (int r = 0; r < tmpl.rows(); ++r) {
        acc += sadRow(img.ptr<std::uint8_t>(y + r) + x,
                      tmpl.ptr<std::uint8_t>(r),
                      static_cast<std::size_t>(tmpl.cols()), p);
      }
      d[x] = static_cast<float>(acc);
    }
  }
  result = std::move(out);
}

MatchResult findBestMatch(const Mat& img, const Mat& tmpl, KernelPath path) {
  checkInputs(img, tmpl, "findBestMatch");
  const KernelPath p = resolvePath(path);
  MatchResult best;
  best.sad = std::numeric_limits<std::uint64_t>::max();
  for (int y = 0; y + tmpl.rows() <= img.rows(); ++y) {
    for (int x = 0; x + tmpl.cols() <= img.cols(); ++x) {
      std::uint64_t acc = 0;
      for (int r = 0; r < tmpl.rows() && acc < best.sad; ++r) {
        acc += sadRow(img.ptr<std::uint8_t>(y + r) + x,
                      tmpl.ptr<std::uint8_t>(r),
                      static_cast<std::size_t>(tmpl.cols()), p);
      }
      if (acc < best.sad) {
        best.sad = acc;
        best.x = x;
        best.y = y;
      }
    }
  }
  return best;
}

}  // namespace simdcv::imgproc
