// Separable 2-D filtering: the engine behind GaussianBlur (benchmark 3),
// Sobel (benchmark 4) and edge detection (benchmark 5).
//
// The engine computes in single-precision float: each needed source row is
// converted to float, horizontally convolved with kx into an intermediate
// ring buffer, and output rows are produced by vertically convolving ky over
// the buffered intermediates — O(kw + kh) work per pixel instead of O(kw*kh).
#pragma once

#include <vector>

#include "core/mat.hpp"
#include "imgproc/border.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

/// General separable filter: dst = (kx ⊗ ky) * src.
/// src: U8 or F32, single channel. dst depth: U8, S16 or F32.
void sepFilter2D(const Mat& src, Mat& dst, Depth ddepth,
                 const std::vector<float>& kx, const std::vector<float>& ky,
                 BorderType border = BorderType::Reflect101,
                 double borderValue = 0.0,
                 KernelPath path = KernelPath::Default);

/// Gaussian smoothing. ksize components may be 0 (derived from sigma).
/// sigmaY == 0 means sigmaY = sigmaX. Anisotropic blurs (sigmaX != sigmaY or
/// kw != kh) are supported — the paper's benchmark 3 uses sigma = 1.
void GaussianBlur(const Mat& src, Mat& dst, Size ksize, double sigmaX,
                  double sigmaY = 0.0,
                  BorderType border = BorderType::Reflect101,
                  KernelPath path = KernelPath::Default);

/// Sobel derivative filter of order (dx, dy), aperture `ksize` (odd).
/// Typical use: Sobel(src, dst, Depth::S16, 1, 0) for the x gradient.
void Sobel(const Mat& src, Mat& dst, Depth ddepth, int dx, int dy,
           int ksize = 3, double scale = 1.0,
           BorderType border = BorderType::Reflect101,
           KernelPath path = KernelPath::Default);

/// Scharr 3x3 derivative (more rotationally symmetric than Sobel 3x3).
void Scharr(const Mat& src, Mat& dst, Depth ddepth, int dx, int dy,
            double scale = 1.0, BorderType border = BorderType::Reflect101,
            KernelPath path = KernelPath::Default);

/// Dense (non-separable) 2-D correlation with an arbitrary kernel.
/// Scalar reference implementation used by tests to validate the separable
/// engine; kernel is row-major kh x kw.
void filter2D(const Mat& src, Mat& dst, Depth ddepth,
              const std::vector<float>& kernel, int kw, int kh,
              BorderType border = BorderType::Reflect101,
              double borderValue = 0.0);

// ---- low-level row/column convolution workers (per path) -------------------
// Exposed so the micro-benchmarks can time them in isolation.
namespace detail {

/// Horizontal: out[i] = sum_j k[j] * padded[i + j], i in [0, width).
using RowConvFn = void (*)(const float* padded, float* out, int width,
                           const float* k, int ksize);
/// Vertical: out[i] = sum_r k[r] * rows[r][i], i in [0, width).
using ColConvFn = void (*)(const float* const* rows, float* out, int width,
                           const float* k, int ksize);

RowConvFn rowConvFor(KernelPath path);
ColConvFn colConvFor(KernelPath path);

}  // namespace detail

namespace autovec {
void rowConv(const float* padded, float* out, int width, const float* k, int ksize);
void colConv(const float* const* rows, float* out, int width, const float* k, int ksize);
}
namespace novec {
void rowConv(const float* padded, float* out, int width, const float* k, int ksize);
void colConv(const float* const* rows, float* out, int width, const float* k, int ksize);
}
namespace sse2 {
void rowConv(const float* padded, float* out, int width, const float* k, int ksize);
void colConv(const float* const* rows, float* out, int width, const float* k, int ksize);
}
namespace avx2 {
void rowConv(const float* padded, float* out, int width, const float* k, int ksize);
void colConv(const float* const* rows, float* out, int width, const float* k, int ksize);
}
namespace neon {
void rowConv(const float* padded, float* out, int width, const float* k, int ksize);
void colConv(const float* const* rows, float* out, int width, const float* k, int ksize);
}

}  // namespace simdcv::imgproc
