// Edge detection (the paper's benchmark 5): Sobel x/y gradients, L1 gradient
// magnitude, binary threshold.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/mat.hpp"
#include "imgproc/border.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

/// L1 gradient magnitude: dst(u8) = saturate(|gx| + |gy|), with saturating
/// s16 intermediates (all paths agree bit-exactly for u8 output).
void gradientMagnitude(const Mat& gx, const Mat& gy, Mat& dst,
                       KernelPath path = KernelPath::Default);

/// Full pipeline: Sobel(dx=1), Sobel(dy=1), |gx|+|gy|, threshold > thresh
/// to 255/0. Output is a U8 binary edge map. Dispatches to the fused
/// cache-blocked implementation (edgeDetectFused); bit-exact with the
/// unfused reference on every KernelPath and thread count.
void edgeDetect(const Mat& src, Mat& dst, double thresh, int ksize = 3,
                BorderType border = BorderType::Reflect101,
                KernelPath path = KernelPath::Default);

/// Fused single-pass pipeline (the tentpole of the paper's benchmark 5):
/// processes the image in row bands, keeping Sobel gx/gy in ring-buffered
/// per-band row scratch and applying magnitude + threshold in the same pass —
/// whole-image 16S gradients are never materialized. Bit-exact with
/// edgeDetectUnfused for the same arguments on every path.
void edgeDetectFused(const Mat& src, Mat& dst, double thresh, int ksize = 3,
                     BorderType border = BorderType::Reflect101,
                     KernelPath path = KernelPath::Default);

/// Reference 4-pass pipeline (two Sobel passes, magnitude, threshold through
/// whole-image intermediates). Kept as the differential oracle the fused
/// path is checked against; its gx/gy/mag scratch lives in a per-thread
/// arena so repeated calls at one size perform no allocations.
void edgeDetectUnfused(const Mat& src, Mat& dst, double thresh, int ksize = 3,
                       BorderType border = BorderType::Reflect101,
                       KernelPath path = KernelPath::Default);

// Internal hooks (shared dispatch + test instrumentation) live in
// "imgproc/edge_detail.hpp"; they are not part of the public API.

// Flat-range magnitude kernels per path (for benchmarks/tests).
namespace autovec {
void magnitudeS16(const std::int16_t* gx, const std::int16_t* gy,
                  std::uint8_t* dst, std::size_t n);
}
namespace novec {
void magnitudeS16(const std::int16_t* gx, const std::int16_t* gy,
                  std::uint8_t* dst, std::size_t n);
}
namespace sse2 {
void magnitudeS16(const std::int16_t* gx, const std::int16_t* gy,
                  std::uint8_t* dst, std::size_t n);
}
namespace neon {
void magnitudeS16(const std::int16_t* gx, const std::int16_t* gy,
                  std::uint8_t* dst, std::size_t n);
}

}  // namespace simdcv::imgproc
