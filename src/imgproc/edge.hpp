// Edge detection (the paper's benchmark 5): Sobel x/y gradients, L1 gradient
// magnitude, binary threshold.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/mat.hpp"
#include "imgproc/border.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

/// L1 gradient magnitude: dst(u8) = saturate(|gx| + |gy|), with saturating
/// s16 intermediates (all paths agree bit-exactly for u8 output).
void gradientMagnitude(const Mat& gx, const Mat& gy, Mat& dst,
                       KernelPath path = KernelPath::Default);

/// Full pipeline: Sobel(dx=1), Sobel(dy=1), |gx|+|gy|, threshold > thresh
/// to 255/0. Output is a U8 binary edge map.
void edgeDetect(const Mat& src, Mat& dst, double thresh, int ksize = 3,
                BorderType border = BorderType::Reflect101,
                KernelPath path = KernelPath::Default);

// Flat-range magnitude kernels per path (for benchmarks/tests).
namespace autovec {
void magnitudeS16(const std::int16_t* gx, const std::int16_t* gy,
                  std::uint8_t* dst, std::size_t n);
}
namespace novec {
void magnitudeS16(const std::int16_t* gx, const std::int16_t* gy,
                  std::uint8_t* dst, std::size_t n);
}
namespace sse2 {
void magnitudeS16(const std::int16_t* gx, const std::int16_t* gy,
                  std::uint8_t* dst, std::size_t n);
}
namespace neon {
void magnitudeS16(const std::int16_t* gx, const std::int16_t* gy,
                  std::uint8_t* dst, std::size_t n);
}

}  // namespace simdcv::imgproc
