// Morphology implementation: separable running min/max.
//
// Horizontal pass: for each output pixel, min/max over a kw window of the
// (replicate-padded) row. Vertical pass: min/max across kh buffered rows at
// each column, which vectorizes as a straight lane-wise min/max across row
// pointers — identical structure to the convolution engine's column pass.
#include "imgproc/morphology.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/scratch.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/kernels.hpp"
#include "prof/prof.hpp"
#include "runtime/parallel.hpp"
#include "simd/neon_compat.hpp"
#include "tune/tune.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace simdcv::imgproc {

namespace {

enum class MinMax { Min, Max };

// Lane-wise min/max across kh rows (the vertical pass), per path.
void verticalMinMax(const std::uint8_t* const* rows, std::uint8_t* out,
                    int width, int kh, MinMax mode, KernelPath p) {
  int x = 0;
#if defined(__SSE2__)
  if (p == KernelPath::Sse2) {
    for (; x + 16 <= width; x += 16) {
      __m128i acc =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[0] + x));
      for (int r = 1; r < kh; ++r) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[r] + x));
        acc = mode == MinMax::Min ? _mm_min_epu8(acc, v) : _mm_max_epu8(acc, v);
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + x), acc);
    }
  }
#endif
  if (p == KernelPath::Neon) {
    for (; x + 16 <= width; x += 16) {
      uint8x16_t acc = vld1q_u8(rows[0] + x);
      for (int r = 1; r < kh; ++r) {
        const uint8x16_t v = vld1q_u8(rows[r] + x);
        acc = mode == MinMax::Min ? vminq_u8(acc, v) : vmaxq_u8(acc, v);
      }
      vst1q_u8(out + x, acc);
    }
  }
  for (; x < width; ++x) {
    std::uint8_t acc = rows[0][x];
    for (int r = 1; r < kh; ++r) {
      const std::uint8_t v = rows[r][x];
      acc = mode == MinMax::Min ? (v < acc ? v : acc) : (v > acc ? v : acc);
    }
    out[x] = acc;
  }
}

// Horizontal min/max over a kw window of a replicate-padded row.
void horizontalMinMax(const std::uint8_t* padded, std::uint8_t* out, int width,
                      int kw, MinMax mode) {
  for (int i = 0; i < width; ++i) {
    std::uint8_t acc = padded[i];
    for (int j = 1; j < kw; ++j) {
      const std::uint8_t v = padded[i + j];
      acc = mode == MinMax::Min ? (v < acc ? v : acc) : (v > acc ? v : acc);
    }
    out[i] = acc;
  }
}

void morphRect(const Mat& src, Mat& dst, Size ksize, MinMax mode,
               KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "morphology: empty source");
  SIMDCV_REQUIRE(src.type() == U8C1, "morphology: u8c1 only");
  SIMDCV_REQUIRE(ksize.width >= 1 && (ksize.width & 1) && ksize.height >= 1 &&
                     (ksize.height & 1),
                 "morphology: ksize must be odd and positive");
  const KernelPath p = resolvePath(path);
  const int rows = src.rows(), width = src.cols();
  const int kw = ksize.width, kh = ksize.height;
  const int rx = kw / 2, ry = kh / 2;
  const std::uint64_t bytes =
      2 * static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(width);
  SIMDCV_TRACE_SCOPE("morphRect", p, bytes);

  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(rows, width, U8C1);

  // One ring engine per band, exactly like the separable-convolution engine:
  // min/max over a window is a pure function of the source rows, and each
  // band recomputes its seam rows through the identical pad + horizontal
  // pass, so any band partition is bit-identical to the serial walk.
  auto processBand = [&](runtime::Range band) {
    core::ScratchFrame frame;
    std::uint8_t* padded = frame.allocN<std::uint8_t>(
        static_cast<std::size_t>(width) + static_cast<std::size_t>(kw) - 1);
    std::uint8_t* ring = frame.allocN<std::uint8_t>(
        static_cast<std::size_t>(kh) * static_cast<std::size_t>(width));
    const std::uint8_t** taps =
        frame.allocN<const std::uint8_t*>(static_cast<std::size_t>(kh));

    auto slot = [&](int v) {
      return ring + static_cast<std::size_t>((v + ry) % kh) *
                        static_cast<std::size_t>(width);
    };
    auto computeVirtualRow = [&](int v) {
      const int m = borderInterpolate(v, rows, BorderType::Replicate);
      const std::uint8_t* s = src.ptr<std::uint8_t>(m);
      std::memcpy(padded + rx, s, static_cast<std::size_t>(width));
      for (int j = 0; j < rx; ++j) {
        padded[j] = s[0];
        padded[rx + width + j] = s[width - 1];
      }
      horizontalMinMax(padded, slot(v), width, kw, mode);
    };

    for (int v = band.begin - ry; v < band.begin + ry; ++v)
      computeVirtualRow(v);
    for (int y = band.begin; y < band.end; ++y) {
      computeVirtualRow(y + ry);
      for (int r = 0; r < kh; ++r)
        taps[static_cast<std::size_t>(r)] = slot(y - ry + r);
      verticalMinMax(taps, out.ptr<std::uint8_t>(y), width, kh, mode, p);
    }
  };

  // Fork rule: the separable engine's threshold with this kernel's per-row
  // cost (kw-window horizontal + kh-row vertical min/max), floored at the
  // kernel height so a band is at least one full window tall. Band grain is
  // pure scheduling (seams re-prime), so it is tunable like the other ring
  // engines ("morphRect" axis, SIMDCV_TUNE=1).
  const int heuristic =
      std::max(runtime::parallelThreshold(static_cast<std::size_t>(width),
                                          rows, 1.0 * (kw + kh)),
               kh);
  tune::GrainScope gs("morphRect", p, bytes, rows, heuristic);
  runtime::parallel_for({0, rows}, processBand, gs.grain());
  dst = std::move(out);
}

}  // namespace

void erode(const Mat& src, Mat& dst, Size ksize, KernelPath path) {
  morphRect(src, dst, ksize, MinMax::Min, path);
}

void dilate(const Mat& src, Mat& dst, Size ksize, KernelPath path) {
  morphRect(src, dst, ksize, MinMax::Max, path);
}

void morphOpen(const Mat& src, Mat& dst, Size ksize, KernelPath path) {
  Mat tmp;
  erode(src, tmp, ksize, path);
  dilate(tmp, dst, ksize, path);
}

void morphClose(const Mat& src, Mat& dst, Size ksize, KernelPath path) {
  Mat tmp;
  dilate(src, tmp, ksize, path);
  erode(tmp, dst, ksize, path);
}

void boxFilter(const Mat& src, Mat& dst, Size ksize, BorderType border,
               KernelPath path) {
  SIMDCV_REQUIRE(ksize.width >= 1 && (ksize.width & 1) && ksize.height >= 1 &&
                     (ksize.height & 1),
                 "boxFilter: ksize must be odd and positive");
  const std::vector<float> kx(static_cast<std::size_t>(ksize.width),
                              1.0f / static_cast<float>(ksize.width));
  const std::vector<float> ky(static_cast<std::size_t>(ksize.height),
                              1.0f / static_cast<float>(ksize.height));
  sepFilter2D(src, dst, src.depth(), kx, ky, border, 0.0, path);
}

}  // namespace simdcv::imgproc
