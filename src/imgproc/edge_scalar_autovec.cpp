// Magnitude scalar kernel, auto-vectorized build (paper "AUTO" arm).
#define SIMDCV_SCALAR_NS autovec
#include "imgproc/edge_scalar.inl"
