// Locally adaptive operations: adaptive thresholding (mean / Gaussian
// neighbourhood), Laplacian, CLAHE (contrast-limited adaptive histogram
// equalization), and bilateral filtering.
#pragma once

#include <array>

#include "core/mat.hpp"
#include "imgproc/border.hpp"
#include "imgproc/threshold.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

enum class AdaptiveMethod : std::uint8_t { Mean, Gaussian };

/// cv::adaptiveThreshold semantics: per pixel, T(x,y) = neighbourhood
/// mean/Gaussian-weighted mean minus `C`; Binary / BinaryInv only. U8C1.
void adaptiveThreshold(const Mat& src, Mat& dst, double maxval,
                       AdaptiveMethod method, ThresholdType type,
                       int blockSize, double C,
                       KernelPath path = KernelPath::Default);

/// Laplacian: ksize==1 uses the 3x3 [0 1 0; 1 -4 1; 0 1 0] stencil;
/// ksize 3/5/7 sums the two second-derivative separable Sobel kernels.
/// dst depth S16 or F32.
void Laplacian(const Mat& src, Mat& dst, Depth ddepth, int ksize = 1,
               double scale = 1.0, BorderType border = BorderType::Reflect101,
               KernelPath path = KernelPath::Default);

/// 256-entry lookup-table transform of a U8 image (any channel count).
void applyLut(const Mat& src, Mat& dst, const std::array<std::uint8_t, 256>& lut,
              KernelPath path = KernelPath::Default);

/// CLAHE: the image is tiled (tilesX x tilesY), each tile's histogram is
/// clipped at `clipLimit` x the uniform bin height (excess redistributed),
/// per-tile equalization LUTs are built, and every pixel is mapped by
/// bilinear interpolation between the four surrounding tile LUTs. U8C1.
void clahe(const Mat& src, Mat& dst, double clipLimit = 4.0, int tilesX = 8,
           int tilesY = 8, KernelPath path = KernelPath::Default);

/// Bilateral filter: Gaussian in space (sigmaSpace) and in intensity
/// (sigmaColor); edge-preserving smoothing. U8C1; diameter d (odd).
void bilateralFilter(const Mat& src, Mat& dst, int d, double sigmaColor,
                     double sigmaSpace,
                     BorderType border = BorderType::Reflect101,
                     KernelPath path = KernelPath::Default);

}  // namespace simdcv::imgproc
