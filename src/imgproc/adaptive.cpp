#include "imgproc/adaptive.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "core/saturate.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/kernels.hpp"
#include "imgproc/morphology.hpp"

namespace simdcv::imgproc {

void adaptiveThreshold(const Mat& src, Mat& dst, double maxval,
                       AdaptiveMethod method, ThresholdType type,
                       int blockSize, double C, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "adaptiveThreshold: empty source");
  SIMDCV_REQUIRE(src.type() == U8C1, "adaptiveThreshold: u8c1 only");
  SIMDCV_REQUIRE(blockSize >= 3 && (blockSize & 1),
                 "adaptiveThreshold: blockSize must be odd >= 3");
  SIMDCV_REQUIRE(type == ThresholdType::Binary || type == ThresholdType::BinaryInv,
                 "adaptiveThreshold: Binary/BinaryInv only");
  const KernelPath p = resolvePath(path);

  // Local reference level: smoothed image (replicate border, like OpenCV).
  Mat ref;
  if (method == AdaptiveMethod::Mean) {
    boxFilter(src, ref, {blockSize, blockSize}, BorderType::Replicate, p);
  } else {
    // OpenCV's sigma rule for the Gaussian variant.
    const double sigma = 0.3 * ((blockSize - 1) * 0.5 - 1) + 0.8;
    GaussianBlur(src, ref, {blockSize, blockSize}, sigma, sigma,
                 BorderType::Replicate, p);
  }

  const std::uint8_t mv = saturate_cast<std::uint8_t>(cvRound(maxval));
  const int ic = cvRound(C);
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(src.rows(), src.cols(), U8C1);
  for (int y = 0; y < src.rows(); ++y) {
    const std::uint8_t* s = src.ptr<std::uint8_t>(y);
    const std::uint8_t* t = ref.ptr<std::uint8_t>(y);
    std::uint8_t* d = out.ptr<std::uint8_t>(y);
    for (int x = 0; x < src.cols(); ++x) {
      const bool above = s[x] > t[x] - ic;
      d[x] = (above == (type == ThresholdType::Binary)) ? mv : 0;
    }
  }
  dst = std::move(out);
}

void Laplacian(const Mat& src, Mat& dst, Depth ddepth, int ksize, double scale,
               BorderType border, KernelPath path) {
  SIMDCV_REQUIRE(ddepth == Depth::S16 || ddepth == Depth::F32,
                 "Laplacian: dst depth s16/f32");
  SIMDCV_REQUIRE(ksize == 1 || ksize == 3 || ksize == 5 || ksize == 7,
                 "Laplacian: ksize 1/3/5/7");
  if (ksize == 1) {
    const std::vector<float> k = {
        0, 1 * static_cast<float>(scale), 0,
        1 * static_cast<float>(scale), -4 * static_cast<float>(scale),
        1 * static_cast<float>(scale), 0, 1 * static_cast<float>(scale), 0};
    filter2D(src, dst, ddepth, k, 3, 3, border);
    return;
  }
  // d2/dx2 + d2/dy2 via two separable passes, summed in float.
  Mat dxx, dyy;
  Sobel(src, dxx, Depth::F32, 2, 0, ksize, scale, border, path);
  Sobel(src, dyy, Depth::F32, 0, 2, ksize, scale, border, path);
  Mat out = std::move(dst);
  out.create(src.rows(), src.cols(), PixelType(ddepth, 1));
  for (int y = 0; y < src.rows(); ++y) {
    const float* a = dxx.ptr<float>(y);
    const float* b = dyy.ptr<float>(y);
    if (ddepth == Depth::F32) {
      float* d = out.ptr<float>(y);
      for (int x = 0; x < src.cols(); ++x) d[x] = a[x] + b[x];
    } else {
      std::int16_t* d = out.ptr<std::int16_t>(y);
      for (int x = 0; x < src.cols(); ++x)
        d[x] = saturate_cast<std::int16_t>(a[x] + b[x]);
    }
  }
  dst = std::move(out);
}

void applyLut(const Mat& src, Mat& dst, const std::array<std::uint8_t, 256>& lut,
              KernelPath /*path*/) {
  SIMDCV_REQUIRE(!src.empty(), "applyLut: empty source");
  SIMDCV_REQUIRE(src.depth() == Depth::U8, "applyLut: u8 only");
  Mat out = std::move(dst);
  out.create(src.rows(), src.cols(), src.type());
  const std::size_t n = static_cast<std::size_t>(src.cols()) * src.channels();
  for (int y = 0; y < src.rows(); ++y) {
    const std::uint8_t* s = src.ptr<std::uint8_t>(y);
    std::uint8_t* d = out.ptr<std::uint8_t>(y);
    for (std::size_t x = 0; x < n; ++x) d[x] = lut[s[x]];
  }
  dst = std::move(out);
}

void clahe(const Mat& src, Mat& dst, double clipLimit, int tilesX, int tilesY,
           KernelPath /*path*/) {
  SIMDCV_REQUIRE(!src.empty(), "clahe: empty source");
  SIMDCV_REQUIRE(src.type() == U8C1, "clahe: u8c1 only");
  SIMDCV_REQUIRE(tilesX >= 1 && tilesY >= 1, "clahe: need >=1 tile per axis");
  SIMDCV_REQUIRE(clipLimit > 0, "clahe: clipLimit must be positive");
  const int rows = src.rows(), cols = src.cols();

  // Per-tile clipped-histogram equalization LUTs.
  std::vector<std::array<std::uint8_t, 256>> luts(
      static_cast<std::size_t>(tilesX) * static_cast<std::size_t>(tilesY));
  auto tileRect = [&](int tx, int ty) {
    const int x0 = cols * tx / tilesX;
    const int x1 = cols * (tx + 1) / tilesX;
    const int y0 = rows * ty / tilesY;
    const int y1 = rows * (ty + 1) / tilesY;
    return Rect(x0, y0, std::max(1, x1 - x0), std::max(1, y1 - y0));
  };
  for (int ty = 0; ty < tilesY; ++ty) {
    for (int tx = 0; tx < tilesX; ++tx) {
      const Rect r = tileRect(tx, ty);
      std::array<std::uint32_t, 256> hist{};
      for (int y = r.y; y < r.y + r.height; ++y) {
        const std::uint8_t* s = src.ptr<std::uint8_t>(y);
        for (int x = r.x; x < r.x + r.width; ++x) ++hist[s[x]];
      }
      const double area = static_cast<double>(r.width) * r.height;
      const std::uint32_t clip = static_cast<std::uint32_t>(
          std::max(1.0, clipLimit * area / 256.0));
      // Clip and count the excess.
      std::uint64_t excess = 0;
      for (auto& h : hist) {
        if (h > clip) {
          excess += h - clip;
          h = clip;
        }
      }
      // Redistribute the excess uniformly.
      const std::uint32_t add = static_cast<std::uint32_t>(excess / 256);
      std::uint32_t rem = static_cast<std::uint32_t>(excess % 256);
      for (int v = 0; v < 256; ++v) {
        hist[static_cast<std::size_t>(v)] += add + (static_cast<std::uint32_t>(v) < rem ? 1 : 0);
      }
      // CDF -> LUT.
      auto& lut = luts[static_cast<std::size_t>(ty) * tilesX + tx];
      std::uint64_t cdf = 0;
      for (int v = 0; v < 256; ++v) {
        cdf += hist[static_cast<std::size_t>(v)];
        lut[static_cast<std::size_t>(v)] = saturate_cast<std::uint8_t>(
            cvRound(255.0 * static_cast<double>(cdf) / area));
      }
    }
  }

  // Bilinear interpolation between the four neighbouring tile LUTs.
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(rows, cols, U8C1);
  const double tw = static_cast<double>(cols) / tilesX;
  const double th = static_cast<double>(rows) / tilesY;
  for (int y = 0; y < rows; ++y) {
    const double fy = (y + 0.5) / th - 0.5;
    int ty0 = static_cast<int>(std::floor(fy));
    double wy = fy - ty0;
    int ty1 = ty0 + 1;
    ty0 = std::clamp(ty0, 0, tilesY - 1);
    ty1 = std::clamp(ty1, 0, tilesY - 1);
    const std::uint8_t* s = src.ptr<std::uint8_t>(y);
    std::uint8_t* d = out.ptr<std::uint8_t>(y);
    for (int x = 0; x < cols; ++x) {
      const double fx = (x + 0.5) / tw - 0.5;
      int tx0 = static_cast<int>(std::floor(fx));
      double wx = fx - tx0;
      int tx1 = tx0 + 1;
      tx0 = std::clamp(tx0, 0, tilesX - 1);
      tx1 = std::clamp(tx1, 0, tilesX - 1);
      const std::uint8_t v = s[x];
      const double v00 = luts[static_cast<std::size_t>(ty0) * tilesX + tx0][v];
      const double v01 = luts[static_cast<std::size_t>(ty0) * tilesX + tx1][v];
      const double v10 = luts[static_cast<std::size_t>(ty1) * tilesX + tx0][v];
      const double v11 = luts[static_cast<std::size_t>(ty1) * tilesX + tx1][v];
      const double top = v00 + (v01 - v00) * wx;
      const double bot = v10 + (v11 - v10) * wx;
      d[x] = saturate_cast<std::uint8_t>(top + (bot - top) * wy);
    }
  }
  dst = std::move(out);
}

void bilateralFilter(const Mat& src, Mat& dst, int d, double sigmaColor,
                     double sigmaSpace, BorderType border, KernelPath /*path*/) {
  SIMDCV_REQUIRE(!src.empty(), "bilateralFilter: empty source");
  SIMDCV_REQUIRE(src.type() == U8C1, "bilateralFilter: u8c1 only");
  SIMDCV_REQUIRE(d >= 3 && (d & 1), "bilateralFilter: d must be odd >= 3");
  SIMDCV_REQUIRE(sigmaColor > 0 && sigmaSpace > 0,
                 "bilateralFilter: sigmas must be positive");
  const int radius = d / 2;
  const int rows = src.rows(), cols = src.cols();

  // Precompute spatial weights and the 256-entry color-difference table.
  std::vector<float> spaceW(static_cast<std::size_t>(d) * d);
  const double gs = -0.5 / (sigmaSpace * sigmaSpace);
  for (int dy = -radius; dy <= radius; ++dy)
    for (int dx = -radius; dx <= radius; ++dx)
      spaceW[static_cast<std::size_t>((dy + radius) * d + dx + radius)] =
          static_cast<float>(std::exp(gs * (dx * dx + dy * dy)));
  std::array<float, 256> colorW;
  const double gc = -0.5 / (sigmaColor * sigmaColor);
  for (int i = 0; i < 256; ++i)
    colorW[static_cast<std::size_t>(i)] =
        static_cast<float>(std::exp(gc * i * i));

  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(rows, cols, U8C1);
  for (int y = 0; y < rows; ++y) {
    std::uint8_t* dptr = out.ptr<std::uint8_t>(y);
    for (int x = 0; x < cols; ++x) {
      const int center = src.at<std::uint8_t>(y, x);
      float num = 0, den = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        const int sy = borderInterpolate(y + dy, rows, border);
        const std::uint8_t* srow = sy < 0 ? nullptr : src.ptr<std::uint8_t>(sy);
        for (int dx = -radius; dx <= radius; ++dx) {
          const int sx = borderInterpolate(x + dx, cols, border);
          if (!srow || sx < 0) continue;  // Constant border: skip samples
          const int v = srow[sx];
          const float w =
              spaceW[static_cast<std::size_t>((dy + radius) * d + dx + radius)] *
              colorW[static_cast<std::size_t>(std::abs(v - center))];
          num += w * static_cast<float>(v);
          den += w;
        }
      }
      dptr[x] = saturate_cast<std::uint8_t>(num / den);
    }
  }
  dst = std::move(out);
}

}  // namespace simdcv::imgproc
