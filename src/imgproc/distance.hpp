// Distance transform (two-pass chamfer) and Hough line detection — binary
// shape-analysis substrates downstream of the thresholding benchmarks.
#pragma once

#include <vector>

#include "core/mat.hpp"

namespace simdcv::imgproc {

enum class DistanceMetric : std::uint8_t {
  L1,       ///< city-block (1 / 2 chamfer weights)
  Chamfer,  ///< 3-4 chamfer / 3 (close to L2, exact on axes)
};

/// Distance from every pixel to the nearest ZERO pixel of a U8C1 binary
/// image (cv::distanceTransform convention). Output F32C1. An image with no
/// zero pixel gets +inf everywhere.
void distanceTransform(const Mat& binary, Mat& dist,
                       DistanceMetric metric = DistanceMetric::Chamfer);

/// A detected line in Hesse normal form: x*cos(theta) + y*sin(theta) = rho.
struct HoughLine {
  double rho = 0;
  double theta = 0;  ///< radians, in [0, pi)
  int votes = 0;
};

/// Standard Hough transform over non-zero pixels of a U8C1 edge map.
/// rhoStep in pixels, thetaStep in radians, `threshold` minimum votes.
/// Lines are returned strongest first; accumulator peaks are non-max
/// suppressed over a 3x3 (rho, theta) neighbourhood.
std::vector<HoughLine> houghLines(const Mat& edges, double rhoStep,
                                  double thetaStep, int threshold);

}  // namespace simdcv::imgproc
