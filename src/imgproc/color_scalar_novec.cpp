// Gray-conversion scalar kernel, vectorizer-disabled ablation build.
#define SIMDCV_SCALAR_NS novec
#include "imgproc/color_scalar.inl"
