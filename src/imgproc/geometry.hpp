// Geometric rearrangements: flip, transpose, 90-degree rotations,
// copyMakeBorder, and affine warping with bilinear sampling.
#pragma once

#include <array>

#include "core/mat.hpp"
#include "imgproc/border.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

enum class FlipAxis : std::uint8_t { Horizontal, Vertical, Both };

/// Mirror the image. Horizontal flips columns (around the vertical axis),
/// Vertical flips rows, Both rotates 180 degrees. Any depth, C1..C4.
void flip(const Mat& src, Mat& dst, FlipAxis axis);

/// Transpose rows/columns. Any depth, C1..C4.
void transpose(const Mat& src, Mat& dst);

enum class Rotation : std::uint8_t { Cw90, Ccw90, R180 };

/// Rotate by a multiple of 90 degrees (composed from transpose + flip).
void rotate(const Mat& src, Mat& dst, Rotation rot);

/// Pad the image with `top/bottom/left/right` border pixels, extrapolated by
/// `border` (Constant uses `value`). Any depth, C1..C4.
void copyMakeBorder(const Mat& src, Mat& dst, int top, int bottom, int left,
                    int right, BorderType border, double value = 0.0);

/// 2x3 affine matrix, row-major: dst(x,y) samples src at
///   (m[0]*x + m[1]*y + m[2], m[3]*x + m[4]*y + m[5]).
using AffineMat = std::array<double, 6>;

/// Identity / rotation-about-center helpers.
AffineMat affineIdentity();
/// cv::getRotationMatrix2D semantics: rotate `angleDeg` CCW about `center`,
/// scale by `scale`. The returned matrix maps DST coords to SRC coords when
/// passed to warpAffine with `inverseMap = true` semantics below.
AffineMat getRotationMatrix2D(double cx, double cy, double angleDeg,
                              double scale);
/// Invert an affine transform (throws if singular).
AffineMat invertAffine(const AffineMat& m);

/// Warp with bilinear sampling. `m` maps destination pixel coordinates to
/// source coordinates (the "inverse map" convention, which is what the inner
/// loop needs; use invertAffine on a forward map). U8C1 / F32C1.
/// Out-of-image samples use `border` (Constant -> `value`).
void warpAffine(const Mat& src, Mat& dst, const AffineMat& m, Size dsize,
                BorderType border = BorderType::Constant, double value = 0.0,
                KernelPath path = KernelPath::Default);

}  // namespace simdcv::imgproc
