#include "imgproc/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "core/saturate.hpp"

namespace simdcv::imgproc {

namespace {

// All rearrangements move whole elements; operate on raw bytes of elemSize.
void moveElem(std::uint8_t* dst, const std::uint8_t* src, std::size_t esz) {
  std::memcpy(dst, src, esz);
}

}  // namespace

void flip(const Mat& src, Mat& dst, FlipAxis axis) {
  SIMDCV_REQUIRE(!src.empty(), "flip: empty source");
  const int rows = src.rows(), cols = src.cols();
  const std::size_t esz = src.elemSize();
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(rows, cols, src.type());
  for (int y = 0; y < rows; ++y) {
    const int sy = (axis == FlipAxis::Vertical || axis == FlipAxis::Both)
                       ? rows - 1 - y
                       : y;
    const std::uint8_t* s = src.ptr<std::uint8_t>(sy);
    std::uint8_t* d = out.ptr<std::uint8_t>(y);
    if (axis == FlipAxis::Vertical) {
      std::memcpy(d, s, static_cast<std::size_t>(cols) * esz);
    } else {
      for (int x = 0; x < cols; ++x)
        moveElem(d + static_cast<std::size_t>(x) * esz,
                 s + static_cast<std::size_t>(cols - 1 - x) * esz, esz);
    }
  }
  dst = std::move(out);
}

void transpose(const Mat& src, Mat& dst) {
  SIMDCV_REQUIRE(!src.empty(), "transpose: empty source");
  const int rows = src.rows(), cols = src.cols();
  const std::size_t esz = src.elemSize();
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(cols, rows, src.type());
  // Blocked traversal keeps both access streams cache-friendly.
  constexpr int kBlock = 32;
  for (int by = 0; by < rows; by += kBlock) {
    for (int bx = 0; bx < cols; bx += kBlock) {
      const int ey = std::min(by + kBlock, rows);
      const int ex = std::min(bx + kBlock, cols);
      for (int y = by; y < ey; ++y) {
        const std::uint8_t* s = src.ptr<std::uint8_t>(y);
        for (int x = bx; x < ex; ++x) {
          moveElem(out.ptr<std::uint8_t>(x) + static_cast<std::size_t>(y) * esz,
                   s + static_cast<std::size_t>(x) * esz, esz);
        }
      }
    }
  }
  dst = std::move(out);
}

void rotate(const Mat& src, Mat& dst, Rotation rot) {
  switch (rot) {
    case Rotation::R180:
      flip(src, dst, FlipAxis::Both);
      break;
    case Rotation::Cw90: {
      Mat t;
      transpose(src, t);
      flip(t, dst, FlipAxis::Horizontal);
      break;
    }
    case Rotation::Ccw90: {
      Mat t;
      transpose(src, t);
      flip(t, dst, FlipAxis::Vertical);
      break;
    }
  }
}

void copyMakeBorder(const Mat& src, Mat& dst, int top, int bottom, int left,
                    int right, BorderType border, double value) {
  SIMDCV_REQUIRE(!src.empty(), "copyMakeBorder: empty source");
  SIMDCV_REQUIRE(top >= 0 && bottom >= 0 && left >= 0 && right >= 0,
                 "copyMakeBorder: negative margins");
  const int rows = src.rows(), cols = src.cols();
  const std::size_t esz = src.elemSize();
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(rows + top + bottom, cols + left + right, src.type());

  // Fill value for Constant border: one element rendered via setTo on a 1x1.
  Mat fill(1, 1, src.type());
  fill.setTo(value);
  const std::uint8_t* fillPx = fill.ptr<std::uint8_t>(0);

  for (int y = 0; y < out.rows(); ++y) {
    const int sy = borderInterpolate(y - top, rows, border);
    std::uint8_t* d = out.ptr<std::uint8_t>(y);
    if (sy < 0) {
      for (int x = 0; x < out.cols(); ++x)
        moveElem(d + static_cast<std::size_t>(x) * esz, fillPx, esz);
      continue;
    }
    const std::uint8_t* s = src.ptr<std::uint8_t>(sy);
    for (int x = 0; x < left; ++x) {
      const int sx = borderInterpolate(x - left, cols, border);
      if (sx < 0)
        moveElem(d + static_cast<std::size_t>(x) * esz, fillPx, esz);
      else
        moveElem(d + static_cast<std::size_t>(x) * esz,
                 s + static_cast<std::size_t>(sx) * esz, esz);
    }
    std::memcpy(d + static_cast<std::size_t>(left) * esz, s,
                static_cast<std::size_t>(cols) * esz);
    for (int x = left + cols; x < out.cols(); ++x) {
      const int sx = borderInterpolate(x - left, cols, border);
      if (sx < 0)
        moveElem(d + static_cast<std::size_t>(x) * esz, fillPx, esz);
      else
        moveElem(d + static_cast<std::size_t>(x) * esz,
                 s + static_cast<std::size_t>(sx) * esz, esz);
    }
  }
  dst = std::move(out);
}

AffineMat affineIdentity() { return {1, 0, 0, 0, 1, 0}; }

AffineMat getRotationMatrix2D(double cx, double cy, double angleDeg,
                              double scale) {
  const double a = angleDeg * M_PI / 180.0;
  const double alpha = scale * std::cos(a);
  const double beta = scale * std::sin(a);
  // OpenCV's forward matrix (maps src -> dst); warpAffine here wants the
  // dst -> src map, so callers typically pass invertAffine of this.
  return {alpha, beta, (1 - alpha) * cx - beta * cy,
          -beta, alpha, beta * cx + (1 - alpha) * cy};
}

AffineMat invertAffine(const AffineMat& m) {
  const double det = m[0] * m[4] - m[1] * m[3];
  SIMDCV_REQUIRE(std::abs(det) > 1e-12, "invertAffine: singular matrix");
  const double d = 1.0 / det;
  AffineMat r;
  r[0] = m[4] * d;
  r[1] = -m[1] * d;
  r[3] = -m[3] * d;
  r[4] = m[0] * d;
  r[2] = -(r[0] * m[2] + r[1] * m[5]);
  r[5] = -(r[3] * m[2] + r[4] * m[5]);
  return r;
}

namespace {

template <typename T>
void warpRows(const Mat& src, Mat& out, const AffineMat& m, BorderType border,
              double value) {
  const int rows = src.rows(), cols = src.cols();
  const T fillV = saturate_cast<T>(value);
  for (int y = 0; y < out.rows(); ++y) {
    T* d = out.ptr<T>(y);
    // Source coords advance linearly along the row: incremental evaluation.
    double sx = m[1] * y + m[2];
    double sy = m[4] * y + m[5];
    for (int x = 0; x < out.cols(); ++x, sx += m[0], sy += m[3]) {
      const double fx = std::floor(sx);
      const double fy = std::floor(sy);
      const int x0 = static_cast<int>(fx);
      const int y0 = static_cast<int>(fy);
      const double wx = sx - fx;
      const double wy = sy - fy;
      auto sample = [&](int yy, int xx) -> double {
        const int myy = borderInterpolate(yy, rows, border);
        const int mxx = borderInterpolate(xx, cols, border);
        if (myy < 0 || mxx < 0) return value;
        return static_cast<double>(src.at<T>(myy, mxx));
      };
      // Fully outside with Constant border: skip the blend entirely.
      if (border == BorderType::Constant &&
          (x0 < -1 || x0 >= cols || y0 < -1 || y0 >= rows)) {
        d[x] = fillV;
        continue;
      }
      const double v00 = sample(y0, x0);
      const double v01 = sample(y0, x0 + 1);
      const double v10 = sample(y0 + 1, x0);
      const double v11 = sample(y0 + 1, x0 + 1);
      const double top = v00 + (v01 - v00) * wx;
      const double bot = v10 + (v11 - v10) * wx;
      d[x] = saturate_cast<T>(top + (bot - top) * wy);
    }
  }
}

}  // namespace

void warpAffine(const Mat& src, Mat& dst, const AffineMat& m, Size dsize,
                BorderType border, double value, KernelPath /*path*/) {
  SIMDCV_REQUIRE(!src.empty(), "warpAffine: empty source");
  SIMDCV_REQUIRE(src.channels() == 1, "warpAffine: single channel only");
  SIMDCV_REQUIRE(src.depth() == Depth::U8 || src.depth() == Depth::F32,
                 "warpAffine: u8/f32 only");
  SIMDCV_REQUIRE(dsize.width > 0 && dsize.height > 0, "warpAffine: bad dsize");
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(dsize.height, dsize.width, src.type());
  if (src.depth() == Depth::U8)
    warpRows<std::uint8_t>(src, out, m, border, value);
  else
    warpRows<float>(src, out, m, border, value);
  dst = std::move(out);
}

}  // namespace simdcv::imgproc
