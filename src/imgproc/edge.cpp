// Edge detection pipeline and SIMD magnitude kernels.
//
// All magnitude paths implement saturate_u8(|gx|_sat + |gy|_sat); because the
// final range is [0,255], saturating-s16 and exact-int arithmetic agree on
// every input, so the paths are bit-exact with one another (see tests).
#include "imgproc/edge.hpp"

#include "imgproc/edge_detail.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/threshold.hpp"
#include "prof/prof.hpp"
#include "runtime/parallel.hpp"
#include "simd/neon_compat.hpp"
#include "tune/tune.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace simdcv::imgproc {

namespace sse2 {

void magnitudeS16(const std::int16_t* gx, const std::int16_t* gy,
                  std::uint8_t* dst, std::size_t n) {
#if defined(__SSE2__)
  const __m128i zero = _mm_setzero_si128();
  std::size_t x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m128i vx0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(gx + x));
    const __m128i vx1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(gx + x + 8));
    const __m128i vy0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(gy + x));
    const __m128i vy1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(gy + x + 8));
    // Saturating abs: max(v, 0 -sat- v); -32768 maps to 32767.
    const __m128i ax0 = _mm_max_epi16(vx0, _mm_subs_epi16(zero, vx0));
    const __m128i ax1 = _mm_max_epi16(vx1, _mm_subs_epi16(zero, vx1));
    const __m128i ay0 = _mm_max_epi16(vy0, _mm_subs_epi16(zero, vy0));
    const __m128i ay1 = _mm_max_epi16(vy1, _mm_subs_epi16(zero, vy1));
    const __m128i m0 = _mm_adds_epi16(ax0, ay0);
    const __m128i m1 = _mm_adds_epi16(ax1, ay1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + x),
                     _mm_packus_epi16(m0, m1));
  }
  if (x < n) autovec::magnitudeS16(gx + x, gy + x, dst + x, n - x);
#else
  autovec::magnitudeS16(gx, gy, dst, n);
#endif
}

}  // namespace sse2

namespace neon {

void magnitudeS16(const std::int16_t* gx, const std::int16_t* gy,
                  std::uint8_t* dst, std::size_t n) {
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    const int16x8_t ax = vqabsq_s16(vld1q_s16(gx + x));
    const int16x8_t ay = vqabsq_s16(vld1q_s16(gy + x));
    const int16x8_t m = vqaddq_s16(ax, ay);
    vst1_u8(dst + x, vqmovun_s16(m));
  }
  if (x < n) autovec::magnitudeS16(gx + x, gy + x, dst + x, n - x);
}

}  // namespace neon

namespace detail {

MagnitudeFn magnitudeFnFor(KernelPath path) {
  switch (resolvePath(path)) {
    case KernelPath::Avx2:  // no 256-bit magnitude kernel: SSE2 HAND
    case KernelPath::Sse2: return &sse2::magnitudeS16;
    case KernelPath::Neon: return &neon::magnitudeS16;
    case KernelPath::ScalarNoVec: return &novec::magnitudeS16;
    default: return &autovec::magnitudeS16;
  }
}

}  // namespace detail

void gradientMagnitude(const Mat& gx, const Mat& gy, Mat& dst,
                       KernelPath path) {
  SIMDCV_REQUIRE(gx.size() == gy.size(), "magnitude: gx/gy size mismatch");
  SIMDCV_REQUIRE(gx.depth() == Depth::S16 && gy.depth() == Depth::S16,
                 "magnitude: gradients must be s16");
  SIMDCV_REQUIRE(gx.channels() == 1 && gy.channels() == 1,
                 "magnitude: single channel only");
  const KernelPath p = resolvePath(path);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(gx.rows()) * detail::magnitudeRowBytes(gx.cols());
  SIMDCV_TRACE_SCOPE("gradientMagnitude", p, bytes);
  const detail::MagnitudeFn fn = detail::magnitudeFnFor(p);
  Mat out = (dst.sharesStorageWith(gx) || dst.sharesStorageWith(gy))
                ? Mat()
                : std::move(dst);
  out.create(gx.rows(), gx.cols(), U8C1);
  const std::size_t n = static_cast<std::size_t>(gx.cols());
  // Element-wise over (gx, gy): banding rows cannot change the result. The
  // fork decision prices a row via magnitudeRowBytes — the same traffic the
  // trace scope above accounts — and tuning may rescale it per size-class.
  const int heuristic = runtime::parallelThreshold(
      static_cast<std::size_t>(detail::magnitudeRowBytes(gx.cols())),
      gx.rows());
  tune::GrainScope gs("gradientMagnitude", p, bytes, gx.rows(), heuristic);
  runtime::parallel_for(
      {0, gx.rows()},
      [&](runtime::Range band) {
        for (int r = band.begin; r < band.end; ++r)
          fn(gx.ptr<std::int16_t>(r), gy.ptr<std::int16_t>(r),
             out.ptr<std::uint8_t>(r), n);
      },
      gs.grain());
  dst = std::move(out);
}

namespace {

// Per-thread whole-image intermediates of the unfused reference pipeline.
// Mat::create keeps storage when the geometry is unchanged, so repeated
// calls at one size never touch the allocator (asserted by the tests via
// matAllocationCount).
struct EdgeScratch {
  Mat gx, gy, mag;
};

EdgeScratch& edgeScratchForThread() {
  thread_local EdgeScratch scratch;
  return scratch;
}

}  // namespace

namespace detail {

void releaseEdgeScratch() { edgeScratchForThread() = EdgeScratch{}; }

}  // namespace detail

void edgeDetectUnfused(const Mat& src, Mat& dst, double thresh, int ksize,
                       BorderType border, KernelPath path) {
  SIMDCV_TRACE_SCOPE("edge.unfused", resolvePath(path),
                     static_cast<std::uint64_t>(src.rows()) * src.cols() *
                         (src.elemSize() + 1));
  EdgeScratch& s = edgeScratchForThread();
  Sobel(src, s.gx, Depth::S16, 1, 0, ksize, 1.0, border, path);
  Sobel(src, s.gy, Depth::S16, 0, 1, ksize, 1.0, border, path);
  gradientMagnitude(s.gx, s.gy, s.mag, path);
  threshold(s.mag, dst, thresh, 255.0, ThresholdType::Binary, path);
}

void edgeDetect(const Mat& src, Mat& dst, double thresh, int ksize,
                BorderType border, KernelPath path) {
  // Fused and staged forms are bit-exact, so this is purely a per-size
  // scheduling decision (see detail::fuseProfitable). Under SIMDCV_TUNE the
  // heuristic only seeds the trial: the path (for Default requests) and the
  // fuse-vs-staged choice are measured per size-class and the winner served
  // to every later call.
  if (tune::enabled()) {
    const std::uint64_t bytes = static_cast<std::uint64_t>(src.rows()) *
                                src.cols() * (src.elemSize() + 1);
    tune::PathScope ps("edgeDetect", path, bytes);
    const KernelPath p = ps.path();
    const int fallback =
        detail::fuseProfitable(src.cols(), src.rows(), ksize, p) ? 1 : 0;
    tune::ChoiceScope fuse("edgeDetect", "fuse", p, bytes, 2, fallback);
    if (fuse.choice() == 1)
      edgeDetectFused(src, dst, thresh, ksize, border, p);
    else
      edgeDetectUnfused(src, dst, thresh, ksize, border, p);
    return;
  }
  if (detail::fuseProfitable(src.cols(), src.rows(), ksize, path))
    edgeDetectFused(src, dst, thresh, ksize, border, path);
  else
    edgeDetectUnfused(src, dst, thresh, ksize, border, path);
}

}  // namespace simdcv::imgproc
