// Gaussian image pyramids (pyrDown / pyrUp / buildPyramid), composed from
// the separable filter engine with OpenCV's 5-tap pyramid kernel
// [1 4 6 4 1] / 16.
#pragma once

#include <vector>

#include "core/mat.hpp"
#include "imgproc/border.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

/// Blur with the 5-tap pyramid kernel and downsample by 2 (ceil halving,
/// like cv::pyrDown). U8C1 / F32C1.
void pyrDown(const Mat& src, Mat& dst, KernelPath path = KernelPath::Default);

/// Upsample by 2 (zero-stuff) and blur with the pyramid kernel scaled by 4.
void pyrUp(const Mat& src, Mat& dst, KernelPath path = KernelPath::Default);

/// Full pyramid: levels[0] is src (shared storage), each next level is
/// pyrDown of the previous. Stops early if a dimension would reach zero.
std::vector<Mat> buildPyramid(const Mat& src, int maxLevels,
                              KernelPath path = KernelPath::Default);

}  // namespace simdcv::imgproc
