// Color conversion dispatch + channel split/merge.
#include "imgproc/color.hpp"

#include "simd/neon_compat.hpp"

namespace simdcv::imgproc {

const char* toString(ColorCode c) noexcept {
  switch (c) {
    case ColorCode::BGR2GRAY: return "bgr2gray";
    case ColorCode::RGB2GRAY: return "rgb2gray";
    case ColorCode::GRAY2BGR: return "gray2bgr";
    case ColorCode::BGR2RGB: return "bgr2rgb";
    case ColorCode::BGRA2BGR: return "bgra2bgr";
    case ColorCode::BGR2BGRA: return "bgr2bgra";
  }
  return "?";
}

namespace {

void grayRow(const std::uint8_t* bgr, std::uint8_t* gray, std::size_t n,
             bool rgbOrder, KernelPath p) {
  switch (p) {
    case KernelPath::Sse2: sse2::bgr2grayU8(bgr, gray, n, rgbOrder); break;
    case KernelPath::Neon: neon::bgr2grayU8(bgr, gray, n, rgbOrder); break;
    case KernelPath::ScalarNoVec: novec::bgr2grayU8(bgr, gray, n, rgbOrder); break;
    default: autovec::bgr2grayU8(bgr, gray, n, rgbOrder); break;
  }
}

void swapRb(const std::uint8_t* src, std::uint8_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[3 * i] = src[3 * i + 2];
    dst[3 * i + 1] = src[3 * i + 1];
    dst[3 * i + 2] = src[3 * i];
  }
}

}  // namespace

void cvtColor(const Mat& src, Mat& dst, ColorCode code, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "cvtColor: empty source");
  SIMDCV_REQUIRE(src.depth() == Depth::U8, "cvtColor: u8 images only");
  const KernelPath p = resolvePath(path);
  const int rows = src.rows();
  const int cols = src.cols();

  int wantCh = 0, outCh = 0;
  switch (code) {
    case ColorCode::BGR2GRAY:
    case ColorCode::RGB2GRAY: wantCh = 3; outCh = 1; break;
    case ColorCode::GRAY2BGR: wantCh = 1; outCh = 3; break;
    case ColorCode::BGR2RGB: wantCh = 3; outCh = 3; break;
    case ColorCode::BGRA2BGR: wantCh = 4; outCh = 3; break;
    case ColorCode::BGR2BGRA: wantCh = 3; outCh = 4; break;
  }
  SIMDCV_REQUIRE(src.channels() == wantCh, "cvtColor: wrong channel count");

  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(rows, cols, PixelType(Depth::U8, outCh));

  for (int r = 0; r < rows; ++r) {
    const std::uint8_t* s = src.ptr<std::uint8_t>(r);
    std::uint8_t* d = out.ptr<std::uint8_t>(r);
    const std::size_t n = static_cast<std::size_t>(cols);
    switch (code) {
      case ColorCode::BGR2GRAY:
        grayRow(s, d, n, /*rgbOrder=*/false, p);
        break;
      case ColorCode::RGB2GRAY:
        grayRow(s, d, n, /*rgbOrder=*/true, p);
        break;
      case ColorCode::GRAY2BGR:
        for (std::size_t i = 0; i < n; ++i) {
          d[3 * i] = d[3 * i + 1] = d[3 * i + 2] = s[i];
        }
        break;
      case ColorCode::BGR2RGB:
        swapRb(s, d, n);
        break;
      case ColorCode::BGRA2BGR:
        for (std::size_t i = 0; i < n; ++i) {
          d[3 * i] = s[4 * i];
          d[3 * i + 1] = s[4 * i + 1];
          d[3 * i + 2] = s[4 * i + 2];
        }
        break;
      case ColorCode::BGR2BGRA:
        for (std::size_t i = 0; i < n; ++i) {
          d[4 * i] = s[3 * i];
          d[4 * i + 1] = s[3 * i + 1];
          d[4 * i + 2] = s[3 * i + 2];
          d[4 * i + 3] = 255;
        }
        break;
    }
  }
  dst = std::move(out);
}

void split(const Mat& src, std::vector<Mat>& planes, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "split: empty source");
  SIMDCV_REQUIRE(src.depth() == Depth::U8 || src.depth() == Depth::F32,
                 "split: u8/f32 only");
  const KernelPath p = resolvePath(path);
  const int ch = src.channels();
  planes.assign(static_cast<std::size_t>(ch), Mat());
  for (auto& m : planes) m.create(src.rows(), src.cols(), PixelType(src.depth(), 1));
  const std::size_t esz = src.elemSize1();
  for (int r = 0; r < src.rows(); ++r) {
    const std::uint8_t* s = src.ptr<std::uint8_t>(r);
    if (src.depth() == Depth::U8 && ch == 3 && p == KernelPath::Neon) {
      // Structured load does the deinterleave in one instruction on ARM.
      std::uint8_t* d0 = planes[0].ptr<std::uint8_t>(r);
      std::uint8_t* d1 = planes[1].ptr<std::uint8_t>(r);
      std::uint8_t* d2 = planes[2].ptr<std::uint8_t>(r);
      int c = 0;
      for (; c + 16 <= src.cols(); c += 16) {
        const uint8x16x3_t v = vld3q_u8(s + 3 * c);
        vst1q_u8(d0 + c, v.val[0]);
        vst1q_u8(d1 + c, v.val[1]);
        vst1q_u8(d2 + c, v.val[2]);
      }
      for (; c < src.cols(); ++c) {
        d0[c] = s[3 * c];
        d1[c] = s[3 * c + 1];
        d2[c] = s[3 * c + 2];
      }
      continue;
    }
    for (int k = 0; k < ch; ++k) {
      std::uint8_t* d = planes[static_cast<std::size_t>(k)].ptr<std::uint8_t>(r);
      for (int c = 0; c < src.cols(); ++c) {
        std::memcpy(d + static_cast<std::size_t>(c) * esz,
                    s + (static_cast<std::size_t>(c) * ch + k) * esz, esz);
      }
    }
  }
}

void merge(const std::vector<Mat>& planes, Mat& dst, KernelPath path) {
  SIMDCV_REQUIRE(!planes.empty() && planes.size() <= 4, "merge: 1..4 planes");
  const Mat& first = planes[0];
  for (const auto& m : planes) {
    SIMDCV_REQUIRE(m.size() == first.size() && m.type() == first.type() &&
                       m.channels() == 1,
                   "merge: planes must be same-size single-channel");
  }
  const KernelPath p = resolvePath(path);
  const int ch = static_cast<int>(planes.size());
  Mat out = std::move(dst);
  out.create(first.rows(), first.cols(), PixelType(first.depth(), ch));
  const std::size_t esz = first.elemSize1();
  for (int r = 0; r < first.rows(); ++r) {
    std::uint8_t* d = out.ptr<std::uint8_t>(r);
    if (first.depth() == Depth::U8 && ch == 3 && p == KernelPath::Neon) {
      const std::uint8_t* s0 = planes[0].ptr<std::uint8_t>(r);
      const std::uint8_t* s1 = planes[1].ptr<std::uint8_t>(r);
      const std::uint8_t* s2 = planes[2].ptr<std::uint8_t>(r);
      int c = 0;
      for (; c + 16 <= first.cols(); c += 16) {
        uint8x16x3_t v;
        v.val[0] = vld1q_u8(s0 + c);
        v.val[1] = vld1q_u8(s1 + c);
        v.val[2] = vld1q_u8(s2 + c);
        vst3q_u8(d + 3 * c, v);
      }
      for (; c < first.cols(); ++c) {
        d[3 * c] = s0[c];
        d[3 * c + 1] = s1[c];
        d[3 * c + 2] = s2[c];
      }
      continue;
    }
    for (int k = 0; k < ch; ++k) {
      const std::uint8_t* s = planes[static_cast<std::size_t>(k)].ptr<std::uint8_t>(r);
      for (int c = 0; c < first.cols(); ++c) {
        std::memcpy(d + (static_cast<std::size_t>(c) * ch + k) * esz,
                    s + static_cast<std::size_t>(c) * esz, esz);
      }
    }
  }
  dst = std::move(out);
}

}  // namespace simdcv::imgproc
