// Hand-written SSE2 threshold kernels (paper "HAND" arm, Intel).
//
// U8 has no unsigned compare in SSE2, so operands are biased by 0x80 and
// compared signed — the standard OpenCV trick. F32 uses cmpgt + bit select.
#include "imgproc/threshold.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace simdcv::imgproc::sse2 {

void threshU8(const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
              std::uint8_t thresh, std::uint8_t maxval, ThresholdType type) {
  const __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  const __m128i vthresh = _mm_set1_epi8(static_cast<char>(thresh));
  const __m128i vthresh_b = _mm_xor_si128(vthresh, bias);
  const __m128i vmax = _mm_set1_epi8(static_cast<char>(maxval));
  std::size_t x = 0;
  for (; x + 16 <= n; x += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + x));
    const __m128i gt = _mm_cmpgt_epi8(_mm_xor_si128(v, bias), vthresh_b);
    __m128i r;
    switch (type) {
      case ThresholdType::Binary: r = _mm_and_si128(gt, vmax); break;
      case ThresholdType::BinaryInv: r = _mm_andnot_si128(gt, vmax); break;
      case ThresholdType::Trunc: r = _mm_min_epu8(v, vthresh); break;
      case ThresholdType::ToZero: r = _mm_and_si128(gt, v); break;
      case ThresholdType::ToZeroInv: r = _mm_andnot_si128(gt, v); break;
      default: r = v; break;
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + x), r);
  }
  if (x < n) autovec::threshU8(src + x, dst + x, n - x, thresh, maxval, type);
}

void threshF32(const float* src, float* dst, std::size_t n, float thresh,
               float maxval, ThresholdType type) {
  const __m128 vthresh = _mm_set1_ps(thresh);
  const __m128 vmax = _mm_set1_ps(maxval);
  std::size_t x = 0;
  for (; x + 4 <= n; x += 4) {
    const __m128 v = _mm_loadu_ps(src + x);
    const __m128 gt = _mm_cmpgt_ps(v, vthresh);
    __m128 r;
    switch (type) {
      case ThresholdType::Binary: r = _mm_and_ps(gt, vmax); break;
      case ThresholdType::BinaryInv: r = _mm_andnot_ps(gt, vmax); break;
      case ThresholdType::Trunc:
        // NaN must pass through unchanged (scalar: NaN > t is false -> src).
        r = _mm_or_ps(_mm_and_ps(gt, vthresh), _mm_andnot_ps(gt, v));
        break;
      case ThresholdType::ToZero: r = _mm_and_ps(gt, v); break;
      case ThresholdType::ToZeroInv: r = _mm_andnot_ps(gt, v); break;
      default: r = v; break;
    }
    _mm_storeu_ps(dst + x, r);
  }
  if (x < n) autovec::threshF32(src + x, dst + x, n - x, thresh, maxval, type);
}

}  // namespace simdcv::imgproc::sse2

#else

namespace simdcv::imgproc::sse2 {
void threshU8(const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
              std::uint8_t thresh, std::uint8_t maxval, ThresholdType type) {
  autovec::threshU8(src, dst, n, thresh, maxval, type);
}
void threshF32(const float* src, float* dst, std::size_t n, float thresh,
               float maxval, ThresholdType type) {
  autovec::threshF32(src, dst, n, thresh, maxval, type);
}
}  // namespace simdcv::imgproc::sse2

#endif
