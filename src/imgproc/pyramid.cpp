#include "imgproc/pyramid.hpp"

#include "core/convert.hpp"
#include "imgproc/filter.hpp"

namespace simdcv::imgproc {

namespace {

const std::vector<float>& pyrKernel() {
  static const std::vector<float> k = {1.0f / 16, 4.0f / 16, 6.0f / 16,
                                       4.0f / 16, 1.0f / 16};
  return k;
}

}  // namespace

void pyrDown(const Mat& src, Mat& dst, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "pyrDown: empty source");
  SIMDCV_REQUIRE(src.channels() == 1, "pyrDown: single channel only");
  const int dw = (src.cols() + 1) / 2;
  const int dh = (src.rows() + 1) / 2;
  Mat blurred;
  sepFilter2D(src, blurred, src.depth(), pyrKernel(), pyrKernel(),
              BorderType::Reflect101, 0.0, path);
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(dh, dw, src.type());
  const std::size_t esz = src.elemSize();
  for (int y = 0; y < dh; ++y) {
    const std::uint8_t* s = blurred.ptr<std::uint8_t>(2 * y);
    std::uint8_t* d = out.ptr<std::uint8_t>(y);
    for (int x = 0; x < dw; ++x)
      std::memcpy(d + static_cast<std::size_t>(x) * esz,
                  s + static_cast<std::size_t>(2 * x) * esz, esz);
  }
  dst = std::move(out);
}

void pyrUp(const Mat& src, Mat& dst, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "pyrUp: empty source");
  SIMDCV_REQUIRE(src.channels() == 1, "pyrUp: single channel only");
  const int dw = src.cols() * 2;
  const int dh = src.rows() * 2;
  // Zero-stuffed upsample in float (so the x4 gain stays exact for u8).
  Mat stuffed = zeros(dh, dw, F32C1);
  for (int y = 0; y < src.rows(); ++y) {
    float* d = stuffed.ptr<float>(2 * y);
    if (src.depth() == Depth::U8) {
      const std::uint8_t* s = src.ptr<std::uint8_t>(y);
      for (int x = 0; x < src.cols(); ++x) d[2 * x] = static_cast<float>(s[x]);
    } else {
      const float* s = src.ptr<float>(y);
      for (int x = 0; x < src.cols(); ++x) d[2 * x] = s[x];
    }
  }
  // Interpolating filter: pyramid kernel scaled by 2 per axis (4 total)
  // compensates the 3/4 zeros.
  std::vector<float> k = pyrKernel();
  for (auto& v : k) v *= 2.0f;
  Mat up;
  sepFilter2D(stuffed, up, Depth::F32, k, k, BorderType::Reflect101, 0.0, path);
  if (src.depth() == Depth::U8) {
    Mat out;
    core::convertTo(up, out, Depth::U8, 1.0, 0.0, path);
    dst = std::move(out);
  } else {
    dst = std::move(up);
  }
}

std::vector<Mat> buildPyramid(const Mat& src, int maxLevels, KernelPath path) {
  SIMDCV_REQUIRE(maxLevels >= 1, "buildPyramid: need at least one level");
  std::vector<Mat> levels;
  levels.push_back(src);
  for (int l = 1; l < maxLevels; ++l) {
    const Mat& prev = levels.back();
    if (prev.cols() < 2 || prev.rows() < 2) break;
    Mat next;
    pyrDown(prev, next, path);
    levels.push_back(std::move(next));
  }
  return levels;
}

}  // namespace simdcv::imgproc
