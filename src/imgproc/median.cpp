// Median blur implementation.
//
// ksize==3 uses the classic 19-comparator median-of-9 exchange network
// (Paeth / Smith), expressed as min/max pairs so the identical algorithm
// runs scalar, SSE2 (pminub/pmaxub) and NEON (vminq/vmaxq) — bit-exact by
// construction. ksize==5 runs a scalar histogram-based median (Huang's
// algorithm, O(1) amortized per pixel).
#include "imgproc/median.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "imgproc/border.hpp"
#include "simd/neon_compat.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace simdcv::imgproc {

namespace {

// ---- median-of-9 exchange network over a generic element type ---------------
// V is uint8_t, __m128i or uint8x16_t with matching vmin/vmax. Takes a plain
// pointer (not std::array) so vector types with alignment attributes work as
// the element type.
template <typename V, typename MinFn, typename MaxFn>
inline V median9(V* p, MinFn vmin, MaxFn vmax) {
  auto exch = [&](int a, int b) {
    const V lo = vmin(p[a], p[b]);
    const V hi = vmax(p[a], p[b]);
    p[a] = lo;
    p[b] = hi;
  };
  // 19-exchange network (Smith, "Implementing median filters in XC4000E
  // FPGAs"); leaves the median in p[4].
  exch(1, 2); exch(4, 5); exch(7, 8);
  exch(0, 1); exch(3, 4); exch(6, 7);
  exch(1, 2); exch(4, 5); exch(7, 8);
  exch(0, 3); exch(5, 8); exch(4, 7);
  exch(3, 6); exch(1, 4); exch(2, 5);
  exch(4, 7); exch(4, 2); exch(6, 4);
  exch(4, 2);
  return p[4];
}

void median3Row(const std::uint8_t* r0, const std::uint8_t* r1,
                const std::uint8_t* r2, std::uint8_t* dst, int width,
                KernelPath p) {
  // Interior pixels [1, width-1); caller handles the two border columns.
  int x = 1;
#if defined(__SSE2__)
  if (p == KernelPath::Sse2) {
    auto vmin = [](__m128i a, __m128i b) { return _mm_min_epu8(a, b); };
    auto vmax = [](__m128i a, __m128i b) { return _mm_max_epu8(a, b); };
    for (; x + 16 <= width - 1; x += 16) {
      __m128i win[9];
      const std::uint8_t* rows[3] = {r0, r1, r2};
      for (int ry = 0; ry < 3; ++ry)
        for (int rx = -1; rx <= 1; ++rx)
          win[ry * 3 + rx + 1] = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(rows[ry] + x + rx));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + x),
                       median9(win, vmin, vmax));
    }
  }
#endif
  if (p == KernelPath::Neon) {
    auto vmin = [](uint8x16_t a, uint8x16_t b) { return vminq_u8(a, b); };
    auto vmax = [](uint8x16_t a, uint8x16_t b) { return vmaxq_u8(a, b); };
    for (; x + 16 <= width - 1; x += 16) {
      uint8x16_t win[9];
      const std::uint8_t* rows[3] = {r0, r1, r2};
      for (int ry = 0; ry < 3; ++ry)
        for (int rx = -1; rx <= 1; ++rx)
          win[ry * 3 + rx + 1] = vld1q_u8(rows[ry] + x + rx);
      vst1q_u8(dst + x, median9(win, vmin, vmax));
    }
  }
  auto smin = [](std::uint8_t a, std::uint8_t b) { return a < b ? a : b; };
  auto smax = [](std::uint8_t a, std::uint8_t b) { return a > b ? a : b; };
  for (; x < width - 1; ++x) {
    std::uint8_t win[9] = {r0[x - 1], r0[x],     r0[x + 1],
                           r1[x - 1], r1[x],     r1[x + 1],
                           r2[x - 1], r2[x],     r2[x + 1]};
    dst[x] = median9(win, smin, smax);
  }
}

std::uint8_t medianAt(const Mat& src, int y, int x, int radius) {
  // Replicate-border scalar window median (used for borders and ksize 5).
  std::array<std::uint8_t, 25> vals{};
  int n = 0;
  for (int dy = -radius; dy <= radius; ++dy) {
    const int sy = borderInterpolate(y + dy, src.rows(), BorderType::Replicate);
    const std::uint8_t* row = src.ptr<std::uint8_t>(sy);
    for (int dx = -radius; dx <= radius; ++dx) {
      const int sx =
          borderInterpolate(x + dx, src.cols(), BorderType::Replicate);
      vals[static_cast<std::size_t>(n++)] = row[sx];
    }
  }
  std::nth_element(vals.begin(), vals.begin() + n / 2, vals.begin() + n);
  return vals[static_cast<std::size_t>(n / 2)];
}

// Huang's sliding-histogram median for ksize 5 (scalar; O(1) updates).
void median5(const Mat& src, Mat& dst) {
  const int rows = src.rows(), cols = src.cols();
  const int radius = 2, winN = 25, half = winN / 2;
  std::array<int, 256> hist{};
  for (int y = 0; y < rows; ++y) {
    hist.fill(0);
    // Initialize the window at x = 0.
    for (int dy = -radius; dy <= radius; ++dy) {
      const int sy = borderInterpolate(y + dy, rows, BorderType::Replicate);
      const std::uint8_t* row = src.ptr<std::uint8_t>(sy);
      for (int dx = -radius; dx <= radius; ++dx)
        ++hist[row[borderInterpolate(dx, cols, BorderType::Replicate)]];
    }
    std::uint8_t* d = dst.ptr<std::uint8_t>(y);
    for (int x = 0; x < cols; ++x) {
      if (x > 0) {
        // Slide: remove column x-1-radius, add column x+radius.
        const int out = borderInterpolate(x - 1 - radius, cols, BorderType::Replicate);
        const int in = borderInterpolate(x + radius, cols, BorderType::Replicate);
        for (int dy = -radius; dy <= radius; ++dy) {
          const int sy = borderInterpolate(y + dy, rows, BorderType::Replicate);
          const std::uint8_t* row = src.ptr<std::uint8_t>(sy);
          --hist[row[out]];
          ++hist[row[in]];
        }
      }
      int acc = 0;
      for (int v = 0; v < 256; ++v) {
        acc += hist[static_cast<std::size_t>(v)];
        if (acc > half) {
          d[x] = static_cast<std::uint8_t>(v);
          break;
        }
      }
    }
  }
}

}  // namespace

void medianBlur(const Mat& src, Mat& dst, int ksize, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "medianBlur: empty source");
  SIMDCV_REQUIRE(src.type() == U8C1, "medianBlur: u8c1 only");
  SIMDCV_REQUIRE(ksize == 3 || ksize == 5, "medianBlur: ksize must be 3 or 5");
  const KernelPath p = resolvePath(path);
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(src.rows(), src.cols(), U8C1);

  if (ksize == 5) {
    median5(src, out);
    dst = std::move(out);
    return;
  }

  const int rows = src.rows(), cols = src.cols();
  for (int y = 0; y < rows; ++y) {
    const int y0 = borderInterpolate(y - 1, rows, BorderType::Replicate);
    const int y2 = borderInterpolate(y + 1, rows, BorderType::Replicate);
    const std::uint8_t* r0 = src.ptr<std::uint8_t>(y0);
    const std::uint8_t* r1 = src.ptr<std::uint8_t>(y);
    const std::uint8_t* r2 = src.ptr<std::uint8_t>(y2);
    std::uint8_t* d = out.ptr<std::uint8_t>(y);
    if (cols >= 3) {
      median3Row(r0, r1, r2, d, cols, p);
      d[0] = medianAt(src, y, 0, 1);
      d[cols - 1] = medianAt(src, y, cols - 1, 1);
    } else {
      for (int x = 0; x < cols; ++x) d[x] = medianAt(src, y, x, 1);
    }
  }
  dst = std::move(out);
}

}  // namespace simdcv::imgproc
