// Canny edge detector — the full pipeline (gradients, non-maximum
// suppression, double threshold, hysteresis) that the paper's related work
// benchmarks at 1.6x NEON speedup [16][23]. Built on the library's Sobel and
// magnitude substrates.
#pragma once

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

/// Canny edges of a U8C1 image. `lowThresh` <= `highThresh` operate on the
/// L1 gradient magnitude (|gx| + |gy|), like cv::Canny(L2gradient=false).
/// Output is a U8C1 binary map (0 / 255).
/// apertureSize is the Sobel kernel size (3, 5 or 7).
void Canny(const Mat& src, Mat& dst, double lowThresh, double highThresh,
           int apertureSize = 3, KernelPath path = KernelPath::Default);

}  // namespace simdcv::imgproc
