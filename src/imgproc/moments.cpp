#include "imgproc/moments.hpp"

#include <cmath>

namespace simdcv::imgproc {

Moments moments(const Mat& src) {
  SIMDCV_REQUIRE(!src.empty(), "moments: empty source");
  SIMDCV_REQUIRE(src.type() == U8C1 || src.type() == F32C1,
                 "moments: u8c1/f32c1 only");
  Moments m;
  for (int y = 0; y < src.rows(); ++y) {
    // Per-row accumulation of sum x^p I for p = 0..3, then fold y powers:
    // keeps the inner loop one multiply per power.
    double r0 = 0, r1 = 0, r2 = 0, r3 = 0;
    if (src.depth() == Depth::U8) {
      const std::uint8_t* p = src.ptr<std::uint8_t>(y);
      for (int x = 0; x < src.cols(); ++x) {
        const double v = p[x];
        const double xd = x;
        r0 += v;
        r1 += xd * v;
        r2 += xd * xd * v;
        r3 += xd * xd * xd * v;
      }
    } else {
      const float* p = src.ptr<float>(y);
      for (int x = 0; x < src.cols(); ++x) {
        const double v = p[x];
        const double xd = x;
        r0 += v;
        r1 += xd * v;
        r2 += xd * xd * v;
        r3 += xd * xd * xd * v;
      }
    }
    const double yd = y, y2 = yd * yd, y3 = y2 * yd;
    m.m00 += r0;
    m.m10 += r1;
    m.m01 += yd * r0;
    m.m20 += r2;
    m.m11 += yd * r1;
    m.m02 += y2 * r0;
    m.m30 += r3;
    m.m21 += yd * r2;
    m.m12 += y2 * r1;
    m.m03 += y3 * r0;
  }
  if (m.m00 != 0) {
    const double cx = m.m10 / m.m00;
    const double cy = m.m01 / m.m00;
    m.mu20 = m.m20 - cx * m.m10;
    m.mu11 = m.m11 - cx * m.m01;
    m.mu02 = m.m02 - cy * m.m01;
    m.mu30 = m.m30 - 3 * cx * m.m20 + 2 * cx * cx * m.m10;
    m.mu21 = m.m21 - 2 * cx * m.m11 - cy * m.m20 + 2 * cx * cx * m.m01;
    m.mu12 = m.m12 - 2 * cy * m.m11 - cx * m.m02 + 2 * cy * cy * m.m10;
    m.mu03 = m.m03 - 3 * cy * m.m02 + 2 * cy * cy * m.m01;
    const double s2 = m.m00 * m.m00;
    const double s3 = s2 * std::sqrt(m.m00);
    m.nu20 = m.mu20 / s2;
    m.nu11 = m.mu11 / s2;
    m.nu02 = m.mu02 / s2;
    m.nu30 = m.mu30 / s3;
    m.nu21 = m.mu21 / s3;
    m.nu12 = m.mu12 / s3;
    m.nu03 = m.mu03 / s3;
  }
  return m;
}

std::array<double, 7> huMoments(const Moments& m) {
  const double n20 = m.nu20, n02 = m.nu02, n11 = m.nu11;
  const double n30 = m.nu30, n21 = m.nu21, n12 = m.nu12, n03 = m.nu03;
  std::array<double, 7> h{};
  h[0] = n20 + n02;
  h[1] = (n20 - n02) * (n20 - n02) + 4 * n11 * n11;
  h[2] = (n30 - 3 * n12) * (n30 - 3 * n12) + (3 * n21 - n03) * (3 * n21 - n03);
  h[3] = (n30 + n12) * (n30 + n12) + (n21 + n03) * (n21 + n03);
  h[4] = (n30 - 3 * n12) * (n30 + n12) *
             ((n30 + n12) * (n30 + n12) - 3 * (n21 + n03) * (n21 + n03)) +
         (3 * n21 - n03) * (n21 + n03) *
             (3 * (n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03));
  h[5] = (n20 - n02) * ((n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03)) +
         4 * n11 * (n30 + n12) * (n21 + n03);
  h[6] = (3 * n21 - n03) * (n30 + n12) *
             ((n30 + n12) * (n30 + n12) - 3 * (n21 + n03) * (n21 + n03)) -
         (n30 - 3 * n12) * (n21 + n03) *
             (3 * (n30 + n12) * (n30 + n12) - (n21 + n03) * (n21 + n03));
  return h;
}

}  // namespace simdcv::imgproc
