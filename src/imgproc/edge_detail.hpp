// Internal hooks of the edge-detection pipeline: shared per-path dispatch and
// the fused engine's test/tuning surface. Not part of the public API — the
// umbrella header (simdcv.hpp) does not include this file, and its contents
// may change without notice. Include "imgproc/edge.hpp" for the public entry
// points.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/mat.hpp"
#include "imgproc/border.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc::detail {

/// Memory traffic of one magnitude output row: two s16 gradient-row reads
/// plus the u8 write. gradientMagnitude's trace accounting, its parallel
/// grain, and the fused engine's per-stage sample all use this helper so the
/// fork decision prices exactly the traffic the profiler reports.
inline constexpr std::uint64_t magnitudeRowBytes(int cols) noexcept {
  return static_cast<std::uint64_t>(cols) * (2 * sizeof(std::int16_t) + 1);
}

/// Per-path flat-range magnitude kernel selector, shared by
/// gradientMagnitude and the fused pipeline so both resolve a path to the
/// identical kernel (Avx2 deliberately maps to the SSE2 HAND kernel).
using MagnitudeFn = void (*)(const std::int16_t* gx, const std::int16_t* gy,
                             std::uint8_t* dst, std::size_t n);
MagnitudeFn magnitudeFnFor(KernelPath path);

/// Run the fused engine serially over fixed-height row bands (testing hook
/// for band-seam correctness: every band re-primes its own ring, exactly as
/// a parallel band does). bandRows >= 1.
void edgeDetectFusedBanded(const Mat& src, Mat& dst, double thresh, int ksize,
                           BorderType border, KernelPath path, int bandRows);

/// Cache-informed minimum band height for the fused engine at this width
/// (see DESIGN.md: seam amortization + the runtime's fork threshold).
int fusedBandGrain(int width, int ksize, int rows);

/// Per-size fuse-vs-staged scheduling decision used by edgeDetect: false
/// when the staged (unfused) pipeline is expected to win — currently the
/// AVX2 small-image case, where the whole-image intermediates fit in L2 and
/// fusion's per-row stage dispatch costs more than the memory round trips it
/// avoids (the 0.54x regression at 640x480 in BENCH_fusion.json).
/// Overridable for experiments: SIMDCV_EDGE_FUSE=1 forces fused, =0 staged.
bool fuseProfitable(int width, int rows, int ksize, KernelPath path);

/// Per-band scratch footprint of the fused engine in bytes (two kh-row float
/// rings, the padded row, conv/s16/mag rows and tap tables).
std::size_t fusedScratchBytes(int width, int ksize);

/// Drop this thread's cached unfused-pipeline scratch Mats (gx/gy/mag).
void releaseEdgeScratch();

}  // namespace simdcv::imgproc::detail
