#include "imgproc/kernels.hpp"

#include <cmath>

#include "core/saturate.hpp"
#include "imgproc/border.hpp"

namespace simdcv::imgproc {

std::vector<float> getGaussianKernel(int ksize, double sigma) {
  SIMDCV_REQUIRE(ksize > 0 && (ksize & 1) == 1, "Gaussian ksize must be odd");
  if (sigma <= 0) sigma = 0.3 * ((ksize - 1) * 0.5 - 1) + 0.8;
  const double s2 = 2.0 * sigma * sigma;
  const int c = ksize / 2;
  std::vector<double> k(static_cast<std::size_t>(ksize));
  double sum = 0;
  for (int i = 0; i < ksize; ++i) {
    const double d = i - c;
    k[static_cast<std::size_t>(i)] = std::exp(-d * d / s2);
    sum += k[static_cast<std::size_t>(i)];
  }
  std::vector<float> out(static_cast<std::size_t>(ksize));
  for (int i = 0; i < ksize; ++i)
    out[static_cast<std::size_t>(i)] =
        static_cast<float>(k[static_cast<std::size_t>(i)] / sum);
  return out;
}

int gaussianKsizeFromSigma(double sigma) {
  SIMDCV_REQUIRE(sigma > 0, "sigma must be positive to derive ksize");
  int k = cvRound(sigma * 3.0 * 2.0 + 1.0) | 1;
  if (k < 3) k = 3;
  return k;
}

std::vector<float> getDerivKernel(int order, int ksize, bool normalize) {
  SIMDCV_REQUIRE(ksize > 0 && (ksize & 1) == 1, "deriv ksize must be odd");
  SIMDCV_REQUIRE(order >= 0 && order < ksize, "derivative order out of range");
  // Build in exact integer arithmetic, then scale.
  std::vector<long long> k{1};
  auto convolve = [&k](long long a, long long b) {
    // k <- k * [a b]
    std::vector<long long> r(k.size() + 1, 0);
    for (std::size_t i = 0; i < k.size(); ++i) {
      r[i] += k[i] * a;
      r[i + 1] += k[i] * b;
    }
    k = std::move(r);
  };
  const int smooth = ksize - 1 - order;
  for (int i = 0; i < smooth; ++i) convolve(1, 1);
  for (int i = 0; i < order; ++i) convolve(-1, 1);
  const double scale = normalize ? 1.0 / static_cast<double>(1LL << smooth) : 1.0;
  std::vector<float> out(k.size());
  for (std::size_t i = 0; i < k.size(); ++i)
    out[i] = static_cast<float>(k[i] * scale);
  return out;
}

void getDerivKernels(std::vector<float>& kx, std::vector<float>& ky, int dx,
                     int dy, int ksize, bool normalize) {
  kx = getDerivKernel(dx, ksize, normalize);
  ky = getDerivKernel(dy, ksize, normalize);
}

std::vector<float> getScharrKernel(int order, bool normalize) {
  SIMDCV_REQUIRE(order == 0 || order == 1, "Scharr order must be 0 or 1");
  if (order == 1) return {-1.0f, 0.0f, 1.0f};
  const float s = normalize ? 1.0f / 16.0f : 1.0f;
  return {3.0f * s, 10.0f * s, 3.0f * s};
}

const char* toString(BorderType b) noexcept {
  switch (b) {
    case BorderType::Constant: return "constant";
    case BorderType::Replicate: return "replicate";
    case BorderType::Reflect: return "reflect";
    case BorderType::Reflect101: return "reflect101";
    case BorderType::Wrap: return "wrap";
  }
  return "?";
}

}  // namespace simdcv::imgproc
