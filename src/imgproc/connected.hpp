// Connected-component labeling of binary images (two-pass union-find),
// with per-component statistics — the standard follow-up to thresholding
// (the paper's benchmark 2) in segmentation pipelines.
#pragma once

#include <vector>

#include "core/mat.hpp"

namespace simdcv::imgproc {

enum class Connectivity : std::uint8_t { Four = 4, Eight = 8 };

struct ComponentStats {
  int label = 0;
  int area = 0;               ///< pixel count
  Rect bbox;                  ///< tight bounding box
  double centroid_x = 0;
  double centroid_y = 0;
};

/// Label non-zero pixels of a U8C1 binary image. `labels` receives S32C1
/// with background 0 and components numbered 1..N in first-encounter order.
/// Returns N (number of foreground components).
int connectedComponents(const Mat& binary, Mat& labels,
                        Connectivity conn = Connectivity::Eight);

/// Labeling plus per-component statistics (stats[i] describes label i+1).
int connectedComponentsWithStats(const Mat& binary, Mat& labels,
                                 std::vector<ComponentStats>& stats,
                                 Connectivity conn = Connectivity::Eight);

}  // namespace simdcv::imgproc
