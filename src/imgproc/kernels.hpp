// 1-D filter kernel generators: Gaussian and Sobel/Scharr derivative kernels.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace simdcv::imgproc {

/// Symmetric 1-D Gaussian of odd length `ksize`, normalized to sum 1.
/// sigma <= 0 derives sigma from ksize with OpenCV's rule:
///   sigma = 0.3 * ((ksize - 1) * 0.5 - 1) + 0.8
std::vector<float> getGaussianKernel(int ksize, double sigma);

/// Pick an odd kernel size for the given sigma (OpenCV's heuristic for U8).
int gaussianKsizeFromSigma(double sigma);

/// Separable Sobel-family derivative kernels of length `ksize` (odd):
/// the result of smoothing [1 1]^(ksize-1-order) convolved with the
/// difference operator [-1 1]^order. ksize==3, order==1 gives [-1 0 1];
/// order==0 gives [1 2 1].
/// If `normalize`, the smoothing part is scaled to unit sum (i.e. divide by
/// 2^(ksize-1-order)).
std::vector<float> getDerivKernel(int order, int ksize, bool normalize = false);

/// Both kernels of a (dx, dy) derivative pair: kx applied along rows,
/// ky along columns.
void getDerivKernels(std::vector<float>& kx, std::vector<float>& ky, int dx,
                     int dy, int ksize, bool normalize = false);

/// Scharr 3-tap kernels: derivative [-1 0 1], smoothing [3 10 3].
std::vector<float> getScharrKernel(int order, bool normalize = false);

}  // namespace simdcv::imgproc
