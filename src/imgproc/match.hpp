// Template matching by sum of absolute differences (SAD) — the workhorse of
// block-based video motion estimation, and on u8 data the single most
// SIMD-friendly reduction there is (PSADBW sums 16 absolute differences per
// instruction; NEON uses the vabal widening ladder).
#pragma once

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

/// SAD between a template and an equally-sized window of `img` at (x, y).
std::uint64_t sadAt(const Mat& img, const Mat& tmpl, int x, int y,
                    KernelPath path = KernelPath::Default);

/// Dense SAD map: result(y, x) = SAD of tmpl against img at (x, y).
/// result size is (img.cols - tmpl.cols + 1) x (img.rows - tmpl.rows + 1),
/// depth F32 (exact for SAD values below 2^24). U8C1 inputs.
void matchTemplateSad(const Mat& img, const Mat& tmpl, Mat& result,
                      KernelPath path = KernelPath::Default);

struct MatchResult {
  int x = -1, y = -1;
  std::uint64_t sad = 0;
};
/// Best (minimum-SAD) placement of tmpl inside img.
MatchResult findBestMatch(const Mat& img, const Mat& tmpl,
                          KernelPath path = KernelPath::Default);

// Per-path flat SAD kernels over n bytes.
namespace autovec {
std::uint64_t sadRange(const std::uint8_t* a, const std::uint8_t* b,
                       std::size_t n);
}
namespace novec {
std::uint64_t sadRange(const std::uint8_t* a, const std::uint8_t* b,
                       std::size_t n);
}
namespace sse2 {
std::uint64_t sadRange(const std::uint8_t* a, const std::uint8_t* b,
                       std::size_t n);
}
namespace neon {
std::uint64_t sadRange(const std::uint8_t* a, const std::uint8_t* b,
                       std::size_t n);
}

}  // namespace simdcv::imgproc
