// Filter scalar workers, auto-vectorized build (paper "AUTO" arm).
#define SIMDCV_SCALAR_NS autovec
#include "imgproc/filter_scalar.inl"
