// Morphological operations with rectangular structuring elements, plus the
// box filter. Erode/dilate decompose separably into running 1-D min/max
// passes, which map directly onto pminub/pmaxub and vminq/vmaxq — the same
// SIMD shape as the threshold kernel.
#pragma once

#include "core/mat.hpp"
#include "imgproc/border.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

/// Erosion (local minimum) over a kw x kh rectangle. U8C1.
/// Border: replicate (so borders never brighten under erosion).
void erode(const Mat& src, Mat& dst, Size ksize = {3, 3},
           KernelPath path = KernelPath::Default);

/// Dilation (local maximum) over a kw x kh rectangle. U8C1.
void dilate(const Mat& src, Mat& dst, Size ksize = {3, 3},
            KernelPath path = KernelPath::Default);

/// Morphological opening (erode then dilate) and closing (dilate then
/// erode).
void morphOpen(const Mat& src, Mat& dst, Size ksize = {3, 3},
               KernelPath path = KernelPath::Default);
void morphClose(const Mat& src, Mat& dst, Size ksize = {3, 3},
                KernelPath path = KernelPath::Default);

/// Normalized box filter (mean over a kw x kh window) for U8C1 / F32C1,
/// computed through the separable engine with uniform kernels.
void boxFilter(const Mat& src, Mat& dst, Size ksize,
               BorderType border = BorderType::Reflect101,
               KernelPath path = KernelPath::Default);

}  // namespace simdcv::imgproc
