// Resize implementation.
//
// Bilinear is two-pass: a gather-based horizontal interpolation into u16
// (fixed point, 7-bit weights) or f32 row buffers, then a SIMD vertical
// blend of the two cached rows. The horizontal pass is irregular (gathers),
// which is exactly why resize was among the hardest kernels for 2012
// auto-vectorizers; the vertical blend is where the SIMD win lives.
// AUTO and ScalarNoVec share the scalar implementation here (the gather
// loop does not vectorize either way).
#include "imgproc/resize.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/saturate.hpp"
#include "simd/neon_compat.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace simdcv::imgproc {

namespace {

constexpr int kWeightBits = 7;                    // wx, wy in [0, 128]
constexpr int kWeightOne = 1 << kWeightBits;      // 128
constexpr int kRound = 1 << (2 * kWeightBits - 1);  // 8192

struct LinearMap {
  std::vector<int> lo, hi;   // clamped source indices per output coord
  std::vector<int> w;        // weight of `hi` (fixed point, 0..128)
  std::vector<float> wf;     // same weight in float
};

LinearMap buildMap(int dstLen, int srcLen) {
  LinearMap m;
  m.lo.resize(static_cast<std::size_t>(dstLen));
  m.hi.resize(static_cast<std::size_t>(dstLen));
  m.w.resize(static_cast<std::size_t>(dstLen));
  m.wf.resize(static_cast<std::size_t>(dstLen));
  const double scale = static_cast<double>(srcLen) / dstLen;
  for (int d = 0; d < dstLen; ++d) {
    double s = (d + 0.5) * scale - 0.5;
    if (s < 0) s = 0;
    int s0 = static_cast<int>(s);
    double frac = s - s0;
    if (s0 >= srcLen - 1) {
      s0 = srcLen - 1;
      frac = 0;
    }
    m.lo[static_cast<std::size_t>(d)] = s0;
    m.hi[static_cast<std::size_t>(d)] = std::min(s0 + 1, srcLen - 1);
    m.w[static_cast<std::size_t>(d)] = cvRound(frac * kWeightOne);
    m.wf[static_cast<std::size_t>(d)] = static_cast<float>(frac);
  }
  return m;
}

// ---- vertical blends (the SIMD-friendly pass) --------------------------------
// u16 rows r0/r1 hold horizontal results scaled by kWeightOne (max 32640).
void vblendU16Scalar(const std::uint16_t* r0, const std::uint16_t* r1,
                     std::uint8_t* dst, int n, int wy) {
  const int w0 = kWeightOne - wy;
  for (int i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(
        (r0[i] * w0 + r1[i] * wy + kRound) >> (2 * kWeightBits));
  }
}

#if defined(__SSE2__)
void vblendU16Sse2(const std::uint16_t* r0, const std::uint16_t* r1,
                   std::uint8_t* dst, int n, int wy) {
  const short w0 = static_cast<short>(kWeightOne - wy);
  const short w1 = static_cast<short>(wy);
  const __m128i coef = _mm_set_epi16(w1, w0, w1, w0, w1, w0, w1, w0);
  const __m128i rnd = _mm_set1_epi32(kRound);
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i out16[2];
    for (int half = 0; half < 2; ++half) {
      const __m128i a = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(r0 + i + half * 8));
      const __m128i b = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(r1 + i + half * 8));
      // Interleave (a,b) pairs; PMADDWD computes a*w0 + b*w1 per 32-bit lane.
      const __m128i lo = _mm_madd_epi16(_mm_unpacklo_epi16(a, b), coef);
      const __m128i hi = _mm_madd_epi16(_mm_unpackhi_epi16(a, b), coef);
      out16[half] =
          _mm_packs_epi32(_mm_srai_epi32(_mm_add_epi32(lo, rnd), 2 * kWeightBits),
                          _mm_srai_epi32(_mm_add_epi32(hi, rnd), 2 * kWeightBits));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_packus_epi16(out16[0], out16[1]));
  }
  if (i < n) vblendU16Scalar(r0 + i, r1 + i, dst + i, n - i, wy);
}
#endif

void vblendU16Neon(const std::uint16_t* r0, const std::uint16_t* r1,
                   std::uint8_t* dst, int n, int wy) {
  const uint16x4_t w0 = vdup_n_u16(static_cast<std::uint16_t>(kWeightOne - wy));
  const uint16x4_t w1 = vdup_n_u16(static_cast<std::uint16_t>(wy));
  const uint32x4_t rnd = vdupq_n_u32(kRound);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint16x8_t a = vld1q_u16(r0 + i);
    const uint16x8_t b = vld1q_u16(r1 + i);
    uint32x4_t lo = vmlal_u16(rnd, vget_low_u16(a), w0);
    lo = vmlal_u16(lo, vget_low_u16(b), w1);
    uint32x4_t hi = vmlal_u16(rnd, vget_high_u16(a), w0);
    hi = vmlal_u16(hi, vget_high_u16(b), w1);
    const uint16x8_t m = vcombine_u16(vshrn_n_u32(lo, 2 * kWeightBits),
                                      vshrn_n_u32(hi, 2 * kWeightBits));
    vst1_u8(dst + i, vmovn_u16(m));
  }
  if (i < n) vblendU16Scalar(r0 + i, r1 + i, dst + i, n - i, wy);
}

void vblendF32Scalar(const float* r0, const float* r1, float* dst, int n,
                     float wy) {
  const float w0 = 1.0f - wy;
  for (int i = 0; i < n; ++i) dst[i] = r0[i] * w0 + r1[i] * wy;
}

#if defined(__SSE2__)
void vblendF32Sse2(const float* r0, const float* r1, float* dst, int n,
                   float wy) {
  const __m128 w0 = _mm_set1_ps(1.0f - wy);
  const __m128 w1 = _mm_set1_ps(wy);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i,
                  _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(r0 + i), w0),
                             _mm_mul_ps(_mm_loadu_ps(r1 + i), w1)));
  }
  if (i < n) vblendF32Scalar(r0 + i, r1 + i, dst + i, n - i, wy);
}
#endif

void vblendF32Neon(const float* r0, const float* r1, float* dst, int n,
                   float wy) {
  const float w0 = 1.0f - wy;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    float32x4_t acc = vmulq_n_f32(vld1q_f32(r0 + i), w0);
    acc = vmlaq_n_f32(acc, vld1q_f32(r1 + i), wy);
    vst1q_f32(dst + i, acc);
  }
  if (i < n) vblendF32Scalar(r0 + i, r1 + i, dst + i, n - i, wy);
}

// ---- nearest ------------------------------------------------------------------
void resizeNearest(const Mat& src, Mat& dst) {
  const int ch = src.channels();
  const std::size_t esz = src.elemSize1();
  const double sx = static_cast<double>(src.cols()) / dst.cols();
  const double sy = static_cast<double>(src.rows()) / dst.rows();
  std::vector<int> xmap(static_cast<std::size_t>(dst.cols()));
  for (int x = 0; x < dst.cols(); ++x)
    xmap[static_cast<std::size_t>(x)] =
        std::min(static_cast<int>(x * sx), src.cols() - 1);
  for (int y = 0; y < dst.rows(); ++y) {
    const int srcY = std::min(static_cast<int>(y * sy), src.rows() - 1);
    const std::uint8_t* s = src.ptr<std::uint8_t>(srcY);
    std::uint8_t* d = dst.ptr<std::uint8_t>(y);
    for (int x = 0; x < dst.cols(); ++x) {
      std::memcpy(d + static_cast<std::size_t>(x) * ch * esz,
                  s + static_cast<std::size_t>(xmap[static_cast<std::size_t>(x)]) * ch * esz,
                  ch * esz);
    }
  }
}

// ---- bilinear u8 (C1 / C3) ------------------------------------------------------
void resizeLinearU8(const Mat& src, Mat& dst, KernelPath p) {
  const int ch = src.channels();
  const int dw = dst.cols() * ch;
  const LinearMap xm = buildMap(dst.cols(), src.cols());
  const LinearMap ym = buildMap(dst.rows(), src.rows());

  // Two cached horizontal rows (u16, scaled by 128) keyed by source row.
  std::vector<std::uint16_t> rowBuf[2] = {
      std::vector<std::uint16_t>(static_cast<std::size_t>(dw)),
      std::vector<std::uint16_t>(static_cast<std::size_t>(dw))};
  int cached[2] = {-1, -1};

  auto hrow = [&](int srcRow, std::uint16_t* out) {
    const std::uint8_t* s = src.ptr<std::uint8_t>(srcRow);
    for (int x = 0; x < dst.cols(); ++x) {
      const int lo = xm.lo[static_cast<std::size_t>(x)] * ch;
      const int hi = xm.hi[static_cast<std::size_t>(x)] * ch;
      const int w1 = xm.w[static_cast<std::size_t>(x)];
      const int w0 = kWeightOne - w1;
      for (int k = 0; k < ch; ++k) {
        out[x * ch + k] =
            static_cast<std::uint16_t>(s[lo + k] * w0 + s[hi + k] * w1);
      }
    }
  };

  for (int y = 0; y < dst.rows(); ++y) {
    const int y0 = ym.lo[static_cast<std::size_t>(y)];
    const int y1 = ym.hi[static_cast<std::size_t>(y)];
    const int wy = ym.w[static_cast<std::size_t>(y)];
    // Fill/reuse the two row caches.
    for (int need : {y0, y1}) {
      if (cached[0] != need && cached[1] != need) {
        const int slot = (cached[0] != y0 && cached[0] != y1) ? 0 : 1;
        hrow(need, rowBuf[slot].data());
        cached[slot] = need;
      }
    }
    const std::uint16_t* r0 =
        cached[0] == y0 ? rowBuf[0].data() : rowBuf[1].data();
    const std::uint16_t* r1 =
        cached[0] == y1 ? rowBuf[0].data() : rowBuf[1].data();
    std::uint8_t* d = dst.ptr<std::uint8_t>(y);
    switch (p) {
#if defined(__SSE2__)
      case KernelPath::Sse2: vblendU16Sse2(r0, r1, d, dw, wy); break;
#endif
      case KernelPath::Neon: vblendU16Neon(r0, r1, d, dw, wy); break;
      default: vblendU16Scalar(r0, r1, d, dw, wy); break;
    }
  }
}

// ---- bilinear f32 (C1) ----------------------------------------------------------
void resizeLinearF32(const Mat& src, Mat& dst, KernelPath p) {
  const int dw = dst.cols();
  const LinearMap xm = buildMap(dst.cols(), src.cols());
  const LinearMap ym = buildMap(dst.rows(), src.rows());
  std::vector<float> rowBuf[2] = {
      std::vector<float>(static_cast<std::size_t>(dw)),
      std::vector<float>(static_cast<std::size_t>(dw))};
  int cached[2] = {-1, -1};

  auto hrow = [&](int srcRow, float* out) {
    const float* s = src.ptr<float>(srcRow);
    for (int x = 0; x < dw; ++x) {
      const float w1 = xm.wf[static_cast<std::size_t>(x)];
      out[x] = s[xm.lo[static_cast<std::size_t>(x)]] * (1.0f - w1) +
               s[xm.hi[static_cast<std::size_t>(x)]] * w1;
    }
  };

  for (int y = 0; y < dst.rows(); ++y) {
    const int y0 = ym.lo[static_cast<std::size_t>(y)];
    const int y1 = ym.hi[static_cast<std::size_t>(y)];
    const float wy = ym.wf[static_cast<std::size_t>(y)];
    for (int need : {y0, y1}) {
      if (cached[0] != need && cached[1] != need) {
        const int slot = (cached[0] != y0 && cached[0] != y1) ? 0 : 1;
        hrow(need, rowBuf[slot].data());
        cached[slot] = need;
      }
    }
    const float* r0 = cached[0] == y0 ? rowBuf[0].data() : rowBuf[1].data();
    const float* r1 = cached[0] == y1 ? rowBuf[0].data() : rowBuf[1].data();
    float* d = dst.ptr<float>(y);
    switch (p) {
#if defined(__SSE2__)
      case KernelPath::Sse2: vblendF32Sse2(r0, r1, d, dw, wy); break;
#endif
      case KernelPath::Neon: vblendF32Neon(r0, r1, d, dw, wy); break;
      default: vblendF32Scalar(r0, r1, d, dw, wy); break;
    }
  }
}

}  // namespace

void resize(const Mat& src, Mat& dst, Size dsize, Interp interp,
            KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "resize: empty source");
  SIMDCV_REQUIRE(dsize.width > 0 && dsize.height > 0, "resize: bad dsize");
  const bool u8ok = src.depth() == Depth::U8 &&
                    (src.channels() == 1 || src.channels() == 3);
  const bool f32ok = src.depth() == Depth::F32 && src.channels() == 1;
  SIMDCV_REQUIRE(u8ok || f32ok, "resize: u8c1/u8c3/f32c1 only");

  const KernelPath p = resolvePath(path);
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(dsize.height, dsize.width, src.type());

  if (interp == Interp::Nearest) {
    resizeNearest(src, out);
  } else if (src.depth() == Depth::U8) {
    resizeLinearU8(src, out, p);
  } else {
    resizeLinearF32(src, out, p);
  }
  dst = std::move(out);
}

}  // namespace simdcv::imgproc
