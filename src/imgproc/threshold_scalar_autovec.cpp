// Threshold scalar kernels, auto-vectorized build (paper "AUTO" arm).
#define SIMDCV_SCALAR_NS autovec
#include "imgproc/threshold_scalar.inl"
