// FAST-9 implementation.
//
// The high-speed rejection test (cardinal points 0/4/8/12 first) discards
// most pixels with four comparisons; full segment evaluation runs only on
// survivors. Scores are computed by bisection on the threshold, and
// non-maximum suppression compares scores in the 3x3 neighbourhood —
// the structure of the original FAST-ER reference code.
#include "imgproc/fast.hpp"

#include <array>

namespace simdcv::imgproc {

namespace {

// Bresenham circle of radius 3, clockwise from 12 o'clock.
constexpr std::array<std::array<int, 2>, 16> kCircle = {{
    {0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
    {0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}};

bool segmentTest(const std::uint8_t* center, const std::array<int, 16>& offsets,
                 int threshold) {
  const int p = *center;
  const int hi = p + threshold;
  const int lo = p - threshold;

  // High-speed test on the four cardinal points: any 9 contiguous circle
  // pixels span at least two *adjacent* cardinals (they are 4 apart), so a
  // corner needs some adjacent cardinal pair on the same side.
  unsigned cb = 0, cd = 0;  // 4-bit masks over cardinals 0,4,8,12
  for (int i = 0; i < 4; ++i) {
    const int v = center[offsets[static_cast<std::size_t>(4 * i)]];
    cb |= static_cast<unsigned>(v > hi) << i;
    cd |= static_cast<unsigned>(v < lo) << i;
  }
  auto adjacentPair = [](unsigned m) {
    const unsigned wrapped = m | (m << 4);
    return (wrapped & (wrapped >> 1) & 0xfu) != 0;
  };
  if (!adjacentPair(cb) && !adjacentPair(cd)) return false;

  // Full test: longest run of same-side pixels on the wrapped circle.
  unsigned brightMask = 0, darkMask = 0;
  for (int i = 0; i < 16; ++i) {
    const int v = center[offsets[static_cast<std::size_t>(i)]];
    brightMask |= static_cast<unsigned>(v > hi) << i;
    darkMask |= static_cast<unsigned>(v < lo) << i;
  }
  auto hasRun9 = [](unsigned mask) {
    const unsigned wrapped = mask | (mask << 16);  // handle circular runs
    unsigned run = wrapped;
    for (int i = 1; i < 9; ++i) run &= wrapped >> i;
    return (run & 0xffffu) != 0;
  };
  return hasRun9(brightMask) || hasRun9(darkMask);
}

}  // namespace

bool fast9IsCorner(const Mat& src, int x, int y, int threshold) {
  SIMDCV_REQUIRE(src.type() == U8C1, "fast9: u8c1 only");
  SIMDCV_REQUIRE(x >= 3 && y >= 3 && x < src.cols() - 3 && y < src.rows() - 3,
                 "fast9IsCorner: needs 3px margin");
  std::array<int, 16> offsets;
  for (int i = 0; i < 16; ++i)
    offsets[static_cast<std::size_t>(i)] =
        kCircle[static_cast<std::size_t>(i)][1] * static_cast<int>(src.step()) +
        kCircle[static_cast<std::size_t>(i)][0];
  return segmentTest(src.ptr<std::uint8_t>(y) + x, offsets, threshold);
}

std::vector<KeyPoint> fast9(const Mat& src, int threshold,
                            bool nonmaxSuppression, KernelPath /*path*/) {
  SIMDCV_REQUIRE(!src.empty(), "fast9: empty source");
  SIMDCV_REQUIRE(src.type() == U8C1, "fast9: u8c1 only");
  SIMDCV_REQUIRE(threshold >= 1 && threshold <= 254, "fast9: threshold in [1,254]");
  const int rows = src.rows(), cols = src.cols();
  std::vector<KeyPoint> out;
  if (rows < 7 || cols < 7) return out;

  std::array<int, 16> offsets;
  for (int i = 0; i < 16; ++i)
    offsets[static_cast<std::size_t>(i)] =
        kCircle[static_cast<std::size_t>(i)][1] * static_cast<int>(src.step()) +
        kCircle[static_cast<std::size_t>(i)][0];

  // Score = largest t' >= threshold at which the segment test still passes,
  // found by bisection (monotone in t').
  auto scoreOf = [&](const std::uint8_t* c) {
    int lo = threshold, hi = 255;
    while (lo < hi) {
      const int mid = (lo + hi + 1) / 2;
      if (segmentTest(c, offsets, mid))
        lo = mid;
      else
        hi = mid - 1;
    }
    return lo;
  };

  Mat scores;  // dense score map only when NMS needs neighbours
  if (nonmaxSuppression) scores = zeros(rows, cols, S32C1);

  std::vector<KeyPoint> candidates;
  for (int y = 3; y < rows - 3; ++y) {
    const std::uint8_t* row = src.ptr<std::uint8_t>(y);
    for (int x = 3; x < cols - 3; ++x) {
      if (!segmentTest(row + x, offsets, threshold)) continue;
      KeyPoint kp{x, y, scoreOf(row + x)};
      if (nonmaxSuppression) scores.at<std::int32_t>(y, x) = kp.score;
      candidates.push_back(kp);
    }
  }
  if (!nonmaxSuppression) return candidates;

  for (const KeyPoint& kp : candidates) {
    const int s = kp.score;
    bool isMax = true;
    for (int dy = -1; dy <= 1 && isMax; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const int ns = scores.at<std::int32_t>(kp.y + dy, kp.x + dx);
        // Strict ordering with a deterministic tie-break on position.
        if (ns > s || (ns == s && (dy < 0 || (dy == 0 && dx < 0)))) {
          isMax = false;
          break;
        }
      }
    }
    if (isMax) out.push_back(kp);
  }
  return out;
}

}  // namespace simdcv::imgproc
