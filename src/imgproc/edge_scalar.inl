// Scalar L1 gradient magnitude, shared between autovec/novec TUs.

#include "core/saturate.hpp"
#include "imgproc/edge.hpp"

namespace simdcv::imgproc::SIMDCV_SCALAR_NS {

void magnitudeS16(const std::int16_t* gx, const std::int16_t* gy,
                  std::uint8_t* dst, std::size_t n) {
  for (std::size_t x = 0; x < n; ++x) {
    const int m = std::abs(static_cast<int>(gx[x])) +
                  std::abs(static_cast<int>(gy[x]));
    dst[x] = saturate_cast<std::uint8_t>(m);
  }
}

}  // namespace simdcv::imgproc::SIMDCV_SCALAR_NS
