// SAD scalar kernel, vectorizer-disabled ablation build.
#define SIMDCV_SCALAR_NS novec
#include "imgproc/match_scalar.inl"
