// Hand-written SSE2 row/column convolution workers (paper "HAND", Intel).
// Both keep the per-element tap order identical to the scalar reference, so
// results are bit-exact with the AUTO arm.
#include "imgproc/filter.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace simdcv::imgproc::sse2 {

void rowConv(const float* padded, float* out, int width, const float* k,
             int ksize) {
  int i = 0;
  for (; i + 4 <= width; i += 4) {
    __m128 acc = _mm_mul_ps(_mm_set1_ps(k[0]), _mm_loadu_ps(padded + i));
    for (int j = 1; j < ksize; ++j) {
      acc = _mm_add_ps(acc,
                       _mm_mul_ps(_mm_set1_ps(k[j]), _mm_loadu_ps(padded + i + j)));
    }
    _mm_storeu_ps(out + i, acc);
  }
  for (; i < width; ++i) {
    float acc = 0.0f;
    for (int j = 0; j < ksize; ++j) acc += k[j] * padded[i + j];
    out[i] = acc;
  }
}

void colConv(const float* const* rows, float* out, int width, const float* k,
             int ksize) {
  int i = 0;
  for (; i + 8 <= width; i += 8) {
    __m128 acc0 = _mm_mul_ps(_mm_set1_ps(k[0]), _mm_loadu_ps(rows[0] + i));
    __m128 acc1 = _mm_mul_ps(_mm_set1_ps(k[0]), _mm_loadu_ps(rows[0] + i + 4));
    for (int r = 1; r < ksize; ++r) {
      const __m128 c = _mm_set1_ps(k[r]);
      acc0 = _mm_add_ps(acc0, _mm_mul_ps(c, _mm_loadu_ps(rows[r] + i)));
      acc1 = _mm_add_ps(acc1, _mm_mul_ps(c, _mm_loadu_ps(rows[r] + i + 4)));
    }
    _mm_storeu_ps(out + i, acc0);
    _mm_storeu_ps(out + i + 4, acc1);
  }
  for (; i < width; ++i) {
    float acc = 0.0f;
    for (int r = 0; r < ksize; ++r) acc += k[r] * rows[r][i];
    out[i] = acc;
  }
}

}  // namespace simdcv::imgproc::sse2

#else

namespace simdcv::imgproc::sse2 {
void rowConv(const float* padded, float* out, int width, const float* k,
             int ksize) {
  autovec::rowConv(padded, out, width, k, ksize);
}
void colConv(const float* const* rows, float* out, int width, const float* k,
             int ksize) {
  autovec::colConv(rows, out, width, k, ksize);
}
}  // namespace simdcv::imgproc::sse2

#endif
