// Hand-written NEON row/column convolution workers (paper "HAND", ARM).
// vmlaq_n_f32 (multiply-accumulate by scalar) is the natural NEON spelling —
// an op SSE2 lacks, one of the instruction-set asymmetries the paper
// catalogues in Section II-C.
#include "imgproc/filter.hpp"
#include "simd/neon_compat.hpp"

namespace simdcv::imgproc::neon {

void rowConv(const float* padded, float* out, int width, const float* k,
             int ksize) {
  int i = 0;
  for (; i + 4 <= width; i += 4) {
    float32x4_t acc = vmulq_n_f32(vld1q_f32(padded + i), k[0]);
    for (int j = 1; j < ksize; ++j) {
      acc = vmlaq_n_f32(acc, vld1q_f32(padded + i + j), k[j]);
    }
    vst1q_f32(out + i, acc);
  }
  for (; i < width; ++i) {
    float acc = 0.0f;
    for (int j = 0; j < ksize; ++j) acc += k[j] * padded[i + j];
    out[i] = acc;
  }
}

void colConv(const float* const* rows, float* out, int width, const float* k,
             int ksize) {
  int i = 0;
  for (; i + 8 <= width; i += 8) {
    float32x4_t acc0 = vmulq_n_f32(vld1q_f32(rows[0] + i), k[0]);
    float32x4_t acc1 = vmulq_n_f32(vld1q_f32(rows[0] + i + 4), k[0]);
    for (int r = 1; r < ksize; ++r) {
      acc0 = vmlaq_n_f32(acc0, vld1q_f32(rows[r] + i), k[r]);
      acc1 = vmlaq_n_f32(acc1, vld1q_f32(rows[r] + i + 4), k[r]);
    }
    vst1q_f32(out + i, acc0);
    vst1q_f32(out + i + 4, acc1);
  }
  for (; i < width; ++i) {
    float acc = 0.0f;
    for (int r = 0; r < ksize; ++r) acc += k[r] * rows[r][i];
    out[i] = acc;
  }
}

}  // namespace simdcv::imgproc::neon
