#include "imgproc/histogram.hpp"

#include <cstring>

namespace simdcv::imgproc {

std::array<std::uint32_t, 256> calcHist(const Mat& src, KernelPath /*path*/) {
  SIMDCV_REQUIRE(!src.empty(), "calcHist: empty source");
  SIMDCV_REQUIRE(src.depth() == Depth::U8, "calcHist: u8 only");
  // Four sub-histograms break the store-to-load dependency chain (the
  // standard optimization; histograms do not vectorize, cf. paper ref [11]).
  std::array<std::uint32_t, 256> h0{}, h1{}, h2{}, h3{};
  const std::size_t n = static_cast<std::size_t>(src.cols()) * src.channels();
  for (int r = 0; r < src.rows(); ++r) {
    const std::uint8_t* p = src.ptr<std::uint8_t>(r);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      ++h0[p[i]];
      ++h1[p[i + 1]];
      ++h2[p[i + 2]];
      ++h3[p[i + 3]];
    }
    for (; i < n; ++i) ++h0[p[i]];
  }
  std::array<std::uint32_t, 256> out{};
  for (int v = 0; v < 256; ++v) {
    const auto iv = static_cast<std::size_t>(v);
    out[iv] = h0[iv] + h1[iv] + h2[iv] + h3[iv];
  }
  return out;
}

void equalizeHist(const Mat& src, Mat& dst, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "equalizeHist: empty source");
  SIMDCV_REQUIRE(src.type() == U8C1, "equalizeHist: u8c1 only");
  const auto hist = calcHist(src, path);

  // Build the LUT from the CDF, ignoring leading zero bins (OpenCV rule).
  std::array<std::uint8_t, 256> lut{};
  std::uint64_t cdf = 0;
  std::uint64_t total = 0;
  std::uint32_t firstNonZero = 0;
  for (int v = 0; v < 256; ++v) total += hist[static_cast<std::size_t>(v)];
  int v0 = 0;
  while (v0 < 256 && hist[static_cast<std::size_t>(v0)] == 0) ++v0;
  if (v0 == 256 || total == hist[static_cast<std::size_t>(v0)]) {
    // Constant image: identity mapping.
    src.copyTo(dst);
    return;
  }
  firstNonZero = hist[static_cast<std::size_t>(v0)];
  const double scale = 255.0 / static_cast<double>(total - firstNonZero);
  for (int v = 0; v < 256; ++v) {
    cdf += hist[static_cast<std::size_t>(v)];
    const double mapped =
        (static_cast<double>(cdf) - firstNonZero) * scale;
    lut[static_cast<std::size_t>(v)] = static_cast<std::uint8_t>(
        mapped < 0 ? 0 : (mapped > 255 ? 255 : mapped + 0.5));
  }

  Mat out = std::move(dst);
  out.create(src.rows(), src.cols(), U8C1);
  for (int r = 0; r < src.rows(); ++r) {
    const std::uint8_t* s = src.ptr<std::uint8_t>(r);
    std::uint8_t* d = out.ptr<std::uint8_t>(r);
    for (int c = 0; c < src.cols(); ++c) d[c] = lut[s[c]];
  }
  dst = std::move(out);
}

double otsuThreshold(const Mat& src, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "otsuThreshold: empty source");
  SIMDCV_REQUIRE(src.type() == U8C1, "otsuThreshold: u8c1 only");
  const auto hist = calcHist(src, path);
  const double total = static_cast<double>(src.total());
  double sumAll = 0;
  for (int v = 0; v < 256; ++v) sumAll += v * static_cast<double>(hist[static_cast<std::size_t>(v)]);
  double sumB = 0, wB = 0, bestVar = -1;
  int best = 0;
  for (int t = 0; t < 256; ++t) {
    wB += hist[static_cast<std::size_t>(t)];
    if (wB == 0) continue;
    const double wF = total - wB;
    if (wF == 0) break;
    sumB += t * static_cast<double>(hist[static_cast<std::size_t>(t)]);
    const double mB = sumB / wB;
    const double mF = (sumAll - sumB) / wF;
    const double between = wB * wF * (mB - mF) * (mB - mF);
    if (between > bestVar) {
      bestVar = between;
      best = t;
    }
  }
  return best;
}

void integral(const Mat& src, Mat& dst) {
  SIMDCV_REQUIRE(!src.empty(), "integral: empty source");
  SIMDCV_REQUIRE(src.channels() == 1, "integral: single channel only");
  SIMDCV_REQUIRE(src.depth() == Depth::U8 || src.depth() == Depth::F32,
                 "integral: u8/f32 only");
  const int rows = src.rows(), cols = src.cols();
  const bool isU8 = src.depth() == Depth::U8;
  Mat out = std::move(dst);
  out.create(rows + 1, cols + 1, isU8 ? S32C1 : F64C1);

  if (isU8) {
    std::memset(out.ptr<std::uint8_t>(0), 0, (static_cast<std::size_t>(cols) + 1) * 4);
    for (int y = 0; y < rows; ++y) {
      const std::uint8_t* s = src.ptr<std::uint8_t>(y);
      const std::int32_t* up = out.ptr<std::int32_t>(y);
      std::int32_t* d = out.ptr<std::int32_t>(y + 1);
      d[0] = 0;
      std::int32_t rowSum = 0;
      for (int x = 0; x < cols; ++x) {
        rowSum += s[x];
        d[x + 1] = up[x + 1] + rowSum;
      }
    }
  } else {
    for (int x = 0; x <= cols; ++x) out.at<double>(0, x) = 0;
    for (int y = 0; y < rows; ++y) {
      const float* s = src.ptr<float>(y);
      const double* up = out.ptr<double>(y);
      double* d = out.ptr<double>(y + 1);
      d[0] = 0;
      double rowSum = 0;
      for (int x = 0; x < cols; ++x) {
        rowSum += s[x];
        d[x + 1] = up[x + 1] + rowSum;
      }
    }
  }
  dst = std::move(out);
}

double integralRectSum(const Mat& ii, int x0, int y0, int x1, int y1) {
  SIMDCV_REQUIRE(ii.depth() == Depth::S32 || ii.depth() == Depth::F64,
                 "integralRectSum: not an integral image");
  SIMDCV_REQUIRE(0 <= x0 && x0 <= x1 && x1 < ii.cols() && 0 <= y0 &&
                     y0 <= y1 && y1 < ii.rows(),
                 "integralRectSum: rectangle out of range");
  auto at = [&](int y, int x) -> double {
    return ii.depth() == Depth::S32
               ? static_cast<double>(ii.at<std::int32_t>(y, x))
               : ii.at<double>(y, x);
  };
  return at(y1, x1) - at(y0, x1) - at(y1, x0) + at(y0, x0);
}

}  // namespace simdcv::imgproc
