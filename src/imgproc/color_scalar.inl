// Scalar BGR->Gray kernel (fixed-point BT.601), shared autovec/novec.

#include "imgproc/color.hpp"

namespace simdcv::imgproc::SIMDCV_SCALAR_NS {

void bgr2grayU8(const std::uint8_t* bgr, std::uint8_t* gray, std::size_t n,
                bool rgbOrder) {
  // OpenCV fixed-point BT.601: B*1868 + G*9617 + R*4899, 14 fractional bits.
  const int cb = rgbOrder ? 4899 : 1868;
  const int cr = rgbOrder ? 1868 : 4899;
  for (std::size_t i = 0; i < n; ++i) {
    const int b = bgr[3 * i];
    const int g = bgr[3 * i + 1];
    const int r = bgr[3 * i + 2];
    gray[i] = static_cast<std::uint8_t>(
        (b * cb + g * 9617 + r * cr + (1 << 13)) >> 14);
  }
}

}  // namespace simdcv::imgproc::SIMDCV_SCALAR_NS
