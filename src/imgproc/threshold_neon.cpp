// Hand-written NEON threshold kernels (paper "HAND" arm, ARM).
// NEON has native unsigned compares (vcgtq_u8) and bit select (vbslq), so the
// kernels are more direct than their SSE2 counterparts — one of the
// qualitative ISA differences Section II-C of the paper tabulates.
#include "imgproc/threshold.hpp"
#include "simd/neon_compat.hpp"

namespace simdcv::imgproc::neon {

void threshU8(const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
              std::uint8_t thresh, std::uint8_t maxval, ThresholdType type) {
  const uint8x16_t vthresh = vdupq_n_u8(thresh);
  const uint8x16_t vmax = vdupq_n_u8(maxval);
  const uint8x16_t vzero = vdupq_n_u8(0);
  std::size_t x = 0;
  for (; x + 16 <= n; x += 16) {
    const uint8x16_t v = vld1q_u8(src + x);
    const uint8x16_t gt = vcgtq_u8(v, vthresh);
    uint8x16_t r;
    switch (type) {
      case ThresholdType::Binary: r = vandq_u8(gt, vmax); break;
      case ThresholdType::BinaryInv: r = vbslq_u8(gt, vzero, vmax); break;
      case ThresholdType::Trunc: r = vminq_u8(v, vthresh); break;
      case ThresholdType::ToZero: r = vandq_u8(gt, v); break;
      case ThresholdType::ToZeroInv: r = vbicq_u8(v, gt); break;
      default: r = v; break;
    }
    vst1q_u8(dst + x, r);
  }
  if (x < n) autovec::threshU8(src + x, dst + x, n - x, thresh, maxval, type);
}

void threshF32(const float* src, float* dst, std::size_t n, float thresh,
               float maxval, ThresholdType type) {
  const float32x4_t vthresh = vdupq_n_f32(thresh);
  const float32x4_t vmax = vdupq_n_f32(maxval);
  const float32x4_t vzero = vdupq_n_f32(0.0f);
  std::size_t x = 0;
  for (; x + 4 <= n; x += 4) {
    const float32x4_t v = vld1q_f32(src + x);
    const uint32x4_t gt = vcgtq_f32(v, vthresh);
    float32x4_t r;
    switch (type) {
      case ThresholdType::Binary: r = vbslq_f32(gt, vmax, vzero); break;
      case ThresholdType::BinaryInv: r = vbslq_f32(gt, vzero, vmax); break;
      case ThresholdType::Trunc: r = vbslq_f32(gt, vthresh, v); break;
      case ThresholdType::ToZero: r = vbslq_f32(gt, v, vzero); break;
      case ThresholdType::ToZeroInv: r = vbslq_f32(gt, vzero, v); break;
      default: r = v; break;
    }
    vst1q_f32(dst + x, r);
  }
  if (x < n) autovec::threshF32(src + x, dst + x, n - x, thresh, maxval, type);
}

}  // namespace simdcv::imgproc::neon
