// Threshold scalar kernels, vectorizer-disabled ablation build.
#define SIMDCV_SCALAR_NS novec
#include "imgproc/threshold_scalar.inl"
