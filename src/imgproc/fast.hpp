// FAST-9 corner detection (Rosten & Drummond's segment test): a pixel is a
// corner if 9 contiguous pixels on the 16-pixel Bresenham circle are all
// brighter than p + t or all darker than p - t. The staple feature detector
// of mobile vision pipelines (the workload class the paper's intro
// motivates).
#pragma once

#include <vector>

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

struct KeyPoint {
  int x = 0;
  int y = 0;
  int score = 0;  ///< max threshold at which the pixel is still a corner
};

/// Detect FAST-9 corners in a U8C1 image. If `nonmaxSuppression`, only
/// pixels whose score is a strict local maximum in their 3x3 neighbourhood
/// are kept. The 3-pixel image border is never reported.
std::vector<KeyPoint> fast9(const Mat& src, int threshold,
                            bool nonmaxSuppression = true,
                            KernelPath path = KernelPath::Default);

/// True if (x, y) passes the FAST-9 segment test at `threshold`
/// (no bounds slack: caller keeps 3 px from the border).
bool fast9IsCorner(const Mat& src, int x, int y, int threshold);

}  // namespace simdcv::imgproc
