// Image moments: raw spatial, central, normalized-central, and the seven Hu
// invariants — shape descriptors downstream of segmentation, with strong
// analytic test properties (translation/scale/rotation invariance).
#pragma once

#include <array>

#include "core/mat.hpp"

namespace simdcv::imgproc {

struct Moments {
  // Raw spatial moments m_pq = sum x^p y^q I(x,y), p+q <= 3.
  double m00 = 0, m10 = 0, m01 = 0, m20 = 0, m11 = 0, m02 = 0;
  double m30 = 0, m21 = 0, m12 = 0, m03 = 0;
  // Central moments mu_pq (about the centroid), p+q in 2..3.
  double mu20 = 0, mu11 = 0, mu02 = 0, mu30 = 0, mu21 = 0, mu12 = 0, mu03 = 0;
  // Scale-normalized central moments nu_pq = mu_pq / m00^((p+q)/2 + 1).
  double nu20 = 0, nu11 = 0, nu02 = 0, nu30 = 0, nu21 = 0, nu12 = 0, nu03 = 0;

  double centroidX() const { return m00 != 0 ? m10 / m00 : 0; }
  double centroidY() const { return m00 != 0 ? m01 / m00 : 0; }
};

/// Moments of a U8C1 or F32C1 image (intensity-weighted; pass a binary mask
/// for shape moments).
Moments moments(const Mat& src);

/// The seven Hu invariants of a Moments set (rotation/translation/scale
/// invariant shape descriptors).
std::array<double, 7> huMoments(const Moments& m);

}  // namespace simdcv::imgproc
