// Hand-written NEON BGR->Gray kernel: vld3 deinterleaves the channels for
// free (the structured loads Section II-C highlights), then widening
// multiply-accumulate at full 14-bit precision — bit-exact with the scalar
// kernel.
#include "imgproc/color.hpp"
#include "simd/neon_compat.hpp"

namespace simdcv::imgproc::neon {

void bgr2grayU8(const std::uint8_t* bgr, std::uint8_t* gray, std::size_t n,
                bool rgbOrder) {
  const std::uint16_t cb = rgbOrder ? 4899 : 1868;
  const std::uint16_t cr = rgbOrder ? 1868 : 4899;
  const uint16x4_t vcb = vdup_n_u16(cb);
  const uint16x4_t vcg = vdup_n_u16(9617);
  const uint16x4_t vcr = vdup_n_u16(cr);
  const uint32x4_t vrnd = vdupq_n_u32(1u << 13);

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint8x8x3_t px = vld3_u8(bgr + 3 * i);  // deinterleave B,G,R
    const uint16x8_t b16 = vmovl_u8(px.val[0]);
    const uint16x8_t g16 = vmovl_u8(px.val[1]);
    const uint16x8_t r16 = vmovl_u8(px.val[2]);

    uint32x4_t lo = vmlal_u16(vrnd, vget_low_u16(b16), vcb);
    lo = vmlal_u16(lo, vget_low_u16(g16), vcg);
    lo = vmlal_u16(lo, vget_low_u16(r16), vcr);
    uint32x4_t hi = vmlal_u16(vrnd, vget_high_u16(b16), vcb);
    hi = vmlal_u16(hi, vget_high_u16(g16), vcg);
    hi = vmlal_u16(hi, vget_high_u16(r16), vcr);

    const uint16x8_t g8 =
        vcombine_u16(vshrn_n_u32(lo, 14), vshrn_n_u32(hi, 14));
    vst1_u8(gray + i, vmovn_u16(g8));
  }
  if (i < n) autovec::bgr2grayU8(bgr + 3 * i, gray + i, n - i, rgbOrder);
}

}  // namespace simdcv::imgproc::neon
