// First-order IIR (exponential) smoothing across image rows/columns — the
// recursive-filter workload of the paper's related work ([13]: IIR on NEON
// up to 2x; [14]: IIR with SIMD extensions 1.5-4.5x).
//
// The horizontal pass has a loop-carried dependency (y[n] depends on
// y[n-1]), so it cannot be vectorized along the row: the SIMD strategy —
// exactly the one the cited work uses — is to run several independent row
// recurrences in parallel lanes. The vertical pass has independent columns
// and vectorizes directly.
//
//   y[n] = alpha * x[n] + (1 - alpha) * y[n-1],  y[-1] = x[0]
#pragma once

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

/// Left-to-right exponential smoothing of each row (F32C1).
void iirSmoothHorizontal(const Mat& src, Mat& dst, float alpha,
                         KernelPath path = KernelPath::Default);

/// Top-to-bottom exponential smoothing of each column (F32C1).
void iirSmoothVertical(const Mat& src, Mat& dst, float alpha,
                       KernelPath path = KernelPath::Default);

/// Symmetric smoothing: horizontal forward+backward then vertical
/// forward+backward (zero-phase along both axes).
void iirSmooth2D(const Mat& src, Mat& dst, float alpha,
                 KernelPath path = KernelPath::Default);

}  // namespace simdcv::imgproc
