// Canny implementation.
//
// Stages:
//   1. Sobel gx/gy (S32 precision via S16 kernels — aperture<=7 fits S16
//      for u8 input, so S16 is used throughout like OpenCV's u8 path),
//   2. L1 magnitude per pixel (int, not clamped to u8 — NMS needs range),
//   3. non-maximum suppression with the standard 4-sector quantization of
//      the gradient direction (using the |gy| vs |gx| tan(22.5deg) trick),
//   4. double threshold + BFS hysteresis from strong seeds.
#include "imgproc/canny.hpp"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "imgproc/filter.hpp"

namespace simdcv::imgproc {

void Canny(const Mat& src, Mat& dst, double lowThresh, double highThresh,
           int apertureSize, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "Canny: empty source");
  SIMDCV_REQUIRE(src.type() == U8C1, "Canny: u8c1 only");
  SIMDCV_REQUIRE(apertureSize == 3 || apertureSize == 5 || apertureSize == 7,
                 "Canny: aperture must be 3, 5 or 7");
  SIMDCV_REQUIRE(lowThresh <= highThresh, "Canny: lowThresh > highThresh");
  const KernelPath p = resolvePath(path);
  const int rows = src.rows(), cols = src.cols();

  Mat gx, gy;
  Sobel(src, gx, Depth::S16, 1, 0, apertureSize, 1.0, BorderType::Reflect101, p);
  Sobel(src, gy, Depth::S16, 0, 1, apertureSize, 1.0, BorderType::Reflect101, p);

  // L1 magnitude in int precision.
  std::vector<int> mag(static_cast<std::size_t>(rows) * cols);
  for (int y = 0; y < rows; ++y) {
    const std::int16_t* px = gx.ptr<std::int16_t>(y);
    const std::int16_t* py = gy.ptr<std::int16_t>(y);
    int* m = mag.data() + static_cast<std::size_t>(y) * cols;
    for (int x = 0; x < cols; ++x)
      m[x] = std::abs(static_cast<int>(px[x])) + std::abs(static_cast<int>(py[x]));
  }

  const int low = std::max(0, static_cast<int>(std::lround(lowThresh)));
  const int high = std::max(low, static_cast<int>(std::lround(highThresh)));

  // NMS + double threshold into a state map: 0 none, 1 weak, 2 strong.
  std::vector<std::uint8_t> state(static_cast<std::size_t>(rows) * cols, 0);
  auto magAt = [&](int y, int x) -> int {
    if (static_cast<unsigned>(y) >= static_cast<unsigned>(rows) ||
        static_cast<unsigned>(x) >= static_cast<unsigned>(cols))
      return 0;
    return mag[static_cast<std::size_t>(y) * cols + x];
  };
  // tan(22.5 deg) ~ 13573 / 2^15 (OpenCV's fixed-point constant).
  constexpr int kTg22 = 13573;
  for (int y = 0; y < rows; ++y) {
    const std::int16_t* px = gx.ptr<std::int16_t>(y);
    const std::int16_t* py = gy.ptr<std::int16_t>(y);
    for (int x = 0; x < cols; ++x) {
      const int m = magAt(y, x);
      if (m <= low) continue;
      const int ax = std::abs(static_cast<int>(px[x]));
      const int ay = std::abs(static_cast<int>(py[x])) << 15;
      bool isMax;
      if (ay < static_cast<long long>(kTg22) * ax) {
        // ~horizontal gradient: compare along x.
        isMax = m > magAt(y, x - 1) && m >= magAt(y, x + 1);
      } else if (ay > static_cast<long long>(1 << 16) * ax +
                          static_cast<long long>(kTg22) * ax) {
        // tan(67.5) = 2 + tan(22.5); ~vertical gradient: compare along y.
        isMax = m > magAt(y - 1, x) && m >= magAt(y + 1, x);
      } else {
        // Diagonal: sign of gx*gy picks the diagonal.
        const int s = (static_cast<int>(px[x]) ^ static_cast<int>(py[x])) < 0 ? -1 : 1;
        isMax = m > magAt(y - 1, x - s) && m >= magAt(y + 1, x + s);
      }
      if (!isMax) continue;
      state[static_cast<std::size_t>(y) * cols + x] = m > high ? 2 : 1;
    }
  }

  // Hysteresis: BFS from strong pixels through weak neighbours.
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(rows, cols, U8C1);
  out.setZero();
  std::vector<std::int32_t> stack;
  stack.reserve(1024);
  for (int y = 0; y < rows; ++y)
    for (int x = 0; x < cols; ++x)
      if (state[static_cast<std::size_t>(y) * cols + x] == 2)
        stack.push_back(y * cols + x);
  while (!stack.empty()) {
    const int idx = stack.back();
    stack.pop_back();
    const int y = idx / cols, x = idx % cols;
    std::uint8_t& o = out.at<std::uint8_t>(y, x);
    if (o) continue;
    o = 255;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int ny = y + dy, nx = x + dx;
        if (static_cast<unsigned>(ny) >= static_cast<unsigned>(rows) ||
            static_cast<unsigned>(nx) >= static_cast<unsigned>(cols))
          continue;
        if (state[static_cast<std::size_t>(ny) * cols + nx] != 0 &&
            !out.at<std::uint8_t>(ny, nx))
          stack.push_back(ny * cols + nx);
      }
    }
  }
  dst = std::move(out);
}

}  // namespace simdcv::imgproc
