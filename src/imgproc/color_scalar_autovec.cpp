// Gray-conversion scalar kernel, auto-vectorized build (paper "AUTO" arm).
#define SIMDCV_SCALAR_NS autovec
#include "imgproc/color_scalar.inl"
