// Scalar threshold kernels, shared between the autovec and novec TUs.
// The including TU defines SIMDCV_SCALAR_NS. These are the straight loops
// (Algorithm 1 in the paper) that the compiler is invited to vectorize.

#include "imgproc/threshold.hpp"

namespace simdcv::imgproc::SIMDCV_SCALAR_NS {

namespace {

template <typename T>
void threshLoop(const T* src, T* dst, std::size_t n, T thresh, T maxval,
                ThresholdType type) {
  switch (type) {
    case ThresholdType::Binary:
      for (std::size_t x = 0; x < n; ++x) dst[x] = src[x] > thresh ? maxval : T{0};
      break;
    case ThresholdType::BinaryInv:
      for (std::size_t x = 0; x < n; ++x) dst[x] = src[x] > thresh ? T{0} : maxval;
      break;
    case ThresholdType::Trunc:
      for (std::size_t x = 0; x < n; ++x) dst[x] = src[x] > thresh ? thresh : src[x];
      break;
    case ThresholdType::ToZero:
      for (std::size_t x = 0; x < n; ++x) dst[x] = src[x] > thresh ? src[x] : T{0};
      break;
    case ThresholdType::ToZeroInv:
      for (std::size_t x = 0; x < n; ++x) dst[x] = src[x] > thresh ? T{0} : src[x];
      break;
  }
}

}  // namespace

void threshU8(const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
              std::uint8_t thresh, std::uint8_t maxval, ThresholdType type) {
  threshLoop(src, dst, n, thresh, maxval, type);
}

void threshS16(const std::int16_t* src, std::int16_t* dst, std::size_t n,
               std::int16_t thresh, std::int16_t maxval, ThresholdType type) {
  threshLoop(src, dst, n, thresh, maxval, type);
}

void threshF32(const float* src, float* dst, std::size_t n, float thresh,
               float maxval, ThresholdType type) {
  threshLoop(src, dst, n, thresh, maxval, type);
}

}  // namespace simdcv::imgproc::SIMDCV_SCALAR_NS
