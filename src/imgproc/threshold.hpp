// Fixed-level thresholding — the paper's benchmark 2.
//
// Semantics follow cv::threshold:
//   Binary     : dst = src >  thresh ? maxval : 0
//   BinaryInv  : dst = src >  thresh ? 0      : maxval
//   Trunc      : dst = src >  thresh ? thresh : src
//   ToZero     : dst = src >  thresh ? src    : 0
//   ToZeroInv  : dst = src >  thresh ? 0      : src
// For U8 inputs `thresh` is floored and `maxval` rounded+saturated to [0,255]
// first (as OpenCV does), so all paths agree bit-exactly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

enum class ThresholdType : std::uint8_t {
  Binary,
  BinaryInv,
  Trunc,
  ToZero,
  ToZeroInv,
};

const char* toString(ThresholdType t) noexcept;

/// Apply a fixed threshold to every element (any channel count; U8, S16 and
/// F32 depths). Returns the threshold actually used (after U8 quantization).
double threshold(const Mat& src, Mat& dst, double thresh, double maxval,
                 ThresholdType type, KernelPath path = KernelPath::Default);

// Per-path U8 kernel selector, shared by the dispatcher above and fused
// pipelines (edge_fused.cpp) so both resolve a path to the identical kernel.
namespace detail {
using ThreshU8Fn = void (*)(const std::uint8_t* src, std::uint8_t* dst,
                            std::size_t n, std::uint8_t thresh,
                            std::uint8_t maxval, ThresholdType type);
ThreshU8Fn threshU8For(KernelPath path);
}  // namespace detail

// Flat-range per-path kernels, exposed for benchmarks/tests.
namespace autovec {
void threshU8(const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
              std::uint8_t thresh, std::uint8_t maxval, ThresholdType type);
void threshS16(const std::int16_t* src, std::int16_t* dst, std::size_t n,
               std::int16_t thresh, std::int16_t maxval, ThresholdType type);
void threshF32(const float* src, float* dst, std::size_t n, float thresh,
               float maxval, ThresholdType type);
}  // namespace autovec
namespace novec {
void threshU8(const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
              std::uint8_t thresh, std::uint8_t maxval, ThresholdType type);
void threshS16(const std::int16_t* src, std::int16_t* dst, std::size_t n,
               std::int16_t thresh, std::int16_t maxval, ThresholdType type);
void threshF32(const float* src, float* dst, std::size_t n, float thresh,
               float maxval, ThresholdType type);
}  // namespace novec
namespace sse2 {
void threshU8(const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
              std::uint8_t thresh, std::uint8_t maxval, ThresholdType type);
void threshF32(const float* src, float* dst, std::size_t n, float thresh,
               float maxval, ThresholdType type);
}  // namespace sse2
namespace avx2 {
void threshU8(const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
              std::uint8_t thresh, std::uint8_t maxval, ThresholdType type);
void threshF32(const float* src, float* dst, std::size_t n, float thresh,
               float maxval, ThresholdType type);
}  // namespace avx2
namespace neon {
void threshU8(const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
              std::uint8_t thresh, std::uint8_t maxval, ThresholdType type);
void threshF32(const float* src, float* dst, std::size_t n, float thresh,
               float maxval, ThresholdType type);
}  // namespace neon

}  // namespace simdcv::imgproc
