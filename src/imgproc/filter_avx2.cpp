// Hand-written AVX2 row/column convolution workers (8 floats per op).
// Same per-element tap order as every other path: bit-exact results.
#include "imgproc/filter.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace simdcv::imgproc::avx2 {

void rowConv(const float* padded, float* out, int width, const float* k,
             int ksize) {
  int i = 0;
  for (; i + 8 <= width; i += 8) {
    __m256 acc =
        _mm256_mul_ps(_mm256_set1_ps(k[0]), _mm256_loadu_ps(padded + i));
    for (int j = 1; j < ksize; ++j) {
      acc = _mm256_add_ps(
          acc, _mm256_mul_ps(_mm256_set1_ps(k[j]), _mm256_loadu_ps(padded + i + j)));
    }
    _mm256_storeu_ps(out + i, acc);
  }
  if (i < width) sse2::rowConv(padded + i, out + i, width - i, k, ksize);
}

void colConv(const float* const* rows, float* out, int width, const float* k,
             int ksize) {
  int i = 0;
  for (; i + 16 <= width; i += 16) {
    __m256 acc0 = _mm256_mul_ps(_mm256_set1_ps(k[0]), _mm256_loadu_ps(rows[0] + i));
    __m256 acc1 =
        _mm256_mul_ps(_mm256_set1_ps(k[0]), _mm256_loadu_ps(rows[0] + i + 8));
    for (int r = 1; r < ksize; ++r) {
      const __m256 c = _mm256_set1_ps(k[r]);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(c, _mm256_loadu_ps(rows[r] + i)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(c, _mm256_loadu_ps(rows[r] + i + 8)));
    }
    _mm256_storeu_ps(out + i, acc0);
    _mm256_storeu_ps(out + i + 8, acc1);
  }
  if (i < width) {
    // Reuse the SSE2 worker for the tail (same arithmetic order).
    std::vector<const float*> shifted(static_cast<std::size_t>(ksize));
    for (int r = 0; r < ksize; ++r)
      shifted[static_cast<std::size_t>(r)] = rows[r] + i;
    sse2::colConv(shifted.data(), out + i, width - i, k, ksize);
  }
}

}  // namespace simdcv::imgproc::avx2

#else

namespace simdcv::imgproc::avx2 {
void rowConv(const float* padded, float* out, int width, const float* k,
             int ksize) {
  sse2::rowConv(padded, out, width, k, ksize);
}
void colConv(const float* const* rows, float* out, int width, const float* k,
             int ksize) {
  sse2::colConv(rows, out, width, k, ksize);
}
}  // namespace simdcv::imgproc::avx2

#endif
