// Color space conversion and channel manipulation — the OpenCV routines the
// paper's related work reports NEON speedups for (color conversion: 9.5x on
// Tegra 3 in [23]).
//
// BGR->Gray uses the OpenCV fixed-point BT.601 weights (B:1868, G:9617,
// R:4899, 14 fractional bits) so every path is bit-exact with cv::cvtColor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/mat.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc {

enum class ColorCode : std::uint8_t {
  BGR2GRAY,
  RGB2GRAY,
  GRAY2BGR,
  BGR2RGB,  ///< also RGB2BGR (same swap)
  BGRA2BGR,
  BGR2BGRA,
};

const char* toString(ColorCode c) noexcept;

/// Convert between color representations (U8 images).
void cvtColor(const Mat& src, Mat& dst, ColorCode code,
              KernelPath path = KernelPath::Default);

/// Split an interleaved image into single-channel planes.
void split(const Mat& src, std::vector<Mat>& planes,
           KernelPath path = KernelPath::Default);

/// Merge single-channel planes into an interleaved image.
void merge(const std::vector<Mat>& planes, Mat& dst,
           KernelPath path = KernelPath::Default);

// Flat-range gray kernels per path (row pointers, n pixels).
namespace autovec {
void bgr2grayU8(const std::uint8_t* bgr, std::uint8_t* gray, std::size_t n,
                bool rgbOrder);
}
namespace novec {
void bgr2grayU8(const std::uint8_t* bgr, std::uint8_t* gray, std::size_t n,
                bool rgbOrder);
}
namespace sse2 {
void bgr2grayU8(const std::uint8_t* bgr, std::uint8_t* gray, std::size_t n,
                bool rgbOrder);
}
namespace neon {
void bgr2grayU8(const std::uint8_t* bgr, std::uint8_t* gray, std::size_t n,
                bool rgbOrder);
}

}  // namespace simdcv::imgproc
