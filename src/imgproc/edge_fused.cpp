// Fused cache-blocked edge-detection pipeline (the paper's benchmark 5).
//
// The unfused pipeline round-trips two whole-image 16S gradient Mats plus a
// U8 magnitude Mat through memory between stages; at 8 mpx those
// intermediates are ~40 MB — far beyond any cache on the paper's platforms,
// so the stages become memory-bound round trips. The fused engine walks the
// image once in row bands: every needed source row is converted to float and
// horizontally convolved with BOTH derivative kernels (one load + pad, two
// rowConvs) into two kh-row ring buffers, and each output row is finished in
// one pass — two vertical convolutions, saturating-s16 store, |gx|+|gy|
// magnitude, binary threshold — while the rows are still cache-hot. The
// resident working set is O(kh) rows of scratch (see fusedScratchBytes), not
// O(rows * cols) of intermediates.
//
// Bit-exactness: every stage calls the exact same per-path kernel, on the
// same values, in the same per-element order as the unfused pipeline
// (filter_detail.hpp / threshold detail / edge detail selectors), so the
// fused output is bit-identical to edgeDetectUnfused for every KernelPath.
// Band partitions cannot change the result either: a band recomputes its
// seam rows through the identical load/pad/rowConv sequence, and the
// saturating-s16 + re-saturating-magnitude tail is element-wise — the
// guarantee `check_all --only edge` enforces on adversarial inputs.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/saturate.hpp"
#include "core/scratch.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/edge_detail.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/filter_detail.hpp"
#include "imgproc/kernels.hpp"
#include "imgproc/threshold.hpp"
#include "platform/env.hpp"
#include "platform/platform.hpp"
#include "prof/prof.hpp"
#include "runtime/parallel.hpp"
#include "tune/tune.hpp"

namespace simdcv::imgproc {

namespace detail {

std::size_t fusedScratchBytes(int width, int ksize) {
  const std::size_t w = static_cast<std::size_t>(width);
  const std::size_t k = static_cast<std::size_t>(ksize);
  return sizeof(float) * (w + k - 1)      // padded source row
         + 2 * sizeof(float) * k * w      // gx/gy intermediate rings
         + 2 * sizeof(float) * w          // vertical-conv output rows
         + 2 * sizeof(std::int16_t) * w   // saturated s16 gradient rows
         + w                              // magnitude row
         + 2 * sizeof(void*) * k          // column-tap tables
         + 10 * 64;                       // per-allocation alignment slop
}

int fusedBandGrain(int width, int ksize, int rows) {
  // (a) Fork amortization: the separable engine's rule with the fused
  //     pipeline's per-row op cost (two horizontal + two vertical
  //     convolutions plus the s16/magnitude/threshold tail).
  int grain = std::max(runtime::parallelThreshold(
                           static_cast<std::size_t>(width) * sizeof(float),
                           rows, 4.0 * ksize + 3.0),
                       ksize);
  // (b) Seam amortization: each band re-primes 2*(ksize/2) boundary rows;
  //     16x that bounds the recompute overhead at ~6%.
  grain = std::max(grain, 16 * ksize);
  // (c) Cache fit: the engine streams, so its resident set is the row
  //     scratch — a function of width alone. Once the scratch overflows half
  //     of this core's L2, seam re-priming gets costlier (the ring no longer
  //     survives in cache across the seam), so raise the floor again to buy
  //     fewer, taller bands.
  static const platform::HostInfo host = platform::queryHost();
  const std::size_t l2 = host.l2_kb > 0
                             ? static_cast<std::size_t>(host.l2_kb) * 1024
                             : 512u * 1024u;
  if (fusedScratchBytes(width, ksize) > l2 / 2) grain = std::max(grain, 32 * ksize);
  return std::min(grain, std::max(rows, 1));
}

bool fuseProfitable(int width, int rows, int ksize, KernelPath path) {
  (void)ksize;
  // Experiment override: SIMDCV_EDGE_FUSE=1 always fused, =0 always staged.
  // Anything else warns and falls through to the heuristic (-1).
  static const int forced =
      static_cast<int>(platform::envInt("SIMDCV_EDGE_FUSE", -1, 0, 1));
  if (forced >= 0) return forced == 1;
  // Fusion trades per-row stage dispatch + seam recompute for not
  // round-tripping the whole-image intermediates (two s16 gradients + u8
  // magnitude) through memory. The AVX2 staged kernels are fast enough that
  // when those intermediates fit in L2 — so the staged passes re-read them
  // cache-hot — fusion's overhead dominates: 0.54x at 640x480 vs 1.2-1.36x
  // once the footprint spills (BENCH_fusion.json). The other paths' staged
  // kernels are slow enough that fusion stays >= ~1x at every size.
  if (resolvePath(path) != KernelPath::Avx2) return true;
  const std::size_t intermediates = static_cast<std::size_t>(width) *
                                    static_cast<std::size_t>(rows) *
                                    (2 * sizeof(std::int16_t) + 1);
  static const platform::HostInfo host = platform::queryHost();
  const std::size_t l2 = host.l2_kb > 0
                             ? static_cast<std::size_t>(host.l2_kb) * 1024
                             : 512u * 1024u;
  return intermediates > l2;
}

}  // namespace detail

namespace {

void edgeDetectFusedImpl(const Mat& src, Mat& dst, double thresh, int ksize,
                         BorderType border, KernelPath path,
                         int forcedBandRows) {
  SIMDCV_REQUIRE(!src.empty(), "edgeDetectFused: empty source");
  SIMDCV_REQUIRE(src.channels() == 1, "edgeDetectFused: single channel only");
  SIMDCV_REQUIRE(src.depth() == Depth::U8 || src.depth() == Depth::F32,
                 "edgeDetectFused: source depth must be u8 or f32");
  SIMDCV_REQUIRE(ksize >= 3 && (ksize & 1) == 1,
                 "edgeDetectFused: ksize must be odd and >= 3");

  const KernelPath p = resolvePath(path);
  const int rows = src.rows();
  const int width = src.cols();
  SIMDCV_TRACE_SCOPE("edge.fused", p,
                     static_cast<std::uint64_t>(rows) * width *
                         (src.elemSize() + 1));

  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(rows, width, U8C1);

  // Threshold quantization, identical to threshold(): floor thresh, maxval
  // 255. Degenerate levels collapse to a fill exactly as the unfused
  // pipeline's threshold stage does (its Sobel/magnitude results are
  // discarded by the same fill).
  const int it = cvFloor(thresh);
  if (it < 0 || it >= 255) {
    out.setTo(it >= 255 ? 0 : 255);
    dst = std::move(out);
    return;
  }
  const std::uint8_t t8 = static_cast<std::uint8_t>(it);
  const std::uint8_t imax = 255;

  // gx = deriv(x) ⊗ smooth(y), gy = smooth(x) ⊗ deriv(y) — the same kernels
  // the two unfused Sobel passes use.
  std::vector<float> kxx, kyx, kxy, kyy;
  getDerivKernels(kxx, kyx, 1, 0, ksize, /*normalize=*/false);
  getDerivKernels(kxy, kyy, 0, 1, ksize, /*normalize=*/false);
  const int kw = ksize;
  const int kh = ksize;
  const int rx = kw / 2;
  const int ry = kh / 2;

  const auto rowFn = detail::rowConvFor(p);
  const auto colFn = detail::colConvFor(p);
  const auto cvtFn = detail::cvt32f16sFor(p);
  const auto magFn = detail::magnitudeFnFor(p);
  const auto thrFn = detail::threshU8For(p);

  // Fully-constant virtual rows under Constant border (borderValue 0, as
  // Sobel passes to sepFilter2D): row-convolved once, shared by every band.
  std::vector<float> constRowX, constRowY;
  if (border == BorderType::Constant) {
    std::vector<float> borderPad(static_cast<std::size_t>(width + kw - 1), 0.0f);
    constRowX.resize(static_cast<std::size_t>(width));
    constRowY.resize(static_cast<std::size_t>(width));
    rowFn(borderPad.data(), constRowX.data(), width, kxx.data(), kw);
    rowFn(borderPad.data(), constRowY.data(), width, kxy.data(), kw);
  }

  // One fused ring-buffer engine per band. Every virtual source row is
  // recomputed through the identical load/pad/rowConv sequence regardless of
  // which band needs it, so any band partition (1 band, N parallel bands, or
  // the forced test partition) produces bit-identical output.
  auto processBand = [&](runtime::Range band) {
    // Stage-time attribution: one enabled() check per band; when tracing, a
    // pair of clock reads brackets each stage call and the per-band sums are
    // flushed as one synthetic sample per stage (edge.fused.rowConv etc.) so
    // the VERBOSE=2 summary can split fused time without per-row span spam.
    const bool trace = prof::enabled();
    std::uint64_t row_ns = 0, col_ns = 0, cvt_ns = 0, mag_ns = 0, thr_ns = 0;
    std::uint64_t rows_primed = 0;
    core::ScratchFrame frame;
    const std::size_t w = static_cast<std::size_t>(width);
    float* padded = frame.allocN<float>(w + static_cast<std::size_t>(kw) - 1);
    float* ringX = frame.allocN<float>(static_cast<std::size_t>(kh) * w);
    float* ringY = frame.allocN<float>(static_cast<std::size_t>(kh) * w);
    float* gxf = frame.allocN<float>(w);
    float* gyf = frame.allocN<float>(w);
    std::int16_t* gxs = frame.allocN<std::int16_t>(w);
    std::int16_t* gys = frame.allocN<std::int16_t>(w);
    std::uint8_t* mag = frame.allocN<std::uint8_t>(w);
    const float** tapsX = frame.allocN<const float*>(static_cast<std::size_t>(kh));
    const float** tapsY = frame.allocN<const float*>(static_cast<std::size_t>(kh));

    auto slotX = [&](int v) {
      return ringX + static_cast<std::size_t>((v + ry) % kh) * w;
    };
    auto slotY = [&](int v) {
      return ringY + static_cast<std::size_t>((v + ry) % kh) * w;
    };

    auto computeVirtualRow = [&](int v) {
      const std::uint64_t t0 = trace ? prof::nowNs() : 0;
      const int m = borderInterpolate(v, rows, border);
      if (m < 0) {
        std::memcpy(slotX(v), constRowX.data(), w * sizeof(float));
        std::memcpy(slotY(v), constRowY.data(), w * sizeof(float));
      } else {
        detail::loadRowAsFloat(src, m, padded + rx, p);
        detail::padRow(padded, width, rx, border, 0.0f);
        rowFn(padded, slotX(v), width, kxx.data(), kw);
        rowFn(padded, slotY(v), width, kxy.data(), kw);
      }
      if (trace) {
        row_ns += prof::nowNs() - t0;
        ++rows_primed;
      }
    };

    for (int v = band.begin - ry; v < band.begin + ry; ++v) computeVirtualRow(v);
    for (int y = band.begin; y < band.end; ++y) {
      computeVirtualRow(y + ry);
      for (int r = 0; r < kh; ++r) {
        tapsX[static_cast<std::size_t>(r)] = slotX(y - ry + r);
        tapsY[static_cast<std::size_t>(r)] = slotY(y - ry + r);
      }
      std::uint64_t t = trace ? prof::nowNs() : 0;
      colFn(tapsX, gxf, width, kyx.data(), kh);
      colFn(tapsY, gyf, width, kyy.data(), kh);
      if (trace) {
        const std::uint64_t t1 = prof::nowNs();
        col_ns += t1 - t;
        t = t1;
      }
      cvtFn(gxf, gxs, w);
      cvtFn(gyf, gys, w);
      if (trace) {
        const std::uint64_t t1 = prof::nowNs();
        cvt_ns += t1 - t;
        t = t1;
      }
      magFn(gxs, gys, mag, w);
      if (trace) {
        const std::uint64_t t1 = prof::nowNs();
        mag_ns += t1 - t;
        t = t1;
      }
      thrFn(mag, out.ptr<std::uint8_t>(y), w, t8, imax, ThresholdType::Binary);
      if (trace) thr_ns += prof::nowNs() - t;
    }
    if (trace) {
      const std::uint64_t nout = static_cast<std::uint64_t>(band.size());
      // Bytes moved per stage (reads + writes), so the summary's GB/s column
      // reflects each stage's true traffic, not the pipeline's image size.
      prof::addSample("edge.fused.rowConv", p, row_ns,
                      rows_primed * w * (src.elemSize() + 2 * sizeof(float)));
      prof::addSample("edge.fused.colConv", p, col_ns,
                      nout * w * 2 * (static_cast<std::uint64_t>(kh) + 1) *
                          sizeof(float));
      prof::addSample("edge.fused.cvt", p, cvt_ns,
                      nout * w * 2 * (sizeof(float) + sizeof(std::int16_t)));
      prof::addSample("edge.fused.magnitude", p, mag_ns,
                      nout * detail::magnitudeRowBytes(width));
      prof::addSample("edge.fused.threshold", p, thr_ns, nout * w * 2);
    }
  };

  if (forcedBandRows > 0) {
    for (int b = 0; b < rows; b += forcedBandRows)
      processBand({b, std::min(rows, b + forcedBandRows)});
  } else {
    // Band partitions are bit-exact (seams re-prime), so the grain is pure
    // scheduling — tunable around the cache-model heuristic.
    tune::GrainScope gs("edge.fused", p,
                        static_cast<std::uint64_t>(rows) * width *
                            (src.elemSize() + 1),
                        rows, detail::fusedBandGrain(width, ksize, rows));
    runtime::parallel_for({0, rows}, processBand, gs.grain());
  }
  dst = std::move(out);
}

}  // namespace

void edgeDetectFused(const Mat& src, Mat& dst, double thresh, int ksize,
                     BorderType border, KernelPath path) {
  edgeDetectFusedImpl(src, dst, thresh, ksize, border, path, 0);
}

namespace detail {

void edgeDetectFusedBanded(const Mat& src, Mat& dst, double thresh, int ksize,
                           BorderType border, KernelPath path, int bandRows) {
  SIMDCV_REQUIRE(bandRows >= 1, "edgeDetectFusedBanded: bandRows must be >= 1");
  edgeDetectFusedImpl(src, dst, thresh, ksize, border, path, bandRows);
}

}  // namespace detail

}  // namespace simdcv::imgproc
