// Internal building blocks of the separable-filter engine, shared between
// sepFilter2D (filter.cpp) and the fused edge pipeline (edge_fused.cpp).
// Everything here preserves the engine's bit-exactness contract: for a given
// KernelPath the load/pad/convert steps are the exact same code no matter
// which pipeline invokes them, so a fused pipeline reproduces the unfused
// one bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/mat.hpp"
#include "imgproc/border.hpp"
#include "simd/features.hpp"

namespace simdcv::imgproc::detail {

/// Convert one source row (U8 or F32) to float with the path-matched
/// conversion kernel, writing src.cols() floats at `out`. The path is
/// resolved internally, so callers may pass Default (the uniform trailing
/// default every public kernel signature uses).
void loadRowAsFloat(const Mat& src, int row, float* out,
                    KernelPath p = KernelPath::Default);

/// Store one float row into `dst` row `y` with the path-matched conversion
/// for dst.depth() (F32 memcpy, saturating S16, rounding U8) — the storeRow
/// step of the separable engine, shared so every pipeline writes output
/// through identical code.
void storeRow(const float* row, Mat& dst, int y,
              KernelPath p = KernelPath::Default);

/// Flat-row variant of loadRowAsFloat for stage inputs that live in ring
/// buffers rather than Mats (the pipeline-graph fused executor). Dispatches
/// to the exact same per-path conversion kernels as the Mat form, so a graph
/// edge staged through a Mat and one streamed through a ring load
/// identically. `depth` must be U8 or F32 (the separable engine's input
/// contract).
void loadRowPtrAsFloat(Depth depth, const void* row, float* out, std::size_t n,
                       KernelPath p = KernelPath::Default);

/// Flat-row variant of storeRow: write `n` floats to `dst` in `depth` (F32
/// memcpy, saturating S16, rounding U8) through the same per-path kernels as
/// the Mat form.
void storeRowPtr(const float* row, Depth depth, void* dst, std::size_t n,
                 KernelPath p = KernelPath::Default);

/// Fill the horizontal pads of `padded` (rx floats each side around `width`
/// central elements already in place) according to the border rule.
void padRow(float* padded, int width, int rx, BorderType border,
            float borderValue);

/// Path-matched float -> saturating s16 row store (the S16 leg of the
/// engine's storeRow step).
using CvtS16Fn = void (*)(const float* src, std::int16_t* dst, std::size_t n);
CvtS16Fn cvt32f16sFor(KernelPath path);

}  // namespace simdcv::imgproc::detail
