// Hand-written AVX2 threshold kernels (32 bytes / 8 floats per iteration).
#include "imgproc/threshold.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace simdcv::imgproc::avx2 {

void threshU8(const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
              std::uint8_t thresh, std::uint8_t maxval, ThresholdType type) {
  const __m256i bias = _mm256_set1_epi8(static_cast<char>(0x80));
  const __m256i vthresh = _mm256_set1_epi8(static_cast<char>(thresh));
  const __m256i vthresh_b = _mm256_xor_si256(vthresh, bias);
  const __m256i vmax = _mm256_set1_epi8(static_cast<char>(maxval));
  std::size_t x = 0;
  for (; x + 32 <= n; x += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + x));
    const __m256i gt = _mm256_cmpgt_epi8(_mm256_xor_si256(v, bias), vthresh_b);
    __m256i r;
    switch (type) {
      case ThresholdType::Binary: r = _mm256_and_si256(gt, vmax); break;
      case ThresholdType::BinaryInv: r = _mm256_andnot_si256(gt, vmax); break;
      case ThresholdType::Trunc: r = _mm256_min_epu8(v, vthresh); break;
      case ThresholdType::ToZero: r = _mm256_and_si256(gt, v); break;
      case ThresholdType::ToZeroInv: r = _mm256_andnot_si256(gt, v); break;
      default: r = v; break;
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + x), r);
  }
  if (x < n) sse2::threshU8(src + x, dst + x, n - x, thresh, maxval, type);
}

void threshF32(const float* src, float* dst, std::size_t n, float thresh,
               float maxval, ThresholdType type) {
  const __m256 vthresh = _mm256_set1_ps(thresh);
  const __m256 vmax = _mm256_set1_ps(maxval);
  std::size_t x = 0;
  for (; x + 8 <= n; x += 8) {
    const __m256 v = _mm256_loadu_ps(src + x);
    const __m256 gt = _mm256_cmp_ps(v, vthresh, _CMP_GT_OQ);
    __m256 r;
    switch (type) {
      case ThresholdType::Binary: r = _mm256_and_ps(gt, vmax); break;
      case ThresholdType::BinaryInv: r = _mm256_andnot_ps(gt, vmax); break;
      case ThresholdType::Trunc:
        r = _mm256_or_ps(_mm256_and_ps(gt, vthresh), _mm256_andnot_ps(gt, v));
        break;
      case ThresholdType::ToZero: r = _mm256_and_ps(gt, v); break;
      case ThresholdType::ToZeroInv: r = _mm256_andnot_ps(gt, v); break;
      default: r = v; break;
    }
    _mm256_storeu_ps(dst + x, r);
  }
  if (x < n) sse2::threshF32(src + x, dst + x, n - x, thresh, maxval, type);
}

}  // namespace simdcv::imgproc::avx2

#else

namespace simdcv::imgproc::avx2 {
void threshU8(const std::uint8_t* src, std::uint8_t* dst, std::size_t n,
              std::uint8_t thresh, std::uint8_t maxval, ThresholdType type) {
  sse2::threshU8(src, dst, n, thresh, maxval, type);
}
void threshF32(const float* src, float* dst, std::size_t n, float thresh,
               float maxval, ThresholdType type) {
  sse2::threshF32(src, dst, n, thresh, maxval, type);
}
}  // namespace simdcv::imgproc::avx2

#endif
