// SAD scalar kernel, auto-vectorized build (paper "AUTO" arm).
#define SIMDCV_SCALAR_NS autovec
#include "imgproc/match_scalar.inl"
