// Filter scalar workers, vectorizer-disabled ablation build.
#define SIMDCV_SCALAR_NS novec
#include "imgproc/filter_scalar.inl"
