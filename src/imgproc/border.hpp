// Border extrapolation for filtering, mirroring cv::BorderTypes.
#pragma once

#include <cstdlib>

#include "core/types.hpp"

namespace simdcv::imgproc {

enum class BorderType : std::uint8_t {
  Constant,   ///< iiiiii|abcdefgh|iiiiii  (value supplied separately)
  Replicate,  ///< aaaaaa|abcdefgh|hhhhhh
  Reflect,    ///< fedcba|abcdefgh|hgfedc
  Reflect101, ///< gfedcb|abcdefgh|gfedcb  (OpenCV default)
  Wrap,       ///< cdefgh|abcdefgh|abcdef
};

const char* toString(BorderType b) noexcept;

/// Map an out-of-range coordinate p into [0, len) according to the border
/// rule. Returns -1 for BorderType::Constant (caller substitutes the value).
/// Matches cv::borderInterpolate.
inline int borderInterpolate(int p, int len, BorderType type) {
  if (static_cast<unsigned>(p) < static_cast<unsigned>(len)) return p;
  switch (type) {
    case BorderType::Replicate:
      return p < 0 ? 0 : len - 1;
    case BorderType::Reflect:
    case BorderType::Reflect101: {
      const int delta = type == BorderType::Reflect101 ? 1 : 0;
      if (len == 1) return 0;
      do {
        if (p < 0)
          p = -p - 1 + delta;
        else
          p = len - 1 - (p - len) - delta;
      } while (static_cast<unsigned>(p) >= static_cast<unsigned>(len));
      return p;
    }
    case BorderType::Wrap: {
      if (p < 0) p -= ((p - len + 1) / len) * len;
      if (p >= len) p %= len;
      return p;
    }
    case BorderType::Constant:
      return -1;
  }
  return -1;
}

}  // namespace simdcv::imgproc
