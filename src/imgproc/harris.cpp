#include "imgproc/harris.hpp"

#include <algorithm>
#include <cmath>

#include "core/array_ops.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/morphology.hpp"

namespace simdcv::imgproc {

void cornerHarris(const Mat& src, Mat& response, int blockSize,
                  int apertureSize, double k, KernelPath path) {
  SIMDCV_REQUIRE(!src.empty(), "cornerHarris: empty source");
  SIMDCV_REQUIRE(src.type() == U8C1, "cornerHarris: u8c1 only");
  SIMDCV_REQUIRE(blockSize >= 1 && (blockSize & 1), "cornerHarris: odd blockSize");
  const KernelPath p = resolvePath(path);

  Mat ix, iy;
  Sobel(src, ix, Depth::F32, 1, 0, apertureSize, 1.0, BorderType::Reflect101, p);
  Sobel(src, iy, Depth::F32, 0, 1, apertureSize, 1.0, BorderType::Reflect101, p);

  // Structure tensor entries, window-averaged with the box filter.
  const int rows = src.rows(), cols = src.cols();
  Mat ixx(rows, cols, F32C1), iyy(rows, cols, F32C1), ixy(rows, cols, F32C1);
  for (int y = 0; y < rows; ++y) {
    const float* gx = ix.ptr<float>(y);
    const float* gy = iy.ptr<float>(y);
    float* xx = ixx.ptr<float>(y);
    float* yy = iyy.ptr<float>(y);
    float* xy = ixy.ptr<float>(y);
    for (int x = 0; x < cols; ++x) {
      xx[x] = gx[x] * gx[x];
      yy[x] = gy[x] * gy[x];
      xy[x] = gx[x] * gy[x];
    }
  }
  Mat sxx, syy, sxy;
  boxFilter(ixx, sxx, {blockSize, blockSize}, BorderType::Reflect101, p);
  boxFilter(iyy, syy, {blockSize, blockSize}, BorderType::Reflect101, p);
  boxFilter(ixy, sxy, {blockSize, blockSize}, BorderType::Reflect101, p);

  Mat out = std::move(response);
  out.create(rows, cols, F32C1);
  const float kf = static_cast<float>(k);
  for (int y = 0; y < rows; ++y) {
    const float* a = sxx.ptr<float>(y);
    const float* b = syy.ptr<float>(y);
    const float* c = sxy.ptr<float>(y);
    float* r = out.ptr<float>(y);
    for (int x = 0; x < cols; ++x) {
      const float det = a[x] * b[x] - c[x] * c[x];
      const float tr = a[x] + b[x];
      r[x] = det - kf * tr * tr;
    }
  }
  response = std::move(out);
}

std::vector<KeyPoint> harrisCorners(const Mat& src, int maxCorners,
                                    double qualityLevel, double minDistance,
                                    KernelPath path) {
  SIMDCV_REQUIRE(maxCorners >= 1, "harrisCorners: maxCorners >= 1");
  SIMDCV_REQUIRE(qualityLevel > 0 && qualityLevel <= 1,
                 "harrisCorners: qualityLevel in (0, 1]");
  Mat resp;
  cornerHarris(src, resp, 3, 3, 0.04, path);
  const auto mm = core::minMaxLoc(resp);
  const double cutoff = mm.max_val * qualityLevel;
  if (mm.max_val <= 0) return {};

  // Local maxima above the cutoff.
  struct Cand {
    int x, y;
    float score;
  };
  std::vector<Cand> cands;
  for (int y = 1; y < resp.rows() - 1; ++y) {
    for (int x = 1; x < resp.cols() - 1; ++x) {
      const float v = resp.at<float>(y, x);
      if (v < cutoff) continue;
      bool isMax = true;
      for (int dy = -1; dy <= 1 && isMax; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          if (resp.at<float>(y + dy, x + dx) > v) {
            isMax = false;
            break;
          }
        }
      if (isMax) cands.push_back({x, y, v});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.score > b.score; });

  // Greedy spacing, strongest first.
  std::vector<KeyPoint> out;
  const double minD2 = minDistance * minDistance;
  for (const Cand& c : cands) {
    bool ok = true;
    for (const KeyPoint& kp : out) {
      const double dx = kp.x - c.x, dy = kp.y - c.y;
      if (dx * dx + dy * dy < minD2) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    out.push_back({c.x, c.y, static_cast<int>(c.score)});
    if (static_cast<int>(out.size()) >= maxCorners) break;
  }
  return out;
}

}  // namespace simdcv::imgproc
