// chrome://tracing JSON exporter.
//
// Emits the retained ring events in the Trace Event Format (the JSON array
// flavour): spans as complete events (ph "X", microsecond ts/dur), instants
// as ph "i". Load the file in chrome://tracing or https://ui.perfetto.dev;
// one track per simdcv thread id.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <string_view>

#include "prof/export_internal.hpp"
#include "prof/prof.hpp"

namespace simdcv::prof {

namespace {

// Labels are static literals from SIMDCV_TRACE_SCOPE call sites, but escape
// defensively so a hostile label cannot produce invalid JSON.
std::string escapeJson(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

const char* categoryOf(const detail::RawEvent& e) {
  const std::string_view name(e.name);
  if (name.rfind("pool.", 0) == 0) return "pool";
  if (name.rfind("parallel_for", 0) == 0) return "runtime";
  return "kernel";
}

}  // namespace

bool writeChromeTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  const auto events = detail::retainedEvents();
  const std::uint64_t base = events.empty() ? 0 : events.front().t0;

  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
  bool first = true;
  for (const auto& e : events) {
    if (!first) std::fputc(',', f);
    first = false;
    const double ts = static_cast<double>(e.t0 - base) / 1000.0;
    const std::string name = escapeJson(e.name);
    if (e.kind == 1) {
      std::fprintf(f,
                   "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                   "\"ts\":%.3f,\"pid\":1,\"tid\":%u}",
                   name.c_str(), categoryOf(e), ts, e.tid);
      continue;
    }
    const double dur = static_cast<double>(e.t1 - e.t0) / 1000.0;
    std::fprintf(f,
                 "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                 "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{",
                 name.c_str(), categoryOf(e), ts, dur, e.tid);
    bool firstArg = true;
    auto arg = [&](const char* key, std::uint64_t v) {
      if (!firstArg) std::fputc(',', f);
      firstArg = false;
      std::fprintf(f, "\"%s\":%" PRIu64, key, v);
    };
    if (e.path != kNoPath) {
      std::fprintf(f, "\"path\":\"%s\"",
                   e.path <= static_cast<std::uint8_t>(KernelPath::Default)
                       ? toString(static_cast<KernelPath>(e.path))
                       : "?");
      firstArg = false;
    }
    if (e.bytes != 0) arg("bytes", e.bytes);
    if (e.cycles != 0) arg("cycles", e.cycles);
    if (e.instructions != 0) arg("instructions", e.instructions);
    if (e.cache_misses != 0) arg("cache_misses", e.cache_misses);
    std::fputs("}}", f);
  }
  std::fputs("\n]}\n", f);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace simdcv::prof
