// simdcv::prof — low-overhead in-process tracing and per-kernel metrics.
//
// The paper's argument is a measurement argument: Tables II/III and Figures
// 2-6 rest on knowing where cycles go per kernel and per path. This module
// gives the library that visibility from the inside:
//
//   - RAII scoped spans (SIMDCV_TRACE_SCOPE("Sobel", path, bytes)) recorded
//     into per-thread ring buffers at every public kernel entry, every
//     parallel_for band, and pool steal/park events;
//   - an aggregation API (prof::snapshot()) producing per-kernel x per-path
//     stats — call count, total/mean/p99 ns, bytes processed, GB/s — plus
//     pool activity (tasks, steals, idle ns) derived from the same events;
//   - exporters: chrome://tracing JSON (prof::writeChromeTrace) and a flat
//     text summary (prof::writeSummary) wired into the bench harness;
//   - optional Linux perf_event hardware counters (cycles, instructions,
//     cache misses) attached per span, with graceful fallback when the
//     kernel interface is unavailable (see prof/perf_counters.hpp).
//
// Cost model (the contract DESIGN.md section 10 budgets):
//   - SIMDCV_ENABLE_TRACE=OFF (CMake): spans compile to nothing. TraceScope
//     is an empty type and SIMDCV_TRACE_SCOPE expands to a no-op — enforced
//     by static_asserts in the compile-out test leg.
//   - Compiled in but disabled (the default): the span constructor is one
//     relaxed atomic load and a branch. Tracing is enabled per-process with
//     SIMDCV_TRACE=1 or prof::setEnabled(true).
//   - Enabled: a span commit takes its thread's ring lock (uncontended by
//     construction — one ring per thread), appends one event and folds it
//     into the thread-local aggregate table.
//
// Timestamps come from prof::nowNs(), the single monotonic clock source the
// bench harness Timer also uses, so harness totals and span sums agree.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "simd/features.hpp"

#ifndef SIMDCV_ENABLE_TRACE
#define SIMDCV_ENABLE_TRACE 1
#endif

namespace simdcv::prof {

/// True when the library was compiled with tracing support
/// (-DSIMDCV_ENABLE_TRACE=ON, the default).
inline constexpr bool kCompiledIn = SIMDCV_ENABLE_TRACE != 0;

/// Path tag for events that have no meaningful KernelPath (pool events,
/// parallel_for bands).
inline constexpr std::uint8_t kNoPath = 0xff;

/// Nanoseconds from the process-wide monotonic clock (CLOCK_MONOTONIC).
/// This is the one clock source shared by spans and the bench harness.
std::uint64_t nowNs() noexcept;

// ---- runtime enable switch -------------------------------------------------

namespace detail {
#if SIMDCV_ENABLE_TRACE
extern std::atomic_bool g_enabled;  // defined in trace.cpp
#endif

/// Commit a completed span into the calling thread's ring + aggregates.
void commitSpan(const char* name, std::uint8_t path, std::uint64_t bytes,
                std::uint64_t t0, std::uint64_t t1) noexcept;

/// Commit an instantaneous event (e.g. a work steal).
void commitInstant(const char* name) noexcept;

/// Span commit carrying hardware-counter deltas (cycles, instructions,
/// cache misses); used by TraceScope when perf counters are attached.
void commitSpanHw(const char* name, std::uint8_t path, std::uint64_t bytes,
                  std::uint64_t t0, std::uint64_t t1, std::uint64_t cycles,
                  std::uint64_t instructions,
                  std::uint64_t cache_misses) noexcept;

/// True when per-span hardware counters are requested (SIMDCV_TRACE_PERF=1)
/// and tracing is compiled in. Availability on this kernel is still probed
/// lazily per thread; see prof/perf_counters.hpp.
bool hwRequested() noexcept;
}  // namespace detail

/// One relaxed atomic load: is tracing currently recording?
inline bool enabled() noexcept {
#if SIMDCV_ENABLE_TRACE
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Turn recording on/off at run time. Compiled-out builds ignore this.
/// Also honoured at startup from the environment: SIMDCV_TRACE=1.
void setEnabled(bool on) noexcept;

/// Request per-span hardware counters (cycles/instructions/cache-misses via
/// perf_event). Also honoured from the environment: SIMDCV_TRACE_PERF=1.
/// Silently degrades to timestamps-only when the kernel interface is
/// unavailable — see prof/perf_counters.hpp.
void setHwCountersEnabled(bool on) noexcept;

/// Ring capacity (events per thread) for rings created after this call.
/// Must be a power of two >= 16. Existing rings keep their capacity; call
/// reset() first in tests that need a fresh small ring on the main thread.
void setRingCapacity(std::size_t events);
std::size_t ringCapacity() noexcept;

// ---- the span --------------------------------------------------------------

#if SIMDCV_ENABLE_TRACE

class TraceScope {
 public:
  TraceScope(const char* name, KernelPath path, std::uint64_t bytes) noexcept
      : TraceScope(name, static_cast<std::uint8_t>(path), bytes) {}

  explicit TraceScope(const char* name, std::uint8_t path = kNoPath,
                      std::uint64_t bytes = 0) noexcept {
    if (!enabled()) return;
    name_ = name;
    path_ = path;
    bytes_ = bytes;
    begin();
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (name_ != nullptr) end();
  }

 private:
  void begin() noexcept;  // records t0 (and hw counters when attached)
  void end() noexcept;    // commits the span

  const char* name_ = nullptr;
  std::uint64_t bytes_ = 0;
  std::uint64_t t0_ = 0;
  std::uint64_t c0_[3] = {0, 0, 0};  // cycles/instructions/cache-misses at t0
  std::uint8_t path_ = kNoPath;
  bool hw_ = false;
};

#define SIMDCV_PROF_CONCAT2(a, b) a##b
#define SIMDCV_PROF_CONCAT(a, b) SIMDCV_PROF_CONCAT2(a, b)
/// Open a RAII span covering the rest of the enclosing scope.
/// Usage: SIMDCV_TRACE_SCOPE("Sobel", path, bytesProcessed);
///        SIMDCV_TRACE_SCOPE("pool.task");
/// `name` must be a string with static storage duration (a literal): the
/// profiler stores the pointer, not a copy.
#define SIMDCV_TRACE_SCOPE(...)                                     \
  ::simdcv::prof::TraceScope SIMDCV_PROF_CONCAT(simdcv_trace_scope_, \
                                                __LINE__) {          \
    __VA_ARGS__                                                      \
  }

#else  // SIMDCV_ENABLE_TRACE == 0: spans compile to nothing.

struct TraceScope {
  constexpr TraceScope(const char*, KernelPath, std::uint64_t) noexcept {}
  constexpr explicit TraceScope(const char*, std::uint8_t = kNoPath,
                                std::uint64_t = 0) noexcept {}
};
static_assert(sizeof(TraceScope) == 1, "compiled-out TraceScope must be empty");

#define SIMDCV_TRACE_SCOPE(...) \
  do {                          \
  } while (0)

#endif  // SIMDCV_ENABLE_TRACE

// ---- lightweight non-RAII recording ---------------------------------------

/// Record an instantaneous event (chrome trace "instant"; counted in the
/// aggregate table). No-op when tracing is off.
inline void instant(const char* name) noexcept {
  if (enabled()) detail::commitInstant(name);
}

/// Fold a pre-measured sample into the aggregate table (and ring) without an
/// open scope — used by the fused edge pipeline to attribute per-stage time
/// accumulated across a whole band in one commit. No-op when tracing is off.
inline void addSample(const char* name, KernelPath path, std::uint64_t ns,
                      std::uint64_t bytes = 0) noexcept {
  if (!enabled()) return;
  const std::uint64_t t1 = nowNs();
  detail::commitSpan(name, static_cast<std::uint8_t>(path), bytes,
                     t1 >= ns ? t1 - ns : 0, t1);
}

// ---- aggregation -----------------------------------------------------------

/// Per-(kernel, path) statistics aggregated over every recorded span.
struct KernelStat {
  std::string name;
  std::uint8_t path = kNoPath;  ///< KernelPath value, or kNoPath
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  double mean_ns = 0.0;
  std::uint64_t p99_ns = 0;  ///< upper bound of the p99 log2 bucket
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t bytes = 0;
  double gbps = 0.0;  ///< bytes / total_ns (0 when no bytes recorded)
  // Hardware-counter sums; all zero when perf counters were not attached.
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;

  std::string pathLabel() const;  ///< "sse2", "auto", ... or "-" for kNoPath
};

/// Pool activity derived from the pool's own trace events.
struct PoolActivity {
  std::uint64_t tasks = 0;   ///< "pool.task" spans
  std::uint64_t steals = 0;  ///< "pool.steal" instants
  std::uint64_t parks = 0;   ///< "pool.park" spans
  std::uint64_t idle_ns = 0; ///< total parked time
};

struct Snapshot {
  std::vector<KernelStat> kernels;  ///< sorted by (name, path)
  PoolActivity pool;
  std::uint64_t total_spans = 0;     ///< spans across all threads (incl. pool)
  std::uint64_t dropped_events = 0;  ///< ring-buffer overwrites (stats keep
                                     ///< counting; only raw events are lost)
  std::uint64_t threads = 0;         ///< threads that recorded at least once
};

/// Aggregate every thread's recorded events. Deterministic for a quiesced
/// process: aggregates are folded per-thread at commit time, so the result
/// does not depend on ring wraparound or snapshot timing.
Snapshot snapshot();

/// Drop all recorded events and aggregates (all threads).
void reset();

/// Human-readable per-kernel x per-path table (the SIMDCV_BENCH_VERBOSE=2
/// dump). `prefix` filters kernels by name prefix; empty prints everything.
void writeSummary(std::ostream& os, const Snapshot& snap,
                  const std::string& prefix = std::string());

/// CSV form of the same table (header + one row per kernel x path).
void writeSummaryCsv(std::ostream& os, const Snapshot& snap,
                     const std::string& prefix = std::string());

/// Write every retained raw event as a chrome://tracing JSON file
/// (load via chrome://tracing or https://ui.perfetto.dev). Returns false if
/// the file cannot be written. Note: rings retain the most recent
/// ringCapacity() events per thread; aggregate stats are never dropped.
bool writeChromeTrace(const std::string& path);

}  // namespace simdcv::prof
