// Per-thread event rings + incremental aggregation behind simdcv::prof.
//
// Threading model: each thread that records gets its own ring + aggregate
// table, guarded by a per-ring mutex that is uncontended on the hot path
// (only snapshot()/reset() ever lock another thread's ring). Aggregates are
// folded at commit time — count/total/min/max/bytes plus a 64-bucket log2
// histogram for p99 — so ring wraparound loses only raw events, never
// statistics, and snapshot() is deterministic for a quiesced process.
#include "prof/prof.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#else
#include <chrono>
#endif

#include "prof/export_internal.hpp"
#include "prof/perf_counters.hpp"

namespace simdcv::prof {

std::uint64_t nowNs() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

namespace detail {

#if SIMDCV_ENABLE_TRACE
std::atomic_bool g_enabled{false};
#endif

namespace {

std::atomic_bool g_hw_requested{false};
std::atomic<std::size_t> g_ring_capacity{1u << 14};

struct Event {
  const char* name;
  std::uint64_t t0, t1, bytes;
  std::uint64_t cycles, instructions, cache_misses;
  std::uint8_t path;
  std::uint8_t kind;  // 0 = span, 1 = instant
};

struct AggKey {
  const char* name;
  std::uint8_t path;
  bool operator==(const AggKey& o) const noexcept {
    return name == o.name && path == o.path;
  }
};
struct AggKeyHash {
  std::size_t operator()(const AggKey& k) const noexcept {
    return std::hash<const void*>()(k.name) ^ (std::size_t(k.path) * 0x9e3779b9u);
  }
};

// log2 duration bucket: 0 for 0 ns, otherwise bit_width(ns) (1..64).
// Bucket b covers [2^(b-1), 2^b - 1] ns.
inline unsigned durBucket(std::uint64_t ns) noexcept {
  return ns == 0 ? 0u : static_cast<unsigned>(std::bit_width(ns));
}

struct Agg {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = ~0ull;
  std::uint64_t max_ns = 0;
  std::uint64_t bytes = 0;
  std::uint64_t cycles = 0, instructions = 0, cache_misses = 0;
  std::uint8_t kind = 0;
  std::uint32_t hist[65] = {};
};

struct ThreadRing {
  std::mutex mu;
  std::vector<Event> ring;  // power-of-two capacity, fixed at creation
  std::uint64_t written = 0;
  std::unordered_map<AggKey, Agg, AggKeyHash> agg;
  std::uint32_t tid = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 1;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: rings may outlive main
  return *r;
}

ThreadRing& myRing() {
  thread_local std::shared_ptr<ThreadRing> tls;
  if (!tls) {
    auto r = std::make_shared<ThreadRing>();
    r->ring.resize(g_ring_capacity.load(std::memory_order_relaxed));
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    r->tid = reg.next_tid++;
    reg.rings.push_back(r);
    tls = std::move(r);
  }
  return *tls;
}

void commitEvent(const char* name, std::uint8_t path, std::uint64_t bytes,
                 std::uint64_t t0, std::uint64_t t1, std::uint64_t cycles,
                 std::uint64_t instructions, std::uint64_t cache_misses,
                 std::uint8_t kind) noexcept {
  ThreadRing& r = myRing();
  std::lock_guard<std::mutex> lk(r.mu);
  const std::size_t cap = r.ring.size();
  Event& e = r.ring[static_cast<std::size_t>(r.written) & (cap - 1)];
  e = Event{name, t0, t1, bytes, cycles, instructions, cache_misses, path, kind};
  ++r.written;
  Agg& a = r.agg[AggKey{name, path}];
  const std::uint64_t d = t1 - t0;
  ++a.count;
  a.total_ns += d;
  a.min_ns = std::min(a.min_ns, d);
  a.max_ns = std::max(a.max_ns, d);
  a.bytes += bytes;
  a.cycles += cycles;
  a.instructions += instructions;
  a.cache_misses += cache_misses;
  a.kind = kind;
  ++a.hist[durBucket(d)];
}

// Read-locked copy of the registered ring pointers.
std::vector<std::shared_ptr<ThreadRing>> allRings() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  return reg.rings;
}

}  // namespace

void commitSpan(const char* name, std::uint8_t path, std::uint64_t bytes,
                std::uint64_t t0, std::uint64_t t1) noexcept {
  commitEvent(name, path, bytes, t0, t1, 0, 0, 0, /*kind=*/0);
}

void commitSpanHw(const char* name, std::uint8_t path, std::uint64_t bytes,
                  std::uint64_t t0, std::uint64_t t1, std::uint64_t cycles,
                  std::uint64_t instructions,
                  std::uint64_t cache_misses) noexcept {
  commitEvent(name, path, bytes, t0, t1, cycles, instructions, cache_misses,
              /*kind=*/0);
}

void commitInstant(const char* name) noexcept {
  const std::uint64_t t = nowNs();
  commitEvent(name, kNoPath, 0, t, t, 0, 0, 0, /*kind=*/1);
}

bool hwRequested() noexcept {
  return g_hw_requested.load(std::memory_order_relaxed);
}

std::vector<RawEvent> retainedEvents() {
  std::vector<RawEvent> out;
  for (const auto& ring : allRings()) {
    std::lock_guard<std::mutex> lk(ring->mu);
    const std::size_t cap = ring->ring.size();
    const std::uint64_t n = std::min<std::uint64_t>(ring->written, cap);
    // Oldest retained event first (ring order is irrelevant to the exporter,
    // which sorts globally, but keeps this deterministic).
    const std::uint64_t first = ring->written - n;
    for (std::uint64_t i = first; i < ring->written; ++i) {
      const Event& e = ring->ring[static_cast<std::size_t>(i) & (cap - 1)];
      out.push_back(RawEvent{e.name, e.t0, e.t1, e.bytes, e.cycles,
                             e.instructions, e.cache_misses, ring->tid, e.path,
                             e.kind});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RawEvent& a, const RawEvent& b) { return a.t0 < b.t0; });
  return out;
}

namespace {

// Honour SIMDCV_TRACE / SIMDCV_TRACE_PERF before main() runs.
struct EnvInit {
  EnvInit() {
    const char* t = std::getenv("SIMDCV_TRACE");
    if (kCompiledIn && t != nullptr && std::strcmp(t, "1") == 0)
      setEnabled(true);
    const char* p = std::getenv("SIMDCV_TRACE_PERF");
    if (p != nullptr && std::strcmp(p, "1") == 0)
      g_hw_requested.store(true, std::memory_order_relaxed);
  }
} g_env_init;

}  // namespace

}  // namespace detail

void setEnabled(bool on) noexcept {
#if SIMDCV_ENABLE_TRACE
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void setHwCountersEnabled(bool on) noexcept {
  detail::g_hw_requested.store(on, std::memory_order_relaxed);
}

void setRingCapacity(std::size_t events) {
  if (events < 16) events = 16;
  detail::g_ring_capacity.store(std::bit_ceil(events),
                                std::memory_order_relaxed);
}

std::size_t ringCapacity() noexcept {
  return detail::g_ring_capacity.load(std::memory_order_relaxed);
}

#if SIMDCV_ENABLE_TRACE

void TraceScope::begin() noexcept {
  if (detail::hwRequested()) {
    PerfCounters& pc = PerfCounters::forCurrentThread();
    if (pc.available()) {
      const HwCounters c = pc.read();
      c0_[0] = c.cycles;
      c0_[1] = c.instructions;
      c0_[2] = c.cache_misses;
      hw_ = true;
    }
  }
  t0_ = nowNs();
}

void TraceScope::end() noexcept {
  const std::uint64_t t1 = nowNs();
  if (hw_) {
    const HwCounters c = PerfCounters::forCurrentThread().read();
    detail::commitSpanHw(name_, path_, bytes_, t0_, t1, c.cycles - c0_[0],
                         c.instructions - c0_[1], c.cache_misses - c0_[2]);
  } else {
    detail::commitSpan(name_, path_, bytes_, t0_, t1);
  }
}

#endif  // SIMDCV_ENABLE_TRACE

std::string KernelStat::pathLabel() const {
  if (path == kNoPath) return "-";
  if (path > static_cast<std::uint8_t>(KernelPath::Default)) return "?";
  return toString(static_cast<KernelPath>(path));
}

Snapshot snapshot() {
  Snapshot s;
  // Merge per-thread aggregates by (name *string*, path): identical literals
  // in different translation units may have distinct addresses.
  struct MergedAgg {
    std::uint64_t count = 0, total_ns = 0, bytes = 0;
    std::uint64_t min_ns = ~0ull, max_ns = 0;
    std::uint64_t cycles = 0, instructions = 0, cache_misses = 0;
    std::uint8_t kind = 0;
    std::uint64_t hist[65] = {};
  };
  std::map<std::pair<std::string, std::uint8_t>, MergedAgg> merged;
  for (const auto& ring : detail::allRings()) {
    std::lock_guard<std::mutex> lk(ring->mu);
    if (ring->written == 0 && ring->agg.empty()) continue;
    ++s.threads;
    if (ring->written > ring->ring.size())
      s.dropped_events += ring->written - ring->ring.size();
    for (const auto& [key, a] : ring->agg) {
      MergedAgg& m = merged[{std::string(key.name), key.path}];
      m.count += a.count;
      m.total_ns += a.total_ns;
      m.bytes += a.bytes;
      m.min_ns = std::min(m.min_ns, a.min_ns);
      m.max_ns = std::max(m.max_ns, a.max_ns);
      m.cycles += a.cycles;
      m.instructions += a.instructions;
      m.cache_misses += a.cache_misses;
      m.kind = a.kind;
      for (int b = 0; b <= 64; ++b) m.hist[b] += a.hist[b];
    }
  }
  for (const auto& [key, m] : merged) {
    const std::string& name = key.first;
    if (m.kind == 0) s.total_spans += m.count;
    // Pool activity is reported separately, not as kernels.
    if (name.rfind("pool.", 0) == 0) {
      if (name == "pool.task") s.pool.tasks = m.count;
      if (name == "pool.steal") s.pool.steals = m.count;
      if (name == "pool.park") {
        s.pool.parks = m.count;
        s.pool.idle_ns = m.total_ns;
      }
      continue;
    }
    KernelStat k;
    k.name = name;
    k.path = key.second;
    k.count = m.count;
    k.total_ns = m.total_ns;
    k.mean_ns = m.count > 0 ? static_cast<double>(m.total_ns) /
                                  static_cast<double>(m.count)
                            : 0.0;
    k.min_ns = m.min_ns == ~0ull ? 0 : m.min_ns;
    k.max_ns = m.max_ns;
    k.bytes = m.bytes;
    k.gbps = m.total_ns > 0 ? static_cast<double>(m.bytes) /
                                  static_cast<double>(m.total_ns)
                            : 0.0;
    k.cycles = m.cycles;
    k.instructions = m.instructions;
    k.cache_misses = m.cache_misses;
    // p99: upper bound of the first log2 bucket at which the cumulative
    // count reaches 99% (exact to within the bucket's factor-of-two width).
    const std::uint64_t want =
        m.count - m.count / 100;  // ceil-ish: count*0.99 rounded up
    std::uint64_t cum = 0;
    for (int b = 0; b <= 64; ++b) {
      cum += m.hist[b];
      if (cum >= want) {
        k.p99_ns = b == 0 ? 0 : (b >= 64 ? ~0ull : (1ull << b) - 1);
        break;
      }
    }
    k.p99_ns = std::min(k.p99_ns, k.max_ns);
    s.kernels.push_back(std::move(k));
  }
  return s;
}

void reset() {
  for (const auto& ring : detail::allRings()) {
    std::lock_guard<std::mutex> lk(ring->mu);
    ring->written = 0;
    ring->agg.clear();
  }
}

namespace {

void appendRow(std::ostream& os, const KernelStat& k, bool hw) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  %-28s %-8s %8llu %10.3f %10.1f %10.1f %9.2f %7.2f",
                k.name.c_str(), k.pathLabel().c_str(),
                static_cast<unsigned long long>(k.count),
                static_cast<double>(k.total_ns) * 1e-6, k.mean_ns * 1e-3,
                static_cast<double>(k.p99_ns) * 1e-3,
                static_cast<double>(k.bytes) / (1024.0 * 1024.0), k.gbps);
  os << buf;
  if (hw) {
    std::snprintf(buf, sizeof(buf), " %12llu %12llu %10llu",
                  static_cast<unsigned long long>(k.cycles),
                  static_cast<unsigned long long>(k.instructions),
                  static_cast<unsigned long long>(k.cache_misses));
    os << buf;
  }
  os << '\n';
}

bool matchesPrefix(const KernelStat& k, const std::string& prefix) {
  return prefix.empty() || k.name.rfind(prefix, 0) == 0;
}

}  // namespace

void writeSummary(std::ostream& os, const Snapshot& snap,
                  const std::string& prefix) {
  bool hw = false;
  for (const auto& k : snap.kernels)
    if (matchesPrefix(k, prefix) && (k.cycles | k.instructions)) hw = true;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  %-28s %-8s %8s %10s %10s %10s %9s %7s",
                "kernel", "path", "calls", "total_ms", "mean_us", "p99_us",
                "MB", "GB/s");
  os << "[prof]\n" << buf;
  if (hw) {
    std::snprintf(buf, sizeof(buf), " %12s %12s %10s", "cycles", "instrs",
                  "cache_miss");
    os << buf;
  }
  os << '\n';
  for (const auto& k : snap.kernels)
    if (matchesPrefix(k, prefix)) appendRow(os, k, hw);
  std::snprintf(buf, sizeof(buf),
                "  pool: tasks=%llu steals=%llu parks=%llu idle_ms=%.3f | "
                "spans=%llu dropped_events=%llu threads=%llu\n",
                static_cast<unsigned long long>(snap.pool.tasks),
                static_cast<unsigned long long>(snap.pool.steals),
                static_cast<unsigned long long>(snap.pool.parks),
                static_cast<double>(snap.pool.idle_ns) * 1e-6,
                static_cast<unsigned long long>(snap.total_spans),
                static_cast<unsigned long long>(snap.dropped_events),
                static_cast<unsigned long long>(snap.threads));
  os << buf;
}

void writeSummaryCsv(std::ostream& os, const Snapshot& snap,
                     const std::string& prefix) {
  os << "kernel,path,calls,total_ns,mean_ns,p99_ns,min_ns,max_ns,bytes,gbps,"
        "cycles,instructions,cache_misses\n";
  for (const auto& k : snap.kernels) {
    if (!matchesPrefix(k, prefix)) continue;
    os << k.name << ',' << k.pathLabel() << ',' << k.count << ',' << k.total_ns
       << ',' << k.mean_ns << ',' << k.p99_ns << ',' << k.min_ns << ','
       << k.max_ns << ',' << k.bytes << ',' << k.gbps << ',' << k.cycles << ','
       << k.instructions << ',' << k.cache_misses << '\n';
  }
}

}  // namespace simdcv::prof
