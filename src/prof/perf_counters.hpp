// Optional per-thread hardware counters via Linux perf_event_open.
//
// Reproduces the paper's Section V instruction-count analysis from live
// counters instead of static assembly accounting: a counter group (CPU
// cycles, retired instructions, cache misses) is opened per thread and read
// around each traced span when SIMDCV_TRACE_PERF=1.
//
// Graceful fallback is part of the contract: perf_event_open is routinely
// unavailable (non-Linux builds, containers without CAP_PERFMON, CI with
// perf_event_paranoid > 2, seccomp filters). In every such case available()
// is false, reads return all-zero deltas, unavailableReason() names the
// cause, and tracing itself keeps working without hardware columns.
#pragma once

#include <cstdint>
#include <string>

namespace simdcv::prof {

/// One sample of the counter group. Deltas of two samples attribute
/// hardware work to a span.
struct HwCounters {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
};

/// Per-thread counter group. Use via forCurrentThread(); the group is opened
/// on first use and closed at thread exit.
class PerfCounters {
 public:
  /// The calling thread's counter group (opened lazily, at most once).
  static PerfCounters& forCurrentThread();

  /// True when the group opened and can be read on this thread.
  bool available() const noexcept { return available_; }

  /// Why the group is unavailable ("" when available): e.g.
  /// "perf_event_open: Permission denied (perf_event_paranoid?)".
  const std::string& unavailableReason() const noexcept { return reason_; }

  /// Read the current counter values. Returns all zeros when unavailable.
  HwCounters read() noexcept;

  /// Opens the group on the calling thread. Prefer forCurrentThread();
  /// direct construction is for short-lived probes (hwCountersUsable) —
  /// counters only attribute correctly to the constructing thread.
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

 private:
  int fd_cycles_ = -1;  // group leader
  int fd_instructions_ = -1;
  int fd_cache_misses_ = -1;
  bool available_ = false;
  std::string reason_;
};

/// Process-level probe: can this process open hardware counters at all?
/// (Opens a throwaway group on the calling thread.) Benchmarks use this to
/// decide between live-counter and static-accounting output.
bool hwCountersUsable();

/// Reason the probe failed; empty when hwCountersUsable() is true.
std::string hwCountersUnavailableReason();

namespace detail {
/// Test hook: force every subsequently created PerfCounters group (and the
/// process-level probe) to report unavailable, exercising the fallback path
/// on hosts where perf_event actually works.
void forceHwUnavailableForTest(bool force);
}  // namespace detail

}  // namespace simdcv::prof
