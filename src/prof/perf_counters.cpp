#include "prof/perf_counters.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace simdcv::prof {

namespace {

std::atomic_bool g_force_unavailable{false};

#if defined(__linux__)

int openCounter(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;  // count user-space work only; also lowers the
  attr.exclude_hv = 1;      // perf_event_paranoid level required
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

std::string openError(const char* what) {
  std::string r = "perf_event_open(";
  r += what;
  r += "): ";
  r += std::strerror(errno);
  if (errno == EACCES || errno == EPERM)
    r += " (check /proc/sys/kernel/perf_event_paranoid)";
  return r;
}

#endif  // __linux__

}  // namespace

PerfCounters::PerfCounters() {
  if (g_force_unavailable.load(std::memory_order_relaxed)) {
    reason_ = "forced unavailable (test hook)";
    return;
  }
#if defined(__linux__)
  fd_cycles_ = openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
  if (fd_cycles_ < 0) {
    reason_ = openError("cycles");
    return;
  }
  fd_instructions_ =
      openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, fd_cycles_);
  fd_cache_misses_ =
      openCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, fd_cycles_);
  // Instructions are required for the Section V reproduction; cache misses
  // are best-effort (some PMUs expose fewer programmable counters).
  if (fd_instructions_ < 0) {
    reason_ = openError("instructions");
    close(fd_cycles_);
    fd_cycles_ = -1;
    if (fd_cache_misses_ >= 0) {
      close(fd_cache_misses_);
      fd_cache_misses_ = -1;
    }
    return;
  }
  ioctl(fd_cycles_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fd_cycles_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  // Verify the group actually reads (a paranoid kernel can fail late).
  HwCounters probe;
  available_ = true;
  probe = read();
  (void)probe;
  if (!available_) reason_ = "perf_event read failed after open";
#else
  reason_ = "perf_event_open is Linux-only";
#endif
}

PerfCounters::~PerfCounters() {
#if defined(__linux__)
  if (fd_cache_misses_ >= 0) close(fd_cache_misses_);
  if (fd_instructions_ >= 0) close(fd_instructions_);
  if (fd_cycles_ >= 0) close(fd_cycles_);
#endif
}

HwCounters PerfCounters::read() noexcept {
  HwCounters out;
#if defined(__linux__)
  if (!available_) return out;
  auto readOne = [&](int fd, std::uint64_t& dst) {
    if (fd < 0) return true;  // optional counter absent: leave 0
    std::uint64_t v = 0;
    const ssize_t n = ::read(fd, &v, sizeof(v));
    if (n != static_cast<ssize_t>(sizeof(v))) return false;
    dst = v;
    return true;
  };
  if (!readOne(fd_cycles_, out.cycles) ||
      !readOne(fd_instructions_, out.instructions) ||
      !readOne(fd_cache_misses_, out.cache_misses)) {
    available_ = false;
    out = HwCounters{};
  }
#endif
  return out;
}

PerfCounters& PerfCounters::forCurrentThread() {
  thread_local PerfCounters counters;
  return counters;
}

bool hwCountersUsable() {
  if (g_force_unavailable.load(std::memory_order_relaxed)) return false;
  PerfCounters probe;
  return probe.available();
}

std::string hwCountersUnavailableReason() {
  if (g_force_unavailable.load(std::memory_order_relaxed))
    return "forced unavailable (test hook)";
  PerfCounters probe;
  return probe.available() ? std::string() : probe.unavailableReason();
}

namespace detail {
void forceHwUnavailableForTest(bool force) {
  g_force_unavailable.store(force, std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace simdcv::prof
