// Internal bridge between the ring storage (trace.cpp) and the exporters
// (chrome_trace.cpp). Not part of the public API — include prof/prof.hpp.
#pragma once

#include <cstdint>
#include <vector>

namespace simdcv::prof::detail {

struct RawEvent {
  const char* name;  // static-lifetime label
  std::uint64_t t0, t1, bytes;
  std::uint64_t cycles, instructions, cache_misses;
  std::uint32_t tid;
  std::uint8_t path;
  std::uint8_t kind;  // 0 = span, 1 = instant
};

/// Locked copy of every event currently retained in any thread's ring,
/// sorted by start timestamp.
std::vector<RawEvent> retainedEvents();

}  // namespace simdcv::prof::detail
