// First-order analytic performance model (roofline + issue model).
//
// Modeled per-pixel cost of a kernel on a platform:
//   HAND:  max( simd_ops / (simd_ipc * f),  bytes / bandwidth )
//   AUTO:  max( eff * simd_ops/(simd_ipc*f) + (1-eff) * scalar_ops/(scalar_ipc*f),
//               bytes / bandwidth )
// where `eff` in [0,1] is the per-platform, per-kernel auto-vectorizer
// efficiency: the fraction of the loop the 2012-era gcc managed to vectorize
// as well as the hand intrinsics. This is exactly the mechanism the paper's
// Section V assembly analysis identifies — AUTO loses because it fails to
// process whole 8-pixel blocks, issuing many more instructions per pixel.
//
// The instruction-count inputs (workFor) come from the paper where published
// (conversion: 14 instructions per 8 pixels HAND, Section V) and from
// counting our own kernels' inner loops otherwise.
#include <algorithm>

#include "platform/platform.hpp"

namespace simdcv::platform {

KernelWork workFor(BenchKernel k) {
  switch (k) {
    case BenchKernel::ConvertF32S16:
      // HAND: 14 instr / 8 px (paper §V). x86 scalar: ~25 cycle-equivalents
      // per pixel (load, inline cvtss2si, clamp, store). ARM scalar: the
      // paper's §V listing calls lrint per pixel — a libcall costing tens of
      // cycles — which is why ARM AUTO loses by up to 13.88x.
      return {.scalar_ops_px = 25.0, .simd_ops_px = 1.75, .bytes_px = 6.0,
              .scalar_ops_px_arm = 70.0};
    case BenchKernel::ThresholdU8:
      // HAND: ~4 instr / 16 px. Scalar: load, compare, select, store.
      return {.scalar_ops_px = 4.0, .simd_ops_px = 0.25, .bytes_px = 2.0};
    case BenchKernel::GaussianBlur:
      // 7x7 separable float: 14 mul + 14 add, u8<->f32 conversion with
      // rounding/saturation at the edges of the pipe, addressing — ~44
      // scalar ops; HAND does the same in 128-bit quarters (~9 ops).
      return {.scalar_ops_px = 44.0, .simd_ops_px = 9.0, .bytes_px = 10.0};
    case BenchKernel::Sobel:
      // 3x3 separable (3+3 taps) + saturating s16 store conversion.
      return {.scalar_ops_px = 18.0, .simd_ops_px = 3.6, .bytes_px = 7.0};
    case BenchKernel::EdgeDetect:
      // Two Sobel passes + |gx|+|gy| + threshold.
      return {.scalar_ops_px = 42.0, .simd_ops_px = 9.0, .bytes_px = 16.0};
  }
  return {1, 1, 1};
}

SimResult simulate(const PlatformSpec& p, BenchKernel k, Size imageSize) {
  const KernelWork w = workFor(k);
  const double f = p.ghz * 1e9;
  const double bw = p.mem_bw_gbs * 1e9;
  const double eff = p.autovec_eff[static_cast<int>(k)];

  const double scalar_ops =
      (p.is_arm && w.scalar_ops_px_arm > 0) ? w.scalar_ops_px_arm : w.scalar_ops_px;
  const double hand_compute = w.simd_ops_px / (p.simd_ipc * f);
  const double auto_compute = eff * (w.simd_ops_px / (p.simd_ipc * f)) +
                              (1.0 - eff) * (scalar_ops / (p.scalar_ipc * f));
  const double mem = w.bytes_px / bw;

  const double px = static_cast<double>(imageSize.area());
  SimResult r;
  r.hand_seconds = std::max(hand_compute, mem) * px;
  r.auto_seconds = std::max(auto_compute, mem) * px;
  return r;
}

}  // namespace simdcv::platform

namespace simdcv::platform {

double gflopsPerWatt(const PlatformSpec& p) {
  return (p.tdp_watts > 0 && p.linpack_dp_gflops > 0)
             ? p.linpack_dp_gflops / p.tdp_watts
             : 0.0;
}

int efficiencyTier(const PlatformSpec& p) {
  // The intro's classification (after Dongarra & Luszczek [7]):
  // tier 1 ~1 GFLOPS/W (desktop/server), tier 2 ~2 (GPU accelerators),
  // tier 3 ~4 (ARM). Boundaries at the geometric midpoints.
  const double e = gflopsPerWatt(p);
  if (e >= 2.83) return 3;  // sqrt(2*4)
  if (e >= 1.41) return 2;  // sqrt(1*2)
  return 1;
}

}  // namespace simdcv::platform
