#include "platform/platform.hpp"

#include "simd/features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define SIMDCV_HOST_X86 1
#endif

namespace simdcv::platform {

namespace {

#if defined(SIMDCV_HOST_X86)
// Walk CPUID leaf 4 (deterministic cache parameters) and record data/unified
// cache sizes per level.
void queryCaches(HostInfo& h) {
  for (unsigned idx = 0;; ++idx) {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid_count(4, idx, &eax, &ebx, &ecx, &edx)) break;
    const unsigned type = eax & 0x1f;  // 0 = no more caches
    if (type == 0) break;
    if (type != 1 && type != 3) continue;  // data or unified only
    const unsigned level = (eax >> 5) & 0x7;
    const unsigned ways = ((ebx >> 22) & 0x3ff) + 1;
    const unsigned partitions = ((ebx >> 12) & 0x3ff) + 1;
    const unsigned lineSize = (ebx & 0xfff) + 1;
    const unsigned sets = ecx + 1;
    const int kb = static_cast<int>(
        static_cast<unsigned long long>(ways) * partitions * lineSize * sets / 1024);
    if (level == 1) h.l1d_kb = kb;
    else if (level == 2) h.l2_kb = kb;
    else if (level == 3) h.l3_kb = kb;
  }
}
#endif

}  // namespace

HostInfo queryHost() {
  HostInfo h;
  const CpuFeatures& f = cpuFeatures();
  h.vendor = f.vendor;
  h.brand = f.brand;
  h.logical_cpus = f.logical_cpus;
  h.sse2 = f.sse2;
  h.avx = f.avx;
  h.avx2 = f.avx2;
  h.neon = f.neon;
#if defined(SIMDCV_HOST_X86)
  queryCaches(h);
#endif
  return h;
}

const char* toString(BenchKernel k) noexcept {
  switch (k) {
    case BenchKernel::ConvertF32S16: return "Convert 32f->16s";
    case BenchKernel::ThresholdU8: return "Binary Threshold";
    case BenchKernel::GaussianBlur: return "Gaussian Blur";
    case BenchKernel::Sobel: return "Sobel Filter";
    case BenchKernel::EdgeDetect: return "Edge Detection";
  }
  return "?";
}

}  // namespace simdcv::platform
