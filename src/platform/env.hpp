// Hardened environment-variable parsing, shared by every subsystem that
// reads a numeric knob (SIMDCV_NUM_THREADS, SIMDCV_SERVE_*, SIMDCV_TUNE*).
//
// Contract: an unset variable silently yields the fallback; a set-but-
// malformed value (garbage text, trailing junk, a negative number where a
// count is expected, or a value outside [min, max]) yields the fallback too,
// but with a one-line warning on stderr naming the variable and the reason —
// never undefined behavior, never a silently nonsensical config. The
// pre-hardening parsers routed "-5" through strtoull (wrapping to a huge
// worker count) or dropped bad values without a trace; both failure modes
// are now tested (tests/platform/env_test.cpp).
#pragma once

#include <cstdint>

namespace simdcv::platform {

/// Strict integer parse of `text` into `*out`. Accepts an optional sign and
/// decimal digits only (no trailing junk, no hex/octal). Returns false —
/// leaving *out untouched — on null/empty text, non-numeric input, overflow,
/// or a value outside [min, max].
bool parseInt(const char* text, long long min, long long max,
              long long* out) noexcept;

/// Read environment variable `name` as an integer in [min, max].
/// Unset/empty: returns `fallback` silently. Set but invalid: returns
/// `fallback` after a one-line stderr warning ("simdcv: ignoring NAME=...").
long long envInt(const char* name, long long fallback, long long min,
                 long long max) noexcept;

/// Read environment variable `name` as a boolean flag: "1" → true,
/// "0" → false, unset/empty → fallback. Anything else warns and returns
/// the fallback.
bool envFlag(const char* name, bool fallback) noexcept;

}  // namespace simdcv::platform
