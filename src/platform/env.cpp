#include "platform/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace simdcv::platform {

bool parseInt(const char* text, long long min, long long max,
              long long* out) noexcept {
  if (text == nullptr || *text == '\0') return false;
  // strtoll would skip leading whitespace; the contract is sign+digits only.
  if (!std::isdigit(static_cast<unsigned char>(*text)) && *text != '+' &&
      *text != '-')
    return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') return false;  // garbage / trailing junk
  if (errno == ERANGE) return false;              // overflow / underflow
  if (v < min || v > max) return false;
  *out = v;
  return true;
}

long long envInt(const char* name, long long fallback, long long min,
                 long long max) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long long parsed = 0;
  if (parseInt(v, min, max, &parsed)) return parsed;
  std::fprintf(stderr,
               "simdcv: ignoring %s=\"%s\" (want an integer in [%lld, %lld]); "
               "using %lld\n",
               name, v, min, max, fallback);
  return fallback;
}

bool envFlag(const char* name, bool fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  if (std::strcmp(v, "1") == 0) return true;
  if (std::strcmp(v, "0") == 0) return false;
  std::fprintf(stderr, "simdcv: ignoring %s=\"%s\" (want 0 or 1); using %d\n",
               name, v, fallback ? 1 : 0);
  return fallback;
}

}  // namespace simdcv::platform
