// Platform substrate: live host introspection plus a catalog of the paper's
// ten evaluation platforms (Table I) with first-order performance-model
// parameters, standing in for hardware we cannot run (see DESIGN.md §2.3).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace simdcv::platform {

/// Live information about the executing host.
struct HostInfo {
  std::string vendor;
  std::string brand;
  int logical_cpus = 1;
  int l1d_kb = 0;
  int l2_kb = 0;
  int l3_kb = 0;
  bool sse2 = false, avx = false, avx2 = false, neon = false;
};

HostInfo queryHost();

/// The five benchmark kernels of the paper's evaluation.
enum class BenchKernel : int {
  ConvertF32S16 = 0,  ///< Table II / Figure 2
  ThresholdU8,        ///< Table III row 1 / Figure 3
  GaussianBlur,       ///< Table III row 2 / Figure 4 (7x7, sigma=1)
  Sobel,              ///< Table III row 3 / Figure 5 (3x3, dx+dy)
  EdgeDetect,         ///< Table III row 4 / Figure 6
};
inline constexpr int kBenchKernelCount = 5;
const char* toString(BenchKernel k) noexcept;

/// Static description + model parameters of one evaluation platform.
/// The descriptive fields reproduce the paper's Table I; the model fields
/// are calibration constants documented in catalog.cpp.
struct PlatformSpec {
  std::string name;       ///< e.g. "Intel Atom D510"
  std::string codename;   ///< e.g. "Pineview"
  std::string launched;   ///< e.g. "Q1'10"
  std::string isa;        ///< "x86 (CISC)" or "ARMv7 (RISC)"
  std::string simd_ext;   ///< e.g. "SSE2/SSE3", "VFPv3/NEON"
  std::string memory;     ///< e.g. "4GB DDR2"
  int threads = 1;
  int cores = 1;
  double ghz = 1.0;
  int l1_kb = 32;
  int l2_kb = 512;
  int l3_kb = 0;
  bool in_order = false;       ///< in-order pipeline (Atom, Cortex-A8)
  bool is_arm = false;

  // ---- cost-model parameters ----
  double scalar_ipc = 1.0;     ///< sustained scalar instructions/cycle
  double simd_ipc = 0.8;       ///< sustained 128-bit SIMD instructions/cycle
  double mem_bw_gbs = 4.0;     ///< achievable streaming bandwidth, GB/s
  // ---- energy model (intro's GFLOPS/Watt three-tier classification) ----
  // The cited study [7] (Dongarra & Luszczek) measures sustained
  // double-precision LINPACK per Watt of active power.
  double tdp_watts = 0.0;          ///< active power under LINPACK load
  double linpack_dp_gflops = 0.0;  ///< sustained double-precision GFLOPS
  /// Auto-vectorizer efficiency per kernel, in [0,1]: the fraction of the
  /// HAND instruction-count reduction that gcc's auto-vectorizer achieved on
  /// this platform/ISA in the paper's measurements.
  std::array<double, kBenchKernelCount> autovec_eff{};
};

/// The paper's ten platforms in Table I order (4 Intel + 6 ARM).
const std::vector<PlatformSpec>& platformCatalog();

/// GFLOPS/Watt of a platform (0 when the energy fields are unset).
double gflopsPerWatt(const PlatformSpec& p);

/// The intro's three-tier efficiency classification:
/// tier 1 (~1 GFLOPS/W) desktop/server x86, tier 2 (~2) GPU accelerators,
/// tier 3 (~4) ARM — returns 1, 2 or 3.
int efficiencyTier(const PlatformSpec& p);

/// Per-kernel abstract work, per pixel (model inputs; see costmodel.cpp).
struct KernelWork {
  double scalar_ops_px;  ///< dynamic instructions/pixel, scalar (no autovec)
  double simd_ops_px;    ///< dynamic instructions/pixel, HAND intrinsics
  double bytes_px;       ///< memory traffic per pixel (read+write)
  /// Scalar cost on ARM when it differs: the paper's §V disassembly shows
  /// the ARM scalar conversion calls lrint per pixel (a libcall costing tens
  /// of cycles), which x86 replaces with an inline cvtss2si. 0 = same as
  /// scalar_ops_px.
  double scalar_ops_px_arm = 0;
};
KernelWork workFor(BenchKernel k);

/// Modeled AUTO / HAND runtimes for one platform/kernel/size.
struct SimResult {
  double auto_seconds = 0;
  double hand_seconds = 0;
  double speedup() const { return hand_seconds > 0 ? auto_seconds / hand_seconds : 0; }
};
SimResult simulate(const PlatformSpec& p, BenchKernel k, Size imageSize);

/// Published anchor values from the paper for validation (speedups that the
/// text states explicitly). value < 0 means "not published / unreadable in
/// the source text".
struct PaperAnchor {
  const char* platform;
  BenchKernel kernel;
  double speedup;
};
const std::vector<PaperAnchor>& paperAnchors();

}  // namespace simdcv::platform
