// The paper's Table I platform catalog, plus calibration.
//
// Descriptive fields are transcribed from Table I. Model parameters
// (scalar_ipc, simd_ipc, mem_bw_gbs) are order-of-magnitude figures for the
// microarchitectures involved:
//   * in-order cores (Atom Bonnell, Cortex-A8) sustain < 1 IPC on this code;
//   * out-of-order cores (Core2, Sandy/Ivy Bridge, Cortex-A9) sustain 1-2.3;
//   * Cortex-A8/A9 NEON is a 64-bit datapath, so a 128-bit op costs ~2
//     cycles (simd_ipc ~ 0.4-0.5) while Intel executes full 128-bit SSE ops
//     (simd_ipc ~ 1.2-1.7);
//   * memory bandwidth follows the DDR generation in Table I.
//
// The auto-vectorizer efficiencies are CALIBRATED: each platform carries the
// HAND/AUTO speedup the paper reports (or, where the scanned tables are
// unreadable, a value interpolated inside the figure's published range —
// marked "interp"), and calibrate() inverts the cost model so the simulated
// 8-mpx speedup reproduces it. Absolute times remain a model output.
#include <cmath>

#include "platform/platform.hpp"

namespace simdcv::platform {

namespace {

constexpr Size k8mpx{3264, 2448};

// Invert simulate() for autovec_eff by bisection (speedup is monotonically
// decreasing in eff). Returns eff achieving `target`, clamped to [0,1].
double calibrateEff(PlatformSpec p, BenchKernel k, double target) {
  const int ki = static_cast<int>(k);
  auto speedupAt = [&](double eff) {
    p.autovec_eff[ki] = eff;
    return simulate(p, k, k8mpx).speedup();
  };
  if (target >= speedupAt(0.0)) return 0.0;
  if (target <= speedupAt(1.0)) return 1.0;
  double lo = 0.0, hi = 1.0;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (speedupAt(mid) > target)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

struct SpecAndTargets {
  PlatformSpec spec;
  // Target HAND/AUTO speedups per kernel: {cvt, thresh, gauss, sobel, edge}.
  std::array<double, kBenchKernelCount> target;
};

std::vector<SpecAndTargets> rawCatalog() {
  std::vector<SpecAndTargets> v;

  // ---- Intel ---------------------------------------------------------------
  // Published anchors: conversion speedup 5.27 (Atom) and 1.34 (Core 2);
  // Intel overall range 1.34–5.54 with "slightly greater" benefit and higher
  // variability than ARM (Sections IV, VI).
  v.push_back({{.name = "Intel Atom D510", .codename = "Pineview",
                .launched = "Q1'10", .isa = "x86 (CISC)",
                .simd_ext = "SSE2/SSE3", .memory = "4GB DDR2",
                .threads = 4, .cores = 2, .ghz = 1.66,
                .l1_kb = 24, .l2_kb = 1024, .l3_kb = 0,
                .in_order = true, .is_arm = false,
                .scalar_ipc = 0.8, .simd_ipc = 0.6, .mem_bw_gbs = 3.0,
                .tdp_watts = 13.0, .linpack_dp_gflops = 2.0},
               {5.27, 4.5, 2.9, 3.0, 2.4}});  // cvt published; rest interp
  v.push_back({{.name = "Intel Core 2 Quad Q9400", .codename = "Yorkfield",
                .launched = "Q3'08", .isa = "x86 (CISC)",
                .simd_ext = "SSE*", .memory = "8GB DDR3",
                .threads = 4, .cores = 4, .ghz = 2.66,
                .l1_kb = 32, .l2_kb = 3072, .l3_kb = 0,
                .in_order = false, .is_arm = false,
                .scalar_ipc = 1.8, .simd_ipc = 1.2, .mem_bw_gbs = 6.0,
                .tdp_watts = 95.0, .linpack_dp_gflops = 38.0},
               {1.34, 1.9, 1.8, 2.0, 1.6}});  // cvt published; rest interp
  v.push_back({{.name = "Intel Core i7 2820QM", .codename = "Sandy Bridge",
                .launched = "Q1'11", .isa = "x86 (CISC)",
                .simd_ext = "SSE*/AVX", .memory = "8GB DDR3",
                .threads = 8, .cores = 4, .ghz = 2.3,
                .l1_kb = 32, .l2_kb = 256, .l3_kb = 8192,
                .in_order = false, .is_arm = false,
                .scalar_ipc = 2.2, .simd_ipc = 1.6, .mem_bw_gbs = 12.0,
                .tdp_watts = 45.0, .linpack_dp_gflops = 42.0},
               {3.0, 2.6, 2.4, 2.6, 2.0}});  // interp within fig ranges
  v.push_back({{.name = "Intel Core i5 3360M", .codename = "Ivy Bridge",
                .launched = "Q2'12", .isa = "x86 (CISC)",
                .simd_ext = "SSE*/AVX", .memory = "16GB DDR3",
                .threads = 4, .cores = 2, .ghz = 2.8,
                .l1_kb = 32, .l2_kb = 256, .l3_kb = 3072,
                .in_order = false, .is_arm = false,
                .scalar_ipc = 2.3, .simd_ipc = 1.7, .mem_bw_gbs = 12.8,
                .tdp_watts = 35.0, .linpack_dp_gflops = 32.0},
               {3.5, 3.2, 3.4, 3.4, 2.6}});  // interp (figures' Intel maxima)

  // ---- ARM -----------------------------------------------------------------
  // Published anchors: conversion speedup 13.88 (Exynos 3110) and 3.42
  // (Tegra T30); ODROID shows "more than twice as much benefit" as Tegra on
  // conversion; ARM overall range 1.05–13.88.
  v.push_back({{.name = "TI DM3730", .codename = "DaVinci",
                .launched = "Q2'10", .isa = "ARMv7 (RISC)",
                .simd_ext = "VFPv3/NEON", .memory = "512MB DDR",
                .threads = 1, .cores = 1, .ghz = 0.8,
                .l1_kb = 32, .l2_kb = 256, .l3_kb = 0,
                .in_order = true, .is_arm = true,
                .scalar_ipc = 0.9, .simd_ipc = 0.4, .mem_bw_gbs = 1.0,
                .tdp_watts = 0.3, .linpack_dp_gflops = 0.6},
               {13.0, 2.7, 2.1, 2.2, 1.7}});  // Cortex-A8, interp near Exynos 3110
  v.push_back({{.name = "Samsung Exynos 3110", .codename = "Exynos 3 Single",
                .launched = "Q1'11", .isa = "ARMv7 (RISC)",
                .simd_ext = "VFPv3/NEON", .memory = "512MB LPDDR",
                .threads = 1, .cores = 1, .ghz = 1.0,
                .l1_kb = 32, .l2_kb = 512, .l3_kb = 0,
                .in_order = true, .is_arm = true,
                .scalar_ipc = 0.9, .simd_ipc = 0.4, .mem_bw_gbs = 1.4,
                .tdp_watts = 0.35, .linpack_dp_gflops = 0.8},
               {13.88, 3.0, 2.2, 2.3, 1.8}});  // cvt published
  v.push_back({{.name = "TI OMAP 4460", .codename = "Omap",
                .launched = "Q1'11", .isa = "ARMv7 (RISC)",
                .simd_ext = "VFPv3/NEON", .memory = "1GB LPDDR2",
                .threads = 2, .cores = 2, .ghz = 1.2,
                .l1_kb = 32, .l2_kb = 1024, .l3_kb = 0,
                .in_order = false, .is_arm = true,
                .scalar_ipc = 1.1, .simd_ipc = 0.5, .mem_bw_gbs = 2.0,
                .tdp_watts = 0.6, .linpack_dp_gflops = 2.4},
               {11.0, 2.4, 1.9, 2.0, 1.5}});  // interp
  v.push_back({{.name = "Samsung Exynos 4412", .codename = "Exynos 4 Quad",
                .launched = "Q1'12", .isa = "ARMv7 (RISC)",
                .simd_ext = "VFPv3/NEON", .memory = "1GB LPDDR2",
                .threads = 4, .cores = 4, .ghz = 1.4,
                .l1_kb = 32, .l2_kb = 1024, .l3_kb = 0,
                .in_order = false, .is_arm = true,
                .scalar_ipc = 1.1, .simd_ipc = 0.5, .mem_bw_gbs = 2.5,
                .tdp_watts = 1.3, .linpack_dp_gflops = 5.5},
               {12.0, 2.5, 2.0, 2.1, 1.6}});  // interp
  v.push_back({{.name = "Odroid-X Exynos 4412", .codename = "ODROID-X",
                .launched = "Q2'12", .isa = "ARMv7 (RISC)",
                .simd_ext = "VFPv3/NEON", .memory = "1GB LPDDR2",
                .threads = 4, .cores = 4, .ghz = 1.3,
                .l1_kb = 32, .l2_kb = 1024, .l3_kb = 0,
                .in_order = false, .is_arm = true,
                .scalar_ipc = 1.1, .simd_ipc = 0.5, .mem_bw_gbs = 2.5,
                .tdp_watts = 1.25, .linpack_dp_gflops = 5.1},
               {7.5, 2.3, 1.9, 2.0, 1.5}});  // ">2x Tegra's benefit" (§IV-A)
  v.push_back({{.name = "NVIDIA Tegra T30", .codename = "Tegra 3, Kal-El",
                .launched = "Q1'11", .isa = "ARMv7 (RISC)",
                .simd_ext = "VFPv3/NEON", .memory = "2GB DDR3L",
                .threads = 4, .cores = 4, .ghz = 1.3,
                .l1_kb = 32, .l2_kb = 1024, .l3_kb = 0,
                .in_order = false, .is_arm = true,
                // The paper observes Tegra's NEON underperforms the ODROID
                // at equal clock; modeled as lower sustained NEON throughput.
                .scalar_ipc = 1.1, .simd_ipc = 0.35, .mem_bw_gbs = 2.2,
                .tdp_watts = 1.4, .linpack_dp_gflops = 5.0},
               {3.42, 1.6, 1.3, 1.4, 1.05}});  // cvt published; edge = ARM min
  return v;
}

}  // namespace

const std::vector<PlatformSpec>& platformCatalog() {
  static const std::vector<PlatformSpec> catalog = [] {
    std::vector<PlatformSpec> out;
    for (auto& st : rawCatalog()) {
      PlatformSpec p = st.spec;
      for (int k = 0; k < kBenchKernelCount; ++k) {
        p.autovec_eff[static_cast<std::size_t>(k)] =
            calibrateEff(p, static_cast<BenchKernel>(k),
                         st.target[static_cast<std::size_t>(k)]);
      }
      out.push_back(std::move(p));
    }
    return out;
  }();
  return catalog;
}

const std::vector<PaperAnchor>& paperAnchors() {
  // Speedups stated verbatim in the paper's prose (the scanned table cells
  // themselves are unreadable in our source text).
  static const std::vector<PaperAnchor> anchors = {
      {"Intel Atom D510", BenchKernel::ConvertF32S16, 5.27},
      {"Intel Core 2 Quad Q9400", BenchKernel::ConvertF32S16, 1.34},
      {"Samsung Exynos 3110", BenchKernel::ConvertF32S16, 13.88},
      {"NVIDIA Tegra T30", BenchKernel::ConvertF32S16, 3.42},
  };
  return anchors;
}

}  // namespace simdcv::platform
