// Uncompressed Windows BMP reader/writer (BITMAPINFOHEADER).
//
// Layouts handled: 8-bit palettized (written with a grayscale palette),
// 24-bit BGR and 32-bit BGRA (alpha dropped on read). Rows are stored
// bottom-up with 4-byte padding, per the format.
#include <cstdio>
#include <fstream>
#include <limits>
#include <vector>

#include "io/image_io.hpp"

namespace simdcv::io {

namespace {

void putU16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}
void putU32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
std::uint16_t getU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t getU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

constexpr std::size_t kFileHeaderSize = 14;
constexpr std::size_t kInfoHeaderSize = 40;

}  // namespace

void writeBmp(const std::string& path, const Mat& img) {
  SIMDCV_REQUIRE(!img.empty(), "writeBmp: empty image");
  SIMDCV_REQUIRE(img.depth() == Depth::U8 &&
                     (img.channels() == 1 || img.channels() == 3),
                 "writeBmp: image must be u8c1 or u8c3");
  const int w = img.cols();
  const int h = img.rows();
  const bool gray = img.channels() == 1;
  const std::size_t bpp = gray ? 1 : 3;
  const std::size_t rowBytes = (static_cast<std::size_t>(w) * bpp + 3) / 4 * 4;
  const std::size_t paletteBytes = gray ? 256 * 4 : 0;
  const std::size_t dataOffset = kFileHeaderSize + kInfoHeaderSize + paletteBytes;
  const std::size_t fileSize = dataOffset + rowBytes * static_cast<std::size_t>(h);

  std::vector<std::uint8_t> out;
  out.reserve(fileSize);
  // BITMAPFILEHEADER
  out.push_back('B');
  out.push_back('M');
  putU32(out, static_cast<std::uint32_t>(fileSize));
  putU32(out, 0);  // reserved
  putU32(out, static_cast<std::uint32_t>(dataOffset));
  // BITMAPINFOHEADER
  putU32(out, kInfoHeaderSize);
  putU32(out, static_cast<std::uint32_t>(w));
  putU32(out, static_cast<std::uint32_t>(h));  // positive: bottom-up
  putU16(out, 1);                              // planes
  putU16(out, gray ? 8 : 24);
  putU32(out, 0);  // BI_RGB, no compression
  putU32(out, static_cast<std::uint32_t>(rowBytes * static_cast<std::size_t>(h)));
  putU32(out, 2835);  // 72 DPI
  putU32(out, 2835);
  putU32(out, gray ? 256 : 0);  // palette entries
  putU32(out, 0);               // important colors
  if (gray) {
    for (int i = 0; i < 256; ++i) {
      out.push_back(static_cast<std::uint8_t>(i));  // B
      out.push_back(static_cast<std::uint8_t>(i));  // G
      out.push_back(static_cast<std::uint8_t>(i));  // R
      out.push_back(0);
    }
  }
  std::vector<std::uint8_t> row(rowBytes, 0);
  for (int y = h - 1; y >= 0; --y) {
    std::memcpy(row.data(), img.ptr<std::uint8_t>(y),
                static_cast<std::size_t>(w) * bpp);
    out.insert(out.end(), row.begin(), row.end());
  }

  std::ofstream f(path, std::ios::binary);
  SIMDCV_REQUIRE(f.good(), "writeBmp: cannot open " + path);
  f.write(reinterpret_cast<const char*>(out.data()),
          static_cast<std::streamsize>(out.size()));
  SIMDCV_REQUIRE(f.good(), "writeBmp: write failed for " + path);
}

Mat readBmp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  SIMDCV_REQUIRE(f.good(), "readBmp: cannot open " + path);
  std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
  SIMDCV_REQUIRE(buf.size() >= kFileHeaderSize + kInfoHeaderSize,
                 "readBmp: truncated header in " + path);
  SIMDCV_REQUIRE(buf[0] == 'B' && buf[1] == 'M', "readBmp: not a BMP: " + path);
  const std::uint32_t dataOffset = getU32(&buf[10]);
  const std::uint32_t infoSize = getU32(&buf[14]);
  // infoSize is attacker-controlled; cap it before it feeds the palette
  // offset. Real headers are 40 (BITMAPINFOHEADER) to 124 (V5).
  SIMDCV_REQUIRE(infoSize >= kInfoHeaderSize && infoSize <= 1024,
                 "readBmp: unsupported header");
  // Width/height are signed; height may legitimately be negative (top-down),
  // but INT32_MIN has no positive counterpart — negating it is UB.
  const std::int32_t w = static_cast<std::int32_t>(getU32(&buf[18]));
  const std::int32_t hRaw = static_cast<std::int32_t>(getU32(&buf[22]));
  SIMDCV_REQUIRE(hRaw != std::numeric_limits<std::int32_t>::min(),
                 "readBmp: bad dimensions");
  const bool topDown = hRaw < 0;
  const std::int32_t h = topDown ? -hRaw : hRaw;
  const std::uint16_t bits = getU16(&buf[28]);
  const std::uint32_t compression = getU32(&buf[30]);
  SIMDCV_REQUIRE(compression == 0, "readBmp: compressed BMP unsupported");
  SIMDCV_REQUIRE(bits == 8 || bits == 24 || bits == 32,
                 "readBmp: unsupported bit depth");
  SIMDCV_REQUIRE(w > 0 && h > 0, "readBmp: bad dimensions");

  // All size arithmetic below is overflow-checked against the actual file
  // size: a crafted header must not be able to pass the truncation test by
  // wrapping dataOffset + rowBytes * h, nor trigger a multi-GB allocation
  // for a file of a few hundred bytes.
  const std::size_t bpp = bits / 8;
  const std::size_t rowBytes = (static_cast<std::size_t>(w) * bpp + 3) / 4 * 4;
  SIMDCV_REQUIRE(dataOffset <= buf.size(), "readBmp: pixel data offset beyond EOF");
  SIMDCV_REQUIRE(static_cast<std::size_t>(h) <= (buf.size() - dataOffset) / rowBytes,
                 "readBmp: truncated pixel data");

  // Palette (for 8-bit): detect a pure grayscale ramp -> U8C1; otherwise
  // expand through the palette to U8C3. The pixel loop indexes all 256
  // entries, so the full 1024-byte table must be present in the file.
  const std::uint8_t* palette = nullptr;
  bool grayPalette = false;
  if (bits == 8) {
    const std::size_t paletteOff = kFileHeaderSize + infoSize;
    SIMDCV_REQUIRE(paletteOff + 256 * 4 <= buf.size() &&
                       paletteOff + 256 * 4 <= dataOffset,
                   "readBmp: truncated palette");
    palette = &buf[paletteOff];
    grayPalette = true;
    for (int i = 0; i < 256 && grayPalette; ++i) {
      const std::uint8_t* e = palette + 4 * i;
      grayPalette = (e[0] == i && e[1] == i && e[2] == i);
    }
  }

  Mat img(h, w,
          bits == 8 && grayPalette ? U8C1 : U8C3);
  for (int y = 0; y < h; ++y) {
    const int srcY = topDown ? y : (h - 1 - y);
    const std::uint8_t* srow = &buf[dataOffset + rowBytes * static_cast<std::size_t>(srcY)];
    std::uint8_t* drow = img.ptr<std::uint8_t>(y);
    if (bits == 8 && grayPalette) {
      std::memcpy(drow, srow, static_cast<std::size_t>(w));
    } else if (bits == 8) {
      for (int x = 0; x < w; ++x) {
        const std::uint8_t* e = palette + 4 * srow[x];
        drow[3 * x] = e[0];
        drow[3 * x + 1] = e[1];
        drow[3 * x + 2] = e[2];
      }
    } else if (bits == 24) {
      std::memcpy(drow, srow, static_cast<std::size_t>(w) * 3);
    } else {  // 32-bit BGRA -> BGR
      for (int x = 0; x < w; ++x) {
        drow[3 * x] = srow[4 * x];
        drow[3 * x + 1] = srow[4 * x + 1];
        drow[3 * x + 2] = srow[4 * x + 2];
      }
    }
  }
  return img;
}

}  // namespace simdcv::io
