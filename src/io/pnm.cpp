// Binary PGM (P5) / PPM (P6) reader and writer, plus the extension-dispatch
// entry points.
#include <cctype>
#include <fstream>
#include <sstream>

#include "io/image_io.hpp"

namespace simdcv::io {

void writePnm(const std::string& path, const Mat& img) {
  SIMDCV_REQUIRE(!img.empty(), "writePnm: empty image");
  SIMDCV_REQUIRE(img.depth() == Depth::U8 &&
                     (img.channels() == 1 || img.channels() == 3),
                 "writePnm: image must be u8c1 or u8c3");
  std::ofstream f(path, std::ios::binary);
  SIMDCV_REQUIRE(f.good(), "writePnm: cannot open " + path);
  const bool gray = img.channels() == 1;
  f << (gray ? "P5" : "P6") << "\n"
    << img.cols() << " " << img.rows() << "\n255\n";
  const std::size_t rowBytes =
      static_cast<std::size_t>(img.cols()) * img.channels();
  for (int y = 0; y < img.rows(); ++y)
    f.write(reinterpret_cast<const char*>(img.ptr<std::uint8_t>(y)),
            static_cast<std::streamsize>(rowBytes));
  SIMDCV_REQUIRE(f.good(), "writePnm: write failed for " + path);
}

namespace {

int nextToken(std::istream& in) {
  // Skip whitespace and '#' comments, then parse a decimal integer.
  int c = in.get();
  while (c != EOF) {
    if (c == '#') {
      while (c != EOF && c != '\n') c = in.get();
    } else if (!std::isspace(c)) {
      break;
    } else {
      c = in.get();
    }
  }
  SIMDCV_REQUIRE(c != EOF, "readPnm: truncated header");
  int v = 0;
  while (c != EOF && std::isdigit(c)) {
    v = v * 10 + (c - '0');
    c = in.get();
  }
  return v;
}

}  // namespace

Mat readPnm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  SIMDCV_REQUIRE(f.good(), "readPnm: cannot open " + path);
  char magic[2] = {};
  f.read(magic, 2);
  SIMDCV_REQUIRE(magic[0] == 'P' && (magic[1] == '5' || magic[1] == '6'),
                 "readPnm: unsupported magic in " + path);
  const bool gray = magic[1] == '5';
  const int w = nextToken(f);
  const int h = nextToken(f);
  const int maxval = nextToken(f);
  SIMDCV_REQUIRE(w > 0 && h > 0, "readPnm: bad dimensions");
  SIMDCV_REQUIRE(maxval > 0 && maxval <= 255, "readPnm: maxval must be <=255");
  Mat img(h, w, gray ? U8C1 : U8C3);
  const std::size_t rowBytes = static_cast<std::size_t>(w) * img.channels();
  for (int y = 0; y < h; ++y) {
    f.read(reinterpret_cast<char*>(img.ptr<std::uint8_t>(y)),
           static_cast<std::streamsize>(rowBytes));
    SIMDCV_REQUIRE(f.good(), "readPnm: truncated pixel data");
  }
  return img;
}

namespace {

std::string lowerExt(const std::string& path) {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return {};
  std::string e = path.substr(dot + 1);
  for (char& c : e) c = static_cast<char>(std::tolower(c));
  return e;
}

}  // namespace

void writeImage(const std::string& path, const Mat& img) {
  const std::string e = lowerExt(path);
  if (e == "bmp") {
    writeBmp(path, img);
  } else if (e == "pgm" || e == "ppm" || e == "pnm") {
    writePnm(path, img);
  } else {
    throw Error("writeImage: unsupported extension ." + e);
  }
}

Mat readImage(const std::string& path) {
  const std::string e = lowerExt(path);
  if (e == "bmp") return readBmp(path);
  if (e == "pgm" || e == "ppm" || e == "pnm") return readPnm(path);
  throw Error("readImage: unsupported extension ." + e);
}

}  // namespace simdcv::io
