// Minimal image file I/O: uncompressed BMP (the paper's test-image format)
// and PGM/PPM. Grayscale U8C1 and interleaved BGR U8C3 images are supported.
#pragma once

#include <string>

#include "core/mat.hpp"

namespace simdcv::io {

/// Write `img` (U8C1 or U8C3) as an uncompressed Windows BMP
/// (8-bit palettized for C1, 24-bit BGR for C3). Throws simdcv::Error on
/// failure.
void writeBmp(const std::string& path, const Mat& img);

/// Read an uncompressed 8-bit palettized or 24/32-bit BMP. Returns U8C1 for
/// paletted grayscale files, U8C3 otherwise.
Mat readBmp(const std::string& path);

/// Write binary PGM (U8C1) or PPM (U8C3).
void writePnm(const std::string& path, const Mat& img);

/// Read binary PGM/PPM (maxval <= 255).
Mat readPnm(const std::string& path);

/// Dispatch on extension: .bmp, .pgm, .ppm, .pnm.
void writeImage(const std::string& path, const Mat& img);
Mat readImage(const std::string& path);

}  // namespace simdcv::io
