#include "tune/tune.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "platform/env.hpp"
#include "platform/platform.hpp"
#include "prof/prof.hpp"

namespace simdcv::tune {

namespace {

// One decision point. Committed points carry only the winner; trialing
// points accumulate per-candidate samples until every candidate has
// kTrialSamples, then commit the smallest-median candidate.
struct Point {
  int winner = -1;  // -1 while trialing
  std::vector<std::vector<std::uint64_t>> samples;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point> points;
  Stats stats;
  std::string cache_path;
  bool cache_path_init = false;  // lazily from SIMDCV_TUNE_CACHE
  bool cache_loaded = false;     // lazy one-shot load of cache_path
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: used from kernel entries at exit
  return *r;
}

std::atomic<int> g_enabled{-1};  // -1 = consult SIMDCV_TUNE on first read

// Only one axis measures per call tree: a nested kernel inside an outer
// trial's window must not start its own trial (it would both pollute the
// outer sample and be polluted by it).
thread_local bool tls_trial_active = false;

std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Requires r.mu held. Serves a committed winner or assigns the
// least-sampled candidate as this call's trial (caller must hold the
// thread's trial guard).
Decision decideLocked(Registry& r, const std::string& key, int numCandidates,
                      int fallback, bool allowTrial) {
  Point& pt = r.points[key];
  if (pt.winner >= 0 && pt.winner < numCandidates) {
    ++r.stats.decisions_served;
    return {pt.winner, false};
  }
  if (!allowTrial) return {fallback, false};
  if (pt.samples.empty()) pt.samples.resize(static_cast<std::size_t>(numCandidates));
  // Least-sampled candidate next, ties to the lowest index: every candidate
  // reaches kTrialSamples after numCandidates * kTrialSamples calls.
  int cand = 0;
  std::size_t fewest = pt.samples[0].size();
  for (int i = 1; i < numCandidates; ++i) {
    if (pt.samples[static_cast<std::size_t>(i)].size() < fewest) {
      fewest = pt.samples[static_cast<std::size_t>(i)].size();
      cand = i;
    }
  }
  ++r.stats.trials_started;
  return {cand, true};
}

std::uint64_t medianOf(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

bool saveLocked(Registry& r, const std::string& path);

// Requires r.mu held.
void reportLocked(Registry& r, const std::string& key, int candidate,
                  std::uint64_t ns) {
  Point& pt = r.points[key];
  if (pt.winner >= 0) return;  // decided concurrently; drop the straggler
  if (candidate < 0 ||
      static_cast<std::size_t>(candidate) >= pt.samples.size())
    return;
  pt.samples[static_cast<std::size_t>(candidate)].push_back(ns);
  ++r.stats.samples_recorded;
  for (const auto& s : pt.samples)
    if (s.size() < static_cast<std::size_t>(kTrialSamples)) return;
  // Calibrated enough: commit the smallest-median candidate.
  int winner = 0;
  std::uint64_t best = medianOf(pt.samples[0]);
  for (std::size_t i = 1; i < pt.samples.size(); ++i) {
    const std::uint64_t m = medianOf(pt.samples[i]);
    if (m < best) {
      best = m;
      winner = static_cast<int>(i);
    }
  }
  pt.winner = winner;
  pt.samples.clear();
  pt.samples.shrink_to_fit();
  ++r.stats.decisions_committed;
  if (!r.cache_path.empty()) saveLocked(r, r.cache_path);
}

constexpr const char* kFileMagic = "simdcv-tune-cache v1";

// Requires r.mu held.
bool saveLocked(Registry& r, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "simdcv: tune cache not writable: %s\n",
                   tmp.c_str());
      return false;
    }
    os << kFileMagic << "\n";
    os << "host " << fingerprint() << "\n";
    for (const auto& [key, pt] : r.points)
      if (pt.winner >= 0) os << "decide " << key << " " << pt.winner << "\n";
    if (!os.good()) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "simdcv: tune cache rename failed: %s\n",
                 path.c_str());
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// Requires r.mu held. Tolerant load: missing/corrupt/wrong-host files warn
// once and leave the registry untouched (decisions re-measure); individually
// malformed data lines are skipped.
bool loadLocked(Registry& r, const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    ++r.stats.file_load_failures;
    return false;  // missing file is the normal first run: no warning
  }
  std::string line;
  if (!std::getline(is, line) || line != kFileMagic) {
    std::fprintf(stderr,
                 "simdcv: ignoring tune cache %s (bad or missing header)\n",
                 path.c_str());
    ++r.stats.file_load_failures;
    return false;
  }
  std::string tag, fp;
  if (!(is >> tag >> fp) || tag != "host") {
    std::fprintf(stderr, "simdcv: ignoring tune cache %s (no host line)\n",
                 path.c_str());
    ++r.stats.file_load_failures;
    return false;
  }
  if (fp != fingerprint()) {
    std::fprintf(stderr,
                 "simdcv: ignoring tune cache %s (host fingerprint %s != %s; "
                 "re-measuring)\n",
                 path.c_str(), fp.c_str(), fingerprint().c_str());
    ++r.stats.file_load_failures;
    return false;
  }
  std::uint64_t loaded = 0;
  while (is >> tag) {
    std::string key;
    int winner = -1;
    if (tag != "decide" || !(is >> key >> winner) || winner < 0) {
      // Malformed entry: skip the rest of the line, keep the good ones. The
      // failed extraction left the stream in a fail state — clear it or the
      // getline (and every later entry) would be dropped too.
      is.clear();
      std::getline(is, line);
      continue;
    }
    r.points[key].winner = winner;
    ++loaded;
  }
  r.stats.file_entries_loaded += loaded;
  return true;
}

// Requires r.mu held. Resolve the lazy cache path + one-shot load.
void ensureCacheLocked(Registry& r) {
  if (!r.cache_path_init) {
    const char* p = std::getenv("SIMDCV_TUNE_CACHE");
    r.cache_path = (p != nullptr) ? p : "";
    r.cache_path_init = true;
  }
  if (!r.cache_loaded) {
    r.cache_loaded = true;
    if (!r.cache_path.empty()) loadLocked(r, r.cache_path);
  }
}

}  // namespace

bool enabled() noexcept {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = platform::envFlag("SIMDCV_TUNE", false) ? 1 : 0;
    int expected = -1;
    g_enabled.compare_exchange_strong(expected, v, std::memory_order_relaxed);
    v = g_enabled.load(std::memory_order_relaxed);
  }
  return v != 0;
}

void setEnabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

ScopedEnable::ScopedEnable(bool on) noexcept : prev_(enabled()) {
  setEnabled(on);
}

ScopedEnable::~ScopedEnable() { setEnabled(prev_); }

std::string fingerprint() {
  static const std::string fp = [] {
    const platform::HostInfo h = platform::queryHost();
    std::ostringstream os;
    os << h.brand << "|" << h.logical_cpus << "|" << h.l1d_kb << "|" << h.l2_kb
       << "|" << h.l3_kb << "|" << h.sse2 << h.avx << h.avx2 << h.neon;
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a(os.str())));
    return std::string(buf);
  }();
  return fp;
}

int sizeClass(std::uint64_t bytes) noexcept {
  int c = 0;
  while (bytes > 1) {
    bytes >>= 1;
    ++c;
  }
  return c;
}

void setCachePath(std::string path) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.cache_path = std::move(path);
  r.cache_path_init = true;
  r.cache_loaded = false;  // re-arm the lazy load for the new path
}

std::string cachePath() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  if (!r.cache_path_init) {
    const char* p = std::getenv("SIMDCV_TUNE_CACHE");
    r.cache_path = (p != nullptr) ? p : "";
    r.cache_path_init = true;
  }
  return r.cache_path;
}

bool loadCache(const std::string& path) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return loadLocked(r, path);
}

bool saveCache(const std::string& path) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return saveLocked(r, path);
}

Decision decide(const std::string& key, int numCandidates, int fallback) {
  if (numCandidates <= 1) return {0, false};
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  ensureCacheLocked(r);
  return decideLocked(r, key, numCandidates, fallback, !tls_trial_active);
}

void report(const std::string& key, int candidate, std::uint64_t ns) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  reportLocked(r, key, candidate, ns);
}

int committedChoice(const std::string& key) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.points.find(key);
  return it != r.points.end() ? it->second.winner : -1;
}

std::vector<std::pair<std::string, int>> decisions() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::vector<std::pair<std::string, int>> out;
  for (const auto& [key, pt] : r.points)
    if (pt.winner >= 0) out.emplace_back(key, pt.winner);
  return out;
}

Stats stats() noexcept {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.stats;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.points.clear();
  r.stats = Stats{};
  r.cache_loaded = true;  // an explicit reset means "start empty", not reload
}

std::string pointKey(const char* kernel, const char* axis, KernelPath path,
                     int size_class) {
  std::string key(kernel);
  key += '|';
  key += axis;
  key += '|';
  key += toString(path);
  key += "|c";
  key += std::to_string(size_class);
  return key;
}

std::string pointKeyPathAxis(const char* kernel, int size_class) {
  std::string key(kernel);
  key += "|path|*|c";
  key += std::to_string(size_class);
  return key;
}

const std::vector<KernelPath>& pathCandidates() {
  static const std::vector<KernelPath> cands = [] {
    std::vector<KernelPath> v{KernelPath::Auto};
    for (KernelPath p :
         {KernelPath::Sse2, KernelPath::Avx2, KernelPath::Neon})
      if (pathAvailable(p)) v.push_back(p);
    return v;
  }();
  return cands;
}

PathScope::PathScope(const char* kernel, KernelPath requested,
                     std::uint64_t bytes) noexcept
    : path_(resolvePath(requested)) {
  if (!enabled() || requested != KernelPath::Default) return;
  const auto& cands = pathCandidates();
  key_ = pointKeyPathAxis(kernel, sizeClass(bytes));
  // The heuristic fallback is the library's static preference (resolvePath),
  // expressed as a candidate index; Auto (index 0) if it is not a candidate.
  int fallback = 0;
  for (std::size_t i = 0; i < cands.size(); ++i)
    if (cands[i] == path_) fallback = static_cast<int>(i);
  const Decision d = decide(key_, static_cast<int>(cands.size()), fallback);
  path_ = cands[static_cast<std::size_t>(d.choice)];
  if (d.measuring) {
    measuring_ = true;
    candidate_ = d.choice;
    tls_trial_active = true;
    t0_ = prof::nowNs();
  }
}

PathScope::~PathScope() {
  if (!measuring_) return;
  const std::uint64_t ns = prof::nowNs() - t0_;
  tls_trial_active = false;
  report(key_, candidate_, ns);
}

ChoiceScope::ChoiceScope(const char* kernel, const char* axis, KernelPath path,
                         std::uint64_t bytes, int numCandidates,
                         int fallback) noexcept
    : choice_(fallback) {
  if (!enabled()) return;
  key_ = pointKey(kernel, axis, path, sizeClass(bytes));
  const Decision d = decide(key_, numCandidates, fallback);
  choice_ = d.choice;
  if (d.measuring) {
    measuring_ = true;
    tls_trial_active = true;
    t0_ = prof::nowNs();
  }
}

ChoiceScope::~ChoiceScope() {
  if (!measuring_) return;
  const std::uint64_t ns = prof::nowNs() - t0_;
  tls_trial_active = false;
  report(key_, choice_, ns);
}

int grainForChoice(int choice, int heuristicGrain, int rows) noexcept {
  const int cap = rows > 1 ? rows : 1;
  long long g = heuristicGrain > 0 ? heuristicGrain : 1;
  switch (choice) {
    case 0: break;
    case 1: g *= 2; break;
    case 2: g *= 4; break;
    default: g = cap; break;  // serial: one band
  }
  if (g > cap) g = cap;
  return static_cast<int>(g);
}

GrainScope::GrainScope(const char* kernel, KernelPath path, std::uint64_t bytes,
                       int rows, int heuristicGrain) noexcept
    : grain_(heuristicGrain) {
  if (!enabled()) return;
  key_ = pointKey(kernel, "grain", path, sizeClass(bytes));
  const Decision d = decide(key_, kGrainCandidates, /*fallback=*/0);
  grain_ = grainForChoice(d.choice, heuristicGrain, rows);
  if (d.measuring) {
    measuring_ = true;
    candidate_ = d.choice;
    tls_trial_active = true;
    t0_ = prof::nowNs();
  }
}

GrainScope::~GrainScope() {
  if (!measuring_) return;
  const std::uint64_t ns = prof::nowNs() - t0_;
  tls_trial_active = false;
  report(key_, candidate_, ns);
}

}  // namespace simdcv::tune
