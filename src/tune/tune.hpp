// simdcv::tune — measurement-driven dispatch: close the measure→dispatch loop.
//
// The paper's central finding is that the winning implementation (hand SIMD
// vs autovec vs scalar) flips per kernel, per size, and per ISA; until now
// the library encoded those crossovers as one-off heuristics (the AVX2-only
// L2 cutoff in detail::fuseProfitable, the fixed 256 KiB fork threshold in
// runtime::parallelThreshold). This subsystem replaces "predict" with
// "measure once, remember": the first few calls of a kernel at a given
// decision point run a short calibrated trial — each candidate is timed on
// live traffic via prof::nowNs(), no synthetic inputs — and the winner is
// committed and served to every later call.
//
// Decision points are keyed by
//     kernel × axis × KernelPath × size-class
// where axis is one of
//     "path"  — KernelPath auto-selection for Default requests
//               (candidates: Auto + every available HAND path),
//     "fuse"  — edgeDetect's fused-vs-staged choice (generalizing
//               fuseProfitable into a measured per-size decision),
//     "grain" — parallel_for band grain for the big five kernels
//               (candidates: heuristic ×1 / ×2 / ×4 / serial).
// Every candidate on every axis is bit-exact with every other (the
// simdcv::check contract), so tuning is purely a scheduling choice; the
// check registry's *.tuned entries enforce this against the fixed-path
// oracles.
//
// Trials are correctness-neutral but time-variant, so only ONE axis measures
// per call tree (a thread-local guard): a nested kernel never starts its own
// trial inside an outer trial's measurement window.
//
// Persistence: decisions are cached in memory and, when SIMDCV_TUNE_CACHE
// names a file, persisted there under a versioned header keyed by a
// platform::queryHost() fingerprint. A missing, corrupt, or
// wrong-fingerprint file is ignored with a one-line warning (decisions are
// simply re-measured), never an error. Tuned dispatch itself is opt-in:
// SIMDCV_TUNE=1 or tune::setEnabled(true); when off, every call takes the
// pre-existing heuristic path byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simd/features.hpp"

namespace simdcv::tune {

// ---- enable switch ---------------------------------------------------------

/// Is tuned dispatch active? Defaults to the SIMDCV_TUNE env flag (unset = off).
bool enabled() noexcept;
void setEnabled(bool on) noexcept;

/// RAII enable/restore, for tests and the check registry's tuned entries.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on) noexcept;
  ~ScopedEnable();
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

// ---- cache identity --------------------------------------------------------

/// Host fingerprint the cache is keyed by: FNV-1a hex over CPU brand,
/// logical CPU count, cache sizes and ISA flags. A cache file recorded on a
/// different host (different fingerprint) is ignored and re-measured.
std::string fingerprint();

/// Log2 size-class bucket of a byte count (0 for 0/1 bytes). One decision is
/// kept per octave, so 640x480 and 641x481 share a class but 640x480 and
/// 2592x1920 do not.
int sizeClass(std::uint64_t bytes) noexcept;

// ---- persistence -----------------------------------------------------------

/// Cache file path ("" = in-memory only). Initialized from SIMDCV_TUNE_CACHE
/// on first use; setCachePath overrides (and arms a fresh lazy load).
void setCachePath(std::string path);
std::string cachePath();

/// Explicit load/save. load() returns false (leaving decisions untouched,
/// warning once on stderr) for a missing, corrupt, or wrong-fingerprint
/// file; malformed individual entries are skipped. save() writes the
/// versioned header + every committed decision atomically (tmp + rename).
bool loadCache(const std::string& path);
bool saveCache(const std::string& path);

// ---- the decision machinery ------------------------------------------------

/// Result of a dispatch query at one decision point.
struct Decision {
  int choice = 0;         ///< candidate index to use for this call
  bool measuring = false; ///< true: this call is a trial sample — report() it
};

/// Query a decision point with `numCandidates` candidates. Committed points
/// return their winner (measuring=false). Uncommitted points cycle the
/// least-sampled candidate with measuring=true — the caller times the call
/// and report()s it — unless another axis is already measuring on this
/// thread, in which case `fallback` is served unmeasured.
Decision decide(const std::string& key, int numCandidates, int fallback);

/// Record one trial sample. After every candidate has kTrialSamples samples
/// the winner (smallest median) is committed; if a cache path is configured
/// the file is rewritten.
void report(const std::string& key, int candidate, std::uint64_t ns);

/// Samples collected per candidate before a decision commits.
inline constexpr int kTrialSamples = 3;

/// Committed winner for `key`, or -1 while undecided.
int committedChoice(const std::string& key);

/// All committed decisions, sorted by key (test/debug surface).
std::vector<std::pair<std::string, int>> decisions();

struct Stats {
  std::uint64_t decisions_served = 0;   ///< dispatches served from a winner
  std::uint64_t trials_started = 0;     ///< calls that measured a sample
  std::uint64_t samples_recorded = 0;
  std::uint64_t decisions_committed = 0;
  std::uint64_t file_entries_loaded = 0;
  std::uint64_t file_load_failures = 0; ///< missing/corrupt/wrong-host loads
};
Stats stats() noexcept;

/// Drop every decision, in-flight trial and stat (not the cache file).
void reset();

// ---- kernel-facing scopes --------------------------------------------------

/// Key for one decision point; exposed so tests can address the same points
/// the kernels use. Axis and kernel must be literal-like identifiers (no
/// whitespace); path kNoPathAxis marks the path axis itself.
std::string pointKey(const char* kernel, const char* axis, KernelPath path,
                     int size_class);
std::string pointKeyPathAxis(const char* kernel, int size_class);

/// Candidate paths of the "path" axis on this host, in candidate-index
/// order: Auto first, then each available HAND path.
const std::vector<KernelPath>& pathCandidates();

/// KernelPath auto-selection axis. Inert (path = resolvePath(requested))
/// when tuning is off or the request names a concrete path; otherwise the
/// measured winner — or a trial candidate — for this kernel/size-class.
/// Destruction reports the sample when this scope is the measuring axis.
class PathScope {
 public:
  PathScope(const char* kernel, KernelPath requested,
            std::uint64_t bytes) noexcept;
  ~PathScope();
  PathScope(const PathScope&) = delete;
  PathScope& operator=(const PathScope&) = delete;

  KernelPath path() const noexcept { return path_; }
  bool measuring() const noexcept { return measuring_; }

 private:
  KernelPath path_;
  std::string key_;
  int candidate_ = -1;
  std::uint64_t t0_ = 0;
  bool measuring_ = false;
};

/// Generic N-way tuned choice (edgeDetect's fuse axis). `fallback` is the
/// heuristic decision served while trials are unavailable.
class ChoiceScope {
 public:
  ChoiceScope(const char* kernel, const char* axis, KernelPath path,
              std::uint64_t bytes, int numCandidates, int fallback) noexcept;
  ~ChoiceScope();
  ChoiceScope(const ChoiceScope&) = delete;
  ChoiceScope& operator=(const ChoiceScope&) = delete;

  int choice() const noexcept { return choice_; }
  bool measuring() const noexcept { return measuring_; }

 private:
  int choice_;
  std::string key_;
  std::uint64_t t0_ = 0;
  bool measuring_ = false;
};

/// Band-grain axis for a parallel_for kernel: candidates are the heuristic
/// grain ×1 / ×2 / ×4 and fully-serial (grain = rows). grain() is clamped to
/// [1, max(rows, 1)] so any choice stays a valid partition (banding cannot
/// change results — the runtime's determinism guarantee).
class GrainScope {
 public:
  GrainScope(const char* kernel, KernelPath path, std::uint64_t bytes,
             int rows, int heuristicGrain) noexcept;
  ~GrainScope();
  GrainScope(const GrainScope&) = delete;
  GrainScope& operator=(const GrainScope&) = delete;

  int grain() const noexcept { return grain_; }
  bool measuring() const noexcept { return measuring_; }

 private:
  int grain_;
  std::string key_;
  int candidate_ = -1;
  std::uint64_t t0_ = 0;
  bool measuring_ = false;
};

/// The grain a candidate index maps to (exposed for tests).
int grainForChoice(int choice, int heuristicGrain, int rows) noexcept;
inline constexpr int kGrainCandidates = 4;

}  // namespace simdcv::tune
