// simdcv::graph — pipeline-graph fusion engine.
//
// A Graph declares an image pipeline as a DAG of stages (separable
// convolutions, depth conversions, pointwise scaling, thresholding, gradient
// magnitude, weighted blends, or opaque whole-image functions) between one
// source and one sink. Execution picks between two bit-identical schedules:
//
//   staged  each stage runs its public kernel over the whole image, exactly
//           as calling sepFilter2D / convertTo / threshold / ... by hand —
//           this is the reference oracle;
//   fused   the whole graph streams through ksize-row ring buffers in row
//           bands, generalizing the edgeDetectFused engine: each stage's
//           output rows live in an O(radius)-row ring in the stage's declared
//           depth (the exact bytes its staged intermediate Mat would hold),
//           so whole-image intermediates are never materialized and the
//           per-band working set stays cache-resident.
//
// Because every fused stage applies the identical per-path kernel to the
// identical bytes as its staged counterpart (filter_detail / edge_detail /
// threshold detail / convert_detail selectors), fused output is bit-exact
// with staged output for every KernelPath, thread count, and band partition —
// the contract the `graph.*` entries in simdcv::check enforce.
//
// run() generalizes the per-size fuse decision of edgeDetect: a staged-bytes
// model (sum of intermediate-Mat footprints) against the host L2, a
// SIMDCV_GRAPH_FUSE={0,1} override, and — under SIMDCV_TUNE=1 — a measured
// tune:: fuse axis keyed by the graph's signature string.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/mat.hpp"
#include "imgproc/border.hpp"
#include "imgproc/threshold.hpp"
#include "simd/features.hpp"

namespace simdcv::graph {

/// Node handle. The source is always node 0; builder methods return the new
/// node's id. Inputs must name already-declared nodes (the graph is a DAG by
/// construction).
using NodeId = int;

/// Whole-image stage for operations outside the fusible vocabulary (median,
/// morphology, Otsu, warps...). Opaque stages always run staged.
using StageFn = std::function<void(const Mat& src, Mat& dst, KernelPath path)>;

enum class NodeKind : std::uint8_t {
  Source,
  SepConv,
  Convert,
  Pointwise,
  Threshold,
  Magnitude,
  AddWeighted,
  Opaque,
};

const char* toString(NodeKind k) noexcept;

namespace detail {

/// One declared stage. Value type; inspect via Graph::node() in tests.
struct Node {
  NodeKind kind = NodeKind::Source;
  NodeId in0 = -1;
  NodeId in1 = -1;
  Depth depth = Depth::U8;  ///< output depth of this stage
  // SepConv
  std::vector<float> kx, ky;
  imgproc::BorderType border = imgproc::BorderType::Reflect101;
  double borderValue = 0.0;
  // Pointwise / AddWeighted
  double alpha = 1.0, beta = 0.0, gamma = 0.0;
  // Threshold
  double thresh = 0.0, maxval = 0.0;
  imgproc::ThresholdType ttype = imgproc::ThresholdType::Binary;
  // Opaque
  std::string name;
  StageFn fn;
  // Derived at sink(): how many rows of this node's output must stay live
  // around the current sink row in the fused schedule (0 for element-wise
  // consumers; grows by ky/2 across each downstream convolution).
  int radius = 0;
  int consumers = 0;
  int group = -1;  ///< conv-load sharing group (see graph_fused.cpp)
  const char* label = "";     ///< interned prof stage label
  const char* rowLabel = "";  ///< "<label>.rowConv" for SepConv nodes
};

}  // namespace detail

class Graph;

namespace detail {
void runFusedImpl(const Graph& g, const Mat& src, Mat& dst, KernelPath path,
                  int forcedBandRows);
std::size_t fusedScratchBytes(const Graph& g, int width);
}  // namespace detail

class Graph {
 public:
  // ---- building ------------------------------------------------------------
  // Build once (single-threaded), call sink() to freeze, then run() freely
  // (const, safe to call concurrently). Builder calls validate eagerly via
  // SIMDCV_REQUIRE: depths are restricted to U8/S16/F32, SepConv inputs to
  // U8/F32 (the separable engine's contract), kernels to odd lengths.

  /// Declare the source and its expected depth. Must be the first call.
  NodeId source(Depth depth);

  /// Separable convolution (kx horizontal, ky vertical) into `outDepth`
  /// (U8/S16/F32) — the sepFilter2D stage. Input depth must be U8 or F32.
  NodeId sepConv(NodeId input, std::vector<float> kx, std::vector<float> ky,
                 Depth outDepth,
                 imgproc::BorderType border = imgproc::BorderType::Reflect101,
                 double borderValue = 0.0);

  /// Identity depth conversion (convertTo with alpha=1, beta=0).
  NodeId convert(NodeId input, Depth outDepth);

  /// Scaled conversion: out = saturate<outDepth>(in * alpha + beta).
  NodeId pointwise(NodeId input, Depth outDepth, double alpha, double beta);

  /// Fixed-level threshold, depth preserved (threshold() semantics including
  /// the U8 quantization / degenerate-level collapse).
  NodeId threshold(NodeId input, double thresh, double maxval,
                   imgproc::ThresholdType type);

  /// |gx|+|gy| saturating gradient magnitude: S16 x S16 -> U8.
  NodeId magnitude(NodeId gx, NodeId gy);

  /// Weighted blend: out = saturate(a*alpha + b*beta + gamma), depths equal.
  NodeId addWeighted(NodeId a, double alpha, NodeId b, double beta,
                     double gamma);

  /// Opaque whole-image stage; `name` labels it in the signature. A graph
  /// containing opaque stages is never fused.
  NodeId opaque(NodeId input, const std::string& name, Depth outDepth,
                StageFn fn);

  /// Freeze the graph with `node` as its output. Every declared node must lie
  /// on a path to the sink (no dangling stages). Computes radii, fusibility,
  /// conv groups and the signature. Required before any run.
  void sink(NodeId node);

  // ---- introspection -------------------------------------------------------

  /// True when every stage is in the fusible vocabulary and every Wrap-border
  /// convolution reads the source directly (Wrap needs random row access,
  /// which ring buffers cannot stream for interior stages).
  bool fusible() const noexcept { return fusible_; }

  /// Stable per-structure identifier ("g.sep3x3s16.mag...") used as the
  /// tune:: kernel key for the fuse/path axes and as the prof label stem.
  const std::string& signature() const { return signature_; }

  /// Bytes of intermediate Mats the staged schedule materializes at this
  /// geometry (the final stage's output is dst in both schedules and is not
  /// counted) — the footprint the fuse decision weighs against L2.
  std::size_t stagedBytes(int width, int rows) const;

  /// The per-size scheduling decision run() uses when tuning is off: false
  /// for non-fusible graphs; SIMDCV_GRAPH_FUSE={0,1} forces; otherwise fused
  /// except on AVX2 when stagedBytes fits in L2 (generalizing
  /// imgproc::detail::fuseProfitable's model).
  bool fuseProfitable(int width, int rows, KernelPath path) const;

  int numNodes() const noexcept { return static_cast<int>(nodes_.size()); }
  NodeId sinkId() const noexcept { return sink_; }
  bool finalized() const noexcept { return sink_ >= 0; }
  const detail::Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }

  // ---- execution -----------------------------------------------------------

  /// Schedule-and-run: fused or staged per fuseProfitable (or the measured
  /// tune:: fuse axis under SIMDCV_TUNE=1). Output is bit-identical either
  /// way. `dst` may alias `src`.
  void run(const Mat& src, Mat& dst,
           KernelPath path = KernelPath::Default) const;

  /// Force the stage-by-stage schedule (the reference oracle).
  void runStaged(const Mat& src, Mat& dst,
                 KernelPath path = KernelPath::Default) const;

  /// Force the ring-buffer streaming schedule. Requires fusible().
  void runFused(const Mat& src, Mat& dst,
                KernelPath path = KernelPath::Default) const;

 private:
  NodeId addNode(detail::Node n);
  void requireBuilding(const char* what) const;
  const detail::Node& inputNode(NodeId id, const char* what) const;
  std::uint64_t ioBytes(const Mat& src) const;

  std::vector<detail::Node> nodes_;
  NodeId sink_ = -1;
  bool fusible_ = false;
  std::string signature_;
  int sourceRadius_ = 0;   ///< seam depth: rows of source recomputed per band
  int maxKh_ = 1;
  double rowOpCost_ = 1.0; ///< per-row cost estimate for the band grain

  friend void detail::runFusedImpl(const Graph& g, const Mat& src, Mat& dst,
                                   KernelPath path, int forcedBandRows);
  friend std::size_t detail::fusedScratchBytes(const Graph& g, int width);
};

namespace detail {

/// Run the fused schedule serially over fixed-height row bands (>= 1) — the
/// band-seam test hook, mirroring edgeDetectFusedBanded.
inline void runFusedBanded(const Graph& g, const Mat& src, Mat& dst,
                           KernelPath path, int bandRows) {
  runFusedImpl(g, src, dst, path, bandRows);
}

}  // namespace detail

// ---- prebuilt graphs -------------------------------------------------------
// The chains the library itself uses, expressed as graphs. Each returns a
// finalized Graph; the staged schedule of each is stage-for-stage identical
// to the direct-call chain it mirrors.

/// edgeDetect as a graph: sobelX/sobelY (S16) -> magnitude -> binary
/// threshold. Staged == edgeDetectUnfused; fused mirrors edgeDetectFused.
Graph makeEdgeGraph(Depth srcDepth, double thresh, int ksize,
                    imgproc::BorderType border);

/// GaussianBlur as a (single-stage) graph.
Graph makeBlurGraph(Depth srcDepth, int kw, int kh, double sigmaX,
                    double sigmaY, imgproc::BorderType border);

/// Binary threshold as a (single-stage) graph.
Graph makeThresholdGraph(Depth srcDepth, double thresh, double maxval,
                         imgproc::ThresholdType type);

/// Gaussian blur -> Sobel X (S16) -> binary threshold: the classic smoothed
/// edge chain (a non-edge-pipeline multi-stage fusion target).
Graph makeBlurSobelThresholdGraph(Depth srcDepth, int blurKsize, double sigma,
                                  int sobelKsize, double thresh,
                                  imgproc::BorderType border);

/// The photo_pipeline tone-map + unsharp chain on U8 input:
/// cvt F32 -> blur(5,0.9) -> tone pointwise(1.12,-8) -> blur(7,1.4) ->
/// addWeighted(toned*2.4 - blurred*1.4) -> cvt U8.
Graph makePhotoGraph(int toneBlurKsize, double toneSigma, int unsharpKsize,
                     double unsharpSigma, double toneAlpha, double toneBeta,
                     double unsharpAmount);

}  // namespace simdcv::graph
