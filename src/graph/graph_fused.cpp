// The fused streaming executor: runs an arbitrary fusible Graph through the
// cache-blocked, ksize-row ring-buffer machinery that edgeDetectFused
// hard-codes for its one fixed chain.
//
// Scheduling model (demand-driven, monotone):
//   * Every non-source node keeps a ring of its most recent output rows in its
//     DECLARED depth — the exact bytes its staged intermediate Mat would hold.
//     The ring height is 2*R+1 where R (Node::radius, derived at sink()) is
//     how many rows of this node's output must stay live around the current
//     sink row: 0 for element-wise consumers, growing by ky/2 across each
//     downstream convolution.
//   * Each node has a monotone `next` counter; produceUpTo(u, m) produces rows
//     next..m in order. The sink node has R == 0 and no consumers, so it
//     writes its rows straight into dst.
//   * A SepConv node mirrors the separable engine: an internal kh-row float
//     ring of row-convolved virtual rows (slot(v) = (v+ry) % kh), each
//     computed by load-as-float + padRow + rowConv through the identical
//     per-path selectors sepFilter2D uses; the vertical pass gathers kh taps
//     and colConvs into a float row that storeRowPtr saturates into the ring.
//     Convolutions over the same input with identical geometry and one shared
//     sole consumer form a GROUP (Node::group): they advance in lockstep, so
//     the group loads+pads each virtual source row once and row-convolves it
//     for every member — the one-load-two-rowConvs structure of the edge
//     pipeline, generalized to N members.
//   * Bands: a band initializes every counter to max(0, band.begin - R) and
//     recomputes its seam rows through the identical sequence, so any row
//     partition (1 band, parallel bands, or the forced test partition) is
//     bit-identical — the property the graph.* check entries enforce.
#include <algorithm>
#include <cstring>
#include <vector>

#include "graph/graph.hpp"

#include "core/array_ops_detail.hpp"
#include "core/convert_detail.hpp"
#include "core/saturate.hpp"
#include "core/scratch.hpp"
#include "imgproc/border.hpp"
#include "imgproc/edge_detail.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/filter_detail.hpp"
#include "imgproc/threshold.hpp"
#include "platform/platform.hpp"
#include "prof/prof.hpp"
#include "runtime/parallel.hpp"
#include "tune/tune.hpp"

namespace simdcv::graph {
namespace detail {

namespace {

using imgproc::BorderType;
using imgproc::ThresholdType;

using ThreshF32Fn = void (*)(const float*, float*, std::size_t, float, float,
                             ThresholdType);
using ThreshS16Fn = void (*)(const std::int16_t*, std::int16_t*, std::size_t,
                             std::int16_t, std::int16_t, ThresholdType);
using WeightedFn = void (*)(Depth, const void*, const void*, void*,
                            std::size_t, double, double, double);

ThreshF32Fn threshF32For(KernelPath p) {
  switch (p) {
    case KernelPath::Avx2: return &imgproc::avx2::threshF32;
    case KernelPath::Sse2: return &imgproc::sse2::threshF32;
    case KernelPath::Neon: return &imgproc::neon::threshF32;
    case KernelPath::ScalarNoVec: return &imgproc::novec::threshF32;
    default: return &imgproc::autovec::threshF32;
  }
}

// Per-threshold-node quantization, resolved once per run. Matches
// imgproc::threshold()'s per-depth prep exactly, including the U8
// degenerate-level collapse to a per-row fill or copy.
struct ThreshPrep {
  enum class Mode : std::uint8_t { U8, U8Fill, U8Copy, S16, F32 } mode =
      Mode::U8;
  std::uint8_t t8 = 0, imax8 = 0, fill = 0;
  std::int16_t t16 = 0, imax16 = 0;
  float tf = 0, mf = 0;
  ThresholdType type = ThresholdType::Binary;
};

ThreshPrep prepThreshold(const Node& n) {
  ThreshPrep tp;
  tp.type = n.ttype;
  switch (n.depth) {
    case Depth::U8: {
      const int it = cvFloor(n.thresh);
      const std::uint8_t imax = saturate_cast<std::uint8_t>(cvRound(n.maxval));
      if (it < 0 || it >= 255) {
        const bool noneAbove = it >= 255;
        tp.mode = ThreshPrep::Mode::U8Fill;
        switch (n.ttype) {
          case ThresholdType::Binary: tp.fill = noneAbove ? 0 : imax; break;
          case ThresholdType::BinaryInv: tp.fill = noneAbove ? imax : 0; break;
          case ThresholdType::Trunc:
            if (noneAbove) tp.mode = ThreshPrep::Mode::U8Copy;
            break;
          case ThresholdType::ToZero:
            if (!noneAbove) tp.mode = ThreshPrep::Mode::U8Copy;
            break;
          case ThresholdType::ToZeroInv:
            if (noneAbove) tp.mode = ThreshPrep::Mode::U8Copy;
            break;
        }
      } else {
        tp.mode = ThreshPrep::Mode::U8;
        tp.t8 = saturate_cast<std::uint8_t>(it);
        tp.imax8 = imax;
      }
      break;
    }
    case Depth::S16:
      tp.mode = ThreshPrep::Mode::S16;
      tp.t16 = saturate_cast<std::int16_t>(cvFloor(n.thresh));
      tp.imax16 = saturate_cast<std::int16_t>(cvRound(n.maxval));
      break;
    default:
      tp.mode = ThreshPrep::Mode::F32;
      tp.tf = static_cast<float>(n.thresh);
      tp.mf = static_cast<float>(n.maxval);
      break;
  }
  return tp;
}

// Conv-load sharing group, densified from Node::group.
struct GroupInfo {
  std::vector<NodeId> members;  // id order; all share in0/kw/kh/border/radius
  NodeId in0 = -1;
  int kw = 1, kh = 1, rx = 0, ry = 0;
  BorderType border = BorderType::Reflect101;
  float bv = 0.0f;
};

// Immutable per-run context, shared by every band.
struct RunCtx {
  const std::vector<Node>& nodes;
  NodeId sink;
  const Mat& src;
  Mat& out;
  KernelPath p;
  int rows, width;
  std::size_t w;
  imgproc::detail::RowConvFn rowFn;
  imgproc::detail::ColConvFn colFn;
  imgproc::detail::MagnitudeFn magFn;
  imgproc::detail::ThreshU8Fn fn8;
  ThreshF32Fn fnF32;
  ThreshS16Fn fnS16;
  WeightedFn wfn;
  std::vector<GroupInfo> groups;
  std::vector<int> groupOf;                   // node -> dense group (-1)
  std::vector<ThreshPrep> thr;                // node-indexed
  std::vector<std::vector<float>> constRows;  // node-indexed (Constant border)
  bool trace = false;
};

// Per-band executor. All scratch comes from this thread's ScratchArena via
// one ScratchFrame, exactly like an edgeDetectFused band.
struct BandExec {
  const RunCtx& c;
  core::ScratchFrame frame;
  std::vector<int> next;                // per node
  std::vector<std::uint8_t*> ring;      // per node (null: source/sink)
  std::vector<int> ringH;               // per node
  std::vector<std::size_t> rowBytes;    // per node
  std::vector<int> gnext, vnext;        // per group
  std::vector<float*> padded;           // per group
  std::vector<std::vector<float*>> convRing;  // per group, per member
  const float** taps = nullptr;
  float* fbuf = nullptr;
  // Stage-time attribution (only touched when c.trace).
  std::vector<std::uint64_t> ns, rowsOut;        // per node
  std::vector<std::uint64_t> rowNs, rowsPrimed;  // per group

  BandExec(const RunCtx& ctx, runtime::Range band) : c(ctx) {
    const int N = static_cast<int>(c.nodes.size());
    next.assign(static_cast<std::size_t>(N), 0);
    ring.assign(static_cast<std::size_t>(N), nullptr);
    ringH.assign(static_cast<std::size_t>(N), 1);
    rowBytes.assign(static_cast<std::size_t>(N), 0);
    for (int u = 1; u < N; ++u) {
      const Node& n = c.nodes[static_cast<std::size_t>(u)];
      next[static_cast<std::size_t>(u)] = std::max(0, band.begin - n.radius);
      ringH[static_cast<std::size_t>(u)] = 2 * n.radius + 1;
      rowBytes[static_cast<std::size_t>(u)] = c.w * depthSize(n.depth);
      if (u != c.sink)
        ring[static_cast<std::size_t>(u)] = frame.allocN<std::uint8_t>(
            static_cast<std::size_t>(ringH[static_cast<std::size_t>(u)]) *
            rowBytes[static_cast<std::size_t>(u)]);
    }
    const std::size_t G = c.groups.size();
    gnext.resize(G);
    vnext.resize(G);
    padded.resize(G);
    convRing.resize(G);
    int maxKh = 1;
    for (std::size_t gi = 0; gi < G; ++gi) {
      const GroupInfo& g = c.groups[gi];
      gnext[gi] = next[static_cast<std::size_t>(g.members[0])];
      vnext[gi] = gnext[gi] - g.ry;
      padded[gi] =
          frame.allocN<float>(c.w + static_cast<std::size_t>(g.kw) - 1);
      convRing[gi].resize(g.members.size());
      for (std::size_t mi = 0; mi < g.members.size(); ++mi)
        convRing[gi][mi] =
            frame.allocN<float>(static_cast<std::size_t>(g.kh) * c.w);
      maxKh = std::max(maxKh, g.kh);
    }
    taps = frame.allocN<const float*>(static_cast<std::size_t>(maxKh));
    fbuf = frame.allocN<float>(c.w);
    if (c.trace) {
      ns.assign(static_cast<std::size_t>(N), 0);
      rowsOut.assign(static_cast<std::size_t>(N), 0);
      rowNs.assign(G, 0);
      rowsPrimed.assign(G, 0);
    }
  }

  float* slot(std::size_t gi, std::size_t mi, int v) {
    const GroupInfo& g = c.groups[gi];
    return convRing[gi][mi] +
           static_cast<std::size_t>((v + g.ry) % g.kh) * c.w;
  }

  const void* inRowPtr(NodeId u, int y) {
    if (u == 0) return c.src.ptr<std::uint8_t>(y);
    const auto uu = static_cast<std::size_t>(u);
    return ring[uu] + static_cast<std::size_t>(y % ringH[uu]) * rowBytes[uu];
  }

  void* outRowPtr(NodeId u, int y) {
    if (u == c.sink) return c.out.ptr<std::uint8_t>(y);
    const auto uu = static_cast<std::size_t>(u);
    return ring[uu] + static_cast<std::size_t>(y % ringH[uu]) * rowBytes[uu];
  }

  void produceUpTo(NodeId u, int m) {
    if (u == 0) return;  // source rows are the Mat itself
    m = std::min(m, c.rows - 1);
    const int gi = c.groupOf[static_cast<std::size_t>(u)];
    if (gi >= 0) {
      while (gnext[static_cast<std::size_t>(gi)] <= m)
        produceGroupRow(static_cast<std::size_t>(gi),
                        gnext[static_cast<std::size_t>(gi)]++);
      return;
    }
    auto& n = next[static_cast<std::size_t>(u)];
    while (n <= m) produceRow(u, n++);
  }

  // Load + pad + rowConv virtual row v for every member of group gi — one
  // source-row load however many members consume it.
  void computeVirtualRow(std::size_t gi, int v) {
    const GroupInfo& g = c.groups[gi];
    const int m = imgproc::borderInterpolate(v, c.rows, g.border);
    if (m < 0) {  // Constant border, out of range: precomputed constant row
      const std::uint64_t t0 = c.trace ? prof::nowNs() : 0;
      for (std::size_t mi = 0; mi < g.members.size(); ++mi)
        std::memcpy(
            slot(gi, mi, v),
            c.constRows[static_cast<std::size_t>(g.members[mi])].data(),
            c.w * sizeof(float));
      if (c.trace) rowNs[gi] += prof::nowNs() - t0;
      return;
    }
    produceUpTo(g.in0, m);  // no-op for the source
    const std::uint64_t t0 = c.trace ? prof::nowNs() : 0;
    imgproc::detail::loadRowPtrAsFloat(
        c.nodes[static_cast<std::size_t>(g.in0)].depth, inRowPtr(g.in0, m),
        padded[gi] + g.rx, c.w, c.p);
    imgproc::detail::padRow(padded[gi], c.width, g.rx, g.border, g.bv);
    for (std::size_t mi = 0; mi < g.members.size(); ++mi) {
      const Node& n = c.nodes[static_cast<std::size_t>(g.members[mi])];
      c.rowFn(padded[gi], slot(gi, mi, v), c.width, n.kx.data(), g.kw);
    }
    if (c.trace) {
      rowNs[gi] += prof::nowNs() - t0;
      ++rowsPrimed[gi];
    }
  }

  // Produce output row y for EVERY member of group gi (members advance in
  // lockstep, which is what keeps the shared kh-row virtual ring valid).
  void produceGroupRow(std::size_t gi, int y) {
    const GroupInfo& g = c.groups[gi];
    while (vnext[gi] <= y + g.ry) computeVirtualRow(gi, vnext[gi]++);
    for (std::size_t mi = 0; mi < g.members.size(); ++mi) {
      const NodeId u = g.members[mi];
      const Node& n = c.nodes[static_cast<std::size_t>(u)];
      for (int r = 0; r < g.kh; ++r)
        taps[static_cast<std::size_t>(r)] = slot(gi, mi, y - g.ry + r);
      const std::uint64_t t0 = c.trace ? prof::nowNs() : 0;
      c.colFn(taps, fbuf, c.width, n.ky.data(), g.kh);
      imgproc::detail::storeRowPtr(fbuf, n.depth, outRowPtr(u, y), c.w, c.p);
      if (c.trace) {
        ns[static_cast<std::size_t>(u)] += prof::nowNs() - t0;
        ++rowsOut[static_cast<std::size_t>(u)];
      }
      next[static_cast<std::size_t>(u)] = y + 1;
    }
  }

  // Element-wise stages: demand the input rows, then apply the exact per-row
  // kernel the staged dispatcher applies (convert_detail / threshold /
  // edge_detail / array_ops_detail selectors).
  void produceRow(NodeId u, int y) {
    const Node& n = c.nodes[static_cast<std::size_t>(u)];
    produceUpTo(n.in0, y);
    if (n.in1 >= 0) produceUpTo(n.in1, y);
    const void* a = inRowPtr(n.in0, y);
    void* d = outRowPtr(u, y);
    const std::uint64_t t0 = c.trace ? prof::nowNs() : 0;
    switch (n.kind) {
      case NodeKind::Convert:
      case NodeKind::Pointwise:
        core::detail::cvtRow(c.nodes[static_cast<std::size_t>(n.in0)].depth,
                             n.depth, a, d, c.w, n.alpha, n.beta, c.p);
        break;
      case NodeKind::Threshold: {
        const ThreshPrep& tp = c.thr[static_cast<std::size_t>(u)];
        switch (tp.mode) {
          case ThreshPrep::Mode::U8:
            c.fn8(static_cast<const std::uint8_t*>(a),
                  static_cast<std::uint8_t*>(d), c.w, tp.t8, tp.imax8,
                  tp.type);
            break;
          case ThreshPrep::Mode::U8Fill:
            std::memset(d, tp.fill, c.w);
            break;
          case ThreshPrep::Mode::U8Copy:
            std::memcpy(d, a, c.w);
            break;
          case ThreshPrep::Mode::S16:
            c.fnS16(static_cast<const std::int16_t*>(a),
                    static_cast<std::int16_t*>(d), c.w, tp.t16, tp.imax16,
                    tp.type);
            break;
          case ThreshPrep::Mode::F32:
            c.fnF32(static_cast<const float*>(a), static_cast<float*>(d), c.w,
                    tp.tf, tp.mf, tp.type);
            break;
        }
        break;
      }
      case NodeKind::Magnitude:
        c.magFn(static_cast<const std::int16_t*>(a),
                static_cast<const std::int16_t*>(inRowPtr(n.in1, y)),
                static_cast<std::uint8_t*>(d), c.w);
        break;
      case NodeKind::AddWeighted:
        c.wfn(n.depth, a, inRowPtr(n.in1, y), d, c.w, n.alpha, n.beta,
              n.gamma);
        break;
      case NodeKind::SepConv:  // handled by produceGroupRow
      case NodeKind::Source:
      case NodeKind::Opaque:
        break;
    }
    if (c.trace) {
      ns[static_cast<std::size_t>(u)] += prof::nowNs() - t0;
      ++rowsOut[static_cast<std::size_t>(u)];
    }
  }

  void run(runtime::Range band) {
    produceUpTo(c.sink, band.end - 1);
    if (!c.trace) return;
    // One synthetic sample per stage per band, labeled with the node's
    // interned signature code, so the VERBOSE=2 summary splits fused time by
    // stage without per-row span spam. Bytes are the stage's own traffic.
    for (std::size_t u = 1; u < c.nodes.size(); ++u) {
      const Node& n = c.nodes[u];
      if (rowsOut[u] == 0) continue;
      std::uint64_t bytes = rowsOut[u] * c.w * depthSize(n.depth);
      if (n.kind == NodeKind::SepConv)
        bytes += rowsOut[u] * c.w *
                 (static_cast<std::uint64_t>(n.ky.size()) + 1) * sizeof(float);
      else if (n.kind == NodeKind::Magnitude)
        bytes = rowsOut[u] * imgproc::detail::magnitudeRowBytes(c.width);
      else
        bytes += rowsOut[u] * c.w *
                 depthSize(c.nodes[static_cast<std::size_t>(n.in0)].depth) *
                 (n.in1 >= 0 ? 2 : 1);
      prof::addSample(n.label, c.p, ns[u], bytes);
    }
    for (std::size_t gi = 0; gi < c.groups.size(); ++gi) {
      const GroupInfo& g = c.groups[gi];
      if (rowsPrimed[gi] == 0) continue;
      const Node& leader = c.nodes[static_cast<std::size_t>(g.members[0])];
      const std::uint64_t inBytes =
          depthSize(c.nodes[static_cast<std::size_t>(g.in0)].depth);
      prof::addSample(
          leader.rowLabel, c.p, rowNs[gi],
          rowsPrimed[gi] * c.w *
              (inBytes + g.members.size() * sizeof(float)));
    }
  }
};

}  // namespace

std::size_t fusedScratchBytes(const Graph& g, int width) {
  SIMDCV_REQUIRE(g.finalized(), "graph: call sink() first");
  const std::size_t w = static_cast<std::size_t>(width);
  std::size_t bytes = sizeof(float) * w + 64;  // fbuf
  for (NodeId id = 1; id < g.numNodes(); ++id) {
    const Node& n = g.nodes_[static_cast<std::size_t>(id)];
    if (id != g.sink_)  // output ring
      bytes += static_cast<std::size_t>(2 * n.radius + 1) * w *
                   depthSize(n.depth) +
               64;
    if (n.kind == NodeKind::SepConv)  // virtual-row ring (+ member rowConv)
      bytes += sizeof(float) * n.ky.size() * w + 64;
  }
  // One padded row + tap table per group; approximate with the widest kernel
  // (groups share the band's single tap table in practice).
  std::size_t maxKw = 1, maxKh = 1;
  for (NodeId id = 1; id < g.numNodes(); ++id) {
    const Node& n = g.nodes_[static_cast<std::size_t>(id)];
    if (n.kind != NodeKind::SepConv) continue;
    maxKw = std::max(maxKw, n.kx.size());
    maxKh = std::max(maxKh, n.ky.size());
  }
  bytes += sizeof(float) * (w + maxKw - 1) + sizeof(void*) * maxKh + 2 * 64;
  return bytes;
}

void runFusedImpl(const Graph& g, const Mat& src, Mat& dst, KernelPath path,
                  int forcedBandRows) {
  SIMDCV_REQUIRE(g.finalized(), "graph: call sink() first");
  SIMDCV_REQUIRE(g.fusible_, "graph: runFused requires a fusible graph");
  SIMDCV_REQUIRE(!src.empty(), "graph: empty source");
  SIMDCV_REQUIRE(src.channels() == 1, "graph: single channel only");
  SIMDCV_REQUIRE(src.depth() == g.nodes_[0].depth,
                 "graph: source depth does not match the declared source");

  const KernelPath p = resolvePath(path);
  const int rows = src.rows();
  const int width = src.cols();
  SIMDCV_TRACE_SCOPE("graph.fused", p, g.ioBytes(src));

  if (g.sink_ == 0) {  // single-node graph: the pipeline is a copy
    Mat tmp;
    src.copyTo(tmp);
    dst = std::move(tmp);
    return;
  }

  const Depth sinkDepth = g.nodes_[static_cast<std::size_t>(g.sink_)].depth;
  Mat out = dst.sharesStorageWith(src) ? Mat() : std::move(dst);
  out.create(rows, width, PixelType(sinkDepth, 1));

  RunCtx ctx{g.nodes_,
             g.sink_,
             src,
             out,
             p,
             rows,
             width,
             static_cast<std::size_t>(width),
             imgproc::detail::rowConvFor(p),
             imgproc::detail::colConvFor(p),
             imgproc::detail::magnitudeFnFor(p),
             imgproc::detail::threshU8For(p),
             threshF32For(p),
             p == KernelPath::ScalarNoVec ? &imgproc::novec::threshS16
                                          : &imgproc::autovec::threshS16,
             p == KernelPath::ScalarNoVec
                 ? &core::detail::aops_novec::weightedRange
                 : &core::detail::aops_autovec::weightedRange,
             {},
             std::vector<int>(g.nodes_.size(), -1),
             std::vector<ThreshPrep>(g.nodes_.size()),
             std::vector<std::vector<float>>(g.nodes_.size()),
             prof::enabled()};

  // Densify conv groups and resolve per-node prep.
  std::vector<int> denseOf;  // sparse group id -> dense index
  for (NodeId id = 1; id < g.numNodes(); ++id) {
    const Node& n = g.nodes_[static_cast<std::size_t>(id)];
    if (n.kind == NodeKind::Threshold)
      ctx.thr[static_cast<std::size_t>(id)] = prepThreshold(n);
    if (n.kind != NodeKind::SepConv) continue;
    if (static_cast<std::size_t>(n.group) >= denseOf.size())
      denseOf.resize(static_cast<std::size_t>(n.group) + 1, -1);
    int gi = denseOf[static_cast<std::size_t>(n.group)];
    if (gi < 0) {
      gi = static_cast<int>(ctx.groups.size());
      denseOf[static_cast<std::size_t>(n.group)] = gi;
      GroupInfo info;
      info.in0 = n.in0;
      info.kw = static_cast<int>(n.kx.size());
      info.kh = static_cast<int>(n.ky.size());
      info.rx = info.kw / 2;
      info.ry = info.kh / 2;
      info.border = n.border;
      info.bv = static_cast<float>(n.borderValue);
      ctx.groups.push_back(std::move(info));
    }
    ctx.groups[static_cast<std::size_t>(gi)].members.push_back(id);
    ctx.groupOf[static_cast<std::size_t>(id)] = gi;
    // Fully-constant virtual rows under Constant border: row-convolved once,
    // shared by every band (identical to what any band would compute).
    if (n.border == BorderType::Constant) {
      std::vector<float> pad(
          static_cast<std::size_t>(width) + n.kx.size() - 1,
          static_cast<float>(n.borderValue));
      auto& cr = ctx.constRows[static_cast<std::size_t>(id)];
      cr.resize(static_cast<std::size_t>(width));
      ctx.rowFn(pad.data(), cr.data(), width, n.kx.data(),
                static_cast<int>(n.kx.size()));
    }
  }

  auto processBand = [&](runtime::Range band) {
    BandExec ex(ctx, band);
    ex.run(band);
  };

  if (forcedBandRows > 0) {
    SIMDCV_REQUIRE(forcedBandRows >= 1, "graph: bandRows must be >= 1");
    for (int b = 0; b < rows; b += forcedBandRows)
      processBand({b, std::min(rows, b + forcedBandRows)});
  } else {
    // Band grain: the separable engine's fork rule with this graph's summed
    // per-row op cost, a seam-amortization floor of 16x the seam depth (each
    // band re-primes 2*sourceRadius source rows), raised to 32x when the
    // band scratch overflows half the L2 — edge_fused's fusedBandGrain with
    // the chain-specific constants generalized to the declared graph.
    const int seam = 2 * g.sourceRadius_ + 1;
    int grain =
        std::max(runtime::parallelThreshold(
                     static_cast<std::size_t>(width) * sizeof(float), rows,
                     g.rowOpCost_),
                 g.maxKh_);
    grain = std::max(grain, 16 * seam);
    static const platform::HostInfo host = platform::queryHost();
    const std::size_t l2 = host.l2_kb > 0
                               ? static_cast<std::size_t>(host.l2_kb) * 1024
                               : 512u * 1024u;
    if (fusedScratchBytes(g, width) > l2 / 2) grain = std::max(grain, 32 * seam);
    grain = std::min(grain, std::max(rows, 1));
    tune::GrainScope gs(g.signature_.c_str(), p, g.ioBytes(src), rows, grain);
    runtime::parallel_for({0, rows}, processBand, gs.grain());
  }
  dst = std::move(out);
}

}  // namespace detail
}  // namespace simdcv::graph
