// Graph builder, validation, the staged (oracle) executor and the per-size
// fuse decision. The fused streaming executor lives in graph_fused.cpp.
#include "graph/graph.hpp"

#include <algorithm>
#include <cctype>
#include <mutex>
#include <unordered_set>

#include "core/array_ops.hpp"
#include "core/convert.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/filter.hpp"
#include "imgproc/kernels.hpp"
#include "platform/env.hpp"
#include "platform/platform.hpp"
#include "prof/prof.hpp"
#include "tune/tune.hpp"

namespace simdcv::graph {

const char* toString(NodeKind k) noexcept {
  switch (k) {
    case NodeKind::Source: return "source";
    case NodeKind::SepConv: return "sepConv";
    case NodeKind::Convert: return "convert";
    case NodeKind::Pointwise: return "pointwise";
    case NodeKind::Threshold: return "threshold";
    case NodeKind::Magnitude: return "magnitude";
    case NodeKind::AddWeighted: return "addWeighted";
    case NodeKind::Opaque: return "opaque";
  }
  return "?";
}

namespace {

bool supportedDepth(Depth d) {
  return d == Depth::U8 || d == Depth::S16 || d == Depth::F32;
}

const char* depthCode(Depth d) {
  switch (d) {
    case Depth::U8: return "u8";
    case Depth::S16: return "s16";
    case Depth::F32: return "f32";
    default: return "x";
  }
}

// Vertical radius a node requires of its input rows (ky/2 for convolutions,
// 0 for element-wise stages).
int inputRadius(const detail::Node& n) {
  return n.kind == NodeKind::SepConv ? static_cast<int>(n.ky.size()) / 2 : 0;
}

// prof::addSample keeps the name pointer, so stage labels must outlive every
// Graph instance: intern them in a process-lifetime pool.
const char* internLabel(const std::string& s) {
  static std::mutex mu;
  static auto* pool = new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lk(mu);
  return pool->insert(s).first->c_str();
}

}  // namespace

// ---- building ---------------------------------------------------------------

void Graph::requireBuilding(const char* what) const {
  SIMDCV_REQUIRE(sink_ < 0, "graph: cannot add nodes after sink()");
  if (what[0] != 's' || what[1] != 'o')  // every builder but source()
    SIMDCV_REQUIRE(!nodes_.empty(), "graph: declare source() first");
}

const detail::Node& Graph::inputNode(NodeId id, const char* what) const {
  SIMDCV_REQUIRE(id >= 0 && id < numNodes(), "graph: input id out of range");
  (void)what;
  return nodes_[static_cast<std::size_t>(id)];
}

NodeId Graph::addNode(detail::Node n) {
  nodes_.push_back(std::move(n));
  return numNodes() - 1;
}

NodeId Graph::source(Depth depth) {
  SIMDCV_REQUIRE(nodes_.empty() && sink_ < 0, "graph: source() must be first");
  SIMDCV_REQUIRE(supportedDepth(depth), "graph: source depth must be u8/s16/f32");
  detail::Node n;
  n.kind = NodeKind::Source;
  n.depth = depth;
  return addNode(std::move(n));
}

NodeId Graph::sepConv(NodeId input, std::vector<float> kx,
                      std::vector<float> ky, Depth outDepth,
                      imgproc::BorderType border, double borderValue) {
  requireBuilding("sepConv");
  const detail::Node& in = inputNode(input, "sepConv");
  SIMDCV_REQUIRE(in.depth == Depth::U8 || in.depth == Depth::F32,
                 "graph: sepConv input depth must be u8 or f32");
  SIMDCV_REQUIRE(supportedDepth(outDepth), "graph: sepConv depth must be u8/s16/f32");
  SIMDCV_REQUIRE(!kx.empty() && !ky.empty() && (kx.size() & 1) && (ky.size() & 1),
                 "graph: sepConv kernels must have odd length");
  detail::Node n;
  n.kind = NodeKind::SepConv;
  n.in0 = input;
  n.depth = outDepth;
  n.kx = std::move(kx);
  n.ky = std::move(ky);
  n.border = border;
  n.borderValue = borderValue;
  return addNode(std::move(n));
}

NodeId Graph::convert(NodeId input, Depth outDepth) {
  return pointwise(input, outDepth, 1.0, 0.0);
}

NodeId Graph::pointwise(NodeId input, Depth outDepth, double alpha,
                        double beta) {
  requireBuilding("pointwise");
  inputNode(input, "pointwise");
  SIMDCV_REQUIRE(supportedDepth(outDepth),
                 "graph: pointwise depth must be u8/s16/f32");
  detail::Node n;
  n.kind = (alpha == 1.0 && beta == 0.0) ? NodeKind::Convert
                                         : NodeKind::Pointwise;
  n.in0 = input;
  n.depth = outDepth;
  n.alpha = alpha;
  n.beta = beta;
  return addNode(std::move(n));
}

NodeId Graph::threshold(NodeId input, double thresh, double maxval,
                        imgproc::ThresholdType type) {
  requireBuilding("threshold");
  const detail::Node& in = inputNode(input, "threshold");
  detail::Node n;
  n.kind = NodeKind::Threshold;
  n.in0 = input;
  n.depth = in.depth;
  n.thresh = thresh;
  n.maxval = maxval;
  n.ttype = type;
  return addNode(std::move(n));
}

NodeId Graph::magnitude(NodeId gx, NodeId gy) {
  requireBuilding("magnitude");
  const detail::Node& a = inputNode(gx, "magnitude");
  const detail::Node& b = inputNode(gy, "magnitude");
  SIMDCV_REQUIRE(a.depth == Depth::S16 && b.depth == Depth::S16,
                 "graph: magnitude inputs must be s16");
  detail::Node n;
  n.kind = NodeKind::Magnitude;
  n.in0 = gx;
  n.in1 = gy;
  n.depth = Depth::U8;
  return addNode(std::move(n));
}

NodeId Graph::addWeighted(NodeId a, double alpha, NodeId b, double beta,
                          double gamma) {
  requireBuilding("addWeighted");
  const detail::Node& na = inputNode(a, "addWeighted");
  const detail::Node& nb = inputNode(b, "addWeighted");
  SIMDCV_REQUIRE(na.depth == nb.depth,
                 "graph: addWeighted input depths must match");
  detail::Node n;
  n.kind = NodeKind::AddWeighted;
  n.in0 = a;
  n.in1 = b;
  n.depth = na.depth;
  n.alpha = alpha;
  n.beta = beta;
  n.gamma = gamma;
  return addNode(std::move(n));
}

NodeId Graph::opaque(NodeId input, const std::string& name, Depth outDepth,
                     StageFn fn) {
  requireBuilding("opaque");
  inputNode(input, "opaque");
  SIMDCV_REQUIRE(supportedDepth(outDepth), "graph: opaque depth must be u8/s16/f32");
  SIMDCV_REQUIRE(static_cast<bool>(fn), "graph: opaque stage needs a function");
  detail::Node n;
  n.kind = NodeKind::Opaque;
  n.in0 = input;
  n.depth = outDepth;
  n.name = name;
  n.fn = std::move(fn);
  return addNode(std::move(n));
}

void Graph::sink(NodeId node) {
  SIMDCV_REQUIRE(sink_ < 0, "graph: sink() already set");
  SIMDCV_REQUIRE(node >= 0 && node < numNodes(), "graph: sink id out of range");
  sink_ = node;

  // Consumer counts; every non-sink node must lie on a path to the sink (with
  // a single sink and acyclic inputs, "every node is consumed" is equivalent).
  for (auto& n : nodes_) n.consumers = 0;
  for (const auto& n : nodes_) {
    if (n.in0 >= 0) ++nodes_[static_cast<std::size_t>(n.in0)].consumers;
    if (n.in1 >= 0) ++nodes_[static_cast<std::size_t>(n.in1)].consumers;
  }
  for (NodeId id = 0; id < numNodes(); ++id) {
    SIMDCV_REQUIRE(id == sink_ || nodes_[static_cast<std::size_t>(id)].consumers > 0,
                   "graph: every non-sink node must feed the sink");
  }
  SIMDCV_REQUIRE(nodes_[static_cast<std::size_t>(sink_)].consumers == 0,
                 "graph: the sink node cannot feed another node");

  // Live-window radii, sink -> source: R(sink) = 0 and each consumer c adds
  // its vertical radius, R(in) = max(R(in), R(c) + ry(c)). Inputs always have
  // smaller ids, so one reverse sweep suffices.
  for (auto& n : nodes_) n.radius = 0;
  for (NodeId id = numNodes() - 1; id >= 0; --id) {
    const detail::Node& c = nodes_[static_cast<std::size_t>(id)];
    const int need = c.radius + inputRadius(c);
    if (c.in0 >= 0) {
      auto& u = nodes_[static_cast<std::size_t>(c.in0)];
      u.radius = std::max(u.radius, need);
    }
    if (c.in1 >= 0) {
      auto& u = nodes_[static_cast<std::size_t>(c.in1)];
      u.radius = std::max(u.radius, need);
    }
  }
  sourceRadius_ = nodes_[0].radius;

  // Fusibility: the streaming schedule covers the fusible vocabulary, and a
  // Wrap border needs random row access — only the source Mat provides it.
  fusible_ = true;
  for (const auto& n : nodes_) {
    if (n.kind == NodeKind::Opaque) fusible_ = false;
    if (n.kind == NodeKind::SepConv &&
        n.border == imgproc::BorderType::Wrap && n.in0 != 0)
      fusible_ = false;
  }

  // Conv-load sharing groups: convolutions over the same input with the same
  // geometry/border and one shared sole consumer advance in lockstep, so the
  // leader can load+pad each virtual source row once and row-convolve it for
  // every member (the one-load-two-rowConvs structure of edgeDetectFused).
  struct GroupKey {
    NodeId in0;
    std::size_t kw, kh;
    imgproc::BorderType border;
    double bv;
    NodeId consumer;
    bool operator==(const GroupKey& o) const {
      return in0 == o.in0 && kw == o.kw && kh == o.kh && border == o.border &&
             bv == o.bv && consumer == o.consumer;
    }
  };
  std::vector<std::pair<GroupKey, int>> groups;
  int nextGroup = 0;
  // Sole consumer of each node (-1 when shared by several).
  std::vector<NodeId> soleConsumer(static_cast<std::size_t>(numNodes()), -1);
  for (NodeId id = 0; id < numNodes(); ++id) {
    const detail::Node& c = nodes_[static_cast<std::size_t>(id)];
    for (NodeId in : {c.in0, c.in1}) {
      if (in < 0) continue;
      auto& s = soleConsumer[static_cast<std::size_t>(in)];
      s = (nodes_[static_cast<std::size_t>(in)].consumers == 1) ? id : -1;
    }
  }
  for (NodeId id = 0; id < numNodes(); ++id) {
    detail::Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.kind != NodeKind::SepConv) continue;
    const NodeId cons = soleConsumer[static_cast<std::size_t>(id)];
    if (cons >= 0) {
      const GroupKey key{n.in0, n.kx.size(), n.ky.size(), n.border,
                         n.borderValue, cons};
      int found = -1;
      for (const auto& [k, g] : groups)
        if (k == key) { found = g; break; }
      if (found < 0) {
        found = nextGroup++;
        groups.emplace_back(key, found);
      }
      n.group = found;
    } else {
      n.group = nextGroup++;
    }
  }

  // Signature, prof labels and the band-grain cost model.
  signature_ = "g";
  maxKh_ = 1;
  rowOpCost_ = 1.0;
  for (NodeId id = 1; id < numNodes(); ++id) {
    detail::Node& n = nodes_[static_cast<std::size_t>(id)];
    std::string code;
    switch (n.kind) {
      case NodeKind::SepConv:
        code = "sep" + std::to_string(n.kx.size()) + "x" +
               std::to_string(n.ky.size()) + depthCode(n.depth);
        maxKh_ = std::max(maxKh_, static_cast<int>(n.ky.size()));
        rowOpCost_ += static_cast<double>(n.kx.size() + n.ky.size());
        break;
      case NodeKind::Convert: code = std::string("cvt") + depthCode(n.depth); rowOpCost_ += 1.0; break;
      case NodeKind::Pointwise: code = std::string("pw") + depthCode(n.depth); rowOpCost_ += 1.0; break;
      case NodeKind::Threshold:
        code = std::string("thr") + depthCode(n.depth) + "t" +
               std::to_string(static_cast<int>(n.ttype));
        rowOpCost_ += 1.0;
        break;
      case NodeKind::Magnitude: code = "mag"; rowOpCost_ += 1.0; break;
      case NodeKind::AddWeighted: code = "addw"; rowOpCost_ += 1.0; break;
      case NodeKind::Opaque: {
        code = "op-";
        for (char c : n.name)
          code += (std::isalnum(static_cast<unsigned char>(c)) ? c : '-');
        break;
      }
      case NodeKind::Source: break;
    }
    // Wiring: unary stages off the chain and all binary stages name inputs,
    // so structurally different graphs never share a tune/prof key.
    if (n.in1 >= 0)
      code += "@" + std::to_string(n.in0) + "-" + std::to_string(n.in1);
    else if (n.in0 != id - 1)
      code += "@" + std::to_string(n.in0);
    signature_ += "." + code;
    n.label = internLabel("graph.fused." + code);
    if (n.kind == NodeKind::SepConv)
      n.rowLabel = internLabel("graph.fused." + code + ".rowConv");
  }
}

// ---- fuse decision ----------------------------------------------------------

std::size_t Graph::stagedBytes(int width, int rows) const {
  SIMDCV_REQUIRE(finalized(), "graph: call sink() first");
  std::size_t total = 0;
  for (NodeId id = 1; id < numNodes(); ++id) {
    if (id == sink_) continue;
    total += static_cast<std::size_t>(width) * static_cast<std::size_t>(rows) *
             depthSize(nodes_[static_cast<std::size_t>(id)].depth);
  }
  return total;
}

bool Graph::fuseProfitable(int width, int rows, KernelPath path) const {
  SIMDCV_REQUIRE(finalized(), "graph: call sink() first");
  if (!fusible_) return false;
  // Experiment override, mirroring SIMDCV_EDGE_FUSE: =1 always fused, =0
  // always staged, anything else falls through to the model.
  static const int forced =
      static_cast<int>(platform::envInt("SIMDCV_GRAPH_FUSE", -1, 0, 1));
  if (forced >= 0) return forced == 1;
  // A sink==source graph is a copy; a single-stage graph has no intermediates
  // to save — the staged schedule is the plain kernel call either way.
  if (stagedBytes(width, rows) == 0) return false;
  // Same model as imgproc::detail::fuseProfitable, generalized from the edge
  // chain's fixed 5 bytes/px to this graph's declared intermediates: fusion
  // pays off unless the staged passes re-read those intermediates cache-hot,
  // which on the fast AVX2 kernels means "they fit in L2".
  if (resolvePath(path) != KernelPath::Avx2) return true;
  static const platform::HostInfo host = platform::queryHost();
  const std::size_t l2 = host.l2_kb > 0
                             ? static_cast<std::size_t>(host.l2_kb) * 1024
                             : 512u * 1024u;
  return stagedBytes(width, rows) > l2;
}

// ---- execution --------------------------------------------------------------

namespace {

void requireRunnable(const Graph& g, const Mat& src) {
  SIMDCV_REQUIRE(g.finalized(), "graph: call sink() first");
  SIMDCV_REQUIRE(!src.empty(), "graph: empty source");
  SIMDCV_REQUIRE(src.channels() == 1, "graph: single channel only");
  SIMDCV_REQUIRE(src.depth() == g.node(0).depth,
                 "graph: source depth does not match the declared source");
}

}  // namespace

std::uint64_t Graph::ioBytes(const Mat& src) const {
  return static_cast<std::uint64_t>(src.rows()) * src.cols() *
         (src.elemSize() +
          depthSize(nodes_[static_cast<std::size_t>(sink_)].depth));
}

void Graph::runStaged(const Mat& src, Mat& dst, KernelPath path) const {
  requireRunnable(*this, src);
  const KernelPath p = resolvePath(path);
  SIMDCV_TRACE_SCOPE("graph.staged", p, ioBytes(src));
  if (sink_ == 0) {
    Mat tmp;
    src.copyTo(tmp);
    dst = std::move(tmp);
    return;
  }
  std::vector<Mat> vals(nodes_.size());
  vals[0] = src;  // shallow view; stage kernels detach on aliasing themselves
  for (NodeId id = 1; id < numNodes(); ++id) {
    const detail::Node& n = nodes_[static_cast<std::size_t>(id)];
    const Mat& a = vals[static_cast<std::size_t>(n.in0)];
    Mat& out = vals[static_cast<std::size_t>(id)];
    switch (n.kind) {
      case NodeKind::SepConv:
        imgproc::sepFilter2D(a, out, n.depth, n.kx, n.ky, n.border,
                             n.borderValue, p);
        break;
      case NodeKind::Convert:
      case NodeKind::Pointwise:
        core::convertTo(a, out, n.depth, n.alpha, n.beta, p);
        break;
      case NodeKind::Threshold:
        imgproc::threshold(a, out, n.thresh, n.maxval, n.ttype, p);
        break;
      case NodeKind::Magnitude:
        imgproc::gradientMagnitude(a, vals[static_cast<std::size_t>(n.in1)],
                                   out, p);
        break;
      case NodeKind::AddWeighted:
        core::addWeighted(a, n.alpha, vals[static_cast<std::size_t>(n.in1)],
                          n.beta, n.gamma, out, p);
        break;
      case NodeKind::Opaque:
        n.fn(a, out, p);
        break;
      case NodeKind::Source:
        break;
    }
  }
  dst = std::move(vals[static_cast<std::size_t>(sink_)]);
}

void Graph::runFused(const Mat& src, Mat& dst, KernelPath path) const {
  detail::runFusedImpl(*this, src, dst, path, 0);
}

void Graph::run(const Mat& src, Mat& dst, KernelPath path) const {
  requireRunnable(*this, src);
  if (!fusible_) {
    runStaged(src, dst, path);
    return;
  }
  // Fused and staged schedules are bit-exact, so this is pure scheduling.
  // Under SIMDCV_TUNE the model only seeds the trial: the path (for Default
  // requests) and the fuse choice are measured per graph signature and
  // size-class, exactly like edgeDetect's fuse axis.
  const std::uint64_t bytes = ioBytes(src);
  if (tune::enabled()) {
    tune::PathScope ps(signature_.c_str(), path, bytes);
    const KernelPath p = ps.path();
    const int fallback = fuseProfitable(src.cols(), src.rows(), p) ? 1 : 0;
    tune::ChoiceScope fuse(signature_.c_str(), "fuse", p, bytes, 2, fallback);
    if (fuse.choice() == 1)
      detail::runFusedImpl(*this, src, dst, p, 0);
    else
      runStaged(src, dst, p);
    return;
  }
  if (fuseProfitable(src.cols(), src.rows(), path))
    detail::runFusedImpl(*this, src, dst, path, 0);
  else
    runStaged(src, dst, path);
}

// ---- prebuilt graphs --------------------------------------------------------

Graph makeEdgeGraph(Depth srcDepth, double thresh, int ksize,
                    imgproc::BorderType border) {
  std::vector<float> kxx, kyx, kxy, kyy;
  imgproc::getDerivKernels(kxx, kyx, 1, 0, ksize, /*normalize=*/false);
  imgproc::getDerivKernels(kxy, kyy, 0, 1, ksize, /*normalize=*/false);
  Graph g;
  const NodeId s = g.source(srcDepth);
  const NodeId gx = g.sepConv(s, std::move(kxx), std::move(kyx), Depth::S16,
                              border, 0.0);
  const NodeId gy = g.sepConv(s, std::move(kxy), std::move(kyy), Depth::S16,
                              border, 0.0);
  const NodeId mag = g.magnitude(gx, gy);
  g.sink(g.threshold(mag, thresh, 255.0, imgproc::ThresholdType::Binary));
  return g;
}

Graph makeBlurGraph(Depth srcDepth, int kw, int kh, double sigmaX,
                    double sigmaY, imgproc::BorderType border) {
  if (sigmaY <= 0) sigmaY = sigmaX;
  Graph g;
  const NodeId s = g.source(srcDepth);
  g.sink(g.sepConv(s, imgproc::getGaussianKernel(kw, sigmaX),
                   imgproc::getGaussianKernel(kh, sigmaY), srcDepth, border,
                   0.0));
  return g;
}

Graph makeThresholdGraph(Depth srcDepth, double thresh, double maxval,
                         imgproc::ThresholdType type) {
  Graph g;
  const NodeId s = g.source(srcDepth);
  g.sink(g.threshold(s, thresh, maxval, type));
  return g;
}

Graph makeBlurSobelThresholdGraph(Depth srcDepth, int blurKsize, double sigma,
                                  int sobelKsize, double thresh,
                                  imgproc::BorderType border) {
  std::vector<float> kx, ky;
  imgproc::getDerivKernels(kx, ky, 1, 0, sobelKsize, /*normalize=*/false);
  Graph g;
  const NodeId s = g.source(srcDepth);
  const NodeId blur =
      g.sepConv(s, imgproc::getGaussianKernel(blurKsize, sigma),
                imgproc::getGaussianKernel(blurKsize, sigma), srcDepth, border,
                0.0);
  const NodeId gx =
      g.sepConv(blur, std::move(kx), std::move(ky), Depth::S16, border, 0.0);
  g.sink(g.threshold(gx, thresh, 255.0, imgproc::ThresholdType::Binary));
  return g;
}

Graph makePhotoGraph(int toneBlurKsize, double toneSigma, int unsharpKsize,
                     double unsharpSigma, double toneAlpha, double toneBeta,
                     double unsharpAmount) {
  Graph g;
  const NodeId s = g.source(Depth::U8);
  const NodeId f = g.convert(s, Depth::F32);
  const NodeId smooth =
      g.sepConv(f, imgproc::getGaussianKernel(toneBlurKsize, toneSigma),
                imgproc::getGaussianKernel(toneBlurKsize, toneSigma),
                Depth::F32);
  const NodeId toned = g.pointwise(smooth, Depth::F32, toneAlpha, toneBeta);
  const NodeId base =
      g.sepConv(toned, imgproc::getGaussianKernel(unsharpKsize, unsharpSigma),
                imgproc::getGaussianKernel(unsharpKsize, unsharpSigma),
                Depth::F32);
  // Unsharp mask as a weighted blend: toned*(1+a) - base*a.
  const NodeId sharp =
      g.addWeighted(toned, 1.0 + unsharpAmount, base, -unsharpAmount, 0.0);
  g.sink(g.convert(sharp, Depth::U8));
  return g;
}

}  // namespace simdcv::graph
